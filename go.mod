module nbtinoc

go 1.22
