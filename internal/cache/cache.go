// Package cache is a content-addressed, disk-backed store for
// deterministic simulation results. The simulator is byte-deterministic
// per (engine, config, policy, workload, seed, windows) — the golden
// tests in cmd/tables pin that — so a cached result is indistinguishable
// from a recomputed one and memoization is exact, not approximate.
//
// Keys are SHA-256 digests of a canonical JSON encoding of the full
// scenario (see internal/sim.SpecKey); values are opaque JSON blobs
// owned by the caller. Entries live under dir/<key[:2]>/<key>.json and
// are written atomically (temp file + rename), so a concurrent reader
// never observes a partial entry. A corrupted or truncated entry is
// treated as a miss: the store warns, recomputes and (in read-write
// mode) overwrites it — a damaged cache can slow a run down but never
// fail or falsify it.
//
// The store is safe under the sim worker pool: concurrent Do calls for
// the same key are deduplicated in-process (single-flight), so N pool
// workers racing on one scenario perform exactly one compute.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Mode selects how a Store touches the disk.
type Mode int

const (
	// Off disables the cache entirely: Do always computes.
	Off Mode = iota
	// ReadOnly serves hits from disk but never writes new entries —
	// useful for reproducing published results against a pinned cache.
	ReadOnly
	// ReadWrite serves hits and persists misses.
	ReadWrite
)

// ParseMode parses the CLI spelling of a mode: off, ro or rw.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "ro":
		return ReadOnly, nil
	case "rw":
		return ReadWrite, nil
	default:
		return Off, fmt.Errorf("cache: unknown mode %q (want off, ro or rw)", s)
	}
}

// String renders the CLI spelling.
func (m Mode) String() string {
	switch m {
	case ReadOnly:
		return "ro"
	case ReadWrite:
		return "rw"
	default:
		return "off"
	}
}

// DefaultDir returns the default on-disk cache location: the user cache
// directory when the platform provides one, a repo-local fallback
// otherwise.
func DefaultDir() string {
	if dir, err := os.UserCacheDir(); err == nil && dir != "" {
		return filepath.Join(dir, "nbtinoc")
	}
	return ".nbticache"
}

// KeyOf returns the content address of v: the SHA-256 hex digest of its
// canonical JSON encoding. encoding/json emits struct fields in
// declaration order and floats in shortest-round-trip form, so equal
// values always produce equal keys.
func KeyOf(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("cache: keying: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Stats counts what a store did over its lifetime. All sizes are value
// bytes (the cached payload, not the on-disk envelope). The JSON tags
// are the cross-process wire format: sweep workers serialise their
// per-process Stats for the coordinator to Add into a campaign total.
type Stats struct {
	// Hits and Misses count disk lookups; Deduped counts calls that
	// joined an in-flight leader instead of touching disk or computing.
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Deduped int64 `json:"deduped"`
	// Corrupt counts entries that failed to load and were recomputed.
	Corrupt int64 `json:"corrupt"`
	// BytesRead / BytesWritten are the value payload volumes.
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// TimeSavedNS accumulates the recorded compute duration of every
	// hit and dedup — zero when no Clock was installed at write time.
	TimeSavedNS int64 `json:"time_saved_ns"`
	// LeaseAcquired counts keys this store claimed for cross-process
	// single-flight; LeaseWaited counts Do calls that found another
	// process's claim and waited (or, for TryDo, stepped aside).
	LeaseAcquired int64 `json:"lease_acquired,omitempty"`
	LeaseWaited   int64 `json:"lease_waited,omitempty"`
	// LeaseTakeovers counts stale leases reaped after their holder went
	// silent; LeaseCorrupt counts unreadable lease files reaped.
	LeaseTakeovers int64 `json:"lease_takeovers,omitempty"`
	LeaseCorrupt   int64 `json:"lease_corrupt,omitempty"`
}

// Sub returns the delta s − o, for per-phase reporting.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:           s.Hits - o.Hits,
		Misses:         s.Misses - o.Misses,
		Deduped:        s.Deduped - o.Deduped,
		Corrupt:        s.Corrupt - o.Corrupt,
		BytesRead:      s.BytesRead - o.BytesRead,
		BytesWritten:   s.BytesWritten - o.BytesWritten,
		TimeSavedNS:    s.TimeSavedNS - o.TimeSavedNS,
		LeaseAcquired:  s.LeaseAcquired - o.LeaseAcquired,
		LeaseWaited:    s.LeaseWaited - o.LeaseWaited,
		LeaseTakeovers: s.LeaseTakeovers - o.LeaseTakeovers,
		LeaseCorrupt:   s.LeaseCorrupt - o.LeaseCorrupt,
	}
}

// Add returns the sum s + o: the aggregation a sweep coordinator
// applies over per-worker-process stats, so multi-process campaign
// summaries count every worker instead of silently reporting only the
// coordinator's own store.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:           s.Hits + o.Hits,
		Misses:         s.Misses + o.Misses,
		Deduped:        s.Deduped + o.Deduped,
		Corrupt:        s.Corrupt + o.Corrupt,
		BytesRead:      s.BytesRead + o.BytesRead,
		BytesWritten:   s.BytesWritten + o.BytesWritten,
		TimeSavedNS:    s.TimeSavedNS + o.TimeSavedNS,
		LeaseAcquired:  s.LeaseAcquired + o.LeaseAcquired,
		LeaseWaited:    s.LeaseWaited + o.LeaseWaited,
		LeaseTakeovers: s.LeaseTakeovers + o.LeaseTakeovers,
		LeaseCorrupt:   s.LeaseCorrupt + o.LeaseCorrupt,
	}
}

// String renders the counters in a fixed field order (no map
// iteration), so stats lines are byte-stable for a given history. The
// lease counters only appear once any is non-zero, keeping
// single-process output identical to the pre-lease format.
func (s Stats) String() string {
	out := fmt.Sprintf("hits=%d misses=%d deduped=%d corrupt=%d read=%dB written=%dB saved=%.2fs",
		s.Hits, s.Misses, s.Deduped, s.Corrupt,
		s.BytesRead, s.BytesWritten, float64(s.TimeSavedNS)/1e9)
	if s.LeaseAcquired != 0 || s.LeaseWaited != 0 || s.LeaseTakeovers != 0 || s.LeaseCorrupt != 0 {
		out += fmt.Sprintf(" lease_acq=%d lease_wait=%d lease_steal=%d lease_corrupt=%d",
			s.LeaseAcquired, s.LeaseWaited, s.LeaseTakeovers, s.LeaseCorrupt)
	}
	return out
}

// Store is one cache handle. The zero value is not usable; construct
// with Open. A nil *Store is a valid always-compute pass-through, so
// callers thread one pointer instead of branching on a mode.
type Store struct {
	dir  string
	mode Mode

	// Clock, when non-nil, timestamps compute durations (nanoseconds)
	// so hits can report wall-clock time saved. It is injected by
	// package main — the library itself never reads the wall clock, per
	// the nbtilint determinism rules.
	Clock func() int64
	// Warnf, when non-nil, receives diagnostics about damaged or
	// unwritable entries. The store never fails because of them.
	Warnf func(format string, args ...any)
	// Lease, when non-nil (and Clock is set and the store is
	// read-write), extends single-flight across processes sharing this
	// directory via lease files — see lease.go for the protocol.
	Lease *LeasePolicy

	mu      sync.Mutex
	flights map[string]*flight
	stats   Stats
	// met mirrors the Stats counters into the process metrics registry;
	// zero (all-nil handles) when instrumentation is disabled.
	met storeMetrics
}

// flight is one in-progress Do leader; followers block on done and
// share its outcome.
type flight struct {
	done  chan struct{}
	data  []byte
	hit   bool
	saved int64
	err   error
}

// Open returns a store rooted at dir. The directory is created lazily
// on first write.
func Open(dir string, mode Mode) *Store {
	return &Store{dir: dir, mode: mode, flights: make(map[string]*flight), met: newStoreMetrics()}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Mode returns the store's disk mode.
func (s *Store) Mode() Mode {
	if s == nil {
		return Off
	}
	return s.mode
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// entry is the on-disk envelope around a cached value.
type entry struct {
	Schema       int             `json:"schema"`
	Key          string          `json:"key"`
	ComputeNanos int64           `json:"compute_ns,omitempty"`
	Value        json.RawMessage `json:"value"`
}

const entrySchema = 1

// entryPath maps a key to its file, sharded on the first digest byte so
// large caches do not pile every entry into one directory.
func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Do returns the value stored under key, computing and (in read-write
// mode) persisting it on a miss. decode receives the value bytes —
// either loaded from disk or freshly produced by compute — exactly
// once per call. The returned bool reports whether the value came from
// the cache (disk hit, or dedup onto a leader that hit). compute errors
// propagate; storage errors never do.
func (s *Store) Do(key string, decode func([]byte) error, compute func() ([]byte, error)) (bool, error) {
	if s == nil || s.mode == Off {
		data, err := compute()
		if err != nil {
			return false, err
		}
		return false, decode(data)
	}

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return false, f.err
		}
		s.mu.Lock()
		s.stats.Deduped++
		s.stats.TimeSavedNS += f.saved
		s.mu.Unlock()
		s.met.deduped.Inc()
		s.met.timeSavedNS.Add(uint64(f.saved))
		return f.hit, decode(f.data)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
	}()

	if value, computeNS, ok := s.load(key); ok {
		if err := decode(value); err != nil {
			// The envelope parsed but the payload does not decode —
			// e.g. written by an incompatible build. Same treatment as
			// a truncated file: recompute.
			s.note(func(st *Stats) { st.Corrupt++ })
			s.met.corrupt.Inc()
			s.warnf("entry %s: decoding value: %v (recomputing)", key, err)
		} else {
			f.data, f.hit, f.saved = value, true, computeNS
			s.note(func(st *Stats) {
				st.Hits++
				st.BytesRead += int64(len(value))
				st.TimeSavedNS += computeNS
			})
			s.met.hits.Inc()
			s.met.readBytes.Add(uint64(len(value)))
			s.met.timeSavedNS.Add(uint64(computeNS))
			return true, nil
		}
	}

	if s.leased() {
		data, hit, computeNS, err := s.leasedCompute(key, compute)
		if err != nil {
			f.err = err
			return false, err
		}
		f.data, f.hit, f.saved = data, hit, computeNS
		if hit {
			s.note(func(st *Stats) {
				st.Hits++
				st.BytesRead += int64(len(data))
				st.TimeSavedNS += computeNS
			})
			s.met.hits.Inc()
			s.met.readBytes.Add(uint64(len(data)))
			s.met.timeSavedNS.Add(uint64(computeNS))
		} else {
			s.note(func(st *Stats) { st.Misses++ })
			s.met.misses.Inc()
		}
		return hit, decode(data)
	}

	data, computeNS, err := s.computePersist(key, compute)
	if err != nil {
		f.err = err
		return false, err
	}
	f.data, f.saved = data, computeNS
	s.note(func(st *Stats) { st.Misses++ })
	s.met.misses.Inc()
	return false, decode(data)
}

// TryDo is Do without blocking on someone else's in-flight compute: it
// serves hits, claims and computes unclaimed misses, but steps aside
// (done=false, no error) when the key is already being computed by
// another goroutine of this process or — with leases active — by
// another live process. Work-stealing sweep workers use it to skip past
// busy units instead of queueing behind them; stale and corrupt foreign
// leases are still reaped and taken over, so a dead worker's units are
// picked up on the first pass rather than the blocking one.
func (s *Store) TryDo(key string, decode func([]byte) error, compute func() ([]byte, error)) (done, cached bool, err error) {
	if s == nil || s.mode == Off {
		data, err := compute()
		if err != nil {
			return true, false, err
		}
		return true, false, decode(data)
	}

	s.mu.Lock()
	if _, busy := s.flights[key]; busy {
		s.mu.Unlock()
		s.note(func(st *Stats) { st.LeaseWaited++ })
		s.met.leaseWaited.Inc()
		return false, false, nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
	}()

	if value, computeNS, ok := s.load(key); ok {
		if err := decode(value); err != nil {
			s.note(func(st *Stats) { st.Corrupt++ })
			s.met.corrupt.Inc()
			s.warnf("entry %s: decoding value: %v (recomputing)", key, err)
		} else {
			f.data, f.hit, f.saved = value, true, computeNS
			s.note(func(st *Stats) {
				st.Hits++
				st.BytesRead += int64(len(value))
				st.TimeSavedNS += computeNS
			})
			s.met.hits.Inc()
			s.met.readBytes.Add(uint64(len(value)))
			s.met.timeSavedNS.Add(uint64(computeNS))
			return true, true, nil
		}
	}

	if s.leased() {
		for {
			l, acquired, aerr := s.acquireLease(key)
			if aerr != nil {
				s.warnf("acquiring lease %s: %v (computing without coordination)", key, aerr)
				break
			}
			if acquired {
				s.note(func(st *Stats) { st.LeaseAcquired++ })
				s.met.leaseAcquired.Inc()
				stop := s.startHeartbeat(l)
				data, computeNS, err := s.computePersist(key, compute)
				stop()
				s.releaseLease(key)
				if err != nil {
					f.err = err
					return true, false, err
				}
				f.data, f.saved = data, computeNS
				s.note(func(st *Stats) { st.Misses++ })
				s.met.misses.Inc()
				return true, false, decode(data)
			}
			held, ok, corrupt := s.readLease(key)
			switch {
			case corrupt:
				s.note(func(st *Stats) { st.LeaseCorrupt++ })
				s.met.leaseCorrupt.Inc()
				s.warnf("lease %s: corrupt (reaping and recomputing)", key)
				s.reapLease(key)
				continue
			case !ok:
				// Released between acquire and read: the holder just
				// finished or failed. Serve its entry if present,
				// otherwise retry the claim.
				if value, computeNS, loaded := s.load(key); loaded {
					if err := decode(value); err == nil {
						f.data, f.hit, f.saved = value, true, computeNS
						s.note(func(st *Stats) {
							st.Hits++
							st.BytesRead += int64(len(value))
							st.TimeSavedNS += computeNS
						})
						s.met.hits.Inc()
						s.met.readBytes.Add(uint64(len(value)))
						s.met.timeSavedNS.Add(uint64(computeNS))
						return true, true, nil
					}
				}
				continue
			case s.Clock()-held.BeatNS > s.Lease.TTLNS:
				s.note(func(st *Stats) { st.LeaseTakeovers++ })
				s.met.leaseTakeovers.Inc()
				s.warnf("lease %s: stale (owner %s, silent beyond ttl; taking over)", key, held.Owner)
				s.reapLease(key)
				continue
			default:
				s.note(func(st *Stats) { st.LeaseWaited++ })
				s.met.leaseWaited.Inc()
				return false, false, nil
			}
		}
	}

	data, computeNS, err := s.computePersist(key, compute)
	if err != nil {
		f.err = err
		return true, false, err
	}
	f.data, f.saved = data, computeNS
	s.note(func(st *Stats) { st.Misses++ })
	s.met.misses.Inc()
	return true, false, decode(data)
}

// Has reports whether an entry file exists for key — the cheap
// completion probe sweep coordinators use to mark manifest state
// without decoding payloads. A truncated or corrupt entry may report
// true; the merge pass decodes through Do, which recomputes such
// entries, so a false positive costs one recompute, never a wrong
// result.
func (s *Store) Has(key string) bool {
	if s == nil || s.mode == Off {
		return false
	}
	info, err := os.Stat(s.entryPath(key))
	return err == nil && info.Size() > 0
}

// load reads and validates one entry. A missing file is a silent miss;
// anything else that goes wrong is counted as corruption and warned
// about, never returned as an error.
func (s *Store) load(key string) (value []byte, computeNS int64, ok bool) {
	data, err := os.ReadFile(s.entryPath(key))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.note(func(st *Stats) { st.Corrupt++ })
			s.met.corrupt.Inc()
			s.warnf("reading entry %s: %v (recomputing)", key, err)
		}
		return nil, 0, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		s.note(func(st *Stats) { st.Corrupt++ })
		s.met.corrupt.Inc()
		s.warnf("entry %s: corrupt envelope: %v (recomputing)", key, err)
		return nil, 0, false
	}
	if e.Schema != entrySchema || e.Key != key || len(e.Value) == 0 {
		s.note(func(st *Stats) { st.Corrupt++ })
		s.met.corrupt.Inc()
		s.warnf("entry %s: schema/key mismatch (recomputing)", key)
		return nil, 0, false
	}
	return e.Value, e.ComputeNanos, true
}

// persist writes one entry atomically: marshal to a temp file in the
// final directory, fsync-free rename into place. rename(2) is atomic on
// POSIX, so concurrent processes racing on a key both land a complete
// entry and the loser's write simply replaces an identical value.
func (s *Store) persist(key string, value []byte, computeNS int64) error {
	data, err := json.Marshal(entry{
		Schema:       entrySchema,
		Key:          key,
		ComputeNanos: computeNS,
		Value:        value,
	})
	if err != nil {
		return err
	}
	path := s.entryPath(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+key[:8]+"-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// note applies a stats mutation under the lock.
func (s *Store) note(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// warnf forwards to the Warnf hook when one is installed.
func (s *Store) warnf(format string, args ...any) {
	if s.Warnf != nil {
		s.Warnf(format, args...)
	}
}
