package cache

import "nbtinoc/internal/metrics"

// Exported instrument names mirroring Stats into the process registry.
// The cmd/tables monitor acceptance test keys on the hit/miss series.
const (
	// MetricHits counts disk lookups served from the cache.
	MetricHits = "cache_hits_total"
	// MetricMisses counts disk lookups that fell through to compute.
	MetricMisses = "cache_misses_total"
	// MetricDeduped counts Do calls that joined an in-flight leader.
	MetricDeduped = "cache_deduped_total"
	// MetricCorrupt counts damaged entries treated as misses.
	MetricCorrupt = "cache_corrupt_total"
	// MetricReadBytes / MetricWrittenBytes are value payload volumes.
	MetricReadBytes    = "cache_read_bytes_total"
	MetricWrittenBytes = "cache_written_bytes_total"
	// MetricTimeSavedNS accumulates the recorded compute duration of
	// every hit and dedup, in nanoseconds.
	MetricTimeSavedNS = "cache_time_saved_ns_total"
	// MetricLeaseAcquired counts keys claimed for cross-process
	// single-flight; MetricLeaseWaited counts lookups that found a
	// foreign claim and waited (Do) or stepped aside (TryDo).
	MetricLeaseAcquired = "cache_lease_acquired_total"
	MetricLeaseWaited   = "cache_lease_waited_total"
	// MetricLeaseTakeovers counts stale leases reaped after their
	// holder went silent; MetricLeaseCorrupt counts unreadable lease
	// files reaped.
	MetricLeaseTakeovers = "cache_lease_takeovers_total"
	MetricLeaseCorrupt   = "cache_lease_corrupt_total"
)

// storeMetrics are the per-store handles into the process registry,
// resolved at Open; all nil when instrumentation is disabled. They
// mirror the Stats counters — Stats stays the authoritative, printable
// record; these feed the live monitor.
type storeMetrics struct {
	hits, misses, deduped, corrupt *metrics.Counter
	readBytes, writtenBytes        *metrics.Counter
	timeSavedNS                    *metrics.Counter
	leaseAcquired, leaseWaited     *metrics.Counter
	leaseTakeovers, leaseCorrupt   *metrics.Counter
}

// newStoreMetrics resolves the cache instruments from the process
// default registry.
func newStoreMetrics() storeMetrics {
	r := metrics.Default()
	if r == nil {
		return storeMetrics{}
	}
	return storeMetrics{
		hits:         r.Counter(MetricHits, "Cache lookups served from disk."),
		misses:       r.Counter(MetricMisses, "Cache lookups that fell through to compute."),
		deduped:      r.Counter(MetricDeduped, "Lookups deduplicated onto an in-flight leader."),
		corrupt:      r.Counter(MetricCorrupt, "Damaged cache entries treated as misses."),
		readBytes:    r.Counter(MetricReadBytes, "Value bytes read from the cache."),
		writtenBytes: r.Counter(MetricWrittenBytes, "Value bytes written to the cache."),
		timeSavedNS:  r.Counter(MetricTimeSavedNS, "Recorded compute nanoseconds saved by hits and dedups."),
		leaseAcquired: r.Counter(MetricLeaseAcquired,
			"Keys claimed for cross-process single-flight."),
		leaseWaited: r.Counter(MetricLeaseWaited,
			"Lookups that found a foreign lease and waited or stepped aside."),
		leaseTakeovers: r.Counter(MetricLeaseTakeovers,
			"Stale leases reaped after their holder went silent."),
		leaseCorrupt: r.Counter(MetricLeaseCorrupt,
			"Unreadable lease files reaped."),
	}
}
