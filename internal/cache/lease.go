package cache

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Cross-process single-flight.
//
// The in-process flight map deduplicates concurrent Do calls inside one
// process; lease files extend the same guarantee across processes that
// share a cache directory. On a miss the computing process claims the
// key by publishing a lease file next to the (future) entry; other
// processes that miss on the same key observe the lease and poll for
// the entry instead of recomputing. The protocol never trusts a lease
// forever: the holder refreshes a heartbeat timestamp while computing,
// and a lease whose heartbeat stops advancing for TTLNS (holder killed,
// machine rebooted mid-campaign) is reaped by whoever notices, who then
// claims the key and recomputes.
//
// Every transition is a single atomic filesystem operation, so no
// observer ever sees a half-written lease:
//
//   - acquire: write the lease body to a temp file, then link(2) it to
//     the lease path. Link fails with EEXIST when the key is already
//     held — the claim and the existence check are one atomic step.
//   - refresh: write the new heartbeat to a temp file, then rename(2)
//     over the lease path. Only the holder refreshes, so the replace
//     cannot race another writer.
//   - reap: rename(2) the expired lease to a reaper-owned name. Rename
//     succeeds for exactly one reaper; the losers see ENOENT and retry
//     the acquire path.
//
// A reaped-then-recomputed key and a normally-computed key persist
// byte-identical entries (the simulator is deterministic), so even the
// worst-case race — a lease misjudged as stale while its holder is
// still alive — costs a duplicate compute, never a wrong or torn
// result. Corrupt lease files (truncated by a crash mid-write of a
// non-atomic filesystem, or hand-damaged) are treated exactly like
// stale ones: counted, reaped, recomputed.

// LeasePolicy configures cross-process single-flight on a Store. All
// durations are nanoseconds; the wall clock and the sleeping are
// injected by package main (tests inject fakes), so the library itself
// never touches time — the same division of labour as Store.Clock under
// the nbtilint wallclock rule.
type LeasePolicy struct {
	// TTLNS is the staleness horizon: a lease whose heartbeat is older
	// than this is considered abandoned and reaped.
	TTLNS int64
	// HeartbeatNS is the refresh period of the holder while computing.
	// It must be well below TTLNS (a factor of 3 or more) so one missed
	// beat never looks like a death.
	HeartbeatNS int64
	// PollNS is how long a waiter sleeps between checks for the entry.
	PollNS int64
	// Sleep blocks for the given nanoseconds. Injected (time.Sleep in
	// CLIs, a fake in tests); leases are inert when nil.
	Sleep func(ns int64)
}

// DefaultLeaseNS are the CLI defaults: takeover after 10 s of silence,
// a 2 s heartbeat, a 25 ms waiter poll.
const (
	DefaultLeaseTTLNS       = int64(10_000_000_000)
	DefaultLeaseHeartbeatNS = int64(2_000_000_000)
	DefaultLeasePollNS      = int64(25_000_000)
)

// DefaultLeasePolicy returns the default timing constants with the
// given sleeper.
func DefaultLeasePolicy(sleep func(ns int64)) *LeasePolicy {
	return &LeasePolicy{
		TTLNS:       DefaultLeaseTTLNS,
		HeartbeatNS: DefaultLeaseHeartbeatNS,
		PollNS:      DefaultLeasePollNS,
		Sleep:       sleep,
	}
}

// leaseSchema versions the lease file body, like entrySchema for
// entries: an incompatible future body is "corrupt" to this build and
// reaped rather than misread.
const leaseSchema = 1

// lease is the on-disk lease body.
type lease struct {
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	// Owner identifies the holder (pid plus acquisition timestamp) for
	// diagnostics and for recognising our own lease on refresh.
	Owner string `json:"owner"`
	PID   int    `json:"pid"`
	// BeatNS is the holder's last heartbeat, in the holder's Clock
	// domain. Workers sharing a cache dir share a machine (and hence a
	// clock); staleness is judged against the observer's Clock.
	BeatNS int64 `json:"beat_ns"`
}

// leasePath maps a key to its lease file, sharded alongside the entry.
func (s *Store) leasePath(key string) string {
	return filepath.Join(s.dir, key[:2], key+".lease")
}

// leased reports whether the cross-process protocol is active: a policy
// with a sleeper, a clock to judge staleness, and a writable store (a
// read-only store never computes into the shared dir, so it has nothing
// to claim).
func (s *Store) leased() bool {
	return s.Lease != nil && s.Lease.Sleep != nil && s.Clock != nil && s.mode == ReadWrite
}

// writeLeaseTemp writes a lease body to a temp file in the lease's
// directory, returning the temp path.
func (s *Store) writeLeaseTemp(l lease) (string, error) {
	data, err := json.Marshal(l)
	if err != nil {
		return "", err
	}
	dir := filepath.Dir(s.leasePath(l.Key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, "."+l.Key[:8]+"-lease-*.tmp")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return tmp.Name(), nil
}

// acquireLease attempts to claim key. It returns the held lease body on
// success. Failure to claim because another process holds the lease is
// (lease{}, false, nil); filesystem trouble is returned as an error and
// treated by callers as "compute without coordination" — a damaged
// filesystem can cost duplicate work but never a failed run.
func (s *Store) acquireLease(key string) (lease, bool, error) {
	l := lease{
		Schema: leaseSchema,
		Key:    key,
		PID:    os.Getpid(),
		BeatNS: s.Clock(),
	}
	l.Owner = fmt.Sprintf("%d-%d", l.PID, l.BeatNS)
	tmp, err := s.writeLeaseTemp(l)
	if err != nil {
		return lease{}, false, err
	}
	err = os.Link(tmp, s.leasePath(key))
	os.Remove(tmp)
	if err == nil {
		return l, true, nil
	}
	if errors.Is(err, fs.ErrExist) {
		return lease{}, false, nil
	}
	return lease{}, false, err
}

// refreshLease republishes the holder's lease with a fresh heartbeat:
// temp file + rename, atomically replacing the previous body. If the
// lease was reaped out from under a live holder (a TTL misjudgement),
// the rename simply re-creates it; the resulting duplicate compute is
// benign (see the package comment).
func (s *Store) refreshLease(l lease) error {
	l.BeatNS = s.Clock()
	tmp, err := s.writeLeaseTemp(l)
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, s.leasePath(l.Key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// releaseLease drops the holder's claim after the entry is persisted
// (or the compute failed and someone else should try).
func (s *Store) releaseLease(key string) {
	os.Remove(s.leasePath(key))
}

// startHeartbeat refreshes l every HeartbeatNS until the returned stop
// function runs. The heartbeat period is slept in PollNS slices with a
// stop check between them, so stop() returns within one poll interval
// rather than stalling a finished compute for a whole heartbeat.
func (s *Store) startHeartbeat(l lease) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	step := s.Lease.PollNS
	if step <= 0 || step > s.Lease.HeartbeatNS {
		step = s.Lease.HeartbeatNS
	}
	go func() {
		defer close(finished)
		for {
			for slept := int64(0); slept < s.Lease.HeartbeatNS; slept += step {
				s.Lease.Sleep(step)
				select {
				case <-done:
					return
				default:
				}
			}
			if err := s.refreshLease(l); err != nil {
				s.warnf("refreshing lease %s: %v", l.Key, err)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// readLease loads and validates the lease for key. ok=false with
// stale=false means no lease exists; ok=false with stale=true means a
// lease file exists but is unreadable or structurally wrong (counted as
// corrupt by the caller) and should be reaped.
func (s *Store) readLease(key string) (l lease, ok, corrupt bool) {
	data, err := os.ReadFile(s.leasePath(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return lease{}, false, false
		}
		return lease{}, false, true
	}
	if err := json.Unmarshal(data, &l); err != nil {
		return lease{}, false, true
	}
	if l.Schema != leaseSchema || l.Key != key || l.BeatNS <= 0 {
		return lease{}, false, true
	}
	return l, true, false
}

// reapLease atomically retires a stale or corrupt lease: rename to a
// reaper-unique name, then remove. Exactly one concurrent reaper wins
// the rename; the others see ENOENT and simply retry their acquire.
func (s *Store) reapLease(key string) bool {
	dead := fmt.Sprintf("%s.reaped-%d-%d", s.leasePath(key), os.Getpid(), s.Clock())
	if err := os.Rename(s.leasePath(key), dead); err != nil {
		return false
	}
	os.Remove(dead)
	return true
}

// leasedCompute is the miss path of Do when cross-process single-flight
// is active: claim the key and compute, or wait out another process's
// claim and serve its entry. It returns the value bytes, whether they
// came from another process's compute (a hit), and the recorded compute
// nanoseconds for time-saved accounting.
func (s *Store) leasedCompute(key string, compute func() ([]byte, error)) (value []byte, hit bool, computeNS int64, err error) {
	waited := false
	for {
		l, acquired, aerr := s.acquireLease(key)
		if aerr != nil {
			// Filesystem trouble around the lease dance must never fail
			// a run: warn and fall back to an uncoordinated compute.
			s.warnf("acquiring lease %s: %v (computing without coordination)", key, aerr)
			value, computeNS, err = s.computePersist(key, compute)
			return value, false, computeNS, err
		}
		if acquired {
			s.note(func(st *Stats) { st.LeaseAcquired++ })
			s.met.leaseAcquired.Inc()
			stop := s.startHeartbeat(l)
			value, computeNS, err = s.computePersist(key, compute)
			stop()
			s.releaseLease(key)
			return value, false, computeNS, err
		}
		// Key is claimed elsewhere. Wait for the entry, judging the
		// holder's pulse each round.
		if !waited {
			waited = true
			s.note(func(st *Stats) { st.LeaseWaited++ })
			s.met.leaseWaited.Inc()
		}
		l, ok, corrupt := s.readLease(key)
		switch {
		case corrupt:
			s.note(func(st *Stats) { st.LeaseCorrupt++ })
			s.met.leaseCorrupt.Inc()
			s.warnf("lease %s: corrupt (reaping and recomputing)", key)
			s.reapLease(key)
			continue
		case !ok:
			// Released between our acquire attempt and the read: the
			// holder finished (entry should be there) or failed (we
			// should claim). Check the entry, then retry the acquire.
		case s.Clock()-l.BeatNS > s.Lease.TTLNS:
			s.note(func(st *Stats) { st.LeaseTakeovers++ })
			s.met.leaseTakeovers.Inc()
			s.warnf("lease %s: stale (owner %s, silent beyond ttl; taking over)", key, l.Owner)
			s.reapLease(key)
			continue
		default:
			s.Lease.Sleep(s.Lease.PollNS)
		}
		if value, computeNS, ok := s.load(key); ok {
			return value, true, computeNS, nil
		}
	}
}

// computePersist runs compute, timestamps it, and persists the entry in
// read-write mode — the shared tail of the coordinated and
// uncoordinated miss paths. Stats for the miss itself are counted by
// the caller's caller (Do), matching the original single-process flow.
func (s *Store) computePersist(key string, compute func() ([]byte, error)) (value []byte, computeNS int64, err error) {
	var start int64
	if s.Clock != nil {
		start = s.Clock()
	}
	value, err = compute()
	if err != nil {
		return nil, 0, err
	}
	if s.Clock != nil {
		computeNS = s.Clock() - start
	}
	if s.mode == ReadWrite {
		if perr := s.persist(key, value, computeNS); perr != nil {
			s.warnf("writing entry %s: %v", key, perr)
		} else {
			s.note(func(st *Stats) { st.BytesWritten += int64(len(value)) })
			s.met.writtenBytes.Add(uint64(len(value)))
		}
	}
	return value, computeNS, nil
}
