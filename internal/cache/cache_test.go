package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s"`
}

// do runs one Do round-trip with JSON encode/decode glue.
func do(t *testing.T, s *Store, key string, compute func() (payload, error)) (payload, bool) {
	t.Helper()
	var got payload
	hit, err := s.Do(key,
		func(data []byte) error { return json.Unmarshal(data, &got) },
		func() ([]byte, error) {
			p, err := compute()
			if err != nil {
				return nil, err
			}
			return json.Marshal(p)
		})
	if err != nil {
		t.Fatalf("Do(%s): %v", key, err)
	}
	return got, hit
}

func TestKeyOfDeterministicAndSensitive(t *testing.T) {
	type k struct {
		A int
		B string
	}
	k1, err := KeyOf(k{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyOf(k{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equal values keyed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", k1)
	}
	k3, err := KeyOf(k{2, "x"})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("distinct values share a key")
	}
	if _, err := KeyOf(func() {}); err == nil {
		t.Error("unkeyable value accepted")
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"off": Off, "ro": ReadOnly, "rw": ReadWrite} {
		m, err := ParseMode(in)
		if err != nil || m != want {
			t.Errorf("ParseMode(%q) = %v, %v", in, m, err)
		}
		if m.String() != in {
			t.Errorf("Mode(%q).String() = %q", in, m.String())
		}
	}
	if _, err := ParseMode("yes"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestHitMissRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key, _ := KeyOf("scenario-1")
	want := payload{N: 42, S: "answer"}
	computes := 0

	s := Open(dir, ReadWrite)
	got, hit := do(t, s, key, func() (payload, error) { computes++; return want, nil })
	if hit || got != want {
		t.Fatalf("first Do: hit=%v got=%+v", hit, got)
	}
	got, hit = do(t, s, key, func() (payload, error) { computes++; return payload{}, nil })
	if !hit || got != want {
		t.Fatalf("second Do: hit=%v got=%+v", hit, got)
	}
	if computes != 1 {
		t.Errorf("computes = %d, want 1", computes)
	}

	// A fresh store over the same directory serves the persisted entry.
	s2 := Open(dir, ReadOnly)
	got, hit = do(t, s2, key, func() (payload, error) {
		t.Error("recomputed despite persisted entry")
		return payload{}, nil
	})
	if !hit || got != want {
		t.Fatalf("fresh store: hit=%v got=%+v", hit, got)
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Errorf("byte counters empty: %+v", st)
	}
}

func TestReadOnlyDoesNotPersist(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, ReadOnly)
	key, _ := KeyOf("ro")
	if _, hit := do(t, s, key, func() (payload, error) { return payload{N: 1}, nil }); hit {
		t.Fatal("miss reported as hit")
	}
	if _, err := os.Stat(s.entryPath(key)); !os.IsNotExist(err) {
		t.Errorf("read-only store wrote an entry: %v", err)
	}
	if st := s.Stats(); st.BytesWritten != 0 {
		t.Errorf("BytesWritten = %d in ro mode", st.BytesWritten)
	}
}

func TestOffModeAlwaysComputes(t *testing.T) {
	s := Open(t.TempDir(), Off)
	key, _ := KeyOf("off")
	computes := 0
	for i := 0; i < 2; i++ {
		if _, hit := do(t, s, key, func() (payload, error) { computes++; return payload{}, nil }); hit {
			t.Fatal("off-mode store reported a hit")
		}
	}
	if computes != 2 {
		t.Errorf("computes = %d, want 2", computes)
	}
	// A nil store behaves the same.
	var nilStore *Store
	if _, hit := do(t, nilStore, key, func() (payload, error) { return payload{}, nil }); hit {
		t.Fatal("nil store reported a hit")
	}
	if nilStore.Mode() != Off || (nilStore.Stats() != Stats{}) {
		t.Error("nil store accessors not zero")
	}
}

func TestSingleFlight(t *testing.T) {
	s := Open(t.TempDir(), ReadWrite)
	key, _ := KeyOf("contended")
	var computes atomic.Int64
	gate := make(chan struct{})

	const workers = 16
	var wg sync.WaitGroup
	results := make([]payload, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var got payload
			_, err := s.Do(key,
				func(data []byte) error { return json.Unmarshal(data, &got) },
				func() ([]byte, error) {
					computes.Add(1)
					<-gate // hold every follower in the dedup path
					return json.Marshal(payload{N: 7})
				})
			if err != nil {
				t.Error(err)
			}
			results[w] = got
		}(w)
	}
	// Let the leader enter compute, give followers time to queue, then
	// release. Followers arriving after close(gate) still dedup onto
	// the flight until it completes, or hit the persisted entry after.
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		// More than one compute is only possible if a worker arrived
		// after the flight fully retired AND the entry was not yet
		// persisted — impossible here since persist happens before the
		// flight closes.
		t.Errorf("computes = %d, want 1 (single-flight)", n)
	}
	for w, got := range results {
		if got.N != 7 {
			t.Errorf("worker %d got %+v", w, got)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits+st.Deduped != workers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+dedups", st, workers-1)
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	s := Open(t.TempDir(), ReadWrite)
	key, _ := KeyOf("boom")
	wantErr := fmt.Errorf("engine exploded")
	_, err := s.Do(key,
		func([]byte) error { return nil },
		func() ([]byte, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if _, err := os.Stat(s.entryPath(key)); !os.IsNotExist(err) {
		t.Error("failed compute left an entry behind")
	}
	// The failed flight must not wedge the key: a later call computes.
	got, hit := do(t, s, key, func() (payload, error) { return payload{N: 3}, nil })
	if hit || got.N != 3 {
		t.Errorf("retry after error: hit=%v got=%+v", hit, got)
	}
}

func corruptionCase(t *testing.T, name string, damage func(path string)) {
	t.Run(name, func(t *testing.T) {
		dir := t.TempDir()
		var warnings []string
		s := Open(dir, ReadWrite)
		s.Warnf = func(format string, args ...any) {
			warnings = append(warnings, fmt.Sprintf(format, args...))
		}
		key, _ := KeyOf(name)
		want := payload{N: 9, S: name}
		do(t, s, key, func() (payload, error) { return want, nil })
		damage(s.entryPath(key))

		got, hit := do(t, s, key, func() (payload, error) { return want, nil })
		if hit || got != want {
			t.Fatalf("damaged entry: hit=%v got=%+v", hit, got)
		}
		if st := s.Stats(); st.Corrupt == 0 {
			t.Errorf("corruption not counted: %+v", st)
		}
		if len(warnings) == 0 {
			t.Error("corruption not warned about")
		}
		// Read-write mode heals the entry: third call hits again.
		got, hit = do(t, s, key, func() (payload, error) {
			t.Error("entry not rewritten after corruption")
			return payload{}, nil
		})
		if !hit || got != want {
			t.Fatalf("healed entry: hit=%v got=%+v", hit, got)
		}
	})
}

func TestCorruptEntryFallsBackToRecompute(t *testing.T) {
	corruptionCase(t, "truncated", func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptionCase(t, "garbage", func(path string) {
		if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptionCase(t, "empty", func(path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptionCase(t, "key-mismatch", func(path string) {
		data, err := json.Marshal(entry{Schema: entrySchema, Key: strings.Repeat("0", 64),
			Value: json.RawMessage(`{"n":1,"s":""}`)})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptionCase(t, "value-type-mismatch", func(path string) {
		// Envelope is intact but the value does not decode into the
		// caller's type.
		key := filepath.Base(path)
		key = strings.TrimSuffix(key, ".json")
		data, err := json.Marshal(entry{Schema: entrySchema, Key: key,
			Value: json.RawMessage(`[1,2,3]`)})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPersistIsAtomicAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, ReadWrite)
	for i := 0; i < 8; i++ {
		key, _ := KeyOf(i)
		do(t, s, key, func() (payload, error) { return payload{N: i}, nil })
	}
	var leftovers []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".tmp") {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if len(leftovers) > 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

func TestTimeSavedFromRecordedComputeDuration(t *testing.T) {
	dir := t.TempDir()
	var now int64
	clock := func() int64 { n := now; now += 1_000_000; return n } // 1ms per read

	s := Open(dir, ReadWrite)
	s.Clock = clock
	key, _ := KeyOf("timed")
	do(t, s, key, func() (payload, error) { return payload{N: 1}, nil })
	if st := s.Stats(); st.TimeSavedNS != 0 {
		t.Errorf("miss credited time saved: %+v", st)
	}

	s2 := Open(dir, ReadWrite)
	do(t, s2, key, func() (payload, error) { return payload{}, nil })
	if st := s2.Stats(); st.TimeSavedNS != 1_000_000 {
		t.Errorf("TimeSavedNS = %d, want the recorded 1ms", st.TimeSavedNS)
	}
}

func TestStatsSubAndString(t *testing.T) {
	a := Stats{Hits: 5, Misses: 3, Deduped: 2, Corrupt: 1, BytesRead: 100, BytesWritten: 50, TimeSavedNS: 2e9}
	b := Stats{Hits: 2, Misses: 1, Deduped: 1, Corrupt: 0, BytesRead: 40, BytesWritten: 20, TimeSavedNS: 1e9}
	d := a.Sub(b)
	want := Stats{Hits: 3, Misses: 2, Deduped: 1, Corrupt: 1, BytesRead: 60, BytesWritten: 30, TimeSavedNS: 1e9}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
	const wantStr = "hits=3 misses=2 deduped=1 corrupt=1 read=60B written=30B saved=1.00s"
	if d.String() != wantStr {
		t.Errorf("String() = %q, want %q", d.String(), wantStr)
	}
}

func TestDefaultDirNonEmpty(t *testing.T) {
	if DefaultDir() == "" {
		t.Error("DefaultDir() empty")
	}
}
