package cache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// leaseTestPolicy returns a policy with real sleeping and tight timings
// for concurrency tests.
func leaseTestPolicy() *LeasePolicy {
	return &LeasePolicy{
		TTLNS:       int64(5 * time.Second),
		HeartbeatNS: int64(10 * time.Millisecond),
		PollNS:      int64(2 * time.Millisecond),
		Sleep:       func(ns int64) { time.Sleep(time.Duration(ns)) },
	}
}

// leasedStore opens a read-write store on dir with real clock+sleep.
func leasedStore(t *testing.T, dir string) *Store {
	t.Helper()
	s := Open(dir, ReadWrite)
	s.Clock = func() int64 { return time.Now().UnixNano() }
	s.Lease = leaseTestPolicy()
	return s
}

// fakeLeasedStore opens a store with a settable clock and a no-op
// sleeper, for deterministic staleness tests.
func fakeLeasedStore(dir string, now *int64) *Store {
	s := Open(dir, ReadWrite)
	s.Clock = func() int64 { return atomic.LoadInt64(now) }
	s.Lease = &LeasePolicy{TTLNS: 100, HeartbeatNS: 10, PollNS: 1, Sleep: func(int64) {}}
	return s
}

// plantLease writes a lease file for key with the given heartbeat, as
// if another process held (or abandoned) the claim.
func plantLease(t *testing.T, s *Store, key string, beatNS int64) {
	t.Helper()
	l := lease{Schema: leaseSchema, Key: key, Owner: "planted", PID: 1, BeatNS: beatNS}
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	path := s.leasePath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func testKey(t *testing.T, v any) string {
	t.Helper()
	key, err := KeyOf(v)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestLeaseCrossStoreSingleFlight runs two Store handles on one
// directory — the in-process model of two worker processes — and
// checks that a key computed under one store's lease is served to the
// other as a hit, with exactly one compute between them.
func TestLeaseCrossStoreSingleFlight(t *testing.T) {
	dir := t.TempDir()
	a, b := leasedStore(t, dir), leasedStore(t, dir)
	key := testKey(t, "cross-store")

	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	errc := make(chan error, 2)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		var got payload
		hit, err := a.Do(key,
			func(data []byte) error { return json.Unmarshal(data, &got) },
			func() ([]byte, error) {
				close(started)
				<-release
				computes.Add(1)
				return json.Marshal(payload{N: 1})
			})
		if err != nil {
			errc <- err
			return
		}
		if hit || got.N != 1 {
			errc <- fmt.Errorf("leader: hit=%v got=%+v", hit, got)
		}
	}()
	<-started

	wg.Add(1)
	go func() {
		defer wg.Done()
		var got payload
		hit, err := b.Do(key,
			func(data []byte) error { return json.Unmarshal(data, &got) },
			func() ([]byte, error) {
				computes.Add(1)
				return json.Marshal(payload{N: 2})
			})
		if err != nil {
			errc <- err
			return
		}
		if !hit || got.N != 1 {
			errc <- fmt.Errorf("waiter: hit=%v got=%+v (want hit of the leader's value)", hit, got)
		}
	}()

	// Let the waiter observe the foreign lease before the leader is
	// released, so the cross-process wait path actually runs.
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().LeaseWaited == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never observed the foreign lease")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want exactly 1", n)
	}
	if st := a.Stats(); st.Misses != 1 || st.LeaseAcquired != 1 {
		t.Errorf("leader stats = %+v, want 1 miss, 1 lease acquired", st)
	}
	if st := b.Stats(); st.Hits != 1 || st.LeaseWaited != 1 || st.Misses != 0 {
		t.Errorf("waiter stats = %+v, want 1 hit, 1 lease wait, 0 misses", st)
	}
	if _, err := os.Stat(a.leasePath(key)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("lease file survives release: %v", err)
	}
}

// TestLeaseStaleTakeover plants a lease whose heartbeat stopped beyond
// the TTL — a killed worker — and checks the next Do reaps it and
// computes.
func TestLeaseStaleTakeover(t *testing.T) {
	dir := t.TempDir()
	now := int64(1_000_000)
	s := fakeLeasedStore(dir, &now)
	key := testKey(t, "stale")
	plantLease(t, s, key, 1) // ancient heartbeat

	got, hit := do(t, s, key, func() (payload, error) { return payload{N: 7}, nil })
	if hit || got.N != 7 {
		t.Errorf("got hit=%v %+v, want fresh compute", hit, got)
	}
	st := s.Stats()
	if st.LeaseTakeovers != 1 || st.LeaseAcquired != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 takeover, 1 acquire, 1 miss", st)
	}
	if _, err := os.Stat(s.leasePath(key)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("lease not cleaned up after takeover: %v", err)
	}
}

// TestLeaseFreshNotTakenOver: a lease inside its TTL is honoured — the
// waiter polls until the holder's entry appears rather than reaping.
func TestLeaseFreshNotTakenOver(t *testing.T) {
	dir := t.TempDir()
	now := int64(1_000_000)
	s := fakeLeasedStore(dir, &now)
	key := testKey(t, "fresh")
	plantLease(t, s, key, now-50) // inside TTL=100

	// The planted holder never computes; publish its entry from the
	// poll loop itself so the waiter terminates.
	polls := 0
	s.Lease.Sleep = func(int64) {
		polls++
		if polls == 3 {
			if err := s.persist(key, []byte(`{"n":9,"s":""}`), 5); err != nil {
				t.Error(err)
			}
		}
	}
	got, hit := do(t, s, key, func() (payload, error) { return payload{N: 1}, nil })
	if !hit || got.N != 9 {
		t.Errorf("got hit=%v %+v, want the holder's entry", hit, got)
	}
	st := s.Stats()
	if st.LeaseWaited != 1 || st.LeaseTakeovers != 0 || st.Misses != 0 || st.Hits != 1 {
		t.Errorf("stats = %+v, want a waited hit and no takeover", st)
	}
	if polls < 3 {
		t.Errorf("waiter polled %d times, want >= 3", polls)
	}
}

// TestLeaseCorruptReaped: an unreadable lease file is counted, reaped
// and recomputed — a crashed writer can slow a key down, never wedge it.
func TestLeaseCorruptReaped(t *testing.T) {
	dir := t.TempDir()
	now := int64(1_000_000)
	s := fakeLeasedStore(dir, &now)
	for name, body := range map[string]string{
		"garbage":    "not json {",
		"wrong-key":  `{"schema":1,"key":"0000","owner":"x","pid":1,"beat_ns":5}`,
		"zero-beat":  `{"schema":1,"key":"%s","owner":"x","pid":1,"beat_ns":0}`,
		"bad-schema": `{"schema":99,"key":"%s","owner":"x","pid":1,"beat_ns":5}`,
	} {
		t.Run(name, func(t *testing.T) {
			key := testKey(t, name)
			path := s.leasePath(key)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			content := body
			if name == "zero-beat" || name == "bad-schema" {
				content = fmt.Sprintf(body, key)
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			before := s.Stats()
			got, hit := do(t, s, key, func() (payload, error) { return payload{N: 3}, nil })
			if hit || got.N != 3 {
				t.Errorf("got hit=%v %+v, want recompute", hit, got)
			}
			d := s.Stats().Sub(before)
			if d.LeaseCorrupt != 1 || d.Misses != 1 {
				t.Errorf("stats delta = %+v, want 1 corrupt lease + 1 miss", d)
			}
		})
	}
}

// TestLeaseReleasedOnComputeError: a failed compute must not leave the
// key claimed, or every retry would wait out a TTL.
func TestLeaseReleasedOnComputeError(t *testing.T) {
	dir := t.TempDir()
	s := leasedStore(t, dir)
	key := testKey(t, "fail")
	boom := errors.New("boom")
	_, err := s.Do(key,
		func([]byte) error { return nil },
		func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want %v", err, boom)
	}
	if _, serr := os.Stat(s.leasePath(key)); !errors.Is(serr, os.ErrNotExist) {
		t.Errorf("lease survives failed compute: %v", serr)
	}
	// The key is immediately claimable again.
	got, hit := do(t, s, key, func() (payload, error) { return payload{N: 4}, nil })
	if hit || got.N != 4 {
		t.Errorf("retry after failure: hit=%v %+v", hit, got)
	}
}

// TestLeaseInertWhenReadOnlyOrUnconfigured: the protocol only engages
// on a read-write store with both hooks installed.
func TestLeaseInertWhenReadOnlyOrUnconfigured(t *testing.T) {
	dir := t.TempDir()
	ro := Open(dir, ReadOnly)
	ro.Clock = func() int64 { return 1 }
	ro.Lease = &LeasePolicy{TTLNS: 1, HeartbeatNS: 1, PollNS: 1, Sleep: func(int64) {}}
	if ro.leased() {
		t.Error("read-only store reports leases active")
	}
	noSleep := Open(dir, ReadWrite)
	noSleep.Clock = func() int64 { return 1 }
	noSleep.Lease = &LeasePolicy{TTLNS: 1}
	if noSleep.leased() {
		t.Error("store without a sleeper reports leases active")
	}
	noClock := Open(dir, ReadWrite)
	noClock.Lease = &LeasePolicy{TTLNS: 1, Sleep: func(int64) {}}
	if noClock.leased() {
		t.Error("store without a clock reports leases active")
	}
	// And an inert store computes straight through a planted lease.
	key := testKey(t, "inert")
	plantLease(t, noClock, key, 1)
	got, hit := do(t, noClock, key, func() (payload, error) { return payload{N: 5}, nil })
	if hit || got.N != 5 {
		t.Errorf("inert store: hit=%v %+v, want plain compute", hit, got)
	}
}

// TestTryDoSkipsBusyAndServesIdle covers the non-blocking entry point:
// hits and unclaimed misses complete, foreign fresh claims are stepped
// around, stale foreign claims are taken over.
func TestTryDoSkipsBusyAndServesIdle(t *testing.T) {
	dir := t.TempDir()
	now := int64(1_000_000)
	s := fakeLeasedStore(dir, &now)

	// Unclaimed miss: computes.
	key := testKey(t, "trydo")
	var got payload
	done, cached, err := s.TryDo(key,
		func(data []byte) error { return json.Unmarshal(data, &got) },
		func() ([]byte, error) { return json.Marshal(payload{N: 1}) })
	if err != nil || !done || cached || got.N != 1 {
		t.Fatalf("miss TryDo = done=%v cached=%v err=%v got=%+v", done, cached, err, got)
	}
	// Second call: disk hit.
	done, cached, err = s.TryDo(key,
		func(data []byte) error { return json.Unmarshal(data, &got) },
		func() ([]byte, error) { return nil, errors.New("must not compute") })
	if err != nil || !done || !cached {
		t.Fatalf("hit TryDo = done=%v cached=%v err=%v", done, cached, err)
	}

	// Foreign fresh claim: steps aside without computing.
	busyKey := testKey(t, "busy")
	plantLease(t, s, busyKey, now-10)
	done, cached, err = s.TryDo(busyKey,
		func([]byte) error { return nil },
		func() ([]byte, error) { return nil, errors.New("must not compute") })
	if err != nil || done || cached {
		t.Fatalf("busy TryDo = done=%v cached=%v err=%v, want step-aside", done, cached, err)
	}
	if st := s.Stats(); st.LeaseWaited != 1 {
		t.Errorf("stats = %+v, want 1 lease wait", st)
	}

	// Foreign stale claim: taken over and computed on the spot.
	staleKey := testKey(t, "stale-trydo")
	plantLease(t, s, staleKey, 1)
	done, cached, err = s.TryDo(staleKey,
		func(data []byte) error { return json.Unmarshal(data, &got) },
		func() ([]byte, error) { return json.Marshal(payload{N: 6}) })
	if err != nil || !done || cached || got.N != 6 {
		t.Fatalf("stale TryDo = done=%v cached=%v err=%v got=%+v", done, cached, err, got)
	}
	if st := s.Stats(); st.LeaseTakeovers != 1 {
		t.Errorf("stats = %+v, want 1 takeover", st)
	}
}

// TestTryDoStepsAsideForLocalFlight: a key being computed by another
// goroutine of the same process is busy, lease or no lease.
func TestTryDoStepsAsideForLocalFlight(t *testing.T) {
	s := Open(t.TempDir(), ReadWrite)
	key := testKey(t, "local-flight")
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(t, s, key, func() (payload, error) {
			close(started)
			<-release
			return payload{N: 1}, nil
		})
	}()
	<-started
	done, cached, err := s.TryDo(key,
		func([]byte) error { return nil },
		func() ([]byte, error) { return nil, errors.New("must not compute") })
	if err != nil || done || cached {
		t.Fatalf("TryDo during local flight = done=%v cached=%v err=%v, want step-aside", done, cached, err)
	}
	close(release)
	wg.Wait()
}

// TestTryDoOffAndNilCompute: the pass-through modes mirror Do.
func TestTryDoOffAndNil(t *testing.T) {
	var nilStore *Store
	var got payload
	done, cached, err := nilStore.TryDo("",
		func(data []byte) error { return json.Unmarshal(data, &got) },
		func() ([]byte, error) { return json.Marshal(payload{N: 2}) })
	if err != nil || !done || cached || got.N != 2 {
		t.Fatalf("nil-store TryDo = done=%v cached=%v err=%v got=%+v", done, cached, err, got)
	}
}

// TestHas: present after a write, absent before, always false off-mode.
func TestHas(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, ReadWrite)
	key := testKey(t, "has")
	if s.Has(key) {
		t.Error("Has before write")
	}
	do(t, s, key, func() (payload, error) { return payload{N: 1}, nil })
	if !s.Has(key) {
		t.Error("!Has after write")
	}
	var nilStore *Store
	if nilStore.Has(key) {
		t.Error("nil store Has")
	}
}

// TestLeaseHeartbeatAdvances: the holder's heartbeat goroutine refreshes
// the lease while a compute is in flight, so long computes are never
// misjudged as dead.
func TestLeaseHeartbeatAdvances(t *testing.T) {
	dir := t.TempDir()
	s := leasedStore(t, dir)
	s.Lease.HeartbeatNS = int64(2 * time.Millisecond)
	key := testKey(t, "heartbeat")

	// Sample the published lease from inside the compute: the heartbeat
	// goroutine refreshes it concurrently while we sleep.
	var beats []int64
	do(t, s, key, func() (payload, error) {
		for i := 0; i < 30; i++ {
			if l, ok, _ := s.readLease(key); ok {
				beats = append(beats, l.BeatNS)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return payload{N: 1}, nil
	})
	var first, last int64
	for _, b := range beats {
		if first == 0 {
			first = b
		}
		last = b
	}
	if first == 0 || last <= first {
		t.Errorf("heartbeat did not advance: first=%d last=%d over %d samples", first, last, len(beats))
	}
}

// TestStatsAddAndLeaseString covers the aggregation used by sweep
// coordinators and the extended String form.
func TestStatsAddAndLeaseString(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, LeaseAcquired: 1, LeaseWaited: 3}
	b := Stats{Hits: 4, Misses: 1, LeaseTakeovers: 2, LeaseCorrupt: 1, TimeSavedNS: 1e9}
	sum := a.Add(b)
	want := Stats{Hits: 5, Misses: 3, LeaseAcquired: 1, LeaseWaited: 3,
		LeaseTakeovers: 2, LeaseCorrupt: 1, TimeSavedNS: 1e9}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
	const wantStr = "hits=5 misses=3 deduped=0 corrupt=0 read=0B written=0B saved=1.00s" +
		" lease_acq=1 lease_wait=3 lease_steal=2 lease_corrupt=1"
	if sum.String() != wantStr {
		t.Errorf("String() = %q, want %q", sum.String(), wantStr)
	}
	// Without lease traffic the format is unchanged (golden outputs).
	plain := Stats{Hits: 1}
	if got := plain.String(); got != "hits=1 misses=0 deduped=0 corrupt=0 read=0B written=0B saved=0.00s" {
		t.Errorf("plain String() = %q", got)
	}
	// JSON round-trip: the cross-process wire format.
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != sum {
		t.Errorf("JSON round trip = %+v, want %+v", back, sum)
	}
}
