package cache

// Cross-process single-flight proven against real OS processes: the
// test binary re-execs itself as a cache worker (TestMain dispatches on
// an env var), N workers race Do on the same key through one shared
// cache directory, and the compute-log plus the summed per-process
// Stats must show exactly one compute.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

const crossprocEnv = "NBTICACHE_CROSSPROC_HELPER"

func TestMain(m *testing.M) {
	if os.Getenv(crossprocEnv) == "1" {
		os.Exit(crossprocHelper())
	}
	os.Exit(m.Run())
}

// crossprocHelper is the worker side: open the shared store with real
// time hooks, run one Do on the configured key (the compute sleeps to
// widen the race window and appends one line to the compute log), then
// dump this process's Stats as JSON for the parent to aggregate.
func crossprocHelper() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "crossproc helper: "+format+"\n", args...)
		return 1
	}
	dir := os.Getenv("NBTICACHE_DIR")
	key := os.Getenv("NBTICACHE_KEY")
	logPath := os.Getenv("NBTICACHE_LOG")
	statsPath := os.Getenv("NBTICACHE_STATS")
	delayMS, _ := strconv.Atoi(os.Getenv("NBTICACHE_DELAY_MS"))
	ttlMS, _ := strconv.Atoi(os.Getenv("NBTICACHE_TTL_MS"))

	s := Open(dir, ReadWrite)
	s.Clock = func() int64 { return time.Now().UnixNano() }
	s.Lease = DefaultLeasePolicy(func(ns int64) { time.Sleep(time.Duration(ns)) })
	s.Lease.PollNS = int64(2 * time.Millisecond)
	if ttlMS > 0 {
		s.Lease.TTLNS = int64(ttlMS) * int64(time.Millisecond)
		s.Lease.HeartbeatNS = s.Lease.TTLNS / 5
	}

	var got payload
	_, err := s.Do(key,
		func(data []byte) error { return json.Unmarshal(data, &got) },
		func() ([]byte, error) {
			time.Sleep(time.Duration(delayMS) * time.Millisecond)
			// One line per compute; O_APPEND keeps concurrent writers
			// from clobbering each other.
			f, err := os.OpenFile(logPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Fprintf(f, "compute pid=%d\n", os.Getpid()); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			return json.Marshal(payload{N: 42, S: "crossproc"})
		})
	if err != nil {
		return fail("Do: %v", err)
	}
	if got.N != 42 || got.S != "crossproc" {
		return fail("wrong value: %+v", got)
	}
	stats, err := json.Marshal(s.Stats())
	if err != nil {
		return fail("marshal stats: %v", err)
	}
	if err := os.WriteFile(statsPath, stats, 0o644); err != nil {
		return fail("write stats: %v", err)
	}
	return 0
}

// launchWorkers execs n copies of the test binary as cache workers on
// one shared dir/key and returns their summed Stats and the number of
// compute-log lines.
func launchWorkers(t *testing.T, dir, key string, n, delayMS, ttlMS int) (Stats, int) {
	t.Helper()
	logPath := filepath.Join(dir, "compute.log")
	cmds := make([]*exec.Cmd, n)
	outs := make([]strings.Builder, n)
	for i := range cmds {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			crossprocEnv+"=1",
			"NBTICACHE_DIR="+dir,
			"NBTICACHE_KEY="+key,
			"NBTICACHE_LOG="+logPath,
			"NBTICACHE_STATS="+filepath.Join(dir, fmt.Sprintf("stats-%d.json", i)),
			"NBTICACHE_DELAY_MS="+strconv.Itoa(delayMS),
			"NBTICACHE_TTL_MS="+strconv.Itoa(ttlMS),
		)
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		cmds[i] = cmd
	}
	var total Stats
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("worker %d failed: %v\n%s", i, err, outs[i].String())
		}
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("stats-%d.json", i)))
		if err != nil {
			t.Fatalf("worker %d stats: %v", i, err)
		}
		var st Stats
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("worker %d stats: %v", i, err)
		}
		total = total.Add(st)
	}
	logData, err := os.ReadFile(logPath)
	if err != nil {
		if os.IsNotExist(err) {
			return total, 0
		}
		t.Fatalf("compute log: %v", err)
	}
	return total, strings.Count(string(logData), "\n")
}

// TestCrossProcessSingleFlight races three real processes on one key:
// exactly one computes, the others are served its entry.
func TestCrossProcessSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	key := testKey(t, "crossproc-race")
	const n = 3
	total, computes := launchWorkers(t, dir, key, n, 300, 0)
	if computes != 1 {
		t.Errorf("compute log shows %d computes, want exactly 1", computes)
	}
	if total.Misses != 1 {
		t.Errorf("summed misses = %d, want exactly 1 (stats: %s)", total.Misses, total)
	}
	if total.Hits != n-1 {
		t.Errorf("summed hits = %d, want %d (stats: %s)", total.Hits, n-1, total)
	}
	if total.LeaseAcquired != 1 {
		t.Errorf("summed lease acquisitions = %d, want 1 (stats: %s)", total.LeaseAcquired, total)
	}
}

// TestCrossProcessStaleTakeover plants a lease from a "killed" worker
// (ancient heartbeat) and runs one real process against a short TTL: it
// must reap the corpse and compute.
func TestCrossProcessStaleTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	key := testKey(t, "crossproc-stale")
	dead := lease{Schema: leaseSchema, Key: key, Owner: "dead-worker", PID: 999999, BeatNS: 1}
	data, err := json.Marshal(dead)
	if err != nil {
		t.Fatal(err)
	}
	leaseFile := filepath.Join(dir, key[:2], key+".lease")
	if err := os.MkdirAll(filepath.Dir(leaseFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leaseFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	total, computes := launchWorkers(t, dir, key, 1, 0, 200)
	if computes != 1 || total.Misses != 1 {
		t.Errorf("computes=%d misses=%d, want 1/1 (stats: %s)", computes, total.Misses, total)
	}
	if total.LeaseTakeovers != 1 {
		t.Errorf("takeovers = %d, want 1 (stats: %s)", total.LeaseTakeovers, total)
	}
	if _, err := os.Stat(leaseFile); !os.IsNotExist(err) {
		t.Errorf("stale lease not cleaned up: %v", err)
	}
}

// TestCrossProcessCorruptLease writes garbage where a lease should be:
// the worker counts it, reaps it, and computes anyway.
func TestCrossProcessCorruptLease(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	key := testKey(t, "crossproc-corrupt")
	leaseFile := filepath.Join(dir, key[:2], key+".lease")
	if err := os.MkdirAll(filepath.Dir(leaseFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leaseFile, []byte("torn{write"), 0o644); err != nil {
		t.Fatal(err)
	}
	total, computes := launchWorkers(t, dir, key, 1, 0, 0)
	if computes != 1 || total.Misses != 1 {
		t.Errorf("computes=%d misses=%d, want 1/1 (stats: %s)", computes, total.Misses, total)
	}
	if total.LeaseCorrupt != 1 {
		t.Errorf("corrupt leases = %d, want 1 (stats: %s)", total.LeaseCorrupt, total)
	}
}
