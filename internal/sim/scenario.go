package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/pv"
	"nbtinoc/internal/traffic"
)

// Scenario is a fully serialisable experiment description: everything a
// run needs, in one JSON file, so published results can name the exact
// scenario that produced them.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Cores is the tile count of the square mesh.
	Cores int `json:"cores"`
	// Width and Height, when both set, give the mesh geometry
	// explicitly (rectangular allowed); Cores then defaults to
	// Width*Height and, if given too, must agree. The CLIs' -mesh WxH
	// flag fills them.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// VCs is the VC count per vnet per input port.
	VCs int `json:"vcs"`
	// VNets is the virtual-network count (default 1).
	VNets int `json:"vnets,omitempty"`
	// Policy is the recovery policy name (default "baseline").
	Policy string `json:"policy"`
	// TechNode selects the technology corner: 45 (default) or 32 nm,
	// setting the paper's Vth0 of 0.180 V or 0.160 V respectively.
	TechNode int `json:"tech_nm,omitempty"`
	// Workload is a synthetic pattern name, "app" (random benchmark
	// mix), or "req-resp" (closed-loop coherence-like traffic).
	Workload string `json:"workload"`
	// Rate is the injection rate for synthetic/req-resp workloads.
	Rate float64 `json:"rate,omitempty"`
	// PacketLen is the synthetic packet length in flits (default 4).
	PacketLen int `json:"packet_len,omitempty"`
	// Phits is the link serialization factor (default 1).
	Phits int `json:"phits,omitempty"`
	// WakeupLatency is the sleep-transistor ramp in cycles (default 0).
	WakeupLatency int `json:"wakeup_latency,omitempty"`
	// Warmup and Measure are the window lengths in cycles.
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	// Seed drives the workload; PVSeed the silicon.
	Seed   uint64 `json:"seed"`
	PVSeed uint64 `json:"pv_seed"`
}

// Validate normalises defaults and reports structural problems.
func (s *Scenario) Validate() error {
	if (s.Width != 0) != (s.Height != 0) {
		return fmt.Errorf("sim: scenario %q needs both width and height (or neither)", s.Name)
	}
	if s.Width != 0 {
		m := Mesh{Width: s.Width, Height: s.Height}
		if err := m.Validate(); err != nil {
			return err
		}
		if s.Cores == 0 {
			s.Cores = m.Cores()
		} else if s.Cores != m.Cores() {
			return fmt.Errorf("sim: scenario %q: cores %d disagrees with %s mesh",
				s.Name, s.Cores, m)
		}
	} else {
		if s.Cores == 0 {
			return fmt.Errorf("sim: scenario %q missing cores", s.Name)
		}
		if _, err := MeshSide(s.Cores); err != nil {
			return err
		}
	}
	if s.VCs < 1 {
		return fmt.Errorf("sim: scenario %q needs vcs >= 1", s.Name)
	}
	if s.Measure == 0 {
		return fmt.Errorf("sim: scenario %q has no measurement window", s.Name)
	}
	if s.VNets == 0 {
		s.VNets = 1
	}
	if s.Policy == "" {
		s.Policy = "baseline"
	}
	if s.TechNode == 0 {
		s.TechNode = 45
	}
	if s.TechNode != 45 && s.TechNode != 32 {
		return fmt.Errorf("sim: scenario %q: tech node %d nm not modelled (45 or 32)",
			s.Name, s.TechNode)
	}
	if s.PacketLen == 0 {
		s.PacketLen = 4
	}
	if s.Phits == 0 {
		s.Phits = 1
	}
	if s.Workload == "" {
		s.Workload = "uniform"
	}
	if s.Workload == "req-resp" && s.VNets < 2 {
		return fmt.Errorf("sim: scenario %q: req-resp needs at least 2 vnets", s.Name)
	}
	return nil
}

// mesh returns the scenario's geometry: the explicit Width×Height when
// present, otherwise the square mesh of Cores. Call after Validate.
func (s *Scenario) mesh() (Mesh, error) {
	if s.Width != 0 {
		return Mesh{Width: s.Width, Height: s.Height}, nil
	}
	return SquareMesh(s.Cores)
}

// BuildConfig materialises the network configuration.
func (s *Scenario) BuildConfig() (noc.Config, error) {
	if err := s.Validate(); err != nil {
		return noc.Config{}, err
	}
	m, err := s.mesh()
	if err != nil {
		return noc.Config{}, err
	}
	cfg, err := m.Config(s.VCs)
	if err != nil {
		return noc.Config{}, err
	}
	cfg.VNets = s.VNets
	cfg.PVSeed = s.PVSeed
	cfg.PhitsPerFlit = s.Phits
	cfg.WakeupLatency = s.WakeupLatency
	if s.TechNode == 32 {
		cfg.NBTI = nbti.Default32nm()
		cfg.PV = pv.Default32nm()
	}
	return cfg, nil
}

// GenSpec returns the declarative workload description the scenario's
// generator is built from — the piece of the cache key that replaces
// the live generator.
func (s *Scenario) GenSpec() (GenSpec, error) {
	if err := s.Validate(); err != nil {
		return GenSpec{}, err
	}
	m, err := s.mesh()
	if err != nil {
		return GenSpec{}, err
	}
	switch s.Workload {
	case "app":
		return GenSpec{Kind: "app", Width: m.Width, Height: m.Height, Seed: s.Seed}, nil
	case "req-resp":
		return GenSpec{Kind: "req-resp", Width: m.Width, Height: m.Height,
			Rate: s.Rate, Seed: s.Seed}, nil
	default:
		if _, err := traffic.ParsePattern(s.Workload); err != nil {
			return GenSpec{}, err
		}
		return GenSpec{
			Kind:            "synthetic",
			Pattern:         s.Workload,
			Width:           m.Width,
			Height:          m.Height,
			Rate:            s.Rate,
			PacketLen:       s.PacketLen,
			Seed:            s.Seed,
			HotspotNode:     0,
			HotspotFraction: 0.3,
		}, nil
	}
}

// BuildGenerator materialises the workload.
func (s *Scenario) BuildGenerator() (traffic.Generator, error) {
	gs, err := s.GenSpec()
	if err != nil {
		return nil, err
	}
	return gs.Build()
}

// Spec returns the scenario as a declarative, cacheable simulation
// request against the given probes.
func (s *Scenario) Spec(probes []PortProbe) (Spec, error) {
	cfg, err := s.BuildConfig()
	if err != nil {
		return Spec{}, err
	}
	gs, err := s.GenSpec()
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Net:     cfg,
		Policy:  PolicySpec{Name: s.Policy},
		Gen:     gs,
		Warmup:  s.Warmup,
		Measure: s.Measure,
		Probes:  probes,
	}, nil
}

// Execute runs the scenario against the given probes, returning the
// live network for callers that inspect more than the summary (traces,
// heatmaps, aging snapshots). Cacheable paths go through Spec and a
// Runner instead.
func (s *Scenario) Execute(probes []PortProbe) (*RunResult, error) {
	cfg, err := s.BuildConfig()
	if err != nil {
		return nil, err
	}
	gen, err := s.BuildGenerator()
	if err != nil {
		return nil, err
	}
	return Run(RunConfig{
		Net:        cfg,
		PolicyName: s.Policy,
		Warmup:     s.Warmup,
		Measure:    s.Measure,
		Gen:        gen,
	}, probes)
}

// LoadScenario parses a scenario from JSON.
func LoadScenario(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sim: parsing scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadScenarioFile parses a scenario from a JSON file.
func LoadScenarioFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadScenario(f)
}

// Save serialises the scenario as indented JSON.
func (s *Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
