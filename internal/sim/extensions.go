package sim

import (
	"fmt"
	"strings"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/power"
)

// PerfRow is one point of the NBTI/performance trade-off analysis: the
// paper motivates its cooperative design by the ability to trade NBTI
// recovery against performance (Section II criticises [13] for losing
// that option), so this extension quantifies what the gating costs.
type PerfRow struct {
	Policy string
	Rate   float64
	// AvgLatency is the mean packet latency in cycles.
	AvgLatency float64
	// Throughput is accepted flits/cycle/node.
	Throughput float64
	// DutyMD is the most degraded VC's duty-cycle at the probe port.
	DutyMD float64
}

// PerfTable is the load/latency sweep across policies.
type PerfTable struct {
	Cores, VCs    int
	WakeupLatency int
	Rows          []PerfRow
}

// PerfPolicies returns the policies compared in the trade-off sweep as
// a fresh slice per call.
func PerfPolicies() []string {
	return []string{"baseline", "rr-no-sensor", "sensor-wise"}
}

// RunPerfImpact sweeps injection rates for each policy on one
// architecture and reports latency, throughput and the MD-VC duty-cycle,
// demonstrating that the NBTI recovery is (nearly) performance-neutral —
// and what a non-zero sleep-transistor wake-up latency costs.
func RunPerfImpact(cores, vcs, wakeup int, rates []float64, opt TableOptions) (*PerfTable, error) {
	if _, err := MeshSide(cores); err != nil {
		return nil, err
	}
	out := &PerfTable{Cores: cores, VCs: vcs, WakeupLatency: wakeup}
	type job struct {
		rate   float64
		policy string
	}
	var jobs []job
	for _, rate := range rates {
		for _, policy := range PerfPolicies() {
			jobs = append(jobs, job{rate, policy})
		}
	}
	probe := PortProbe{Node: 0, Port: noc.East}
	rows := make([]PerfRow, len(jobs))
	if err := opt.pool().Run(len(jobs), func(i int) error {
		j := jobs[i]
		res, err := opt.runSynthetic(cores, vcs, j.rate, PolicySpec{Name: j.policy},
			[]PortProbe{probe}, func(cfg *noc.Config) { cfg.WakeupLatency = wakeup })
		if err != nil {
			return err
		}
		r := res.Ports[0]
		rows[i] = PerfRow{
			Policy:     j.policy,
			Rate:       j.rate,
			AvgLatency: res.AvgLatency,
			Throughput: res.Throughput,
			DutyMD:     r.Duty[r.MostDegraded],
		}
		return nil
	}); err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Render formats the trade-off sweep.
func (t *PerfTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NBTI/performance trade-off — %d cores, %d VCs, wake-up %d cycles\n",
		t.Cores, t.VCs, t.WakeupLatency)
	fmt.Fprintf(&b, "%-6s %-14s %-12s %-12s %-10s\n",
		"rate", "policy", "latency", "throughput", "duty@MD")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-6.2f %-14s %9.2f cy %12.4f %8.1f%%\n",
			r.Rate, r.Policy, r.AvgLatency, r.Throughput, r.DutyMD)
	}
	return b.String()
}

// EnergyRow is one policy's energy breakdown on a common scenario.
type EnergyRow struct {
	Policy string
	Report power.Report
	// Sensors is the number of always-on NBTI sensors charged.
	Sensors int
}

// EnergyTable is the leakage/energy extension result.
type EnergyTable struct {
	Cores, VCs int
	Rate       float64
	Cycles     uint64
	Rows       []EnergyRow
}

// RunEnergy runs every registered policy on one scenario and estimates
// router energy, including the leakage avoided by the NBTI gating and
// the cost of the always-on sensors — the side-benefit analysis of the
// power-gating mechanism the paper builds on.
func RunEnergy(cores, vcs int, rate float64, opt TableOptions) (*EnergyTable, error) {
	if _, err := MeshSide(cores); err != nil {
		return nil, err
	}
	out := &EnergyTable{Cores: cores, VCs: vcs, Rate: rate, Cycles: opt.Measure}
	params := power.Default45nm()
	policies := []string{"baseline", "rr-no-sensor", "rr-no-sensor-no-traffic",
		"sensor-wise-no-traffic", "sensor-wise"}
	rows := make([]EnergyRow, len(policies))
	if err := opt.pool().Run(len(policies), func(i int) error {
		policy := policies[i]
		res, err := opt.runSynthetic(cores, vcs, rate, PolicySpec{Name: policy}, nil, nil)
		if err != nil {
			return err
		}
		sensors := 0
		if strings.HasPrefix(policy, "sensor-wise") {
			// One sensor per router input VC buffer.
			sensors = res.Nodes * int(noc.NumPorts) * res.TotalVCs
		}
		rep, err := power.Estimate(params, res.Events, sensors, opt.Measure)
		if err != nil {
			return err
		}
		rows[i] = EnergyRow{Policy: policy, Report: rep, Sensors: sensors}
		return nil
	}); err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Render formats the energy extension.
func (t *EnergyTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Router energy over %d cycles — %d cores, %d VCs, uniform inj %.2f\n",
		t.Cycles, t.Cores, t.VCs, t.Rate)
	fmt.Fprintf(&b, "%-24s %-11s %-11s %-11s %-12s %s\n",
		"policy", "dynamic", "leakage", "total", "leak saved", "sensors")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-24s %8.1f nJ %8.1f nJ %8.1f nJ %9.1f%%  %d\n",
			r.Policy, r.Report.DynamicNJ, r.Report.LeakageNJ, r.Report.TotalNJ,
			r.Report.LeakSavedPct, r.Sensors)
	}
	return b.String()
}
