package sim

import (
	"fmt"
	"strings"

	"nbtinoc/internal/area"
	"nbtinoc/internal/noc"
)

// DSERow is one (VCs, buffer depth) design point of the exploration.
type DSERow struct {
	VCs, Depth int
	// DutyMD is the sensor-wise duty-cycle on the most degraded VC.
	DutyMD float64
	// GapVsRR is rr-no-sensor minus sensor-wise on that VC.
	GapVsRR float64
	// AvgLatency is the sensor-wise average packet latency.
	AvgLatency float64
	// RouterUm2 is the baseline router area at this point.
	RouterUm2 float64
	// OverheadPct is the NBTI-awareness area overhead (Section III-D
	// accounting) at this point.
	OverheadPct float64
}

// DSETable is the cost/benefit exploration over the paper's main
// microarchitectural knobs: more VCs give the sensor-wise policy more
// steering slack (larger gap) but cost buffer area and sensors; deeper
// buffers amortise the sensors but increase the stress captured per VC.
type DSETable struct {
	Cores int
	Rate  float64
	Rows  []DSERow
}

// RunDSE sweeps VC count and buffer depth on one scenario.
func RunDSE(cores int, rate float64, vcsList, depths []int, opt TableOptions) (*DSETable, error) {
	if len(vcsList) == 0 || len(depths) == 0 {
		return nil, fmt.Errorf("sim: empty design space")
	}
	if _, err := MeshSide(cores); err != nil {
		return nil, err
	}
	out := &DSETable{Cores: cores, Rate: rate}
	dsePolicies := []string{"rr-no-sensor", "sensor-wise"}
	type job struct {
		vcs, depth int
		policy     string
	}
	var jobs []job
	for _, vcs := range vcsList {
		for _, depth := range depths {
			for _, policy := range dsePolicies {
				jobs = append(jobs, job{vcs, depth, policy})
			}
		}
	}
	probe := PortProbe{Node: 0, Port: noc.East}
	type outcome struct {
		reading PortReading
		lat     float64
	}
	results := make([]outcome, len(jobs))
	if err := opt.pool().Run(len(jobs), func(i int) error {
		j := jobs[i]
		res, err := opt.runSynthetic(cores, j.vcs, rate, PolicySpec{Name: j.policy},
			[]PortProbe{probe}, func(cfg *noc.Config) { cfg.BufferDepth = j.depth })
		if err != nil {
			return err
		}
		results[i] = outcome{reading: res.Ports[0], lat: res.AvgLatency}
		return nil
	}); err != nil {
		return nil, err
	}
	next := 0
	for _, vcs := range vcsList {
		for _, depth := range depths {
			duty := map[string]float64{}
			var lat float64
			md := -1
			for _, policy := range dsePolicies {
				r := results[next]
				next++
				if md == -1 {
					md = r.reading.MostDegraded
				}
				duty[policy] = r.reading.Duty[md]
				if policy == "sensor-wise" {
					lat = r.lat
				}
			}
			spec := area.RouterSpec{
				Ports: 4, VCsPerPort: vcs, BufferDepth: depth, FlitBits: 64,
			}
			rep, err := area.Estimate(area.Default45nm(), spec)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, DSERow{
				VCs:         vcs,
				Depth:       depth,
				DutyMD:      duty["sensor-wise"],
				GapVsRR:     duty["rr-no-sensor"] - duty["sensor-wise"],
				AvgLatency:  lat,
				RouterUm2:   rep.RouterUm2,
				OverheadPct: rep.TotalPctOfBaseline,
			})
		}
	}
	return out, nil
}

// Render formats the exploration.
func (t *DSETable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design-space exploration — %d cores, uniform inj %.2f\n", t.Cores, t.Rate)
	fmt.Fprintf(&b, "%-5s %-6s %-11s %-10s %-10s %-12s %s\n",
		"VCs", "depth", "duty@MD", "gap vs rr", "latency", "router area", "NBTI ovh")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-5d %-6d %9.2f%% %9.2f%% %7.1f cy %9.0f um2 %7.2f%%\n",
			r.VCs, r.Depth, r.DutyMD, r.GapVsRR, r.AvgLatency, r.RouterUm2, r.OverheadPct)
	}
	return b.String()
}
