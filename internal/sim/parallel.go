package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the bounded worker-pool scheduler behind every table and
// sweep driver in this package. A driver enumerates its full scenario
// grid up front, pre-allocates one result slot per job index, and then
// executes the jobs through the pool; because each job writes only to
// its own slot and derives all randomness from per-scenario seeds, the
// assembled output is byte-identical to a sequential run regardless of
// completion order or worker count.
type Pool struct {
	// Workers caps the number of concurrently executing jobs.
	// 0 (or negative) uses one worker per available core
	// (runtime.GOMAXPROCS); 1 selects the legacy sequential path,
	// where jobs run inline on the caller's goroutine in index order.
	Workers int
}

// workers resolves the effective worker count for n jobs.
func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes job(0) … job(n-1) across the pool's workers and blocks
// until all scheduled jobs finish. Jobs are dispatched in index order.
// The first failure cancels the batch context-style: already-running
// jobs complete, queued jobs are never started, and Run returns the
// error of the lowest-indexed failed job — the same error a sequential
// execution would surface first, since a job's index is only dispatched
// after every lower index has been.
//
// Each job must confine its writes to state it exclusively owns
// (typically the result slot at its index): the pool provides no
// synchronisation beyond the happens-before edge between Run returning
// and all job effects being visible.
func (p Pool) Run(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	met := newPoolMetrics()
	met.jobsTotal.Add(uint64(n))
	if p.workers(n) <= 1 {
		for i := 0; i < n; i++ {
			met.busy.Inc()
			err := job(i)
			met.busy.Dec()
			met.jobsDone.Inc()
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	for w := p.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				met.busy.Inc()
				err := job(i)
				met.busy.Dec()
				met.jobsDone.Inc()
				if err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
