package sim

import (
	"fmt"
	"strings"
)

// CSV renders the synthetic table as machine-readable CSV, one row per
// (scenario, policy, VC).
func (t *SyntheticTable) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,cores,rate,policy,vc,duty_pct,is_md,gap_pts\n")
	for _, row := range t.Rows {
		for _, policy := range t.Policies {
			for vc, d := range row.Duty[policy] {
				isMD := 0
				if vc == row.MDVC {
					isMD = 1
				}
				fmt.Fprintf(&b, "%s,%d,%.2f,%s,%d,%.4f,%d,%.4f\n",
					row.Scenario, row.Cores, row.Rate, policy, vc, d, isMD, row.Gap)
			}
		}
	}
	return b.String()
}

// CSV renders Table IV as CSV, one row per (scenario, policy, VC).
func (t *RealTable) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,cores,policy,vc,avg_duty_pct,std_duty_pct,is_md,gap_pts\n")
	for _, row := range t.Rows {
		emit := func(policy string, avg, std []float64) {
			for vc := range avg {
				isMD := 0
				if vc == row.MDVC {
					isMD = 1
				}
				fmt.Fprintf(&b, "%s,%d,%s,%d,%.4f,%.4f,%d,%.4f\n",
					row.Scenario, row.Cores, policy, vc, avg[vc], std[vc], isMD, row.Gap)
			}
		}
		emit("rr-no-sensor", row.AvgRR, row.StdRR)
		emit("sensor-wise", row.AvgSW, row.StdSW)
	}
	return b.String()
}

// CSV renders the ΔVth analysis as CSV.
func (t *VthTable) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,md_vc,alpha_md,dvth_baseline_mv,dvth_sensorwise_mv,saving_pct\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%d,%.6f,%.4f,%.4f,%.4f\n",
			r.Scenario, r.MDVC, r.AlphaMD,
			1000*r.DeltaVthBaseline, 1000*r.DeltaVthSensorWise, r.SavingPct)
	}
	return b.String()
}

// CSV renders the cooperation ablation as CSV.
func (t *CoopTable) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,md_vc,policy,duty_md_pct\n")
	for _, r := range t.Rows {
		for _, p := range CoopPolicies() {
			fmt.Fprintf(&b, "%s,%d,%s,%.4f\n", r.Scenario, r.MDVC, p, r.DutyMD[p])
		}
	}
	return b.String()
}

// CSV renders the performance sweep as CSV.
func (t *PerfTable) CSV() string {
	var b strings.Builder
	b.WriteString("rate,policy,avg_latency_cy,throughput_fpcn,duty_md_pct,wakeup_cycles\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%.3f,%s,%.4f,%.6f,%.4f,%d\n",
			r.Rate, r.Policy, r.AvgLatency, r.Throughput, r.DutyMD, t.WakeupLatency)
	}
	return b.String()
}

// CSV renders the design-space exploration as CSV.
func (t *DSETable) CSV() string {
	var b strings.Builder
	b.WriteString("vcs,depth,duty_md_pct,gap_pts,avg_latency_cy,router_um2,overhead_pct\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%d,%d,%.4f,%.4f,%.4f,%.2f,%.4f\n",
			r.VCs, r.Depth, r.DutyMD, r.GapVsRR, r.AvgLatency, r.RouterUm2, r.OverheadPct)
	}
	return b.String()
}
