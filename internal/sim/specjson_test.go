package sim

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/noc"
)

// TestSpecJSONRoundTrip: a serialised spec rebuilds to the same content
// address and the same structural value — the property sweep manifests
// rely on to re-run recorded campaigns.
func TestSpecJSONRoundTrip(t *testing.T) {
	orig := quickSpec()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", back, orig)
	}
	if mustKey(t, back) != mustKey(t, orig) {
		t.Error("round trip changed the content address")
	}
}

// TestSpecJSONRefusesPolicyFactory: a factory-carrying spec has no
// canonical encoding and must refuse to serialise rather than record a
// spec that would re-run as something else.
func TestSpecJSONRefusesPolicyFactory(t *testing.T) {
	s := quickSpec()
	s.Net.Policy = func() noc.Policy { return nil }
	if _, err := json.Marshal(s); err == nil {
		t.Fatal("factory-carrying spec serialised")
	}
}

// TestConfigKeyRoundTrips: configKey -> Config -> configKey is the
// identity, using the same reflection guard as the mirror test.
func TestConfigKeyRoundTrips(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 3, 2
	cfg.PVSeed = 99
	cfg.GateEjection = true
	k := configKeyOf(cfg)
	if got := configKeyOf(k.config()); got != k {
		t.Errorf("config round trip:\n got %+v\nwant %+v", got, k)
	}
}

// TestRunnerRecordHook: the hook sees every completed run with its key
// and cache disposition, across the cached, uncached and bypass paths.
func TestRunnerRecordHook(t *testing.T) {
	type event struct {
		key    string
		cached bool
	}
	var mu sync.Mutex
	var events []event
	record := func(_ Spec, key string, cached bool) {
		mu.Lock()
		events = append(events, event{key, cached})
		mu.Unlock()
	}
	spec := quickSpec()
	key := mustKey(t, spec)

	store := cache.Open(t.TempDir(), cache.ReadWrite)
	r := Runner{Store: store, Record: record}
	if _, err := r.Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(spec); err != nil {
		t.Fatal(err)
	}
	// Bypass path: no store.
	if _, err := (Runner{Record: record}).Run(spec); err != nil {
		t.Fatal(err)
	}
	want := []event{{key, false}, {key, true}, {"", false}}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("record events = %+v, want %+v", events, want)
	}
}

// TestRunnerTryRun: completes on idle keys, steps aside while the key
// is claimed by a foreign lease, and matches Run's output exactly.
func TestRunnerTryRun(t *testing.T) {
	dir := t.TempDir()
	store := cache.Open(dir, cache.ReadWrite)
	store.Clock = func() int64 { return 1_000_000 }
	store.Lease = &cache.LeasePolicy{
		TTLNS:       1 << 62,
		HeartbeatNS: int64(time.Millisecond),
		PollNS:      1,
		Sleep:       func(ns int64) { time.Sleep(time.Duration(ns)) },
	}
	r := Runner{Store: store}
	spec := quickSpec()

	sum, done, err := r.TryRun(spec)
	if err != nil || !done || sum == nil {
		t.Fatalf("TryRun on idle key: done=%v err=%v", done, err)
	}
	want, err := Runner{}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, want) {
		t.Error("TryRun result differs from a direct compute")
	}

	// Claim a second spec's key from a fake foreign holder: TryRun must
	// step aside without computing.
	spec2 := quickSpec()
	spec2.Gen.Seed++
	key2 := mustKey(t, spec2)
	holder := cache.Open(dir, cache.ReadWrite)
	holder.Clock = store.Clock
	holder.Lease = store.Lease
	claimed := make(chan struct{})
	release := make(chan struct{})
	donec := make(chan error, 1)
	go func() {
		_, err := holder.Do(key2,
			func([]byte) error { return nil },
			func() ([]byte, error) {
				close(claimed)
				<-release
				s, err := spec2.Compute()
				if err != nil {
					return nil, err
				}
				return json.Marshal(s)
			})
		donec <- err
	}()
	<-claimed
	sum2, done, err := r.TryRun(spec2)
	if err != nil || done || sum2 != nil {
		t.Errorf("TryRun on claimed key: sum=%v done=%v err=%v, want step-aside", sum2, done, err)
	}
	close(release)
	if err := <-donec; err != nil {
		t.Fatal(err)
	}
	// Once released and persisted, TryRun serves the cached entry.
	sum2, done, err = r.TryRun(spec2)
	if err != nil || !done || sum2 == nil {
		t.Fatalf("TryRun after release: done=%v err=%v", done, err)
	}
	if store.Stats().Hits == 0 {
		t.Error("expected the released entry to be served as a hit")
	}
}
