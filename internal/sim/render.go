package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Summary renderers, shared verbatim by cmd/nbtisim and the nbtisimd
// result endpoint: the daemon's GET /jobs/<id>/result and the CLI's
// -format output come from the same functions, which is what makes the
// service-e2e byte-comparison between the two meaningful.

// RenderFormats lists the formats Render accepts.
func RenderFormats() []string { return []string{"text", "csv", "json"} }

// Render writes the summary's single-probe report in the given format
// (text, csv or json). It requires at least one port reading — the
// probe-less perf-only summaries have nothing to put in the per-VC
// rows; serialise those as raw JSON instead.
func (s *RunSummary) Render(w io.Writer, format string) error {
	if len(s.Ports) == 0 {
		return errors.New("sim: summary has no port readings to render (run with at least one probe)")
	}
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Policy, Workload  string
			Cycles            uint64
			Probe             string
			MostDegradedVC    int
			DutyCycle         []float64
			Vth0              []float64
			AvgLatency        float64
			Throughput        float64
			Injected, Ejected uint64
		}{
			s.Policy, s.Workload, s.Cycles,
			s.Ports[0].Probe.Label(), s.Ports[0].MostDegraded,
			s.Ports[0].Duty, s.Ports[0].Vth0,
			s.AvgLatency, s.Throughput,
			s.InjectedPackets, s.EjectedPackets,
		})
	case "csv":
		fmt.Fprintln(w, "policy,workload,probe,vc,duty_pct,vth0,most_degraded")
		p := s.Ports[0]
		for vc, d := range p.Duty {
			md := 0
			if vc == p.MostDegraded {
				md = 1
			}
			fmt.Fprintf(w, "%s,%s,%s,%d,%.4f,%.6f,%d\n",
				s.Policy, s.Workload, p.Probe.Label(), vc, d, p.Vth0[vc], md)
		}
		return nil
	case "text":
		p := s.Ports[0]
		fmt.Fprintf(w, "policy      %s\n", s.Policy)
		fmt.Fprintf(w, "workload    %s\n", s.Workload)
		fmt.Fprintf(w, "cycles      %d measured\n", s.Cycles)
		fmt.Fprintf(w, "probe       %s (most degraded VC: %d)\n", p.Probe.Label(), p.MostDegraded)
		for vc, d := range p.Duty {
			marker := " "
			if vc == p.MostDegraded {
				marker = "*"
			}
			fmt.Fprintf(w, "  VC%d%s  duty %6.2f%%  busy %6.2f%%  Vth0 %.4f V\n",
				vc, marker, d, p.Busy[vc], p.Vth0[vc])
		}
		fmt.Fprintf(w, "latency     %.2f cycles avg\n", s.AvgLatency)
		fmt.Fprintf(w, "throughput  %.4f flits/cycle/node\n", s.Throughput)
		fmt.Fprintf(w, "packets     %d injected, %d ejected\n", s.InjectedPackets, s.EjectedPackets)
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
