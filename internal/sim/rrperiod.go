package sim

import (
	"fmt"
	"strings"

	"nbtinoc/internal/noc"
)

// RRPeriodRow is one rotation-period point of the rr-no-sensor study.
type RRPeriodRow struct {
	Period uint64
	// DutyMD is the duty-cycle of the most degraded VC.
	DutyMD float64
	// DutyMax and DutySpread summarise the whole port: the paper's
	// claim is that fast rotation spreads stress evenly, which is
	// exactly what minimises the unknowable most degraded VC's share.
	DutyMax, DutySpread float64
}

// RRPeriodTable validates the paper's claim that the fast round-robin
// rotation is "the best approach we can cast" without sensors: slower
// rotation keeps the same VC powered for longer stretches, skewing
// stress and — since a sensor-less policy cannot know which VC the
// process variation made weakest — raising the expected duty of the
// most degraded one.
type RRPeriodTable struct {
	Cores, VCs int
	Rate       float64
	Rows       []RRPeriodRow
}

// RunRRPeriodStudy sweeps the Algorithm 1 candidate rotation period on
// one scenario.
func RunRRPeriodStudy(cores, vcs int, rate float64, periods []uint64, opt TableOptions) (*RRPeriodTable, error) {
	if len(periods) == 0 {
		return nil, fmt.Errorf("sim: empty period sweep")
	}
	if _, err := MeshSide(cores); err != nil {
		return nil, err
	}
	out := &RRPeriodTable{Cores: cores, VCs: vcs, Rate: rate}
	probe := PortProbe{Node: 0, Port: noc.East}
	readings := make([]PortReading, len(periods))
	if err := opt.pool().Run(len(periods), func(i int) error {
		// The rotation period is declared through PolicySpec (not a raw
		// factory mutation), so the sweep stays cacheable by content.
		res, err := opt.runSynthetic(cores, vcs, rate,
			PolicySpec{RRPeriod: periods[i]}, []PortProbe{probe}, nil)
		if err != nil {
			return err
		}
		readings[i] = res.Ports[0]
		return nil
	}); err != nil {
		return nil, err
	}
	for i, period := range periods {
		r := readings[i]
		min, max := 100.0, 0.0
		for _, d := range r.Duty {
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		out.Rows = append(out.Rows, RRPeriodRow{
			Period:     period,
			DutyMD:     r.Duty[r.MostDegraded],
			DutyMax:    max,
			DutySpread: max - min,
		})
	}
	return out, nil
}

// Render formats the study.
func (t *RRPeriodTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rr-no-sensor rotation-period study — %d cores, %d VCs, uniform inj %.2f\n",
		t.Cores, t.VCs, t.Rate)
	fmt.Fprintf(&b, "%-10s %-10s %-10s %s\n", "period", "duty@MD", "worst VC", "spread")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10d %8.2f%% %8.2f%% %7.2f%%\n",
			r.Period, r.DutyMD, r.DutyMax, r.DutySpread)
	}
	return b.String()
}
