package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/noc"
)

func TestValidateAcceptsQuickSpec(t *testing.T) {
	if err := quickSpec().Validate(); err != nil {
		t.Fatalf("canonical test spec rejected: %v", err)
	}
}

func TestValidateReportsEveryProblem(t *testing.T) {
	s := quickSpec()
	s.Measure = 0
	s.Policy.Name = "no-such-policy"
	s.Gen.Pattern = "no-such-pattern"
	s.Gen.PacketLen = 0
	s.Probes = append(s.Probes, PortProbe{Node: 99, Port: noc.East})
	err := s.Validate()
	if err == nil {
		t.Fatal("broken spec validated")
	}
	errs, ok := err.(SpecErrors)
	if !ok {
		t.Fatalf("Validate returned %T, want SpecErrors", err)
	}
	want := map[string]bool{
		"measure":        false,
		"policy.name":    false,
		"gen.pattern":    false,
		"gen.packet_len": false,
		"probes[1]":      false,
	}
	for _, e := range errs {
		if _, tracked := want[e.Field]; tracked {
			want[e.Field] = true
		}
	}
	for field, seen := range want {
		if !seen {
			t.Errorf("no error for %s in %v", field, errs)
		}
	}
	// The report serialises field-tagged for the HTTP error body.
	data, jerr := json.Marshal(errs)
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !strings.Contains(string(data), `"field":"measure"`) {
		t.Errorf("serialised report lacks field tags: %s", data)
	}
	if !strings.Contains(err.Error(), "invalid spec") {
		t.Errorf("Error(): %q", err.Error())
	}
}

func TestValidateFieldCases(t *testing.T) {
	mutate := map[string]func(*Spec){
		"measure":     func(s *Spec) { s.Measure = 0 },
		"gen.kind":    func(s *Spec) { s.Gen.Kind = "quantum" },
		"gen.rate":    func(s *Spec) { s.Gen.Rate = -0.5 },
		"gen.vnet":    func(s *Spec) { s.Gen.VNet = 7 },
		"gen":         func(s *Spec) { s.Gen.Width = 4 },
		"net":         func(s *Spec) { s.Net.BufferDepth = 0 },
		"probes[0]":   func(s *Spec) { s.Probes[0].Port = noc.West }, // node 0: mesh edge
		"policy.name": func(s *Spec) { s.Policy.Name = "bogus" },
	}
	for field, f := range mutate {
		s := quickSpec()
		f(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: mutation validated", field)
			continue
		}
		if !strings.Contains(err.Error(), field+":") {
			t.Errorf("%s: error %q does not name the field", field, err)
		}
	}
	// An RRPeriod policy skips the registry lookup: the name is unused.
	s := quickSpec()
	s.Policy = PolicySpec{Name: "ignored", RRPeriod: 1024}
	if err := s.Validate(); err != nil {
		t.Errorf("rr-period spec rejected: %v", err)
	}
	// req-resp needs two vnets.
	s = quickSpec()
	s.Gen = GenSpec{Kind: "req-resp", Width: 2, Height: 2, Rate: 0.05, Seed: 1}
	if err := s.Validate(); err == nil {
		t.Error("req-resp on a 1-vnet mesh validated")
	}
}

func TestValidateProbeEdges(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 3, 3
	cases := []struct {
		probe PortProbe
		ok    bool
	}{
		{PortProbe{Node: 4, Port: noc.North}, true},  // centre has all ports
		{PortProbe{Node: 0, Port: noc.North}, false}, // top row
		{PortProbe{Node: 0, Port: noc.West}, false},  // left column
		{PortProbe{Node: 2, Port: noc.East}, false},  // right column
		{PortProbe{Node: 8, Port: noc.South}, false}, // bottom row
		{PortProbe{Node: 8, Port: noc.Local}, true},  // local always exists
		{PortProbe{Node: -1, Port: noc.Local}, false},
		{PortProbe{Node: 9, Port: noc.Local}, false},
		{PortProbe{Node: 4, Port: noc.NumPorts}, false},
		{PortProbe{Node: 4, Port: noc.Local, VNet: 5}, false},
	}
	for _, c := range cases {
		err := validateProbe(cfg, c.probe)
		if (err == nil) != c.ok {
			t.Errorf("probe %+v: err=%v, want ok=%v", c.probe, err, c.ok)
		}
	}
}

func TestRunJobValidatesAndReportsCached(t *testing.T) {
	store := cache.Open(t.TempDir(), cache.ReadWrite)
	r := Runner{Store: store}

	bad := quickSpec()
	bad.Measure = 0
	if _, _, err := r.RunJob(bad); err == nil {
		t.Fatal("RunJob executed an invalid spec")
	}

	sum, cached, err := r.RunJob(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first RunJob reported cached=true")
	}
	if sum == nil || len(sum.Ports) == 0 {
		t.Fatal("RunJob returned an empty summary")
	}
	if _, cached, err = r.RunJob(quickSpec()); err != nil || !cached {
		t.Errorf("second RunJob: cached=%v err=%v, want true nil", cached, err)
	}
	// The runner's own Record hook still observes both runs.
	var calls int
	r.Record = func(Spec, string, bool) { calls++ }
	if _, _, err := r.RunJob(quickSpec()); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("Record fired %d times, want 1", calls)
	}
}
