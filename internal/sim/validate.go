package sim

import (
	"fmt"
	"strings"

	"nbtinoc/internal/core"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/traffic"
)

// SpecError describes one structural problem with a Spec, tagged with
// the JSON field it concerns so HTTP clients (the nbtisimd submission
// endpoint) can surface it next to the offending input instead of as an
// opaque string.
type SpecError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

// Error renders the problem as "field: message".
func (e SpecError) Error() string { return e.Field + ": " + e.Msg }

// SpecErrors is a full validation report: every problem found, not just
// the first, so a client can fix a spec in one round trip.
type SpecErrors []SpecError

// Error joins the individual problems with "; ".
func (e SpecErrors) Error() string {
	parts := make([]string, len(e))
	for i, p := range e {
		parts[i] = p.Error()
	}
	return "sim: invalid spec: " + strings.Join(parts, "; ")
}

// Validate reports every structural problem that would make the spec
// unrunnable (or silently meaningless), as a SpecErrors value. It is
// the service-boundary counterpart of Scenario.Validate: scenarios are
// authored by hand and normalised with defaults, while specs arrive
// fully explicit over the wire and are rejected rather than patched.
func (s Spec) Validate() error {
	var errs SpecErrors
	add := func(field, format string, args ...any) {
		errs = append(errs, SpecError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	if s.Measure == 0 {
		add("measure", "measurement window must be at least 1 cycle")
	}
	if s.Policy.RRPeriod == 0 && s.Policy.Name != "" {
		if _, err := core.Lookup(s.Policy.Name); err != nil {
			add("policy.name", "unknown policy %q (known: %s)",
				s.Policy.Name, strings.Join(core.Names(), ", "))
		}
	}
	switch s.Gen.Kind {
	case "app":
		if s.Gen.VNet < 0 || s.Gen.VNet >= s.Net.VNets {
			add("gen.vnet", "vnet %d outside the %d virtual networks", s.Gen.VNet, s.Net.VNets)
		}
	case "req-resp":
		if s.Net.VNets < 2 {
			add("gen.kind", "req-resp traffic needs at least 2 vnets, mesh has %d", s.Net.VNets)
		}
		if s.Gen.Rate < 0 {
			add("gen.rate", "injection rate must be non-negative, got %v", s.Gen.Rate)
		}
	case "synthetic":
		if _, err := traffic.ParsePattern(s.Gen.Pattern); err != nil {
			add("gen.pattern", "%v", err)
		}
		if s.Gen.Rate < 0 {
			add("gen.rate", "injection rate must be non-negative, got %v", s.Gen.Rate)
		}
		if s.Gen.PacketLen < 1 {
			add("gen.packet_len", "packet length must be at least 1 flit, got %d", s.Gen.PacketLen)
		}
		if s.Gen.VNet < 0 || s.Gen.VNet >= s.Net.VNets {
			add("gen.vnet", "vnet %d outside the %d virtual networks", s.Gen.VNet, s.Net.VNets)
		}
	default:
		add("gen.kind", "unknown generator kind %q (want synthetic, app or req-resp)", s.Gen.Kind)
	}
	if s.Gen.Width != s.Net.Width || s.Gen.Height != s.Net.Height {
		add("gen", "generator geometry %dx%d disagrees with the %dx%d mesh",
			s.Gen.Width, s.Gen.Height, s.Net.Width, s.Net.Height)
	}
	for i, p := range s.Probes {
		if err := validateProbe(s.Net, p); err != nil {
			add(fmt.Sprintf("probes[%d]", i), "%v", err)
		}
	}
	// The engine's own structural checks last: field-specific problems
	// above give better messages, this catches everything else (buffer
	// depths, NBTI/PV/sensor parameter ranges, the 64-VC mask bound).
	if err := s.Net.Validate(); err != nil {
		add("net", "%v", err)
	} else if s.Net.TotalVCs() > 64 {
		add("net", "%d VCs per port exceeds the 64-bit power mask", s.Net.TotalVCs())
	}
	if len(errs) == 0 {
		return nil
	}
	return errs
}

// validateProbe checks that the probe names an input port the mesh
// actually instantiates: edge routers have no port facing off-mesh, so
// a probe there would silently read a zero-valued arena slot.
func validateProbe(cfg noc.Config, p PortProbe) error {
	nodes := cfg.Width * cfg.Height
	if p.Node < 0 || int(p.Node) >= nodes {
		return fmt.Errorf("node %d outside the %dx%d mesh", p.Node, cfg.Width, cfg.Height)
	}
	if p.Port < 0 || p.Port >= noc.NumPorts {
		return fmt.Errorf("port %d is not a router port", p.Port)
	}
	if p.VNet < 0 || p.VNet >= cfg.VNets {
		return fmt.Errorf("vnet %d outside the %d virtual networks", p.VNet, cfg.VNets)
	}
	x, y := int(p.Node)%cfg.Width, int(p.Node)/cfg.Width
	missing := false
	switch p.Port {
	case noc.North:
		missing = y == 0
	case noc.East:
		missing = x == cfg.Width-1
	case noc.South:
		missing = y == cfg.Height-1
	case noc.West:
		missing = x == 0
	}
	if missing {
		return fmt.Errorf("node %d has no %v input port (mesh edge)", p.Node, p.Port)
	}
	return nil
}
