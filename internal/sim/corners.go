package sim

import (
	"fmt"
	"math"
	"strings"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/noc"
)

// CornerRow is one (temperature, Vdd) operating corner of the lifetime
// analysis.
type CornerRow struct {
	TempK float64
	Vdd   float64
	// LifetimeYears maps policy name to the years until the most
	// degraded VC's ΔVth reaches the budget (+Inf capped at 100).
	LifetimeYears map[string]float64
	// ExtensionX is lifetime(sensor-wise)/lifetime(baseline), the
	// lifetime-extension factor of the methodology at this corner.
	ExtensionX float64
}

// CornerTable is the environment-sweep result. NBTI is exponentially
// temperature- and field-accelerated (the Kv term of Eq. 1), so the
// value of the duty-cycle reduction grows where chips actually run hot —
// this extension quantifies that.
type CornerTable struct {
	Cores, VCs int
	Rate       float64
	BudgetMV   float64
	// AlphaMD maps policy to the duty-cycle fraction measured once on
	// the common scenario (the workload does not depend on temperature).
	AlphaMD map[string]float64
	Rows    []CornerRow
}

// CornerPolicies returns the compared policies as a fresh slice per
// call.
func CornerPolicies() []string {
	return []string{"baseline", "rr-no-sensor", "sensor-wise"}
}

// RunCorners measures the most-degraded-VC duty-cycle per policy on one
// scenario, then sweeps the NBTI model across operating corners and
// reports the time each corner allows before a ΔVth budget is exhausted.
func RunCorners(cores, vcs int, rate, budgetV float64,
	temps, vdds []float64, opt TableOptions) (*CornerTable, error) {
	if budgetV <= 0 {
		return nil, fmt.Errorf("sim: non-positive budget %v", budgetV)
	}
	if len(temps) == 0 || len(vdds) == 0 {
		return nil, fmt.Errorf("sim: empty corner sweep")
	}
	if _, err := MeshSide(cores); err != nil {
		return nil, err
	}
	policies := CornerPolicies()
	out := &CornerTable{
		Cores: cores, VCs: vcs, Rate: rate,
		BudgetMV: 1000 * budgetV,
		AlphaMD:  make(map[string]float64, len(policies)),
	}
	probe := PortProbe{Node: 0, Port: noc.East}
	alphas := make([]float64, len(policies))
	if err := opt.pool().Run(len(policies), func(i int) error {
		res, err := opt.runSynthetic(cores, vcs, rate, PolicySpec{Name: policies[i]},
			[]PortProbe{probe}, nil)
		if err != nil {
			return err
		}
		r := res.Ports[0]
		alphas[i] = r.Duty[r.MostDegraded] / 100
		return nil
	}); err != nil {
		return nil, err
	}
	for i, policy := range policies {
		out.AlphaMD[policy] = alphas[i]
	}

	for _, tK := range temps {
		for _, vdd := range vdds {
			model := nbti.Default45nm()
			model.TempK = tK
			model.Vdd = vdd
			if err := model.Validate(); err != nil {
				return nil, err
			}
			row := CornerRow{
				TempK:         tK,
				Vdd:           vdd,
				LifetimeYears: make(map[string]float64, len(policies)),
			}
			for _, policy := range policies {
				lt := model.LifetimeToBudget(out.AlphaMD[policy], budgetV)
				years := lt / nbti.SecondsPerYear
				if math.IsInf(lt, 1) || years > 100 {
					years = 100
				}
				row.LifetimeYears[policy] = years
			}
			if b := row.LifetimeYears["baseline"]; b > 0 {
				row.ExtensionX = row.LifetimeYears["sensor-wise"] / b
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render formats the corner sweep.
func (t *CornerTable) Render() string {
	policies := CornerPolicies()
	var b strings.Builder
	fmt.Fprintf(&b, "Lifetime to a %.0f mV ΔVth budget across operating corners\n", t.BudgetMV)
	fmt.Fprintf(&b, "(%d cores, %d VCs, uniform inj %.2f; duty-cycles:", t.Cores, t.VCs, t.Rate)
	for _, p := range policies {
		fmt.Fprintf(&b, " %s=%.1f%%", p, 100*t.AlphaMD[p])
	}
	fmt.Fprintf(&b, ")\n%-7s %-6s", "T(K)", "Vdd")
	for _, p := range policies {
		fmt.Fprintf(&b, " %14s", p)
	}
	fmt.Fprintf(&b, " %10s\n", "extension")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-7.0f %-6.2f", r.TempK, r.Vdd)
		for _, p := range policies {
			y := r.LifetimeYears[p]
			if y >= 100 {
				fmt.Fprintf(&b, " %13s", ">100 y")
			} else {
				fmt.Fprintf(&b, " %11.1f y", y)
			}
		}
		fmt.Fprintf(&b, " %9.1fx\n", r.ExtensionX)
	}
	return b.String()
}
