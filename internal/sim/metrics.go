package sim

import "nbtinoc/internal/metrics"

// Exported instrument names for the scenario drivers. cmd/* wire the
// job counters into metrics.Progress for the -v progress line.
const (
	// MetricJobsTotal counts jobs dispatched to Pool.Run batches.
	MetricJobsTotal = "sim_jobs_total"
	// MetricJobsDone counts jobs that finished executing.
	MetricJobsDone = "sim_jobs_done_total"
	// MetricWorkersBusy gauges jobs currently executing across pools.
	MetricWorkersBusy = "sim_workers_busy"
	// MetricRunsCached counts Runner.Run calls answered from the result
	// cache.
	MetricRunsCached = "sim_runs_cached_total"
	// MetricRunsComputed counts Runner.Run calls that executed the
	// engine (cache miss, cache off, or uncacheable spec).
	MetricRunsComputed = "sim_runs_computed_total"
)

// poolMetrics are the per-Run-batch handles into the process registry;
// all nil when instrumentation is disabled.
type poolMetrics struct {
	jobsTotal *metrics.Counter
	jobsDone  *metrics.Counter
	busy      *metrics.Gauge
}

// newPoolMetrics resolves the scheduler instruments from the process
// default registry.
func newPoolMetrics() poolMetrics {
	r := metrics.Default()
	if r == nil {
		return poolMetrics{}
	}
	return poolMetrics{
		jobsTotal: r.Counter(MetricJobsTotal, "Jobs dispatched to worker-pool batches."),
		jobsDone:  r.Counter(MetricJobsDone, "Jobs finished executing."),
		busy:      r.Gauge(MetricWorkersBusy, "Jobs currently executing across pools."),
	}
}

// runnerMetrics are the cached-runner handles; all nil when
// instrumentation is disabled.
type runnerMetrics struct {
	cached   *metrics.Counter
	computed *metrics.Counter
}

// newRunnerMetrics resolves the cached-runner instruments from the
// process default registry.
func newRunnerMetrics() runnerMetrics {
	r := metrics.Default()
	if r == nil {
		return runnerMetrics{}
	}
	return runnerMetrics{
		cached:   r.Counter(MetricRunsCached, "Scenario runs answered from the result cache."),
		computed: r.Counter(MetricRunsComputed, "Scenario runs executed by the engine."),
	}
}
