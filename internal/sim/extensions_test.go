package sim

import (
	"strings"
	"testing"
)

func TestPerfImpact(t *testing.T) {
	opt := shortTableOptions()
	tbl, err := RunPerfImpact(4, 2, 0, []float64{0.05, 0.2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*len(PerfPolicies()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	byKey := map[string]PerfRow{}
	for _, r := range tbl.Rows {
		byKey[r.Policy+"@"+formatRate(r.Rate)] = r
		if r.AvgLatency <= 0 || r.Throughput <= 0 {
			t.Errorf("%s@%.2f: empty perf stats", r.Policy, r.Rate)
		}
	}
	// Gating must be nearly performance-neutral: throughput equal up to
	// measurement-window boundary effects (a packet in flight when the
	// window closes may land on either side under different wake-up
	// timing — a few flits over the whole window) and latency within a
	// few cycles.
	for _, rate := range []string{"0.05", "0.20"} {
		base := byKey["baseline@"+rate]
		sw := byKey["sensor-wise@"+rate]
		if d := sw.Throughput - base.Throughput; d > 1e-4 || d < -1e-4 {
			t.Errorf("rate %s: throughput differs: %v vs %v", rate, sw.Throughput, base.Throughput)
		}
		if sw.AvgLatency > base.AvgLatency+5 {
			t.Errorf("rate %s: sensor-wise latency %v >> baseline %v",
				rate, sw.AvgLatency, base.AvgLatency)
		}
		if !(sw.DutyMD < base.DutyMD) {
			t.Errorf("rate %s: no duty reduction", rate)
		}
	}
	if !strings.Contains(tbl.Render(), "trade-off") {
		t.Error("render missing header")
	}
}

func formatRate(r float64) string {
	if r == 0.05 {
		return "0.05"
	}
	return "0.20"
}

func TestPerfImpactWakeupCostsLatency(t *testing.T) {
	opt := shortTableOptions()
	fast, err := RunPerfImpact(4, 2, 0, []float64{0.1}, opt)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunPerfImpact(4, 2, 6, []float64{0.1}, opt)
	if err != nil {
		t.Fatal(err)
	}
	get := func(t2 *PerfTable, policy string) PerfRow {
		for _, r := range t2.Rows {
			if r.Policy == policy {
				return r
			}
		}
		t.Fatalf("missing %s", policy)
		return PerfRow{}
	}
	// Baseline is unaffected by wake-up latency (nothing ever gates).
	if get(fast, "baseline").AvgLatency != get(slow, "baseline").AvgLatency {
		t.Error("baseline latency changed with wakeup latency")
	}
	// The gating policy pays for the ramp.
	if !(get(slow, "sensor-wise").AvgLatency > get(fast, "sensor-wise").AvgLatency) {
		t.Errorf("wakeup latency did not cost the gating policy: %v vs %v",
			get(slow, "sensor-wise").AvgLatency, get(fast, "sensor-wise").AvgLatency)
	}
}

func TestRunEnergy(t *testing.T) {
	opt := shortTableOptions()
	tbl, err := RunEnergy(4, 2, 0.1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 policies", len(tbl.Rows))
	}
	byPolicy := map[string]EnergyRow{}
	for _, r := range tbl.Rows {
		byPolicy[r.Policy] = r
		if r.Report.TotalNJ <= 0 {
			t.Errorf("%s: zero energy", r.Policy)
		}
	}
	base := byPolicy["baseline"]
	sw := byPolicy["sensor-wise"]
	if base.Report.LeakSavedPct != 0 {
		t.Errorf("baseline leak saving = %v", base.Report.LeakSavedPct)
	}
	if !(sw.Report.LeakSavedPct > 30) {
		t.Errorf("sensor-wise leak saving = %.1f%%, want substantial", sw.Report.LeakSavedPct)
	}
	if !(sw.Report.LeakageNJ < base.Report.LeakageNJ) {
		t.Error("gating did not reduce leakage energy")
	}
	// Sensors are charged only to the sensor-wise designs.
	if base.Sensors != 0 || byPolicy["rr-no-sensor"].Sensors != 0 {
		t.Error("sensor-less designs charged for sensors")
	}
	if sw.Sensors == 0 || byPolicy["sensor-wise-no-traffic"].Sensors == 0 {
		t.Error("sensor-wise designs not charged for sensors")
	}
	if !strings.Contains(tbl.Render(), "leak saved") {
		t.Error("render missing header")
	}
}

func TestSensorStudy(t *testing.T) {
	tbl, err := RunSensorStudy(4, 4, 0.1, shortTableOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(SensorVariants()) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(SensorVariants()))
	}
	byName := map[string]SensorRow{}
	for _, r := range tbl.Rows {
		byName[r.Variant] = r
		if r.TrueMD < 0 || r.TrueMD >= 4 {
			t.Errorf("%s: bad true MD %d", r.Variant, r.TrueMD)
		}
	}
	ideal := byName["ideal"]
	if !ideal.Identified {
		t.Error("ideal sensors misidentified the MD VC")
	}
	if ideal.GapVsRR <= 0 {
		t.Errorf("ideal sensors show no gain over rr: %v", ideal.GapVsRR)
	}
	// The reference 45 nm sensor (0.5 mV LSB, 0.25 mV noise) must rank a
	// 5 mV-σ PV spread correctly.
	if ref := byName["reference"]; !ref.Identified {
		t.Error("reference sensor misidentified the MD VC")
	}
	// Ideal and reference protect the true MD at least as well as the
	// heavily degraded variant.
	if vn := byName["very-noisy"]; vn.DutyTrueMD < ideal.DutyTrueMD-1e-9 {
		t.Errorf("very-noisy (%.2f%%) protects better than ideal (%.2f%%)",
			vn.DutyTrueMD, ideal.DutyTrueMD)
	}
	if out := tbl.Render(); out == "" {
		t.Error("empty render")
	}
}

func TestSensorVariantsValid(t *testing.T) {
	for _, v := range SensorVariants() {
		if err := v.Cfg.Validate(); err != nil {
			t.Errorf("variant %s invalid: %v", v.Name, err)
		}
	}
}

func TestRunCorners(t *testing.T) {
	opt := shortTableOptions()
	tbl, err := RunCorners(4, 2, 0.1, 0.050, []float64{325, 375}, []float64{1.0, 1.2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	if tbl.AlphaMD["baseline"] != 1.0 {
		t.Errorf("baseline alpha = %v, want 1", tbl.AlphaMD["baseline"])
	}
	if !(tbl.AlphaMD["sensor-wise"] < tbl.AlphaMD["rr-no-sensor"]) {
		t.Error("sensor-wise alpha not below rr")
	}
	find := func(temp, vdd float64) CornerRow {
		for _, r := range tbl.Rows {
			if r.TempK == temp && r.Vdd == vdd {
				return r
			}
		}
		t.Fatalf("corner %v/%v missing", temp, vdd)
		return CornerRow{}
	}
	cool := find(325, 1.0)
	hot := find(375, 1.2)
	// Heat and field accelerate aging: lifetimes shrink.
	if !(hot.LifetimeYears["baseline"] < cool.LifetimeYears["baseline"]) {
		t.Error("hot corner does not shorten baseline lifetime")
	}
	// The methodology extends lifetime at every corner.
	for _, r := range tbl.Rows {
		if !(r.LifetimeYears["sensor-wise"] >= r.LifetimeYears["baseline"]) {
			t.Errorf("corner %v/%v: no extension", r.TempK, r.Vdd)
		}
		if r.ExtensionX < 1 {
			t.Errorf("corner %v/%v: extension %.2fx < 1", r.TempK, r.Vdd, r.ExtensionX)
		}
	}
	if out := tbl.Render(); !strings.Contains(out, "extension") {
		t.Error("render missing header")
	}
	// Validation paths.
	if _, err := RunCorners(4, 2, 0.1, 0, []float64{350}, []float64{1.2}, opt); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := RunCorners(4, 2, 0.1, 0.05, nil, []float64{1.2}, opt); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestRunDSE(t *testing.T) {
	opt := shortTableOptions()
	tbl, err := RunDSE(4, 0.1, []int{2, 4}, []int{2, 4}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	find := func(vcs, depth int) DSERow {
		for _, r := range tbl.Rows {
			if r.VCs == vcs && r.Depth == depth {
				return r
			}
		}
		t.Fatalf("point %d/%d missing", vcs, depth)
		return DSERow{}
	}
	for _, r := range tbl.Rows {
		if r.DutyMD < 0 || r.DutyMD > 100 || r.AvgLatency <= 0 {
			t.Errorf("point %d/%d degenerate: %+v", r.VCs, r.Depth, r)
		}
		if r.RouterUm2 <= 0 || r.OverheadPct <= 0 {
			t.Errorf("point %d/%d: missing area data", r.VCs, r.Depth)
		}
	}
	// Area monotonicity: more VCs and deeper buffers grow the router.
	if !(find(4, 2).RouterUm2 > find(2, 2).RouterUm2) {
		t.Error("router area did not grow with VCs")
	}
	if !(find(2, 4).RouterUm2 > find(2, 2).RouterUm2) {
		t.Error("router area did not grow with depth")
	}
	if out := tbl.Render(); !strings.Contains(out, "Design-space") {
		t.Error("render missing header")
	}
	if _, err := RunDSE(4, 0.1, nil, []int{2}, opt); err == nil {
		t.Error("empty space accepted")
	}
}

func TestCSVExports(t *testing.T) {
	opt := shortTableOptions()
	syn, err := RunSyntheticTable(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	csv := syn.CSV()
	if !strings.HasPrefix(csv, "scenario,cores,rate,policy,vc,duty_pct,is_md,gap_pts\n") {
		t.Error("synthetic CSV header wrong")
	}
	// rows = scenarios x policies x VCs + header
	wantLines := len(syn.Rows)*len(syn.Policies)*2 + 1
	if got := strings.Count(csv, "\n"); got != wantLines {
		t.Errorf("synthetic CSV lines = %d, want %d", got, wantLines)
	}

	coop, err := RunCooperation(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coop.CSV(), "rr-no-sensor-no-traffic") {
		t.Error("coop CSV missing policies")
	}

	vth, err := RunVthSaving(2, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(vth.CSV(), "\n"); got != len(vth.Rows)+1 {
		t.Errorf("vth CSV lines = %d, want %d", got, len(vth.Rows)+1)
	}

	perf, err := RunPerfImpact(4, 2, 0, []float64{0.1}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(perf.CSV(), "avg_latency_cy") {
		t.Error("perf CSV header wrong")
	}

	dse, err := RunDSE(4, 0.1, []int{2}, []int{4}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(dse.CSV(), "\n"); got != 2 {
		t.Errorf("dse CSV lines = %d, want 2", got)
	}

	ropt := RealOptions{Iterations: 1, VCs: 2, Warmup: 500, Measure: 8000, SeedBase: 1}
	real4, err := RunRealTable(ropt)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(real4.CSV(), "\n"); got != len(real4.Rows)*2*2+1 {
		t.Errorf("table4 CSV lines = %d", got)
	}
}

func TestRRPeriodStudy(t *testing.T) {
	opt := shortTableOptions()
	opt.Measure = 60_000
	tbl, err := RunRRPeriodStudy(4, 4, 0.1, []uint64{1, 64, 1024}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	byPeriod := map[uint64]RRPeriodRow{}
	for _, r := range tbl.Rows {
		byPeriod[r.Period] = r
		if r.DutyMD < 0 || r.DutyMD > 100 || r.DutySpread < 0 {
			t.Errorf("period %d degenerate: %+v", r.Period, r)
		}
	}
	// The paper's rationale: fast rotation spreads stress most evenly.
	if !(byPeriod[1].DutySpread <= byPeriod[1024].DutySpread+0.5) {
		t.Errorf("period 1 spread %.2f not at or near the minimum (period 1024: %.2f)",
			byPeriod[1].DutySpread, byPeriod[1024].DutySpread)
	}
	if out := tbl.Render(); !strings.Contains(out, "rotation-period") {
		t.Error("render missing header")
	}
	if _, err := RunRRPeriodStudy(4, 4, 0.1, nil, opt); err == nil {
		t.Error("empty sweep accepted")
	}
}
