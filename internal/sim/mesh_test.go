package sim

import "testing"

func TestParseMesh(t *testing.T) {
	cases := []struct {
		in   string
		want Mesh
	}{
		{"16x16", Mesh{16, 16}},
		{"8x4", Mesh{8, 4}},
		{"1x1", Mesh{1, 1}},
	}
	for _, tc := range cases {
		got, err := ParseMesh(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMesh(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "16", "x", "4x", "x4", "0x4", "4x0", "-2x4", "axb", "4X4"} {
		if _, err := ParseMesh(bad); err == nil {
			t.Errorf("ParseMesh(%q) accepted", bad)
		}
	}
}

func TestMeshHelpers(t *testing.T) {
	m := Mesh{Width: 8, Height: 4}
	if m.Cores() != 32 || m.Square() || m.String() != "8x4" || m.Label() != "8x4" {
		t.Errorf("rectangular helpers wrong: %+v", m)
	}
	sq := Mesh{Width: 4, Height: 4}
	if !sq.Square() || sq.Label() != "16core" {
		t.Errorf("square Label = %q, want 16core", sq.Label())
	}
	if _, err := SquareMesh(6); err == nil {
		t.Error("SquareMesh(6) accepted")
	}
	if got, err := SquareMesh(16); err != nil || got != sq {
		t.Errorf("SquareMesh(16) = %v, %v", got, err)
	}
}

func TestMeshConfig(t *testing.T) {
	cfg, err := Mesh{Width: 16, Height: 8}.Config(2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != 16 || cfg.Height != 8 || cfg.VCsPerVNet != 2 {
		t.Errorf("MeshConfig = %dx%d vcs %d", cfg.Width, cfg.Height, cfg.VCsPerVNet)
	}
	if _, err := (Mesh{}).Config(2); err == nil {
		t.Error("zero mesh accepted")
	}
}

func TestScenarioMeshGeometry(t *testing.T) {
	// Explicit geometry: cores derived, rectangular allowed.
	s := Scenario{Name: "m", Width: 8, Height: 4, VCs: 2, Measure: 1000, Workload: "uniform"}
	cfg, err := s.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != 8 || cfg.Height != 4 || s.Cores != 32 {
		t.Errorf("geometry not threaded: %dx%d cores %d", cfg.Width, cfg.Height, s.Cores)
	}
	gs, err := s.GenSpec()
	if err != nil {
		t.Fatal(err)
	}
	if gs.Width != 8 || gs.Height != 4 {
		t.Errorf("GenSpec geometry = %dx%d", gs.Width, gs.Height)
	}

	// Cores disagreeing with the geometry is rejected; agreeing passes.
	bad := Scenario{Name: "b", Cores: 30, Width: 8, Height: 4, VCs: 2, Measure: 1000}
	if err := bad.Validate(); err == nil {
		t.Error("cores/geometry mismatch accepted")
	}
	ok := Scenario{Name: "ok", Cores: 32, Width: 8, Height: 4, VCs: 2, Measure: 1000}
	if err := ok.Validate(); err != nil {
		t.Errorf("consistent cores+geometry rejected: %v", err)
	}

	// Half-specified geometry is rejected.
	half := Scenario{Name: "h", Width: 8, VCs: 2, Measure: 1000}
	if err := half.Validate(); err == nil {
		t.Error("width without height accepted")
	}
}

func TestSyntheticTableMeshOverride(t *testing.T) {
	opt := DefaultTableOptions()
	opt.Warmup, opt.Measure = 200, 1_000
	opt.Rates = []float64{0.1}
	opt.Meshes = []Mesh{{Width: 4, Height: 2}}
	tbl, err := RunSyntheticTable(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tbl.Rows))
	}
	if tbl.Rows[0].Scenario != "4x2-inj0.10" || tbl.Rows[0].Cores != 8 {
		t.Errorf("mesh row = %q cores %d", tbl.Rows[0].Scenario, tbl.Rows[0].Cores)
	}
}
