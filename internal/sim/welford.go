package sim

import "math"

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation, matching the paper's
// per-scenario std columns over the 10 iterations.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// SampleVar returns the Bessel-corrected sample variance.
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// SampleStd returns the Bessel-corrected sample standard deviation.
func (w *Welford) SampleStd() float64 { return math.Sqrt(w.SampleVar()) }
