package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryJobOnce(t *testing.T) {
	const n = 50
	var counts [n]atomic.Int32
	if err := (Pool{}).Run(n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("job %d ran %d times, want 1", i, c)
		}
	}
}

func TestPoolEmptyBatch(t *testing.T) {
	if err := (Pool{Workers: 4}).Run(0, func(int) error {
		t.Error("job ran on empty batch")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSequentialFallback pins the Workers = 1 contract: jobs run in
// index order on the caller's goroutine semantics (strictly one at a
// time), and the first error stops the batch immediately.
func TestPoolSequentialFallback(t *testing.T) {
	var order []int
	boom := errors.New("boom")
	err := Pool{Workers: 1}.Run(6, func(i int) error {
		order = append(order, i)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(order, want) {
		t.Fatalf("executed %v, want %v", order, want)
	}
}

// TestPoolErrorCancelsBatch checks context-style cancellation: once a
// job fails, queued jobs are never dispatched. Job 0 fails and then
// releases job 1 (which may or may not have been dispatched first), so
// every index >= 2 must stay untouched.
func TestPoolErrorCancelsBatch(t *testing.T) {
	const n = 16
	var ran [n]atomic.Bool
	gate := make(chan struct{})
	boom := errors.New("boom")
	err := Pool{Workers: 2}.Run(n, func(i int) error {
		ran[i].Store(true)
		if i == 0 {
			close(gate)
			return boom
		}
		<-gate
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !ran[0].Load() {
		t.Error("job 0 never ran")
	}
	for i := 2; i < n; i++ {
		if ran[i].Load() {
			t.Errorf("job %d ran after the batch was cancelled", i)
		}
	}
}

// TestPoolReturnsLowestIndexedError holds all workers at a barrier until
// every job is in flight, then fails all of them: Run must surface the
// error of the lowest-indexed job, matching what the sequential path
// would have reported.
func TestPoolReturnsLowestIndexedError(t *testing.T) {
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	err := Pool{Workers: n}.Run(n, func(i int) error {
		barrier.Done()
		barrier.Wait()
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil || err.Error() != "job 0 failed" {
		t.Fatalf("err = %v, want job 0's error", err)
	}
}

// parTableOptions is the common scenario set of the determinism tests:
// small enough to keep the suite fast, wide enough that every driver
// enumerates a multi-job grid.
func parTableOptions(workers int) TableOptions {
	return TableOptions{
		Cores:       []int{4},
		Rates:       []float64{0.1, 0.3},
		PacketLen:   4,
		Warmup:      500,
		Measure:     6_000,
		SeedBase:    1,
		Parallelism: workers,
	}
}

// TestParallelMatchesSequential is the determinism guarantee of the
// harness: every converted driver must produce output deep-equal (bit
// identical floats included) at Parallelism 4 and Parallelism 1.
func TestParallelMatchesSequential(t *testing.T) {
	drivers := []struct {
		name string
		run  func(opt TableOptions) (any, error)
	}{
		{"SyntheticTable", func(opt TableOptions) (any, error) {
			return RunSyntheticTable(2, opt)
		}},
		{"VthSaving", func(opt TableOptions) (any, error) {
			return RunVthSaving(2, 3, opt)
		}},
		{"Cooperation", func(opt TableOptions) (any, error) {
			return RunCooperation(2, opt)
		}},
		{"PerfImpact", func(opt TableOptions) (any, error) {
			return RunPerfImpact(4, 2, 0, opt.Rates, opt)
		}},
		{"Energy", func(opt TableOptions) (any, error) {
			return RunEnergy(4, 2, 0.3, opt)
		}},
		{"SensorStudy", func(opt TableOptions) (any, error) {
			return RunSensorStudy(4, 2, 0.3, opt)
		}},
		{"Corners", func(opt TableOptions) (any, error) {
			return RunCorners(4, 2, 0.3, 0.05,
				[]float64{300, 350}, []float64{0.9, 1.0}, opt)
		}},
		{"DSE", func(opt TableOptions) (any, error) {
			return RunDSE(4, 0.3, []int{2}, []int{2, 4}, opt)
		}},
		{"RRPeriodStudy", func(opt TableOptions) (any, error) {
			return RunRRPeriodStudy(4, 2, 0.3, []uint64{100, 1_000}, opt)
		}},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			seq, err := d.run(parTableOptions(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := d.run(parTableOptions(4))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("parallel output diverges from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}

	t.Run("RealTable", func(t *testing.T) {
		t.Parallel()
		ropt := RealOptions{
			Iterations: 2, VCs: 2,
			Warmup: 500, Measure: 6_000, SeedBase: 1,
		}
		ropt.Parallelism = 1
		seq, err := RunRealTable(ropt)
		if err != nil {
			t.Fatal(err)
		}
		ropt.Parallelism = 4
		par, err := RunRealTable(ropt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel output diverges from sequential:\nseq: %+v\npar: %+v", seq, par)
		}
	})
}
