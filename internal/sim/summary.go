package sim

import "nbtinoc/internal/noc"

// RunSummary is the serialisable subset of a RunResult: everything the
// table and sweep drivers consume, without the live *noc.Network. It is
// the unit of result caching (internal/cache) and what parallel sweeps
// retain per finished job — a few hundred bytes instead of an entire
// mesh pinned until the reduction pass.
type RunSummary struct {
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	// Cycles is the measured window length.
	Cycles uint64 `json:"cycles"`
	// Ports holds one reading per requested probe, in probe order.
	Ports []PortReading `json:"ports,omitempty"`
	// AvgLatency is the mean packet latency over all NIs (cycles).
	AvgLatency float64 `json:"avg_latency"`
	// Throughput is ejected flits per cycle per node.
	Throughput float64 `json:"throughput"`
	// InjectedPackets / EjectedPackets over the measured window.
	InjectedPackets uint64 `json:"injected_packets"`
	EjectedPackets  uint64 `json:"ejected_packets"`
	// Nodes and TotalVCs describe the simulated geometry, so consumers
	// like the energy model need not rebuild the network to count
	// sensors.
	Nodes    int `json:"nodes"`
	TotalVCs int `json:"total_vcs"`
	// Events are the measured-window event counters feeding the power
	// model.
	Events noc.EventCounts `json:"events"`
}

// Summary extracts the serialisable view of a result. The live network
// is left behind, so the caller's reference to the RunResult can be
// dropped and the mesh collected.
func (r *RunResult) Summary() *RunSummary {
	s := &RunSummary{
		Policy:          r.Policy,
		Workload:        r.Workload,
		Cycles:          r.Cycles,
		Ports:           r.Ports,
		AvgLatency:      r.AvgLatency,
		Throughput:      r.Throughput,
		InjectedPackets: r.InjectedPackets,
		EjectedPackets:  r.EjectedPackets,
	}
	if r.Net != nil {
		s.Nodes = r.Net.Nodes()
		s.TotalVCs = r.Net.Config().TotalVCs()
		s.Events = r.Net.Events()
	}
	return s
}

// AllPortProbes enumerates every instantiated input port of a
// width×height mesh for vnet 0, in (node ascending, port Local, North,
// East, South, West) order — the same order a walk over the live
// routers produces. A mesh router has an input port for a direction
// exactly when a neighbour exists on that side; the Local (NI) input
// always exists.
func AllPortProbes(width, height int) []PortProbe {
	var probes []PortProbe
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			node := noc.NodeID(y*width + x)
			probes = append(probes, PortProbe{Node: node, Port: noc.Local})
			if y > 0 {
				probes = append(probes, PortProbe{Node: node, Port: noc.North})
			}
			if x < width-1 {
				probes = append(probes, PortProbe{Node: node, Port: noc.East})
			}
			if y < height-1 {
				probes = append(probes, PortProbe{Node: node, Port: noc.South})
			}
			if x > 0 {
				probes = append(probes, PortProbe{Node: node, Port: noc.West})
			}
		}
	}
	return probes
}
