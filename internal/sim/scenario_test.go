package sim

import (
	"bytes"
	"strings"
	"testing"

	"nbtinoc/internal/noc"
)

func validScenario() Scenario {
	return Scenario{
		Name:     "unit",
		Cores:    4,
		VCs:      2,
		Policy:   "sensor-wise",
		Workload: "uniform",
		Rate:     0.1,
		Warmup:   500,
		Measure:  5000,
		Seed:     1,
		PVSeed:   2,
	}
}

func TestScenarioDefaults(t *testing.T) {
	s := validScenario()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.VNets != 1 || s.TechNode != 45 || s.PacketLen != 4 || s.Phits != 1 {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []func(*Scenario){
		func(s *Scenario) { s.Cores = 0 },
		func(s *Scenario) { s.Cores = 5 },
		func(s *Scenario) { s.VCs = 0 },
		func(s *Scenario) { s.Measure = 0 },
		func(s *Scenario) { s.TechNode = 28 },
		func(s *Scenario) { s.Workload = "req-resp"; s.VNets = 1 },
	}
	for i, mutate := range cases {
		s := validScenario()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	s := validScenario()
	s.TechNode = 32
	s.Phits = 2
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.TechNode != 32 || back.Phits != 2 ||
		back.Policy != s.Policy || back.Rate != s.Rate {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestLoadScenarioRejectsUnknownFields(t *testing.T) {
	in := `{"name":"x","cores":4,"vcs":2,"measure":10,"bogus":1}`
	if _, err := LoadScenario(strings.NewReader(in)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadScenarioRejectsGarbage(t *testing.T) {
	if _, err := LoadScenario(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadScenarioFile("/nonexistent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestScenario32nmConfig(t *testing.T) {
	s := validScenario()
	s.TechNode = 32
	cfg, err := s.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PV.MeanVth != 0.160 {
		t.Errorf("32 nm mean Vth0 = %v, want 0.160", cfg.PV.MeanVth)
	}
	if cfg.NBTI.Vth0 != 0.160 {
		t.Errorf("32 nm model Vth0 = %v", cfg.NBTI.Vth0)
	}
	s45 := validScenario()
	cfg45, err := s45.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg45.PV.MeanVth != 0.180 {
		t.Errorf("45 nm mean Vth0 = %v, want 0.180", cfg45.PV.MeanVth)
	}
}

func TestScenarioExecute(t *testing.T) {
	s := validScenario()
	res, err := s.Execute([]PortProbe{{Node: 0, Port: noc.East}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "sensor-wise" || len(res.Ports) != 1 {
		t.Errorf("unexpected result: %+v", res)
	}
	if res.EjectedPackets == 0 {
		t.Error("no traffic delivered")
	}
}

func TestScenarioExecuteReqResp(t *testing.T) {
	s := validScenario()
	s.Workload = "req-resp"
	s.VNets = 2
	s.Rate = 0.02
	res, err := s.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.EjectedPackets == 0 {
		t.Error("req-resp scenario delivered nothing")
	}
}

func TestScenarioExecuteApp(t *testing.T) {
	s := validScenario()
	s.Workload = "app"
	s.Measure = 20000
	res, err := s.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "app-mix" {
		t.Errorf("workload = %q", res.Workload)
	}
}

func TestScenarioBadWorkload(t *testing.T) {
	s := validScenario()
	s.Workload = "spiral"
	if _, err := s.BuildGenerator(); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
