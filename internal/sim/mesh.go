package sim

import (
	"fmt"
	"strconv"
	"strings"

	"nbtinoc/internal/noc"
)

// Mesh is an explicit mesh geometry. Unlike the core-count shorthand
// (MeshSide), it admits rectangular meshes, which is how the CLIs'
// -mesh WxH flag reaches the harness.
type Mesh struct {
	Width, Height int
}

// ParseMesh parses the CLI "WxH" form, e.g. "16x16" or "8x4".
func ParseMesh(s string) (Mesh, error) {
	w, h, ok := strings.Cut(s, "x")
	if !ok {
		return Mesh{}, fmt.Errorf("sim: mesh %q not in WxH form (e.g. 16x16)", s)
	}
	width, werr := strconv.Atoi(w)
	height, herr := strconv.Atoi(h)
	if werr != nil || herr != nil {
		return Mesh{}, fmt.Errorf("sim: mesh %q not in WxH form (e.g. 16x16)", s)
	}
	m := Mesh{Width: width, Height: height}
	if err := m.Validate(); err != nil {
		return Mesh{}, err
	}
	return m, nil
}

// SquareMesh returns the square geometry for a core count, rejecting
// non-square values (the historical cores shorthand).
func SquareMesh(cores int) (Mesh, error) {
	side, err := MeshSide(cores)
	if err != nil {
		return Mesh{}, err
	}
	return Mesh{Width: side, Height: side}, nil
}

// Cores returns the tile count.
func (m Mesh) Cores() int { return m.Width * m.Height }

// Square reports whether the geometry is a square mesh.
func (m Mesh) Square() bool { return m.Width == m.Height }

// String renders the geometry in the WxH form ParseMesh accepts.
func (m Mesh) String() string { return fmt.Sprintf("%dx%d", m.Width, m.Height) }

// Validate rejects degenerate geometries.
func (m Mesh) Validate() error {
	if m.Width < 1 || m.Height < 1 {
		return fmt.Errorf("sim: mesh %s needs positive dimensions", m)
	}
	return nil
}

// Label names the geometry in table rows: the historical "%dcore" form
// for square meshes, so existing golden outputs stay byte-identical,
// and the WxH form otherwise.
func (m Mesh) Label() string {
	if m.Square() {
		return fmt.Sprintf("%dcore", m.Cores())
	}
	return m.String()
}

// Config returns the paper's router/technology configuration on this
// geometry — BaseConfig without the square restriction. The mesh
// dimensions land in noc.Config and therefore in every content-
// addressed cache key derived from a Spec.
func (m Mesh) Config(vcsPerVNet int) (noc.Config, error) {
	if err := m.Validate(); err != nil {
		return noc.Config{}, err
	}
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = m.Width, m.Height
	cfg.VCsPerVNet = vcsPerVNet
	return cfg, nil
}
