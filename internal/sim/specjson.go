package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"nbtinoc/internal/noc"
)

// Spec's JSON codec, the wire format of sweep manifests: a manifest
// that embeds its specs can be re-run on a machine that never saw the
// originating grid. The codec goes through configKey — the same
// factory-free mirror the cache key hashes — so exactly the fields
// that define a spec's content address round-trip, no more and no
// less, and a serialised spec re-keys to the same address it was
// recorded under.

// specJSON is the serialised shape of a Spec.
type specJSON struct {
	Net     configKey   `json:"net"`
	Policy  PolicySpec  `json:"policy"`
	Gen     GenSpec     `json:"gen"`
	Warmup  uint64      `json:"warmup"`
	Measure uint64      `json:"measure"`
	Probes  []PortProbe `json:"probes,omitempty"`
}

// config reverses configKeyOf. TestConfigKeyMirrorsConfig pins the
// mirror field set, so a Config field added without extending both
// directions fails tests rather than silently dropping state.
func (k configKey) config() noc.Config {
	return noc.Config{
		Width:            k.Width,
		Height:           k.Height,
		VNets:            k.VNets,
		VCsPerVNet:       k.VCsPerVNet,
		BufferDepth:      k.BufferDepth,
		FlitWidthBits:    k.FlitWidthBits,
		LinkLatency:      k.LinkLatency,
		PhitsPerFlit:     k.PhitsPerFlit,
		Routing:          k.Routing,
		EjectRate:        k.EjectRate,
		EjectBufferDepth: k.EjectBufferDepth,
		GateEjection:     k.GateEjection,
		WakeupLatency:    k.WakeupLatency,
		NBTI:             k.NBTI,
		PV:               k.PV,
		PVSeed:           k.PVSeed,
		Sensor:           k.Sensor,
		SensorSeed:       k.SensorSeed,
	}
}

// MarshalJSON serialises the spec. A spec carrying a raw Policy
// factory on its Config has no canonical encoding (funcs cannot be
// serialised) and is refused, mirroring the cache-bypass rule in
// Runner.Run.
func (s Spec) MarshalJSON() ([]byte, error) {
	if s.Net.Policy != nil {
		return nil, errors.New("sim: spec with a raw policy factory cannot be serialised")
	}
	return json.Marshal(specJSON{
		Net:     configKeyOf(s.Net),
		Policy:  s.Policy,
		Gen:     s.Gen,
		Warmup:  s.Warmup,
		Measure: s.Measure,
		Probes:  s.Probes,
	})
}

// UnmarshalJSON rebuilds the spec.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var j specJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Spec{
		Net:     j.Net.config(),
		Policy:  j.Policy,
		Gen:     j.Gen,
		Warmup:  j.Warmup,
		Measure: j.Measure,
		Probes:  j.Probes,
	}
	return nil
}

// ParsePortProbe parses the "node:port" probe syntax shared by the
// CLIs and sweep grids — a node index and a compass port letter
// (L, N, E, S, W, case-insensitive), e.g. "5:E".
func ParsePortProbe(s string) (PortProbe, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return PortProbe{}, fmt.Errorf("probe %q not in node:port form", s)
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return PortProbe{}, fmt.Errorf("probe node %q: %v", parts[0], err)
	}
	var port noc.Port
	switch strings.ToUpper(parts[1]) {
	case "L":
		port = noc.Local
	case "N":
		port = noc.North
	case "E":
		port = noc.East
	case "S":
		port = noc.South
	case "W":
		port = noc.West
	default:
		return PortProbe{}, fmt.Errorf("unknown port %q", parts[1])
	}
	return PortProbe{Node: noc.NodeID(node), Port: port}, nil
}
