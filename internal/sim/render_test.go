package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderFormats(t *testing.T) {
	sum, err := quickSpec().Compute()
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range RenderFormats() {
		var buf bytes.Buffer
		if err := sum.Render(&buf, format); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: empty output", format)
		}
		switch format {
		case "json":
			var decoded map[string]any
			if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
				t.Errorf("json output does not parse: %v", err)
			}
			if _, ok := decoded["DutyCycle"]; !ok {
				t.Error("json output lacks DutyCycle")
			}
		case "csv":
			if !strings.HasPrefix(buf.String(), "policy,workload,probe,vc,duty_pct,vth0,most_degraded\n") {
				t.Errorf("csv header: %q", buf.String())
			}
		case "text":
			if !strings.Contains(buf.String(), "throughput") {
				t.Errorf("text output: %q", buf.String())
			}
		}
	}

	var buf bytes.Buffer
	if err := sum.Render(&buf, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
	if err := (&RunSummary{}).Render(&buf, "json"); err == nil {
		t.Error("probe-less summary rendered")
	}
}
