package sim

import (
	"encoding/json"
	"fmt"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/core"
	"nbtinoc/internal/nbti"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/pv"
	"nbtinoc/internal/sensor"
	"nbtinoc/internal/traffic"
)

// EngineVersion fingerprints the simulator's observable behaviour and
// is baked into every cache key, so a behavioural change invalidates
// the whole result cache by construction. Bump it whenever the golden
// fixtures under cmd/tables/testdata change — the coupling test
// TestEngineVersionPinsGoldens fails on a fixture change without a
// bump, and on a bump without refreshed pins.
const EngineVersion = "nbtinoc-engine-2"

// PolicySpec is the declarative form of a recovery-policy choice: a
// registry name, or a parameterised rr-no-sensor rotation period (the
// one driver, RunRRPeriodStudy, that installs a custom factory).
type PolicySpec struct {
	// Name selects from the core registry; empty plus zero RRPeriod
	// means the always-on baseline.
	Name string `json:"name,omitempty"`
	// RRPeriod, when non-zero, overrides Name with an rr-no-sensor
	// policy rotating every RRPeriod cycles.
	RRPeriod uint64 `json:"rr_period,omitempty"`
}

// GenSpec is the declarative form of a traffic generator: everything
// needed to rebuild it, and nothing that cannot be serialised. Kind is
// "synthetic", "app" or "req-resp", mirroring Scenario workloads.
type GenSpec struct {
	Kind    string  `json:"kind"`
	Pattern string  `json:"pattern,omitempty"`
	Width   int     `json:"width"`
	Height  int     `json:"height"`
	Rate    float64 `json:"rate,omitempty"`
	// PacketLen is the synthetic packet length in flits.
	PacketLen int `json:"packet_len,omitempty"`
	// VNet is the vnet synthetic packets are injected into.
	VNet int `json:"vnet,omitempty"`
	// HotspotNode / HotspotFraction parameterise the hotspot pattern.
	HotspotNode     int     `json:"hotspot_node,omitempty"`
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`
	Seed            uint64  `json:"seed"`
}

// Build materialises the generator.
func (g GenSpec) Build() (traffic.Generator, error) {
	switch g.Kind {
	case "app":
		return traffic.NewRandomAppMix(g.Width, g.Height, g.VNet, g.Seed)
	case "req-resp":
		cfg := traffic.DefaultReqResp(g.Width, g.Height, g.Rate, g.Seed)
		return traffic.NewReqResp(cfg)
	case "synthetic":
		pat, err := traffic.ParsePattern(g.Pattern)
		if err != nil {
			return nil, err
		}
		return traffic.NewSynthetic(traffic.SyntheticConfig{
			Pattern:         pat,
			Width:           g.Width,
			Height:          g.Height,
			Rate:            g.Rate,
			PacketLen:       g.PacketLen,
			VNet:            g.VNet,
			Seed:            g.Seed,
			HotspotNode:     noc.NodeID(g.HotspotNode),
			HotspotFraction: g.HotspotFraction,
		})
	default:
		return nil, fmt.Errorf("sim: unknown generator kind %q", g.Kind)
	}
}

// Spec is a fully declarative simulation request: the unit of result
// caching. Everything that influences the outcome is a field here (or
// in the nested serialisable structs), which is what makes the content
// address exact.
type Spec struct {
	// Net is the network configuration. Its Policy factory field does
	// not participate in the cache key; specs carrying one bypass the
	// cache (see Runner.Run).
	Net     noc.Config
	Policy  PolicySpec
	Gen     GenSpec
	Warmup  uint64
	Measure uint64
	Probes  []PortProbe
}

// Compute runs the spec and returns its summary, never consulting any
// cache.
func (s Spec) Compute() (*RunSummary, error) {
	rc := RunConfig{Net: s.Net, Warmup: s.Warmup, Measure: s.Measure}
	if s.Policy.RRPeriod > 0 {
		period := s.Policy.RRPeriod
		rc.Net.Policy = func() noc.Policy { return &core.RRNoSensor{RotatePeriod: period} }
	} else {
		rc.PolicyName = s.Policy.Name
	}
	gen, err := s.Gen.Build()
	if err != nil {
		return nil, err
	}
	rc.Gen = gen
	res, err := Run(rc, s.Probes)
	if err != nil {
		return nil, err
	}
	return res.Summary(), nil
}

// configKey mirrors noc.Config field-for-field, minus the Policy
// factory (funcs have no canonical encoding; the policy enters the key
// through PolicySpec instead). TestConfigKeyMirrorsConfig enforces the
// mirror with reflection, so a new Config field cannot silently stay
// out of the cache key and alias distinct scenarios.
type configKey struct {
	Width            int
	Height           int
	VNets            int
	VCsPerVNet       int
	BufferDepth      int
	FlitWidthBits    int
	LinkLatency      int
	PhitsPerFlit     int
	Routing          noc.RoutingAlgorithm
	EjectRate        int
	EjectBufferDepth int
	GateEjection     bool
	WakeupLatency    int
	NBTI             nbti.Params
	PV               pv.Distribution
	PVSeed           uint64
	Sensor           sensor.Config
	SensorSeed       uint64
}

func configKeyOf(c noc.Config) configKey {
	return configKey{
		Width:            c.Width,
		Height:           c.Height,
		VNets:            c.VNets,
		VCsPerVNet:       c.VCsPerVNet,
		BufferDepth:      c.BufferDepth,
		FlitWidthBits:    c.FlitWidthBits,
		LinkLatency:      c.LinkLatency,
		PhitsPerFlit:     c.PhitsPerFlit,
		Routing:          c.Routing,
		EjectRate:        c.EjectRate,
		EjectBufferDepth: c.EjectBufferDepth,
		GateEjection:     c.GateEjection,
		WakeupLatency:    c.WakeupLatency,
		NBTI:             c.NBTI,
		PV:               c.PV,
		PVSeed:           c.PVSeed,
		Sensor:           c.Sensor,
		SensorSeed:       c.SensorSeed,
	}
}

// specKeyEnvelope is the canonical JSON shape hashed into a cache key.
type specKeyEnvelope struct {
	Engine  string      `json:"engine"`
	Net     configKey   `json:"net"`
	Policy  PolicySpec  `json:"policy"`
	Gen     GenSpec     `json:"gen"`
	Warmup  uint64      `json:"warmup"`
	Measure uint64      `json:"measure"`
	Probes  []PortProbe `json:"probes"`
}

// specKeyFor derives the content address of a spec under an explicit
// engine fingerprint (split out so invalidation tests can vary it).
func specKeyFor(engine string, s Spec) (string, error) {
	return cache.KeyOf(specKeyEnvelope{
		Engine:  engine,
		Net:     configKeyOf(s.Net),
		Policy:  s.Policy,
		Gen:     s.Gen,
		Warmup:  s.Warmup,
		Measure: s.Measure,
		Probes:  s.Probes,
	})
}

// SpecKey returns the content address of a spec under the current
// engine version.
func SpecKey(s Spec) (string, error) { return specKeyFor(EngineVersion, s) }

// Runner executes Specs, memoizing through a Store when one is
// attached. A zero Runner always computes.
type Runner struct {
	Store *cache.Store
	// Record, when non-nil, observes every successfully completed
	// Run/TryRun: the spec, its content address (empty when the spec
	// bypassed the cache), and whether the summary came from the cache.
	// Sweep manifests are built on this hook. Drivers run specs from
	// worker pools, so Record must be safe for concurrent use.
	Record func(spec Spec, key string, cached bool)
}

func (r Runner) record(spec Spec, key string, cached bool) {
	if r.Record != nil {
		r.Record(spec, key, cached)
	}
}

// Run returns the spec's summary, from the cache when possible.
// Specs carrying a raw Policy factory on the Config are executed
// directly — a func cannot participate in the content address, and
// serving another factory's result would be silently wrong.
func (r Runner) Run(spec Spec) (*RunSummary, error) {
	met := newRunnerMetrics()
	if r.Store.Mode() == cache.Off || spec.Net.Policy != nil {
		met.computed.Inc()
		sum, err := spec.Compute()
		if err == nil {
			r.record(spec, "", false)
		}
		return sum, err
	}
	key, err := SpecKey(spec)
	if err != nil {
		met.computed.Inc()
		sum, cerr := spec.Compute()
		if cerr == nil {
			r.record(spec, "", false)
		}
		return sum, cerr
	}
	var sum RunSummary
	cached, err := r.Store.Do(key,
		func(data []byte) error { return json.Unmarshal(data, &sum) },
		func() ([]byte, error) {
			s, err := spec.Compute()
			if err != nil {
				return nil, err
			}
			return json.Marshal(s)
		},
	)
	if err != nil {
		return nil, err
	}
	if cached {
		met.cached.Inc()
	} else {
		met.computed.Inc()
	}
	r.record(spec, key, cached)
	return &sum, nil
}

// RunJob is the job-level entry the simulation service is built on:
// validate the spec (returning the field-tagged SpecErrors report worth
// serialising over HTTP), execute it through the cache, and report
// whether the summary was served from the store — the flag a job view
// exposes as dedup evidence. Any Record hook already installed on the
// runner still fires.
func (r Runner) RunJob(spec Spec) (sum *RunSummary, cached bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	prev := r.Record
	r.Record = func(sp Spec, key string, c bool) {
		cached = c
		if prev != nil {
			prev(sp, key, c)
		}
	}
	sum, err = r.Run(spec)
	return sum, cached, err
}

// TryRun is the non-blocking variant of Run for work-stealing sweeps:
// it never waits on another process's lease. It returns done=false
// (and a nil summary) when the spec's key is being computed elsewhere
// right now — the caller moves on and revisits the unit later. Specs
// that bypass the cache always compute and complete.
func (r Runner) TryRun(spec Spec) (sum *RunSummary, done bool, err error) {
	met := newRunnerMetrics()
	if r.Store.Mode() == cache.Off || spec.Net.Policy != nil {
		met.computed.Inc()
		sum, err = spec.Compute()
		if err == nil {
			r.record(spec, "", false)
		}
		return sum, true, err
	}
	key, err := SpecKey(spec)
	if err != nil {
		met.computed.Inc()
		sum, cerr := spec.Compute()
		if cerr == nil {
			r.record(spec, "", false)
		}
		return sum, true, cerr
	}
	var got RunSummary
	done, cached, err := r.Store.TryDo(key,
		func(data []byte) error { return json.Unmarshal(data, &got) },
		func() ([]byte, error) {
			s, err := spec.Compute()
			if err != nil {
				return nil, err
			}
			return json.Marshal(s)
		},
	)
	if err != nil || !done {
		return nil, done, err
	}
	if cached {
		met.cached.Inc()
	} else {
		met.computed.Inc()
	}
	r.record(spec, key, cached)
	return &got, true, nil
}
