package sim

import (
	"encoding/json"
	"fmt"
	"testing"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/traffic"
)

// runFingerprint serialises everything observable about a run: the
// result fields, every probed port, the aggregated event counters and
// the full aging snapshot. Two runs are "byte-identical" when their
// fingerprints match.
func runFingerprint(t *testing.T, res *RunResult) string {
	t.Helper()
	type fp struct {
		Policy    string
		Workload  string
		Cycles    uint64
		Ports     []PortReading
		Lat       float64
		Thr       float64
		Inj, Ej   uint64
		Events    noc.EventCounts
		NetCycle  uint64
		Aging     noc.AgingState
		InFlight  int
		Quiescent bool
	}
	b, err := json.Marshal(fp{
		Policy: res.Policy, Workload: res.Workload, Cycles: res.Cycles,
		Ports: res.Ports, Lat: res.AvgLatency, Thr: res.Throughput,
		Inj: res.InjectedPackets, Ej: res.EjectedPackets,
		Events: res.Net.Events(), NetCycle: res.Net.Cycle(),
		Aging:    res.Net.AgingSnapshot(),
		InFlight: res.Net.InFlightFlits(), Quiescent: res.Net.Quiescent(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func ffProbes() []PortProbe {
	return []PortProbe{
		{Node: 0, Port: noc.East}, {Node: 3, Port: noc.West},
	}
}

// TestFastForwardMatchesStepByStep is the tentpole cross-check: for a
// spread of policies, rates and generators the event-horizon engine must
// produce runs byte-identical to the cycle-by-cycle loop — same duty
// cycles, latencies, counters, aging state, everything.
func TestFastForwardMatchesStepByStep(t *testing.T) {
	cases := []struct {
		name     string
		policy   string
		rate     float64
		reqResp  bool
		wantFast bool // the fast-forward path must actually trigger
	}{
		// Mostly-idle: the regime fast-forward exists for.
		{name: "sensor-wise-idle", policy: "sensor-wise", rate: 0.002, wantFast: true},
		// Phase-rotating policy: rotation boundaries land mid-skip and the
		// phase is recomputed from the jumped cycle counter.
		{name: "rr-no-sensor-idle", policy: "rr-no-sensor", rate: 0.002, wantFast: true},
		{name: "baseline-idle", policy: "baseline", rate: 0.002, wantFast: true},
		// Busy mesh: fast-forward may never fire, but must not perturb.
		{name: "sensor-wise-busy", policy: "sensor-wise", rate: 0.2},
		// Closed-loop request/response traffic with pending responses.
		{name: "req-resp", policy: "sensor-wise", rate: 0.002, reqResp: true, wantFast: true},
		// Zero-rate: the whole run is one fast-forwarded span.
		{name: "zero-rate", policy: "sensor-wise", rate: 0, wantFast: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() traffic.Generator {
				if tc.reqResp {
					g, err := traffic.NewReqResp(traffic.DefaultReqResp(2, 2, tc.rate, 404))
					if err != nil {
						t.Fatal(err)
					}
					return g
				}
				return mkGen(t, 2, tc.rate, 404)
			}
			run := func(sbs bool) *RunResult {
				cfg, err := BaseConfig(4, 2)
				if err != nil {
					t.Fatal(err)
				}
				cfg.PVSeed = 99
				if tc.reqResp {
					cfg.VNets = 2 // request + response classes
				}
				res, err := Run(RunConfig{
					Net: cfg, PolicyName: tc.policy,
					Warmup: 2_000, Measure: 20_000,
					Gen: mk(), StepByStep: sbs,
				}, ffProbes())
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			slow := run(true)
			fast := run(false)
			if got := slow.Net.FastForwardedCycles(); got != 0 {
				t.Fatalf("StepByStep run fast-forwarded %d cycles", got)
			}
			ff := fast.Net.FastForwardedCycles()
			if tc.wantFast && ff == 0 {
				t.Error("fast-forward path never triggered")
			}
			t.Logf("fast-forwarded %d / %d cycles", ff, fast.Net.Cycle())
			if a, b := runFingerprint(t, slow), runFingerprint(t, fast); a != b {
				t.Errorf("fast-forwarded run differs from step-by-step:\n sbs: %s\n ff:  %s", a, b)
			}
		})
	}
}

// The warm-up → measurement boundary must land in its own iteration so
// the statistics reset happens at the exact cycle, even when the next
// traffic event is far beyond it.
func TestFastForwardWarmupBoundary(t *testing.T) {
	for _, warmup := range []uint64{1, 100, 2_000} {
		cfg, err := BaseConfig(4, 2)
		if err != nil {
			t.Fatal(err)
		}
		run := func(sbs bool) string {
			res, err := Run(RunConfig{
				Net: cfg, PolicyName: "sensor-wise",
				Warmup: warmup, Measure: 10_000,
				// Rate so low the warm-up window is usually eventless: the
				// jump must still stop at the boundary.
				Gen: mkGen(t, 2, 0.0005, 505), StepByStep: sbs,
			}, ffProbes())
			if err != nil {
				t.Fatal(err)
			}
			return runFingerprint(t, res)
		}
		if a, b := run(true), run(false); a != b {
			t.Errorf("warmup %d: boundary handling differs:\n sbs: %s\n ff:  %s", warmup, a, b)
		}
	}
}

// A zero-rate run must cover its full window, report zero traffic and
// leave the trackers in pure recovery.
func TestFastForwardZeroRateRun(t *testing.T) {
	cfg, err := BaseConfig(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Net: cfg, PolicyName: "sensor-wise",
		Warmup: 1_000, Measure: 50_000, Gen: mkGen(t, 2, 0, 1),
	}, ffProbes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Cycle() != 51_000 {
		t.Errorf("final cycle %d, want 51000", res.Net.Cycle())
	}
	if res.InjectedPackets != 0 || res.EjectedPackets != 0 || res.Throughput != 0 {
		t.Errorf("zero-rate run carried traffic: %+v", res)
	}
	if ff := res.Net.FastForwardedCycles(); ff == 0 {
		t.Error("zero-rate run never fast-forwarded")
	}
	for _, p := range res.Ports {
		for vc, d := range p.Duty {
			if d != 0 {
				t.Errorf("%s vc %d: duty %.2f%% with no traffic", p.Probe.Label(), vc, d)
			}
		}
	}
}

// Interleaving injections with long idle gaps: the engine repeatedly
// enters and leaves fast-forward and the replayed trace must arrive
// intact (every packet delivered, latencies finite).
func TestFastForwardTraceReplay(t *testing.T) {
	var events []traffic.Event
	for i := 0; i < 20; i++ {
		events = append(events, traffic.Event{
			Cycle: uint64(i) * 997, Src: noc.NodeID(i % 4), Dst: noc.NodeID((i + 1) % 4),
			VNet: 0, Len: 4,
		})
	}
	cfg, err := BaseConfig(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sbs bool) (*RunResult, string) {
		res, err := Run(RunConfig{
			Net: cfg, PolicyName: "sensor-wise",
			Warmup: 0, Measure: 25_000,
			Gen: traffic.NewReplayer(append([]traffic.Event(nil), events...)), StepByStep: sbs,
		}, ffProbes())
		if err != nil {
			t.Fatal(err)
		}
		return res, runFingerprint(t, res)
	}
	slow, a := run(true)
	fast, b := run(false)
	if a != b {
		t.Errorf("trace replay differs between modes:\n sbs: %s\n ff:  %s", a, b)
	}
	if fast.EjectedPackets != uint64(len(events)) {
		t.Errorf("delivered %d/%d trace packets", fast.EjectedPackets, len(events))
	}
	if fast.Net.FastForwardedCycles() == 0 {
		t.Error("sparse trace never fast-forwarded")
	}
	_ = slow
}

// The Spec cache key must not depend on the StepByStep debugging knob:
// both modes compute the same result, so they must share cache entries.
func TestStepByStepNotInSpecKey(t *testing.T) {
	cfg, err := BaseConfig(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Net:     cfg,
		Policy:  PolicySpec{Name: "sensor-wise"},
		Gen:     GenSpec{Kind: "synthetic", Pattern: "uniform", Width: 2, Height: 2, Rate: 0.1, PacketLen: 4, Seed: 1},
		Warmup:  100,
		Measure: 1000,
	}
	key1, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	// RunConfig carries the knob; Spec has no such field, which is the
	// property under test — this is a compile-time shape assertion plus a
	// stability check of the key itself.
	key2, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Errorf("spec key unstable: %s vs %s", key1, key2)
	}
	if key1 == "" {
		t.Error("empty spec key")
	}
	_ = fmt.Sprintf("%+v", RunConfig{StepByStep: true})
}
