// Package sim is the experiment harness: it builds networks from
// scenario descriptions, drives traffic generators through warm-up and
// measurement windows, and aggregates the per-VC NBTI statistics into
// the tables of the paper's evaluation (Tables II, III, IV), the ΔVth
// saving analysis and the cooperation ablation.
package sim

import (
	"errors"
	"fmt"

	"nbtinoc/internal/core"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/traffic"
)

// RunConfig describes one simulation run.
type RunConfig struct {
	// Net is the network configuration. Its Policy field is overridden
	// from PolicyName when that is non-empty.
	Net noc.Config
	// PolicyName selects the recovery policy from the core registry.
	PolicyName string
	// Warmup is the number of cycles simulated before statistics are
	// reset (the paper lets the network reach steady state first).
	Warmup uint64
	// Measure is the measured window length in cycles.
	Measure uint64
	// Gen produces the workload.
	Gen traffic.Generator
	// RestoreAging, when non-nil, loads an aging snapshot into the
	// network before the run — note that warm-up still resets the NBTI
	// trackers, so multi-epoch campaigns restore with Warmup = 0 and
	// compose epochs through nbti.History instead when a warm-up is
	// needed.
	RestoreAging *noc.AgingState
	// Tracer, when non-nil, receives flit-level pipeline events.
	Tracer noc.Tracer
	// StepByStep disables event-horizon fast-forwarding, forcing the
	// cycle-by-cycle loop. Results are identical either way (pinned by
	// TestFastForwardMatchesStepByStep); the knob exists for that
	// cross-check and for debugging, so it is deliberately NOT part of
	// the cached Spec key.
	StepByStep bool
}

// PortProbe identifies one observed input port, as in the paper's
// per-router/port rows.
type PortProbe struct {
	Node noc.NodeID
	Port noc.Port
	VNet int
}

// Label renders the probe in the paper's row style, e.g. "r0-E".
func (p PortProbe) Label() string { return fmt.Sprintf("r%d-%v", p.Node, p.Port) }

// PortReading is the measured state of one probed port.
type PortReading struct {
	Probe PortProbe
	// Duty holds the NBTI-duty-cycle (percent) of each VC in the vnet
	// slice.
	Duty []float64
	// Busy holds the flit-occupancy fraction (percent) of each VC —
	// diagnostic, not part of the paper's metric.
	Busy []float64
	// Vth0 holds the sampled initial threshold voltages.
	Vth0 []float64
	// MostDegraded is the VC the port's sensor bank designates.
	MostDegraded int
}

// RunResult is the outcome of one simulation run.
type RunResult struct {
	Policy   string
	Workload string
	Cycles   uint64
	// Ports holds one reading per requested probe.
	Ports []PortReading
	// AvgLatency is the mean packet latency over all NIs (cycles).
	AvgLatency float64
	// Throughput is ejected flits per cycle per node.
	Throughput float64
	// InjectedPackets / EjectedPackets over the measured window.
	InjectedPackets, EjectedPackets uint64
	// Net is the final network, for further inspection.
	Net *noc.Network
}

// injectSink adapts noc.Network.Inject to the traffic.Emit signature
// while latching the first injection error. A single sink serves a whole
// run, so the hot cycle loop carries one method value instead of
// allocating a fresh capturing closure per Run invocation.
type injectSink struct {
	net *noc.Network
	err error
}

func (s *injectSink) emit(src, dst noc.NodeID, vnet, length int) {
	if err := s.net.Inject(src, dst, vnet, length); err != nil && s.err == nil {
		s.err = err
	}
}

// Run executes one simulation: warm-up, statistics reset, measurement.
func Run(rc RunConfig, probes []PortProbe) (*RunResult, error) {
	if rc.Gen == nil {
		return nil, errors.New("sim: nil traffic generator")
	}
	if rc.Measure == 0 {
		return nil, errors.New("sim: zero measurement window")
	}
	cfg := rc.Net
	policy := rc.PolicyName
	if policy != "" {
		f, err := core.Lookup(policy)
		if err != nil {
			return nil, err
		}
		cfg.Policy = f
	} else if cfg.Policy == nil {
		policy = "baseline"
	}
	net, err := noc.New(cfg)
	if err != nil {
		return nil, err
	}
	if rc.RestoreAging != nil {
		if err := net.RestoreAging(*rc.RestoreAging); err != nil {
			return nil, err
		}
	}
	if rc.Tracer != nil {
		net.SetTracer(rc.Tracer)
	}
	// Closed-loop generators observe packet deliveries.
	if listener, ok := rc.Gen.(traffic.DeliveryListener); ok {
		net.SetDeliveryHook(func(f noc.Flit, cycle uint64) {
			listener.OnDeliver(f.Src, f.Dst, int(f.VNet), cycle)
		})
	}

	sink := injectSink{net: net}
	emit := sink.emit // bound once; no per-cycle or per-capture closure
	total := rc.Warmup + rc.Measure
	horizon, _ := rc.Gen.(traffic.EventHorizon)
	if rc.StepByStep {
		horizon = nil
	}
	for c := uint64(0); c < total; c++ {
		// Event-horizon fast-forward: when the generator will provably
		// not emit before cycle `next` and the network is idle, the
		// iterations in between are no-ops (Tick emits nothing, Step
		// touches nothing but the sensor cadence, which RunUntil honours)
		// — so jump straight to the first eventful iteration. The jump is
		// clamped to the warm-up edge so the statistics reset at
		// c+1 == Warmup still runs in its own iteration, and to total-1 so
		// the loop exits at the same cycle count as step-by-step mode.
		// Closed-loop generators are safe without extra gating: an idle
		// network delivers nothing, so no response can become due
		// mid-jump.
		if horizon != nil {
			if next := horizon.NextEventCycle(c); next > c && net.Idle() {
				limit := next
				if limit > total-1 {
					limit = total - 1
				}
				if c < rc.Warmup && limit > rc.Warmup-1 {
					limit = rc.Warmup - 1
				}
				if limit > c {
					net.RunUntil(limit)
					c = limit
				}
			}
		}
		rc.Gen.Tick(c, emit)
		net.Step()
		if sink.err != nil {
			return nil, sink.err
		}
		if c+1 == rc.Warmup {
			net.ResetNBTIStats()
			net.ResetTrafficStats()
			net.ResetEventCounters()
		}
	}

	res := &RunResult{
		Policy:   policy,
		Workload: rc.Gen.Name(),
		Cycles:   rc.Measure,
		Net:      net,
	}
	for _, p := range probes {
		r, err := ReadPort(net, p)
		if err != nil {
			return nil, err
		}
		res.Ports = append(res.Ports, r)
	}
	var latSum float64
	var latCnt int
	var ejFlits uint64
	for id := 0; id < net.Nodes(); id++ {
		st := net.NI(noc.NodeID(id)).Stats()
		res.InjectedPackets += st.InjectedPackets
		res.EjectedPackets += st.EjectedPackets
		ejFlits += st.EjectedFlits
		if st.EjectedPackets > 0 {
			latSum += st.AvgLatency()
			latCnt++
		}
	}
	if latCnt > 0 {
		res.AvgLatency = latSum / float64(latCnt)
	}
	res.Throughput = float64(ejFlits) / float64(rc.Measure) / float64(net.Nodes())
	return res, nil
}

// ReadPort extracts a port reading from a network.
func ReadPort(net *noc.Network, p PortProbe) (PortReading, error) {
	r := net.Router(p.Node)
	iu := r.Input(p.Port)
	if iu == nil {
		return PortReading{}, fmt.Errorf("sim: node %d has no %v input port", p.Node, p.Port)
	}
	cfg := net.Config()
	if p.VNet < 0 || p.VNet >= cfg.VNets {
		return PortReading{}, fmt.Errorf("sim: vnet %d out of range", p.VNet)
	}
	reading := PortReading{Probe: p, MostDegraded: net.MostDegradedVC(p.Node, p.Port, p.VNet)}
	for i := 0; i < cfg.VCsPerVNet; i++ {
		vc := p.VNet*cfg.VCsPerVNet + i
		tr := &iu.Device(vc).Tracker
		reading.Duty = append(reading.Duty, tr.DutyCycle())
		busy := 0.0
		if tot := tr.TotalCycles(); tot > 0 {
			busy = 100 * float64(tr.BusyCycles()) / float64(tot)
		}
		reading.Busy = append(reading.Busy, busy)
		reading.Vth0 = append(reading.Vth0, net.Vth0(p.Node, p.Port, vc))
	}
	return reading, nil
}

// MeshSide returns the square mesh side for a core count, rejecting
// non-square values.
func MeshSide(cores int) (int, error) {
	side := 1
	for side*side < cores {
		side++
	}
	if side*side != cores {
		return 0, fmt.Errorf("sim: %d cores is not a square mesh", cores)
	}
	return side, nil
}

// BaseConfig returns the paper's router/technology configuration for a
// square mesh with the given core count and VC count.
func BaseConfig(cores, vcsPerVNet int) (noc.Config, error) {
	side, err := MeshSide(cores)
	if err != nil {
		return noc.Config{}, err
	}
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = side, side
	cfg.VCsPerVNet = vcsPerVNet
	return cfg, nil
}
