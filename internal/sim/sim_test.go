package sim

import (
	"fmt"
	"math"
	"testing"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/traffic"
)

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("std = %v, want 2", w.Std())
	}
	if math.Abs(w.SampleVar()-32.0/7) > 1e-12 {
		t.Errorf("sample var = %v, want %v", w.SampleVar(), 32.0/7)
	}
}

func TestWelfordZeroAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.SampleStd() != 0 {
		t.Error("zero-value Welford not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Error("single observation stats wrong")
	}
}

func TestMeshSide(t *testing.T) {
	for cores, side := range map[int]int{4: 2, 16: 4, 64: 8, 1: 1} {
		got, err := MeshSide(cores)
		if err != nil || got != side {
			t.Errorf("MeshSide(%d) = %d, %v", cores, got, err)
		}
	}
	if _, err := MeshSide(6); err == nil {
		t.Error("non-square core count accepted")
	}
}

func TestBaseConfig(t *testing.T) {
	cfg, err := BaseConfig(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != 4 || cfg.Height != 4 || cfg.VCsPerVNet != 2 {
		t.Errorf("config = %dx%d, %d VCs", cfg.Width, cfg.Height, cfg.VCsPerVNet)
	}
	if _, err := BaseConfig(5, 2); err == nil {
		t.Error("non-square accepted")
	}
}

func mkGen(t *testing.T, side int, rate float64, seed uint64) traffic.Generator {
	t.Helper()
	g, err := traffic.NewSynthetic(traffic.SyntheticConfig{
		Pattern: traffic.Uniform, Width: side, Height: side,
		Rate: rate, PacketLen: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunValidation(t *testing.T) {
	cfg, _ := BaseConfig(4, 2)
	if _, err := Run(RunConfig{Net: cfg, Measure: 10}, nil); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := Run(RunConfig{Net: cfg, Gen: mkGen(t, 2, 0.1, 1)}, nil); err == nil {
		t.Error("zero measure window accepted")
	}
	if _, err := Run(RunConfig{Net: cfg, Gen: mkGen(t, 2, 0.1, 1),
		Measure: 10, PolicyName: "bogus"}, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunBaselineAndProbe(t *testing.T) {
	cfg, _ := BaseConfig(4, 2)
	res, err := Run(RunConfig{
		Net: cfg, Warmup: 1000, Measure: 10000, Gen: mkGen(t, 2, 0.2, 2),
	}, []PortProbe{{Node: 0, Port: noc.East}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "baseline" {
		t.Errorf("policy = %q", res.Policy)
	}
	if len(res.Ports) != 1 || len(res.Ports[0].Duty) != 2 {
		t.Fatalf("probe shape wrong: %+v", res.Ports)
	}
	for vc, d := range res.Ports[0].Duty {
		if d != 100 {
			t.Errorf("baseline duty VC%d = %v", vc, d)
		}
	}
	if res.EjectedPackets == 0 || res.Throughput <= 0 || res.AvgLatency <= 0 {
		t.Errorf("traffic stats empty: %+v", res)
	}
	if len(res.Ports[0].Vth0) != 2 || res.Ports[0].Vth0[0] == res.Ports[0].Vth0[1] {
		t.Errorf("Vth0 samples suspicious: %v", res.Ports[0].Vth0)
	}
}

func TestRunRejectsBadProbe(t *testing.T) {
	cfg, _ := BaseConfig(4, 2)
	if _, err := Run(RunConfig{
		Net: cfg, Measure: 100, Gen: mkGen(t, 2, 0.1, 1),
	}, []PortProbe{{Node: 0, Port: noc.North}}); err == nil {
		t.Error("probe on missing port accepted")
	}
	if _, err := Run(RunConfig{
		Net: cfg, Measure: 100, Gen: mkGen(t, 2, 0.1, 1),
	}, []PortProbe{{Node: 0, Port: noc.East, VNet: 9}}); err == nil {
		t.Error("probe on bad vnet accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() *RunResult {
		cfg, _ := BaseConfig(4, 2)
		res, err := Run(RunConfig{
			Net: cfg, PolicyName: "sensor-wise",
			Warmup: 500, Measure: 8000, Gen: mkGen(t, 2, 0.2, 7),
		}, []PortProbe{{Node: 0, Port: noc.East}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for vc := range a.Ports[0].Duty {
		if a.Ports[0].Duty[vc] != b.Ports[0].Duty[vc] {
			t.Fatalf("duty differs at VC%d", vc)
		}
	}
	if a.AvgLatency != b.AvgLatency || a.EjectedPackets != b.EjectedPackets {
		t.Fatal("traffic stats differ across identical runs")
	}
}

func shortTableOptions() TableOptions {
	return TableOptions{
		Cores:     []int{4},
		Rates:     []float64{0.1, 0.3},
		PacketLen: 4,
		Warmup:    2_000,
		Measure:   30_000,
		SeedBase:  1,
	}
}

func TestSyntheticTableStructure(t *testing.T) {
	tbl, err := RunSyntheticTable(2, shortTableOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row.MDVC < 0 || row.MDVC >= 2 {
			t.Errorf("%s: MD VC = %d", row.Scenario, row.MDVC)
		}
		for _, p := range tbl.Policies {
			duties, ok := row.Duty[p]
			if !ok || len(duties) != 2 {
				t.Fatalf("%s: missing policy %s", row.Scenario, p)
			}
			for vc, d := range duties {
				if d < 0 || d > 100 {
					t.Errorf("%s/%s VC%d duty = %v", row.Scenario, p, vc, d)
				}
			}
		}
		// The headline property: sensor-wise beats rr on the MD VC.
		if row.Gap <= 0 {
			t.Errorf("%s: Gap = %.2f, want positive", row.Scenario, row.Gap)
		}
	}
	// Duty grows with injection rate for the reference policy.
	lo := tbl.Rows[0].Duty["rr-no-sensor"][tbl.Rows[0].MDVC]
	hi := tbl.Rows[1].Duty["rr-no-sensor"][tbl.Rows[1].MDVC]
	if !(hi > lo) {
		t.Errorf("rr duty not increasing with rate: %.2f -> %.2f", lo, hi)
	}
	if out := tbl.Render(); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestRealTableStructure(t *testing.T) {
	opt := RealOptions{Iterations: 2, VCs: 2, Warmup: 1_000, Measure: 15_000, SeedBase: 1}
	tbl, err := RunRealTable(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 per architecture)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row.AvgRR) != 2 || len(row.AvgSW) != 2 {
			t.Fatalf("%s: bad shape", row.Scenario)
		}
		for vc := 0; vc < 2; vc++ {
			for _, v := range []float64{row.AvgRR[vc], row.AvgSW[vc]} {
				if v < 0 || v > 100 {
					t.Errorf("%s VC%d out of range: %v", row.Scenario, vc, v)
				}
			}
			if row.StdRR[vc] < 0 || row.StdSW[vc] < 0 {
				t.Errorf("%s: negative std", row.Scenario)
			}
		}
	}
	if out := tbl.Render(); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestRealTableRejectsBadIterations(t *testing.T) {
	if _, err := RunRealTable(RealOptions{Iterations: 0, VCs: 2, Measure: 10}); err == nil {
		t.Error("0 iterations accepted")
	}
}

func TestVthSaving(t *testing.T) {
	tbl, err := RunVthSaving(2, 3, shortTableOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 1 core count x 2 rates synthetic rows + 4 app-mix probe rows.
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.AlphaMD < 0 || r.AlphaMD > 1 {
			t.Errorf("%s: alpha = %v", r.Scenario, r.AlphaMD)
		}
		if !(r.DeltaVthSensorWise < r.DeltaVthBaseline) {
			t.Errorf("%s: no ΔVth saving", r.Scenario)
		}
		if r.SavingPct <= 0 || r.SavingPct >= 100 {
			t.Errorf("%s: saving = %v%%", r.Scenario, r.SavingPct)
		}
	}
	if tbl.MaxSavingPct <= 0 {
		t.Error("max saving not positive")
	}
	if out := tbl.Render(); len(out) == 0 {
		t.Error("empty render")
	}
	if _, err := RunVthSaving(2, 0, shortTableOptions()); err == nil {
		t.Error("zero-year horizon accepted")
	}
}

func TestCooperation(t *testing.T) {
	tbl, err := RunCooperation(2, shortTableOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		for _, p := range CoopPolicies() {
			if _, ok := r.DutyMD[p]; !ok {
				t.Fatalf("%s: missing %s", r.Scenario, p)
			}
		}
		// Cooperation must not hurt the MD VC.
		if r.ReductionSW < -1 {
			t.Errorf("%s: cooperative sensor-wise worse by %.2f points",
				r.Scenario, -r.ReductionSW)
		}
	}
	if tbl.MaxReductionPts <= 0 {
		t.Error("cooperation shows no benefit anywhere")
	}
	if out := tbl.Render(); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestClosedLoopRequestResponse(t *testing.T) {
	cfg, err := BaseConfig(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.VNets = 2 // request + response classes
	gen, err := traffic.NewReqResp(traffic.DefaultReqResp(2, 2, 0.02, 9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Net:        cfg,
		PolicyName: "sensor-wise",
		Warmup:     0,
		Measure:    30_000,
		Gen:        gen,
	}, []PortProbe{{Node: 0, Port: noc.East}})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Requests() == 0 {
		t.Fatal("no requests generated")
	}
	if gen.Responses() == 0 {
		t.Fatal("delivery hook never fired: no responses")
	}
	// Closed-loop ratio: nearly every request produces a response within
	// the window (service latency + flight time are tiny vs 30k cycles).
	ratio := float64(gen.Responses()) / float64(gen.Requests())
	if ratio < 0.95 {
		t.Errorf("response ratio = %.3f, want >= 0.95", ratio)
	}
	// The network itself carried both message classes.
	if res.EjectedPackets < gen.Requests() {
		t.Errorf("ejected %d < requests %d", res.EjectedPackets, gen.Requests())
	}
}

// TestGoldenDeterminism pins the exact outcome of one fixed-seed run.
// The deterministic PRNG (internal/rng) exists precisely so that
// published tables can be regenerated bit-for-bit across machines and
// Go releases; if this test fails after an intentional model change,
// update the constants and note the change in EXPERIMENTS.md.
func TestGoldenDeterminism(t *testing.T) {
	cfg, _ := BaseConfig(4, 2)
	cfg.PVSeed = 12345
	res, err := Run(RunConfig{
		Net: cfg, PolicyName: "sensor-wise",
		Warmup: 1_000, Measure: 20_000, Gen: mkGen(t, 2, 0.2, 67890),
	}, []PortProbe{{Node: 0, Port: noc.East}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Ports[0]
	got := fmt.Sprintf("md=%d duty0=%.6f duty1=%.6f lat=%.6f ej=%d",
		p.MostDegraded, p.Duty[0], p.Duty[1], res.AvgLatency, res.EjectedPackets)
	const want = "md=1 duty0=26.050000 duty1=7.880000 lat=16.388661 ej=4071"
	if got != want {
		t.Errorf("golden run changed:\n got  %s\n want %s", got, want)
	}
}
