package sim

import (
	"fmt"
	"strings"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/noc"
)

// VthRow is one scenario of the ΔVth saving analysis (the paper's
// conclusion claim: up to 54.2% net NBTI Vth saving vs the non-NBTI-
// aware baseline, obtained by feeding measured duty-cycles into the
// long-term model of Eq. 1).
type VthRow struct {
	Scenario string
	MDVC     int
	// AlphaMD is the measured sensor-wise duty-cycle fraction on the
	// most degraded VC; the baseline NoC holds every VC at alpha = 1.
	AlphaMD float64
	// DeltaVthBaseline and DeltaVthSensorWise are the projected shifts
	// (volts) after Years of operation.
	DeltaVthBaseline   float64
	DeltaVthSensorWise float64
	// SavingPct is the net ΔVth saving percentage.
	SavingPct float64
}

// VthTable is the ΔVth saving analysis result.
type VthTable struct {
	Years float64
	Rows  []VthRow
	// MaxSavingPct is the headline number (paper: up to 54.2%).
	MaxSavingPct float64
}

// RunVthSaving measures sensor-wise duty-cycles on the synthetic sweep
// and projects the ΔVth saving of the most degraded VC against the
// always-on baseline after the given number of years.
func RunVthSaving(vcs int, years float64, opt TableOptions) (*VthTable, error) {
	if years <= 0 {
		return nil, fmt.Errorf("sim: non-positive projection horizon %v", years)
	}
	model := nbti.Default45nm()
	out := &VthTable{Years: years}
	wall := years * nbti.SecondsPerYear

	// Job grid: one synthetic run per (cores, rate), then one
	// application-mix run per architecture (rate < 0 marks the latter).
	// The app-mix scenarios matter because the paper's headline 54.2%
	// saving comes from ports whose most degraded VC is almost never
	// exercised, which the bursty benchmark workloads produce (Table IV
	// shows MD-VC duty-cycles below 1%).
	type job struct {
		cores int
		rate  float64
	}
	var jobs []job
	for _, cores := range opt.Cores {
		if _, err := MeshSide(cores); err != nil {
			return nil, err
		}
		for _, rate := range opt.Rates {
			jobs = append(jobs, job{cores, rate})
		}
	}
	for _, cores := range opt.Cores {
		if _, err := realProbes(cores); err != nil {
			return nil, err
		}
		jobs = append(jobs, job{cores, -1})
	}
	ports := make([][]PortReading, len(jobs))
	if err := opt.pool().Run(len(jobs), func(i int) error {
		j := jobs[i]
		var res *RunSummary
		var err error
		if j.rate >= 0 {
			res, err = opt.runSynthetic(j.cores, vcs, j.rate,
				PolicySpec{Name: "sensor-wise"},
				[]PortProbe{{Node: 0, Port: noc.East}}, nil)
		} else {
			var side int
			var probes []PortProbe
			var cfg noc.Config
			if side, err = MeshSide(j.cores); err != nil {
				return err
			}
			if probes, err = realProbes(j.cores); err != nil {
				return err
			}
			if cfg, err = BaseConfig(j.cores, vcs); err != nil {
				return err
			}
			cfg.PVSeed = scenarioSeed(opt.SeedBase, j.cores, 0.99, 17)
			opt.apply(&cfg)
			res, err = opt.runner().Run(Spec{
				Net:    cfg,
				Policy: PolicySpec{Name: "sensor-wise"},
				Gen: GenSpec{
					Kind:   "app",
					Width:  side,
					Height: side,
					Seed:   scenarioSeed(opt.SeedBase, j.cores, 0, 23),
				},
				Warmup:  opt.Warmup,
				Measure: opt.Measure,
				Probes:  probes,
			})
		}
		if err != nil {
			return err
		}
		ports[i] = res.Ports
		return nil
	}); err != nil {
		return nil, err
	}

	for i, j := range jobs {
		for _, reading := range ports[i] {
			scenario := fmt.Sprintf("%dcore-inj%.2f", j.cores, j.rate)
			if j.rate < 0 {
				scenario = fmt.Sprintf("%dc-app-%s", j.cores, reading.Probe.Label())
			}
			alpha := reading.Duty[reading.MostDegraded] / 100
			row := VthRow{
				Scenario:           scenario,
				MDVC:               reading.MostDegraded,
				AlphaMD:            alpha,
				DeltaVthBaseline:   model.DeltaVth(1, wall),
				DeltaVthSensorWise: model.DeltaVth(alpha, wall),
			}
			row.SavingPct = 100 * model.Saving(alpha, 1, wall)
			if row.SavingPct > out.MaxSavingPct {
				out.MaxSavingPct = row.SavingPct
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render formats the ΔVth analysis.
func (t *VthTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Net NBTI ΔVth saving on the most degraded VC after %.1f years\n", t.Years)
	fmt.Fprintf(&b, "%-16s %-3s %-9s %-14s %-14s %s\n",
		"Scenario", "MD", "alpha(MD)", "ΔVth baseline", "ΔVth sens-wise", "saving")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %-3d %8.2f%% %11.1f mV %11.1f mV %5.1f%%\n",
			r.Scenario, r.MDVC, 100*r.AlphaMD,
			1000*r.DeltaVthBaseline, 1000*r.DeltaVthSensorWise, r.SavingPct)
	}
	fmt.Fprintf(&b, "max saving: %.1f%% (paper reports up to 54.2%%)\n", t.MaxSavingPct)
	return b.String()
}

// CoopRow is one scenario of the cooperation ablation (conclusion claim:
// exploiting upstream traffic information reduces the most degraded
// VC's duty-cycle by up to 23% versus the non-cooperative variants).
type CoopRow struct {
	Scenario string
	MDVC     int
	// DutyMD maps policy name to the MD-VC duty-cycle.
	DutyMD map[string]float64
	// ReductionSW is duty(sensor-wise-no-traffic) − duty(sensor-wise)
	// on the MD VC, in percentage points.
	ReductionSW float64
	// ReductionRR is the same for the round-robin pair.
	ReductionRR float64
}

// CoopTable is the cooperation ablation result.
type CoopTable struct {
	VCs  int
	Rows []CoopRow
	// MaxReductionPts is the headline number in percentage points.
	MaxReductionPts float64
}

// CoopPolicies returns the four policies of the ablation as a fresh
// slice per call.
func CoopPolicies() []string {
	return []string{
		"rr-no-sensor", "rr-no-sensor-no-traffic",
		"sensor-wise", "sensor-wise-no-traffic",
	}
}

// RunCooperation quantifies the benefit of the cooperative traffic
// information by running each policy against its non-cooperative twin
// on identical scenarios.
func RunCooperation(vcs int, opt TableOptions) (*CoopTable, error) {
	out := &CoopTable{VCs: vcs}
	policies := CoopPolicies()
	type job struct {
		cores  int
		rate   float64
		policy string
	}
	var jobs []job
	for _, cores := range opt.Cores {
		if _, err := MeshSide(cores); err != nil {
			return nil, err
		}
		for _, rate := range opt.Rates {
			for _, policy := range policies {
				jobs = append(jobs, job{cores, rate, policy})
			}
		}
	}
	probe := PortProbe{Node: 0, Port: noc.East}
	readings := make([]PortReading, len(jobs))
	if err := opt.pool().Run(len(jobs), func(i int) error {
		j := jobs[i]
		res, err := opt.runSynthetic(j.cores, vcs, j.rate, PolicySpec{Name: j.policy},
			[]PortProbe{probe}, nil)
		if err != nil {
			return err
		}
		readings[i] = res.Ports[0]
		return nil
	}); err != nil {
		return nil, err
	}
	next := 0
	for _, cores := range opt.Cores {
		for _, rate := range opt.Rates {
			row := CoopRow{
				Scenario: fmt.Sprintf("%dcore-inj%.2f", cores, rate),
				DutyMD:   make(map[string]float64, len(policies)),
				MDVC:     -1,
			}
			for _, policy := range policies {
				reading := readings[next]
				next++
				if row.MDVC == -1 {
					row.MDVC = reading.MostDegraded
				}
				row.DutyMD[policy] = reading.Duty[reading.MostDegraded]
			}
			row.ReductionSW = row.DutyMD["sensor-wise-no-traffic"] - row.DutyMD["sensor-wise"]
			row.ReductionRR = row.DutyMD["rr-no-sensor-no-traffic"] - row.DutyMD["rr-no-sensor"]
			for _, v := range []float64{row.ReductionSW, row.ReductionRR} {
				if v > out.MaxReductionPts {
					out.MaxReductionPts = v
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render formats the cooperation ablation.
func (t *CoopTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cooperation ablation — MD-VC NBTI-duty-cycle (%%), %d VCs\n", t.VCs)
	fmt.Fprintf(&b, "%-16s %-3s %12s %12s %12s %12s %9s %9s\n",
		"Scenario", "MD", "rr", "rr-no-traf", "sw", "sw-no-traf", "Δrr", "Δsw")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %-3d %11.1f%% %11.1f%% %11.1f%% %11.1f%% %8.1f%% %8.1f%%\n",
			r.Scenario, r.MDVC,
			r.DutyMD["rr-no-sensor"], r.DutyMD["rr-no-sensor-no-traffic"],
			r.DutyMD["sensor-wise"], r.DutyMD["sensor-wise-no-traffic"],
			r.ReductionRR, r.ReductionSW)
	}
	fmt.Fprintf(&b, "max cooperative reduction: %.1f points (paper reports up to 23%%)\n",
		t.MaxReductionPts)
	return b.String()
}
