package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/core"
	"nbtinoc/internal/noc"
)

// quickSpec is a small, fully declarative scenario used by the cache
// tests: 2x2 mesh, short windows, a single probe.
func quickSpec() Spec {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 2
	return Spec{
		Net:     cfg,
		Policy:  PolicySpec{Name: "sensor-wise"},
		Gen:     GenSpec{Kind: "synthetic", Pattern: "uniform", Width: 2, Height: 2, Rate: 0.1, PacketLen: 4, Seed: 7},
		Warmup:  500,
		Measure: 5_000,
		Probes:  []PortProbe{{Node: 0, Port: noc.East}},
	}
}

func mustKey(t *testing.T, s Spec) string {
	t.Helper()
	k, err := SpecKey(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSpecKeyStableAndComponentSensitive(t *testing.T) {
	base := mustKey(t, quickSpec())
	if again := mustKey(t, quickSpec()); again != base {
		t.Fatalf("identical specs keyed differently: %s vs %s", base, again)
	}

	// Mutating any single key component must change the content address.
	mutations := map[string]func(*Spec){
		"traffic seed":    func(s *Spec) { s.Gen.Seed++ },
		"policy name":     func(s *Spec) { s.Policy.Name = "rr-no-sensor" },
		"rr period":       func(s *Spec) { s.Policy = PolicySpec{RRPeriod: 4096} },
		"buffer depth":    func(s *Spec) { s.Net.BufferDepth++ },
		"pv seed":         func(s *Spec) { s.Net.PVSeed++ },
		"routing":         func(s *Spec) { s.Net.Routing = noc.RouteYX },
		"warmup":          func(s *Spec) { s.Warmup++ },
		"measure":         func(s *Spec) { s.Measure++ },
		"injection rate":  func(s *Spec) { s.Gen.Rate = 0.2 },
		"traffic pattern": func(s *Spec) { s.Gen.Pattern = "transpose" },
		"probe set":       func(s *Spec) { s.Probes = append(s.Probes, PortProbe{Node: 1, Port: noc.West}) },
		"probe vnet":      func(s *Spec) { s.Probes[0].VNet = 1 },
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range mutations {
		s := quickSpec()
		mutate(&s)
		k := mustKey(t, s)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}

	// The engine fingerprint is a key component like any other.
	other, err := specKeyFor("some-other-engine", quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Error("engine fingerprint does not affect the key")
	}
	if pinned, err := specKeyFor(EngineVersion, quickSpec()); err != nil || pinned != base {
		t.Errorf("SpecKey does not use EngineVersion: %s vs %s (%v)", pinned, base, err)
	}
}

// TestConfigKeyMirrorsConfig enforces, by reflection, that configKey
// carries every noc.Config field except the Policy factory — so adding
// a Config field without extending the cache key is a test failure, not
// a silent cache-aliasing bug.
func TestConfigKeyMirrorsConfig(t *testing.T) {
	ct := reflect.TypeOf(noc.Config{})
	kt := reflect.TypeOf(configKey{})

	excluded := 0
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		if f.Type.Kind() == reflect.Func {
			if f.Name != "Policy" {
				t.Errorf("unexpected func field noc.Config.%s — decide how it enters the cache key", f.Name)
			}
			excluded++
			continue
		}
		kf, ok := kt.FieldByName(f.Name)
		if !ok {
			t.Errorf("noc.Config.%s missing from configKey — new fields must join the cache key", f.Name)
			continue
		}
		if kf.Type != f.Type {
			t.Errorf("configKey.%s has type %v, Config has %v", f.Name, kf.Type, f.Type)
		}
	}
	if want := ct.NumField() - excluded; kt.NumField() != want {
		t.Errorf("configKey has %d fields, want %d (Config minus Policy)", kt.NumField(), want)
	}

	// configKeyOf must copy every mirrored field, not leave zero values.
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	key := configKeyOf(cfg)
	kv := reflect.ValueOf(key)
	cv := reflect.ValueOf(cfg)
	for i := 0; i < kt.NumField(); i++ {
		name := kt.Field(i).Name
		got := kv.Field(i).Interface()
		want := cv.FieldByName(name).Interface()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("configKeyOf dropped %s: got %v, want %v", name, got, want)
		}
	}
}

// TestRunnerExactness checks the cache serves byte-identical summaries:
// direct compute, cold-store compute, and warm-store hit must all
// serialize to the same JSON.
func TestRunnerExactness(t *testing.T) {
	spec := quickSpec()
	direct, err := spec.Compute()
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cold := Runner{Store: cache.Open(dir, cache.ReadWrite)}
	got, err := cold.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := json.Marshal(got); !bytes.Equal(j, directJSON) {
		t.Errorf("cold cache summary differs from direct compute:\n%s\n%s", j, directJSON)
	}
	if st := cold.Store.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Errorf("cold stats = %+v", st)
	}

	// A fresh store over the same directory must hit and round-trip the
	// exact bytes.
	warm := Runner{Store: cache.Open(dir, cache.ReadOnly)}
	got, err = warm.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := json.Marshal(got); !bytes.Equal(j, directJSON) {
		t.Errorf("warm cache summary differs from direct compute:\n%s\n%s", j, directJSON)
	}
	if st := warm.Store.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("warm stats = %+v", st)
	}
}

// TestRunnerSingleFlightUnderPool drives N pool workers at one spec:
// exactly one compute, everyone gets the same summary.
func TestRunnerSingleFlightUnderPool(t *testing.T) {
	spec := quickSpec()
	runner := Runner{Store: cache.Open(t.TempDir(), cache.ReadWrite)}

	const workers = 8
	results := make([]*RunSummary, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sum, err := runner.Run(spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = sum
		}(w)
	}
	wg.Wait()

	st := runner.Store.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly one compute across %d workers (%+v)", st.Misses, workers, st)
	}
	if st.Hits+st.Deduped != workers-1 {
		t.Errorf("hits+deduped = %d, want %d (%+v)", st.Hits+st.Deduped, workers-1, st)
	}
	want, _ := json.Marshal(results[0])
	for w := 1; w < workers; w++ {
		if got, _ := json.Marshal(results[w]); !bytes.Equal(got, want) {
			t.Errorf("worker %d summary differs", w)
		}
	}
}

// TestRunnerBypassesCacheForPolicyFactories: a raw func factory cannot
// participate in a content address, so such specs must compute directly
// and never touch the store.
func TestRunnerBypassesCacheForPolicyFactories(t *testing.T) {
	spec := quickSpec()
	spec.Policy = PolicySpec{}
	spec.Net.Policy = func() noc.Policy { return &core.RRNoSensor{RotatePeriod: 512} }

	runner := Runner{Store: cache.Open(t.TempDir(), cache.ReadWrite)}
	for i := 0; i < 2; i++ {
		if _, err := runner.Run(spec); err != nil {
			t.Fatal(err)
		}
	}
	if st := runner.Store.Stats(); st != (cache.Stats{}) {
		t.Errorf("factory-carrying spec touched the cache: %+v", st)
	}
}

// TestRRPeriodSpecMatchesFactory: the declarative RRPeriod form must
// behave exactly like the hand-installed factory it replaces.
func TestRRPeriodSpecMatchesFactory(t *testing.T) {
	declarative := quickSpec()
	declarative.Policy = PolicySpec{RRPeriod: 1024}

	manual := quickSpec()
	manual.Policy = PolicySpec{}
	manual.Net.Policy = func() noc.Policy { return &core.RRNoSensor{RotatePeriod: 1024} }

	a, err := declarative.Compute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := manual.Compute()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("RRPeriod spec diverges from manual factory:\n%s\n%s", ja, jb)
	}
}

// TestSyntheticTableCacheTransparent: the paper-table driver must render
// byte-identical output without a cache, with a cold cache, and with a
// warm cache.
func TestSyntheticTableCacheTransparent(t *testing.T) {
	render := func(opt TableOptions) string {
		t.Helper()
		tbl, err := RunSyntheticTable(2, opt)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.Render()
	}

	plain := render(shortTableOptions())

	dir := t.TempDir()
	coldOpt := shortTableOptions()
	coldOpt.Cache = cache.Open(dir, cache.ReadWrite)
	if cold := render(coldOpt); cold != plain {
		t.Errorf("cold-cache render differs from uncached:\n--- uncached\n%s\n--- cold\n%s", plain, cold)
	}
	if st := coldOpt.Cache.Stats(); st.Misses == 0 || st.Hits != 0 {
		t.Errorf("cold run stats = %+v", st)
	}

	warmOpt := shortTableOptions()
	warmOpt.Cache = cache.Open(dir, cache.ReadWrite)
	if warm := render(warmOpt); warm != plain {
		t.Errorf("warm-cache render differs from uncached:\n--- uncached\n%s\n--- warm\n%s", plain, warm)
	}
	if st := warmOpt.Cache.Stats(); st.Misses != 0 || st.Hits == 0 {
		t.Errorf("warm run recomputed: %+v", st)
	}
}

// TestAllPortProbesMatchesLiveMesh checks the static enumeration against
// the instantiated routers: same ports, same order as a live walk.
func TestAllPortProbesMatchesLiveMesh(t *testing.T) {
	for _, side := range []int{2, 4} {
		cfg := noc.DefaultConfig()
		cfg.Width, cfg.Height = side, side
		net, err := noc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var live []PortProbe
		for n := 0; n < net.Nodes(); n++ {
			r := net.Router(noc.NodeID(n))
			for p := noc.Port(0); p < noc.NumPorts; p++ {
				if r.Input(p) != nil {
					live = append(live, PortProbe{Node: noc.NodeID(n), Port: p})
				}
			}
		}
		got := AllPortProbes(side, side)
		if !reflect.DeepEqual(got, live) {
			t.Errorf("%dx%d: AllPortProbes = %v, live walk = %v", side, side, got, live)
		}
	}
}

func TestRunSummaryJSONRoundTrip(t *testing.T) {
	sum, err := quickSpec().Compute()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Nodes != 4 || sum.TotalVCs == 0 || sum.Cycles == 0 {
		t.Fatalf("summary not populated: %+v", sum)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSummary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*sum, back) {
		t.Errorf("round trip changed the summary:\n%+v\n%+v", *sum, back)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-encoding after round trip changed the bytes")
	}
}
