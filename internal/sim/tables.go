package sim

import (
	"fmt"
	"strings"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/noc"
)

// SyntheticPolicies returns the three policy columns of Tables II and
// III. It returns a fresh slice per call so no caller can mutate a
// shared package-level value.
func SyntheticPolicies() []string {
	return []string{"rr-no-sensor", "sensor-wise-no-traffic", "sensor-wise"}
}

// TableOptions parameterises the synthetic-traffic tables.
type TableOptions struct {
	// Cores lists the evaluated architectures (paper: 4 and 16).
	Cores []int
	// Meshes, when non-empty, overrides Cores with explicit mesh
	// geometries for the synthetic tables (rectangular allowed). The
	// CLIs' -mesh WxH flag sets it; drivers that need the paper's
	// hardwired probe sets (Table IV, the ΔVth analysis) ignore it.
	Meshes []Mesh
	// Rates lists the injection rates in flits/cycle/node
	// (paper: 0.1, 0.2, 0.3).
	Rates []float64
	// PacketLen is the synthetic packet length in flits.
	PacketLen int
	// Warmup and Measure are the window lengths in cycles. The paper
	// runs 30e6 cycles; duty-cycles converge orders of magnitude
	// earlier, so defaults are shorter and both are adjustable.
	Warmup, Measure uint64
	// SeedBase derives the per-scenario PV and traffic seeds.
	SeedBase uint64
	// Phits is the link serialization factor (PhitsPerFlit). The paper's
	// Table I pairs 64-bit flits with 32-bit links, i.e. 2 phits.
	Phits int
	// Parallelism caps the number of scenario simulations executed
	// concurrently: 0 runs one worker per core, 1 selects the legacy
	// sequential path. The produced tables are identical for every
	// setting — each scenario derives its seeds deterministically and
	// owns its network, so no state is shared across workers.
	Parallelism int
	// Cache, when non-nil, memoizes scenario results by content
	// address. Determinism makes the memoization exact, so tables are
	// byte-identical with and without it.
	Cache *cache.Store
	// Record, when non-nil, observes every executed spec (see
	// Runner.Record); the CLIs use it to write sweep manifests. Called
	// from worker goroutines, so it must be safe for concurrent use.
	Record func(spec Spec, key string, cached bool)
}

// DefaultTableOptions mirrors the paper's sweep at a laptop-scale
// simulation length: 64-bit flits over 32-bit links (2 phits), uniform
// traffic at 0.1/0.2/0.3 flits/cycle/node on 4- and 16-core meshes.
func DefaultTableOptions() TableOptions {
	return TableOptions{
		Cores:     []int{4, 16},
		Rates:     []float64{0.1, 0.2, 0.3},
		PacketLen: 4,
		Warmup:    20_000,
		Measure:   200_000,
		SeedBase:  1,
		Phits:     2,
	}
}

// apply copies the option's network-level knobs onto a config.
func (o TableOptions) apply(cfg *noc.Config) {
	if o.Phits > 0 {
		cfg.PhitsPerFlit = o.Phits
	}
}

// meshes returns the evaluated geometries: the explicit Meshes
// override when present, otherwise the square meshes of the Cores list.
func (o TableOptions) meshes() ([]Mesh, error) {
	if len(o.Meshes) > 0 {
		for _, m := range o.Meshes {
			if err := m.Validate(); err != nil {
				return nil, err
			}
		}
		return o.Meshes, nil
	}
	ms := make([]Mesh, 0, len(o.Cores))
	for _, cores := range o.Cores {
		m, err := SquareMesh(cores)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// pool returns the scheduler configured by the Parallelism knob.
func (o TableOptions) pool() Pool { return Pool{Workers: o.Parallelism} }

// runner returns the executor configured by the Cache knob.
func (o TableOptions) runner() Runner { return Runner{Store: o.Cache, Record: o.Record} }

// runSynthetic executes one simulation of the common synthetic scenario
// shape shared by the table and sweep drivers: uniform traffic on a
// square mesh, with the PV and traffic seeds derived deterministically
// from (SeedBase, cores, rate) so every policy evaluated on a scenario
// sees the same silicon and the same offered load. mutate, when
// non-nil, adjusts the config after the common knobs are applied
// (extra seeds, buffer depth, wake-up latency, ...). Each call builds
// its own network and generator, so concurrent calls never share
// mutable state.
func (o TableOptions) runSynthetic(cores, vcs int, rate float64, policy PolicySpec,
	probes []PortProbe, mutate func(*noc.Config)) (*RunSummary, error) {
	m, err := SquareMesh(cores)
	if err != nil {
		return nil, err
	}
	return o.runSyntheticMesh(m, vcs, rate, policy, probes, mutate)
}

// runSyntheticMesh is runSynthetic on an explicit geometry. The seeds
// derive from the tile count, so the square path is bit-identical to
// the historical cores-based one.
func (o TableOptions) runSyntheticMesh(m Mesh, vcs int, rate float64, policy PolicySpec,
	probes []PortProbe, mutate func(*noc.Config)) (*RunSummary, error) {
	cfg, err := m.Config(vcs)
	if err != nil {
		return nil, err
	}
	cfg.PVSeed = scenarioSeed(o.SeedBase, m.Cores(), rate, 11)
	o.apply(&cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	return o.runner().Run(Spec{
		Net:    cfg,
		Policy: policy,
		Gen: GenSpec{
			Kind:      "synthetic",
			Pattern:   "uniform",
			Width:     m.Width,
			Height:    m.Height,
			Rate:      rate,
			PacketLen: o.PacketLen,
			Seed:      scenarioSeed(o.SeedBase, m.Cores(), rate, 13),
		},
		Warmup:  o.Warmup,
		Measure: o.Measure,
		Probes:  probes,
	})
}

// SyntheticRow is one scenario row of Table II/III.
type SyntheticRow struct {
	Scenario string
	Cores    int
	Rate     float64
	MDVC     int
	// Duty maps policy name to per-VC duty-cycles (percent).
	Duty map[string][]float64
	// Gap is duty(rr-no-sensor, MD VC) − duty(sensor-wise, MD VC): the
	// paper's last column; positive means sensor-wise wins.
	Gap float64
}

// SyntheticTable is a reproduction of Table II (4 VCs) or III (2 VCs).
type SyntheticTable struct {
	VCs      int
	Policies []string
	Rows     []SyntheticRow
}

// scenarioSeed derives a deterministic seed per scenario so that every
// policy sees the same silicon and the same offered traffic.
func scenarioSeed(base uint64, cores int, rate float64, salt uint64) uint64 {
	return base*1_000_003 + uint64(cores)*7919 + uint64(rate*1000)*104729 + salt
}

// RunSyntheticTable reproduces Table II (vcs=4) / Table III (vcs=2):
// uniform traffic on 4- and 16-core meshes at three injection rates,
// observed at the east input port of the upper-left router. Setting
// opt.Meshes swaps the paper's core sweep for explicit geometries
// (e.g. 16x16 or 32x32 scaling studies).
func RunSyntheticTable(vcs int, opt TableOptions) (*SyntheticTable, error) {
	tbl := &SyntheticTable{VCs: vcs, Policies: SyntheticPolicies()}
	meshes, err := opt.meshes()
	if err != nil {
		return nil, err
	}
	type job struct {
		mesh   Mesh
		rate   float64
		policy string
	}
	var jobs []job
	for _, m := range meshes {
		for _, rate := range opt.Rates {
			for _, policy := range tbl.Policies {
				jobs = append(jobs, job{m, rate, policy})
			}
		}
	}
	probe := PortProbe{Node: 0, Port: noc.East}
	readings := make([]PortReading, len(jobs))
	if err := opt.pool().Run(len(jobs), func(i int) error {
		j := jobs[i]
		res, err := opt.runSyntheticMesh(j.mesh, vcs, j.rate, PolicySpec{Name: j.policy},
			[]PortProbe{probe}, nil)
		if err != nil {
			return err
		}
		readings[i] = res.Ports[0]
		return nil
	}); err != nil {
		return nil, err
	}
	next := 0
	for _, m := range meshes {
		for _, rate := range opt.Rates {
			row := SyntheticRow{
				Scenario: fmt.Sprintf("%s-inj%.2f", m.Label(), rate),
				Cores:    m.Cores(),
				Rate:     rate,
				Duty:     make(map[string][]float64, len(tbl.Policies)),
				MDVC:     -1,
			}
			for _, policy := range tbl.Policies {
				reading := readings[next]
				next++
				row.Duty[policy] = reading.Duty
				if row.MDVC == -1 {
					row.MDVC = reading.MostDegraded
				} else if row.MDVC != reading.MostDegraded {
					return nil, fmt.Errorf("sim: MD VC differs across policies in %s", row.Scenario)
				}
			}
			row.Gap = row.Duty["rr-no-sensor"][row.MDVC] - row.Duty["sensor-wise"][row.MDVC]
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	return tbl, nil
}

// Render formats the table in the paper's layout.
func (t *SyntheticTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NBTI-duty-cycle (%%) per VC — %d VCs per input port, uniform traffic\n", t.VCs)
	fmt.Fprintf(&b, "%-16s %-3s", "Scenario", "MD")
	for _, p := range t.Policies {
		fmt.Fprintf(&b, " | %-*s", 8*t.VCs-2, p)
	}
	fmt.Fprintf(&b, " | %s\n", "Gap(rr-sw @MD)")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-16s %-3d", row.Scenario, row.MDVC)
		for _, p := range t.Policies {
			b.WriteString(" |")
			for _, d := range row.Duty[p] {
				fmt.Fprintf(&b, " %6.1f%%", d)
			}
		}
		fmt.Fprintf(&b, " | %6.1f%%\n", row.Gap)
	}
	return b.String()
}

// RealOptions parameterises the Table IV reproduction.
type RealOptions struct {
	// Iterations is the number of random benchmark mixes per scenario
	// (paper: 10).
	Iterations int
	// VCs is the VC count per input port (paper shows 2).
	VCs int
	// Warmup and Measure are the per-iteration window lengths.
	Warmup, Measure uint64
	// SeedBase derives per-scenario PV seeds and per-iteration traffic
	// seeds.
	SeedBase uint64
	// Phits is the link serialization factor (see TableOptions.Phits).
	Phits int
	// Parallelism caps concurrent scenario simulations (see
	// TableOptions.Parallelism): 0 = one worker per core, 1 = the
	// legacy sequential path. Output is identical for every setting.
	Parallelism int
	// Cache memoizes scenario results (see TableOptions.Cache).
	Cache *cache.Store
	// Record observes every executed spec (see TableOptions.Record).
	Record func(spec Spec, key string, cached bool)
}

// DefaultRealOptions mirrors the paper's methodology at reduced length.
func DefaultRealOptions() RealOptions {
	return RealOptions{
		Iterations: 10,
		VCs:        2,
		Warmup:     10_000,
		Measure:    150_000,
		SeedBase:   1,
		Phits:      2,
	}
}

// RealRow is one router/port row of Table IV.
type RealRow struct {
	Scenario string
	Cores    int
	Probe    PortProbe
	MDVC     int
	// AvgRR/StdRR and AvgSW/StdSW hold per-VC duty-cycle statistics over
	// the iterations for rr-no-sensor and sensor-wise respectively.
	AvgRR, StdRR []float64
	AvgSW, StdSW []float64
	// Gap is avg duty(rr, MD VC) − avg duty(sensor-wise, MD VC).
	Gap float64
}

// RealTable is the Table IV reproduction.
type RealTable struct {
	Iterations int
	VCs        int
	Rows       []RealRow
}

// realProbes returns the rows the paper reports. The paper lists the
// "east input port of the main diagonal routers" for 16 cores; router 15
// sits in the bottom-right corner and has no east neighbour in a 4x4
// mesh, so its west input port is observed instead (documented in
// EXPERIMENTS.md).
func realProbes(cores int) ([]PortProbe, error) {
	switch cores {
	case 4:
		return []PortProbe{
			{Node: 0, Port: noc.East},
			{Node: 1, Port: noc.West},
			{Node: 2, Port: noc.East},
			{Node: 3, Port: noc.West},
		}, nil
	case 16:
		return []PortProbe{
			{Node: 0, Port: noc.East},
			{Node: 5, Port: noc.East},
			{Node: 10, Port: noc.East},
			{Node: 15, Port: noc.West},
		}, nil
	default:
		return nil, fmt.Errorf("sim: no Table IV probe set for %d cores", cores)
	}
}

// RunRealTable reproduces Table IV: random SPLASH2/WCET benchmark mixes,
// one benchmark per core, averaged over Iterations runs. The initial Vth
// draw is held constant across the iterations of a scenario (and across
// the two policies), so the most degraded VC is stable, as in the paper.
func RunRealTable(opt RealOptions) (*RealTable, error) {
	if opt.Iterations < 1 {
		return nil, fmt.Errorf("sim: %d iterations", opt.Iterations)
	}
	tbl := &RealTable{Iterations: opt.Iterations, VCs: opt.VCs}
	archs := []int{4, 16}

	// Enumerate the full (architecture, iteration, policy) grid up
	// front; each job owns its network and generator and fills its own
	// result slot, so the Welford reduction below — which runs
	// sequentially in enumeration order — is bit-identical to the
	// legacy sequential loop.
	type job struct {
		cores  int
		it     int
		policy string
		probes []PortProbe
	}
	var jobs []job
	for _, cores := range archs {
		if _, err := MeshSide(cores); err != nil {
			return nil, err
		}
		probes, err := realProbes(cores)
		if err != nil {
			return nil, err
		}
		for it := 0; it < opt.Iterations; it++ {
			for _, policy := range []string{"rr-no-sensor", "sensor-wise"} {
				jobs = append(jobs, job{cores, it, policy, probes})
			}
		}
	}
	ports := make([][]PortReading, len(jobs))
	pool := Pool{Workers: opt.Parallelism}
	runner := Runner{Store: opt.Cache, Record: opt.Record}
	if err := pool.Run(len(jobs), func(i int) error {
		j := jobs[i]
		side, err := MeshSide(j.cores)
		if err != nil {
			return err
		}
		cfg, err := BaseConfig(j.cores, opt.VCs)
		if err != nil {
			return err
		}
		cfg.PVSeed = scenarioSeed(opt.SeedBase, j.cores, 0.99, 17)
		if opt.Phits > 0 {
			cfg.PhitsPerFlit = opt.Phits
		}
		res, err := runner.Run(Spec{
			Net:    cfg,
			Policy: PolicySpec{Name: j.policy},
			Gen: GenSpec{
				Kind:   "app",
				Width:  side,
				Height: side,
				Seed:   scenarioSeed(opt.SeedBase, j.cores, float64(j.it), 23),
			},
			Warmup:  opt.Warmup,
			Measure: opt.Measure,
			Probes:  j.probes,
		})
		if err != nil {
			return err
		}
		ports[i] = res.Ports
		return nil
	}); err != nil {
		return nil, err
	}

	next := 0
	for _, cores := range archs {
		probes, err := realProbes(cores)
		if err != nil {
			return nil, err
		}

		type acc struct{ rr, sw []Welford }
		accs := make([]acc, len(probes))
		for i := range accs {
			accs[i] = acc{rr: make([]Welford, opt.VCs), sw: make([]Welford, opt.VCs)}
		}
		mds := make([]int, len(probes))
		for i := range mds {
			mds[i] = -1
		}

		for it := 0; it < opt.Iterations; it++ {
			for _, policy := range []string{"rr-no-sensor", "sensor-wise"} {
				for pi, reading := range ports[next] {
					if mds[pi] == -1 {
						mds[pi] = reading.MostDegraded
					} else if mds[pi] != reading.MostDegraded {
						return nil, fmt.Errorf("sim: MD VC moved across iterations at %s",
							reading.Probe.Label())
					}
					for vc, d := range reading.Duty {
						if policy == "rr-no-sensor" {
							accs[pi].rr[vc].Add(d)
						} else {
							accs[pi].sw[vc].Add(d)
						}
					}
				}
				next++
			}
		}

		for pi, probe := range probes {
			row := RealRow{
				Scenario: fmt.Sprintf("%dc-%s", cores, probe.Label()),
				Cores:    cores,
				Probe:    probe,
				MDVC:     mds[pi],
			}
			for vc := 0; vc < opt.VCs; vc++ {
				row.AvgRR = append(row.AvgRR, accs[pi].rr[vc].Mean())
				row.StdRR = append(row.StdRR, accs[pi].rr[vc].Std())
				row.AvgSW = append(row.AvgSW, accs[pi].sw[vc].Mean())
				row.StdSW = append(row.StdSW, accs[pi].sw[vc].Std())
			}
			row.Gap = row.AvgRR[row.MDVC] - row.AvgSW[row.MDVC]
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	return tbl, nil
}

// Render formats Table IV in the paper's layout.
func (t *RealTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NBTI-duty-cycle (%%) avg/std over %d benchmark-mix iterations — %d VCs\n",
		t.Iterations, t.VCs)
	fmt.Fprintf(&b, "%-12s %-3s | %-*s | %-*s | %s\n",
		"Scenario", "MD", 16*t.VCs-2, "rr-no-sensor (avg std per VC)",
		16*t.VCs-2, "sensor-wise (avg std per VC)", "Gap@MD")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-3d |", row.Scenario, row.MDVC)
		for vc := range row.AvgRR {
			fmt.Fprintf(&b, " %6.1f%% ±%5.1f", row.AvgRR[vc], row.StdRR[vc])
		}
		b.WriteString(" |")
		for vc := range row.AvgSW {
			fmt.Fprintf(&b, " %6.1f%% ±%5.1f", row.AvgSW[vc], row.StdSW[vc])
		}
		fmt.Fprintf(&b, " | %6.1f%%\n", row.Gap)
	}
	return b.String()
}
