package sim

import (
	"fmt"
	"strings"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/sensor"
)

// SensorVariant names one sensor configuration of the robustness study.
type SensorVariant struct {
	Name string
	Cfg  sensor.Config
}

// SensorVariants returns the studied configurations: the idealised
// sensor the tables use, the reference 45 nm sensor of [20] with its
// quantisation and read noise, progressively degraded variants, and a
// closed-loop variant whose ranking follows accumulated stress rather
// than initial Vth alone.
func SensorVariants() []SensorVariant {
	return []SensorVariant{
		{Name: "ideal", Cfg: sensor.Config{SamplePeriod: 1024}},
		{Name: "reference", Cfg: sensor.DefaultConfig()},
		{Name: "coarse", Cfg: sensor.Config{SamplePeriod: 1024, LSB: 2e-3, NoiseSigma: 1e-3}},
		{Name: "very-noisy", Cfg: sensor.Config{SamplePeriod: 1024, LSB: 2e-3, NoiseSigma: 5e-3}},
		{Name: "slow", Cfg: sensor.Config{SamplePeriod: 100_000, LSB: 0.5e-3, NoiseSigma: 0.25e-3}},
		{Name: "dynamic", Cfg: sensor.Config{SamplePeriod: 4096,
			Horizon: 3 * nbti.SecondsPerYear}},
	}
}

// SensorRow is one variant's outcome.
type SensorRow struct {
	Variant string
	// TrueMD is the argmax-Vth0 VC of the probed port; SensedMD is the
	// VC the sensor bank designated at the end of the run.
	TrueMD, SensedMD int
	// Identified reports whether the bank pointed at the true MD VC.
	Identified bool
	// DutyTrueMD is the NBTI-duty-cycle the *true* most degraded VC
	// accumulated — the quantity that actually determines its aging.
	DutyTrueMD float64
	// GapVsRR is rr-no-sensor's duty on the true MD VC minus this
	// variant's; positive means the noisy sensors still beat the
	// sensor-less reference.
	GapVsRR float64
}

// SensorTable is the robustness-study result.
type SensorTable struct {
	Cores, VCs int
	Rate       float64
	Rows       []SensorRow
}

// RunSensorStudy evaluates the sensor-wise policy under each sensor
// variant on a common scenario, against the rr-no-sensor reference.
// It quantifies how much of the paper's gain survives realistic sensor
// non-idealities — the feasibility question behind Section III-D's
// choice of the [20] sensor.
func RunSensorStudy(cores, vcs int, rate float64, opt TableOptions) (*SensorTable, error) {
	if _, err := MeshSide(cores); err != nil {
		return nil, err
	}
	out := &SensorTable{Cores: cores, VCs: vcs, Rate: rate}
	probe := PortProbe{Node: 0, Port: noc.East}

	sensorSeed := scenarioSeed(opt.SeedBase, cores, rate, 29)
	variants := SensorVariants()

	// Job 0 is the rr-no-sensor reference (sensor configuration
	// irrelevant); jobs 1..N are the sensor-wise runs, one per variant.
	// The true MD VC falls out of the reference run, so the rows are
	// assembled in a sequential pass after the pool drains.
	readings := make([]PortReading, 1+len(variants))
	if err := opt.pool().Run(len(readings), func(i int) error {
		policy := "rr-no-sensor"
		mutate := func(cfg *noc.Config) { cfg.SensorSeed = sensorSeed }
		if i > 0 {
			policy = "sensor-wise"
			v := variants[i-1]
			mutate = func(cfg *noc.Config) {
				cfg.SensorSeed = sensorSeed
				cfg.Sensor = v.Cfg
			}
		}
		res, err := opt.runSynthetic(cores, vcs, rate, PolicySpec{Name: policy},
			[]PortProbe{probe}, mutate)
		if err != nil {
			return err
		}
		readings[i] = res.Ports[0]
		return nil
	}); err != nil {
		return nil, err
	}

	trueMD := argmax(readings[0].Vth0)
	rrDuty := readings[0].Duty[trueMD]
	for i, v := range variants {
		r := readings[1+i]
		row := SensorRow{
			Variant:    v.Name,
			TrueMD:     trueMD,
			SensedMD:   r.MostDegraded,
			Identified: r.MostDegraded == trueMD,
			DutyTrueMD: r.Duty[trueMD],
		}
		row.GapVsRR = rrDuty - row.DutyTrueMD
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// argmax returns the index of the maximum value (first on ties).
func argmax(vals []float64) int {
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return best
}

// Render formats the study.
func (t *SensorTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sensor robustness — sensor-wise vs rr-no-sensor on the true MD VC\n")
	fmt.Fprintf(&b, "(%d cores, %d VCs, uniform inj %.2f)\n", t.Cores, t.VCs, t.Rate)
	fmt.Fprintf(&b, "%-12s %-8s %-9s %-11s %-12s %s\n",
		"variant", "true MD", "sensed", "identified", "duty@trueMD", "gap vs rr")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-8d %-9d %-11v %10.2f%% %8.2f%%\n",
			r.Variant, r.TrueMD, r.SensedMD, r.Identified, r.DutyTrueMD, r.GapVsRR)
	}
	return b.String()
}
