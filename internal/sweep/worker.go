package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/sim"
)

// WorkerOptions configures one worker's execution of its assigned
// units.
type WorkerOptions struct {
	// Store is the shared result cache, normally lease-enabled.
	Store *cache.Store
	// Workers is the local pool width (-j): 0 = one per core, 1 =
	// sequential.
	Workers int
	// Strategy selects the claiming discipline. Steal does a
	// non-blocking pass first (stepping aside from units other
	// processes hold) and revisits the remainder; Range computes its
	// disjoint share in order.
	Strategy Strategy
	// AfterUnit, when non-nil, observes each completed unit with the
	// completed-so-far count — the crash-injection hook behind the
	// -kill-after flag. Called from pool goroutines.
	AfterUnit func(completed int)
}

// UnitResult is one unit's outcome in a worker batch.
type UnitResult struct {
	State UnitState `json:"state"`
	// Cached reports whether the summary came from the cache rather
	// than this worker's compute.
	Cached bool   `json:"cached"`
	Err    string `json:"err,omitempty"`
}

// RunUnits executes the units through a local pool against the shared
// cache and reports per-unit outcomes. A unit failure never aborts the
// batch — campaigns retry failures on resume — so the slice always has
// one entry per unit.
func RunUnits(units []Unit, opt WorkerOptions) []UnitResult {
	met := newSweepMetrics()
	met.unitsTotal.Add(uint64(len(units)))
	met.workersActive.Inc()
	defer met.workersActive.Dec()

	results := make([]UnitResult, len(units))
	runner := sim.Runner{Store: opt.Store}
	pool := sim.Pool{Workers: opt.Workers}
	var completed atomic.Int64
	finish := func(i int, cached bool, err error) {
		if err != nil {
			results[i] = UnitResult{State: UnitFailed, Err: err.Error()}
			met.unitsFailed.Inc()
		} else {
			results[i] = UnitResult{State: UnitDone, Cached: cached}
			met.unitsDone.Inc()
		}
		if opt.AfterUnit != nil {
			opt.AfterUnit(int(completed.Add(1)))
		}
	}

	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	if opt.Strategy == Steal {
		// Pass 1: claim what's free, step aside from foreign claims.
		var mu sync.Mutex
		var deferred []int
		_ = pool.Run(len(order), func(j int) error {
			i := order[j]
			var cached bool
			r := runner
			r.Record = func(_ sim.Spec, _ string, c bool) { cached = c }
			_, done, err := r.TryRun(units[i].Spec)
			switch {
			case err != nil:
				finish(i, false, err)
			case !done:
				met.unitsDeferred.Inc()
				mu.Lock()
				deferred = append(deferred, i)
				mu.Unlock()
			default:
				finish(i, cached, nil)
			}
			return nil
		})
		order = deferred
	}
	// Blocking pass: range shares, and steal-mode leftovers (waiting
	// out the foreign lease usually ends in serving its entry).
	_ = pool.Run(len(order), func(j int) error {
		i := order[j]
		var cached bool
		r := runner
		r.Record = func(_ sim.Spec, _ string, c bool) { cached = c }
		_, err := r.Run(units[i].Spec)
		finish(i, cached, err)
		return nil
	})
	return results
}

// AssignmentSchema versions the coordinator→worker handoff file.
const AssignmentSchema = 1

// Assignment is what a worker process needs to run its share of a
// campaign: where the manifest and cache live, which unit indices are
// its, and how to execute them.
type Assignment struct {
	Schema       int      `json:"schema"`
	ManifestPath string   `json:"manifest_path"`
	CacheDir     string   `json:"cache_dir"`
	Workers      int      `json:"workers"`
	Strategy     Strategy `json:"strategy"`
	Indices      []int    `json:"indices"`
	// Server is the reserved seam for a future nbtisweep -server mode:
	// the base URL of an nbtisimd daemon to submit units to (POST
	// /jobs with each unit's spec, poll /jobs/<id>) instead of
	// simulating in-process. The daemon's job ids are the same spec
	// content addresses this package records in manifests, so the
	// dedup semantics carry over unchanged. ExecuteAssignment refuses
	// assignments that set it until that mode lands — a typo'd field
	// must not silently fall back to local execution.
	Server string `json:"server,omitempty"`
}

// WorkerReport is the worker→coordinator result file: one outcome per
// assigned index, plus the worker's cache stats for campaign-level
// aggregation.
type WorkerReport struct {
	Schema  int          `json:"schema"`
	Indices []int        `json:"indices"`
	Results []UnitResult `json:"results"`
	Stats   cache.Stats  `json:"stats"`
}

// writeJSONFile writes v atomically (temp+rename) as indented JSON.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SaveAssignment writes the handoff file atomically.
func (a *Assignment) Save(path string) error { return writeJSONFile(path, a) }

// LoadAssignment reads and validates a handoff file.
func LoadAssignment(path string) (*Assignment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Assignment
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("sweep: parsing assignment %s: %w", path, err)
	}
	if a.Schema != AssignmentSchema {
		return nil, fmt.Errorf("sweep: assignment schema %d not supported (want %d)", a.Schema, AssignmentSchema)
	}
	return &a, nil
}

// LoadWorkerReport reads and validates a worker's result file.
func LoadWorkerReport(path string) (*WorkerReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r WorkerReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("sweep: parsing worker report %s: %w", path, err)
	}
	if r.Schema != AssignmentSchema {
		return nil, fmt.Errorf("sweep: worker report schema %d not supported (want %d)", r.Schema, AssignmentSchema)
	}
	if len(r.Results) != len(r.Indices) {
		return nil, fmt.Errorf("sweep: worker report %s: %d results for %d indices",
			path, len(r.Results), len(r.Indices))
	}
	return &r, nil
}

// WorkerEnv carries the injected runtime hooks a worker process needs:
// the wall clock and lease policy (time comes from package main, per
// the wallclock rule) and the optional crash-injection hook.
type WorkerEnv struct {
	Clock     func() int64
	Lease     *cache.LeasePolicy
	AfterUnit func(completed int)
}

// ExecuteAssignment is the whole worker role: load the assignment and
// its manifest, resolve the assigned units, run them against the
// shared cache, and write the report file. Both the exec'd worker
// subcommand of cmd/nbtisweep and the coordinator's in-process default
// go through this one path.
func ExecuteAssignment(assignPath, reportPath string, env WorkerEnv) error {
	a, err := LoadAssignment(assignPath)
	if err != nil {
		return err
	}
	if a.Server != "" {
		return fmt.Errorf("sweep: assignment %s sets server %q, but daemon-backed execution is not implemented yet (see Assignment.Server)", assignPath, a.Server)
	}
	m, err := LoadManifest(a.ManifestPath)
	if err != nil {
		return err
	}
	all, err := m.Resolve()
	if err != nil {
		return err
	}
	units := make([]Unit, len(a.Indices))
	for j, i := range a.Indices {
		if i < 0 || i >= len(all) {
			return fmt.Errorf("sweep: assignment %s: unit index %d out of range [0,%d)", assignPath, i, len(all))
		}
		units[j] = all[i]
	}
	store := cache.Open(a.CacheDir, cache.ReadWrite)
	store.Clock = env.Clock
	store.Lease = env.Lease
	results := RunUnits(units, WorkerOptions{
		Store:     store,
		Workers:   a.Workers,
		Strategy:  a.Strategy,
		AfterUnit: env.AfterUnit,
	})
	return writeJSONFile(reportPath, &WorkerReport{
		Schema:  AssignmentSchema,
		Indices: a.Indices,
		Results: results,
		Stats:   store.Stats(),
	})
}
