package sweep

import (
	"fmt"
	"io"

	"nbtinoc/internal/sim"
)

// WriteReport renders the merged campaign as deterministic CSV: a
// fixed header, then one row per unit in index order. Everything in
// the bytes derives from unit identity and summaries — no timing, no
// topology, no cache disposition — which is what makes the report
// byte-identical across every (processes × workers) layout and across
// killed-then-resumed runs.
func WriteReport(w io.Writer, name string, units []Unit, sums []*sim.RunSummary) error {
	if len(units) != len(sums) {
		return fmt.Errorf("sweep: %d units, %d summaries", len(units), len(sums))
	}
	if _, err := fmt.Fprintf(w, "# nbtinoc sweep %s engine=%s units=%d\n",
		name, sim.EngineVersion, len(units)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"index,label,key,policy,workload,avg_latency,throughput,injected,ejected,max_duty"); err != nil {
		return err
	}
	for i, u := range units {
		s := sums[i]
		if s == nil {
			return fmt.Errorf("sweep: unit %d (%s) has no summary", i, u.Label)
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%s,%.6f,%.6f,%d,%d,%.6f\n",
			u.Index, u.Label, u.Key[:12], s.Policy, s.Workload,
			s.AvgLatency, s.Throughput, s.InjectedPackets, s.EjectedPackets,
			maxDuty(s)); err != nil {
			return err
		}
	}
	return nil
}

// maxDuty is the worst NBTI duty cycle over every probed port and VC —
// the scalar the paper's mitigation question turns on.
func maxDuty(s *sim.RunSummary) float64 {
	var max float64
	for _, p := range s.Ports {
		for _, d := range p.Duty {
			if d > max {
				max = d
			}
		}
	}
	return max
}
