// Package sweep is the sharded campaign layer: it expands a declarative
// scenario grid into content-addressed work units (a unit's cache key
// IS its work id), shards the units across worker processes that share
// one result cache, and merges the finished campaign through a
// strictly-sequential reduction — so the merged report is byte-identical
// to a single-process run at any (processes × workers) topology.
//
// Coordination happens through the cache directory itself: workers
// claim units via internal/cache lease files (cross-process
// single-flight), a killed worker's claims expire by heartbeat and are
// taken over, and a campaign's progress is a schema-versioned manifest
// that any later invocation can resume, skipping completed keys.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/sim"
)

// Axes are the swept dimensions of a grid. Every non-empty axis
// multiplies the unit count; an empty axis leaves the base scenario's
// value in place. Expansion order is fixed (meshes outermost, PV seeds
// innermost), so a grid always enumerates to the same unit indices on
// every machine — the property range-sharding and resumable manifests
// are built on.
type Axes struct {
	// Meshes lists geometries as "WxH" strings (e.g. "4x4").
	Meshes []string `json:"meshes,omitempty"`
	// Policies lists recovery-policy registry names.
	Policies []string `json:"policies,omitempty"`
	// Workloads lists synthetic pattern names, "app" or "req-resp".
	Workloads []string `json:"workloads,omitempty"`
	// Rates lists injection rates in flits/cycle/node.
	Rates []float64 `json:"rates,omitempty"`
	// VCs lists VC-per-vnet counts.
	VCs []int `json:"vcs,omitempty"`
	// Seeds lists traffic seeds; PVSeeds lists silicon seeds.
	Seeds   []uint64 `json:"seeds,omitempty"`
	PVSeeds []uint64 `json:"pv_seeds,omitempty"`
}

// Grid is a declarative sweep campaign: a base scenario plus the axes
// swept around it.
type Grid struct {
	// Name labels the campaign in manifests and reports.
	Name string `json:"name"`
	// Base is the scenario every unit starts from.
	Base sim.Scenario `json:"base"`
	// Axes are the swept dimensions.
	Axes Axes `json:"axes"`
	// Probes lists observed ports in "node:port" syntax. The single
	// entry "all" probes every instantiated input port of each unit's
	// mesh.
	Probes []string `json:"probes,omitempty"`
}

// Unit is one expanded grid point: a spec plus its identity.
type Unit struct {
	// Index is the unit's position in the fixed expansion order.
	Index int
	// Label names the grid point human-readably (axis values joined).
	Label string
	// Key is the spec's content address — the work id every layer
	// (cache entries, leases, manifests) agrees on.
	Key string
	// Spec is the declarative simulation request.
	Spec sim.Spec
}

// axisValues returns a slice with one element per grid point along an
// axis: the axis itself when set, or one "keep the base value" marker.
func axisLen(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// Expand enumerates the grid into units in the fixed axis order,
// validating every point. The enumeration is deterministic: same grid,
// same units, same indices, everywhere.
func (g *Grid) Expand() ([]Unit, error) {
	if g.Name == "" {
		return nil, fmt.Errorf("sweep: grid needs a name")
	}
	n := axisLen(len(g.Axes.Meshes)) * axisLen(len(g.Axes.Policies)) *
		axisLen(len(g.Axes.Workloads)) * axisLen(len(g.Axes.Rates)) *
		axisLen(len(g.Axes.VCs)) * axisLen(len(g.Axes.Seeds)) *
		axisLen(len(g.Axes.PVSeeds))
	units := make([]Unit, 0, n)
	for mi := 0; mi < axisLen(len(g.Axes.Meshes)); mi++ {
		for pi := 0; pi < axisLen(len(g.Axes.Policies)); pi++ {
			for wi := 0; wi < axisLen(len(g.Axes.Workloads)); wi++ {
				for ri := 0; ri < axisLen(len(g.Axes.Rates)); ri++ {
					for vi := 0; vi < axisLen(len(g.Axes.VCs)); vi++ {
						for si := 0; si < axisLen(len(g.Axes.Seeds)); si++ {
							for qi := 0; qi < axisLen(len(g.Axes.PVSeeds)); qi++ {
								u, err := g.point(len(units), mi, pi, wi, ri, vi, si, qi)
								if err != nil {
									return nil, err
								}
								units = append(units, u)
							}
						}
					}
				}
			}
		}
	}
	return units, nil
}

// point builds the unit at one coordinate of the axis lattice.
func (g *Grid) point(index, mi, pi, wi, ri, vi, si, qi int) (Unit, error) {
	s := g.Base // scenario is a value type: a fresh copy per point
	var label []byte
	add := func(part string) {
		if len(label) > 0 {
			label = append(label, '/')
		}
		label = append(label, part...)
	}
	if len(g.Axes.Meshes) > 0 {
		m, err := sim.ParseMesh(g.Axes.Meshes[mi])
		if err != nil {
			return Unit{}, fmt.Errorf("sweep: grid %q: %v", g.Name, err)
		}
		s.Width, s.Height, s.Cores = m.Width, m.Height, 0
		add(g.Axes.Meshes[mi])
	}
	if len(g.Axes.Policies) > 0 {
		s.Policy = g.Axes.Policies[pi]
		add(s.Policy)
	}
	if len(g.Axes.Workloads) > 0 {
		s.Workload = g.Axes.Workloads[wi]
		add(s.Workload)
	}
	if len(g.Axes.Rates) > 0 {
		s.Rate = g.Axes.Rates[ri]
		add("r" + strconv.FormatFloat(s.Rate, 'g', -1, 64))
	}
	if len(g.Axes.VCs) > 0 {
		s.VCs = g.Axes.VCs[vi]
		add("vc" + strconv.Itoa(s.VCs))
	}
	if len(g.Axes.Seeds) > 0 {
		s.Seed = g.Axes.Seeds[si]
		add("s" + strconv.FormatUint(s.Seed, 10))
	}
	if len(g.Axes.PVSeeds) > 0 {
		s.PVSeed = g.Axes.PVSeeds[qi]
		add("pv" + strconv.FormatUint(s.PVSeed, 10))
	}
	if len(label) == 0 {
		label = append(label, "base"...)
	}
	if err := s.Validate(); err != nil {
		return Unit{}, fmt.Errorf("sweep: grid %q point %s: %w", g.Name, label, err)
	}
	probes, err := g.probes(&s)
	if err != nil {
		return Unit{}, fmt.Errorf("sweep: grid %q point %s: %w", g.Name, label, err)
	}
	spec, err := s.Spec(probes)
	if err != nil {
		return Unit{}, fmt.Errorf("sweep: grid %q point %s: %w", g.Name, label, err)
	}
	key, err := sim.SpecKey(spec)
	if err != nil {
		return Unit{}, fmt.Errorf("sweep: grid %q point %s: %w", g.Name, label, err)
	}
	return Unit{Index: index, Label: string(label), Key: key, Spec: spec}, nil
}

// probes resolves the grid's probe list for one validated scenario.
func (g *Grid) probes(s *sim.Scenario) ([]sim.PortProbe, error) {
	if len(g.Probes) == 0 {
		return nil, nil
	}
	if len(g.Probes) == 1 && g.Probes[0] == "all" {
		cfg, err := s.BuildConfig()
		if err != nil {
			return nil, err
		}
		return sim.AllPortProbes(cfg.Width, cfg.Height), nil
	}
	probes := make([]sim.PortProbe, 0, len(g.Probes))
	for _, p := range g.Probes {
		probe, err := sim.ParsePortProbe(p)
		if err != nil {
			return nil, err
		}
		probes = append(probes, probe)
	}
	return probes, nil
}

// Key is the grid's content address under the current engine version:
// the identity a manifest checks on resume, so a grid edited after the
// campaign started is rejected instead of silently mixing unit sets.
func (g *Grid) Key() (string, error) {
	return cache.KeyOf(struct {
		Engine string `json:"engine"`
		Grid   *Grid  `json:"grid"`
	}{sim.EngineVersion, g})
}

// LoadGrid parses and structurally checks a grid from JSON.
func LoadGrid(r io.Reader) (*Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: parsing grid: %w", err)
	}
	if _, err := g.Expand(); err != nil {
		return nil, err
	}
	return &g, nil
}

// LoadGridFile parses a grid from a JSON file.
func LoadGridFile(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadGrid(f)
}
