package sweep

import "fmt"

// Strategy selects how pending units are divided among worker
// processes.
type Strategy string

const (
	// Range gives each worker a disjoint contiguous slice of the
	// pending units — zero lease contention, but a dead worker's share
	// waits for a resume.
	Range Strategy = "range"
	// Steal gives every worker the full pending list at a rotated
	// starting offset; cross-process single-flight (leases) turns the
	// overlap into claims instead of duplicate work, and a dead
	// worker's claims expire and are taken over in-run.
	Steal Strategy = "steal"
)

// ParseStrategy maps the CLI spelling to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case Range:
		return Range, nil
	case Steal:
		return Steal, nil
	default:
		return "", fmt.Errorf("sweep: unknown shard strategy %q (range or steal)", s)
	}
}

// Assign shards the pending unit positions across procs workers. The
// assignment is deterministic in its inputs. Range mode returns
// disjoint contiguous chunks whose sizes differ by at most one; steal
// mode returns the full list per worker, rotated so workers start
// claiming at different points. Workers with nothing to do get empty
// (never absent) assignments, so the caller's worker count is the
// slice length either way.
func Assign(pending []int, procs int, strategy Strategy) [][]int {
	if procs < 1 {
		procs = 1
	}
	out := make([][]int, procs)
	if strategy == Steal {
		n := len(pending)
		for w := 0; w < procs; w++ {
			rot := make([]int, 0, n)
			if n > 0 {
				start := w * n / procs
				rot = append(rot, pending[start:]...)
				rot = append(rot, pending[:start]...)
			}
			out[w] = rot
		}
		return out
	}
	// Range: the first len(pending)%procs chunks get one extra unit.
	per := len(pending) / procs
	extra := len(pending) % procs
	next := 0
	for w := 0; w < procs; w++ {
		size := per
		if w < extra {
			size++
		}
		out[w] = append([]int{}, pending[next:next+size]...)
		next += size
	}
	return out
}
