package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"nbtinoc/internal/sim"
)

// ManifestSchema versions the manifest file format, like entrySchema
// versions cache entries: an unknown schema is an error, never a guess.
const ManifestSchema = 1

// UnitState is the lifecycle of one unit within a campaign.
type UnitState string

const (
	// UnitPending units have not been computed into the cache yet.
	UnitPending UnitState = "pending"
	// UnitDone units have their summary in the cache.
	UnitDone UnitState = "done"
	// UnitFailed units errored; Err holds the message.
	UnitFailed UnitState = "failed"
)

// ManifestUnit records one unit's identity and state. Spec is embedded
// only in manifests without a Grid (recorded campaigns); grid-based
// manifests rebuild specs by re-expanding the grid, keeping a
// 10⁵-unit manifest to megabytes instead of embedding 10⁵ configs.
type ManifestUnit struct {
	Index int       `json:"index"`
	Key   string    `json:"key"`
	Label string    `json:"label"`
	State UnitState `json:"state"`
	Spec  *sim.Spec `json:"spec,omitempty"`
	Err   string    `json:"err,omitempty"`
}

// Manifest is the resumable record of a campaign: which units exist,
// under which engine their keys were derived, and how far each got. It
// is saved atomically (temp+rename) before workers start and after
// they finish, so a killed campaign resumes from the last checkpoint
// and the cache fills the gap in between.
type Manifest struct {
	Schema int    `json:"schema"`
	Name   string `json:"name"`
	// Engine is the engine version the unit keys were derived under; a
	// mismatch on load means every key is stale and resuming would
	// silently recompute everything, so it is refused loudly instead.
	Engine string `json:"engine"`
	// GridKey pins the generating grid's content address; Grid is the
	// grid itself for grid-based campaigns.
	GridKey string         `json:"grid_key,omitempty"`
	Grid    *Grid          `json:"grid,omitempty"`
	Units   []ManifestUnit `json:"units"`
}

// NewManifest builds a grid-based manifest with every unit pending.
func NewManifest(g *Grid) (*Manifest, []Unit, error) {
	units, err := g.Expand()
	if err != nil {
		return nil, nil, err
	}
	gridKey, err := g.Key()
	if err != nil {
		return nil, nil, err
	}
	m := &Manifest{
		Schema:  ManifestSchema,
		Name:    g.Name,
		Engine:  sim.EngineVersion,
		GridKey: gridKey,
		Grid:    g,
		Units:   make([]ManifestUnit, len(units)),
	}
	for i, u := range units {
		m.Units[i] = ManifestUnit{Index: u.Index, Key: u.Key, Label: u.Label, State: UnitPending}
	}
	return m, units, nil
}

// Resolve rebuilds the executable units of a loaded manifest: from the
// embedded grid when present (checking that re-expansion reproduces the
// recorded keys — the grid and the unit list cannot drift apart), or
// from the per-unit embedded specs otherwise.
func (m *Manifest) Resolve() ([]Unit, error) {
	if m.Grid != nil {
		units, err := m.Grid.Expand()
		if err != nil {
			return nil, err
		}
		if len(units) != len(m.Units) {
			return nil, fmt.Errorf("sweep: manifest %q: grid expands to %d units, manifest records %d",
				m.Name, len(units), len(m.Units))
		}
		for i, u := range units {
			if u.Key != m.Units[i].Key {
				return nil, fmt.Errorf("sweep: manifest %q: unit %d key mismatch (grid %s, manifest %s)",
					m.Name, i, u.Key[:12], m.Units[i].Key[:12])
			}
		}
		return units, nil
	}
	units := make([]Unit, len(m.Units))
	for i, mu := range m.Units {
		if mu.Spec == nil {
			return nil, fmt.Errorf("sweep: manifest %q: unit %d has neither grid nor spec", m.Name, i)
		}
		key, err := sim.SpecKey(*mu.Spec)
		if err != nil {
			return nil, err
		}
		if key != mu.Key {
			return nil, fmt.Errorf("sweep: manifest %q: unit %d spec re-keys to %s, recorded %s",
				m.Name, i, key[:12], mu.Key[:12])
		}
		units[i] = Unit{Index: mu.Index, Label: mu.Label, Key: mu.Key, Spec: *mu.Spec}
	}
	return units, nil
}

// validate structurally checks a decoded manifest.
func (m *Manifest) validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("sweep: manifest schema %d not supported (want %d)", m.Schema, ManifestSchema)
	}
	if m.Engine != sim.EngineVersion {
		return fmt.Errorf("sweep: manifest was built under engine %q, this build is %q — its keys are stale; start a fresh campaign",
			m.Engine, sim.EngineVersion)
	}
	for i, u := range m.Units {
		if u.Index != i {
			return fmt.Errorf("sweep: manifest unit %d records index %d", i, u.Index)
		}
		if u.Key == "" {
			return fmt.Errorf("sweep: manifest unit %d has no key", i)
		}
		switch u.State {
		case UnitPending, UnitDone, UnitFailed:
		default:
			return fmt.Errorf("sweep: manifest unit %d has unknown state %q", i, u.State)
		}
	}
	return nil
}

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sweep: parsing manifest %s: %w", path, err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Save writes the manifest atomically: temp file in the target
// directory, then rename. A crash mid-save leaves the previous
// checkpoint intact, never a torn file.
func (m *Manifest) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Counts tallies units by state.
func (m *Manifest) Counts() (pending, done, failed int) {
	for _, u := range m.Units {
		switch u.State {
		case UnitDone:
			done++
		case UnitFailed:
			failed++
		default:
			pending++
		}
	}
	return pending, done, failed
}

// Recorder accumulates executed specs into a manifest, deduplicated by
// content address — the Runner.Record adapter behind the CLIs'
// -sweep-manifest flag. Drivers call Record from worker goroutines;
// the recorder is safe for concurrent use.
type Recorder struct {
	name string

	mu    sync.Mutex
	seen  map[string]int
	units []ManifestUnit
}

// NewRecorder starts an empty recorder for a named campaign.
func NewRecorder(name string) *Recorder {
	return &Recorder{name: name, seen: make(map[string]int)}
}

// Record observes one executed spec (signature matches
// sim.Runner.Record). Specs that bypassed the cache (empty key) have no
// content address and are not recordable.
func (r *Recorder) Record(spec sim.Spec, key string, cached bool) {
	if key == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.seen[key]; dup {
		return
	}
	r.seen[key] = len(r.units)
	s := spec
	r.units = append(r.units, ManifestUnit{
		Key:   key,
		Label: fmt.Sprintf("%s/%s/vc%d", s.Policy.Name, s.Gen.Kind, s.Net.VCsPerVNet),
		State: UnitDone,
		Spec:  &s,
	})
}

// Manifest snapshots the recorded units, ordered by first execution —
// a deterministic order under sequential runs; concurrent drivers get
// key order instead so the same scenario set always serialises
// identically.
func (r *Recorder) Manifest() *Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	units := make([]ManifestUnit, len(r.units))
	copy(units, r.units)
	sort.Slice(units, func(i, j int) bool { return units[i].Key < units[j].Key })
	for i := range units {
		units[i].Index = i
	}
	return &Manifest{
		Schema: ManifestSchema,
		Name:   r.name,
		Engine: sim.EngineVersion,
		Units:  units,
	}
}
