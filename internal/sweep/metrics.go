package sweep

import "nbtinoc/internal/metrics"

// Exported instrument names for sweep campaigns. cmd/nbtisweep wires
// the unit counters into metrics.Progress for the -v progress line;
// lease contention shows up through the cache_lease_* instruments of
// internal/cache.
const (
	// MetricUnitsTotal counts units handed to workers.
	MetricUnitsTotal = "sweep_units_total"
	// MetricUnitsDone counts units that reached a summary (computed or
	// served from the cache).
	MetricUnitsDone = "sweep_units_done_total"
	// MetricUnitsFailed counts units whose compute errored.
	MetricUnitsFailed = "sweep_units_failed_total"
	// MetricUnitsDeferred counts steal-mode step-asides: a unit found
	// claimed by another process and revisited later.
	MetricUnitsDeferred = "sweep_units_deferred_total"
	// MetricWorkersActive gauges worker batches currently executing in
	// this process.
	MetricWorkersActive = "sweep_workers_active"
)

// sweepMetrics are the per-batch handles into the process registry;
// all nil when instrumentation is disabled.
type sweepMetrics struct {
	unitsTotal    *metrics.Counter
	unitsDone     *metrics.Counter
	unitsFailed   *metrics.Counter
	unitsDeferred *metrics.Counter
	workersActive *metrics.Gauge
}

// newSweepMetrics resolves the sweep instruments from the process
// default registry.
func newSweepMetrics() sweepMetrics {
	r := metrics.Default()
	if r == nil {
		return sweepMetrics{}
	}
	return sweepMetrics{
		unitsTotal:    r.Counter(MetricUnitsTotal, "Sweep units handed to workers."),
		unitsDone:     r.Counter(MetricUnitsDone, "Sweep units that reached a summary."),
		unitsFailed:   r.Counter(MetricUnitsFailed, "Sweep units whose compute errored."),
		unitsDeferred: r.Counter(MetricUnitsDeferred, "Steal-mode step-asides revisited later."),
		workersActive: r.Gauge(MetricWorkersActive, "Worker batches currently executing."),
	}
}
