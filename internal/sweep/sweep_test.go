package sweep

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/sim"
)

// testGrid is a small campaign: 2 policies x 2 rates on a 2x2 mesh,
// cheap enough to simulate many times over in one test run.
func testGrid() *Grid {
	return &Grid{
		Name: "t",
		Base: sim.Scenario{
			Name: "base", Cores: 4, VCs: 1,
			Workload: "uniform", Rate: 0.1,
			Warmup: 200, Measure: 2_000,
			Seed: 1, PVSeed: 1,
		},
		Axes: Axes{
			Policies: []string{"baseline", "sensor-wise"},
			Rates:    []float64{0.1, 0.2},
		},
		Probes: []string{"0:E"},
	}
}

// testLease is a real-time lease policy with tight timings.
func testLease() *cache.LeasePolicy {
	return &cache.LeasePolicy{
		TTLNS:       int64(5 * time.Second),
		HeartbeatNS: int64(10 * time.Millisecond),
		PollNS:      int64(time.Millisecond),
		Sleep:       func(ns int64) { time.Sleep(time.Duration(ns)) },
	}
}

func realClock() func() int64 {
	return func() int64 { return time.Now().UnixNano() }
}

func TestGridExpandDeterministic(t *testing.T) {
	g := testGrid()
	a, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of one grid differ")
	}
	if len(a) != 4 {
		t.Fatalf("expanded to %d units, want 4", len(a))
	}
	wantLabels := []string{
		"baseline/r0.1", "baseline/r0.2",
		"sensor-wise/r0.1", "sensor-wise/r0.2",
	}
	keys := map[string]bool{}
	for i, u := range a {
		if u.Index != i {
			t.Errorf("unit %d records index %d", i, u.Index)
		}
		if u.Label != wantLabels[i] {
			t.Errorf("unit %d label = %q, want %q", i, u.Label, wantLabels[i])
		}
		if keys[u.Key] {
			t.Errorf("unit %d key %s duplicates another unit", i, u.Key[:12])
		}
		keys[u.Key] = true
		if got, err := sim.SpecKey(u.Spec); err != nil || got != u.Key {
			t.Errorf("unit %d key does not match its spec: %v", i, err)
		}
	}

	// The grid key pins content: an edited axis changes it.
	k1, err := g.Key()
	if err != nil {
		t.Fatal(err)
	}
	g2 := testGrid()
	g2.Axes.Rates = append(g2.Axes.Rates, 0.3)
	k2, err := g2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("edited grid kept its key")
	}
}

func TestGridLoadRejectsBadPoints(t *testing.T) {
	bad := `{"name":"x","base":{"cores":4,"vcs":1,"measure":100},"axes":{"meshes":["nonsense"]}}`
	if _, err := LoadGrid(strings.NewReader(bad)); err == nil {
		t.Error("grid with unparsable mesh accepted")
	}
	unknown := `{"name":"x","base":{"cores":4,"vcs":1,"measure":100},"axis":{}}`
	if _, err := LoadGrid(strings.NewReader(unknown)); err == nil {
		t.Error("grid with unknown field accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m, units, err := NewManifest(testGrid())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	m.Units[1].State = UnitDone
	m.Units[2].State = UnitFailed
	m.Units[2].Err = "boom"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Errorf("round trip changed the manifest:\n got %+v\nwant %+v", back, m)
	}
	resolved, err := back.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(units, resolved) {
		t.Error("resolved units differ from the originals")
	}
	if p, d, f := back.Counts(); p != 2 || d != 1 || f != 1 {
		t.Errorf("Counts = %d/%d/%d, want 2 pending, 1 done, 1 failed", p, d, f)
	}
}

func TestManifestValidation(t *testing.T) {
	m, _, err := NewManifest(testGrid())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	save := func(name string, mutate func(*Manifest)) string {
		t.Helper()
		c := *m
		c.Units = append([]ManifestUnit{}, m.Units...)
		mutate(&c)
		p := filepath.Join(dir, name)
		data, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeJSONFile(p, json.RawMessage(data)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, mutate := range map[string]func(*Manifest){
		"schema.json": func(m *Manifest) { m.Schema = 99 },
		"engine.json": func(m *Manifest) { m.Engine = "other-engine" },
		"index.json":  func(m *Manifest) { m.Units[1].Index = 7 },
		"state.json":  func(m *Manifest) { m.Units[0].State = "half-done" },
		"key.json":    func(m *Manifest) { m.Units[0].Key = "" },
	} {
		if _, err := LoadManifest(save(name, mutate)); err == nil {
			t.Errorf("%s: damaged manifest accepted", name)
		}
	}

	// A grid-based manifest whose grid drifted from its unit list is
	// caught at Resolve.
	drift := *m
	drift.Units = append([]ManifestUnit{}, m.Units...)
	drift.Units[0].Key = strings.Repeat("ab", 32)
	if _, err := drift.Resolve(); err == nil {
		t.Error("drifted grid manifest resolved")
	}
}

func TestRecorderBuildsResolvableManifest(t *testing.T) {
	rec := NewRecorder("recorded")
	store := cache.Open(t.TempDir(), cache.ReadWrite)
	runner := sim.Runner{Store: store, Record: rec.Record}
	units, err := testGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		if _, err := runner.Run(u.Spec); err != nil {
			t.Fatal(err)
		}
	}
	// Re-running dedups: same manifest.
	if _, err := runner.Run(units[0].Spec); err != nil {
		t.Fatal(err)
	}
	m := rec.Manifest()
	if len(m.Units) != len(units) {
		t.Fatalf("recorded %d units, want %d", len(m.Units), len(units))
	}
	if !sort.SliceIsSorted(m.Units, func(i, j int) bool { return m.Units[i].Key < m.Units[j].Key }) {
		t.Error("recorded units not in key order")
	}
	path := filepath.Join(t.TempDir(), "rec.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := back.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, u := range units {
		want[u.Key] = true
	}
	for _, u := range resolved {
		if !want[u.Key] {
			t.Errorf("resolved unit %s not in the original grid", u.Key[:12])
		}
	}
}

func TestAssignStrategies(t *testing.T) {
	pending := []int{3, 5, 8, 9, 12, 20, 21}
	ranges := Assign(pending, 3, Range)
	if len(ranges) != 3 {
		t.Fatalf("range procs = %d", len(ranges))
	}
	var flat []int
	for _, chunk := range ranges {
		flat = append(flat, chunk...)
	}
	if !reflect.DeepEqual(flat, pending) {
		t.Errorf("range chunks reorder or drop: %v", ranges)
	}
	for _, chunk := range ranges {
		if len(chunk) < 2 || len(chunk) > 3 {
			t.Errorf("unbalanced range chunk %v", chunk)
		}
	}

	steals := Assign(pending, 3, Steal)
	for w, perm := range steals {
		if len(perm) != len(pending) {
			t.Fatalf("steal worker %d got %d units, want all %d", w, len(perm), len(pending))
		}
		sorted := append([]int{}, perm...)
		sort.Ints(sorted)
		if !reflect.DeepEqual(sorted, pending) {
			t.Errorf("steal worker %d list is not a permutation: %v", w, perm)
		}
	}
	if reflect.DeepEqual(steals[0], steals[1]) {
		t.Error("steal workers start at the same offset")
	}

	// Degenerate shapes.
	if got := Assign(nil, 2, Range); len(got) != 2 || len(got[0]) != 0 {
		t.Errorf("empty pending: %v", got)
	}
	if got := Assign([]int{1}, 4, Steal); len(got) != 4 {
		t.Errorf("more procs than units: %v", got)
	}
}

// runCampaign expands the grid fresh and runs a full coordinator round
// in the given topology, returning the merged report bytes and the
// round result.
func runCampaign(t *testing.T, dir string, procs, workers int, strategy Strategy) ([]byte, *Result) {
	t.Helper()
	m, units, err := NewManifest(testGrid())
	if err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{
		Manifest:     m,
		Units:        units,
		ManifestPath: filepath.Join(dir, "manifest.json"),
		CacheDir:     filepath.Join(dir, "cache"),
		Procs:        procs,
		Workers:      workers,
		Strategy:     strategy,
		Clock:        realClock(),
		Lease:        testLease(),
	}
	var out bytes.Buffer
	res, err := c.Run(&out)
	if err != nil {
		t.Fatalf("campaign (%d procs, %d workers, %s): %v", procs, workers, strategy, err)
	}
	return out.Bytes(), res
}

// TestMergedOutputByteIdenticalAcrossTopologies is the acceptance
// pin: every (processes x workers x strategy) layout produces the
// same merged bytes, each from its own cold cache.
func TestMergedOutputByteIdenticalAcrossTopologies(t *testing.T) {
	base, _ := runCampaign(t, t.TempDir(), 1, 1, Range)
	if len(base) == 0 || !bytes.HasPrefix(base, []byte("# nbtinoc sweep t ")) {
		t.Fatalf("unexpected report header: %q", base[:min(len(base), 60)])
	}
	for _, tc := range []struct {
		procs, workers int
		strategy       Strategy
	}{
		{1, 4, Range},
		{2, 1, Range},
		{2, 2, Steal},
		{3, 1, Steal},
	} {
		got, _ := runCampaign(t, t.TempDir(), tc.procs, tc.workers, tc.strategy)
		if !bytes.Equal(got, base) {
			t.Errorf("(%d procs, %d workers, %s) diverged from 1-proc/-j1:\n got: %s\nwant: %s",
				tc.procs, tc.workers, tc.strategy, got, base)
		}
	}
}

// TestSharedCacheSingleCompute: multiple worker processes over ONE
// cache dir perform exactly one compute per unique key — the summed
// stats prove the cross-process single-flight through the full stack.
func TestSharedCacheSingleCompute(t *testing.T) {
	for _, strategy := range []Strategy{Range, Steal} {
		dir := t.TempDir()
		out, res := runCampaign(t, dir, 2, 1, strategy)
		if len(out) == 0 {
			t.Fatalf("%s: empty report", strategy)
		}
		if res.Stats.Misses != 4 {
			t.Errorf("%s: %d misses across the campaign, want exactly 4 (one per key); stats %s",
				strategy, res.Stats.Misses, res.Stats)
		}
		if res.Done != 4 || res.Failed != 0 {
			t.Errorf("%s: done=%d failed=%d, want 4/0", strategy, res.Done, res.Failed)
		}
	}
}

// TestKilledThenResumedMatchesUninterrupted kills a worker mid-batch
// (its report is never written), checks the round fails resumably, then
// resumes from the manifest and pins the merged bytes against an
// uninterrupted run.
func TestKilledThenResumedMatchesUninterrupted(t *testing.T) {
	want, _ := runCampaign(t, t.TempDir(), 1, 1, Range)

	dir := t.TempDir()
	m, units, err := NewManifest(testGrid())
	if err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, "manifest.json")
	cacheDir := filepath.Join(dir, "cache")
	killed := &Coordinator{
		Manifest:     m,
		Units:        units,
		ManifestPath: manifestPath,
		CacheDir:     cacheDir,
		Procs:        2,
		Workers:      1,
		Strategy:     Range,
		Clock:        realClock(),
		Lease:        testLease(),
		Spawn: func(w int, assignPath, reportPath string) error {
			a, err := LoadAssignment(assignPath)
			if err != nil {
				return err
			}
			if w == 0 {
				// "Kill" worker 0 after one unit: compute a partial
				// share into the shared cache, never write the report.
				a.Indices = a.Indices[:1]
				partial := filepath.Join(dir, "partial.json")
				if err := a.Save(partial); err != nil {
					return err
				}
				if err := ExecuteAssignment(partial, filepath.Join(dir, "partial-report.json"),
					WorkerEnv{Clock: realClock(), Lease: testLease()}); err != nil {
					return err
				}
				return &killedError{}
			}
			return ExecuteAssignment(assignPath, reportPath,
				WorkerEnv{Clock: realClock(), Lease: testLease()})
		},
	}
	var out bytes.Buffer
	if _, err := killed.Run(&out); err == nil {
		t.Fatal("round with a killed worker reported success")
	}
	if out.Len() != 0 {
		t.Fatalf("killed round wrote a merged report: %q", out.String())
	}

	// Resume: reload the checkpoint, as a fresh invocation would.
	loaded, err := LoadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if p, _, _ := loaded.Counts(); p == 0 {
		t.Fatal("checkpoint shows nothing pending after a killed worker")
	}
	resolved, err := loaded.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	resumed := &Coordinator{
		Manifest:     loaded,
		Units:        resolved,
		ManifestPath: manifestPath,
		CacheDir:     cacheDir,
		Procs:        1,
		Workers:      1,
		Strategy:     Range,
		Clock:        realClock(),
		Lease:        testLease(),
	}
	out.Reset()
	res, err := resumed.Run(&out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("resumed report diverged from uninterrupted:\n got: %s\nwant: %s", out.Bytes(), want)
	}
	if res.Resumed == 0 {
		t.Error("resume recomputed everything: no units were skipped via the cache")
	}
}

type killedError struct{}

func (*killedError) Error() string { return "worker killed (simulated)" }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestAssignmentServerSeamRefused: the reserved daemon-execution field
// round-trips through the file protocol but is refused by the local
// executor — a coordinator written for a future nbtisimd-backed mode
// must not silently fall back to in-process simulation.
func TestAssignmentServerSeamRefused(t *testing.T) {
	dir := t.TempDir()
	a := &Assignment{
		Schema:       AssignmentSchema,
		ManifestPath: filepath.Join(dir, "manifest.json"),
		CacheDir:     filepath.Join(dir, "cache"),
		Workers:      1,
		Strategy:     Range,
		Indices:      []int{0},
		Server:       "http://127.0.0.1:8310",
	}
	path := filepath.Join(dir, "assign.json")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAssignment(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Server != a.Server {
		t.Fatalf("Server field did not round-trip: %q", loaded.Server)
	}
	err = ExecuteAssignment(path, filepath.Join(dir, "report.json"),
		WorkerEnv{Clock: realClock(), Lease: testLease()})
	if err == nil {
		t.Fatal("assignment with a server was executed locally")
	}
	if !strings.Contains(err.Error(), "server") {
		t.Errorf("refusal does not mention the server seam: %v", err)
	}
}
