package sweep

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/sim"
)

// Coordinator drives one campaign round: shard the pending units across
// worker processes, collect their reports, checkpoint the manifest, and
// — when everything completed — merge the campaign through a
// strictly-sequential reduction into the report writer.
type Coordinator struct {
	// Manifest is the campaign state; Units its resolved work list
	// (from NewManifest or Manifest.Resolve).
	Manifest *Manifest
	Units    []Unit
	// ManifestPath, when non-empty, is where checkpoints are saved
	// (atomically) before workers start and after they finish.
	ManifestPath string
	// CacheDir is the shared result cache all workers open.
	CacheDir string
	// Procs is the worker-process count; Workers the per-process pool
	// width (-j).
	Procs, Workers int
	// Strategy selects range-sharding or work-stealing.
	Strategy Strategy
	// Clock and Lease are the injected time hooks handed to every
	// store this coordinator opens (and to in-process workers).
	Clock func() int64
	Lease *cache.LeasePolicy
	// Spawn launches worker w over an assignment file and blocks until
	// its report file exists; nil runs the worker in-process with its
	// own Store handle — the same isolation an exec'd worker has,
	// minus the address space.
	Spawn func(w int, assignPath, reportPath string) error
	// ScratchDir holds assignment/report files; empty derives one next
	// to the manifest or under os.TempDir.
	ScratchDir string
	// Logf, when non-nil, receives progress and the aggregated
	// campaign cache stats. This is side-channel narration (stderr in
	// the CLI) — never part of the merged report bytes.
	Logf func(format string, args ...any)
}

// Result summarises a completed coordinator round.
type Result struct {
	// Stats aggregates cache stats across every worker process plus
	// the coordinator's own merge pass.
	Stats cache.Stats
	// Done / Failed count unit outcomes after this round; Resumed
	// counts units skipped because the cache already held their keys.
	Done, Failed, Resumed int
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// openStore opens the shared cache with the coordinator's time hooks.
func (c *Coordinator) openStore() *cache.Store {
	s := cache.Open(c.CacheDir, cache.ReadWrite)
	s.Clock = c.Clock
	s.Lease = c.Lease
	return s
}

// scratch resolves the scratch directory for worker files.
func (c *Coordinator) scratch() (string, error) {
	dir := c.ScratchDir
	if dir == "" {
		if c.ManifestPath != "" {
			dir = c.ManifestPath + ".work"
		} else {
			dir = filepath.Join(os.TempDir(), "nbtisweep-work")
		}
	}
	return dir, os.MkdirAll(dir, 0o755)
}

// Run executes one campaign round and, if every unit completes, merges
// the report into out. On worker failure the manifest checkpoint is
// still saved — the campaign is resumable — and the error says so.
func (c *Coordinator) Run(out io.Writer) (*Result, error) {
	if len(c.Units) != len(c.Manifest.Units) {
		return nil, fmt.Errorf("sweep: %d resolved units for %d manifest units", len(c.Units), len(c.Manifest.Units))
	}
	res := &Result{}
	store := c.openStore()

	// Resume: a unit whose key is already in the cache is done no
	// matter what the manifest last recorded — the cache is the ground
	// truth, the manifest a progress journal.
	var pending []int
	for i := range c.Manifest.Units {
		if c.Manifest.Units[i].State != UnitDone && store.Has(c.Manifest.Units[i].Key) {
			c.Manifest.Units[i].State = UnitDone
			c.Manifest.Units[i].Err = ""
			res.Resumed++
		}
		if c.Manifest.Units[i].State != UnitDone {
			pending = append(pending, i)
		}
	}
	if err := c.checkpoint(); err != nil {
		return nil, err
	}
	c.logf("sweep %s: %d units, %d pending (%d resumed from cache), %d procs x %d workers, %s",
		c.Manifest.Name, len(c.Units), len(pending), res.Resumed, c.Procs, c.Workers, c.Strategy)

	if len(pending) > 0 {
		if err := c.runWorkers(pending, res); err != nil {
			return nil, err
		}
	}
	if err := c.checkpoint(); err != nil {
		return nil, err
	}
	for _, u := range c.Manifest.Units {
		switch u.State {
		case UnitDone:
			res.Done++
		case UnitFailed:
			res.Failed++
		}
	}
	if res.Failed > 0 {
		res.Stats = res.Stats.Add(store.Stats())
		return res, fmt.Errorf("sweep: %d of %d units failed; manifest checkpointed, rerun to retry",
			res.Failed, len(c.Units))
	}

	// Merge: strictly sequential, index order, reading through the
	// shared cache — the byte layout of the report depends only on the
	// unit summaries, never on topology or timing.
	if out != nil {
		if err := c.merge(out, store); err != nil {
			return nil, err
		}
	}
	res.Stats = res.Stats.Add(store.Stats())
	c.logf("sweep %s: campaign cache totals: %s", c.Manifest.Name, res.Stats)
	return res, nil
}

// checkpoint saves the manifest when a path is configured.
func (c *Coordinator) checkpoint() error {
	if c.ManifestPath == "" {
		return nil
	}
	return c.Manifest.Save(c.ManifestPath)
}

// runWorkers shards pending across the worker processes, launches them
// concurrently, and folds their reports back into the manifest and the
// aggregated stats.
func (c *Coordinator) runWorkers(pending []int, res *Result) error {
	procs := c.Procs
	if procs < 1 {
		procs = 1
	}
	if procs > len(pending) {
		procs = len(pending)
	}
	// Workers read the manifest from disk, so spawning needs a saved
	// copy even when the caller didn't ask for checkpoints.
	manifestPath := c.ManifestPath
	scratch, err := c.scratch()
	if err != nil {
		return err
	}
	if manifestPath == "" {
		manifestPath = filepath.Join(scratch, "manifest.json")
		if err := c.Manifest.Save(manifestPath); err != nil {
			return err
		}
	}
	assignments := Assign(pending, procs, c.Strategy)

	type workerOutcome struct {
		report *WorkerReport
		err    error
	}
	outcomes := make([]workerOutcome, procs)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		assignPath := filepath.Join(scratch, "assign-"+strconv.Itoa(w)+".json")
		reportPath := filepath.Join(scratch, "report-"+strconv.Itoa(w)+".json")
		os.Remove(reportPath)
		a := &Assignment{
			Schema:       AssignmentSchema,
			ManifestPath: manifestPath,
			CacheDir:     c.CacheDir,
			Workers:      c.Workers,
			Strategy:     c.Strategy,
			Indices:      assignments[w],
		}
		if err := a.Save(assignPath); err != nil {
			return err
		}
		wg.Add(1)
		go func(w int, assignPath, reportPath string) {
			defer wg.Done()
			spawn := c.Spawn
			if spawn == nil {
				spawn = func(_ int, ap, rp string) error {
					return ExecuteAssignment(ap, rp, WorkerEnv{Clock: c.Clock, Lease: c.Lease})
				}
			}
			if err := spawn(w, assignPath, reportPath); err != nil {
				outcomes[w].err = err
			}
			// Read whatever report exists even after an error: a
			// worker killed mid-batch may still have checkpointed
			// nothing, but one that failed late reports most units.
			if r, lerr := LoadWorkerReport(reportPath); lerr == nil {
				outcomes[w].report = r
			}
		}(w, assignPath, reportPath)
	}
	wg.Wait()

	var spawnErr error
	for w := 0; w < procs; w++ {
		if outcomes[w].err != nil {
			c.logf("sweep %s: worker %d: %v", c.Manifest.Name, w, outcomes[w].err)
			if spawnErr == nil {
				spawnErr = fmt.Errorf("sweep: worker %d: %w", w, outcomes[w].err)
			}
		}
		r := outcomes[w].report
		if r == nil {
			continue
		}
		res.Stats = res.Stats.Add(r.Stats)
		for j, i := range r.Indices {
			if i < 0 || i >= len(c.Manifest.Units) {
				continue
			}
			u := &c.Manifest.Units[i]
			switch r.Results[j].State {
			case UnitDone:
				u.State = UnitDone
				u.Err = ""
			case UnitFailed:
				// Don't let one worker's failure overwrite another's
				// success on the same (stolen) unit.
				if u.State != UnitDone {
					u.State = UnitFailed
					u.Err = r.Results[j].Err
				}
			}
		}
	}
	if spawnErr != nil {
		if err := c.checkpoint(); err != nil {
			return err
		}
		return fmt.Errorf("%w (manifest checkpointed, rerun to resume)", spawnErr)
	}
	return nil
}

// merge runs the sequential reduction: every unit in index order, read
// through the cache (a corrupt or evicted entry silently recomputes),
// rendered into the deterministic report.
func (c *Coordinator) merge(out io.Writer, store *cache.Store) error {
	runner := sim.Runner{Store: store}
	sums := make([]*sim.RunSummary, len(c.Units))
	for i := range c.Units {
		s, err := runner.Run(c.Units[i].Spec)
		if err != nil {
			return fmt.Errorf("sweep: merging unit %d (%s): %w", i, c.Units[i].Label, err)
		}
		sums[i] = s
	}
	return WriteReport(out, c.Manifest.Name, c.Units, sums)
}
