// Package metrics is the engine's instrumentation registry: named
// counters, gauges, fixed-bucket histograms and labeled families,
// collected into deterministic snapshots for the live run monitor
// (Prometheus text, JSON) and offline diffing.
//
// Two properties shape the design:
//
//   - Zero cost when disabled. Every instrument is a pointer whose
//     methods are no-ops on a nil receiver, and a nil *Registry hands
//     out nil instruments from every constructor. Code instruments its
//     hot paths unconditionally — `c.Inc()` on a nil counter is a single
//     predictable branch, performs no allocation and touches no shared
//     state — so the simulator's 0 allocs/op benchmarks hold with
//     metrics off, pinned by TestDisabledInstrumentsAllocFree and the
//     bench gate.
//
//   - Deterministic output. Snapshots iterate families by sorted name
//     and children by sorted label values (maps are only ranged to
//     collect keys for sorting, the nbtilint detmap idiom), histograms
//     are integer-valued so no float summation order can leak into the
//     output, and the text/JSON encoders write fields in a fixed order.
//     Equal instrument states therefore always render byte-identically.
//
// Instruments are safe for concurrent use: values are atomics, and
// registration (creating a family or a labeled child) is mutex-guarded
// and idempotent — asking for an existing name returns the existing
// instrument, so packages resolve their instruments at construction
// time without coordinating ownership.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the instrument families.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the Prometheus TYPE spelling.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Counter is a monotonically increasing uint64. The nil counter is a
// valid no-op, which is how the disabled path stays free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for the nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 (occupancy, depth, phase id). The nil
// gauge is a valid no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket integer histogram: observation v lands in
// the first bucket whose upper bound satisfies v <= le, or the implicit
// +Inf bucket past the last bound. Bounds are uint64 because everything
// this engine measures — cycles, span lengths, byte counts — is an
// integer; keeping floats out of the accumulation makes the rendered
// output independent of observation interleaving. The nil histogram is
// a valid no-op.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the bound slice is
	// validated ascending at registration.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// family is one named instrument family: a singleton (no labels) or a
// set of labeled children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []uint64

	mu       sync.Mutex
	children map[string]*child
}

// child is one (label-values → instrument) binding.
type child struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// childKey joins label values with \xff, which cannot appear in a UTF-8
// label value's byte representation at a rune boundary ambiguity that
// matters here: the key is only an internal map index.
func childKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\xff')
		}
		b = append(b, v...)
	}
	return string(b)
}

// get returns the child for the given label values, creating it on
// first use.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = &Histogram{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = c
	return c
}

// Registry is a set of named instrument families. The nil registry is
// the disabled state: every constructor returns a nil instrument and
// every reader reports emptiness.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// def is the process default registry; nil (the boot state) means
// instrumentation is disabled everywhere. This is deliberately mutable
// process state: instrumented objects resolve their instruments from it
// once, at construction time, so a swap never races a simulation — and
// the atomic.Pointer makes the single SetDefault/Default hand-off safe
// even from tooling goroutines.
//
//nbtilint:allow globalmut process default registry, resolved only at construction time
var def atomic.Pointer[Registry]

// Default returns the process default registry, nil when disabled.
// Packages resolve their instruments from it at construction time
// (network build, store open, pool run), so a CLI that wants telemetry
// must call SetDefault before building any instrumented object.
func Default() *Registry { return def.Load() }

// SetDefault installs (or, with nil, disables) the process default
// registry. Objects built earlier keep the instruments they resolved.
func SetDefault(r *Registry) { def.Store(r) }

// family returns the named family, creating it on first registration.
// Re-registration with a different kind, label set or bucket layout is
// a programmer error and panics; instrument names are a global
// namespace and two meanings for one name would corrupt the output.
func (r *Registry) family(name, help string, kind Kind, labels []string, buckets []uint64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalUint64s(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: conflicting re-registration of %q", name))
		}
		if f.help == "" {
			f.help = help
		}
		return f
	}
	if name == "" {
		panic("metrics: empty instrument name")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly ascending", name))
		}
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]uint64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// Counter returns the named singleton counter, registering it on first
// use. A nil registry returns the nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindCounter, nil, nil).get(nil).counter
}

// Gauge returns the named singleton gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindGauge, nil, nil).get(nil).gauge
}

// Histogram returns the named singleton histogram with the given
// strictly ascending upper bounds (an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, buckets []uint64) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindHistogram, nil, buckets).get(nil).hist
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec returns the named labeled counter family. A nil registry
// returns the nil vec, whose With returns nil counters.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, KindCounter, labelNames, nil)}
}

// With returns the child counter for the given label values (in label
// declaration order), creating it on first use. Callers cache the
// result: With takes the family lock and builds a key string, so it
// belongs at construction time, not in a hot loop.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(values).counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec returns the named labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, KindGauge, labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(values).gauge
}

// CounterValue returns the summed value of the named counter family
// (all children), or 0 when the registry is nil or the name unknown.
// The progress printer reads totals through this without caring whether
// a family is labeled.
func (r *Registry) CounterValue(name string) uint64 {
	f := r.lookup(name, KindCounter)
	if f == nil {
		return 0
	}
	var total uint64
	f.mu.Lock()
	defer f.mu.Unlock()
	//nbtilint:allow detmap summing commutative uint64 counters; the total is independent of iteration order
	for _, c := range f.children {
		total += c.counter.Value()
	}
	return total
}

// GaugeValue returns the summed value of the named gauge family, or 0
// when absent.
func (r *Registry) GaugeValue(name string) int64 {
	f := r.lookup(name, KindGauge)
	if f == nil {
		return 0
	}
	var total int64
	f.mu.Lock()
	defer f.mu.Unlock()
	//nbtilint:allow detmap summing commutative int64 gauges; the total is independent of iteration order
	for _, c := range f.children {
		total += c.gauge.Value()
	}
	return total
}

func (r *Registry) lookup(name string, kind Kind) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.kind != kind {
		return nil
	}
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalUint64s(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedFamilies returns the registry's families ordered by name — the
// deterministic iteration base for every exporter.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*family, len(names))
	for i, name := range names {
		out[i] = r.families[name]
	}
	r.mu.Unlock()
	return out
}

// sortedChildren returns the family's children ordered by label values
// — the per-family deterministic iteration base.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for key := range f.children {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, key := range keys {
		out[i] = f.children[key]
	}
	f.mu.Unlock()
	return out
}
