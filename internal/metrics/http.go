package metrics

import "net/http"

// HTTP server instrumentation for the simulation service: a per-route
// request counter labelled with the response code, and an in-flight
// gauge. Instruments follow the registry's nil-receiver contract, so a
// server built without a registry pays only a nil check per request.

// Metric names exported by HTTPMetrics.
const (
	MetricHTTPRequests = "http_requests_total"
	MetricHTTPInFlight = "http_requests_in_flight"
)

// HTTPMetrics instruments HTTP handlers. The zero value is inert.
type HTTPMetrics struct {
	requests *CounterVec
	inflight *Gauge
}

// NewHTTPMetrics resolves the HTTP instruments against the current
// default registry (nil registry means inert instruments, like every
// other construction-time resolution in this package).
func NewHTTPMetrics() HTTPMetrics {
	r := Default()
	return HTTPMetrics{
		requests: r.CounterVec(MetricHTTPRequests, "HTTP requests served, by route and status code.", "route", "code"),
		inflight: r.Gauge(MetricHTTPInFlight, "HTTP requests currently being served."),
	}
}

// statusWriter captures the response code a handler writes; implicit
// 200s (a body written without WriteHeader) are recorded as 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Wrap instruments a handler under a fixed route label (the registered
// pattern, not the raw URL, so label cardinality stays bounded).
func (m HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	if m.requests == nil && m.inflight == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Inc()
		defer m.inflight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		m.requests.With(route, itoa(sw.code)).Inc()
	})
}

// itoa formats the small positive integers status codes are, without
// pulling strconv into the hot path for a handful of distinct values.
func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
