package metrics

import "runtime"

// MetricHeapPeak is the gauge holding the largest live-heap size
// (runtime.MemStats.HeapAlloc, bytes) any SampleHeapPeak call observed
// during the run — the figure that makes the flat-arena layout's memory
// footprint visible per run (DESIGN §11).
const MetricHeapPeak = "process_heap_peak_bytes"

// SampleHeapPeak reads the current live-heap size and raises the
// MetricHeapPeak gauge on r to it when it exceeds the recorded peak,
// returning the updated peak in bytes. A nil registry records nothing
// and returns the current HeapAlloc, so callers can still render it.
//
// The read-then-set is not atomic: the callers sample from one
// goroutine at a time (the -v progress ticker, then the CLI finish
// path after the ticker stops). Peaks between samples are missed —
// acceptable, because the arena-dominated footprint this gauge exists
// to expose is steady for the lifetime of each network.
func SampleHeapPeak(r *Registry) uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	cur := int64(ms.HeapAlloc)
	g := r.Gauge(MetricHeapPeak,
		"Peak live-heap bytes (runtime.MemStats.HeapAlloc) observed during the run.")
	if g == nil {
		return ms.HeapAlloc
	}
	if peak := g.Value(); peak >= cur {
		return uint64(peak)
	}
	g.Set(cur)
	return ms.HeapAlloc
}
