package metrics

import (
	"strings"
	"testing"
)

func TestSampleHeapPeak(t *testing.T) {
	r := New()
	peak := SampleHeapPeak(r)
	if peak == 0 {
		t.Fatal("SampleHeapPeak returned 0 on a live process")
	}
	if got := r.GaugeValue(MetricHeapPeak); uint64(got) != peak {
		t.Errorf("gauge = %d, returned peak = %d", got, peak)
	}

	// The gauge is monotone: a sample below the recorded peak must not
	// lower it.
	r.Gauge(MetricHeapPeak, "").Set(1 << 62)
	if got := SampleHeapPeak(r); got != 1<<62 {
		t.Errorf("peak regressed to %d after a lower sample", got)
	}

	// The nil registry records nothing but still reports the live heap.
	if got := SampleHeapPeak(nil); got == 0 {
		t.Error("nil-registry sample returned 0")
	}
}

func TestProgressLineHeapPeak(t *testing.T) {
	r := New()
	r.Counter("h_cycles_total", "")
	p := &Progress{R: r, Cycles: "h_cycles_total", SampleHeap: true}
	p.Start(0)
	line := p.Line(1_000_000_000)
	if !strings.Contains(line, "heap ") || !strings.Contains(line, " peak") {
		t.Errorf("line %q missing the heap peak field", line)
	}
	if r.GaugeValue(MetricHeapPeak) == 0 {
		t.Error("Line with SampleHeap did not raise the peak gauge")
	}
	// Without SampleHeap the field stays absent and the gauge untouched.
	q := &Progress{R: New(), Cycles: "h_cycles_total"}
	q.Start(0)
	if line := q.Line(1_000_000_000); strings.Contains(line, "heap") {
		t.Errorf("line %q has a heap field without SampleHeap", line)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{512, "512B"},
		{8 << 10, "8KiB"},
		{3 << 20, "3.0MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, tc := range cases {
		if got := fmtBytes(tc.in); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
