package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("c_total", "a counter"); c2 != c {
		t.Error("re-registration did not return the existing counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	if got := r.CounterValue("c_total"); got != 5 {
		t.Errorf("CounterValue = %d, want 5", got)
	}
	if got := r.GaugeValue("g"); got != 5 {
		t.Errorf("GaugeValue = %d, want 5", got)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []uint64{1, 2})
	cv := r.CounterVec("xv_total", "", "l")
	gv := r.GaugeVec("yv", "", "l")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(9)
	cv.With("a").Inc()
	gv.With("a").Set(2)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments must read 0")
	}
	if r.CounterValue("x_total") != 0 || r.GaugeValue("y") != 0 {
		t.Error("nil registry reads must be 0")
	}
	if s := r.Snapshot(); len(s.Families) != 0 {
		t.Errorf("nil registry snapshot has %d families, want 0", len(s.Families))
	}
}

// TestDisabledInstrumentsAllocFree pins the zero-cost-when-disabled
// contract the hot paths rely on (see the package comment): every no-op
// instrument method must be allocation-free. The enabled fast paths
// (Inc/Add/Observe on resolved instruments) must be allocation-free
// too — only construction-time calls (With, the registry constructors)
// may allocate.
func TestDisabledInstrumentsAllocFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	check := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
	check("nil Counter.Inc", func() { c.Inc() })
	check("nil Counter.Add", func() { c.Add(3) })
	check("nil Gauge.Set", func() { g.Set(1) })
	check("nil Gauge.Add", func() { g.Add(-1) })
	check("nil Histogram.Observe", func() { h.Observe(42) })
	check("nil CounterVec.With+Inc", func() { cv.With("a", "b").Inc() })

	r := New()
	ec := r.Counter("enabled_total", "")
	eh := r.Histogram("enabled_hist", "", []uint64{1, 4, 16})
	check("enabled Counter.Inc", func() { ec.Inc() })
	check("enabled Histogram.Observe", func() { eh.Observe(7) })
}

func TestOrderedLabelIteration(t *testing.T) {
	r := New()
	// Register families and children in deliberately shuffled order; the
	// snapshot must come out sorted by family name, then label values.
	v := r.CounterVec("zz_total", "", "policy", "kind")
	v.With("rr", "wake").Inc()
	v.With("baseline", "gate").Inc()
	v.With("rr", "gate").Inc()
	v.With("baseline", "wake").Inc()
	r.Counter("aa_total", "").Inc()
	r.Gauge("mm", "").Set(3)

	s := r.Snapshot()
	var names []string
	for _, f := range s.Families {
		names = append(names, f.Name)
	}
	if got, want := strings.Join(names, ","), "aa_total,mm,zz_total"; got != want {
		t.Errorf("family order %q, want %q", got, want)
	}
	var children []string
	for _, m := range s.Families[2].Metrics {
		children = append(children, strings.Join(m.LabelValues, "/"))
	}
	want := "baseline/gate,baseline/wake,rr/gate,rr/wake"
	if got := strings.Join(children, ","); got != want {
		t.Errorf("child order %q, want %q", got, want)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := New()
	h := r.Histogram("edges", "", []uint64{1, 4, 16})
	// An observation lands in the first bucket with v <= le.
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17} {
		h.Observe(v)
	}
	hs := h.snapshot()
	if hs.Count != 7 {
		t.Errorf("count = %d, want 7", hs.Count)
	}
	if hs.Sum != 45 {
		t.Errorf("sum = %d, want 45", hs.Sum)
	}
	// Cumulative: le=1 holds {0,1}, le=4 adds {2,4}, le=16 adds {5,16},
	// +Inf adds {17}.
	wantCum := []uint64{2, 4, 6, 7}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !hs.Buckets[3].Inf {
		t.Error("last bucket must be +Inf")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := New()
	c := r.Counter("conc_total", "")
	v := r.CounterVec("conc_vec_total", "", "w")
	h := r.Histogram("conc_hist", "", []uint64{10, 100})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolving the child concurrently exercises the family lock.
			child := v.With(fmt.Sprintf("w%d", w%2))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				child.Inc()
				h.Observe(uint64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.CounterValue("conc_vec_total"); got != workers*perWorker {
		t.Errorf("vec total = %d, want %d", got, workers*perWorker)
	}
	if got := h.snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestConflictingReregistrationPanics(t *testing.T) {
	r := New()
	r.Counter("name", "")
	for _, tc := range []struct {
		desc string
		f    func()
	}{
		{"kind change", func() { r.Gauge("name", "") }},
		{"label change", func() { r.CounterVec("name", "", "l") }},
		{"bucket change", func() {
			r.Histogram("hist", "", []uint64{1, 2})
			r.Histogram("hist", "", []uint64{1, 3})
		}},
		{"descending buckets", func() { r.Histogram("desc", "", []uint64{5, 2}) }},
		{"empty name", func() { r.Counter("", "") }},
		{"arity mismatch", func() { r.CounterVec("vec_total", "", "a", "b").With("only-one") }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.desc)
				}
			}()
			tc.f()
		}()
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := New()
	v := r.CounterVec("noc_gating_transitions_total", "Gating transitions.", "policy", "kind")
	v.With("sensor-wise", "gate").Add(3)
	v.With("baseline", "wake").Add(1)
	r.Gauge("sim_workers_busy", "Busy workers.").Set(2)
	h := r.Histogram("nbti_span_cycles", "Span lengths.", []uint64{1, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP nbti_span_cycles Span lengths.
# TYPE nbti_span_cycles histogram
nbti_span_cycles_bucket{le="1"} 1
nbti_span_cycles_bucket{le="4"} 2
nbti_span_cycles_bucket{le="+Inf"} 3
nbti_span_cycles_sum 13
nbti_span_cycles_count 3
# HELP noc_gating_transitions_total Gating transitions.
# TYPE noc_gating_transitions_total counter
noc_gating_transitions_total{policy="baseline",kind="wake"} 1
noc_gating_transitions_total{policy="sensor-wise",kind="gate"} 3
# HELP sim_workers_busy Busy workers.
# TYPE sim_workers_busy gauge
sim_workers_busy 2
`
	if b.String() != want {
		t.Errorf("Prometheus output mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	// Byte stability: a second render of the same state is identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("two renders of the same state differ")
	}
}

func TestWriteJSONStable(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("a_total", "help a").Add(2)
		r.CounterVec("b_total", "", "x").With("v").Inc()
		r.Histogram("h", "", []uint64{1}).Observe(1)
		return r
	}
	var s1, s2 strings.Builder
	if err := build().WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Error("equal registry states encode differently")
	}
	if !strings.HasSuffix(s1.String(), "\n") {
		t.Error("JSON output must end in a newline")
	}
	if !strings.Contains(s1.String(), `"label_values"`) {
		t.Error("labeled child missing label_values")
	}
}

func TestDefaultRegistryResolution(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry must start disabled")
	}
	r := New()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Error("Default did not return the installed registry")
	}
	Default().Counter("via_default_total", "").Inc()
	if got := r.CounterValue("via_default_total"); got != 1 {
		t.Errorf("counter via default = %d, want 1", got)
	}
}

func TestEscaping(t *testing.T) {
	r := New()
	r.CounterVec("esc_total", "help with \\ backslash\nand newline", "l").
		With("quote\" slash\\ nl\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total help with \\ backslash\nand newline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{l="quote\" slash\\ nl\n"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}
