package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, ordered by family
// name and label values so that equal instrument states always encode
// byte-identically (JSON field order follows struct declaration order).
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one instrument family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    string           `json:"kind"`
	Labels  []string         `json:"labels,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one child of a family; exactly one of Counter,
// Gauge and Histogram is set, matching the family kind.
type MetricSnapshot struct {
	LabelValues []string           `json:"label_values,omitempty"`
	Counter     *uint64            `json:"counter,omitempty"`
	Gauge       *int64             `json:"gauge,omitempty"`
	Histogram   *HistogramSnapshot `json:"histogram,omitempty"`
}

// HistogramSnapshot renders buckets cumulatively, Prometheus-style: the
// count of bucket i includes every bucket below it.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     uint64           `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket. The final bucket
// has Inf set instead of an upper bound.
type BucketSnapshot struct {
	LE    uint64 `json:"le,omitempty"`
	Inf   bool   `json:"inf,omitempty"`
	Count uint64 `json:"count"`
}

// Snapshot captures the registry. Individual values are read with
// atomic loads but the snapshot as a whole is not a consistent cut —
// concurrent writers may land between families — which is the usual
// (and here sufficient) monitoring contract. A nil registry yields the
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, f := range r.sortedFamilies() {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind.String(),
			Labels: f.labels,
		}
		for _, c := range f.sortedChildren() {
			m := MetricSnapshot{LabelValues: c.values}
			switch f.kind {
			case KindCounter:
				v := c.counter.Value()
				m.Counter = &v
			case KindGauge:
				v := c.gauge.Value()
				m.Gauge = &v
			case KindHistogram:
				m.Histogram = c.hist.snapshot()
			}
			fs.Metrics = append(fs.Metrics, m)
		}
		s.Families = append(s.Families, fs)
	}
	return s
}

// snapshot reads one histogram into cumulative form.
func (h *Histogram) snapshot() *HistogramSnapshot {
	hs := &HistogramSnapshot{Sum: h.sum.Load()}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		b := BucketSnapshot{Count: cum}
		if i < len(h.bounds) {
			b.LE = h.bounds[i]
		} else {
			b.Inf = true
		}
		hs.Buckets = append(hs.Buckets, b)
	}
	hs.Count = cum
	return hs
}

// WriteJSON writes the registry snapshot as indented JSON — the
// -metrics-out format, designed for offline diffing of two runs.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers followed by one sample line
// per child, histograms expanded into cumulative _bucket/_sum/_count
// series. Output is byte-stable for a given instrument state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, fs := range r.Snapshot().Families {
		if fs.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fs.Name, escapeHelp(fs.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fs.Name, fs.Kind)
		for _, m := range fs.Metrics {
			switch {
			case m.Counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fs.Name, labelSet(fs.Labels, m.LabelValues, "", 0), *m.Counter)
			case m.Gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fs.Name, labelSet(fs.Labels, m.LabelValues, "", 0), *m.Gauge)
			case m.Histogram != nil:
				for _, bk := range m.Histogram.Buckets {
					le := "+Inf"
					if !bk.Inf {
						le = fmt.Sprintf("%d", bk.LE)
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", fs.Name, labelSetLE(fs.Labels, m.LabelValues, le), bk.Count)
				}
				fmt.Fprintf(&b, "%s_sum%s %d\n", fs.Name, labelSet(fs.Labels, m.LabelValues, "", 0), m.Histogram.Sum)
				fmt.Fprintf(&b, "%s_count%s %d\n", fs.Name, labelSet(fs.Labels, m.LabelValues, "", 0), m.Histogram.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelSet renders {k1="v1",k2="v2"} (empty string when unlabeled).
// extraKV/extraUsed exist so labelSetLE can append le without slice
// allocation gymnastics.
func labelSet(names, values []string, extra string, extraUsed int) string {
	if len(names) == 0 && extraUsed == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraUsed != 0 {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// labelSetLE renders the label set with a trailing le="..." pair.
func labelSetLE(names, values []string, le string) string {
	return labelSet(names, values, `le="`+escapeLabel(le)+`"`, 1)
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string per the text exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
