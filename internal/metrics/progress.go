package metrics

import (
	"fmt"
	"strings"
)

// Progress renders the periodic one-line run summary the CLIs print to
// stderr under -v: simulated cycles per second, job completion, an ETA
// extrapolated from job throughput, and the current phase (e.g. which
// table is regenerating). It only reads the registry; the caller owns
// the ticker loop and injects wall-clock timestamps (nanoseconds), so
// this package never touches the wall clock itself — the same division
// of labour as cache.Store.Clock under the nbtilint wallclock rule.
type Progress struct {
	// R is the registry to read; the nil registry renders empty fields.
	R *Registry
	// Cycles names the counter of simulated cycles (noc.MetricCycles).
	Cycles string
	// JobsDone / JobsTotal name the scenario-job counters
	// (sim.MetricJobsDone / sim.MetricJobsTotal).
	JobsDone, JobsTotal string
	// SampleHeap, when true, samples the live heap on every Line via
	// SampleHeapPeak (raising the MetricHeapPeak gauge) and appends the
	// peak to the rendered line.
	SampleHeap bool
	// Phase, when non-nil, supplies the current phase label.
	Phase func() string
	// Extra, when non-nil, supplies a trailing annotation (e.g. the
	// sweep CLIs append lease contention counts); empty adds nothing.
	Extra func() string

	startNS, lastNS int64
	lastCycles      uint64
}

// Start records the run origin; the first Line call measures from here.
func (p *Progress) Start(nowNS int64) {
	p.startNS, p.lastNS = nowNS, nowNS
	p.lastCycles = p.R.CounterValue(p.Cycles)
}

// Line renders one progress line and advances the rate window. The
// cycles/sec figure covers the interval since the previous Line (or
// Start); jobs and ETA cover the whole run.
func (p *Progress) Line(nowNS int64) string {
	cycles := p.R.CounterValue(p.Cycles)
	var rate float64
	if dt := nowNS - p.lastNS; dt > 0 {
		rate = float64(cycles-p.lastCycles) / (float64(dt) / 1e9)
	}
	p.lastNS, p.lastCycles = nowNS, cycles

	var b strings.Builder
	fmt.Fprintf(&b, "%s cycles (%s/s)", fmtCount(cycles), fmtCount(uint64(rate)))
	done := p.R.CounterValue(p.JobsDone)
	total := p.R.CounterValue(p.JobsTotal)
	if total > 0 {
		fmt.Fprintf(&b, ", jobs %d/%d (%d%%)", done, total, 100*done/total)
		if done > 0 && done < total {
			elapsed := nowNS - p.startNS
			etaNS := int64(float64(elapsed) * float64(total-done) / float64(done))
			fmt.Fprintf(&b, ", eta %s", fmtSeconds(etaNS))
		}
	}
	if p.SampleHeap {
		fmt.Fprintf(&b, ", heap %s peak", fmtBytes(SampleHeapPeak(p.R)))
	}
	if p.Phase != nil {
		if ph := p.Phase(); ph != "" {
			fmt.Fprintf(&b, ", %s", ph)
		}
	}
	if p.Extra != nil {
		if ex := p.Extra(); ex != "" {
			fmt.Fprintf(&b, ", %s", ex)
		}
	}
	return b.String()
}

// fmtCount renders a count with k/M/G suffixes, keeping small numbers
// exact.
func fmtCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// fmtBytes renders a byte count with binary suffixes.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtSeconds renders a nanosecond duration as whole seconds or m+s.
func fmtSeconds(ns int64) string {
	s := (ns + 500_000_000) / 1_000_000_000
	if s < 60 {
		return fmt.Sprintf("%ds", s)
	}
	if s < 3600 {
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	}
	return fmt.Sprintf("%dh%02dm", s/3600, (s%3600)/60)
}
