package metrics

import (
	"flag"
	"net/http"
	"os"
)

// CLIFlags is the observability flag surface shared by the run CLIs
// (cmd/nbtisim, cmd/tables, cmd/compare), mirroring how prof.Flags
// packages the profiling flags.
type CLIFlags struct {
	// Monitor is the -monitor listen address (empty = no monitor).
	Monitor string
	// Out is the -metrics-out path for the final JSON snapshot.
	Out string
}

// Register adds -monitor and -metrics-out to fs.
func (f *CLIFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Monitor, "monitor", "",
		"serve a live run monitor (Prometheus /metrics, JSON snapshot, pprof) on this address, e.g. :9090")
	fs.StringVar(&f.Out, "metrics-out", "",
		"write the final metrics registry snapshot to this file as JSON")
}

// Setup enables instrumentation when any flag (or force, used for -v
// progress reporting) asks for it: it installs a fresh default registry
// — which must happen before any instrumented object is built, since
// instruments are resolved at construction time — and starts the
// monitor. debug is mounted under /debug/ (the CLIs pass
// prof.HTTPHandler()); logf receives the monitor's bound address.
//
// The returned finish function stops the monitor and writes the
// -metrics-out snapshot; call it exactly once, after the run.
func (f *CLIFlags) Setup(force bool, debug http.Handler, logf func(format string, args ...any)) (func() error, error) {
	if f.Monitor == "" && f.Out == "" && !force {
		return func() error { return nil }, nil
	}
	reg := New()
	SetDefault(reg)
	var mon *Monitor
	if f.Monitor != "" {
		var err error
		if mon, err = Serve(f.Monitor, reg, debug); err != nil {
			return nil, err
		}
		if logf != nil {
			logf("monitor listening on http://%s", mon.Addr())
		}
	}
	out := f.Out
	return func() error {
		// A final heap sample so the peak gauge reaches the snapshot
		// even when no -v progress ticker sampled during the run.
		SampleHeapPeak(reg)
		// Uninstall the registry so a host process (tests drive run()
		// repeatedly in one binary) returns to the disabled state.
		SetDefault(nil)
		err := mon.Close()
		if out != "" {
			file, ferr := os.Create(out)
			if ferr != nil {
				return ferr
			}
			if werr := reg.WriteJSON(file); werr != nil {
				file.Close()
				return werr
			}
			if cerr := file.Close(); cerr != nil {
				return cerr
			}
		}
		return err
	}, nil
}
