package metrics

import (
	"fmt"
	"net"
	"net/http"
)

// Monitor is a live observability endpoint for a running simulation:
// an HTTP server exposing the registry as Prometheus text (/metrics)
// and JSON (/metrics.json), plus whatever debug handler the caller
// mounts (the CLIs pass prof.HTTPHandler for /debug/pprof/). It serves
// until Close — typically the lifetime of the run.
type Monitor struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; :0 picks a free port) and starts serving
// r in the background. debug, when non-nil, receives every request
// under /debug/.
func Serve(addr string, r *Registry, debug http.Handler) (*Monitor, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: monitor listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	if debug != nil {
		mux.Handle("/debug/", debug)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "nbtinoc run monitor\n\n/metrics       Prometheus text exposition\n/metrics.json  JSON registry snapshot\n/debug/pprof/  live profiling (CPU, heap, goroutines, trace)\n")
	})
	m := &Monitor{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) once the
		// monitor closes; there is nobody left to tell by then.
		_ = m.srv.Serve(ln)
	}()
	return m, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:41231" after
// Serve(":0", ...).
func (m *Monitor) Addr() string { return m.ln.Addr().String() }

// Close stops the server immediately (in-flight scrapes are cut off;
// the monitor dies with the run anyway).
func (m *Monitor) Close() error {
	if m == nil {
		return nil
	}
	return m.srv.Close()
}
