package metrics

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPMetricsWrap(t *testing.T) {
	r := New()
	SetDefault(r)
	defer SetDefault(nil)
	m := NewHTTPMetrics()

	ok := m.Wrap("GET /ok", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("hi")) // implicit 200
	}))
	missing := m.Wrap("GET /missing", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	missing.ServeHTTP(rec, httptest.NewRequest("GET", "/missing", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}

	if got := r.CounterValue(MetricHTTPRequests); got != 4 {
		t.Errorf("total requests = %d, want 4", got)
	}
	snap := r.Snapshot()
	var found bool
	for _, f := range snap.Families {
		if f.Name != MetricHTTPRequests {
			continue
		}
		for _, c := range f.Metrics {
			if len(c.LabelValues) == 2 && c.LabelValues[0] == "GET /ok" && c.LabelValues[1] == "200" {
				found = true
				if *c.Counter != 3 {
					t.Errorf("GET /ok 200 = %d, want 3", *c.Counter)
				}
			}
		}
	}
	if !found {
		t.Error("no route/code child for GET /ok 200")
	}
	if got := r.GaugeValue(MetricHTTPInFlight); got != 0 {
		t.Errorf("in-flight gauge settled at %d, want 0", got)
	}
}

// TestHTTPMetricsInert: without a registry the middleware is a
// pass-through, not a panic.
func TestHTTPMetricsInert(t *testing.T) {
	SetDefault(nil)
	m := NewHTTPMetrics()
	h := m.Wrap("GET /", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n    int
		want string
	}{{200, "200"}, {404, "404"}, {0, "0"}, {-5, "0"}, {7, "7"}} {
		if got := itoa(c.n); got != c.want {
			t.Errorf("itoa(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
