package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMonitorServes(t *testing.T) {
	r := New()
	r.Counter("mon_total", "monitored").Add(7)
	debug := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "debug here")
	})
	m, err := Serve("127.0.0.1:0", r, debug)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	base := "http://" + m.Addr()

	if code, body := get(t, base+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "mon_total 7") {
		t.Errorf("/metrics: code %d, body %q", code, body)
	}
	if code, body := get(t, base+"/metrics.json"); code != http.StatusOK ||
		!strings.Contains(body, `"mon_total"`) {
		t.Errorf("/metrics.json: code %d, body %q", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || body != "debug here" {
		t.Errorf("/debug/: code %d, body %q", code, body)
	}
	if code, body := get(t, base+"/"); code != http.StatusOK ||
		!strings.Contains(body, "run monitor") {
		t.Errorf("index: code %d, body %q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: code %d, want 404", code)
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	// Nil monitor close is a no-op (the CLIs close unconditionally).
	var nilMon *Monitor
	if err := nilMon.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestProgressLine(t *testing.T) {
	r := New()
	cycles := r.Counter("p_cycles_total", "")
	done := r.Counter("p_done_total", "")
	total := r.Counter("p_total_total", "")
	phase := "table 2"
	p := &Progress{
		R:         r,
		Cycles:    "p_cycles_total",
		JobsDone:  "p_done_total",
		JobsTotal: "p_total_total",
		Phase:     func() string { return phase },
	}
	p.Start(0)
	cycles.Add(500_000)
	total.Add(10)
	done.Add(5)
	// One second elapsed: 500k cycles/s, half the jobs done after 1s
	// means another ~1s to go.
	line := p.Line(1_000_000_000)
	for _, want := range []string{"500k cycles", "(500k/s)", "jobs 5/10 (50%)", "eta 1s", "table 2"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// The rate window advances: no new cycles in the next second = 0/s.
	line = p.Line(2_000_000_000)
	if !strings.Contains(line, "(0/s)") {
		t.Errorf("line %q should show a 0/s window rate", line)
	}
	// Jobs complete: no ETA.
	done.Add(5)
	line = p.Line(3_000_000_000)
	if strings.Contains(line, "eta") {
		t.Errorf("line %q must drop the ETA once jobs finish", line)
	}

	// A progress over the nil registry renders the empty state rather
	// than panicking (the -v path without instrumentation).
	empty := &Progress{R: nil, Cycles: "x", JobsDone: "y", JobsTotal: "z"}
	empty.Start(0)
	if line := empty.Line(1_000_000_000); !strings.Contains(line, "0 cycles") {
		t.Errorf("nil-registry line %q", line)
	}
}
