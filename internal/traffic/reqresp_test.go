package traffic

import (
	"testing"

	"nbtinoc/internal/noc"
)

func TestReqRespValidate(t *testing.T) {
	if err := DefaultReqResp(4, 4, 0.05, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*ReqRespConfig){
		func(c *ReqRespConfig) { c.Width = 0 },
		func(c *ReqRespConfig) { c.Rate = -1 },
		func(c *ReqRespConfig) { c.Rate = 2 },
		func(c *ReqRespConfig) { c.RespVNet = c.ReqVNet },
		func(c *ReqRespConfig) { c.ReqVNet = -1 },
		func(c *ReqRespConfig) { c.ReqLen = 0 },
		func(c *ReqRespConfig) { c.RespLen = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultReqResp(4, 4, 0.05, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewReqResp(ReqRespConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestReqRespOpenLoopOnly(t *testing.T) {
	g, err := NewReqResp(DefaultReqResp(2, 2, 0.2, 3))
	if err != nil {
		t.Fatal(err)
	}
	events := collect(g, 5000)
	if len(events) == 0 {
		t.Fatal("no requests emitted")
	}
	for _, e := range events {
		if e.VNet != 0 || e.Len != 1 {
			t.Fatalf("unexpected open-loop packet: %+v", e)
		}
	}
	if g.Responses() != 0 || g.PendingResponses() != 0 {
		t.Error("responses without deliveries")
	}
}

func TestReqRespClosedLoop(t *testing.T) {
	cfg := DefaultReqResp(2, 2, 0.2, 3)
	cfg.ServiceLatency = 5
	g, err := NewReqResp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []Event
	deliverAll := func(c uint64) Emit {
		return func(src, dst noc.NodeID, vnet, l int) {
			emitted = append(emitted, Event{Cycle: c, Src: src, Dst: dst, VNet: vnet, Len: l})
			// Simulate instant delivery of every request.
			if vnet == cfg.ReqVNet {
				g.OnDeliver(src, dst, vnet, c)
			}
		}
	}
	for c := uint64(0); c < 200; c++ {
		g.Tick(c, deliverAll(c))
	}
	if g.Requests() == 0 {
		t.Fatal("no requests")
	}
	// Transaction conservation: every delivered request is either
	// answered or pending.
	if g.Responses()+uint64(g.PendingResponses()) != g.Requests() {
		t.Fatalf("responses %d + pending %d != requests %d",
			g.Responses(), g.PendingResponses(), g.Requests())
	}
	if g.Responses() == 0 {
		t.Fatal("no responses emitted")
	}
	// Each response reverses its request's direction, uses the response
	// vnet and the data length, and respects the service latency.
	reqs := map[[2]noc.NodeID][]uint64{}
	for _, e := range emitted {
		if e.VNet == cfg.ReqVNet {
			reqs[[2]noc.NodeID{e.Src, e.Dst}] = append(reqs[[2]noc.NodeID{e.Src, e.Dst}], e.Cycle)
		}
	}
	for _, e := range emitted {
		if e.VNet != cfg.RespVNet {
			continue
		}
		if e.Len != cfg.RespLen {
			t.Fatalf("response length %d, want %d", e.Len, cfg.RespLen)
		}
		key := [2]noc.NodeID{e.Dst, e.Src} // original request direction
		times := reqs[key]
		if len(times) == 0 {
			t.Fatalf("orphan response %+v", e)
		}
		if e.Cycle < times[0]+cfg.ServiceLatency {
			t.Fatalf("response before service latency: %+v vs request @%d", e, times[0])
		}
		reqs[key] = times[1:]
	}
}

func TestReqRespIgnoresResponseDeliveries(t *testing.T) {
	g, err := NewReqResp(DefaultReqResp(2, 2, 0.2, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.OnDeliver(0, 1, 1, 10) // a response arriving must not spawn traffic
	if g.PendingResponses() != 0 {
		t.Fatal("response delivery scheduled another response")
	}
}

func TestReqRespPatterns(t *testing.T) {
	for _, pat := range []Pattern{Uniform, Neighbor, Hotspot} {
		cfg := DefaultReqResp(4, 4, 0.3, 7)
		cfg.Pattern = pat
		g, err := NewReqResp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range collect(g, 500) {
			if e.Src == e.Dst || int(e.Dst) < 0 || int(e.Dst) >= 16 {
				t.Fatalf("%v: bad destination %+v", pat, e)
			}
			if pat == Hotspot && e.Dst != 0 && e.Src != 0 {
				t.Fatalf("hotspot request missed node 0: %+v", e)
			}
		}
	}
}
