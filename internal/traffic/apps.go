package traffic

import (
	"fmt"
	"sort"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/rng"
)

// DestKind is the spatial communication structure of one application
// phase.
type DestKind int

// Phase destination structures, chosen to mirror the dominant
// communication pattern of each benchmark class.
const (
	// DestUniformKind spreads traffic uniformly (sharing-heavy phases).
	DestUniformKind DestKind = iota
	// DestNeighborKind sends to mesh-adjacent tiles (stencil/pipeline).
	DestNeighborKind
	// DestButterflyKind sends to src XOR 2^k partners, rotating k per
	// phase repetition (FFT/radix exchange steps).
	DestButterflyKind
	// DestRingKind sends around a ring (systolic/water-style exchange).
	DestRingKind
	// DestMasterKind converges on node 0 (barrier/master phases and
	// directory-home hotspots).
	DestMasterKind
	// DestTransposeKind sends to the mesh-transposed tile (blocked
	// linear algebra).
	DestTransposeKind
)

// Phase is one communication phase of an application model.
type Phase struct {
	// Cycles is the phase duration.
	Cycles uint64
	// Rate is the average injection rate in flits/cycle/node while ON.
	Rate float64
	// Kind is the spatial pattern.
	Kind DestKind
	// ShortFrac is the fraction of packets that are short control
	// packets (1 flit, request-like); the rest are DataLen data packets
	// (response-like).
	ShortFrac float64
	// POnOff and POffOn are the per-cycle transition probabilities of
	// the ON/OFF burstiness modulation; both zero disables modulation
	// (always ON).
	POnOff, POffOn float64
}

// AppProfile is a named sequence of phases, cycled indefinitely.
type AppProfile struct {
	Name   string
	Phases []Phase
	// DataLen is the long-packet length in flits (coherence data
	// response: head + address + 64B line on a 64-bit flit ≈ 5 flits).
	DataLen int
}

// profiles returns the built-in benchmark substitutes. Rates and phase
// structures are chosen per the benchmarks' published communication
// behaviour; WCET kernels are compute-bound and nearly silent.
func profiles() []AppProfile {
	return []AppProfile{
		{Name: "fft", DataLen: 5, Phases: []Phase{
			{Cycles: 3000, Rate: 0.02, Kind: DestUniformKind, ShortFrac: 0.6, POnOff: 0.01, POffOn: 0.05},
			{Cycles: 2000, Rate: 0.22, Kind: DestButterflyKind, ShortFrac: 0.3, POnOff: 0.02, POffOn: 0.2},
			{Cycles: 1000, Rate: 0.05, Kind: DestMasterKind, ShortFrac: 0.8, POnOff: 0.05, POffOn: 0.1},
		}},
		{Name: "lu", DataLen: 5, Phases: []Phase{
			{Cycles: 4000, Rate: 0.10, Kind: DestNeighborKind, ShortFrac: 0.4, POnOff: 0.01, POffOn: 0.1},
			{Cycles: 1500, Rate: 0.04, Kind: DestTransposeKind, ShortFrac: 0.5, POnOff: 0.02, POffOn: 0.1},
		}},
		{Name: "radix", DataLen: 5, Phases: []Phase{
			{Cycles: 2500, Rate: 0.03, Kind: DestUniformKind, ShortFrac: 0.7, POnOff: 0.02, POffOn: 0.05},
			{Cycles: 1500, Rate: 0.28, Kind: DestButterflyKind, ShortFrac: 0.2, POnOff: 0.03, POffOn: 0.3},
		}},
		{Name: "barnes", DataLen: 5, Phases: []Phase{
			{Cycles: 3500, Rate: 0.08, Kind: DestNeighborKind, ShortFrac: 0.5, POnOff: 0.02, POffOn: 0.08},
			{Cycles: 1500, Rate: 0.12, Kind: DestMasterKind, ShortFrac: 0.6, POnOff: 0.03, POffOn: 0.1},
		}},
		{Name: "ocean", DataLen: 5, Phases: []Phase{
			{Cycles: 5000, Rate: 0.14, Kind: DestNeighborKind, ShortFrac: 0.35, POnOff: 0.01, POffOn: 0.15},
			{Cycles: 1000, Rate: 0.05, Kind: DestUniformKind, ShortFrac: 0.5, POnOff: 0.02, POffOn: 0.1},
		}},
		{Name: "water", DataLen: 5, Phases: []Phase{
			{Cycles: 4000, Rate: 0.07, Kind: DestRingKind, ShortFrac: 0.45, POnOff: 0.015, POffOn: 0.1},
			{Cycles: 1200, Rate: 0.03, Kind: DestMasterKind, ShortFrac: 0.7, POnOff: 0.03, POffOn: 0.08},
		}},
		{Name: "cholesky", DataLen: 5, Phases: []Phase{
			{Cycles: 3000, Rate: 0.09, Kind: DestTransposeKind, ShortFrac: 0.4, POnOff: 0.02, POffOn: 0.1},
			{Cycles: 2000, Rate: 0.04, Kind: DestUniformKind, ShortFrac: 0.6, POnOff: 0.02, POffOn: 0.06},
		}},
		{Name: "raytrace", DataLen: 5, Phases: []Phase{
			{Cycles: 6000, Rate: 0.05, Kind: DestUniformKind, ShortFrac: 0.55, POnOff: 0.01, POffOn: 0.04},
		}},
		{Name: "fmm", DataLen: 5, Phases: []Phase{
			{Cycles: 2500, Rate: 0.06, Kind: DestNeighborKind, ShortFrac: 0.5, POnOff: 0.02, POffOn: 0.08},
			{Cycles: 1500, Rate: 0.11, Kind: DestUniformKind, ShortFrac: 0.4, POnOff: 0.02, POffOn: 0.12},
			{Cycles: 800, Rate: 0.04, Kind: DestMasterKind, ShortFrac: 0.7, POnOff: 0.04, POffOn: 0.08},
		}},
		{Name: "radiosity", DataLen: 5, Phases: []Phase{
			{Cycles: 4500, Rate: 0.07, Kind: DestUniformKind, ShortFrac: 0.5, POnOff: 0.015, POffOn: 0.06},
			{Cycles: 1000, Rate: 0.13, Kind: DestMasterKind, ShortFrac: 0.55, POnOff: 0.03, POffOn: 0.15},
		}},
		{Name: "volrend", DataLen: 5, Phases: []Phase{
			{Cycles: 3500, Rate: 0.04, Kind: DestUniformKind, ShortFrac: 0.6, POnOff: 0.01, POffOn: 0.05},
			{Cycles: 1200, Rate: 0.09, Kind: DestNeighborKind, ShortFrac: 0.45, POnOff: 0.02, POffOn: 0.1},
		}},
		{Name: "water-spatial", DataLen: 5, Phases: []Phase{
			{Cycles: 3800, Rate: 0.06, Kind: DestNeighborKind, ShortFrac: 0.5, POnOff: 0.015, POffOn: 0.09},
			{Cycles: 1000, Rate: 0.03, Kind: DestRingKind, ShortFrac: 0.65, POnOff: 0.03, POffOn: 0.07},
		}},
		// WCET kernels: single-core compute loops; only sporadic memory
		// traffic to the directory home.
		{Name: "wcet-crc", DataLen: 5, Phases: []Phase{
			{Cycles: 5000, Rate: 0.008, Kind: DestMasterKind, ShortFrac: 0.8, POnOff: 0.05, POffOn: 0.02},
		}},
		{Name: "wcet-fir", DataLen: 5, Phases: []Phase{
			{Cycles: 5000, Rate: 0.012, Kind: DestMasterKind, ShortFrac: 0.75, POnOff: 0.04, POffOn: 0.03},
		}},
		{Name: "wcet-matmult", DataLen: 5, Phases: []Phase{
			{Cycles: 5000, Rate: 0.02, Kind: DestNeighborKind, ShortFrac: 0.6, POnOff: 0.03, POffOn: 0.05},
		}},
		{Name: "wcet-bsort", DataLen: 5, Phases: []Phase{
			{Cycles: 5000, Rate: 0.006, Kind: DestMasterKind, ShortFrac: 0.85, POnOff: 0.06, POffOn: 0.02},
		}},
		{Name: "wcet-qsort", DataLen: 5, Phases: []Phase{
			{Cycles: 4000, Rate: 0.01, Kind: DestMasterKind, ShortFrac: 0.8, POnOff: 0.05, POffOn: 0.03},
			{Cycles: 1000, Rate: 0.03, Kind: DestUniformKind, ShortFrac: 0.6, POnOff: 0.04, POffOn: 0.05},
		}},
		{Name: "wcet-adpcm", DataLen: 5, Phases: []Phase{
			{Cycles: 6000, Rate: 0.015, Kind: DestNeighborKind, ShortFrac: 0.7, POnOff: 0.03, POffOn: 0.04},
		}},
	}
}

// ProfileNames returns the built-in benchmark names, sorted.
func ProfileNames() []string {
	ps := profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// ProfileByName returns the built-in profile with the given name.
func ProfileByName(name string) (AppProfile, error) {
	for _, p := range profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return AppProfile{}, fmt.Errorf("traffic: unknown benchmark %q", name)
}

// nodeState is the per-core generator state of an application mix.
type nodeState struct {
	profile   AppProfile
	phaseIdx  int
	phaseLeft uint64
	phaseRep  int // total phases entered, drives butterfly stage rotation
	on        bool
}

// AppMix drives one benchmark per core, mimicking the paper's Table IV
// methodology: a random benchmark is assigned to each core of the
// architecture and each runs its own phase schedule.
type AppMix struct {
	width, height int
	vnet          int
	nodes         []nodeState
	src           *rng.Source
	name          string
}

// NewAppMix assigns benchmarks[i] to core i (len must equal width*height)
// and seeds the stochastic parts of the generators.
func NewAppMix(width, height int, benchmarks []string, vnet int, seed uint64) (*AppMix, error) {
	n := width * height
	if len(benchmarks) != n {
		return nil, fmt.Errorf("traffic: %d benchmarks for %d cores", len(benchmarks), n)
	}
	m := &AppMix{
		width:  width,
		height: height,
		vnet:   vnet,
		nodes:  make([]nodeState, n),
		src:    rng.New(seed),
		name:   "app-mix",
	}
	for i, b := range benchmarks {
		p, err := ProfileByName(b)
		if err != nil {
			return nil, err
		}
		m.nodes[i] = nodeState{
			profile:   p,
			phaseLeft: p.Phases[0].Cycles,
			on:        true,
		}
	}
	return m, nil
}

// NewRandomAppMix draws one benchmark per core uniformly from the
// built-in profiles — the paper's "randomly picked set of benchmarks,
// one for each core".
func NewRandomAppMix(width, height, vnet int, seed uint64) (*AppMix, error) {
	names := ProfileNames()
	src := rng.New(seed)
	bench := make([]string, width*height)
	for i := range bench {
		bench[i] = names[src.Intn(len(names))]
	}
	return NewAppMix(width, height, bench, vnet, src.Uint64())
}

// Name implements Generator.
func (m *AppMix) Name() string { return m.name }

// Benchmarks returns the per-core benchmark assignment.
func (m *AppMix) Benchmarks() []string {
	out := make([]string, len(m.nodes))
	for i := range m.nodes {
		out[i] = m.nodes[i].profile.Name
	}
	return out
}

// Tick implements Generator.
func (m *AppMix) Tick(cycle uint64, emit Emit) {
	for i := range m.nodes {
		m.tickNode(noc.NodeID(i), &m.nodes[i], emit)
	}
}

func (m *AppMix) tickNode(id noc.NodeID, st *nodeState, emit Emit) {
	ph := &st.profile.Phases[st.phaseIdx]
	// Phase scheduling.
	if st.phaseLeft == 0 {
		st.phaseIdx = (st.phaseIdx + 1) % len(st.profile.Phases)
		st.phaseRep++
		ph = &st.profile.Phases[st.phaseIdx]
		st.phaseLeft = ph.Cycles
	}
	st.phaseLeft--
	// ON/OFF burst modulation.
	if ph.POnOff > 0 || ph.POffOn > 0 {
		if st.on {
			if m.src.Bool(ph.POnOff) {
				st.on = false
			}
		} else if m.src.Bool(ph.POffOn) {
			st.on = true
		}
	} else {
		st.on = true
	}
	if !st.on {
		return
	}
	// Injection: rate is in flits/cycle; convert using the expected
	// packet length of the short/long mix.
	expLen := ph.ShortFrac*1 + (1-ph.ShortFrac)*float64(st.profile.DataLen)
	if !m.src.Bool(ph.Rate / expLen) {
		return
	}
	dst := m.destination(id, st, ph.Kind)
	if dst == id {
		return
	}
	length := st.profile.DataLen
	if m.src.Bool(ph.ShortFrac) {
		length = 1
	}
	emit(id, dst, m.vnet, length)
}

func (m *AppMix) destination(src noc.NodeID, st *nodeState, kind DestKind) noc.NodeID {
	n := m.width * m.height
	switch kind {
	case DestNeighborKind:
		c := noc.CoordOf(src, m.width)
		// Pick one of the existing mesh neighbours uniformly.
		var opts []noc.Coord
		if c.X > 0 {
			opts = append(opts, noc.Coord{X: c.X - 1, Y: c.Y})
		}
		if c.X < m.width-1 {
			opts = append(opts, noc.Coord{X: c.X + 1, Y: c.Y})
		}
		if c.Y > 0 {
			opts = append(opts, noc.Coord{X: c.X, Y: c.Y - 1})
		}
		if c.Y < m.height-1 {
			opts = append(opts, noc.Coord{X: c.X, Y: c.Y + 1})
		}
		return opts[m.src.Intn(len(opts))].NodeOf(m.width)
	case DestButterflyKind:
		if n&(n-1) != 0 || n < 2 {
			return m.uniform(src, n)
		}
		bit := st.phaseRep % log2(n)
		return noc.NodeID(int(src) ^ (1 << uint(bit)))
	case DestRingKind:
		return noc.NodeID((int(src) + 1) % n)
	case DestMasterKind:
		return 0
	case DestTransposeKind:
		if m.width != m.height {
			return m.uniform(src, n)
		}
		c := noc.CoordOf(src, m.width)
		return noc.Coord{X: c.Y, Y: c.X}.NodeOf(m.width)
	default:
		return m.uniform(src, n)
	}
}

func (m *AppMix) uniform(src noc.NodeID, n int) noc.NodeID {
	d := m.src.Intn(n - 1)
	if d >= int(src) {
		d++
	}
	return noc.NodeID(d)
}
