package traffic

import (
	"errors"
	"fmt"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/rng"
)

// DeliveryListener is implemented by closed-loop generators that react
// to packet deliveries (the harness wires it to noc's delivery hook).
type DeliveryListener interface {
	// OnDeliver is called once per delivered packet.
	OnDeliver(src, dst noc.NodeID, vnet int, cycle uint64)
}

// ReqRespConfig parameterises the closed-loop request/response
// generator, which mimics the structure of the paper's MOESI-token
// coherence traffic: short request packets on one vnet trigger long
// data responses on another after a service latency, with the two
// message classes segregated to avoid protocol deadlock.
type ReqRespConfig struct {
	// Width and Height are the mesh dimensions.
	Width, Height int
	// Rate is the request injection rate in requests/cycle/node.
	Rate float64
	// Pattern selects the spatial distribution of request targets.
	Pattern Pattern
	// ReqVNet and RespVNet are the vnets of the two message classes;
	// they must differ.
	ReqVNet, RespVNet int
	// ReqLen and RespLen are the packet lengths (flits); a coherence
	// request is typically a single flit, the response a cache line.
	ReqLen, RespLen int
	// ServiceLatency is the cycles between a request's delivery and the
	// emission of its response (directory/cache lookup time).
	ServiceLatency uint64
	// Seed drives the Bernoulli request process.
	Seed uint64
}

// DefaultReqResp returns a coherence-like setup: 1-flit requests,
// 5-flit responses (head + 64-byte line on 64-bit flits), 20-cycle
// service latency.
func DefaultReqResp(width, height int, rate float64, seed uint64) ReqRespConfig {
	return ReqRespConfig{
		Width: width, Height: height,
		Rate:    rate,
		Pattern: Uniform,
		ReqVNet: 0, RespVNet: 1,
		ReqLen: 1, RespLen: 5,
		ServiceLatency: 20,
		Seed:           seed,
	}
}

// Validate reports whether the configuration is usable.
func (c ReqRespConfig) Validate() error {
	switch {
	case c.Width < 1 || c.Height < 1 || c.Width*c.Height < 2:
		return fmt.Errorf("traffic: bad mesh %dx%d", c.Width, c.Height)
	case c.Rate < 0 || c.Rate > 1:
		return errors.New("traffic: request rate outside [0, 1]")
	case c.ReqVNet == c.RespVNet:
		return errors.New("traffic: request and response vnets must differ (protocol deadlock)")
	case c.ReqVNet < 0 || c.RespVNet < 0:
		return errors.New("traffic: negative vnet")
	case c.ReqLen < 1 || c.RespLen < 1:
		return errors.New("traffic: packet lengths must be >= 1")
	}
	return nil
}

// pendingResp is a response awaiting its emission cycle.
type pendingResp struct {
	due      uint64
	src, dst noc.NodeID
}

// ReqResp is the closed-loop request/response generator. It implements
// both Generator (open-loop request side plus due-response emission)
// and DeliveryListener (requests arriving at their destination schedule
// responses). The request side is skip-sampled per node exactly like
// Synthetic — geometric inter-arrival gaps on per-node rng streams — and
// NextEventCycle folds in the earliest scheduled response, so the
// generator also implements EventHorizon.
type ReqResp struct {
	cfg ReqRespConfig
	// reqNodes/reqHeap mirror Synthetic's skip-sampled arrival state.
	reqNodes []synNode
	reqHeap  []int32
	// pending is a FIFO of scheduled responses; ServiceLatency is
	// constant so due times are naturally ordered.
	pending []pendingResp
	// counters for tests and reports.
	requests, responses uint64
}

// NewReqResp builds the generator.
func NewReqResp(cfg ReqRespConfig) (*ReqResp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Width * cfg.Height
	g := &ReqResp{
		cfg:      cfg,
		reqNodes: make([]synNode, n),
		reqHeap:  make([]int32, n),
	}
	for i := range g.reqNodes {
		nd := &g.reqNodes[i]
		nd.src = *rng.NewStream(cfg.Seed, uint64(i))
		if gap := nd.src.Geometric(cfg.Rate); gap == rng.Never {
			nd.next = rng.Never
		} else {
			nd.next = gap - 1
		}
		g.reqHeap[i] = int32(i)
	}
	for i := n/2 - 1; i >= 0; i-- {
		g.siftDown(i)
	}
	return g, nil
}

func (g *ReqResp) heapLess(a, b int32) bool {
	na, nb := g.reqNodes[a].next, g.reqNodes[b].next
	return na < nb || (na == nb && a < b)
}

func (g *ReqResp) siftDown(i int) {
	h := g.reqHeap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && g.heapLess(h[r], h[l]) {
			m = r
		}
		if !g.heapLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Name implements Generator.
func (g *ReqResp) Name() string {
	return fmt.Sprintf("req-resp-%v-inj%.2f", g.cfg.Pattern, g.cfg.Rate)
}

// Requests returns the number of requests emitted so far.
func (g *ReqResp) Requests() uint64 { return g.requests }

// Responses returns the number of responses emitted so far.
func (g *ReqResp) Responses() uint64 { return g.responses }

// PendingResponses returns the number of scheduled, un-emitted
// responses.
func (g *ReqResp) PendingResponses() int { return len(g.pending) }

// NextEventCycle implements EventHorizon: the earlier of the next due
// response and the next skip-sampled request arrival.
func (g *ReqResp) NextEventCycle(now uint64) uint64 {
	next := g.reqNodes[g.reqHeap[0]].next
	if len(g.pending) > 0 && g.pending[0].due < next {
		next = g.pending[0].due
	}
	if next < now {
		return now
	}
	return next
}

// Tick implements Generator: emit due responses first, then new
// requests.
func (g *ReqResp) Tick(cycle uint64, emit Emit) {
	for len(g.pending) > 0 && g.pending[0].due <= cycle {
		p := g.pending[0]
		copy(g.pending, g.pending[1:])
		g.pending = g.pending[:len(g.pending)-1]
		emit(p.src, p.dst, g.cfg.RespVNet, g.cfg.RespLen)
		g.responses++
	}
	for {
		i := g.reqHeap[0]
		nd := &g.reqNodes[i]
		if nd.next > cycle {
			return
		}
		dst := g.dest(noc.NodeID(i), &nd.src)
		if dst != noc.NodeID(i) {
			emit(noc.NodeID(i), dst, g.cfg.ReqVNet, g.cfg.ReqLen)
			g.requests++
		}
		nd.next = satAdd(nd.next, nd.src.Geometric(g.cfg.Rate))
		g.siftDown(0)
	}
}

// OnDeliver implements DeliveryListener: a delivered request schedules
// its response from the serving node back to the requester.
func (g *ReqResp) OnDeliver(src, dst noc.NodeID, vnet int, cycle uint64) {
	if vnet != g.cfg.ReqVNet {
		return // responses complete the transaction
	}
	g.pending = append(g.pending, pendingResp{
		due: cycle + g.cfg.ServiceLatency,
		src: dst, // the server replies
		dst: src,
	})
}

// dest picks a request target using the configured pattern, drawing any
// randomness from the requesting node's own stream.
func (g *ReqResp) dest(src noc.NodeID, r *rng.Source) noc.NodeID {
	n := g.cfg.Width * g.cfg.Height
	switch g.cfg.Pattern {
	case Neighbor:
		c := noc.CoordOf(src, g.cfg.Width)
		c.X = (c.X + 1) % g.cfg.Width
		return c.NodeOf(g.cfg.Width)
	case Hotspot:
		return 0
	default:
		return uniformDest(r, src, n)
	}
}
