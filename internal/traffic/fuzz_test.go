package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace checks the trace parser never panics and that anything
// it accepts survives a write/read round trip unchanged.
func FuzzReadTrace(f *testing.F) {
	f.Add("# nbtinoc trace v1\n1 0 1 0 4\n2 1 0 0 1\n")
	f.Add("")
	f.Add("1 2 3\n")
	f.Add("9999999999999999999999 0 1 0 4\n")
	f.Add("1 -5 1 0 4\n")
	f.Add("5 0 1 0 4\n3 1 0 0 4\n") // out of order
	f.Add(strings.Repeat("1 0 1 0 4\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, events); err != nil {
			t.Fatalf("accepted trace failed to serialise: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed length: %d -> %d", len(events), len(back))
		}
		for i := range events {
			if back[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], back[i])
			}
		}
	})
}
