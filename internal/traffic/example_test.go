package traffic_test

import (
	"fmt"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/traffic"
)

// A synthetic generator emits Bernoulli packet injections; destinations
// follow the configured spatial pattern.
func ExampleSynthetic() {
	gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
		Pattern:   traffic.Transpose,
		Width:     4,
		Height:    4,
		Rate:      1, // one flit per cycle per node -> a packet every 4th cycle
		PacketLen: 4,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	count := 0
	for cycle := uint64(0); cycle < 4 && count < 3; cycle++ {
		gen.Tick(cycle, func(src, dst noc.NodeID, vnet, length int) {
			if count < 3 {
				fmt.Printf("packet %v -> %v (%d flits)\n", src, dst, length)
			}
			count++
		})
	}
	fmt.Println("pattern:", gen.Name())
	// Output:
	// packet 3 -> 12 (4 flits)
	// packet 4 -> 1 (4 flits)
	// packet 7 -> 13 (4 flits)
	// pattern: transpose-inj1.00
}

// Traces round-trip through the text format.
func ExampleWriteTrace() {
	events := []traffic.Event{
		{Cycle: 3, Src: 0, Dst: 5, VNet: 0, Len: 4},
		{Cycle: 9, Src: 2, Dst: 1, VNet: 0, Len: 1},
	}
	var buf exampleBuffer
	if err := traffic.WriteTrace(&buf, events); err != nil {
		panic(err)
	}
	fmt.Print(buf.s)
	// Output:
	// # nbtinoc trace v1: cycle src dst vnet len
	// 3 0 5 0 4
	// 9 2 1 0 1
}

// exampleBuffer is a minimal io.Writer for the example.
type exampleBuffer struct{ s string }

func (b *exampleBuffer) Write(p []byte) (int, error) {
	b.s += string(p)
	return len(p), nil
}
