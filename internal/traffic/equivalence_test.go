package traffic

import (
	"math"
	"testing"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/rng"
)

// collectSkipping drives g via NextEventCycle, ticking only at cycles
// the generator claims are eventful, up to the cycle limit.
func collectSkipping(g Generator, cycles uint64) []Event {
	h := g.(EventHorizon)
	var out []Event
	c := uint64(0)
	for c < cycles {
		next := h.NextEventCycle(c)
		if next >= cycles || next == rng.Never {
			return out
		}
		c = next
		g.Tick(c, func(src, dst noc.NodeID, vnet, length int) {
			out = append(out, Event{Cycle: c, Src: src, Dst: dst, VNet: vnet, Len: length})
		})
		c++
	}
	return out
}

func synCfg(seed uint64) SyntheticConfig {
	return SyntheticConfig{
		Pattern: Uniform, Width: 4, Height: 4, Rate: 0.1, PacketLen: 4, Seed: seed,
	}
}

// The per-cycle Tick sweep and the NextEventCycle-driven skip schedule
// must produce the identical event stream: fast-forwarding over cycles
// the horizon declares eventless loses nothing.
func TestSyntheticSkipEquivalence(t *testing.T) {
	a, err := NewSynthetic(synCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSynthetic(synCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 20000
	dense := collect(a, cycles)
	sparse := collectSkipping(b, cycles)
	if len(dense) != len(sparse) {
		t.Fatalf("dense emitted %d events, skip-driven %d", len(dense), len(sparse))
	}
	for i := range dense {
		if dense[i] != sparse[i] {
			t.Fatalf("event %d differs: dense %+v vs skip %+v", i, dense[i], sparse[i])
		}
	}
}

// NextEventCycle must be a true horizon: no emissions strictly before
// it, and it must not advance generator state when polled repeatedly.
func TestSyntheticHorizonIsSound(t *testing.T) {
	g, err := NewSynthetic(synCfg(22))
	if err != nil {
		t.Fatal(err)
	}
	var c uint64
	for iter := 0; iter < 200; iter++ {
		next := g.NextEventCycle(c)
		if next < c {
			t.Fatalf("horizon went backwards: NextEventCycle(%d) = %d", c, next)
		}
		if again := g.NextEventCycle(c); again != next {
			t.Fatalf("polling advanced state: %d then %d", next, again)
		}
		// Ticking any cycle strictly before the horizon must emit nothing.
		for probe := c; probe < next && probe < c+5; probe++ {
			g.Tick(probe, func(src, dst noc.NodeID, vnet, length int) {
				t.Fatalf("emission at %d before horizon %d", probe, next)
			})
		}
		emitted := false
		g.Tick(next, func(src, dst noc.NodeID, vnet, length int) { emitted = true })
		// A horizon cycle may still emit nothing visible (self-addressed
		// drop), so only the ordering is checked, not emission itself.
		_ = emitted
		c = next + 1
	}
}

// Statistical equivalence with the Bernoulli process the paper
// specifies: per-node packet-start counts over T cycles must match the
// Binomial(T, rate/len) expectation, and per-node inter-arrival gaps
// must have the geometric mean 1/p.
func TestSyntheticStatisticalEquivalence(t *testing.T) {
	cfg := synCfg(23)
	g, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 200000
	p := cfg.Rate / float64(cfg.PacketLen)
	n := cfg.Width * cfg.Height

	// Count packet starts per node, including self-addressed drops: walk
	// the arrival process directly so the Bernoulli comparison is exact.
	starts := make([]int, n)
	var gapSum float64
	var gapCount int
	for i := 0; i < n; i++ {
		src := rng.NewStream(cfg.Seed, uint64(i))
		c := src.Geometric(p) - 1
		prev := int64(-1)
		for c < cycles {
			starts[i]++
			if prev >= 0 {
				gapSum += float64(int64(c) - prev)
				gapCount++
			}
			prev = int64(c)
			// Skip the destination draws the generator makes; gap
			// statistics only need the arrival stream. Reproduce them so
			// the stream position matches the real generator.
			uniformDest(src, noc.NodeID(i), n)
			c += src.Geometric(p)
		}
	}

	want := float64(cycles) * p
	sd := math.Sqrt(float64(cycles) * p * (1 - p))
	for i, s := range starts {
		if math.Abs(float64(s)-want) > 4*sd {
			t.Errorf("node %d: %d starts, want %.0f +- %.0f (4 sigma)", i, s, want, 4*sd)
		}
	}
	meanGap := gapSum / float64(gapCount)
	// Mean inter-arrival of a Bernoulli(p) process is 1/p; allow 4 sigma
	// of the pooled sample mean (gap SD is sqrt(1-p)/p).
	tol := 4 * math.Sqrt(1-p) / p / math.Sqrt(float64(gapCount))
	if math.Abs(meanGap-1/p) > tol {
		t.Errorf("mean inter-arrival %.2f, want %.2f +- %.2f", meanGap, 1/p, tol)
	}

	// And the generator proper emits the same aggregate load.
	events := collect(g, cycles)
	flits := 0
	for _, e := range events {
		flits += e.Len
	}
	got := float64(flits) / float64(cycles) / float64(n)
	if math.Abs(got-cfg.Rate) > 0.01 {
		t.Errorf("offered load %.4f flits/cycle/node, want ~%.2f", got, cfg.Rate)
	}
}

// Per-node streams must be pairwise distinct: two nodes of the same
// generator never share an arrival schedule.
func TestSyntheticPerNodeStreamsIndependent(t *testing.T) {
	g, err := NewSynthetic(synCfg(24))
	if err != nil {
		t.Fatal(err)
	}
	events := collect(g, 50000)
	perNode := make(map[noc.NodeID][]uint64)
	for _, e := range events {
		perNode[e.Src] = append(perNode[e.Src], e.Cycle)
	}
	if len(perNode) < 16 {
		t.Fatalf("only %d/16 nodes emitted", len(perNode))
	}
	for a := noc.NodeID(0); a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			ca, cb := perNode[a], perNode[b]
			if len(ca) != len(cb) {
				continue
			}
			same := true
			for i := range ca {
				if ca[i] != cb[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("nodes %d and %d share an identical arrival schedule", a, b)
			}
		}
	}
}

// Zero-rate generators never emit and report Never.
func TestSyntheticZeroRate(t *testing.T) {
	cfg := synCfg(25)
	cfg.Rate = 0
	g, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if next := g.NextEventCycle(0); next != rng.Never {
		t.Fatalf("zero-rate NextEventCycle = %d, want Never", next)
	}
	for c := uint64(0); c < 1000; c++ {
		g.Tick(c, func(src, dst noc.NodeID, vnet, length int) {
			t.Fatal("zero-rate generator emitted")
		})
	}
}

// ReqResp's request side follows the same skip-sampled process, and its
// horizon folds in scheduled responses.
func TestReqRespSkipEquivalenceAndHorizon(t *testing.T) {
	mk := func() *ReqResp {
		g, err := NewReqResp(DefaultReqResp(4, 4, 0.02, 31))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	const cycles = 20000
	dense := collect(a, cycles)
	sparse := collectSkipping(b, cycles)
	if len(dense) != len(sparse) {
		t.Fatalf("dense emitted %d events, skip-driven %d", len(dense), len(sparse))
	}
	for i := range dense {
		if dense[i] != sparse[i] {
			t.Fatalf("event %d differs: dense %+v vs skip %+v", i, dense[i], sparse[i])
		}
	}

	// A delivery schedules a response, and the horizon must surface it
	// even when it precedes the next request arrival.
	g := mk()
	g.OnDeliver(2, 5, g.cfg.ReqVNet, 100)
	due := uint64(100) + g.cfg.ServiceLatency
	if next := g.NextEventCycle(due - 1); next > due {
		t.Fatalf("horizon %d ignores pending response due at %d", next, due)
	}
	found := false
	g.Tick(due, func(src, dst noc.NodeID, vnet, length int) {
		if vnet == g.cfg.RespVNet && src == 5 && dst == 2 {
			found = true
		}
	})
	if !found {
		t.Fatal("due response not emitted at its horizon cycle")
	}
}

// Replayer's horizon is exact: the next trace event's cycle.
func TestReplayerHorizon(t *testing.T) {
	r := NewReplayer([]Event{
		{Cycle: 7, Src: 0, Dst: 1, Len: 4},
		{Cycle: 40, Src: 1, Dst: 0, Len: 1},
	})
	if next := r.NextEventCycle(0); next != 7 {
		t.Fatalf("NextEventCycle(0) = %d, want 7", next)
	}
	r.Tick(7, func(src, dst noc.NodeID, vnet, length int) {})
	if next := r.NextEventCycle(8); next != 40 {
		t.Fatalf("NextEventCycle(8) = %d, want 40", next)
	}
	r.Tick(40, func(src, dst noc.NodeID, vnet, length int) {})
	if next := r.NextEventCycle(41); next != rng.Never {
		t.Fatalf("exhausted replayer horizon = %d, want Never", next)
	}
}
