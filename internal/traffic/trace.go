package traffic

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/rng"
)

// Event is one packet injection in a recorded trace.
type Event struct {
	Cycle    uint64
	Src, Dst noc.NodeID
	VNet     int
	Len      int
}

// WriteTrace serialises events in the line-oriented text format
// "cycle src dst vnet len", one event per line, preceded by a header.
// Events must be in non-decreasing cycle order.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# nbtinoc trace v1: cycle src dst vnet len"); err != nil {
		return err
	}
	var last uint64
	for i, e := range events {
		if e.Cycle < last {
			return fmt.Errorf("traffic: event %d out of cycle order", i)
		}
		last = e.Cycle
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d\n",
			e.Cycle, e.Src, e.Dst, e.VNet, e.Len); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the text trace format produced by WriteTrace.
// Comment lines (starting with '#') and blank lines are ignored.
func ReadTrace(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		var e Event
		if _, err := fmt.Sscanf(line, "%d %d %d %d %d",
			&e.Cycle, &e.Src, &e.Dst, &e.VNet, &e.Len); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %v", lineNo, err)
		}
		if e.Len < 1 {
			return nil, fmt.Errorf("traffic: trace line %d: packet length %d", lineNo, e.Len)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool {
		return events[i].Cycle < events[j].Cycle
	}) {
		return nil, fmt.Errorf("traffic: trace not in cycle order")
	}
	return events, nil
}

// Replayer injects a recorded trace.
type Replayer struct {
	events []Event
	idx    int
	name   string
}

// NewReplayer wraps events (which must be cycle-ordered) in a Generator.
func NewReplayer(events []Event) *Replayer {
	return &Replayer{events: events, name: "trace-replay"}
}

// Name implements Generator.
func (r *Replayer) Name() string { return r.name }

// Done reports whether all events have been replayed.
func (r *Replayer) Done() bool { return r.idx >= len(r.events) }

// Remaining returns the number of events not yet replayed.
func (r *Replayer) Remaining() int { return len(r.events) - r.idx }

// NextEventCycle implements EventHorizon: a trace knows its next
// emission exactly.
func (r *Replayer) NextEventCycle(now uint64) uint64 {
	if r.idx >= len(r.events) {
		return rng.Never
	}
	if c := r.events[r.idx].Cycle; c > now {
		return c
	}
	return now
}

// Tick implements Generator: all events stamped with the given cycle are
// emitted. Events whose cycle has already passed (e.g. when the replay
// starts mid-trace) are emitted immediately rather than dropped.
func (r *Replayer) Tick(cycle uint64, emit Emit) {
	for r.idx < len(r.events) && r.events[r.idx].Cycle <= cycle {
		e := r.events[r.idx]
		emit(e.Src, e.Dst, e.VNet, e.Len)
		r.idx++
	}
}

// Recorder wraps a Generator, capturing every emitted packet so the
// workload can be written to a trace file.
type Recorder struct {
	inner  Generator
	events []Event
}

// NewRecorder wraps g.
func NewRecorder(g Generator) *Recorder { return &Recorder{inner: g} }

// Name implements Generator.
func (r *Recorder) Name() string { return r.inner.Name() + "+record" }

// NextEventCycle implements EventHorizon when the wrapped generator
// does; recording adds no events of its own. If the inner generator has
// no horizon, the Recorder reports "next cycle", conservatively
// disabling fast-forward.
func (r *Recorder) NextEventCycle(now uint64) uint64 {
	if h, ok := r.inner.(EventHorizon); ok {
		return h.NextEventCycle(now)
	}
	return now
}

// Tick implements Generator.
func (r *Recorder) Tick(cycle uint64, emit Emit) {
	r.inner.Tick(cycle, func(src, dst noc.NodeID, vnet, length int) {
		r.events = append(r.events, Event{Cycle: cycle, Src: src, Dst: dst, VNet: vnet, Len: length})
		emit(src, dst, vnet, length)
	})
}

// Events returns the captured events.
func (r *Recorder) Events() []Event { return r.events }
