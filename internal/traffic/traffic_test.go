package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nbtinoc/internal/noc"
)

func collect(g Generator, cycles int) []Event {
	var out []Event
	for c := 0; c < cycles; c++ {
		g.Tick(uint64(c), func(src, dst noc.NodeID, vnet, length int) {
			out = append(out, Event{Cycle: uint64(c), Src: src, Dst: dst, VNet: vnet, Len: length})
		})
	}
	return out
}

func TestSyntheticValidate(t *testing.T) {
	ok := SyntheticConfig{Pattern: Uniform, Width: 4, Height: 4, Rate: 0.1, PacketLen: 4}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SyntheticConfig{
		{Pattern: Uniform, Width: 0, Height: 4, Rate: 0.1, PacketLen: 4},
		{Pattern: Uniform, Width: 1, Height: 1, Rate: 0.1, PacketLen: 4},
		{Pattern: Uniform, Width: 4, Height: 4, Rate: -0.1, PacketLen: 4},
		{Pattern: Uniform, Width: 4, Height: 4, Rate: 1.5, PacketLen: 4},
		{Pattern: Uniform, Width: 4, Height: 4, Rate: 0.1, PacketLen: 0},
		{Pattern: Transpose, Width: 4, Height: 2, Rate: 0.1, PacketLen: 4},
		{Pattern: BitComplement, Width: 3, Height: 2, Rate: 0.1, PacketLen: 4},
		{Pattern: Hotspot, Width: 4, Height: 4, Rate: 0.1, PacketLen: 4, HotspotFraction: 2},
		{Pattern: Hotspot, Width: 4, Height: 4, Rate: 0.1, PacketLen: 4, HotspotNode: 99},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSyntheticRate(t *testing.T) {
	g, err := NewSynthetic(SyntheticConfig{
		Pattern: Uniform, Width: 4, Height: 4, Rate: 0.2, PacketLen: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 50000
	events := collect(g, cycles)
	flits := 0
	for _, e := range events {
		flits += e.Len
	}
	got := float64(flits) / float64(cycles) / 16
	// Self-addressed draws are dropped (1/16 of uniform draws never
	// happen since dst != src by construction), so expect ~0.2.
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("offered load = %.3f flits/cycle/node, want ≈0.2", got)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	mk := func() []Event {
		g, err := NewSynthetic(SyntheticConfig{
			Pattern: Uniform, Width: 2, Height: 2, Rate: 0.3, PacketLen: 4, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return collect(g, 2000)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestPatternDestinations(t *testing.T) {
	mk := func(p Pattern) *Synthetic {
		g, err := NewSynthetic(SyntheticConfig{
			Pattern: p, Width: 4, Height: 4, Rate: 1, PacketLen: 1, Seed: 3,
			HotspotNode: 5, HotspotFraction: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		return g
	}
	dest := func(p Pattern, src noc.NodeID) noc.NodeID {
		g := mk(p)
		return g.destination(src, 0, &g.nodes[int(src)].src)
	}
	// Transpose: node (1,0)=1 -> (0,1)=4.
	if d := dest(Transpose, 1); d != 4 {
		t.Errorf("transpose(1) = %d, want 4", d)
	}
	// Bit complement on 16 nodes: 0b0001 -> 0b1110.
	if d := dest(BitComplement, 1); d != 14 {
		t.Errorf("bit-complement(1) = %d, want 14", d)
	}
	// Bit reverse: 0b0001 -> 0b1000.
	if d := dest(BitReverse, 1); d != 8 {
		t.Errorf("bit-reverse(1) = %d, want 8", d)
	}
	// Shuffle: rotate left: 0b1001 -> 0b0011.
	if d := dest(Shuffle, 9); d != 3 {
		t.Errorf("shuffle(9) = %d, want 3", d)
	}
	// Tornado on width 4: x -> x+1 mod 4.
	if d := dest(Tornado, 0); d != 1 {
		t.Errorf("tornado(0) = %d, want 1", d)
	}
	// Neighbor: (0,0) -> (1,0).
	if d := dest(Neighbor, 0); d != 1 {
		t.Errorf("neighbor(0) = %d, want 1", d)
	}
	// Hotspot with fraction 1 always hits the hotspot.
	if d := dest(Hotspot, 0); d != 5 {
		t.Errorf("hotspot(0) = %d, want 5", d)
	}
}

func TestUniformNeverSelfAddresses(t *testing.T) {
	g, err := NewSynthetic(SyntheticConfig{
		Pattern: Uniform, Width: 2, Height: 2, Rate: 1, PacketLen: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range collect(g, 500) {
		if e.Src == e.Dst {
			t.Fatalf("self-addressed packet: %+v", e)
		}
	}
}

func TestParsePatternRoundTrip(t *testing.T) {
	for p, name := range patternNames {
		got, err := ParsePattern(name)
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePattern("spiral"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestProfileLookup(t *testing.T) {
	names := ProfileNames()
	if len(names) < 10 {
		t.Fatalf("only %d profiles", len(names))
	}
	for _, n := range names {
		p, err := ProfileByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Phases) == 0 || p.DataLen < 1 {
			t.Errorf("profile %q malformed", n)
		}
		for _, ph := range p.Phases {
			if ph.Cycles == 0 || ph.Rate < 0 || ph.Rate > 1 ||
				ph.ShortFrac < 0 || ph.ShortFrac > 1 {
				t.Errorf("profile %q has bad phase %+v", n, ph)
			}
		}
	}
	if _, err := ProfileByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAppMixAssignment(t *testing.T) {
	bench := []string{"fft", "lu", "radix", "ocean"}
	m, err := NewAppMix(2, 2, bench, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Benchmarks()
	for i := range bench {
		if got[i] != bench[i] {
			t.Errorf("core %d runs %q, want %q", i, got[i], bench[i])
		}
	}
	if _, err := NewAppMix(2, 2, []string{"fft"}, 0, 1); err == nil {
		t.Error("mismatched benchmark count accepted")
	}
	if _, err := NewAppMix(2, 2, []string{"fft", "x", "lu", "lu"}, 0, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAppMixEmitsTraffic(t *testing.T) {
	m, err := NewRandomAppMix(4, 4, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	events := collect(m, 30000)
	if len(events) == 0 {
		t.Fatal("app mix emitted nothing in 30k cycles")
	}
	short, long := 0, 0
	for _, e := range events {
		if e.Src == e.Dst {
			t.Fatalf("self-addressed app packet: %+v", e)
		}
		if int(e.Src) < 0 || int(e.Src) >= 16 || int(e.Dst) < 0 || int(e.Dst) >= 16 {
			t.Fatalf("out-of-mesh endpoint: %+v", e)
		}
		switch e.Len {
		case 1:
			short++
		case 5:
			long++
		default:
			t.Fatalf("unexpected packet length %d", e.Len)
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("packet mix degenerate: %d short, %d long", short, long)
	}
}

func TestAppMixRunToRunVariance(t *testing.T) {
	// Different seeds must give different mixes/timings — the source of
	// Table IV's across-iteration standard deviation.
	a, err := NewRandomAppMix(2, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomAppMix(2, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := collect(a, 20000), collect(b, 20000)
	if len(ea) == len(eb) {
		same := true
		for i := range ea {
			if ea[i] != eb[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical event streams")
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 0, Src: 1, Dst: 2, VNet: 0, Len: 4},
		{Cycle: 5, Src: 0, Dst: 3, VNet: 1, Len: 1},
		{Cycle: 5, Src: 2, Dst: 1, VNet: 0, Len: 5},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestWriteTraceRejectsUnordered(t *testing.T) {
	events := []Event{{Cycle: 5}, {Cycle: 2}}
	if err := WriteTrace(&bytes.Buffer{}, events); err == nil {
		t.Fatal("unordered trace accepted")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"1 2 3", // too few fields
		"a b c d e",
		"1 0 1 0 0", // zero length
	} {
		if _, err := ReadTrace(strings.NewReader(s)); err == nil {
			t.Errorf("garbage %q accepted", s)
		}
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	in := "# header\n\n3 0 1 0 4\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Cycle != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestReplayer(t *testing.T) {
	events := []Event{
		{Cycle: 1, Src: 0, Dst: 1, Len: 4},
		{Cycle: 1, Src: 2, Dst: 3, Len: 4},
		{Cycle: 4, Src: 1, Dst: 0, Len: 1},
	}
	r := NewReplayer(events)
	var emitted []Event
	for c := uint64(0); c < 6; c++ {
		r.Tick(c, func(src, dst noc.NodeID, vnet, length int) {
			emitted = append(emitted, Event{Cycle: c, Src: src, Dst: dst, VNet: vnet, Len: length})
		})
	}
	if !r.Done() || r.Remaining() != 0 {
		t.Fatalf("replayer not done: %d remaining", r.Remaining())
	}
	if len(emitted) != 3 {
		t.Fatalf("emitted %d events", len(emitted))
	}
	if emitted[0].Cycle != 1 || emitted[2].Cycle != 4 {
		t.Errorf("timing wrong: %+v", emitted)
	}
}

func TestRecorderCapturesAll(t *testing.T) {
	g, err := NewSynthetic(SyntheticConfig{
		Pattern: Uniform, Width: 2, Height: 2, Rate: 0.5, PacketLen: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(g)
	passed := collect(rec, 1000)
	if len(rec.Events()) != len(passed) {
		t.Fatalf("recorder captured %d, passed through %d", len(rec.Events()), len(passed))
	}
	// Record -> write -> read -> replay reproduces the same stream.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer(back)
	replayed := collect(rep, 1000)
	if len(replayed) != len(passed) {
		t.Fatalf("replay produced %d events, want %d", len(replayed), len(passed))
	}
	for i := range passed {
		if replayed[i] != passed[i] {
			t.Fatalf("replayed event %d differs", i)
		}
	}
}

// Property: every synthetic pattern keeps destinations inside the mesh.
func TestQuickPatternsInMesh(t *testing.T) {
	f := func(seed uint64, pat uint8) bool {
		p := Pattern(int(pat) % 8)
		cfg := SyntheticConfig{
			Pattern: p, Width: 4, Height: 4, Rate: 1, PacketLen: 1,
			Seed: seed, HotspotNode: 3, HotspotFraction: 0.5,
		}
		g, err := NewSynthetic(cfg)
		if err != nil {
			return false
		}
		for src := 0; src < 16; src++ {
			d := g.destination(noc.NodeID(src), 0, &g.nodes[src].src)
			if int(d) < 0 || int(d) >= 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
