// Package traffic provides the workload generators used by the paper's
// evaluation: Bernoulli synthetic patterns at controlled injection rates
// (Section IV-B) and phase-structured application models standing in for
// the SPLASH2/WCET benchmark mixes of Section IV-C, plus a trace format
// for recording and replaying workloads.
//
// The paper obtains "real" traffic from full-system GEM5 simulations of
// SPLASH2 and WCET benchmarks over a MOESI-token protocol. Reproducing a
// full-system CPU+coherence stack is out of scope, so each benchmark is
// modelled as a sequence of communication phases with the benchmark's
// characteristic spatial pattern (all-to-all butterflies for FFT,
// neighbour pipelines for LU, permutation bursts for RADIX, ...),
// ON/OFF burstiness, and a mix of short control packets and long data
// packets mimicking request/response coherence traffic. What Table IV
// consumes — bursty, spatially non-uniform, run-to-run-variable per-port
// loads — is preserved.
package traffic

import (
	"errors"
	"fmt"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/rng"
)

// Emit is the callback generators use to inject one packet.
type Emit func(src, dst noc.NodeID, vnet, length int)

// Generator produces packets cycle by cycle.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Tick emits the packets to be injected at the given cycle. Calls
	// must be in strictly increasing cycle order, but cycles may be
	// skipped: a generator that also implements EventHorizon promises
	// the skipped cycles were eventless, and one that does not simply
	// emits any overdue packets at the cycle it is next ticked.
	Tick(cycle uint64, emit Emit)
}

// EventHorizon is implemented by generators that know, without
// simulating the cycles in between, the next cycle at which they will
// emit a packet. The engine uses it to fast-forward simulated time over
// provably eventless spans.
type EventHorizon interface {
	// NextEventCycle returns the earliest cycle >= now at which the
	// generator may emit, or rng.Never if it will never emit again.
	// It must not advance generator state.
	NextEventCycle(now uint64) uint64
}

// Pattern is a synthetic spatial traffic pattern.
type Pattern int

// Supported synthetic patterns.
const (
	Uniform Pattern = iota
	Transpose
	BitComplement
	BitReverse
	Shuffle
	Tornado
	Neighbor
	Hotspot
)

// patternOrder fixes the canonical enumeration order; ParsePattern and
// any listing must iterate this slice, not the patternNames map, so
// lookups and error messages are deterministic.
var patternOrder = []Pattern{
	Uniform, Transpose, BitComplement, BitReverse,
	Shuffle, Tornado, Neighbor, Hotspot,
}

var patternNames = map[Pattern]string{
	Uniform:       "uniform",
	Transpose:     "transpose",
	BitComplement: "bit-complement",
	BitReverse:    "bit-reverse",
	Shuffle:       "shuffle",
	Tornado:       "tornado",
	Neighbor:      "neighbor",
	Hotspot:       "hotspot",
}

func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern converts a pattern name to its value.
func ParsePattern(name string) (Pattern, error) {
	for _, p := range patternOrder {
		if patternNames[p] == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown pattern %q", name)
}

// SyntheticConfig parameterises a synthetic generator.
type SyntheticConfig struct {
	// Pattern is the spatial destination pattern.
	Pattern Pattern
	// Width and Height are the mesh dimensions.
	Width, Height int
	// Rate is the injection rate in flits/cycle/node, as in the paper
	// (0.1, 0.2, 0.3 flits/cycle/port).
	Rate float64
	// PacketLen is the packet length in flits.
	PacketLen int
	// VNet is the virtual network packets travel on.
	VNet int
	// HotspotNode receives HotspotFraction of the traffic under the
	// Hotspot pattern.
	HotspotNode noc.NodeID
	// HotspotFraction is the probability a packet targets HotspotNode.
	HotspotFraction float64
	// Seed drives the Bernoulli injection process.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c SyntheticConfig) Validate() error {
	n := c.Width * c.Height
	switch {
	case c.Width < 1 || c.Height < 1 || n < 2:
		return fmt.Errorf("traffic: bad mesh %dx%d", c.Width, c.Height)
	case c.Rate < 0 || c.Rate > 1:
		return fmt.Errorf("traffic: rate %v outside [0, 1] flits/cycle/node", c.Rate)
	case c.PacketLen < 1:
		return errors.New("traffic: PacketLen must be >= 1")
	case c.VNet < 0:
		return errors.New("traffic: negative vnet")
	}
	switch c.Pattern {
	case Transpose:
		if c.Width != c.Height {
			return errors.New("traffic: transpose requires a square mesh")
		}
	case BitComplement, BitReverse, Shuffle:
		if n&(n-1) != 0 {
			return fmt.Errorf("traffic: %v requires a power-of-two node count, got %d", c.Pattern, n)
		}
	case Hotspot:
		if c.HotspotFraction < 0 || c.HotspotFraction > 1 {
			return errors.New("traffic: HotspotFraction outside [0, 1]")
		}
		if int(c.HotspotNode) < 0 || int(c.HotspotNode) >= n {
			return errors.New("traffic: HotspotNode out of range")
		}
	}
	return nil
}

// Synthetic is a Bernoulli-injection synthetic traffic generator.
//
// Each node runs an independent per-node RNG stream (rng.NewStream keyed
// by (Seed, node)) and is skip-sampled: instead of a Bernoulli(p) draw
// every cycle, the node draws geometric inter-arrival gaps, so Tick costs
// O(packets emitted) rather than O(nodes) and NextEventCycle exposes the
// first upcoming injection to the engine's fast-forward path. The two
// formulations describe the identical arrival process (see rng.Geometric),
// but the draw sequence differs, so changing between them is an
// EngineVersion bump.
type Synthetic struct {
	cfg   SyntheticConfig
	prob  float64 // per-cycle packet-start probability, Rate/PacketLen
	nodes []synNode
	// heap holds every node index as a binary min-heap ordered by
	// (nodes[i].next, i); the deterministic tie-break keeps same-cycle
	// emissions in ascending node order, matching the old per-cycle sweep.
	heap []int32
}

type synNode struct {
	src  rng.Source
	next uint64 // absolute cycle of this node's next packet start
}

// NewSynthetic builds a generator, validating the configuration.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Width * cfg.Height
	g := &Synthetic{
		cfg:   cfg,
		prob:  cfg.Rate / float64(cfg.PacketLen),
		nodes: make([]synNode, n),
		heap:  make([]int32, n),
	}
	for i := range g.nodes {
		nd := &g.nodes[i]
		nd.src = *rng.NewStream(cfg.Seed, uint64(i))
		// The first success of a Bernoulli process whose first trial is at
		// cycle 0 lands at cycle G-1.
		if gap := nd.src.Geometric(g.prob); gap == rng.Never {
			nd.next = rng.Never
		} else {
			nd.next = gap - 1
		}
		g.heap[i] = int32(i)
	}
	for i := n/2 - 1; i >= 0; i-- {
		g.siftDown(i)
	}
	return g, nil
}

// Name implements Generator.
func (g *Synthetic) Name() string {
	return fmt.Sprintf("%v-inj%.2f", g.cfg.Pattern, g.cfg.Rate)
}

// NextEventCycle implements EventHorizon.
func (g *Synthetic) NextEventCycle(now uint64) uint64 {
	next := g.nodes[g.heap[0]].next
	if next < now {
		return now
	}
	return next
}

// Tick implements Generator: pops every node whose next arrival is due,
// in deterministic (cycle, node) order.
func (g *Synthetic) Tick(cycle uint64, emit Emit) {
	for {
		i := g.heap[0]
		nd := &g.nodes[i]
		if nd.next > cycle {
			return
		}
		dst := g.destination(noc.NodeID(i), cycle, &nd.src)
		if dst != noc.NodeID(i) { // self-addressed slots are dropped, as is customary
			emit(noc.NodeID(i), dst, g.cfg.VNet, g.cfg.PacketLen)
		}
		// Reschedule relative to the due cycle, not the tick cycle, so the
		// arrival process is independent of when the engine polls.
		nd.next = satAdd(nd.next, nd.src.Geometric(g.prob))
		g.siftDown(0)
	}
}

// satAdd returns a+b, saturating at rng.Never.
func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return rng.Never
	}
	return s
}

func (g *Synthetic) heapLess(a, b int32) bool {
	na, nb := g.nodes[a].next, g.nodes[b].next
	return na < nb || (na == nb && a < b)
}

func (g *Synthetic) siftDown(i int) {
	h := g.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && g.heapLess(h[r], h[l]) {
			m = r
		}
		if !g.heapLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// destination applies the spatial pattern for a packet from src, drawing
// any randomness from the emitting node's own stream.
func (g *Synthetic) destination(src noc.NodeID, cycle uint64, r *rng.Source) noc.NodeID {
	w, h := g.cfg.Width, g.cfg.Height
	n := w * h
	switch g.cfg.Pattern {
	case Transpose:
		c := noc.CoordOf(src, w)
		return noc.Coord{X: c.Y, Y: c.X}.NodeOf(w)
	case BitComplement:
		return noc.NodeID((^int(src)) & (n - 1))
	case BitReverse:
		return noc.NodeID(reverseBits(int(src), log2(n)))
	case Shuffle:
		b := log2(n)
		v := int(src)
		return noc.NodeID(((v << 1) | (v >> (b - 1))) & (n - 1))
	case Tornado:
		c := noc.CoordOf(src, w)
		c.X = (c.X + (w+1)/2 - 1) % w
		return c.NodeOf(w)
	case Neighbor:
		c := noc.CoordOf(src, w)
		c.X = (c.X + 1) % w
		return c.NodeOf(w)
	case Hotspot:
		if r.Bool(g.cfg.HotspotFraction) {
			return g.cfg.HotspotNode
		}
		return uniformDest(r, src, n)
	default: // Uniform
		return uniformDest(r, src, n)
	}
}

func uniformDest(r *rng.Source, src noc.NodeID, n int) noc.NodeID {
	d := r.Intn(n - 1)
	if d >= int(src) {
		d++
	}
	return noc.NodeID(d)
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func reverseBits(v, bits int) int {
	out := 0
	for i := 0; i < bits; i++ {
		out = (out << 1) | (v & 1)
		v >>= 1
	}
	return out
}
