// Package traffic provides the workload generators used by the paper's
// evaluation: Bernoulli synthetic patterns at controlled injection rates
// (Section IV-B) and phase-structured application models standing in for
// the SPLASH2/WCET benchmark mixes of Section IV-C, plus a trace format
// for recording and replaying workloads.
//
// The paper obtains "real" traffic from full-system GEM5 simulations of
// SPLASH2 and WCET benchmarks over a MOESI-token protocol. Reproducing a
// full-system CPU+coherence stack is out of scope, so each benchmark is
// modelled as a sequence of communication phases with the benchmark's
// characteristic spatial pattern (all-to-all butterflies for FFT,
// neighbour pipelines for LU, permutation bursts for RADIX, ...),
// ON/OFF burstiness, and a mix of short control packets and long data
// packets mimicking request/response coherence traffic. What Table IV
// consumes — bursty, spatially non-uniform, run-to-run-variable per-port
// loads — is preserved.
package traffic

import (
	"errors"
	"fmt"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/rng"
)

// Emit is the callback generators use to inject one packet.
type Emit func(src, dst noc.NodeID, vnet, length int)

// Generator produces packets cycle by cycle.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Tick emits the packets to be injected at the given cycle. It is
	// called exactly once per cycle, in increasing cycle order.
	Tick(cycle uint64, emit Emit)
}

// Pattern is a synthetic spatial traffic pattern.
type Pattern int

// Supported synthetic patterns.
const (
	Uniform Pattern = iota
	Transpose
	BitComplement
	BitReverse
	Shuffle
	Tornado
	Neighbor
	Hotspot
)

// patternOrder fixes the canonical enumeration order; ParsePattern and
// any listing must iterate this slice, not the patternNames map, so
// lookups and error messages are deterministic.
var patternOrder = []Pattern{
	Uniform, Transpose, BitComplement, BitReverse,
	Shuffle, Tornado, Neighbor, Hotspot,
}

var patternNames = map[Pattern]string{
	Uniform:       "uniform",
	Transpose:     "transpose",
	BitComplement: "bit-complement",
	BitReverse:    "bit-reverse",
	Shuffle:       "shuffle",
	Tornado:       "tornado",
	Neighbor:      "neighbor",
	Hotspot:       "hotspot",
}

func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern converts a pattern name to its value.
func ParsePattern(name string) (Pattern, error) {
	for _, p := range patternOrder {
		if patternNames[p] == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown pattern %q", name)
}

// SyntheticConfig parameterises a synthetic generator.
type SyntheticConfig struct {
	// Pattern is the spatial destination pattern.
	Pattern Pattern
	// Width and Height are the mesh dimensions.
	Width, Height int
	// Rate is the injection rate in flits/cycle/node, as in the paper
	// (0.1, 0.2, 0.3 flits/cycle/port).
	Rate float64
	// PacketLen is the packet length in flits.
	PacketLen int
	// VNet is the virtual network packets travel on.
	VNet int
	// HotspotNode receives HotspotFraction of the traffic under the
	// Hotspot pattern.
	HotspotNode noc.NodeID
	// HotspotFraction is the probability a packet targets HotspotNode.
	HotspotFraction float64
	// Seed drives the Bernoulli injection process.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c SyntheticConfig) Validate() error {
	n := c.Width * c.Height
	switch {
	case c.Width < 1 || c.Height < 1 || n < 2:
		return fmt.Errorf("traffic: bad mesh %dx%d", c.Width, c.Height)
	case c.Rate < 0 || c.Rate > 1:
		return fmt.Errorf("traffic: rate %v outside [0, 1] flits/cycle/node", c.Rate)
	case c.PacketLen < 1:
		return errors.New("traffic: PacketLen must be >= 1")
	case c.VNet < 0:
		return errors.New("traffic: negative vnet")
	}
	switch c.Pattern {
	case Transpose:
		if c.Width != c.Height {
			return errors.New("traffic: transpose requires a square mesh")
		}
	case BitComplement, BitReverse, Shuffle:
		if n&(n-1) != 0 {
			return fmt.Errorf("traffic: %v requires a power-of-two node count, got %d", c.Pattern, n)
		}
	case Hotspot:
		if c.HotspotFraction < 0 || c.HotspotFraction > 1 {
			return errors.New("traffic: HotspotFraction outside [0, 1]")
		}
		if int(c.HotspotNode) < 0 || int(c.HotspotNode) >= n {
			return errors.New("traffic: HotspotNode out of range")
		}
	}
	return nil
}

// Synthetic is a Bernoulli-injection synthetic traffic generator.
type Synthetic struct {
	cfg SyntheticConfig
	src *rng.Source
}

// NewSynthetic builds a generator, validating the configuration.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Synthetic{cfg: cfg, src: rng.New(cfg.Seed)}, nil
}

// Name implements Generator.
func (g *Synthetic) Name() string {
	return fmt.Sprintf("%v-inj%.2f", g.cfg.Pattern, g.cfg.Rate)
}

// Tick implements Generator: each node independently starts a packet
// with probability rate/packetLen per cycle.
func (g *Synthetic) Tick(cycle uint64, emit Emit) {
	nodes := g.cfg.Width * g.cfg.Height
	p := g.cfg.Rate / float64(g.cfg.PacketLen)
	for node := 0; node < nodes; node++ {
		if !g.src.Bool(p) {
			continue
		}
		dst := g.destination(noc.NodeID(node), cycle)
		if dst == noc.NodeID(node) {
			continue // self-addressed slots are dropped, as is customary
		}
		emit(noc.NodeID(node), dst, g.cfg.VNet, g.cfg.PacketLen)
	}
}

// destination applies the spatial pattern for a packet from src.
func (g *Synthetic) destination(src noc.NodeID, cycle uint64) noc.NodeID {
	w, h := g.cfg.Width, g.cfg.Height
	n := w * h
	switch g.cfg.Pattern {
	case Transpose:
		c := noc.CoordOf(src, w)
		return noc.Coord{X: c.Y, Y: c.X}.NodeOf(w)
	case BitComplement:
		return noc.NodeID((^int(src)) & (n - 1))
	case BitReverse:
		return noc.NodeID(reverseBits(int(src), log2(n)))
	case Shuffle:
		b := log2(n)
		v := int(src)
		return noc.NodeID(((v << 1) | (v >> (b - 1))) & (n - 1))
	case Tornado:
		c := noc.CoordOf(src, w)
		c.X = (c.X + (w+1)/2 - 1) % w
		return c.NodeOf(w)
	case Neighbor:
		c := noc.CoordOf(src, w)
		c.X = (c.X + 1) % w
		return c.NodeOf(w)
	case Hotspot:
		if g.src.Bool(g.cfg.HotspotFraction) {
			return g.cfg.HotspotNode
		}
		return g.uniformDest(src, n)
	default: // Uniform
		return g.uniformDest(src, n)
	}
}

func (g *Synthetic) uniformDest(src noc.NodeID, n int) noc.NodeID {
	d := g.src.Intn(n - 1)
	if d >= int(src) {
		d++
	}
	return noc.NodeID(d)
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func reverseBits(v, bits int) int {
	out := 0
	for i := 0; i < bits; i++ {
		out = (out << 1) | (v & 1)
		v >>= 1
	}
	return out
}
