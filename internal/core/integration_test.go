package core

import (
	"testing"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/rng"
)

// runPolicy drives uniform Bernoulli traffic over a mesh configured with
// the given policy and returns the drained network.
func runPolicy(t *testing.T, factory noc.PolicyFactory, w, h, vcs int,
	rate float64, cycles int, pvSeed, trafficSeed uint64) *noc.Network {
	t.Helper()
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.VCsPerVNet = vcs
	cfg.Policy = factory
	cfg.PVSeed = pvSeed
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(trafficSeed)
	const pktLen = 4
	pInject := rate / pktLen
	nodes := n.Nodes()
	for c := 0; c < cycles; c++ {
		for node := 0; node < nodes; node++ {
			if src.Bool(pInject) {
				dst := src.Intn(nodes - 1)
				if dst >= node {
					dst++
				}
				if err := n.Inject(noc.NodeID(node), noc.NodeID(dst), 0, pktLen); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
	}
	for i := 0; i < 20000 && !n.Quiescent(); i++ {
		n.Step()
	}
	return n
}

func TestGatingPoliciesLoseNoPackets(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory noc.PolicyFactory
	}{
		{"rr-no-sensor", NewRRNoSensor},
		{"rr-no-sensor-no-traffic", NewRRNoSensorNoTraffic},
		{"sensor-wise", NewSensorWise},
		{"sensor-wise-no-traffic", NewSensorWiseNoTraffic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := runPolicy(t, tc.factory, 4, 4, 2, 0.25, 3000, 1, 2)
			if !n.Quiescent() {
				t.Fatalf("failed to drain: %d flits in flight", n.InFlightFlits())
			}
			if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
				t.Fatalf("loss: injected %d, ejected %d",
					n.TotalInjectedPackets(), n.TotalEjectedPackets())
			}
			if n.TotalInjectedPackets() == 0 {
				t.Fatal("no traffic generated")
			}
		})
	}
}

func TestGatingReducesDutyCycleBelowBaseline(t *testing.T) {
	// Any gating policy must put every observed VC strictly below the
	// baseline's 100% at moderate load.
	n := runPolicy(t, NewRRNoSensor, 2, 2, 2, 0.1, 5000, 1, 2)
	port := noc.East
	for vc := 0; vc < 2; vc++ {
		d := n.DutyCycle(0, port, vc)
		if d <= 0 || d >= 100 {
			t.Errorf("rr duty-cycle VC%d = %.1f%%, want in (0, 100)", vc, d)
		}
	}
}

func TestRRSpreadsDutyCycleEvenly(t *testing.T) {
	// Table II/III structure: rr-no-sensor yields near-identical
	// duty-cycles across the VCs of a port.
	n := runPolicy(t, NewRRNoSensor, 2, 2, 4, 0.2, 20000, 1, 2)
	port := noc.East
	min, max := 100.0, 0.0
	for vc := 0; vc < 4; vc++ {
		d := n.DutyCycle(0, port, vc)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max-min > 5 {
		t.Errorf("rr spread = %.1f%% (min %.1f, max %.1f), want < 5%%", max-min, min, max)
	}
}

func TestSensorWiseProtectsMostDegradedOnSilicon(t *testing.T) {
	// Core claim: on the same scenario (same PV seed, same traffic), the
	// sensor-wise policy yields a lower duty-cycle on the most degraded
	// VC than rr-no-sensor.
	const pvSeed, trafficSeed = 7, 8
	rr := runPolicy(t, NewRRNoSensor, 2, 2, 2, 0.2, 20000, pvSeed, trafficSeed)
	sw := runPolicy(t, NewSensorWise, 2, 2, 2, 0.2, 20000, pvSeed, trafficSeed)
	port := noc.East
	md := rr.MostDegradedVC(0, port, 0)
	if md != sw.MostDegradedVC(0, port, 0) {
		t.Fatal("most degraded VC differs across policies despite shared PV seed")
	}
	dRR := rr.DutyCycle(0, port, md)
	dSW := sw.DutyCycle(0, port, md)
	if !(dSW < dRR) {
		t.Errorf("sensor-wise MD duty %.2f%% not below rr %.2f%%", dSW, dRR)
	}
}

func TestSensorWiseNoTrafficPinsOneVC(t *testing.T) {
	// Table structure: without traffic information one VC of the port
	// sits near 100% duty-cycle (always waiting for a flit) while the
	// most degraded VC is strongly protected.
	n := runPolicy(t, NewSensorWiseNoTraffic, 2, 2, 2, 0.1, 20000, 7, 8)
	port := noc.East
	md := n.MostDegradedVC(0, port, 0)
	other := 1 - md
	dMD, dOther := n.DutyCycle(0, port, md), n.DutyCycle(0, port, other)
	if dOther < 90 {
		t.Errorf("pinned VC duty = %.1f%%, want >= 90%%", dOther)
	}
	if !(dMD < dOther) {
		t.Errorf("md VC (%.1f%%) not protected vs pinned VC (%.1f%%)", dMD, dOther)
	}
}

func TestCooperationHelps(t *testing.T) {
	// Conclusion claim C1: the cooperative sensor-wise policy beats the
	// non-cooperative variant on the most degraded VC.
	const pvSeed, trafficSeed = 3, 4
	coop := runPolicy(t, NewSensorWise, 2, 2, 2, 0.15, 20000, pvSeed, trafficSeed)
	nonc := runPolicy(t, NewSensorWiseNoTraffic, 2, 2, 2, 0.15, 20000, pvSeed, trafficSeed)
	port := noc.East
	md := coop.MostDegradedVC(0, port, 0)
	dc, dn := coop.DutyCycle(0, port, md), nonc.DutyCycle(0, port, md)
	if !(dc <= dn) {
		t.Errorf("cooperative md duty %.2f%% above non-cooperative %.2f%%", dc, dn)
	}
	// Cooperation must also reduce aggregate stress across the port.
	var sc, sn float64
	for vc := 0; vc < 2; vc++ {
		sc += coop.DutyCycle(0, port, vc)
		sn += nonc.DutyCycle(0, port, vc)
	}
	if !(sc < sn) {
		t.Errorf("cooperative total stress %.2f not below non-cooperative %.2f", sc, sn)
	}
}

func TestDutyCycleGrowsWithLoad(t *testing.T) {
	duty := func(rate float64) float64 {
		n := runPolicy(t, NewRRNoSensor, 2, 2, 2, rate, 15000, 5, 6)
		return n.DutyCycle(0, noc.East, 0)
	}
	d1, d2, d3 := duty(0.1), duty(0.2), duty(0.3)
	if !(d1 < d2 && d2 < d3) {
		t.Errorf("duty-cycle not monotone in load: %.1f, %.1f, %.1f", d1, d2, d3)
	}
}

func TestGatedVCsNeverHoldFlits(t *testing.T) {
	// Figure 1B safety invariant, checked live: a power-gated VC buffer
	// is always empty. (bufferWrite would panic otherwise; this test
	// additionally samples states mid-flight.)
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 2
	cfg.Policy = NewSensorWise
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	for c := 0; c < 4000; c++ {
		for node := 0; node < 4; node++ {
			if src.Bool(0.06) {
				dst := (node + 1 + src.Intn(3)) % 4
				if dst == node {
					dst = (dst + 1) % 4
				}
				if err := n.Inject(noc.NodeID(node), noc.NodeID(dst), 0, 4); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
		for node := noc.NodeID(0); node < 4; node++ {
			r := n.Router(node)
			for p := noc.Port(0); p < noc.NumPorts; p++ {
				iu := r.Input(p)
				if iu == nil {
					continue
				}
				for vc := 0; vc < iu.NumVCs(); vc++ {
					if !iu.Powered(vc) && iu.Occupancy(vc) > 0 {
						t.Fatalf("cycle %d: gated VC %d at node %d port %v holds %d flits",
							n.Cycle(), vc, node, p, iu.Occupancy(vc))
					}
				}
			}
		}
	}
}

func TestRecoveryActuallyHappens(t *testing.T) {
	// Under gating with low load, recovery cycles must dominate stress
	// cycles on lightly used ports.
	n := runPolicy(t, NewSensorWise, 2, 2, 2, 0.05, 10000, 1, 2)
	dev := n.Router(0).Input(noc.East).Device(0)
	if dev.Tracker.RecoveryCycles() == 0 {
		t.Fatal("no recovery cycles recorded under sensor-wise gating")
	}
	total := dev.Tracker.TotalCycles()
	if total == 0 {
		t.Fatal("no cycles recorded")
	}
}
