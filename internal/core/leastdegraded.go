package core

import "nbtinoc/internal/noc"

// SensorWiseLD is an extension of Algorithm 2 (discussed as future work
// in the paper's trade-off framing): instead of keeping *some* idle VC
// powered while gating the most degraded one first, it designates the
// **least** degraded idle VC as the keep target, so new packets always
// land on the healthiest buffer and every other idle VC recovers.
//
// The hardware cost over the paper's scheme is a second VC identifier
// on the Down_Up link (the comparator already computes a full ranking
// internally; exporting the argmin adds log2(V) wires), charged in the
// area model notes. The policy consumes the ranking through
// PolicyInput.Ranking when available and falls back to Algorithm 2
// behaviour otherwise.
type SensorWiseLD struct {
	// AssumeTraffic forces boolTraffic to 1 (non-cooperative variant).
	AssumeTraffic bool
}

// Name implements noc.Policy.
func (p *SensorWiseLD) Name() string {
	if p.AssumeTraffic {
		return "sensor-wise-ld-no-traffic"
	}
	return "sensor-wise-ld"
}

// UsesSensors implements noc.UsesSensors.
func (p *SensorWiseLD) UsesSensors() bool { return true }

// DesiredPower implements noc.Policy: gate every idle VC except — when
// traffic waits — the least degraded idle one.
func (p *SensorWiseLD) DesiredPower(in *noc.PolicyInput, out []bool) {
	if !in.NewTraffic && !p.AssumeTraffic {
		return // all idle VCs recover
	}
	keep := -1
	if in.LeastDegraded >= 0 && in.LeastDegraded < in.NumVCs && in.Idle[in.LeastDegraded] {
		keep = in.LeastDegraded
	} else {
		// Fall back: any idle VC that is not the most degraded; prefer
		// the highest index (Algorithm 2's survivor).
		for vc := in.NumVCs - 1; vc >= 0; vc-- {
			if in.Idle[vc] && vc != in.MostDegraded {
				keep = vc
				break
			}
		}
		if keep == -1 {
			for vc := in.NumVCs - 1; vc >= 0; vc-- {
				if in.Idle[vc] {
					keep = vc
					break
				}
			}
		}
	}
	if keep >= 0 {
		out[keep] = true
	}
}

// SteadyWhenIdle implements noc.SteadyPolicy: the keep decision is a
// pure function of the sensor feedback and idle states.
func (p *SensorWiseLD) SteadyWhenIdle() bool { return true }

// CycleFree implements noc.CycleFreePolicy: the decision never reads
// the cycle for any NewTraffic value and keeps no per-call state.
func (p *SensorWiseLD) CycleFree() bool { return true }

// NewSensorWiseLD is the factory for the least-degraded-keep extension.
func NewSensorWiseLD() noc.Policy { return &SensorWiseLD{} }
