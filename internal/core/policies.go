// Package core implements the paper's contribution: the pre-VA NBTI
// recovery policies that decide, every cycle and for every upstream
// output port, which idle downstream virtual-channel buffers stay
// powered and which are gated into NBTI recovery.
//
// Four policies are provided:
//
//   - RRNoSensor (Algorithm 1, "rr-no-sensor"): the best sensor-less
//     strategy — a round-robin rotating candidate designates the single
//     idle VC left powered when new traffic is waiting; with no new
//     traffic every idle VC is gated. This is the paper's reference
//     model.
//   - SensorWise (Algorithm 2, "sensor-wise"): the proposal — the most
//     degraded VC (from the Down_Up sensor feedback) is gated first
//     whenever it is idle; at most one other idle VC remains powered,
//     and only while new traffic is waiting.
//   - SensorWiseNoTraffic ("sensor-wise-no-traffic"): Algorithm 2 with
//     boolTraffic forced to 1 — the non-cooperative variant that keeps
//     one idle VC powered at all times, used by the paper to isolate the
//     value of the cooperative traffic information.
//   - RRNoSensorNoTraffic ("rr-no-sensor-no-traffic"): the analogous
//     non-cooperative round-robin, completing the cooperation ablation.
//
// The always-on baseline (no gating) is noc.BaselinePolicy.
package core

import "nbtinoc/internal/noc"

// DefaultRotatePeriod is the number of cycles between advances of the
// round-robin active candidate ("changed cyclically on a time basis",
// Section III-B). Rotating every cycle spreads both allocations and
// powered-idle time evenly across VCs, which is what makes rr-no-sensor
// the strongest sensor-less reference.
const DefaultRotatePeriod = 1

// RRNoSensor is Algorithm 1: the round-robin sensor-less pre-VA stage.
type RRNoSensor struct {
	// RotatePeriod is the candidate rotation period in cycles (>= 1).
	RotatePeriod uint64
	// AssumeTraffic forces boolTraffic to 1, yielding the
	// non-cooperative variant.
	AssumeTraffic bool
}

// Name implements noc.Policy.
func (p *RRNoSensor) Name() string {
	if p.AssumeTraffic {
		return "rr-no-sensor-no-traffic"
	}
	return "rr-no-sensor"
}

// DesiredPower implements noc.Policy (Algorithm 1). With new traffic the
// first idle VC at or after the rotating candidate is left powered
// (enable=1, active_vc); otherwise every idle VC is gated.
func (p *RRNoSensor) DesiredPower(in *noc.PolicyInput, out []bool) {
	period := p.RotatePeriod
	if period == 0 {
		period = DefaultRotatePeriod
	}
	traffic := in.NewTraffic || p.AssumeTraffic
	if !traffic {
		// enable <- 0: the downstream may recover all idle VCs.
		return
	}
	candidate := int(in.Cycle/period) % in.NumVCs
	for i := 0; i < in.NumVCs; i++ {
		vc := (candidate + i) % in.NumVCs
		if in.Idle[vc] {
			// set_idle(offset_vc); enable <- 1; active_vc <- offset_vc.
			out[vc] = true
			return
		}
	}
	// All VCs busy: nothing to keep idle; enable is irrelevant.
}

// SteadyWhenIdle implements noc.SteadyPolicy: the cooperative variant
// returns all-gated without reading the cycle when no traffic waits;
// the non-cooperative variant rotates its candidate on a time basis
// every cycle and must keep running.
func (p *RRNoSensor) SteadyWhenIdle() bool { return !p.AssumeTraffic }

// Phase implements noc.PhasePolicy: Algorithm 1 reads the cycle only to
// derive its rotating candidate, int(cycle/period) % numVCs, and is
// otherwise a pure function of the idle states and the traffic bit — so
// its decision may be memoised per candidate position.
func (p *RRNoSensor) Phase(cycle uint64, numVCs int) (int, int) {
	period := p.RotatePeriod
	if period == 0 {
		period = DefaultRotatePeriod
	}
	return int(cycle/period) % numVCs, numVCs
}

// NewRRNoSensor is the noc.PolicyFactory for the cooperative Algorithm 1.
func NewRRNoSensor() noc.Policy {
	return &RRNoSensor{RotatePeriod: DefaultRotatePeriod}
}

// NewRRNoSensorNoTraffic is the factory for the non-cooperative
// round-robin variant (one idle VC always kept powered).
func NewRRNoSensorNoTraffic() noc.Policy {
	return &RRNoSensor{RotatePeriod: DefaultRotatePeriod, AssumeTraffic: true}
}

// SensorWise is Algorithm 2: the sensor-wise pre-VA stage.
type SensorWise struct {
	// AssumeTraffic forces boolTraffic to 1 ("sensor-wise-no-traffic").
	AssumeTraffic bool
}

// Name implements noc.Policy.
func (p *SensorWise) Name() string {
	if p.AssumeTraffic {
		return "sensor-wise-no-traffic"
	}
	return "sensor-wise"
}

// UsesSensors implements noc.UsesSensors: both variants consume the
// Down_Up most-degraded feedback.
func (p *SensorWise) UsesSensors() bool { return true }

// DesiredPower implements noc.Policy (Algorithm 2).
//
// Following the paper's pseudo-code: all recovered VCs are first
// restored to idle (lines 5-8), the most degraded VC is gated first if
// it is idle and enough idle VCs remain (lines 9-11), and the sweep of
// lines 12-16 gates further idle VCs while count_idle > boolTraffic, so
// that exactly one idle VC survives powered when traffic is waiting and
// none survives otherwise (lines 17-18).
func (p *SensorWise) DesiredPower(in *noc.PolicyInput, out []bool) {
	need := 0
	if in.NewTraffic || p.AssumeTraffic {
		need = 1
	}
	countIdle := 0
	for vc := 0; vc < in.NumVCs; vc++ {
		if in.Idle[vc] {
			out[vc] = true // set_idle: wake every idle/recovering VC
			countIdle++
		}
	}
	md := in.MostDegraded
	if md >= 0 && md < in.NumVCs && in.Idle[md] && countIdle > need {
		out[md] = false // set_recovery(most_degraded_vc)
		countIdle--
	}
	for vc := 0; vc < in.NumVCs && countIdle > need; vc++ {
		if in.Idle[vc] && out[vc] {
			out[vc] = false // set_recovery(iter_vc)
			countIdle--
		}
	}
}

// SteadyWhenIdle implements noc.SteadyPolicy: Algorithm 2 ranks by the
// Down_Up feedback and never reads the cycle, in either variant.
func (p *SensorWise) SteadyWhenIdle() bool { return true }

// CycleFree implements noc.CycleFreePolicy: Algorithm 2's decision is a
// pure function of the sensor feedback, idle states and the traffic
// bit — it never reads the cycle for any NewTraffic value.
func (p *SensorWise) CycleFree() bool { return true }

// NewSensorWise is the factory for the cooperative Algorithm 2 — the
// paper's proposed policy.
func NewSensorWise() noc.Policy { return &SensorWise{} }

// NewSensorWiseNoTraffic is the factory for the non-cooperative variant.
func NewSensorWiseNoTraffic() noc.Policy {
	return &SensorWise{AssumeTraffic: true}
}
