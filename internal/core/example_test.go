package core_test

import (
	"fmt"

	"nbtinoc/internal/core"
	"nbtinoc/internal/noc"
)

// Algorithm 2's pre-VA decision over a 4-VC port: VC 2 (the most
// degraded, per the Down_Up sensor feedback) is gated into recovery,
// one other idle VC stays powered for the waiting packet, and the rest
// recover too.
func ExampleSensorWise() {
	policy := core.NewSensorWise()
	in := noc.PolicyInput{
		NumVCs:       4,
		Idle:         []bool{true, true, true, true},
		Powered:      []bool{true, true, true, true},
		MostDegraded: 2,
		NewTraffic:   true, // is_new_traffic_outport_x() == 1
	}
	out := make([]bool, 4)
	policy.DesiredPower(&in, out)
	for vc, powered := range out {
		state := "recover"
		if powered {
			state = "keep idle"
		}
		if vc == in.MostDegraded {
			state += " (most degraded)"
		}
		fmt.Printf("VC%d: %s\n", vc, state)
	}
	// Output:
	// VC0: recover
	// VC1: recover
	// VC2: recover (most degraded)
	// VC3: keep idle
}

// Algorithm 1 without traffic: every idle VC recovers, because the
// upstream router knows no new packet is waiting.
func ExampleRRNoSensor() {
	policy := core.NewRRNoSensor()
	in := noc.PolicyInput{
		NumVCs:       2,
		Idle:         []bool{true, true},
		Powered:      []bool{true, true},
		MostDegraded: -1, // sensor-less
		NewTraffic:   false,
	}
	out := make([]bool, 2)
	policy.DesiredPower(&in, out)
	fmt.Println("powered idle VCs:", out)
	// Output:
	// powered idle VCs: [false false]
}
