package core

import (
	"testing"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/rng"
)

// decideLD runs the LD policy with an explicit least-degraded input.
func decideLD(p noc.Policy, idle []bool, md, ld int, traffic bool) []bool {
	n := len(idle)
	out := make([]bool, n)
	in := noc.PolicyInput{
		NumVCs:        n,
		Idle:          idle,
		Powered:       make([]bool, n),
		MostDegraded:  md,
		LeastDegraded: ld,
		NewTraffic:    traffic,
	}
	p.DesiredPower(&in, out)
	return out
}

func TestLDKeepsLeastDegraded(t *testing.T) {
	p := NewSensorWiseLD()
	idle := []bool{true, true, true, true}
	out := decideLD(p, idle, 2, 1, true)
	if !out[1] {
		t.Error("least degraded VC not kept")
	}
	if countOn(out, idle) != 1 {
		t.Fatalf("kept %d idle VCs, want 1 (%v)", countOn(out, idle), out)
	}
}

func TestLDGatesAllWithoutTraffic(t *testing.T) {
	p := NewSensorWiseLD()
	out := decideLD(p, []bool{true, true, true}, 0, 2, false)
	for i, on := range out {
		if on {
			t.Errorf("VC %d powered with no traffic", i)
		}
	}
}

func TestLDFallsBackWhenLDBusy(t *testing.T) {
	p := NewSensorWiseLD()
	idle := []bool{true, true, false, true} // LD (VC2) is busy
	out := decideLD(p, idle, 0, 2, true)
	if countOn(out, idle) != 1 {
		t.Fatalf("kept %d, want 1", countOn(out, idle))
	}
	if out[0] {
		t.Error("fallback kept the most degraded VC")
	}
}

func TestLDFallsBackWhenLDInvalid(t *testing.T) {
	p := NewSensorWiseLD()
	idle := []bool{true, true}
	out := decideLD(p, idle, 0, -1, true)
	if countOn(out, idle) != 1 {
		t.Fatalf("kept %d, want 1", countOn(out, idle))
	}
}

func TestLDOnlyMDIdle(t *testing.T) {
	// When the only idle VC is the most degraded one, it must still be
	// kept (traffic needs somewhere to go).
	p := NewSensorWiseLD()
	idle := []bool{true, false, false, false}
	out := decideLD(p, idle, 0, 3, true)
	if !out[0] {
		t.Error("lone idle MD VC gated despite traffic")
	}
}

func TestLDNames(t *testing.T) {
	if NewSensorWiseLD().Name() != "sensor-wise-ld" {
		t.Error("wrong name")
	}
	nt := &SensorWiseLD{AssumeTraffic: true}
	if nt.Name() != "sensor-wise-ld-no-traffic" {
		t.Error("wrong no-traffic name")
	}
	if !noc.PolicyUsesSensors(NewSensorWiseLD()) {
		t.Error("LD policy does not claim sensors")
	}
}

func TestLDRegistered(t *testing.T) {
	f, err := Lookup("sensor-wise-ld")
	if err != nil {
		t.Fatal(err)
	}
	if f().Name() != "sensor-wise-ld" {
		t.Error("registry builds wrong policy")
	}
}

// Integration: LD steers new packets onto the healthiest buffer, so the
// least degraded VC carries the most stress and the most degraded the
// least — the full inversion of the PV ranking.
func TestLDInvertsWear(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 4
	cfg.Policy = NewSensorWiseLD
	cfg.PVSeed = 5
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	for c := 0; c < 30000; c++ {
		for node := 0; node < 4; node++ {
			if src.Bool(0.03) {
				dst := (node + 1 + src.Intn(3)) % 4
				if dst == node {
					dst = (dst + 1) % 4
				}
				if err := n.Inject(noc.NodeID(node), noc.NodeID(dst), 0, 4); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
	}
	port := noc.East
	md := n.MostDegradedVC(0, port, 0)
	// Find the LD VC by Vth0.
	ld, ldV := 0, 1.0
	for vc := 0; vc < 4; vc++ {
		if v := n.Vth0(0, port, vc); v < ldV {
			ld, ldV = vc, v
		}
	}
	if md == ld {
		t.Skip("degenerate PV draw")
	}
	dMD := n.DutyCycle(0, port, md)
	dLD := n.DutyCycle(0, port, ld)
	if !(dLD > dMD) {
		t.Errorf("LD policy did not steer wear: duty(LD)=%.2f%% <= duty(MD)=%.2f%%", dLD, dMD)
	}
	if n.TotalInjectedPackets() == 0 {
		t.Fatal("no traffic")
	}
}
