package core

import (
	"testing"
	"testing/quick"

	"nbtinoc/internal/noc"
)

// decide runs a policy once over a synthetic input.
func decide(p noc.Policy, idle []bool, md int, traffic bool, cycle uint64) []bool {
	n := len(idle)
	powered := make([]bool, n)
	for i := range powered {
		powered[i] = true
	}
	out := make([]bool, n)
	in := noc.PolicyInput{
		NumVCs:       n,
		Idle:         idle,
		Powered:      powered,
		MostDegraded: md,
		NewTraffic:   traffic,
		Cycle:        cycle,
	}
	p.DesiredPower(&in, out)
	return out
}

func countOn(out, idle []bool) int {
	n := 0
	for i := range out {
		if out[i] && idle[i] {
			n++
		}
	}
	return n
}

func TestRRGatesAllWithoutTraffic(t *testing.T) {
	p := NewRRNoSensor()
	out := decide(p, []bool{true, true, true, true}, -1, false, 10)
	for i, on := range out {
		if on {
			t.Errorf("VC %d powered with no traffic", i)
		}
	}
}

func TestRRKeepsExactlyOneWithTraffic(t *testing.T) {
	p := NewRRNoSensor()
	idle := []bool{true, true, true, true}
	out := decide(p, idle, -1, true, 0)
	if countOn(out, idle) != 1 {
		t.Fatalf("rr kept %d idle VCs on, want 1 (%v)", countOn(out, idle), out)
	}
}

func TestRRCandidateRotates(t *testing.T) {
	p := &RRNoSensor{RotatePeriod: 1}
	idle := []bool{true, true, true, true}
	seen := map[int]bool{}
	for cyc := uint64(0); cyc < 4; cyc++ {
		out := decide(p, idle, -1, true, cyc)
		for i, on := range out {
			if on {
				seen[i] = true
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("rotation visited %d distinct VCs over 4 cycles, want 4", len(seen))
	}
}

func TestRRRotatePeriod(t *testing.T) {
	p := &RRNoSensor{RotatePeriod: 10}
	idle := []bool{true, true}
	a := decide(p, idle, -1, true, 0)
	b := decide(p, idle, -1, true, 9)
	c := decide(p, idle, -1, true, 10)
	if a[0] != b[0] || a[1] != b[1] {
		t.Error("candidate moved within rotate period")
	}
	if a[0] == c[0] && a[1] == c[1] {
		t.Error("candidate did not move after rotate period")
	}
}

func TestRRSkipsBusyVCs(t *testing.T) {
	p := &RRNoSensor{RotatePeriod: 1}
	idle := []bool{false, false, true, false}
	out := decide(p, idle, -1, true, 0)
	if !out[2] {
		t.Error("rr did not keep the only idle VC")
	}
	if out[0] || out[1] || out[3] {
		t.Error("rr powered a busy VC slot (caller handles busy VCs)")
	}
}

func TestRRAllBusy(t *testing.T) {
	p := NewRRNoSensor()
	out := decide(p, []bool{false, false}, -1, true, 0)
	if out[0] || out[1] {
		t.Error("rr produced a keep with no idle VC")
	}
}

func TestRRNoTrafficVariantAlwaysKeepsOne(t *testing.T) {
	p := NewRRNoSensorNoTraffic()
	idle := []bool{true, true, true}
	out := decide(p, idle, -1, false, 0)
	if countOn(out, idle) != 1 {
		t.Fatalf("non-cooperative rr kept %d on, want 1", countOn(out, idle))
	}
}

func TestSensorWiseGatesAllWithoutTraffic(t *testing.T) {
	p := NewSensorWise()
	out := decide(p, []bool{true, true, true, true}, 1, false, 0)
	for i, on := range out {
		if on {
			t.Errorf("VC %d powered with no traffic", i)
		}
	}
}

func TestSensorWiseProtectsMostDegraded(t *testing.T) {
	p := NewSensorWise()
	idle := []bool{true, true, true, true}
	out := decide(p, idle, 2, true, 0)
	if out[2] {
		t.Error("most degraded VC left powered")
	}
	if countOn(out, idle) != 1 {
		t.Fatalf("sensor-wise kept %d idle VCs on, want 1 (%v)", countOn(out, idle), out)
	}
}

func TestSensorWiseSurvivorIsNotMD(t *testing.T) {
	p := NewSensorWise()
	for md := 0; md < 4; md++ {
		idle := []bool{true, true, true, true}
		out := decide(p, idle, md, true, 0)
		for i, on := range out {
			if on && i == md {
				t.Errorf("md=%d: survivor is the most degraded VC", md)
			}
		}
	}
}

func TestSensorWiseMDBusy(t *testing.T) {
	// When the most degraded VC is busy it cannot be recovered; exactly
	// one other idle VC must survive.
	p := NewSensorWise()
	idle := []bool{true, false, true, true}
	out := decide(p, idle, 1, true, 0)
	if countOn(out, idle) != 1 {
		t.Fatalf("kept %d idle on, want 1", countOn(out, idle))
	}
}

func TestSensorWiseSingleIdleVCWithTraffic(t *testing.T) {
	// count_idle == boolTraffic: the lone idle VC must stay powered even
	// if it is the most degraded one (a new packet needs somewhere to
	// go — Algorithm 2 lines 9-11 require count_idle > boolTraffic).
	p := NewSensorWise()
	idle := []bool{false, true, false, false}
	out := decide(p, idle, 1, true, 0)
	if !out[1] {
		t.Error("lone idle VC gated despite waiting traffic")
	}
}

func TestSensorWiseSingleIdleVCNoTraffic(t *testing.T) {
	p := NewSensorWise()
	idle := []bool{false, true, false, false}
	out := decide(p, idle, 1, false, 0)
	if out[1] {
		t.Error("idle VC kept powered with no traffic")
	}
}

func TestSensorWiseNoTrafficVariant(t *testing.T) {
	p := NewSensorWiseNoTraffic()
	idle := []bool{true, true, true, true}
	out := decide(p, idle, 0, false, 0)
	if countOn(out, idle) != 1 {
		t.Fatalf("no-traffic variant kept %d on, want 1", countOn(out, idle))
	}
	if out[0] {
		t.Error("no-traffic variant kept the most degraded VC")
	}
}

func TestSensorWiseInvalidMD(t *testing.T) {
	p := NewSensorWise()
	idle := []bool{true, true}
	// md = -1 (sensor-less upstream) and md out of range must not panic
	// and must still keep exactly one VC.
	for _, md := range []int{-1, 7} {
		out := decide(p, idle, md, true, 0)
		if countOn(out, idle) != 1 {
			t.Fatalf("md=%d: kept %d on, want 1", md, countOn(out, idle))
		}
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]noc.Policy{
		"rr-no-sensor":            NewRRNoSensor(),
		"rr-no-sensor-no-traffic": NewRRNoSensorNoTraffic(),
		"sensor-wise":             NewSensorWise(),
		"sensor-wise-no-traffic":  NewSensorWiseNoTraffic(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestUsesSensors(t *testing.T) {
	if noc.PolicyUsesSensors(NewRRNoSensor()) {
		t.Error("rr-no-sensor claims sensors")
	}
	if !noc.PolicyUsesSensors(NewSensorWise()) {
		t.Error("sensor-wise does not claim sensors")
	}
	if !noc.PolicyUsesSensors(NewSensorWiseNoTraffic()) {
		t.Error("sensor-wise-no-traffic does not claim sensors")
	}
	if noc.PolicyUsesSensors(noc.NewBaseline()) {
		t.Error("baseline claims sensors")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		f, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if name == "baseline" {
			continue
		}
		if got := f().Name(); got != name {
			t.Errorf("factory for %q builds %q", name, got)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// Property: for every gating policy, any idle/md/traffic combination
// keeps at most one idle VC powered, and zero when the cooperative
// variants see no traffic.
func TestQuickAtMostOneIdlePowered(t *testing.T) {
	policies := []func() noc.Policy{
		NewRRNoSensor, NewRRNoSensorNoTraffic, NewSensorWise, NewSensorWiseNoTraffic,
	}
	f := func(idleBits uint8, mdRaw uint8, traffic bool, cycle uint16) bool {
		for _, mk := range policies {
			p := mk()
			const n = 4
			idle := make([]bool, n)
			for i := 0; i < n; i++ {
				idle[i] = idleBits&(1<<uint(i)) != 0
			}
			md := int(mdRaw%6) - 1 // includes -1 and out-of-range 4
			out := decide(p, idle, md, traffic, uint64(cycle))
			if countOn(out, idle) > 1 {
				return false
			}
			// Desired power must never be asserted on busy slots.
			for i := range out {
				if out[i] && !idle[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
