package core

import (
	"fmt"
	"sort"

	"nbtinoc/internal/noc"
)

// Registry maps policy names to factories, for CLI tools and experiment
// configs.
var registry = map[string]noc.PolicyFactory{
	"baseline":                noc.NewBaseline,
	"rr-no-sensor":            NewRRNoSensor,
	"rr-no-sensor-no-traffic": NewRRNoSensorNoTraffic,
	"sensor-wise":             NewSensorWise,
	"sensor-wise-no-traffic":  NewSensorWiseNoTraffic,
	"sensor-wise-ld":          NewSensorWiseLD,
}

// Lookup returns the factory for a policy name.
func Lookup(name string) (noc.PolicyFactory, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (known: %v)", name, Names())
	}
	return f, nil
}

// Names returns the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
