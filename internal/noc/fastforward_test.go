package noc

import (
	"encoding/json"
	"testing"
)

// settleTestNet builds a small network, pushes one packet through it and
// steps until the active sets drain, returning the idle network.
func settleTestNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(testConfig(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(0, 3, 0, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096 && !n.Idle(); i++ {
		n.Step()
	}
	if !n.Idle() {
		t.Fatal("network never went idle")
	}
	return n
}

func agingJSON(t *testing.T, n *Network) string {
	t.Helper()
	b, err := json.Marshal(n.AgingSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// RunUntil over an idle network must be indistinguishable from stepping
// every cycle: same cycle counter, same aging spans, same sensor state.
func TestRunUntilMatchesStepByStep(t *testing.T) {
	a := settleTestNet(t)
	b := settleTestNet(t)
	if a.Cycle() != b.Cycle() {
		t.Fatalf("settle cycles differ: %d vs %d", a.Cycle(), b.Cycle())
	}
	// Span several sensor-sampling periods so sample cycles land mid-skip.
	target := a.Cycle() + 5*a.Config().Sensor.SamplePeriod + 37
	a.RunUntil(target)
	for b.Cycle() < target {
		b.Step()
	}
	if a.Cycle() != target || b.Cycle() != target {
		t.Fatalf("cycles: RunUntil %d, Step loop %d, want %d", a.Cycle(), b.Cycle(), target)
	}
	if a.FastForwardedCycles() == 0 {
		t.Error("RunUntil never fast-forwarded an idle network")
	}
	if b.FastForwardedCycles() != 0 {
		t.Error("plain Step loop counted fast-forwarded cycles")
	}
	if ga, gb := agingJSON(t, a), agingJSON(t, b); ga != gb {
		t.Errorf("aging state diverged:\n ff:  %s\n sbs: %s", ga, gb)
	}
	// Both networks must agree on every sensor designation too.
	for _, port := range []Port{East, Local} {
		if iu := a.Router(3).Input(port); iu == nil {
			continue
		}
		if ma, mb := a.MostDegradedVC(3, port, 0), b.MostDegradedVC(3, port, 0); ma != mb {
			t.Errorf("port %v: most-degraded %d vs %d", port, ma, mb)
		}
	}
}

// A jump must execute the sensor-sampling cycle as a real Step: the
// clock lands exactly on nextSample, never beyond it.
func TestRunUntilHonoursSampleCadence(t *testing.T) {
	n := settleTestNet(t)
	period := n.Config().Sensor.SamplePeriod
	// Jump far past many sample boundaries; the per-VC NBTI trackers are
	// flushed at each sample, so total tracked cycles must cover the whole
	// span without gaps — the witness that no sample cycle was skipped.
	start := n.Cycle()
	target := start + 10*period
	n.RunUntil(target)
	if n.Cycle() != target {
		t.Fatalf("cycle %d, want %d", n.Cycle(), target)
	}
	// Executed (non-skipped) steps are target-start-ff; at least the 10
	// sample cycles in the span must have been stepped for real.
	executed := (target - start) - n.FastForwardedCycles()
	if executed < 10 {
		t.Errorf("only %d real steps across 10 sample periods", executed)
	}
	st := n.AgingSnapshot()
	if st.Cycle != target {
		t.Errorf("aging snapshot at %d, want %d", st.Cycle, target)
	}
}

// Waking exactly on nextSample: an injection scheduled for the very
// cycle the sensor sweep runs must be processed normally afterwards.
func TestRunUntilWakeOnSampleCycle(t *testing.T) {
	n := settleTestNet(t)
	period := n.Config().Sensor.SamplePeriod
	// Land the clock exactly on a sample boundary.
	target := (n.Cycle()/period + 3) * period
	n.RunUntil(target)
	if n.Cycle() != target {
		t.Fatalf("cycle %d, want sample boundary %d", n.Cycle(), target)
	}
	if err := n.Inject(1, 2, 0, 4); err != nil {
		t.Fatal(err)
	}
	if n.Idle() {
		t.Fatal("injection did not wake the NI")
	}
	before := n.TotalEjectedPackets()
	for i := 0; i < 4096 && !n.Quiescent(); i++ {
		n.Step()
	}
	if n.TotalEjectedPackets() != before+1 {
		t.Errorf("packet injected on a sample boundary not delivered")
	}
}

// Stalled() must not fire after a bulk jump: an idle span is not a
// livelock, even though no flit moved for millions of cycles.
func TestStalledAfterFastForward(t *testing.T) {
	n := settleTestNet(t)
	n.RunUntil(n.Cycle() + 2_000_000)
	if n.Stalled(1000) {
		t.Error("idle fast-forwarded network reported as stalled")
	}
	if n.StalledFor() > n.Config().Sensor.SamplePeriod+1 {
		t.Errorf("StalledFor %d spans the jump; watchdog baseline not reset", n.StalledFor())
	}
	// And the watchdog still works: queue a packet into a livelocked
	// situation is hard to fabricate here, but the accessor arithmetic
	// must stay monotone after the jump.
	c0 := n.StalledFor()
	n.Step()
	if got := n.StalledFor(); got != c0+1 {
		t.Errorf("StalledFor after one idle step = %d, want %d", got, c0+1)
	}
}

// RunUntil on a busy network degrades to plain stepping.
func TestRunUntilBusyNetwork(t *testing.T) {
	n, err := New(testConfig(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(0, 3, 0, 4); err != nil {
		t.Fatal(err)
	}
	n.RunUntil(50)
	if n.Cycle() != 50 {
		t.Fatalf("cycle %d, want 50", n.Cycle())
	}
	if n.TotalEjectedPackets() != 1 {
		t.Errorf("packet not delivered while RunUntil drove a busy network")
	}
}
