package noc

// Pipeline models a unidirectional link with a fixed latency in cycles:
// values sent during cycle t are received during cycle t+latency. The
// network advances every pipeline exactly once per cycle by calling
// Receive, so the structure is a simple ring of per-cycle batches.
type Pipeline[T any] struct {
	slots [][]T
	head  int
	// n is the number of in-flight values. While zero, Receive skips the
	// head advance entirely: slot indexing is purely relative, so an
	// all-empty ring needs no rotation to stay consistent.
	n int
}

// NewPipeline returns a pipeline with the given latency (>= 1).
func NewPipeline[T any](latency int) *Pipeline[T] {
	if latency < 1 {
		panic("noc: pipeline latency must be >= 1")
	}
	slots := make([][]T, latency)
	return &Pipeline[T]{slots: slots}
}

// Send enqueues v for delivery latency cycles after the current one.
// It must be called after this cycle's Receive.
func (p *Pipeline[T]) Send(v T) {
	idx := p.head + len(p.slots) - 1
	if idx >= len(p.slots) {
		idx -= len(p.slots)
	}
	p.slots[idx] = append(p.slots[idx], v)
	p.n++
}

// Receive returns the batch arriving this cycle and advances the
// pipeline. The returned slice is reused; callers must consume it before
// the pipeline wraps around.
func (p *Pipeline[T]) Receive() []T {
	if p.n == 0 {
		return nil
	}
	out := p.slots[p.head]
	p.slots[p.head] = out[:0]
	p.head++
	if p.head == len(p.slots) {
		p.head = 0
	}
	p.n -= len(out)
	return out
}

// InFlight returns the total number of values currently traversing the
// pipeline — used by invariant checks and drain detection.
func (p *Pipeline[T]) InFlight() int { return p.n }

// powerLink is the Up_Down control channel of the paper: each cycle the
// upstream output unit publishes the desired power state of the
// downstream VCs, which takes effect downstream one cycle later.
//
// Physically the paper's link carries only log2(numVC) VC-ID lines plus
// an enable bit per port; the downstream reconstructs the full mask from
// its local VC states. The simulator transports the reconstructed mask
// directly (as a bitmask over the port's flattened VCs) — behaviourally
// identical, since the mask is a pure function of information available
// at both ends, while the area model still charges only the paper's
// log2(V)+1 wires.
type powerLink struct {
	cur, next uint64
}

// newPowerLink returns a link whose initial state powers all VCs.
func newPowerLink() *powerLink {
	return &powerLink{cur: ^uint64(0), next: ^uint64(0)}
}

// Send publishes the desired mask; bit v = 1 keeps flattened VC v on.
func (l *powerLink) Send(mask uint64) { l.next = mask }

// Tick advances the one-cycle delay and reports whether the in-effect
// mask changed — the reader uses this to mark its power state dirty.
func (l *powerLink) Tick() bool {
	changed := l.cur != l.next
	l.cur = l.next
	return changed
}

// Current returns the mask in effect at the downstream this cycle.
func (l *powerLink) Current() uint64 { return l.cur }

// settled reports whether ticking the link is a no-op — the condition
// for the reading unit to leave the active set.
func (l *powerLink) settled() bool { return l.cur == l.next }

// mdLink is the Down_Up control channel: the downstream sensor banks
// publish the most degraded VC per vnet (the paper's marker) plus the
// least degraded VC (the wear-steering extension); values reach the
// upstream outVCstate one cycle later. A valid VC id is always present
// (the link needs no enable line, as the paper notes).
type mdLink struct {
	// stale is set by Send whenever a pending value differs from the one
	// in effect and cleared by Tick; while clear, next == cur holds for
	// every vnet, so Tick and settled are O(1) instead of a slice scan.
	// It leads the struct so that, embedded in an OutputUnit, the
	// per-cycle settled check lands on the same cache line as the
	// neighbouring credit pipeline's hot fields.
	stale bool
	//nbtilint:arena
	curMD, nextMD []int
	//nbtilint:arena
	curLD, nextLD []int
}

// newMDLink returns a link for vnets virtual networks, initialised to
// VC 0 per vnet.
func newMDLink(vnets int) *mdLink {
	return &mdLink{
		curMD: make([]int, vnets), nextMD: make([]int, vnets),
		curLD: make([]int, vnets), nextLD: make([]int, vnets),
	}
}

// Send publishes the most and least degraded VCs (indices within the
// vnet slice).
func (l *mdLink) Send(vnet, md, ld int) {
	l.nextMD[vnet] = md
	l.nextLD[vnet] = ld
	l.stale = l.stale || md != l.curMD[vnet] || ld != l.curLD[vnet]
}

// Tick advances the one-cycle delay and reports whether any in-effect
// value changed — the reader uses this to invalidate a held policy
// decision.
func (l *mdLink) Tick() bool {
	if !l.stale {
		return false
	}
	l.stale = false
	changed := false
	for i := range l.curMD {
		if l.curMD[i] != l.nextMD[i] || l.curLD[i] != l.nextLD[i] {
			changed = true
			l.curMD[i] = l.nextMD[i]
			l.curLD[i] = l.nextLD[i]
		}
	}
	return changed
}

// Current returns the most degraded VC for the vnet as seen upstream.
func (l *mdLink) Current(vnet int) int { return l.curMD[vnet] }

// settled reports whether ticking the link is a no-op.
func (l *mdLink) settled() bool { return !l.stale }

// CurrentLD returns the least degraded VC for the vnet as seen upstream.
func (l *mdLink) CurrentLD(vnet int) int { return l.curLD[vnet] }
