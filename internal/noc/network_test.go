package noc

import (
	"testing"

	"nbtinoc/internal/rng"
)

func testConfig(w, h, vcs int) Config {
	cfg := DefaultConfig()
	cfg.Width = w
	cfg.Height = h
	cfg.VCsPerVNet = vcs
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.Width, c.Height = 1, 1 },
		func(c *Config) { c.VNets = 0 },
		func(c *Config) { c.VCsPerVNet = 0 },
		func(c *Config) { c.BufferDepth = 0 },
		func(c *Config) { c.FlitWidthBits = 0 },
		func(c *Config) { c.LinkLatency = 0 },
		func(c *Config) { c.EjectRate = 0 },
		func(c *Config) { c.EjectBufferDepth = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewRejectsTooManyVCs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VNets = 9
	cfg.VCsPerVNet = 8 // 72 VCs > 64-bit mask
	if _, err := New(cfg); err == nil {
		t.Fatal("72 VCs accepted")
	}
}

func TestMeshWiring(t *testing.T) {
	n, err := New(testConfig(3, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Upper-left router: no North, no West neighbours.
	r0 := n.Router(0)
	if r0.Input(North) != nil || r0.Input(West) != nil {
		t.Error("corner router has phantom north/west inputs")
	}
	if r0.Input(East) == nil || r0.Input(South) == nil || r0.Input(Local) == nil {
		t.Error("corner router missing east/south/local inputs")
	}
	// Centre-top router (1,0) has all but North.
	r1 := n.Router(1)
	if r1.Input(North) != nil {
		t.Error("top-row router has north input")
	}
	for _, p := range []Port{East, South, West, Local} {
		if r1.Input(p) == nil {
			t.Errorf("router 1 missing input %v", p)
		}
	}
	if n.Nodes() != 6 {
		t.Errorf("Nodes() = %d", n.Nodes())
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	n, err := New(testConfig(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(0, 3, 0, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && n.TotalEjectedPackets() == 0; i++ {
		n.Step()
	}
	if got := n.TotalEjectedPackets(); got != 1 {
		t.Fatalf("ejected %d packets, want 1", got)
	}
	st := n.NI(3).Stats()
	if st.EjectedFlits != 4 {
		t.Errorf("ejected flits = %d, want 4", st.EjectedFlits)
	}
	// 0 -> 3 in a 2x2 mesh is 2 hops (XY: east then south); with a
	// 3-stage router, 1-cycle links and NI overhead the 4-flit packet
	// should complete in well under 40 cycles but not faster than the
	// pipeline allows (>= 2 hops * 4 stages + serialization 3).
	lat := st.AvgLatency()
	if lat < 10 || lat > 40 {
		t.Errorf("2-hop 4-flit latency = %v cycles, outside [10, 40]", lat)
	}
	if !n.Quiescent() {
		t.Error("network not quiescent after delivery")
	}
}

func TestInjectValidation(t *testing.T) {
	n, err := New(testConfig(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(0, 0, 0, 4); err == nil {
		t.Error("self-addressed packet accepted")
	}
	if err := n.Inject(-1, 1, 0, 4); err == nil {
		t.Error("negative source accepted")
	}
	if err := n.Inject(0, 99, 0, 4); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := n.Inject(0, 1, 5, 4); err == nil {
		t.Error("bad vnet accepted")
	}
	if err := n.Inject(0, 1, 0, 0); err == nil {
		t.Error("zero-length packet accepted")
	}
}

// runUniform drives Bernoulli uniform-random traffic for the given
// number of cycles and returns the network.
func runUniform(t *testing.T, cfg Config, rate float64, pktLen int, cycles int, seed uint64) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed)
	nodes := n.Nodes()
	pInject := rate / float64(pktLen)
	for c := 0; c < cycles; c++ {
		for node := 0; node < nodes; node++ {
			if src.Bool(pInject) {
				dst := src.Intn(nodes - 1)
				if dst >= node {
					dst++
				}
				if err := n.Inject(NodeID(node), NodeID(dst), 0, pktLen); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
	}
	return n
}

func drain(n *Network, maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		if n.Quiescent() {
			return true
		}
		n.Step()
	}
	return n.Quiescent()
}

func TestUniformTrafficConservation(t *testing.T) {
	n := runUniform(t, testConfig(4, 4, 2), 0.2, 4, 3000, 11)
	if !drain(n, 5000) {
		t.Fatalf("network failed to drain: %d flits in flight, %d queued",
			n.InFlightFlits(), n.TotalInjectedPackets()-n.TotalEjectedPackets())
	}
	inj, ej := n.TotalInjectedPackets(), n.TotalEjectedPackets()
	if inj == 0 {
		t.Fatal("no packets injected")
	}
	if inj != ej {
		t.Fatalf("conservation violated: injected %d, ejected %d", inj, ej)
	}
}

func TestBaselineDutyCycleIs100(t *testing.T) {
	cfg := testConfig(2, 2, 2)
	n := runUniform(t, cfg, 0.1, 4, 2000, 5)
	for node := NodeID(0); node < 4; node++ {
		r := n.Router(node)
		for p := Port(0); p < NumPorts; p++ {
			if r.Input(p) == nil {
				continue
			}
			for vc := 0; vc < cfg.TotalVCs(); vc++ {
				if d := n.DutyCycle(node, p, vc); d != 100 {
					t.Fatalf("baseline duty-cycle node %d port %v vc %d = %v",
						node, p, vc, d)
				}
			}
		}
	}
}

func TestHighLoadStability(t *testing.T) {
	// Saturating load must neither deadlock the drain nor violate any
	// internal invariant (panics would fail the test).
	n := runUniform(t, testConfig(4, 4, 4), 0.45, 4, 2000, 13)
	if !drain(n, 30000) {
		t.Fatalf("saturated network failed to drain: %d in flight", n.InFlightFlits())
	}
	if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
		t.Fatalf("loss under load: %d vs %d",
			n.TotalInjectedPackets(), n.TotalEjectedPackets())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		n := runUniform(t, testConfig(2, 2, 2), 0.2, 4, 1500, 21)
		var lat float64
		for i := 0; i < n.Nodes(); i++ {
			lat += n.NI(NodeID(i)).Stats().AvgLatency()
		}
		return n.TotalEjectedPackets(), lat
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", e1, l1, e2, l2)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	avg := func(rate float64) float64 {
		n := runUniform(t, testConfig(4, 4, 2), rate, 4, 4000, 31)
		var sum float64
		var cnt int
		for i := 0; i < n.Nodes(); i++ {
			st := n.NI(NodeID(i)).Stats()
			if st.EjectedPackets > 0 {
				sum += st.AvgLatency()
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	low, high := avg(0.05), avg(0.35)
	if !(high > low) {
		t.Errorf("latency did not grow with load: %.2f @0.05 vs %.2f @0.35", low, high)
	}
}

func TestResetNBTIStats(t *testing.T) {
	n := runUniform(t, testConfig(2, 2, 2), 0.2, 4, 500, 3)
	n.ResetNBTIStats()
	if got := n.Router(0).Input(Local).Device(0).Tracker.TotalCycles(); got != 0 {
		t.Fatal("tracker not reset")
	}
	n.Step()
	// Device flushes the open accounting span, so the stepped cycle is
	// visible through the accessor.
	if got := n.Router(0).Input(Local).Device(0).Tracker.TotalCycles(); got != 1 {
		t.Fatalf("tracker = %d cycles after one step", got)
	}
}

func TestVth0MatchesAcrossPolicies(t *testing.T) {
	// The same PVSeed must give identical initial Vth regardless of the
	// policy — the paper's consistency requirement.
	cfgA := testConfig(2, 2, 2)
	cfgB := testConfig(2, 2, 2)
	cfgB.Policy = nil // both baseline here; seed equality is the point
	cfgA.PVSeed, cfgB.PVSeed = 42, 42
	a, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for node := NodeID(0); node < 4; node++ {
		for p := Port(0); p < NumPorts; p++ {
			for vc := 0; vc < cfgA.TotalVCs(); vc++ {
				if a.Vth0(node, p, vc) != b.Vth0(node, p, vc) {
					t.Fatalf("Vth0 differs at %d/%v/%d", node, p, vc)
				}
			}
		}
	}
}

func TestMostDegradedVCIsArgmaxVth0(t *testing.T) {
	cfg := testConfig(2, 2, 4)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	md := n.MostDegradedVC(0, East, 0)
	best, bestV := -1, 0.0
	for vc := 0; vc < cfg.VCsPerVNet; vc++ {
		if v := n.Vth0(0, East, vc); best == -1 || v > bestV {
			best, bestV = vc, v
		}
	}
	if md != best {
		t.Fatalf("MostDegradedVC = %d, want %d", md, best)
	}
}

func TestMultiVNetIsolation(t *testing.T) {
	cfg := testConfig(2, 2, 2)
	cfg.VNets = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	for c := 0; c < 2000; c++ {
		for node := 0; node < 4; node++ {
			if src.Bool(0.05) {
				dst := (node + 1 + src.Intn(3)) % 4
				if dst == node {
					dst = (dst + 1) % 4
				}
				vn := src.Intn(3)
				if err := n.Inject(NodeID(node), NodeID(dst), vn, 3); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
	}
	if !drain(n, 5000) {
		t.Fatal("multi-vnet network failed to drain")
	}
	if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
		t.Fatalf("loss: %d vs %d", n.TotalInjectedPackets(), n.TotalEjectedPackets())
	}
}

func TestLinkLatencyAffectsLatency(t *testing.T) {
	lat := func(linkLat int) float64 {
		cfg := testConfig(2, 2, 2)
		cfg.LinkLatency = linkLat
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Inject(0, 3, 0, 4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400 && n.TotalEjectedPackets() == 0; i++ {
			n.Step()
		}
		return n.NI(3).Stats().AvgLatency()
	}
	l1, l4 := lat(1), lat(4)
	if !(l4 > l1) {
		t.Errorf("latency with 4-cycle links (%v) not above 1-cycle (%v)", l4, l1)
	}
}

func TestAccessorsSmoke(t *testing.T) {
	cfg := testConfig(2, 2, 2)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(0, 3, 0, 4); err != nil {
		t.Fatal(err)
	}
	n.Run(60)
	r := n.Router(0)
	if r.ID() != 0 || r.Coord() != (Coord{0, 0}) {
		t.Error("router identity accessors wrong")
	}
	iu := r.Input(East)
	if iu.Port() != East || iu.NumVCs() != 2 {
		t.Error("input unit accessors wrong")
	}
	ou := r.Output(East)
	if ou.Port() != East || ou.PolicyName() != "baseline" {
		t.Errorf("output unit accessors wrong: %v %q", ou.Port(), ou.PolicyName())
	}
	ni := n.NI(0)
	if ni.ID() != 0 || ni.Ejection() == nil || ni.InjectionOutput() == nil {
		t.Error("NI accessors wrong")
	}
	if n.Config().Width != 2 {
		t.Error("Config accessor wrong")
	}
	st := n.NI(3).Stats()
	if st.AvgNetLatency() <= 0 || st.AvgLatency() < st.AvgNetLatency() {
		t.Errorf("latency accessors: avg %v net %v", st.AvgLatency(), st.AvgNetLatency())
	}
	// Flit type strings.
	for _, ft := range []FlitType{HeadFlit, BodyFlit, TailFlit, HeadTailFlit, FlitType(9)} {
		if ft.String() == "" {
			t.Error("empty FlitType string")
		}
	}
	if Port(9).String() == "" || VCState(9).String() == "" {
		t.Error("out-of-range enum strings empty")
	}
	if NewRoundRobin(3).Size() != 3 {
		t.Error("arbiter Size wrong")
	}
	local := n.Router(0).Input(Local)
	if local.Writes() == 0 || local.Reads() == 0 {
		t.Error("access counters empty after traffic")
	}
	if got := n.Router(0).Output(East); got.FlitsSent() == 0 {
		t.Error("FlitsSent zero after traffic through east link")
	}
	_ = ou.GateEvents()
	_ = ou.WakeEvents()
	_ = n.Router(0).CrossbarTraversals()
	_ = n.Router(0).VAGrants()
	_ = n.Router(0).SAGrants()
	n.ResetTrafficStats()
	if n.NI(3).Stats().EjectedPackets != 0 {
		t.Error("ResetTrafficStats did not clear")
	}
	if !PolicyUsesSensors(&SensorClaimer{}) || PolicyUsesSensors(BaselinePolicy{}) {
		t.Error("PolicyUsesSensors wrong")
	}
	if BaselinePolicy.Name(BaselinePolicy{}) != "baseline" {
		t.Error("baseline name wrong")
	}
}

// SensorClaimer is a test policy that claims sensor usage.
type SensorClaimer struct{ BaselinePolicy }

func (SensorClaimer) UsesSensors() bool { return true }

func TestNonSquareMeshTraffic(t *testing.T) {
	// Rectangular meshes are first-class: a 4x2 mesh must deliver under
	// load with correct wiring.
	n := runUniform(t, testConfig(4, 2, 2), 0.2, 4, 3000, 41)
	if !drain(n, 10000) {
		t.Fatal("4x2 mesh failed to drain")
	}
	if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
		t.Fatalf("loss on 4x2 mesh: %d vs %d",
			n.TotalInjectedPackets(), n.TotalEjectedPackets())
	}
	if n.Nodes() != 8 {
		t.Errorf("Nodes = %d", n.Nodes())
	}
}
