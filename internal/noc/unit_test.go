package noc

import (
	"testing"

	"nbtinoc/internal/rng"
)

// mkChannel builds a connected OutputUnit/InputUnit pair outside a full
// network, for white-box protocol tests.
func mkChannel(t *testing.T, cfg Config, factory PolicyFactory) (*OutputUnit, *InputUnit, *Network) {
	t.Helper()
	// A minimal network supplies consistent wiring helpers.
	n := &Network{cfg: cfg}
	ou := newOutputUnit(0, East, &n.cfg, cfg.BufferDepth, factory)
	vth := make([]float64, cfg.TotalVCs())
	for i := range vth {
		vth[i] = 0.18
	}
	iu := newInputUnit(1, West, &n.cfg, cfg.BufferDepth, vth)
	n.connect(ou, iu)
	return ou, iu, n
}

// tick advances the channel's control links and delivers flits/credits,
// mimicking the relevant phases of Network.Step for a single channel.
func (n *Network) tickChannel(t *testing.T, ou *OutputUnit, iu *InputUnit, cycle uint64) []Flit {
	t.Helper()
	if iu.power.Tick() {
		iu.pwrDirty = true
	}
	if ou.mdIn.Tick() {
		ou.polDirty = true
	}
	ou.creditTick()
	arrived := append([]Flit(nil), iu.flitIn.Receive()...)
	for i := range arrived {
		f := arrived[i]
		iu.bufferWrite(&f, cycle, Local)
	}
	iu.applyPower(cycle)
	return arrived
}

func unitConfig() Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	cfg.VCsPerVNet = 4
	return cfg
}

func TestOutVCStateLifecycle(t *testing.T) {
	cfg := unitConfig()
	ou, iu, n := mkChannel(t, cfg, nil)
	cycle := uint64(1)
	n.tickChannel(t, ou, iu, cycle)

	vc := ou.allocVC(0)
	if vc < 0 {
		t.Fatal("allocation failed on empty channel")
	}
	if ou.StateOf(vc) != VCActive {
		t.Fatal("allocated VC not active in outVCstate")
	}
	// Send a 2-flit packet.
	head := Flit{Type: HeadFlit, Len: 2, VC: int32(vc)}
	tail := Flit{Type: TailFlit, Seq: 1, Len: 2, VC: int32(vc)}
	ou.sendFlit(&head, vc, cycle)
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	ou.sendFlit(&tail, vc, cycle)
	if ou.Credits(vc) != cfg.BufferDepth-2 {
		t.Fatalf("credits = %d, want %d", ou.Credits(vc), cfg.BufferDepth-2)
	}
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	if iu.Occupancy(vc) != 2 {
		t.Fatalf("downstream occupancy = %d, want 2", iu.Occupancy(vc))
	}
	if iu.VCStateOf(vc) != VCActive {
		t.Fatal("downstream VC not active after head arrival")
	}
	// VC stays active upstream until the tail drains and credits return.
	if ou.StateOf(vc) != VCActive {
		t.Fatal("outVCstate retired before drain")
	}
	iu.popFlit(vc, cycle)
	iu.popFlit(vc, cycle)
	if iu.VCStateOf(vc) != VCIdle {
		t.Fatal("downstream VC not idle after tail pop")
	}
	// Credits flow back over the pipeline; after both arrive the
	// upstream VC returns to idle.
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	if ou.StateOf(vc) != VCIdle {
		t.Fatalf("outVCstate = %v after full drain, want idle", ou.StateOf(vc))
	}
	if ou.Credits(vc) != cfg.BufferDepth {
		t.Fatalf("credits = %d after drain, want %d", ou.Credits(vc), cfg.BufferDepth)
	}
}

func TestAllocRotates(t *testing.T) {
	cfg := unitConfig()
	ou, _, _ := mkChannel(t, cfg, nil)
	a := ou.allocVC(0)
	b := ou.allocVC(0)
	c := ou.allocVC(0)
	d := ou.allocVC(0)
	if a == b || b == c || c == d {
		t.Fatalf("allocation did not rotate: %d %d %d %d", a, b, c, d)
	}
	if e := ou.allocVC(0); e != -1 {
		t.Fatalf("5th allocation on 4 VCs succeeded: %d", e)
	}
}

func TestSendWithoutCreditPanics(t *testing.T) {
	cfg := unitConfig()
	cfg.BufferDepth = 1
	ou, _, _ := mkChannel(t, cfg, nil)
	vc := ou.allocVC(0)
	ou.sendFlit(&Flit{Type: HeadFlit, Len: 2}, vc, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("send without credit did not panic")
		}
	}()
	ou.sendFlit(&Flit{Type: BodyFlit, Len: 2}, vc, 2)
}

func TestSendOnUnallocatedVCPanics(t *testing.T) {
	ou, _, _ := mkChannel(t, unitConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("send on idle VC did not panic")
		}
	}()
	ou.sendFlit(&Flit{Type: HeadFlit, Len: 1}, 0, 1)
}

func TestHeadIntoBusyVCPanics(t *testing.T) {
	cfg := unitConfig()
	_, iu, _ := mkChannel(t, cfg, nil)
	iu.bufferWrite(&Flit{Type: HeadFlit, Len: 2, VC: 0}, 1, Local)
	defer func() {
		if recover() == nil {
			t.Fatal("packet mixing did not panic")
		}
	}()
	iu.bufferWrite(&Flit{Type: HeadFlit, Len: 2, VC: 0}, 2, Local)
}

func TestBodyIntoIdleVCPanics(t *testing.T) {
	_, iu, _ := mkChannel(t, unitConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("body flit into idle VC did not panic")
		}
	}()
	iu.bufferWrite(&Flit{Type: BodyFlit, Len: 2, VC: 0}, 1, Local)
}

func TestBufferOverflowPanics(t *testing.T) {
	cfg := unitConfig()
	cfg.BufferDepth = 2
	_, iu, _ := mkChannel(t, cfg, nil)
	iu.bufferWrite(&Flit{Type: HeadFlit, Len: 4, VC: 0}, 1, Local)
	iu.bufferWrite(&Flit{Type: BodyFlit, Len: 4, VC: 0}, 2, Local)
	defer func() {
		if recover() == nil {
			t.Fatal("buffer overflow did not panic")
		}
	}()
	iu.bufferWrite(&Flit{Type: BodyFlit, Len: 4, VC: 0}, 3, Local)
}

func TestCreditOverflowPanics(t *testing.T) {
	cfg := unitConfig()
	ou, iu, n := mkChannel(t, cfg, nil)
	// Returning a credit the upstream never spent must trip the check.
	iu.creditOut.Send(0)
	defer func() {
		if recover() == nil {
			t.Fatal("credit overflow did not panic")
		}
	}()
	n.tickChannel(t, ou, iu, 1)
}

// gateAll is a test policy gating every idle VC unconditionally.
type gateAll struct{}

func (gateAll) Name() string                             { return "test-gate-all" }
func (gateAll) DesiredPower(in *PolicyInput, out []bool) {}

func TestPowerMaskPropagationDelay(t *testing.T) {
	cfg := unitConfig()
	ou, iu, n := mkChannel(t, cfg, func() Policy { return gateAll{} })
	cycle := uint64(1)
	n.tickChannel(t, ou, iu, cycle)
	if !iu.Powered(0) {
		t.Fatal("VCs must start powered")
	}
	// The policy gates everything; the command reaches the downstream
	// one cycle later.
	ou.runPolicy(0, cycle)
	if !iu.Powered(0) {
		t.Fatal("mask applied without link delay")
	}
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	for vc := 0; vc < cfg.TotalVCs(); vc++ {
		if iu.Powered(vc) {
			t.Fatalf("VC %d still powered after gate command", vc)
		}
	}
	// Span accounting sees one powered cycle (closed by the power
	// transition) and one gated cycle once flushed.
	iu.flushNBTI(cycle)
	if got := iu.vcs[0].device.Tracker.StressCycles(); got != 1 {
		t.Fatalf("stress cycles = %d, want 1", got)
	}
	if got := iu.vcs[0].device.Tracker.RecoveryCycles(); got != 1 {
		t.Fatalf("recovery cycles = %d, want 1", got)
	}
}

func TestPolicyCannotGateActiveVC(t *testing.T) {
	cfg := unitConfig()
	ou, iu, n := mkChannel(t, cfg, func() Policy { return gateAll{} })
	cycle := uint64(1)
	n.tickChannel(t, ou, iu, cycle)
	vc := ou.allocVC(0)
	ou.runPolicy(0, cycle) // gate-all policy, but vc is active
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	if !iu.Powered(vc) {
		t.Fatal("active VC was gated")
	}
	if !ou.PoweredMirror(vc) {
		t.Fatal("upstream mirror lost the active VC's power state")
	}
}

func TestMDLinkPropagation(t *testing.T) {
	cfg := unitConfig()
	cfg.Sensor.SamplePeriod = 1
	ou, iu, n := mkChannel(t, cfg, nil)
	if err := iu.attachSensors(cfg.Sensor, func() *rng.Source { return nil }); err != nil {
		t.Fatal(err)
	}
	// Force distinct Vth0 values so the comparator has a clear winner.
	iu.vcs[2].device.Vth0 = 0.25
	cycle := uint64(1)
	n.tickChannel(t, ou, iu, cycle)
	iu.publishMostDegraded(cycle)
	// The upstream still sees the initial value (one-cycle delay).
	if got := ou.mdIn.Current(0); got != 0 {
		t.Fatalf("md visible upstream without delay: %d", got)
	}
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	if got := ou.mdIn.Current(0); got != 2 {
		t.Fatalf("md upstream = %d, want 2", got)
	}
}

func TestWakeupCountdownInMirror(t *testing.T) {
	cfg := unitConfig()
	cfg.WakeupLatency = 2
	ou, iu, n := mkChannel(t, cfg, func() Policy { return gateAll{} })
	cycle := uint64(1)
	n.tickChannel(t, ou, iu, cycle)
	// Gate everything.
	ou.runPolicy(0, cycle)
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	if ou.hasFreeVC(0) {
		t.Fatal("gated VCs reported free")
	}
	// Wake VC 0 via a keep-one policy decision: emulate by sending an
	// all-on mask through a baseline policy run.
	ou.policies[0] = BaselinePolicy{}
	ou.runPolicy(1, cycle)
	// Mirror: powered but ramping (wakeLeft = 2) — not yet allocatable.
	if ou.hasFreeVC(0) {
		t.Fatal("waking VC allocatable immediately")
	}
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	ou.runPolicy(1, cycle) // wakeLeft 2 -> 1
	if ou.hasFreeVC(0) {
		t.Fatal("waking VC allocatable after 1 of 2 ramp cycles")
	}
	cycle++
	n.tickChannel(t, ou, iu, cycle)
	ou.runPolicy(1, cycle) // wakeLeft 1 -> 0
	if !ou.hasFreeVC(0) {
		t.Fatal("VC not allocatable after ramp completed")
	}
}
