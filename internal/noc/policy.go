package noc

// PolicyInput is the information visible to a pre-VA recovery stage for
// one (output port, vnet) pair — i.e. for the VCs of one downstream
// input port slice. Slices are indexed by the VC position within the
// vnet (0..NumVCs-1) and must not be retained across calls.
type PolicyInput struct {
	// NumVCs is the number of VCs in the vnet slice.
	NumVCs int
	// Idle reports, per VC, whether the outVCstate mirror considers the
	// VC unallocated (gateable). A false entry means the VC is owned by
	// a packet and will be kept powered regardless of the decision.
	Idle []bool
	// Powered is the current power state per VC (the upstream mirror).
	Powered []bool
	// MostDegraded is the VC (within the slice) reported by the
	// downstream sensor bank over the Down_Up link, or -1 when the
	// policy runs sensor-less.
	MostDegraded int
	// LeastDegraded is the healthiest VC per the sensor bank — used by
	// the wear-steering policy extension; -1 when unavailable.
	LeastDegraded int
	// NewTraffic is the is_new_traffic_outport_x() input of Algorithms
	// 1 and 2: true when at least one packet buffered at this upstream
	// node wants this output port and has no downstream VC allocated.
	NewTraffic bool
	// Cycle is the current network cycle (for time-based rotation).
	Cycle uint64
}

// Policy is the pre-VA recovery stage run by an upstream output unit,
// one instance per (output port, vnet). Implementations set out[v] to
// the desired power state of VC v. The caller forces out[v] = true for
// every non-idle VC afterwards, so a policy can never gate a buffer that
// holds or expects flits.
//
// The contract derived from the paper's observations (Section III-A):
// leave at most one idle VC powered when NewTraffic is true (the VC a new
// packet will be steered to), and gate every idle VC when it is false.
// The Baseline policy intentionally violates this — it models the
// non-NBTI-aware reference NoC with no gating at all.
type Policy interface {
	// Name returns the policy identifier used in reports.
	Name() string
	// DesiredPower fills out (length in.NumVCs) with the wanted power
	// state of each VC in the slice.
	DesiredPower(in *PolicyInput, out []bool)
}

// UsesSensors reports whether the policy consumes Down_Up sensor
// information; used by the area model to decide whether sensor and
// control-link overhead applies. Policies may implement it optionally.
type UsesSensors interface {
	UsesSensors() bool
}

// PolicyUsesSensors returns p's sensor usage, defaulting to false for
// policies that do not implement UsesSensors.
func PolicyUsesSensors(p Policy) bool {
	if u, ok := p.(UsesSensors); ok {
		return u.UsesSensors()
	}
	return false
}

// SteadyPolicy is an optional interface a Policy implements to declare
// that DesiredPower never reads PolicyInput.Cycle while
// PolicyInput.NewTraffic is false — its output is then a pure function
// of the remaining inputs, which only change while the owning unit is
// on the active set. The activity-gated engine may skip the per-cycle
// policy run of a fully idle, settled output unit only when every one
// of its per-vnet policies makes this declaration; policies that keep
// per-call state or rotate on a time basis even without traffic must
// not.
type SteadyPolicy interface {
	SteadyWhenIdle() bool
}

// PolicySteadyWhenIdle returns p's declaration, defaulting to false
// (never skipped) for policies that do not implement SteadyPolicy.
func PolicySteadyWhenIdle(p Policy) bool {
	if s, ok := p.(SteadyPolicy); ok {
		return s.SteadyWhenIdle()
	}
	return false
}

// CycleFreePolicy is a strictly stronger declaration than SteadyPolicy:
// DesiredPower never reads PolicyInput.Cycle and keeps no per-call
// state for ANY NewTraffic value, so its output is a pure function of
// (Idle, Powered, MostDegraded, LeastDegraded, NewTraffic). An output
// unit whose per-vnet policies all make this declaration may elide a
// settled policy run whenever those inputs are bit-identical to the
// previous executed run — even while traffic waits. Time-rotating
// policies (RRNoSensor under traffic) must not implement this.
type CycleFreePolicy interface {
	CycleFree() bool
}

// PolicyCycleFree returns p's declaration, defaulting to false for
// policies that do not implement CycleFreePolicy.
func PolicyCycleFree(p Policy) bool {
	if c, ok := p.(CycleFreePolicy); ok {
		return c.CycleFree()
	}
	return false
}

// PhasePolicy is the cycle-dependent counterpart of CycleFreePolicy: the
// policy declares that DesiredPower reads PolicyInput.Cycle only through
// the phase equivalence class returned by Phase, and is otherwise a pure
// function of its PolicyInput with no per-call state. The engine may then
// memoise decisions per (inputs, phase) row instead of re-running the
// policy every cycle: a time-rotating policy in a periodic steady state
// revisits each phase with identical inputs after one rotation.
type PhasePolicy interface {
	// Phase maps a cycle to its equivalence class in [0, count). count
	// must be a constant for a given policy instance and VC count.
	Phase(cycle uint64, numVCs int) (phase, count int)
}

// BaselinePolicy keeps every VC buffer powered at all times: the paper's
// reference NoC that is not NBTI aware. Its duty-cycle is 100% on every
// VC and it anchors the absolute ΔVth-saving comparison.
type BaselinePolicy struct{}

// Name implements Policy.
func (BaselinePolicy) Name() string { return "baseline" }

// DesiredPower implements Policy: all VCs stay on.
func (BaselinePolicy) DesiredPower(in *PolicyInput, out []bool) {
	for i := 0; i < in.NumVCs; i++ {
		out[i] = true
	}
}

// SteadyWhenIdle implements SteadyPolicy: the all-on decision never
// reads the cycle.
func (BaselinePolicy) SteadyWhenIdle() bool { return true }

// CycleFree implements CycleFreePolicy: all-on is input-independent.
func (BaselinePolicy) CycleFree() bool { return true }

// NewBaseline is the PolicyFactory for BaselinePolicy.
func NewBaseline() Policy { return BaselinePolicy{} }
