package noc

// This file is the single point of truth for the flat-memory engine's
// packed arena layout (see the Network doc comment):
//
//	unit slot = node*unitSlots + slot   (slot NumPorts = NI side)
//	vc slot   = unit slot*TotalVCs + vc
//
// Every multiply-add offset into an arena routes through the helpers
// below; the packedidx analyzer (internal/lint) rejects packed
// arithmetic in index position anywhere else, so a layout change — a
// different stride, padding for cache alignment — happens in exactly
// one place instead of silently reading another unit's state at the
// call sites that were missed.

// unitIndex returns the unit-arena slot of (node, slot): router ports
// 0..NumPorts-1, the NI-side pseudo-port at slot NumPorts.
//
//nbtilint:packed
func unitIndex(node, slot int) int {
	return node*unitSlots + slot
}

// flatIndex returns the packed offset of element sub within group when
// each group is stride elements wide — the generic multiply-add every
// packed layout reduces to (e.g. flattened (port, vc) pairs:
// flatIndex(port, TotalVCs, vc)).
//
//nbtilint:packed
func flatIndex(group, stride, sub int) int {
	return group*stride + sub
}

// window carves the group-th stride-wide window out of a flat arena,
// capacity-clamped so the window cannot be grown into its neighbour.
//
//nbtilint:packed
func window[T any](arena []T, group, stride int) []T {
	lo, hi := group*stride, (group+1)*stride
	return arena[lo:hi:hi]
}
