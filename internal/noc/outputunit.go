package noc

import (
	"fmt"
	"math/bits"

	"nbtinoc/internal/metrics"
)

// outVC is the per-VC remainder of the upstream outVCstate that doesn't
// pack into a bitmask: the credit count and the sleep-transistor wake-up
// ramp counter. Allocation state, tail-sent, and the power mirror live
// in the owning OutputUnit's actMask/tailMask/pwrMask bitsets.
type outVC struct {
	credits int32
	// wakeLeft counts the remaining sleep-transistor wake-up cycles
	// after a gated VC is commanded back on; the VC is powered (and
	// stressed) but not allocatable until it reaches zero.
	wakeLeft int32
}

// OutputUnit is the upstream end of a channel: it owns the outVCstate
// for the downstream input port, performs the downstream VC allocation,
// runs the pre-VA recovery policy, and transmits flits. Per-VC state is
// packed into bitmasks (bit v = flattened VC v) so allocation scans and
// quiescence checks are single mask operations.
type OutputUnit struct {
	owner NodeID
	port  Port
	cfg   *Config
	depth int
	//nbtilint:arena
	vcs []outVC
	// actMask marks VCs in the mirrored VCActive state; tailMask marks
	// active VCs whose tail flit has been sent (awaiting credit drain);
	// pwrMask mirrors the power state most recently commanded
	// downstream (VA only considers powered idle VCs); wakeMask marks
	// VCs still inside their wake-up ramp (wakeLeft > 0).
	actMask, tailMask, pwrMask, wakeMask uint64
	// creditMask has bit v set while vcs[v].credits > 0, so the hot
	// canSend check reads only unit-header masks instead of chasing the
	// per-VC credit counter's cache line.
	creditMask uint64
	// linkFreeAt is the first cycle the (possibly serialized) link is
	// free again after the previous flit's phits. Declared among the
	// masks so canSend stays within the unit-header cache lines.
	linkFreeAt uint64
	// creditIn receives freed-slot notifications from downstream. Like
	// every channel's receiving end it is embedded in its reader (the
	// downstream writes through its creditOut pointer) so the per-cycle
	// receive pass stays on unit-resident cache lines.
	creditIn Pipeline[int]
	// mdIn is the Down_Up control channel, embedded for the same reason
	// (the downstream writes through its mdOut pointer).
	mdIn mdLink
	// flitOut carries flits to the downstream input unit (points at the
	// downstream's embedded flitIn pipeline).
	flitOut *Pipeline[Flit]
	// powerOut is the Up_Down control channel (points at the downstream's
	// embedded power link).
	powerOut *powerLink
	// policies holds one recovery-policy instance per vnet.
	policies []Policy
	// allocPtr rotates the VA start position per vnet so that, when a
	// policy leaves several idle VCs powered (baseline), allocation
	// spreads across them.
	allocPtr []int
	// scratch buffers reused by runPolicy.
	inIdle, inPow, desired []bool
	polIn                  PolicyInput
	// flitsSent counts link traversals; gateEvents and wakeEvents count
	// power-state transitions (1->0 and 0->1) commanded by the policy.
	flitsSent, gateEvents, wakeEvents uint64
	// mFlits, mGate and mWake are the observability handles mirroring
	// the counters above into the process metrics registry (per-policy
	// gate/wake children cached at construction); nil when disabled.
	mFlits, mGate, mWake *metrics.Counter
	// steady records whether every per-vnet policy declares (via
	// SteadyPolicy) that its output is cycle-independent while no new
	// traffic waits; only steady output units may be skipped by the
	// activity-gated engine.
	steady bool
	// pure records the stronger CycleFreePolicy declaration for every
	// per-vnet policy: DesiredPower never reads the cycle for any
	// NewTraffic value, so a settled run may be elided whenever all
	// decision inputs match the previous executed run, traffic or not.
	pure bool
	// memoVnMask has bit vn set when policies[vn]'s DesiredPower call
	// inside runPolicy may be memoised on its packed inputs
	// (lastIdle/lastPow/lastMisc -> lastWant): the policy is cycle-free,
	// or declares (PhasePolicy) that its cycle dependence factors through
	// a small rotating phase. Memo rows are indexed vn*memoStride+phase;
	// phasePols[vn] is the phase mapper (nil for cycle-free vnets), and
	// the whole slice is nil when no vnet rotates.
	memoVnMask uint64
	memoStride int
	phasePols  []PhasePolicy
	//nbtilint:arena
	lastIdle, lastPow, lastMisc, lastWant []uint64
	// settled is recomputed by every runPolicy call: true when the call
	// caused no power transition, no wake-up ramp progress, and re-sent
	// the previous mask — i.e. re-running it with unchanged inputs is a
	// no-op.
	settled bool
	// polDirty marks that an input of the policy decision changed since
	// the last runPolicy call: a VC allocation or retirement (Idle[]), or
	// a ticked Down_Up value (MostDegraded/LeastDegraded). While clear —
	// and only for a steady, settled unit seeing no new traffic now or at
	// its last run — the decision inputs are bit-identical to the last
	// executed call, so the call is elided.
	polDirty bool
	// lastNT records the packed NewTraffic mask the last executed
	// runPolicy saw. A steady policy's output is only guaranteed
	// reproducible between two quiet (lastNT == 0) calls; a pure
	// (cycle-free) policy's between any two calls with equal masks.
	lastNT uint64
	// wakeDown re-activates the downstream unit on the network
	// active-set when this unit emits something downstream must observe
	// (a flit, a changed power mask); nil outside a network.
	wakeDown func()
	// dnFlit/dnPow point at the downstream ROUTER's flitPorts and
	// powPorts summaries (dnBit is this channel's port bit there): flit
	// and changed-power sends arm the downstream port so its next
	// receive pass processes them. nil when the downstream is an NI
	// (whose receive pass is not port-gated) or outside a network.
	dnFlit, dnPow *uint64
	dnBit         uint64
	// ownPol/ownAct point at the OWNING router's polPorts and busyOut
	// summaries (ownPolBit is this unit's port bit in both); the polDirty
	// writers arm ownPol so the policy sweep revisits the port, and
	// allocVC/creditTick keep ownAct tracking actMask's empty <->
	// non-empty transitions. nil for NI-owned or standalone units, whose
	// policy runs are not port-gated.
	ownPol, ownAct *uint64
	ownPolBit      uint64
}

// initOutputUnit initialises an output unit in place over caller-owned
// vcs backing storage (TotalVCs entries, typically a subslice of the
// network's flat arena).
func initOutputUnit(ou *OutputUnit, owner NodeID, port Port, cfg *Config,
	vcs []outVC, depth int, factory PolicyFactory) {
	total := cfg.TotalVCs()
	*ou = OutputUnit{
		owner:    owner,
		port:     port,
		cfg:      cfg,
		depth:    depth,
		vcs:      vcs[:total:total],
		policies: make([]Policy, cfg.VNets),
		allocPtr: make([]int, cfg.VNets),
		inIdle:   make([]bool, cfg.VCsPerVNet),
		inPow:    make([]bool, cfg.VCsPerVNet),
		desired:  make([]bool, cfg.VCsPerVNet),
	}
	for i := range ou.vcs {
		ou.vcs[i] = outVC{credits: int32(depth)}
	}
	if depth > 0 {
		ou.creditMask = vcAllMask(total)
	}
	ou.creditIn.slots = make([][]int, cfg.LinkLatency)
	mdBack := make([]int, 4*cfg.VNets)
	ou.mdIn = mdLink{
		curMD: window(mdBack, 0, cfg.VNets), nextMD: window(mdBack, 1, cfg.VNets),
		curLD: window(mdBack, 2, cfg.VNets), nextLD: window(mdBack, 3, cfg.VNets),
	}
	ou.pwrMask = vcAllMask(total)
	// The scratch-buffer views of PolicyInput never change after init.
	ou.polIn.NumVCs = cfg.VCsPerVNet
	ou.polIn.Idle = ou.inIdle
	ou.polIn.Powered = ou.inPow
	if factory == nil {
		factory = NewBaseline
	}
	ou.steady = true
	ou.pure = true
	ou.memoStride = 1
	for vn := range ou.policies {
		ou.policies[vn] = factory()
		ou.steady = ou.steady && PolicySteadyWhenIdle(ou.policies[vn])
		ou.pure = ou.pure && PolicyCycleFree(ou.policies[vn])
		if PolicyCycleFree(ou.policies[vn]) {
			ou.memoVnMask |= 1 << uint(vn)
		} else if pp, ok := ou.policies[vn].(PhasePolicy); ok {
			if _, cnt := pp.Phase(0, cfg.VCsPerVNet); cnt >= 1 && cnt <= 64 {
				if ou.phasePols == nil {
					ou.phasePols = make([]PhasePolicy, cfg.VNets)
				}
				ou.phasePols[vn] = pp
				ou.memoVnMask |= 1 << uint(vn)
				if cnt > ou.memoStride {
					ou.memoStride = cnt
				}
			}
		}
	}
	rows := cfg.VNets * ou.memoStride
	memo := make([]uint64, 4*rows)
	ou.lastIdle = window(memo, 0, rows)
	ou.lastPow = window(memo, 1, rows)
	ou.lastMisc = window(memo, 2, rows)
	ou.lastWant = window(memo, 3, rows)
	for i := range ou.lastMisc {
		// An impossible key (misc is always < 1<<17) forces the first
		// run of every memo row to execute.
		ou.lastMisc[i] = ^uint64(0)
	}
	ou.polDirty = true
	ou.mFlits = flitsRoutedCounter()
	ou.mGate, ou.mWake = gatingCounters(ou.policies[0].Name())
}

// newOutputUnit builds a standalone upstream side of a channel whose
// downstream buffers have the given depth (unit tests); networks
// initialise units in place over their flat arenas instead.
func newOutputUnit(owner NodeID, port Port, cfg *Config, depth int, factory PolicyFactory) *OutputUnit {
	ou := &OutputUnit{}
	initOutputUnit(ou, owner, port, cfg, make([]outVC, cfg.TotalVCs()), depth, factory)
	return ou
}

// vnetMask returns the mask selecting vnet's VCsPerVNet contiguous bits.
func (ou *OutputUnit) vnetMask(vnet int) uint64 {
	return vcAllMask(ou.cfg.VCsPerVNet) << uint(vnet*ou.cfg.VCsPerVNet)
}

// Port returns the output port this unit serves.
func (ou *OutputUnit) Port() Port { return ou.port }

// FlitsSent returns the number of flits launched onto the link.
func (ou *OutputUnit) FlitsSent() uint64 { return ou.flitsSent }

// GateEvents returns the number of power-down transitions commanded.
func (ou *OutputUnit) GateEvents() uint64 { return ou.gateEvents }

// WakeEvents returns the number of power-up transitions commanded.
func (ou *OutputUnit) WakeEvents() uint64 { return ou.wakeEvents }

// PolicyName returns the name of the recovery policy (vnet 0).
func (ou *OutputUnit) PolicyName() string { return ou.policies[0].Name() }

// Credits returns the available credits of flattened VC vc.
func (ou *OutputUnit) Credits(vc int) int { return int(ou.vcs[vc].credits) }

// StateOf returns the mirrored allocation state of flattened VC vc.
func (ou *OutputUnit) StateOf(vc int) VCState {
	if ou.actMask>>uint(vc)&1 != 0 {
		return VCActive
	}
	return VCIdle
}

// PoweredMirror reports whether VC vc is powered per the last mask sent.
func (ou *OutputUnit) PoweredMirror(vc int) bool { return ou.pwrMask>>uint(vc)&1 != 0 }

// creditTick consumes this cycle's returned credits and retires VCs
// whose packets have fully drained downstream (tail sent and all
// credits back), returning them to idle for reallocation.
func (ou *OutputUnit) creditTick() {
	for _, vc := range ou.creditIn.Receive() {
		v := &ou.vcs[vc]
		v.credits++
		ou.creditMask |= uint64(1) << uint(vc)
		if int(v.credits) > ou.depth {
			panic(fmt.Sprintf("noc: credit overflow on node %d port %v vc %d",
				ou.owner, ou.port, vc))
		}
		bit := uint64(1) << uint(vc)
		if ou.actMask&ou.tailMask&bit != 0 && int(v.credits) == ou.depth {
			ou.actMask &^= bit
			ou.tailMask &^= bit
			ou.polDirty = true
			if ou.ownPol != nil {
				*ou.ownPol |= ou.ownPolBit
				if ou.actMask == 0 {
					*ou.ownAct &^= ou.ownPolBit
				}
			}
		}
	}
}

// freeVCs returns the mask of VCs in the vnet slice that allocVC could
// claim: idle, powered, and with a finished wake-up ramp.
func (ou *OutputUnit) freeVCs(vnet int) uint64 {
	return ^ou.actMask & ou.pwrMask &^ ou.wakeMask & ou.vnetMask(vnet)
}

// hasFreeVC reports whether the vnet slice contains an idle, powered VC
// that allocVC would claim.
func (ou *OutputUnit) hasFreeVC(vnet int) bool {
	return ou.freeVCs(vnet) != 0
}

// allocVC implements the VA stage for one new packet on the given vnet:
// it claims an idle, powered downstream VC and returns its flattened
// index, or -1 when none is available. The search starts at a rotating
// pointer; under gating policies at most one candidate exists (the
// designated keep VC), so the rotation only matters for the baseline.
func (ou *OutputUnit) allocVC(vnet int) int {
	free := ou.freeVCs(vnet)
	if free == 0 {
		return -1
	}
	v := ou.cfg.VCsPerVNet
	shift := uint(vnet * v)
	// Rotating-priority pick within the vnet slice: first set bit at or
	// after allocPtr, wrapping to the lowest set bit — identical to the
	// modular scan from allocPtr.
	local := free >> shift
	i := bits.TrailingZeros64(local)
	start := ou.allocPtr[vnet]
	if hi := local >> uint(start); hi != 0 {
		i = start + bits.TrailingZeros64(hi)
	}
	idx := int(shift) + i
	ou.actMask |= 1 << uint(idx)
	ou.tailMask &^= 1 << uint(idx)
	ou.allocPtr[vnet] = (i + 1) % v
	ou.polDirty = true
	if ou.ownPol != nil {
		*ou.ownPol |= ou.ownPolBit
		*ou.ownAct |= ou.ownPolBit
	}
	return idx
}

// canSend reports whether a flit may be sent on flattened VC vc at the
// given cycle: the VC must be owned, a credit available, and the
// serialized link free.
func (ou *OutputUnit) canSend(vc int, cycle uint64) bool {
	return (ou.actMask&ou.creditMask)>>uint(vc)&1 != 0 && cycle >= ou.linkFreeAt
}

// sendFlit transmits f on flattened VC vc (the ST stage) starting at
// the given cycle, consuming one credit and occupying the link for
// PhitsPerFlit cycles. The flit's VC field is rewritten in place for
// the downstream port before the link copies it.
func (ou *OutputUnit) sendFlit(f *Flit, vc int, cycle uint64) {
	bit := uint64(1) << uint(vc)
	v := &ou.vcs[vc]
	if ou.actMask&bit == 0 {
		panic("noc: send on unallocated VC")
	}
	if v.credits <= 0 {
		panic("noc: send without credit")
	}
	if cycle < ou.linkFreeAt {
		panic("noc: send on busy serialized link")
	}
	ou.linkFreeAt = cycle + uint64(ou.cfg.PhitsPerFlit)
	if v.credits--; v.credits == 0 {
		ou.creditMask &^= bit
	}
	if f.Type.IsTail() {
		ou.tailMask |= bit
	}
	f.VC = int32(vc)
	ou.flitOut.Send(*f)
	if ou.dnFlit != nil {
		*ou.dnFlit |= ou.dnBit
	}
	ou.flitsSent++
	ou.mFlits.Inc()
	if ou.wakeDown != nil {
		ou.wakeDown()
	}
}

// runPolicy executes the pre-VA recovery stage for every vnet and sends
// the composed power mask over the Up_Down link. Bit vn of newTraffic is
// the is_new_traffic_outport_x() input for vnet vn.
func (ou *OutputUnit) runPolicy(newTraffic uint64, cycle uint64) {
	v := ou.cfg.VCsPerVNet
	vnAll := vcAllMask(v)
	var want uint64
	for vn := 0; vn < ou.cfg.VNets; vn++ {
		base := vn * v
		// Pack this vnet's full decision input: idle and powered bit
		// slices plus (MD, LD, NewTraffic). For a cycle-free policy the
		// output is a pure function of exactly these, so an unchanged
		// key replays the memoised want bits without calling the policy.
		// A phase policy adds the cycle's phase as the memo row index:
		// its decision is pure per phase, and a periodic steady state
		// revisits each row with an identical key after one rotation.
		idle := ^ou.actMask >> uint(base) & vnAll
		pow := ou.pwrMask >> uint(base) & vnAll
		misc := uint64(ou.mdIn.Current(vn)+1) |
			uint64(ou.mdIn.CurrentLD(vn)+1)<<8 |
			(newTraffic>>uint(vn)&1)<<16
		idx := vn * ou.memoStride
		if ou.phasePols != nil && ou.phasePols[vn] != nil {
			ph, _ := ou.phasePols[vn].Phase(cycle, v)
			idx += ph
		}
		if ou.memoVnMask>>uint(vn)&1 != 0 && misc == ou.lastMisc[idx] &&
			idle == ou.lastIdle[idx] && pow == ou.lastPow[idx] {
			want |= ou.lastWant[idx]
			continue
		}
		for i := 0; i < v; i++ {
			ou.inIdle[i] = idle>>uint(i)&1 != 0
			ou.inPow[i] = pow>>uint(i)&1 != 0
			ou.desired[i] = false
		}
		ou.polIn.MostDegraded = ou.mdIn.Current(vn)
		ou.polIn.LeastDegraded = ou.mdIn.CurrentLD(vn)
		ou.polIn.NewTraffic = misc>>16&1 != 0
		ou.polIn.Cycle = cycle
		ou.policies[vn].DesiredPower(&ou.polIn, ou.desired)
		var wantVn uint64
		for i := 0; i < v; i++ {
			if ou.desired[i] {
				wantVn |= 1 << uint(base+i)
			}
		}
		ou.lastIdle[idx], ou.lastPow[idx] = idle, pow
		ou.lastMisc[idx], ou.lastWant[idx] = misc, wantVn
		want |= wantVn
	}
	// Transition pass over the whole port at once. A VC stays on when
	// desired or active; wake-up ramps (wakeMask) only ever cover powered
	// VCs, so fresh wakes, ramp progress and gatings are disjoint bit
	// sets and only those bits need per-VC work.
	on := want | ou.actMask
	wakes := on &^ ou.pwrMask
	gates := ou.pwrMask &^ on
	ramp := on & ou.wakeMask
	transition := wakes|gates|ramp != 0
	newWake := ou.wakeMask & on
	for m := wakes; m != 0; m &= m - 1 {
		idx := bits.TrailingZeros64(m)
		// 0 -> 1 transition: the sleep transistor starts its wake-up ramp.
		ou.vcs[idx].wakeLeft = int32(ou.cfg.WakeupLatency)
		if ou.cfg.WakeupLatency > 0 {
			newWake |= 1 << uint(idx)
		}
		ou.wakeEvents++
		ou.mWake.Inc()
	}
	for m := ramp; m != 0; m &= m - 1 {
		idx := bits.TrailingZeros64(m)
		if ou.vcs[idx].wakeLeft--; ou.vcs[idx].wakeLeft == 0 {
			newWake &^= 1 << uint(idx)
		}
	}
	for m := gates; m != 0; m &= m - 1 {
		ou.vcs[bits.TrailingZeros64(m)].wakeLeft = 0
		ou.gateEvents++
		ou.mGate.Inc()
	}
	ou.pwrMask = on
	ou.wakeMask = newWake
	if on != ou.powerOut.next {
		transition = true
		if ou.dnPow != nil {
			*ou.dnPow |= ou.dnBit
		}
		if ou.wakeDown != nil {
			// The downstream must tick the changed mask into effect.
			ou.wakeDown()
		}
	}
	ou.settled = !transition
	ou.polDirty = false
	ou.lastNT = newTraffic
	ou.powerOut.Send(on)
}

// policyHolds reports whether this cycle's runPolicy call can be
// elided exactly: the last executed call was settled (no transitions,
// previous mask re-sent — which also implies every wake-up ramp has
// drained, so wakeMask == 0) and no decision input — Idle[], the
// Down_Up values, is_new_traffic — changed since. Under a cycle-free
// (pure) policy set the elision is valid for any unchanged traffic
// mask; under a merely steady set only between two quiet calls, since
// SteadyPolicy licenses cycle-independence only while NewTraffic is
// false (RRNoSensor rotates on the cycle once traffic waits). The
// elided call would recompute the identical mask and Send it into an
// unchanged link, so skipping both is invisible.
func (ou *OutputUnit) policyHolds(newTraffic uint64) bool {
	if !ou.settled || ou.polDirty {
		return false
	}
	if ou.pure {
		return newTraffic == ou.lastNT
	}
	return ou.steady && ou.lastNT == 0 && newTraffic == 0
}

// quiescent reports whether skipping this unit's per-cycle work
// (creditTick, runPolicy, the powerOut send) is provably a no-op: the
// policy is declared steady while idle, the previous run changed
// nothing, no credits are in flight, the Down_Up mirror is stable, and
// every VC is idle with its wake-up ramp finished.
// A settled run also guarantees every wake-up ramp has finished: a VC
// with wakeLeft > 0 that stays on decrements it (a transition), and a
// gated VC has it forced to zero, so settled implies wakeLeft == 0
// everywhere and only the allocation states need checking — which the
// actMask does in O(1).
func (ou *OutputUnit) quiescent() bool {
	if !ou.steady || !ou.settled || ou.actMask != 0 {
		return false
	}
	return ou.creditIn.InFlight() == 0 && ou.mdIn.settled()
}
