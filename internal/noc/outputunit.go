package noc

import (
	"fmt"

	"nbtinoc/internal/metrics"
)

// outVC is one entry of the upstream outVCstate: the mirror of a
// downstream VC's allocation state, its credit count, and — for the
// NBTI-aware network of Fig. 1B — the power mirror and the most_degraded
// marker fed by the Down_Up link.
type outVC struct {
	state    VCState
	credits  int
	tailSent bool
	// powered mirrors the power mask most recently sent downstream; VA
	// only considers powered idle VCs.
	powered bool
	// wakeLeft counts the remaining sleep-transistor wake-up cycles
	// after a gated VC is commanded back on; the VC is powered (and
	// stressed) but not allocatable until it reaches zero.
	wakeLeft int
}

// OutputUnit is the upstream end of a channel: it owns the outVCstate
// for the downstream input port, performs the downstream VC allocation,
// runs the pre-VA recovery policy, and transmits flits.
type OutputUnit struct {
	owner NodeID
	port  Port
	cfg   *Config
	depth int
	vcs   []outVC
	// flitOut carries flits to the downstream input unit.
	flitOut *Pipeline[Flit]
	// creditIn receives freed-slot notifications from downstream.
	creditIn *Pipeline[int]
	// powerOut is the Up_Down control channel.
	powerOut *powerLink
	// mdIn is the Down_Up control channel.
	mdIn *mdLink
	// policies holds one recovery-policy instance per vnet.
	policies []Policy
	// allocPtr rotates the VA start position per vnet so that, when a
	// policy leaves several idle VCs powered (baseline), allocation
	// spreads across them.
	allocPtr []int
	// scratch buffers reused by runPolicy.
	inIdle, inPow, desired []bool
	polIn                  PolicyInput
	// flitsSent counts link traversals; gateEvents and wakeEvents count
	// power-state transitions (1->0 and 0->1) commanded by the policy.
	flitsSent, gateEvents, wakeEvents uint64
	// mFlits, mGate and mWake are the observability handles mirroring
	// the counters above into the process metrics registry (per-policy
	// gate/wake children cached at construction); nil when disabled.
	mFlits, mGate, mWake *metrics.Counter
	// linkFreeAt is the first cycle the (possibly serialized) link is
	// free again after the previous flit's phits.
	linkFreeAt uint64
	// steady records whether every per-vnet policy declares (via
	// SteadyPolicy) that its output is cycle-independent while no new
	// traffic waits; only steady output units may be skipped by the
	// activity-gated engine.
	steady bool
	// settled is recomputed by every runPolicy call: true when the call
	// caused no power transition, no wake-up ramp progress, and re-sent
	// the previous mask — i.e. re-running it with unchanged inputs is a
	// no-op.
	settled bool
	// polDirty marks that an input of the policy decision changed since
	// the last runPolicy call: a VC allocation or retirement (Idle[]), or
	// a ticked Down_Up value (MostDegraded/LeastDegraded). While clear —
	// and only for a steady, settled unit seeing no new traffic now or at
	// its last run — the decision inputs are bit-identical to the last
	// executed call, so the call is elided.
	polDirty bool
	// lastQuietNT records that the last executed runPolicy saw
	// NewTraffic == false on every vnet; a steady policy's output is only
	// guaranteed reproducible between two such quiet calls.
	lastQuietNT bool
	// activeVCs counts mirrored VCs in state VCActive, so the quiescence
	// check needs no per-VC sweep.
	activeVCs int
	// wakeDown re-activates the downstream unit on the network
	// active-set when this unit emits something downstream must observe
	// (a flit, a changed power mask); nil outside a network.
	wakeDown func()
}

// newOutputUnit builds the upstream side of a channel whose downstream
// buffers have the given depth.
func newOutputUnit(owner NodeID, port Port, cfg *Config, depth int, factory PolicyFactory) *OutputUnit {
	total := cfg.TotalVCs()
	ou := &OutputUnit{
		owner:    owner,
		port:     port,
		cfg:      cfg,
		depth:    depth,
		vcs:      make([]outVC, total),
		policies: make([]Policy, cfg.VNets),
		allocPtr: make([]int, cfg.VNets),
		inIdle:   make([]bool, cfg.VCsPerVNet),
		inPow:    make([]bool, cfg.VCsPerVNet),
		desired:  make([]bool, cfg.VCsPerVNet),
	}
	for i := range ou.vcs {
		ou.vcs[i] = outVC{credits: depth, powered: true}
	}
	if factory == nil {
		factory = NewBaseline
	}
	ou.steady = true
	for vn := range ou.policies {
		ou.policies[vn] = factory()
		ou.steady = ou.steady && PolicySteadyWhenIdle(ou.policies[vn])
	}
	ou.polDirty = true
	ou.mFlits = flitsRoutedCounter()
	ou.mGate, ou.mWake = gatingCounters(ou.policies[0].Name())
	return ou
}

// Port returns the output port this unit serves.
func (ou *OutputUnit) Port() Port { return ou.port }

// FlitsSent returns the number of flits launched onto the link.
func (ou *OutputUnit) FlitsSent() uint64 { return ou.flitsSent }

// GateEvents returns the number of power-down transitions commanded.
func (ou *OutputUnit) GateEvents() uint64 { return ou.gateEvents }

// WakeEvents returns the number of power-up transitions commanded.
func (ou *OutputUnit) WakeEvents() uint64 { return ou.wakeEvents }

// PolicyName returns the name of the recovery policy (vnet 0).
func (ou *OutputUnit) PolicyName() string { return ou.policies[0].Name() }

// Credits returns the available credits of flattened VC vc.
func (ou *OutputUnit) Credits(vc int) int { return ou.vcs[vc].credits }

// StateOf returns the mirrored allocation state of flattened VC vc.
func (ou *OutputUnit) StateOf(vc int) VCState { return ou.vcs[vc].state }

// PoweredMirror reports whether VC vc is powered per the last mask sent.
func (ou *OutputUnit) PoweredMirror(vc int) bool { return ou.vcs[vc].powered }

// creditTick consumes this cycle's returned credits and retires VCs
// whose packets have fully drained downstream (tail sent and all
// credits back), returning them to idle for reallocation.
func (ou *OutputUnit) creditTick() {
	for _, vc := range ou.creditIn.Receive() {
		v := &ou.vcs[vc]
		v.credits++
		if v.credits > ou.depth {
			panic(fmt.Sprintf("noc: credit overflow on node %d port %v vc %d",
				ou.owner, ou.port, vc))
		}
		if v.state == VCActive && v.tailSent && v.credits == ou.depth {
			v.state = VCIdle
			v.tailSent = false
			ou.activeVCs--
			ou.polDirty = true
		}
	}
}

// hasFreeVC reports whether the vnet slice contains an idle, powered VC
// that allocVC would claim.
func (ou *OutputUnit) hasFreeVC(vnet int) bool {
	for i := 0; i < ou.cfg.VCsPerVNet; i++ {
		v := &ou.vcs[ou.cfg.vcIndex(vnet, i)]
		if v.state == VCIdle && v.powered && v.wakeLeft == 0 {
			return true
		}
	}
	return false
}

// allocVC implements the VA stage for one new packet on the given vnet:
// it claims an idle, powered downstream VC and returns its flattened
// index, or -1 when none is available. The search starts at a rotating
// pointer; under gating policies at most one candidate exists (the
// designated keep VC), so the rotation only matters for the baseline.
func (ou *OutputUnit) allocVC(vnet int) int {
	v := ou.cfg.VCsPerVNet
	for i := 0; i < v; i++ {
		idx := ou.cfg.vcIndex(vnet, (ou.allocPtr[vnet]+i)%v)
		cand := &ou.vcs[idx]
		if cand.state == VCIdle && cand.powered && cand.wakeLeft == 0 {
			cand.state = VCActive
			cand.tailSent = false
			ou.allocPtr[vnet] = ((ou.allocPtr[vnet]+i)%v + 1) % v
			ou.activeVCs++
			ou.polDirty = true
			return idx
		}
	}
	return -1
}

// canSend reports whether a flit may be sent on flattened VC vc at the
// given cycle: the VC must be owned, a credit available, and the
// serialized link free.
func (ou *OutputUnit) canSend(vc int, cycle uint64) bool {
	v := &ou.vcs[vc]
	return v.state == VCActive && v.credits > 0 && cycle >= ou.linkFreeAt
}

// sendFlit transmits f on flattened VC vc (the ST stage) starting at
// the given cycle, consuming one credit and occupying the link for
// PhitsPerFlit cycles. The flit's VC field is rewritten for the
// downstream port.
func (ou *OutputUnit) sendFlit(f Flit, vc int, cycle uint64) {
	v := &ou.vcs[vc]
	if v.state != VCActive {
		panic("noc: send on unallocated VC")
	}
	if v.credits <= 0 {
		panic("noc: send without credit")
	}
	if cycle < ou.linkFreeAt {
		panic("noc: send on busy serialized link")
	}
	ou.linkFreeAt = cycle + uint64(ou.cfg.PhitsPerFlit)
	v.credits--
	if f.Type.IsTail() {
		v.tailSent = true
	}
	f.VC = vc
	ou.flitOut.Send(f)
	ou.flitsSent++
	ou.mFlits.Inc()
	if ou.wakeDown != nil {
		ou.wakeDown()
	}
}

// runPolicy executes the pre-VA recovery stage for every vnet and sends
// the composed power mask over the Up_Down link. newTraffic[vn] is the
// is_new_traffic_outport_x() input for vnet vn.
func (ou *OutputUnit) runPolicy(newTraffic []bool, cycle uint64) {
	var mask uint64
	transition := false
	anyNT := false
	v := ou.cfg.VCsPerVNet
	for vn := 0; vn < ou.cfg.VNets; vn++ {
		anyNT = anyNT || newTraffic[vn]
		for i := 0; i < v; i++ {
			idx := ou.cfg.vcIndex(vn, i)
			ou.inIdle[i] = ou.vcs[idx].state == VCIdle
			ou.inPow[i] = ou.vcs[idx].powered
			ou.desired[i] = false
		}
		ou.polIn.NumVCs = v
		ou.polIn.Idle = ou.inIdle
		ou.polIn.Powered = ou.inPow
		ou.polIn.MostDegraded = ou.mdIn.Current(vn)
		ou.polIn.LeastDegraded = ou.mdIn.CurrentLD(vn)
		ou.polIn.NewTraffic = newTraffic[vn]
		ou.polIn.Cycle = cycle
		ou.policies[vn].DesiredPower(&ou.polIn, ou.desired)
		for i := 0; i < v; i++ {
			idx := ou.cfg.vcIndex(vn, i)
			vc := &ou.vcs[idx]
			on := ou.desired[i] || vc.state != VCIdle
			switch {
			case on && !vc.powered:
				// 0 -> 1 transition: the sleep transistor starts its
				// wake-up ramp.
				vc.wakeLeft = ou.cfg.WakeupLatency
				ou.wakeEvents++
				ou.mWake.Inc()
				transition = true
			case on && vc.wakeLeft > 0:
				vc.wakeLeft--
				transition = true
			case !on && vc.powered:
				vc.wakeLeft = 0
				ou.gateEvents++
				ou.mGate.Inc()
				transition = true
			case !on:
				vc.wakeLeft = 0
			}
			vc.powered = on
			if on {
				mask |= 1 << uint(idx)
			}
		}
	}
	if mask != ou.powerOut.next {
		transition = true
		if ou.wakeDown != nil {
			// The downstream must tick the changed mask into effect.
			ou.wakeDown()
		}
	}
	ou.settled = !transition
	ou.polDirty = false
	ou.lastQuietNT = !anyNT
	ou.powerOut.Send(mask)
}

// policyHolds reports whether this cycle's runPolicy call can be
// elided exactly: every policy is steady (its quiet-state output is
// cycle-independent and its DesiredPower call side-effect free), the
// last executed call was settled (no transitions, previous mask
// re-sent) and itself quiet, and no decision input — Idle[], the
// Down_Up values, is_new_traffic — changed since. The elided call
// would recompute the identical mask and Send it into an unchanged
// link, so skipping both is invisible.
func (ou *OutputUnit) policyHolds(newTraffic []bool) bool {
	if !ou.steady || !ou.settled || ou.polDirty || !ou.lastQuietNT {
		return false
	}
	for _, nt := range newTraffic {
		if nt {
			return false
		}
	}
	return true
}

// quiescent reports whether skipping this unit's per-cycle work
// (creditTick, runPolicy, the powerOut send) is provably a no-op: the
// policy is declared steady while idle, the previous run changed
// nothing, no credits are in flight, the Down_Up mirror is stable, and
// every VC is idle with its wake-up ramp finished.
// A settled run also guarantees every wake-up ramp has finished: a VC
// with wakeLeft > 0 that stays on decrements it (a transition), and a
// gated VC has it forced to zero, so settled implies wakeLeft == 0
// everywhere and only the allocation states need checking — which the
// activeVCs counter does in O(1).
func (ou *OutputUnit) quiescent() bool {
	if !ou.steady || !ou.settled || ou.activeVCs > 0 {
		return false
	}
	return ou.creditIn.InFlight() == 0 && ou.mdIn.settled()
}
