package noc

import "fmt"

// FlitType distinguishes the positions of a flit inside its packet.
type FlitType uint8

const (
	// HeadFlit opens a packet: it carries routing information and
	// triggers RC and VA.
	HeadFlit FlitType = iota
	// BodyFlit is a payload flit between head and tail.
	BodyFlit
	// TailFlit closes a packet and releases its virtual channel.
	TailFlit
	// HeadTailFlit is a single-flit packet (head and tail at once).
	HeadTailFlit
)

func (t FlitType) String() string {
	switch t {
	case HeadFlit:
		return "head"
	case BodyFlit:
		return "body"
	case TailFlit:
		return "tail"
	case HeadTailFlit:
		return "head-tail"
	default:
		return fmt.Sprintf("FlitType(%d)", uint8(t))
	}
}

// IsHead reports whether the flit opens a packet.
func (t FlitType) IsHead() bool { return t == HeadFlit || t == HeadTailFlit }

// IsTail reports whether the flit closes a packet.
func (t FlitType) IsTail() bool { return t == TailFlit || t == HeadTailFlit }

// Flit is the unit of flow control. Flits are passed by value; the hot
// simulation loop never allocates them on the heap.
type Flit struct {
	// PacketID identifies the packet the flit belongs to (unique per
	// network run).
	PacketID uint64
	// Src and Dst are the injecting and receiving node ids.
	Src, Dst NodeID
	// VNet is the virtual network the packet travels on.
	VNet int32
	// VC is the virtual channel at the *current* downstream input port;
	// it is rewritten at every hop when the flit is sent.
	VC int32
	// Seq is the flit's index within the packet (0 = head).
	Seq int32
	// Len is the packet length in flits.
	Len int32
	// Type marks the flit's position in its packet. (Kept after the
	// 32-bit fields so the struct packs into a single 64-byte cache
	// line — flits are copied by value through every pipeline hop.)
	Type FlitType
	// InjectCycle is the cycle the packet entered its NI source queue.
	InjectCycle uint64
	// NetInjectCycle is the cycle the head flit left the NI into the
	// network (after source queueing).
	NetInjectCycle uint64
	// Arrive is the cycle the flit was written into the current input
	// buffer (maintained by the input units; models the BW stage).
	Arrive uint64
}

// Packet describes a packet to be injected by a network interface.
type Packet struct {
	ID          uint64
	Src, Dst    NodeID
	VNet        int
	Len         int
	InjectCycle uint64
}

// Flits expands the packet into its flit sequence.
func (p Packet) Flits() []Flit {
	out := make([]Flit, p.Len)
	for i := range out {
		t := BodyFlit
		switch {
		case p.Len == 1:
			t = HeadTailFlit
		case i == 0:
			t = HeadFlit
		case i == p.Len-1:
			t = TailFlit
		}
		out[i] = Flit{
			PacketID:    p.ID,
			Src:         p.Src,
			Dst:         p.Dst,
			VNet:        int32(p.VNet),
			Type:        t,
			Seq:         int32(i),
			Len:         int32(p.Len),
			InjectCycle: p.InjectCycle,
		}
	}
	return out
}
