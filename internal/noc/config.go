package noc

import (
	"errors"
	"fmt"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/pv"
	"nbtinoc/internal/sensor"
)

// PolicyFactory builds one recovery-policy instance. Each (output unit,
// vnet) pair receives its own instance so that per-port policy state
// (e.g. the round-robin active candidate) is independent, as in hardware.
type PolicyFactory func() Policy

// Config describes a network instance. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Width and Height are the mesh dimensions in tiles.
	Width, Height int
	// VNets is the number of virtual networks.
	VNets int
	// VCsPerVNet is the number of virtual channels per vnet per input
	// port (the paper evaluates 2 and 4).
	VCsPerVNet int
	// BufferDepth is the per-VC buffer capacity in flits (paper: 4).
	BufferDepth int
	// FlitWidthBits is the link/flit width, used by the area model and
	// reports (paper: 64-bit flits on 32-bit links; we keep one knob).
	FlitWidthBits int
	// LinkLatency is the flit link traversal latency in cycles (>= 1).
	LinkLatency int
	// PhitsPerFlit is the serialization factor of the links: a flit of
	// FlitWidthBits travelling over a narrower physical link occupies it
	// for this many cycles (the paper's Table I pairs 64-bit flits with
	// 32-bit Tilera-style links, i.e. 2 phits per flit). 1 disables
	// serialization.
	PhitsPerFlit int
	// Routing selects the deterministic routing algorithm.
	Routing RoutingAlgorithm
	// EjectRate is the number of flits a network interface can drain
	// from its ejection buffers per cycle (>= 1).
	EjectRate int
	// EjectBufferDepth is the per-VC depth of the NI ejection buffers.
	EjectBufferDepth int
	// Policy builds the pre-VA recovery policy for router-to-router and
	// NI-to-router channels. nil means the always-on baseline.
	Policy PolicyFactory
	// GateEjection applies Policy to router→NI ejection buffers as well.
	// The paper gates router VC buffers only, so this defaults to false.
	GateEjection bool
	// WakeupLatency is the sleep-transistor wake-up delay in cycles: a
	// gated buffer commanded back on cannot be allocated for this many
	// cycles (it is powered — and NBTI-stressed — while ramping). The
	// paper's reference [19] discusses the underlying header-transistor
	// design; 0 models an idealised instant wake-up.
	WakeupLatency int
	// NBTI holds the aging-model parameters for all VC buffer devices.
	NBTI nbti.Params
	// PV is the initial-Vth process variation distribution.
	PV pv.Distribution
	// PVSeed seeds the process-variation draw. The paper uses one draw
	// per {architecture, traffic} scenario, shared across policies.
	PVSeed uint64
	// Sensor configures the per-VC NBTI sensors feeding the Down_Up
	// links. Sensors are instantiated regardless of policy so that
	// sensor-less policies can be compared on identical networks.
	Sensor sensor.Config
	// SensorSeed seeds sensor read noise.
	SensorSeed uint64
}

// DefaultConfig returns the paper's base setup: 4×4 mesh, one vnet,
// 4 VCs per input port, 4-flit buffers, 64-bit flits, 45 nm technology,
// baseline (always-on) policy.
func DefaultConfig() Config {
	return Config{
		Width:            4,
		Height:           4,
		VNets:            1,
		VCsPerVNet:       4,
		BufferDepth:      4,
		FlitWidthBits:    64,
		LinkLatency:      1,
		PhitsPerFlit:     1,
		EjectRate:        1,
		EjectBufferDepth: 4,
		NBTI:             nbti.Default45nm(),
		PV:               pv.Default45nm(),
		PVSeed:           1,
		Sensor:           sensor.Config{SamplePeriod: 1024},
		SensorSeed:       1,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Width < 1 || c.Height < 1:
		return fmt.Errorf("noc: mesh %dx%d must be at least 1x1", c.Width, c.Height)
	case c.Width*c.Height < 2:
		return errors.New("noc: need at least 2 nodes")
	case c.VNets < 1:
		return errors.New("noc: VNets must be >= 1")
	case c.VCsPerVNet < 1:
		return errors.New("noc: VCsPerVNet must be >= 1")
	case c.BufferDepth < 1:
		return errors.New("noc: BufferDepth must be >= 1")
	case c.FlitWidthBits < 1:
		return errors.New("noc: FlitWidthBits must be >= 1")
	case c.LinkLatency < 1:
		return errors.New("noc: LinkLatency must be >= 1")
	case c.PhitsPerFlit < 1:
		return errors.New("noc: PhitsPerFlit must be >= 1")
	case c.EjectRate < 1:
		return errors.New("noc: EjectRate must be >= 1")
	case c.EjectBufferDepth < 1:
		return errors.New("noc: EjectBufferDepth must be >= 1")
	case c.WakeupLatency < 0:
		return errors.New("noc: WakeupLatency must be non-negative")
	}
	if err := c.NBTI.Validate(); err != nil {
		return err
	}
	if err := c.PV.Validate(); err != nil {
		return err
	}
	if err := c.Sensor.Validate(); err != nil {
		return err
	}
	return nil
}

// Nodes returns the number of tiles in the mesh.
func (c Config) Nodes() int { return c.Width * c.Height }

// TotalVCs returns the number of VCs per input port across all vnets.
func (c Config) TotalVCs() int { return c.VNets * c.VCsPerVNet }

// vcIndex flattens (vnet, vc-in-vnet) into a port-local VC index. The
// pointer receiver matters: all callers hold *Config, and a value
// receiver would copy the whole Config per call — this is the hottest
// helper of the cycle engine's inner loops.
func (c *Config) vcIndex(vnet, vc int) int { return vnet*c.VCsPerVNet + vc }
