package noc

import (
	"bytes"
	"strings"
	"testing"
)

// captureTracer records events for assertions.
type captureTracer struct {
	events []struct {
		cycle uint64
		kind  EventKind
		node  NodeID
		pkt   uint64
	}
}

func (c *captureTracer) Event(cycle uint64, kind EventKind, node NodeID, port Port, vc int, f Flit) {
	c.events = append(c.events, struct {
		cycle uint64
		kind  EventKind
		node  NodeID
		pkt   uint64
	}{cycle, kind, node, f.PacketID})
}

func TestTracerEventSequence(t *testing.T) {
	cfg := testConfig(2, 1, 2)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := &captureTracer{}
	n.SetTracer(tr)
	if err := n.Inject(0, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && n.TotalEjectedPackets() == 0; i++ {
		n.Step()
	}
	// Expected per-packet lifecycle for one hop:
	// INJECT, NI-VA, BW(router 0), VA(router 0), ST(router 0),
	// BW would be at router 1... wait: single-flit packet 0->1: BW at
	// router 0 local, VA at router 0 (to router 1 West), ST at router 0,
	// BW at router 1, VA at router 1 (to ejection), ST at router 1,
	// EJECT.
	var kinds []string
	for _, e := range tr.events {
		if e.pkt != 0 {
			continue
		}
		kinds = append(kinds, e.kind.String())
	}
	want := []string{"INJECT", "NI-VA", "BW", "VA", "ST", "BW", "VA", "ST", "EJECT"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Fatalf("event sequence = %v, want %v", kinds, want)
	}
	// Cycles must be non-decreasing.
	for i := 1; i < len(tr.events); i++ {
		if tr.events[i].cycle < tr.events[i-1].cycle {
			t.Fatal("event cycles went backwards")
		}
	}
}

func TestWriterTracerFormat(t *testing.T) {
	cfg := testConfig(2, 1, 2)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n.SetTracer(&WriterTracer{W: &buf})
	if err := n.Inject(0, 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && n.TotalEjectedPackets() == 0; i++ {
		n.Step()
	}
	out := buf.String()
	for _, want := range []string{"ev=INJECT", "ev=BW", "ev=VA", "ev=ST", "ev=EJECT",
		"pkt=0", "src=0 dst=1", "type=head", "type=tail"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Clearing the tracer stops emission.
	n.SetTracer(nil)
	mark := buf.Len()
	_ = n.Inject(1, 0, 0, 1)
	for i := 0; i < 30; i++ {
		n.Step()
	}
	if buf.Len() != mark {
		t.Error("cleared tracer still emitted events")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvInject; k <= EvEject; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "EventKind") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(EventKind(99).String(), "EventKind") {
		t.Error("unknown kind not flagged")
	}
}
