package noc

import (
	"fmt"
	"io"
)

// EventKind identifies a traced microarchitectural event.
type EventKind uint8

// Traced event kinds, in pipeline order.
const (
	// EvInject: a packet entered an NI source queue.
	EvInject EventKind = iota
	// EvNIAlloc: the NI's VA granted a local-port VC to a packet.
	EvNIAlloc
	// EvBufferWrite: a flit was written into an input VC (BW stage).
	EvBufferWrite
	// EvVAGrant: a head flit obtained a downstream VC (VA stage).
	EvVAGrant
	// EvSTraverse: a flit won switch allocation and traversed (ST).
	EvSTraverse
	// EvEject: a flit was drained at its destination NI.
	EvEject
)

func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "INJECT"
	case EvNIAlloc:
		return "NI-VA"
	case EvBufferWrite:
		return "BW"
	case EvVAGrant:
		return "VA"
	case EvSTraverse:
		return "ST"
	case EvEject:
		return "EJECT"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Tracer receives flit-level pipeline events. Implementations must be
// fast; the tracer runs inline with the simulation. A nil tracer (the
// default) costs a single branch per event site.
type Tracer interface {
	// Event reports one pipeline event. node/port locate the event
	// (port is the input port for BW/VA, the output port for ST, Local
	// for NI events); vc is the flattened VC involved (-1 if n/a).
	Event(cycle uint64, kind EventKind, node NodeID, port Port, vc int, f Flit)
}

// WriterTracer formats events as one text line each, suitable for
// post-processing into per-packet waterfalls:
//
//	cycle=12 ev=BW node=1 port=W vc=0 pkt=3 src=0 dst=1 seq=0/4 type=head
type WriterTracer struct {
	W io.Writer
}

// Event implements Tracer.
func (t *WriterTracer) Event(cycle uint64, kind EventKind, node NodeID, port Port, vc int, f Flit) {
	fmt.Fprintf(t.W, "cycle=%d ev=%s node=%d port=%v vc=%d pkt=%d src=%d dst=%d seq=%d/%d type=%s\n",
		cycle, kind, node, port, vc, f.PacketID, f.Src, f.Dst, f.Seq, f.Len, f.Type)
}

// SetTracer installs (or clears, with nil) the network's event tracer.
func (n *Network) SetTracer(tr Tracer) { n.tracer = tr }

// trace emits an event if a tracer is installed.
func (n *Network) trace(kind EventKind, node NodeID, port Port, vc int, f Flit) {
	if n.tracer != nil {
		n.tracer.Event(n.cycle, kind, node, port, vc, f)
	}
}
