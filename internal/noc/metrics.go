package noc

import "nbtinoc/internal/metrics"

// Exported instrument names, for monitors and progress readers that
// look series up by name (cmd/* wire these into metrics.Progress).
const (
	// MetricCycles counts simulated cycles executed by Network.Step.
	MetricCycles = "noc_cycles_total"
	// MetricUnitSteps counts per-cycle unit visits by the activity-gated
	// engine, labeled unit=router|ni and state=active|skipped; the
	// active:skipped ratio is the live effectiveness of the active set.
	MetricUnitSteps = "noc_unit_steps_total"
	// MetricFlitsRouted counts flits launched onto links (router and NI
	// output units).
	MetricFlitsRouted = "noc_flits_routed_total"
	// MetricCreditsReturned counts credits sent back upstream by input
	// units.
	MetricCreditsReturned = "noc_credits_returned_total"
	// MetricGatingTransitions counts power-state transitions commanded
	// by the recovery policies, labeled policy=<name> and
	// kind=gate|wake.
	MetricGatingTransitions = "noc_gating_transitions_total"
	// MetricCyclesFastForwarded counts simulated cycles covered by bulk
	// fast-forward jumps (RunUntil) rather than executed Steps; the ratio
	// to MetricCycles is the event-horizon engine's effectiveness.
	MetricCyclesFastForwarded = "engine_cycles_fastforwarded_total"
)

// netMetrics are the per-network handles into the process registry,
// resolved once at Network construction. With instrumentation disabled
// (metrics.Default() == nil at New time) every handle is nil and each
// instrumented site costs one predictable nil-check branch — the
// engine's 0 allocs/op benchmarks and the bench-check sec/op gate pin
// that this stays free.
type netMetrics struct {
	cycles         *metrics.Counter
	ffCycles       *metrics.Counter
	routersActive  *metrics.Counter
	routersSkipped *metrics.Counter
	nisActive      *metrics.Counter
	nisSkipped     *metrics.Counter
}

// newNetMetrics resolves the network-level instruments from the process
// default registry.
func newNetMetrics() netMetrics {
	r := metrics.Default()
	if r == nil {
		return netMetrics{}
	}
	steps := r.CounterVec(MetricUnitSteps,
		"Per-cycle unit visits by the activity-gated engine.", "unit", "state")
	return netMetrics{
		cycles: r.Counter(MetricCycles, "Simulated cycles executed."),
		ffCycles: r.Counter(MetricCyclesFastForwarded,
			"Simulated cycles covered by bulk fast-forward jumps."),
		routersActive:  steps.With("router", "active"),
		routersSkipped: steps.With("router", "skipped"),
		nisActive:      steps.With("ni", "active"),
		nisSkipped:     steps.With("ni", "skipped"),
	}
}

// gatingCounters resolves the per-policy gate/wake transition counters
// an output unit caches at construction.
func gatingCounters(policy string) (gate, wake *metrics.Counter) {
	r := metrics.Default()
	if r == nil {
		return nil, nil
	}
	vec := r.CounterVec(MetricGatingTransitions,
		"Power-state transitions commanded by the recovery policies.", "policy", "kind")
	return vec.With(policy, "gate"), vec.With(policy, "wake")
}

// flitsRoutedCounter resolves the shared flit-launch counter.
func flitsRoutedCounter() *metrics.Counter {
	return metrics.Default().Counter(MetricFlitsRouted,
		"Flits launched onto links by output units.")
}

// creditsReturnedCounter resolves the shared credit-return counter.
func creditsReturnedCounter() *metrics.Counter {
	return metrics.Default().Counter(MetricCreditsReturned,
		"Credits returned upstream by input units.")
}
