package noc

import (
	"testing"

	"nbtinoc/internal/rng"
)

// TestFigure1 verifies that the constructed network realises the
// NBTI-aware microarchitecture of the paper's Figure 1B: per-channel
// Up_Down and Down_Up control links, an outVCstate mirror in every
// upstream output unit, one NBTI sensor per downstream VC buffer with a
// most-degraded comparator, and power gating wired to every router
// input VC. The baseline structure (Fig. 1A) is the same network with
// the always-on policy — verified to never gate.
func TestFigure1(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 4

	t.Run("ControlLinksPerChannel", func(t *testing.T) {
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Channels: per node, NI->router and router->NI, plus one per
		// mesh link direction. 2x2 mesh: 4 horizontal + 4 vertical
		// directed links + 8 local channels = 16.
		wantChannels := 16
		upDown, downUp := 0, 0
		for i := range n.ounits {
			if n.ounits[i].powerOut != nil {
				upDown++
			}
		}
		for i := range n.iunits {
			if n.iunits[i].mdOut != nil {
				downUp++
			}
		}
		if upDown != wantChannels {
			t.Errorf("Up_Down links = %d, want %d", upDown, wantChannels)
		}
		if downUp != wantChannels {
			t.Errorf("Down_Up links = %d, want %d", downUp, wantChannels)
		}
	})

	t.Run("OutVCStateMirror", func(t *testing.T) {
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ou := n.Router(0).Output(East)
		if ou == nil {
			t.Fatal("router 0 has no east output unit")
		}
		for vc := 0; vc < cfg.TotalVCs(); vc++ {
			if ou.StateOf(vc) != VCIdle {
				t.Errorf("outVCstate[%d] not idle at reset", vc)
			}
			if ou.Credits(vc) != cfg.BufferDepth {
				t.Errorf("outVCstate[%d] credits = %d, want %d",
					vc, ou.Credits(vc), cfg.BufferDepth)
			}
		}
	})

	t.Run("OneSensorPerVCBuffer", func(t *testing.T) {
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for node := NodeID(0); node < 4; node++ {
			for p := Port(0); p < NumPorts; p++ {
				iu := n.Router(node).Input(p)
				if iu == nil {
					continue
				}
				if len(iu.banks) != cfg.VNets {
					t.Fatalf("node %d port %v: %d sensor banks, want %d",
						node, p, len(iu.banks), cfg.VNets)
				}
				for vn, bank := range iu.banks {
					if bank.Size() != cfg.VCsPerVNet {
						t.Fatalf("node %d port %v vnet %d: %d sensors, want %d",
							node, p, vn, bank.Size(), cfg.VCsPerVNet)
					}
				}
			}
		}
	})

	t.Run("MostDegradedMarkerReachesUpstream", func(t *testing.T) {
		gated := cfg
		gated.Policy = func() Policy { return mdEcho{} }
		n, err := New(gated)
		if err != nil {
			t.Fatal(err)
		}
		// After a few cycles the Down_Up value at every upstream output
		// unit must equal the argmax-Vth0 VC of its downstream port.
		n.Run(4)
		r1 := n.Router(1) // downstream of router 0's East output
		wantMD := n.MostDegradedVC(1, West, 0)
		ou := n.Router(0).Output(East)
		if got := ou.mdIn.Current(0); got != wantMD {
			t.Errorf("upstream most_degraded marker = %d, want %d", got, wantMD)
		}
		_ = r1
	})

	t.Run("BaselineNeverGates", func(t *testing.T) {
		n, err := New(cfg) // Fig. 1A: no policy
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(1)
		for c := 0; c < 500; c++ {
			if src.Bool(0.2) {
				_ = n.Inject(0, 3, 0, 4)
			}
			n.Step()
		}
		ev := n.Events()
		if ev.GateEvents != 0 || ev.RecoveryCycles != 0 {
			t.Errorf("baseline gated: %+v", ev)
		}
	})

	t.Run("GatingReachesEveryRouterPort", func(t *testing.T) {
		gated := cfg
		gated.Policy = func() Policy { return gateAll{} }
		n, err := New(gated)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(3)
		for node := NodeID(0); node < 4; node++ {
			for p := Port(0); p < NumPorts; p++ {
				iu := n.Router(node).Input(p)
				if iu == nil {
					continue
				}
				for vc := 0; vc < cfg.TotalVCs(); vc++ {
					if iu.Powered(vc) {
						t.Fatalf("node %d port %v vc %d not gated", node, p, vc)
					}
				}
			}
		}
	})
}

// mdEcho keeps all idle VCs powered; it exists to exercise the Down_Up
// path without gating side effects.
type mdEcho struct{}

func (mdEcho) Name() string { return "test-md-echo" }
func (mdEcho) DesiredPower(in *PolicyInput, out []bool) {
	for i := 0; i < in.NumVCs; i++ {
		out[i] = in.Idle[i]
	}
}
