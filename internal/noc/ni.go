package noc

import (
	"fmt"
	"math/bits"
)

// NIStats aggregates per-node traffic statistics.
type NIStats struct {
	// InjectedPackets counts packets accepted into the source queues.
	InjectedPackets uint64
	// InjectedFlits counts flits launched into the network.
	InjectedFlits uint64
	// EjectedPackets and EjectedFlits count received traffic.
	EjectedPackets uint64
	EjectedFlits   uint64
	// LatencySum accumulates packet latency (source-queue entry to tail
	// ejection) for ejected packets.
	LatencySum uint64
	// NetLatencySum accumulates network latency (head launch to tail
	// ejection).
	NetLatencySum uint64
	// MaxQueueLen is the high-water mark of the source queues.
	MaxQueueLen int
	// Latency histograms over ejected packets: full latency (queue entry
	// to tail ejection) and network-only latency.
	Latency, NetLatency LatencyHistogram
}

// AvgLatency returns the mean packet latency in cycles, or 0 when no
// packet has been ejected.
func (s NIStats) AvgLatency() float64 {
	if s.EjectedPackets == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.EjectedPackets)
}

// AvgNetLatency returns the mean network latency in cycles.
func (s NIStats) AvgNetLatency() float64 {
	if s.EjectedPackets == 0 {
		return 0
	}
	return float64(s.NetLatencySum) / float64(s.EjectedPackets)
}

// niFlow is a packet in flight from an NI: the flits not yet launched on
// the flattened local-port VC the packet was allocated.
type niFlow struct {
	flits []Flit
	next  int
}

// NI is a tile's network interface. On the injection side it is the
// *upstream* of the router's Local input port: it owns an output unit
// (with outVCstate and a recovery policy) and performs VA for new
// packets, so the local port participates in NBTI gating exactly like
// router-to-router channels. On the ejection side it hosts the always-on
// ejection buffers fed by the router's Local output port.
type NI struct {
	id  NodeID
	cfg *Config
	net *Network
	// out is the injection-side output unit (downstream: router local
	// input port).
	out *OutputUnit
	// ej holds the ejection buffers (downstream of the router's Local
	// output port); its embedded flitIn is the router→NI flit pipeline.
	ej    *InputUnit
	ejArb RoundRobin

	srcQ [][]Packet // per-vnet source queues
	// queued counts packets across all source queues, so the per-cycle
	// quiescence check is O(1) instead of a sweep over the queue slices.
	queued int
	//nbtilint:arena
	flows   []niFlow // per flattened local-port VC
	flowArb RoundRobin
	// flowMask marks VCs whose flow still has unlaunched flits, so
	// stageSend sweeps only live flows (and skips entirely when zero).
	flowMask uint64

	stats NIStats
}

// initNI initialises the NI shell in place; its output unit and ejection
// input unit are attached by the network wiring. flows is caller-owned
// backing storage with TotalVCs entries.
func initNI(ni *NI, id NodeID, cfg *Config, flows []niFlow) {
	total := cfg.TotalVCs()
	*ni = NI{
		id:      id,
		cfg:     cfg,
		srcQ:    make([][]Packet, cfg.VNets),
		flows:   flows[:total:total],
		flowArb: RoundRobin{n: total},
		ejArb:   RoundRobin{n: total},
	}
}

// ID returns the NI's node id.
func (ni *NI) ID() NodeID { return ni.id }

// Stats returns a copy of the NI's statistics.
func (ni *NI) Stats() NIStats { return ni.stats }

// ResetStats clears traffic statistics (used at the end of warm-up).
func (ni *NI) ResetStats() { ni.stats = NIStats{} }

// Ejection returns the NI's ejection input unit.
func (ni *NI) Ejection() *InputUnit { return ni.ej }

// InjectionOutput returns the NI's injection-side output unit.
func (ni *NI) InjectionOutput() *OutputUnit { return ni.out }

// QueuedPackets returns the number of packets waiting in source queues.
func (ni *NI) QueuedPackets() int { return ni.queued }

// pendingFlits returns flits buffered in open flows (allocated but not
// yet launched).
func (ni *NI) pendingFlits() int {
	n := 0
	for m := ni.flowMask; m != 0; m &= m - 1 {
		fl := &ni.flows[bits.TrailingZeros64(m)]
		n += len(fl.flits) - fl.next
	}
	return n
}

// inject appends a packet to its vnet source queue.
func (ni *NI) inject(p Packet) error {
	if p.VNet < 0 || p.VNet >= ni.cfg.VNets {
		return fmt.Errorf("noc: packet vnet %d out of range", p.VNet)
	}
	if p.Len < 1 {
		return fmt.Errorf("noc: packet length %d", p.Len)
	}
	ni.srcQ[p.VNet] = append(ni.srcQ[p.VNet], p)
	ni.queued++
	ni.stats.InjectedPackets++
	if q := ni.QueuedPackets(); q > ni.stats.MaxQueueLen {
		ni.stats.MaxQueueLen = q
	}
	return nil
}

// deliverEject writes flits arriving from the router into the ejection
// buffers.
func (ni *NI) deliverEject(cycle uint64) {
	flits := ni.ej.flitIn.Receive()
	for i := range flits {
		ni.ej.bufferWrite(&flits[i], cycle, Local)
	}
}

// pickEject returns the first VC of mask (ascending bit order) whose
// head flit is ready, or -1.
func (ni *NI) pickEject(mask, cycle uint64) int {
	for ; mask != 0; mask &= mask - 1 {
		if vc := bits.TrailingZeros64(mask); ni.ej.headReady(vc, cycle) {
			return vc
		}
	}
	return -1
}

// drainEject consumes up to EjectRate flits from the ejection buffers,
// completing packets and recording latency. The rotating scan sweeps the
// occupied-VC mask from the arbiter pointer upward, then wraps —
// identical to the modular scan over all VCs.
func (ni *NI) drainEject(cycle uint64) {
	for k := 0; k < ni.cfg.EjectRate; k++ {
		occ := ni.ej.occMask
		low := uint64(1)<<uint(ni.ejArb.next) - 1
		vc := ni.pickEject(occ&^low, cycle)
		if vc < 0 {
			vc = ni.pickEject(occ&low, cycle)
		}
		if vc < 0 {
			return
		}
		ni.ejArb.next = (vc + 1) % ni.ej.NumVCs()
		f := ni.ej.popFlit(vc, cycle)
		ni.stats.EjectedFlits++
		if ni.net != nil {
			ni.net.noteProgress()
		}
		if ni.net != nil && ni.net.tracer != nil {
			ni.net.trace(EvEject, ni.id, Local, vc, *f)
		}
		if f.Type.IsTail() {
			ni.stats.EjectedPackets++
			ni.stats.LatencySum += cycle - f.InjectCycle
			ni.stats.NetLatencySum += cycle - f.NetInjectCycle
			ni.stats.Latency.Add(cycle - f.InjectCycle)
			ni.stats.NetLatency.Add(cycle - f.NetInjectCycle)
			if ni.net != nil && ni.net.deliverHook != nil {
				ni.net.deliverHook(*f, cycle)
			}
		}
	}
}

// pickFlow returns the first VC of mask (ascending bit order) that can
// send this cycle, or -1.
func (ni *NI) pickFlow(mask, cycle uint64) int {
	for ; mask != 0; mask &= mask - 1 {
		if vc := bits.TrailingZeros64(mask); ni.out.canSend(vc, cycle) {
			return vc
		}
	}
	return -1
}

// stageSend launches at most one flit from an open flow (the NI's ST).
func (ni *NI) stageSend(cycle uint64) {
	if ni.flowMask == 0 {
		return
	}
	low := uint64(1)<<uint(ni.flowArb.next) - 1
	picked := ni.pickFlow(ni.flowMask&^low, cycle)
	if picked < 0 {
		picked = ni.pickFlow(ni.flowMask&low, cycle)
	}
	if picked < 0 {
		return
	}
	ni.flowArb.next = (picked + 1) % ni.cfg.TotalVCs()
	fl := &ni.flows[picked]
	ni.out.sendFlit(&fl.flits[fl.next], picked, cycle)
	fl.next++
	ni.stats.InjectedFlits++
	if ni.net != nil {
		ni.net.noteProgress()
	}
	if fl.next == len(fl.flits) {
		*fl = niFlow{}
		ni.flowMask &^= 1 << uint(picked)
	}
}

// stageVA allocates a local-port VC to the head packet of each vnet
// queue (at most one per vnet per cycle), mirroring the router VA rate.
func (ni *NI) stageVA(cycle uint64) {
	for vn := 0; vn < ni.cfg.VNets; vn++ {
		if len(ni.srcQ[vn]) == 0 || !ni.out.hasFreeVC(vn) {
			continue
		}
		vc := ni.out.allocVC(vn)
		if vc < 0 {
			continue
		}
		pkt := ni.srcQ[vn][0]
		copy(ni.srcQ[vn], ni.srcQ[vn][1:])
		ni.srcQ[vn] = ni.srcQ[vn][:len(ni.srcQ[vn])-1]
		ni.queued--
		flits := pkt.Flits()
		for i := range flits {
			flits[i].NetInjectCycle = cycle
		}
		ni.flows[vc] = niFlow{flits: flits}
		ni.flowMask |= 1 << uint(vc)
		if ni.net != nil && ni.net.tracer != nil {
			ni.net.trace(EvNIAlloc, ni.id, Local, vc, flits[0])
		}
	}
}

// stagePolicy runs the injection-side pre-VA recovery policy: new
// traffic exists for a vnet (bit vn of the packed mask) whenever a
// packet waits in its source queue.
func (ni *NI) stagePolicy(cycle uint64) {
	var nt uint64
	if ni.queued > 0 {
		for vn := 0; vn < ni.cfg.VNets; vn++ {
			if len(ni.srcQ[vn]) > 0 {
				nt |= 1 << uint(vn)
			}
		}
	}
	if !ni.out.policyHolds(nt) {
		ni.out.runPolicy(nt, cycle)
	}
}

// phaseRecv is the receive half of a cycle for this NI: it ticks the
// control links the NI reads (the ejection side's Up_Down mask, the
// injection side's Down_Up feedback), consumes returned credits,
// buffers arriving ejection flits and enacts the power mask. Like
// Router.phaseRecv it never sends into a channel.
func (ni *NI) phaseRecv(cycle uint64) {
	if ni.ej.power.Tick() {
		ni.ej.pwrDirty = true
	}
	if ni.out.mdIn.Tick() {
		ni.out.polDirty = true
	}
	if ni.out.creditIn.n != 0 {
		ni.out.creditTick()
	}
	ni.deliverEject(cycle)
	ni.ej.applyPower(cycle)
}

// phaseCompute is the send half of a cycle: drain the ejection buffers,
// launch at most one flit from an open flow, allocate local-port VCs to
// queued packets, and run the injection-side recovery policy.
func (ni *NI) phaseCompute(cycle uint64) {
	ni.drainEject(cycle)
	ni.stageSend(cycle)
	ni.stageVA(cycle)
	ni.stagePolicy(cycle)
}

// samplePhase flushes the ejection buffers' NBTI spans and publishes
// their most-degraded VC at sensor-sampling cycles (the router's Local
// output unit is the consumer; with the default always-on policy the
// value is unused).
func (ni *NI) samplePhase(cycle uint64) {
	ni.ej.flushNBTI(cycle)
	ni.ej.publishMostDegraded(cycle)
}

// quiescent reports whether every per-cycle phase of this NI is
// provably a no-op: nothing queued or mid-flow on the injection side,
// nothing buffered or in flight on the ejection side, and the
// injection output unit idle under a settled, steady policy.
func (ni *NI) quiescent() bool {
	if ni.queued > 0 || ni.flowMask != 0 || ni.ej.flitIn.InFlight() > 0 ||
		!ni.ej.power.settled() || ni.ej.activeMask != 0 {
		return false
	}
	return ni.out.quiescent()
}
