package noc

import "fmt"

// NIStats aggregates per-node traffic statistics.
type NIStats struct {
	// InjectedPackets counts packets accepted into the source queues.
	InjectedPackets uint64
	// InjectedFlits counts flits launched into the network.
	InjectedFlits uint64
	// EjectedPackets and EjectedFlits count received traffic.
	EjectedPackets uint64
	EjectedFlits   uint64
	// LatencySum accumulates packet latency (source-queue entry to tail
	// ejection) for ejected packets.
	LatencySum uint64
	// NetLatencySum accumulates network latency (head launch to tail
	// ejection).
	NetLatencySum uint64
	// MaxQueueLen is the high-water mark of the source queues.
	MaxQueueLen int
	// Latency histograms over ejected packets: full latency (queue entry
	// to tail ejection) and network-only latency.
	Latency, NetLatency LatencyHistogram
}

// AvgLatency returns the mean packet latency in cycles, or 0 when no
// packet has been ejected.
func (s NIStats) AvgLatency() float64 {
	if s.EjectedPackets == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.EjectedPackets)
}

// AvgNetLatency returns the mean network latency in cycles.
func (s NIStats) AvgNetLatency() float64 {
	if s.EjectedPackets == 0 {
		return 0
	}
	return float64(s.NetLatencySum) / float64(s.EjectedPackets)
}

// niFlow is a packet in flight from an NI: the flits not yet launched on
// the flattened local-port VC the packet was allocated.
type niFlow struct {
	flits []Flit
	next  int
}

// NI is a tile's network interface. On the injection side it is the
// *upstream* of the router's Local input port: it owns an output unit
// (with outVCstate and a recovery policy) and performs VA for new
// packets, so the local port participates in NBTI gating exactly like
// router-to-router channels. On the ejection side it hosts the always-on
// ejection buffers fed by the router's Local output port.
type NI struct {
	id  NodeID
	cfg *Config
	net *Network
	// out is the injection-side output unit (downstream: router local
	// input port).
	out *OutputUnit
	// ej holds the ejection buffers (downstream of the router's Local
	// output port).
	ej       *InputUnit
	ejFlitIn *Pipeline[Flit]
	ejArb    *RoundRobin

	srcQ    [][]Packet // per-vnet source queues
	flows   []niFlow   // per flattened local-port VC
	flowArb *RoundRobin
	// openFlows counts flows with unlaunched flits, so stageSend can
	// skip its VC sweep when nothing is mid-injection.
	openFlows int

	newTraffic []bool

	stats NIStats
}

func newNI(id NodeID, cfg *Config) *NI {
	total := cfg.TotalVCs()
	return &NI{
		id:         id,
		cfg:        cfg,
		srcQ:       make([][]Packet, cfg.VNets),
		flows:      make([]niFlow, total),
		flowArb:    NewRoundRobin(total),
		ejArb:      NewRoundRobin(total),
		newTraffic: make([]bool, cfg.VNets),
	}
}

// ID returns the NI's node id.
func (ni *NI) ID() NodeID { return ni.id }

// Stats returns a copy of the NI's statistics.
func (ni *NI) Stats() NIStats { return ni.stats }

// ResetStats clears traffic statistics (used at the end of warm-up).
func (ni *NI) ResetStats() { ni.stats = NIStats{} }

// Ejection returns the NI's ejection input unit.
func (ni *NI) Ejection() *InputUnit { return ni.ej }

// InjectionOutput returns the NI's injection-side output unit.
func (ni *NI) InjectionOutput() *OutputUnit { return ni.out }

// QueuedPackets returns the number of packets waiting in source queues.
func (ni *NI) QueuedPackets() int {
	n := 0
	for _, q := range ni.srcQ {
		n += len(q)
	}
	return n
}

// pendingFlits returns flits buffered in open flows (allocated but not
// yet launched).
func (ni *NI) pendingFlits() int {
	n := 0
	for i := range ni.flows {
		fl := &ni.flows[i]
		n += len(fl.flits) - fl.next
	}
	return n
}

// inject appends a packet to its vnet source queue.
func (ni *NI) inject(p Packet) error {
	if p.VNet < 0 || p.VNet >= ni.cfg.VNets {
		return fmt.Errorf("noc: packet vnet %d out of range", p.VNet)
	}
	if p.Len < 1 {
		return fmt.Errorf("noc: packet length %d", p.Len)
	}
	ni.srcQ[p.VNet] = append(ni.srcQ[p.VNet], p)
	ni.stats.InjectedPackets++
	if q := ni.QueuedPackets(); q > ni.stats.MaxQueueLen {
		ni.stats.MaxQueueLen = q
	}
	return nil
}

// deliverEject writes flits arriving from the router into the ejection
// buffers.
func (ni *NI) deliverEject(cycle uint64) {
	for _, f := range ni.ejFlitIn.Receive() {
		ni.ej.bufferWrite(f, cycle, Local)
	}
}

// drainEject consumes up to EjectRate flits from the ejection buffers,
// completing packets and recording latency.
func (ni *NI) drainEject(cycle uint64) {
	for k := 0; k < ni.cfg.EjectRate; k++ {
		vc := -1
		for i := 0; i < ni.ej.NumVCs(); i++ {
			cand := (ni.ejArb.next + i) % ni.ej.NumVCs()
			if ni.ej.headReady(cand, cycle) {
				vc = cand
				break
			}
		}
		if vc < 0 {
			return
		}
		ni.ejArb.next = (vc + 1) % ni.ej.NumVCs()
		f := ni.ej.popFlit(vc, cycle)
		ni.stats.EjectedFlits++
		if ni.net != nil {
			ni.net.noteProgress()
		}
		if ni.net != nil && ni.net.tracer != nil {
			ni.net.trace(EvEject, ni.id, Local, vc, f)
		}
		if f.Type.IsTail() {
			ni.stats.EjectedPackets++
			ni.stats.LatencySum += cycle - f.InjectCycle
			ni.stats.NetLatencySum += cycle - f.NetInjectCycle
			ni.stats.Latency.Add(cycle - f.InjectCycle)
			ni.stats.NetLatency.Add(cycle - f.NetInjectCycle)
			if ni.net != nil && ni.net.deliverHook != nil {
				ni.net.deliverHook(f, cycle)
			}
		}
	}
}

// stageSend launches at most one flit from an open flow (the NI's ST).
func (ni *NI) stageSend(cycle uint64) {
	if ni.openFlows == 0 {
		return
	}
	total := ni.cfg.TotalVCs()
	picked := -1
	for i := 0; i < total; i++ {
		vc := (ni.flowArb.next + i) % total
		fl := &ni.flows[vc]
		if fl.next < len(fl.flits) && ni.out.canSend(vc, cycle) {
			picked = vc
			break
		}
	}
	if picked < 0 {
		return
	}
	ni.flowArb.next = (picked + 1) % total
	fl := &ni.flows[picked]
	ni.out.sendFlit(fl.flits[fl.next], picked, cycle)
	fl.next++
	ni.stats.InjectedFlits++
	if ni.net != nil {
		ni.net.noteProgress()
	}
	if fl.next == len(fl.flits) {
		*fl = niFlow{}
		ni.openFlows--
	}
}

// stageVA allocates a local-port VC to the head packet of each vnet
// queue (at most one per vnet per cycle), mirroring the router VA rate.
func (ni *NI) stageVA(cycle uint64) {
	for vn := 0; vn < ni.cfg.VNets; vn++ {
		if len(ni.srcQ[vn]) == 0 || !ni.out.hasFreeVC(vn) {
			continue
		}
		vc := ni.out.allocVC(vn)
		if vc < 0 {
			continue
		}
		pkt := ni.srcQ[vn][0]
		copy(ni.srcQ[vn], ni.srcQ[vn][1:])
		ni.srcQ[vn] = ni.srcQ[vn][:len(ni.srcQ[vn])-1]
		flits := pkt.Flits()
		for i := range flits {
			flits[i].NetInjectCycle = cycle
		}
		ni.flows[vc] = niFlow{flits: flits}
		ni.openFlows++
		if ni.net != nil && ni.net.tracer != nil {
			ni.net.trace(EvNIAlloc, ni.id, Local, vc, flits[0])
		}
	}
}

// stagePolicy runs the injection-side pre-VA recovery policy: new
// traffic exists for a vnet whenever a packet waits in its source queue.
func (ni *NI) stagePolicy(cycle uint64) {
	for vn := 0; vn < ni.cfg.VNets; vn++ {
		ni.newTraffic[vn] = len(ni.srcQ[vn]) > 0
	}
	if !ni.out.policyHolds(ni.newTraffic) {
		ni.out.runPolicy(ni.newTraffic, cycle)
	}
}

// tickLinks advances the control links this NI reads: the ejection
// side's Up_Down mask and the injection side's Down_Up feedback.
func (ni *NI) tickLinks() {
	if ni.ej.powerIn.Tick() {
		ni.ej.pwrDirty = true
	}
	if ni.out.mdIn.Tick() {
		ni.out.polDirty = true
	}
}

// samplePhase flushes the ejection buffers' NBTI spans and publishes
// their most-degraded VC at sensor-sampling cycles (the router's Local
// output unit is the consumer; with the default always-on policy the
// value is unused).
func (ni *NI) samplePhase(cycle uint64) {
	ni.ej.flushNBTI(cycle)
	ni.ej.publishMostDegraded(cycle)
}

// quiescent reports whether every per-cycle phase of this NI is
// provably a no-op: nothing queued or mid-flow on the injection side,
// nothing buffered or in flight on the ejection side, and the
// injection output unit idle under a settled, steady policy.
func (ni *NI) quiescent() bool {
	for _, q := range ni.srcQ {
		if len(q) > 0 {
			return false
		}
	}
	if ni.pendingFlits() > 0 || ni.ejFlitIn.InFlight() > 0 ||
		!ni.ej.powerIn.settled() || ni.ej.activeVCs > 0 {
		return false
	}
	return ni.out.quiescent()
}
