package noc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h LatencyHistogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram not zero")
	}
	if len(h.Buckets()) != 0 {
		t.Error("empty histogram has buckets")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h LatencyHistogram
	for _, v := range []uint64{1, 2, 3, 4, 8, 16, 100} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() != 100 {
		t.Errorf("max = %d", h.Max())
	}
	wantMean := float64(1+2+3+4+8+16+100) / 7
	if h.Mean() != wantMean {
		t.Errorf("mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h LatencyHistogram
	// 90 fast observations (latency 10 -> bucket upper edge 15), 10 slow
	// (latency 1000 -> upper edge 1023).
	for i := 0; i < 90; i++ {
		h.Add(10)
	}
	for i := 0; i < 10; i++ {
		h.Add(1000)
	}
	if p := h.Percentile(50); p != 15 {
		t.Errorf("p50 = %d, want 15", p)
	}
	if p := h.Percentile(90); p != 15 {
		t.Errorf("p90 = %d, want 15", p)
	}
	if p := h.Percentile(99); p != 1023 {
		t.Errorf("p99 = %d, want 1023", p)
	}
	if p := h.Percentile(150); p != 1023 {
		t.Errorf("clamped percentile = %d", p)
	}
}

func TestHistogramBucketsOrdered(t *testing.T) {
	var h LatencyHistogram
	for _, v := range []uint64{1000, 1, 50, 3} {
		h.Add(v)
	}
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("buckets = %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].UpperEdge <= bs[i-1].UpperEdge {
			t.Fatal("buckets not ascending")
		}
	}
}

// bucketOfReference is the original shift-loop bucket computation kept
// as the specification for the bits.Len64 fast path.
func bucketOfReference(v uint64) int {
	b := 0
	for v > 1 && b < 39 {
		v >>= 1
		b++
	}
	return b
}

func TestBucketOfBoundaries(t *testing.T) {
	vals := []uint64{0, 1, 2, 3}
	for k := uint(1); k < 64; k++ {
		p := uint64(1) << k
		vals = append(vals, p-1, p, p+1)
	}
	vals = append(vals, ^uint64(0))
	for _, v := range vals {
		if got, want := bucketOf(v), bucketOfReference(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
}

// TestBucketsAscendingAllBuckets fills every bucket and asserts the
// Buckets output is strictly ascending with no sort step: the index
// sweep alone must produce the order.
func TestBucketsAscendingAllBuckets(t *testing.T) {
	var h LatencyHistogram
	h.Add(0)
	for k := uint(0); k < 63; k++ {
		h.Add(uint64(1) << k)
	}
	bs := h.Buckets()
	if len(bs) != 40 {
		t.Fatalf("buckets = %d, want 40", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].UpperEdge <= bs[i-1].UpperEdge {
			t.Fatalf("bucket %d edge %d not above %d", i, bs[i].UpperEdge, bs[i-1].UpperEdge)
		}
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	var a, b LatencyHistogram
	a.Add(5)
	a.Add(7)
	b.Add(100)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 100 {
		t.Errorf("merge wrong: %s", a.String())
	}
	a.Reset()
	if a.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestHistogramString(t *testing.T) {
	var h LatencyHistogram
	h.Add(4)
	s := h.String()
	for _, want := range []string{"n=1", "mean=4.0", "max=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// Property: percentile upper bounds are monotone in p and bound max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		var h LatencyHistogram
		for _, v := range vals {
			h.Add(uint64(v) + 1)
		}
		if h.Count() == 0 {
			return true
		}
		prev := uint64(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		// p100 bucket upper edge must be >= the true max.
		return prev >= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetworkLatencyHistogram(t *testing.T) {
	cfg := testConfig(2, 2, 2)
	n := runUniform(t, cfg, 0.2, 4, 3000, 31)
	h := n.LatencyHistogramAll()
	if h.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
	if h.Count() != n.TotalEjectedPackets() {
		t.Errorf("histogram count %d != ejected %d", h.Count(), n.TotalEjectedPackets())
	}
	if h.Percentile(50) == 0 || h.Max() == 0 {
		t.Error("degenerate histogram")
	}
	// Mean from the histogram matches the NI sums.
	var sum float64
	var cnt uint64
	for i := 0; i < n.Nodes(); i++ {
		st := n.NI(NodeID(i)).Stats()
		sum += float64(st.LatencySum)
		cnt += st.EjectedPackets
	}
	if got, want := h.Mean(), sum/float64(cnt); got != want {
		t.Errorf("histogram mean %v != NI mean %v", got, want)
	}
}

func TestLinkUtilizations(t *testing.T) {
	cfg := testConfig(2, 2, 2)
	n := runUniform(t, cfg, 0.3, 4, 4000, 33)
	links := n.LinkUtilizations(4000)
	if len(links) == 0 {
		t.Fatal("no links reported")
	}
	// 2x2 mesh: 8 mesh channels + 4 ejection + 4 injection = 16.
	if len(links) != 16 {
		t.Errorf("links = %d, want 16", len(links))
	}
	var anyLoad bool
	for _, l := range links {
		if l.Utilization < 0 || l.Utilization > 1.0001 {
			t.Errorf("utilization out of range: %+v", l)
		}
		if l.Utilization > 0 {
			anyLoad = true
		}
	}
	if !anyLoad {
		t.Error("all links idle under load")
	}
	hot, ok := n.MaxLinkUtilization(4000)
	if !ok || hot.Utilization <= 0 {
		t.Errorf("no hottest link: %+v", hot)
	}
	if got := n.LinkUtilizations(0); got != nil {
		t.Error("zero window returned links")
	}
}
