package noc

import (
	"fmt"
	"math"
	"math/bits"
)

// LatencyHistogram accumulates packet latencies in power-of-two buckets
// (1, 2, 4, ... cycles), supporting approximate percentile queries
// without storing samples. The zero value is ready to use.
type LatencyHistogram struct {
	buckets [40]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// bucketOf returns the bucket index for a latency value: the position
// of the value's highest set bit, capped at the last bucket.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(v) - 1
	if b > 39 {
		return 39
	}
	return b
}

// Add records one latency observation.
func (h *LatencyHistogram) Add(latency uint64) {
	h.buckets[bucketOf(latency)]++
	h.count++
	h.sum += latency
	if latency > h.max {
		h.max = latency
	}
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() uint64 { return h.count }

// Mean returns the mean latency (0 when empty).
func (h *LatencyHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the maximum observed latency.
func (h *LatencyHistogram) Max() uint64 { return h.max }

// Percentile returns an upper bound of the p-th percentile (p in
// (0, 100]): the upper edge of the bucket containing that rank. It
// returns 0 when empty.
func (h *LatencyHistogram) Percentile(p float64) uint64 {
	if h.count == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	var seen uint64
	for b, c := range h.buckets {
		seen += c
		if seen >= rank {
			return upperEdge(b)
		}
	}
	return h.max
}

// Merge adds other's observations into h.
func (h *LatencyHistogram) Merge(other *LatencyHistogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *LatencyHistogram) Reset() { *h = LatencyHistogram{} }

// Buckets returns the non-empty buckets as (upper-edge, count) pairs in
// ascending order. The bucket array is indexed by bit position and
// upperEdge is monotonic in the index, so the index sweep already yields
// ascending edges.
func (h *LatencyHistogram) Buckets() []BucketCount {
	var out []BucketCount
	for b, c := range h.buckets {
		if c > 0 {
			out = append(out, BucketCount{UpperEdge: upperEdge(b), Count: c})
		}
	}
	return out
}

// BucketCount is one histogram bucket.
type BucketCount struct {
	// UpperEdge is the largest latency the bucket covers.
	UpperEdge uint64
	Count     uint64
}

// upperEdge returns the largest value mapping to bucket b.
func upperEdge(b int) uint64 {
	if b == 0 {
		return 1
	}
	return (uint64(1) << uint(b+1)) - 1
}

// String renders a compact summary.
func (h *LatencyHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p95<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.max)
}

// LinkUtilization describes one directed channel's load.
type LinkUtilization struct {
	// From/FromPort identify the upstream endpoint ("NI" when the
	// channel is an injection link).
	From     NodeID
	FromPort Port
	// Injection marks NI→router channels; Ejection router→NI ones.
	Injection, Ejection bool
	// Flits is the number of flits carried since the last counter reset.
	Flits uint64
	// Utilization is flits × phits / cycles, in [0, 1].
	Utilization float64
}

// LinkUtilizations returns the utilization of every directed channel
// over the cycles since the last event-counter reset (pass the measured
// window length).
func (n *Network) LinkUtilizations(window uint64) []LinkUtilization {
	if window == 0 {
		return nil
	}
	phits := float64(n.cfg.PhitsPerFlit)
	var out []LinkUtilization
	add := func(from NodeID, port Port, inj, ej bool, flits uint64) {
		out = append(out, LinkUtilization{
			From: from, FromPort: port, Injection: inj, Ejection: ej,
			Flits:       flits,
			Utilization: float64(flits) * phits / float64(window),
		})
	}
	for _, r := range n.routers {
		for p := Port(0); p < NumPorts; p++ {
			ou := r.out[p]
			if ou == nil {
				continue
			}
			add(r.id, p, false, p == Local, ou.flitsSent)
		}
	}
	for _, ni := range n.nis {
		add(ni.id, Local, true, false, ni.out.flitsSent)
	}
	return out
}

// MaxLinkUtilization returns the hottest channel.
func (n *Network) MaxLinkUtilization(window uint64) (LinkUtilization, bool) {
	links := n.LinkUtilizations(window)
	if len(links) == 0 {
		return LinkUtilization{}, false
	}
	best := links[0]
	for _, l := range links[1:] {
		if l.Utilization > best.Utilization {
			best = l
		}
	}
	return best, true
}
