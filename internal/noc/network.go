package noc

import (
	"fmt"
	"math/bits"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/pv"
	"nbtinoc/internal/rng"
)

// Network is a complete mesh NoC instance: routers, network interfaces
// and all flit/credit/control channels, advanced one cycle at a time.
//
// All hot per-(router, port, vc) state lives in flat contiguous arenas
// owned by the network — routers, NIs, input/output units, VC buffers,
// flit FIFOs, NBTI devices, link pipelines and control links are value
// slices, and units hold subslices into them. The packed index scheme is
//
//	unit slot = node*(NumPorts+1) + port   (port NumPorts = NI side)
//	vc slot   = unit slot*TotalVCs + vc
//
// so the active-set sweep walks memory nearly linearly instead of
// chasing per-unit heap objects.
//
// A network is confined to a single goroutine: units reach into each
// other's state through bare back-pointers with no synchronisation.
// The netshare analyzer enforces the confinement (the marker below is
// its root declaration), and sim.Pool's one-network-per-job pattern is
// the blessed way to use many networks in parallel.
//
//nbtilint:network single-goroutine simulation state root
type Network struct {
	cfg     Config
	routers []Router
	nis     []NI

	// Unit and VC-state arenas; see the packed index scheme above.
	// Channel endpoint state (flit/credit pipelines, Up_Down and Down_Up
	// links) is embedded in the unit that reads it — the writing end
	// holds a pointer — so the per-cycle receive pass touches only the
	// reader's own cache lines.
	//nbtilint:arena
	iunits []InputUnit
	//nbtilint:arena
	ounits []OutputUnit
	//nbtilint:arena
	vcbufs []vcBuffer
	//nbtilint:arena
	outvcs []outVC
	//nbtilint:arena
	devices []nbti.Device
	//nbtilint:arena
	fifos []Flit
	//nbtilint:arena
	flows []niFlow

	cycle        uint64
	nextPacketID uint64
	vmap         *pv.VCMap

	// rtrMask/niMask are the live active sets: bit id is set while the
	// unit must be stepped. Units clear their own bit when quiescent;
	// wake hooks (flit sends, mask/feedback changes, injections) set it.
	rtrMask, niMask []uint64
	// rtrSnap/niSnap capture the active sets at the top of each Step so
	// units woken mid-cycle join the sweep the following cycle, matching
	// the one-cycle link delays. Each phase iterates the snapshot's set
	// bits directly (ascending NodeID — a deterministic order by
	// construction).
	rtrSnap, niSnap []uint64
	// nextSample is the next sensor-sampling cycle; between samples the
	// banks hold their outputs, so the publish phase is skipped.
	nextSample uint64

	// deliverHook, when set, is invoked once per delivered packet (at
	// tail-flit ejection) — the attachment point for closed-loop traffic
	// generators such as request/response protocols.
	deliverHook func(f Flit, cycle uint64)
	// tracer, when set, receives flit-level pipeline events.
	tracer Tracer
	// met holds the observability handles resolved at construction;
	// all-nil (one branch per site) when instrumentation is disabled.
	met netMetrics
	// ffCycles counts cycles covered by RunUntil bulk jumps instead of
	// executed Steps (always maintained; the registry counter mirrors it
	// when instrumentation is on).
	ffCycles uint64
	// lastProgress is the most recent cycle in which any flit moved
	// (switch traversal, NI send, or ejection); it feeds the stall
	// watchdog used to flag livelocked policy configurations.
	lastProgress uint64
}

// ejPort is the pseudo-port index used for the NI-side unit slot of each
// node: the ejection input buffers and the injection output unit, and
// the index used when sampling their process variation.
const ejPort = int(NumPorts)

// unitSlots is the per-node unit-arena stride: the five router ports
// plus the NI-side slot.
const unitSlots = int(NumPorts) + 1

// New builds a network from the configuration. The same PVSeed yields
// the same initial Vth values regardless of the policy, as the paper's
// methodology requires.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TotalVCs() > 64 {
		return nil, fmt.Errorf("noc: %d VCs per port exceeds the 64-bit power mask", cfg.TotalVCs())
	}
	n := &Network{cfg: cfg, met: newNetMetrics()}
	nodes := cfg.Nodes()
	total := cfg.TotalVCs()
	n.vmap = pv.SampleNetwork(cfg.PV, cfg.PVSeed, nodes, unitSlots, total)

	sensorSrc := rng.New(cfg.SensorSeed)
	seeder := func() *rng.Source {
		if cfg.Sensor.NoiseSigma > 0 {
			return sensorSrc.Split()
		}
		return nil
	}

	// Unit arenas: slots for absent edge ports stay zero values (the
	// uniform stride keeps indexing branch-free; the waste is small).
	slots := nodes * unitSlots
	n.iunits = make([]InputUnit, slots)
	n.ounits = make([]OutputUnit, slots)
	n.vcbufs = make([]vcBuffer, slots*total)
	n.outvcs = make([]outVC, slots*total)
	n.devices = make([]nbti.Device, slots*total)
	// FIFO storage: router-port slots use BufferDepth, the NI-side slot
	// EjectBufferDepth.
	nodeFifo := (int(NumPorts)*cfg.BufferDepth + cfg.EjectBufferDepth) * total
	n.fifos = make([]Flit, nodes*nodeFifo)
	n.flows = make([]niFlow, nodes*total)

	n.routers = make([]Router, nodes)
	n.nis = make([]NI, nodes)
	coords := make([]Coord, nodes)
	for id := 0; id < nodes; id++ {
		coords[id] = CoordOf(NodeID(id), cfg.Width)
	}
	for id := 0; id < nodes; id++ {
		initRouter(&n.routers[id], NodeID(id), coords[id], &n.cfg)
		n.routers[id].net = n
		n.routers[id].coords = coords
		initNI(&n.nis[id], NodeID(id), &n.cfg, window(n.flows, id, total))
		n.nis[id].net = n
	}

	for id := 0; id < nodes; id++ {
		r := &n.routers[id]
		ni := &n.nis[id]

		// NI → router Local input port (gated like any router port).
		ni.out = n.initOU(id, ejPort, NodeID(id), Local, cfg.BufferDepth, cfg.Policy)
		r.in[Local] = n.initIU(id, int(Local), NodeID(id), Local, cfg.BufferDepth,
			n.vmap.PortVths(id, int(Local)))
		n.connect(ni.out, r.in[Local])
		ni.out.wakeDown = n.routerWaker(id)
		ni.out.dnFlit, ni.out.dnPow, ni.out.dnBit = &r.flitPorts, &r.powPorts, 1<<uint(Local)
		r.in[Local].wakeUp = n.niWaker(id)

		// Router Local output port → NI ejection buffers.
		ejPolicy := PolicyFactory(NewBaseline)
		if cfg.GateEjection && cfg.Policy != nil {
			ejPolicy = cfg.Policy
		}
		r.out[Local] = n.initOU(id, int(Local), NodeID(id), Local, cfg.EjectBufferDepth, ejPolicy)
		ni.ej = n.initIU(id, ejPort, NodeID(id), Local, cfg.EjectBufferDepth,
			n.vmap.PortVths(id, ejPort))
		n.connect(r.out[Local], ni.ej)
		r.out[Local].wakeDown = n.niWaker(id)
		ni.ej.wakeUp = n.routerWaker(id)
		ni.ej.upCred, ni.ej.upMD, ni.ej.upBit = &r.credPorts, &r.mdPorts, 1<<uint(Local)

		// Mesh links: create the outgoing channel for each direction.
		c := r.Coord()
		for _, dir := range []Port{North, East, South, West} {
			nb, ok := n.neighbour(c, dir)
			if !ok {
				continue
			}
			down := &n.routers[nb]
			inPort := dir.Opposite()
			r.out[dir] = n.initOU(id, int(dir), NodeID(id), dir, cfg.BufferDepth, cfg.Policy)
			down.in[inPort] = n.initIU(int(nb), int(inPort), nb, inPort, cfg.BufferDepth,
				n.vmap.PortVths(int(nb), int(inPort)))
			n.connect(r.out[dir], down.in[inPort])
			r.out[dir].wakeDown = n.routerWaker(int(nb))
			r.out[dir].dnFlit, r.out[dir].dnPow, r.out[dir].dnBit = &down.flitPorts, &down.powPorts, 1<<uint(inPort)
			down.in[inPort].wakeUp = n.routerWaker(id)
			down.in[inPort].upCred, down.in[inPort].upMD, down.in[inPort].upBit = &r.credPorts, &r.mdPorts, 1<<uint(dir)
		}
	}

	// Every unit starts on the active set (and every present port on its
	// router's receive summary): the initial policy runs and gating
	// transitions must execute before a unit can prove itself quiescent
	// and drop off.
	for id := 0; id < nodes; id++ {
		r := &n.routers[id]
		r.steadyAll = true
		for p := Port(0); p < NumPorts; p++ {
			if r.in[p] != nil {
				r.flitPorts |= 1 << uint(p)
				r.powPorts |= 1 << uint(p)
			}
			if r.out[p] != nil {
				r.credPorts |= 1 << uint(p)
				r.mdPorts |= 1 << uint(p)
				r.polPorts |= 1 << uint(p)
				r.steadyAll = r.steadyAll && r.out[p].steady
			}
		}
	}
	words := (nodes + 63) / 64
	n.rtrMask = newFullMask(nodes, words)
	n.niMask = newFullMask(nodes, words)
	n.rtrSnap = make([]uint64, words)
	n.niSnap = make([]uint64, words)
	n.nextSample = 1

	// Attach sensors to every input unit (router ports and NI ejection).
	// The iteration order fixes the rng split sequence and must not
	// change: nodes ascending, router ports 0..NumPorts-1, then the NI
	// ejection unit.
	for id := 0; id < nodes; id++ {
		for p := Port(0); p < NumPorts; p++ {
			if iu := n.routers[id].in[p]; iu != nil {
				if err := iu.attachSensors(cfg.Sensor, seeder); err != nil {
					return nil, err
				}
			}
		}
		if err := n.nis[id].ej.attachSensors(cfg.Sensor, seeder); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// fifoOf returns the FIFO arena slice of a unit slot: router ports use
// BufferDepth flits per VC, the NI-side slot EjectBufferDepth. It is a
// packing helper in its own right — the FIFO arena's stride is
// per-node, not per-unit, because the two buffer depths differ.
//
//nbtilint:packed
func (n *Network) fifoOf(node, slot int) []Flit {
	total := n.cfg.TotalVCs()
	nodeFifo := (int(NumPorts)*n.cfg.BufferDepth + n.cfg.EjectBufferDepth) * total
	base := node * nodeFifo
	var off, size int
	if slot < int(NumPorts) {
		off = slot * n.cfg.BufferDepth * total
		size = n.cfg.BufferDepth * total
	} else {
		off = int(NumPorts) * n.cfg.BufferDepth * total
		size = n.cfg.EjectBufferDepth * total
	}
	return n.fifos[base+off : base+off+size : base+off+size]
}

// initIU initialises the input unit at arena slot (node, slot) over its
// arena subslices and returns it. Router-port slots (slot < NumPorts)
// are wired into their router's port-summary masks; the NI ejection
// slot has no router and leaves the back pointers nil.
func (n *Network) initIU(node, slot int, owner NodeID, port Port, depth int, vth0 []float64) *InputUnit {
	total := n.cfg.TotalVCs()
	u := unitIndex(node, slot)
	iu := &n.iunits[u]
	initInputUnit(iu, owner, port, &n.cfg,
		window(n.vcbufs, u, total), n.fifoOf(node, slot),
		window(n.devices, u, total), depth, vth0)
	iu.clk = &n.cycle
	if slot < int(NumPorts) {
		r := &n.routers[node]
		iu.occPorts = &r.occPorts
		iu.pendPorts = &r.pendPorts
		iu.actPorts = &r.busyIn
		iu.ownPow = &r.powPorts
		iu.portBit = 1 << uint(slot)
	}
	return iu
}

// initOU initialises the output unit at arena slot (node, slot) over its
// arena subslice and returns it.
func (n *Network) initOU(node, slot int, owner NodeID, port Port, depth int, factory PolicyFactory) *OutputUnit {
	total := n.cfg.TotalVCs()
	u := unitIndex(node, slot)
	ou := &n.ounits[u]
	initOutputUnit(ou, owner, port, &n.cfg, window(n.outvcs, u, total), depth, factory)
	if slot < int(NumPorts) {
		r := &n.routers[node]
		ou.ownPol = &r.polPorts
		ou.ownAct = &r.busyOut
		ou.ownPolBit = 1 << uint(slot)
	}
	return ou
}

// connect wires an upstream output unit to a downstream input unit.
// Each channel's endpoint state is embedded in its reader (flit pipeline
// and power link in the input unit, credit pipeline and Down_Up link in
// the output unit), so wiring is pure pointer exchange.
func (n *Network) connect(ou *OutputUnit, iu *InputUnit) {
	ou.flitOut = &iu.flitIn
	ou.powerOut = &iu.power
	iu.creditOut = &ou.creditIn
	iu.mdOut = &ou.mdIn
	iu.clk = &n.cycle
}

// neighbour returns the node id in direction dir from c, if it exists.
func (n *Network) neighbour(c Coord, dir Port) (NodeID, bool) {
	nc := c
	switch dir {
	case North:
		nc.Y--
	case South:
		nc.Y++
	case East:
		nc.X++
	case West:
		nc.X--
	}
	if nc.X < 0 || nc.X >= n.cfg.Width || nc.Y < 0 || nc.Y >= n.cfg.Height {
		return 0, false
	}
	return nc.NodeOf(n.cfg.Width), true
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the current cycle count.
func (n *Network) Cycle() uint64 { return n.cycle }

// Router returns router id.
func (n *Network) Router(id NodeID) *Router { return &n.routers[id] }

// NI returns the network interface of node id.
func (n *Network) NI(id NodeID) *NI { return &n.nis[id] }

// Nodes returns the node count.
func (n *Network) Nodes() int { return len(n.routers) }

// SetDeliveryHook registers fn to be called on every packet delivery
// (tail-flit ejection at the destination NI). Pass nil to clear. The
// hook runs synchronously inside Step; it must not call Step or Inject
// re-entrantly (queue follow-up packets and inject them next cycle).
func (n *Network) SetDeliveryHook(fn func(f Flit, cycle uint64)) {
	n.deliverHook = fn
}

// Inject enqueues a packet for injection at src. The packet is assigned
// a network-unique id and stamped with the current cycle.
func (n *Network) Inject(src, dst NodeID, vnet, length int) error {
	if int(src) < 0 || int(src) >= len(n.nis) {
		return fmt.Errorf("noc: source node %d out of range", src)
	}
	if int(dst) < 0 || int(dst) >= len(n.nis) {
		return fmt.Errorf("noc: destination node %d out of range", dst)
	}
	if src == dst {
		return fmt.Errorf("noc: self-addressed packet at node %d", src)
	}
	p := Packet{
		ID:          n.nextPacketID,
		Src:         src,
		Dst:         dst,
		VNet:        vnet,
		Len:         length,
		InjectCycle: n.cycle,
	}
	if err := n.nis[src].inject(p); err != nil {
		return err
	}
	n.wakeNI(src)
	if n.tracer != nil {
		n.trace(EvInject, src, Local, -1, Flit{
			PacketID: p.ID, Src: src, Dst: dst, VNet: int32(vnet),
			Type: HeadFlit, Len: int32(length), InjectCycle: n.cycle,
		})
	}
	n.nextPacketID++
	return nil
}

// Step advances the network by one cycle. The cycle is split into a
// receive pass and a compute pass: the receive pass lands every
// control/credit/flit delivery (link ticks, credit returns, BW/RC,
// power-mask application), then the compute pass executes last cycle's
// switch grants (ST), this cycle's allocations (VA/SA), the NI drains
// and launches, and the pre-VA recovery policies. The split is exact
// because all cross-unit communication flows through links with at
// least one cycle of delay: receive passes only consume from channels
// and compute passes only send into them, so within a pass the unit
// order cannot matter — which lets each pass run fused per unit (one
// cache-resident visit) instead of one sweep per pipeline stage.
// Finally the sensor banks sample at their due cycles (NBTI accounting
// itself is span-batched and flushed lazily). Each pass sweeps the set
// bits of this cycle's active-set snapshot in ascending id order; see
// activeset.go for why skipping the rest is exact.
func (n *Network) Step() {
	n.cycle++
	cycle := n.cycle

	nRtr, nNI := 0, 0
	for w := range n.rtrSnap {
		n.rtrSnap[w] = n.rtrMask[w]
		nRtr += bits.OnesCount64(n.rtrSnap[w])
		n.niSnap[w] = n.niMask[w]
		nNI += bits.OnesCount64(n.niSnap[w])
	}

	n.met.cycles.Inc()
	n.met.routersActive.Add(uint64(nRtr))
	n.met.routersSkipped.Add(uint64(len(n.routers) - nRtr))
	n.met.nisActive.Add(uint64(nNI))
	n.met.nisSkipped.Add(uint64(len(n.nis) - nNI))

	for w, word := range n.rtrSnap {
		for b := word; b != 0; b &= b - 1 {
			n.routers[w<<6+bits.TrailingZeros64(b)].phaseRecv(cycle)
		}
	}
	for w, word := range n.niSnap {
		for b := word; b != 0; b &= b - 1 {
			n.nis[w<<6+bits.TrailingZeros64(b)].phaseRecv(cycle)
		}
	}
	for w, word := range n.rtrSnap {
		for b := word; b != 0; b &= b - 1 {
			n.routers[w<<6+bits.TrailingZeros64(b)].phaseCompute(cycle)
		}
	}
	for w, word := range n.niSnap {
		for b := word; b != 0; b &= b - 1 {
			n.nis[w<<6+bits.TrailingZeros64(b)].phaseCompute(cycle)
		}
	}
	if cycle == n.nextSample {
		// The sampling sweep covers every unit, active or not: sensor
		// cadence is global, and a changed comparator output wakes the
		// upstream consumer.
		for i := range n.routers {
			n.routers[i].samplePhase(cycle)
		}
		for i := range n.nis {
			n.nis[i].samplePhase(cycle)
		}
		n.nextSample += n.cfg.Sensor.SamplePeriod
	}
	for w, word := range n.rtrSnap {
		for b := word; b != 0; b &= b - 1 {
			id := w<<6 + bits.TrailingZeros64(b)
			if n.routers[id].quiescent() {
				n.rtrMask[w] &^= 1 << uint(id&63)
			}
		}
	}
	for w, word := range n.niSnap {
		for b := word; b != 0; b &= b - 1 {
			id := w<<6 + bits.TrailingZeros64(b)
			if n.nis[id].quiescent() {
				n.niMask[w] &^= 1 << uint(id&63)
			}
		}
	}
	if nbtiDebug {
		n.debugCheckSkipped()
	}
}

// Run advances the network by cycles steps.
func (n *Network) Run(cycles uint64) {
	for i := uint64(0); i < cycles; i++ {
		n.Step()
	}
}

// Idle reports whether both active sets are empty. Because a unit only
// leaves its set by proving quiescent() — steady policy, settled links,
// empty pipelines and buffers, no queued packets — empty sets mean the
// next Step would be a pure no-op apart from sensor sampling, which is
// exactly the condition under which RunUntil may jump the clock.
func (n *Network) Idle() bool {
	for _, w := range n.rtrMask {
		if w != 0 {
			return false
		}
	}
	for _, w := range n.niMask {
		if w != 0 {
			return false
		}
	}
	return true
}

// FastForwardedCycles returns the number of simulated cycles covered by
// bulk RunUntil jumps rather than executed Steps.
func (n *Network) FastForwardedCycles() uint64 { return n.ffCycles }

// RunUntil advances the network until its cycle counter reaches target,
// fast-forwarding over provably idle spans. While the active sets are
// empty every skipped cycle is a no-op by construction: no flit, credit
// or control message is in flight, every link is settled, every policy
// steady, and NBTI accounting is span-batched so the skipped recovery
// span is charged exactly when the next flush closes it. The one global
// exception is the sensor-sampling cadence, so jumps land just before
// nextSample (or target) and execute that cycle as a real Step — whose
// sample sweep may wake units, degrading gracefully to cycle-by-cycle
// stepping until the network is idle again. Equivalence with calling
// Step target-cycle times is pinned by tests and the nbtidebug build.
func (n *Network) RunUntil(target uint64) {
	for n.cycle < target {
		if !n.Idle() {
			n.Step()
			continue
		}
		next := target
		if n.nextSample < next {
			next = n.nextSample
		}
		if skip := next - n.cycle - 1; skip > 0 {
			n.cycle += skip
			n.ffCycles += skip
			// The stall watchdog measures from the end of the jump: an
			// idle span is not a livelock.
			n.lastProgress = n.cycle
			n.met.cycles.Add(skip)
			n.met.ffCycles.Add(skip)
			n.met.routersSkipped.Add(skip * uint64(len(n.routers)))
			n.met.nisSkipped.Add(skip * uint64(len(n.nis)))
		}
		n.Step()
	}
}

// noteProgress records that a flit moved this cycle.
func (n *Network) noteProgress() { n.lastProgress = n.cycle }

// StalledFor returns the number of cycles since a flit last moved.
func (n *Network) StalledFor() uint64 { return n.cycle - n.lastProgress }

// Stalled reports whether traffic is pending but nothing has moved for
// at least threshold cycles — the signature of a livelocked recovery
// policy (e.g. a round-robin rotation period shorter than the
// sleep-transistor wake-up latency).
func (n *Network) Stalled(threshold uint64) bool {
	if n.Quiescent() {
		return false
	}
	return n.StalledFor() >= threshold
}

// InFlightFlits returns the number of flits buffered or on links.
func (n *Network) InFlightFlits() int {
	total := 0
	// Every flit pipeline is embedded in exactly one input unit, so the
	// unit arena covers all links (unwired edge slots hold empty pipes).
	for i := range n.iunits {
		total += n.iunits[i].flitIn.InFlight()
	}
	for i := range n.routers {
		total += n.routers[i].bufferedFlits()
	}
	for i := range n.nis {
		total += n.nis[i].ej.bufferedFlits() + n.nis[i].pendingFlits()
	}
	return total
}

// Quiescent reports whether no packet is queued, buffered or in flight.
func (n *Network) Quiescent() bool {
	for i := range n.nis {
		if n.nis[i].QueuedPackets() > 0 {
			return false
		}
	}
	return n.InFlightFlits() == 0
}

// flushNBTI closes every open accounting span in the network (router
// input and NI ejection buffers) up to the current cycle — the
// network-level read barrier before any bulk tracker access.
func (n *Network) flushNBTI() {
	for i := range n.routers {
		r := &n.routers[i]
		for p := Port(0); p < NumPorts; p++ {
			if iu := r.in[p]; iu != nil {
				iu.flushNBTI(n.cycle)
			}
		}
	}
	for i := range n.nis {
		n.nis[i].ej.flushNBTI(n.cycle)
	}
}

// ResetNBTIStats clears all NBTI stress trackers (end of warm-up). Open
// spans are flushed first so the span origin advances to the current
// cycle; the flushed charges are then discarded with the rest.
func (n *Network) ResetNBTIStats() {
	n.flushNBTI()
	for i := range n.routers {
		r := &n.routers[i]
		for p := Port(0); p < NumPorts; p++ {
			if iu := r.in[p]; iu != nil {
				for vc := range iu.vcs {
					iu.vcs[vc].device.Tracker.Reset()
				}
			}
		}
	}
	for i := range n.nis {
		ej := n.nis[i].ej
		for vc := range ej.vcs {
			ej.vcs[vc].device.Tracker.Reset()
		}
	}
}

// EventCounts aggregates the microarchitectural event counters used by
// the energy model.
type EventCounts struct {
	// BufferWrites/BufferReads are flit buffer accesses across all
	// router input units (NI ejection buffers excluded).
	BufferWrites, BufferReads uint64
	// CrossbarTraversals counts router ST events.
	CrossbarTraversals uint64
	// VAGrants and SAGrants count allocator operations.
	VAGrants, SAGrants uint64
	// LinkFlits counts flits launched onto links (router and NI output
	// units).
	LinkFlits uint64
	// GateEvents and WakeEvents count sleep-transistor transitions.
	GateEvents, WakeEvents uint64
	// StressCycles and RecoveryCycles aggregate powered/gated
	// buffer-cycles across all router input VCs.
	StressCycles, RecoveryCycles uint64
}

// Events returns the aggregated event counters since the last reset.
func (n *Network) Events() EventCounts {
	n.flushNBTI()
	var e EventCounts
	for i := range n.routers {
		r := &n.routers[i]
		e.CrossbarTraversals += r.stFlits
		e.VAGrants += r.vaGrants
		e.SAGrants += r.saGrants
		for p := Port(0); p < NumPorts; p++ {
			if iu := r.in[p]; iu != nil {
				e.BufferWrites += iu.writes
				e.BufferReads += iu.reads
				for vc := range iu.vcs {
					e.StressCycles += iu.vcs[vc].device.Tracker.StressCycles()
					e.RecoveryCycles += iu.vcs[vc].device.Tracker.RecoveryCycles()
				}
			}
			if ou := r.out[p]; ou != nil {
				e.LinkFlits += ou.flitsSent
				e.GateEvents += ou.gateEvents
				e.WakeEvents += ou.wakeEvents
			}
		}
	}
	for i := range n.nis {
		ni := &n.nis[i]
		e.LinkFlits += ni.out.flitsSent
		e.GateEvents += ni.out.gateEvents
		e.WakeEvents += ni.out.wakeEvents
	}
	return e
}

// ResetEventCounters clears the microarchitectural event counters.
func (n *Network) ResetEventCounters() {
	for i := range n.routers {
		r := &n.routers[i]
		r.stFlits, r.vaGrants, r.saGrants = 0, 0, 0
		for p := Port(0); p < NumPorts; p++ {
			if iu := r.in[p]; iu != nil {
				iu.writes, iu.reads = 0, 0
			}
			if ou := r.out[p]; ou != nil {
				ou.flitsSent, ou.gateEvents, ou.wakeEvents = 0, 0, 0
			}
		}
	}
	for i := range n.nis {
		ni := &n.nis[i]
		ni.out.flitsSent, ni.out.gateEvents, ni.out.wakeEvents = 0, 0, 0
		ni.ej.writes, ni.ej.reads = 0, 0
	}
}

// ResetTrafficStats clears all NI traffic statistics.
func (n *Network) ResetTrafficStats() {
	for i := range n.nis {
		n.nis[i].ResetStats()
	}
}

// DutyCycle returns the NBTI-duty-cycle (percent) of a router input VC.
func (n *Network) DutyCycle(node NodeID, port Port, vc int) float64 {
	return n.routers[node].in[port].Device(vc).Tracker.DutyCycle()
}

// MostDegradedVC returns the most degraded VC (index within the vnet
// slice) of a router input port, as the port's sensor bank reports it.
// Open NBTI spans are flushed first in case the read triggers a fresh
// sample of closed-loop (Horizon > 0) sensors.
func (n *Network) MostDegradedVC(node NodeID, port Port, vnet int) int {
	iu := n.routers[node].in[port]
	iu.flushNBTI(n.cycle)
	return iu.banks[vnet].MostDegraded(n.cycle)
}

// Vth0 returns the process-variation initial threshold voltage sampled
// for a router input VC.
func (n *Network) Vth0(node NodeID, port Port, vc int) float64 {
	return n.vmap.At(int(node), int(port), vc)
}

// LatencyHistogramAll returns the merged full-latency histogram across
// all NIs.
func (n *Network) LatencyHistogramAll() LatencyHistogram {
	var h LatencyHistogram
	for i := range n.nis {
		h.Merge(&n.nis[i].stats.Latency)
	}
	return h
}

// TotalEjectedPackets sums ejected packets across all NIs.
func (n *Network) TotalEjectedPackets() uint64 {
	var total uint64
	for i := range n.nis {
		total += n.nis[i].stats.EjectedPackets
	}
	return total
}

// TotalInjectedPackets sums packets accepted into source queues.
func (n *Network) TotalInjectedPackets() uint64 {
	var total uint64
	for i := range n.nis {
		total += n.nis[i].stats.InjectedPackets
	}
	return total
}
