package noc

import (
	"fmt"

	"nbtinoc/internal/pv"
	"nbtinoc/internal/rng"
)

// Network is a complete mesh NoC instance: routers, network interfaces
// and all flit/credit/control channels, advanced one cycle at a time.
type Network struct {
	cfg     Config
	routers []*Router
	nis     []*NI

	powerLinks []*powerLink
	mdLinks    []*mdLink
	flitPipes  []*Pipeline[Flit]
	credPipes  []*Pipeline[int]

	cycle        uint64
	nextPacketID uint64
	vmap         *pv.VCMap

	// rtrMask/niMask are the live active sets: bit id is set while the
	// unit must be stepped. Units clear their own bit when quiescent;
	// wake hooks (flit sends, mask/feedback changes, injections) set it.
	rtrMask, niMask []uint64
	// rtrSnap/niSnap capture the active sets at the top of each Step so
	// units woken mid-cycle join the sweep the following cycle, matching
	// the one-cycle link delays. activeRtr/activeNI are the decoded id
	// lists (ascending NodeID — a deterministic iteration order) reused
	// across cycles.
	rtrSnap, niSnap []uint64
	activeRtr       []int32
	activeNI        []int32
	// nextSample is the next sensor-sampling cycle; between samples the
	// banks hold their outputs, so the publish phase is skipped.
	nextSample uint64

	// deliverHook, when set, is invoked once per delivered packet (at
	// tail-flit ejection) — the attachment point for closed-loop traffic
	// generators such as request/response protocols.
	deliverHook func(f Flit, cycle uint64)
	// tracer, when set, receives flit-level pipeline events.
	tracer Tracer
	// met holds the observability handles resolved at construction;
	// all-nil (one branch per site) when instrumentation is disabled.
	met netMetrics
	// lastProgress is the most recent cycle in which any flit moved
	// (switch traversal, NI send, or ejection); it feeds the stall
	// watchdog used to flag livelocked policy configurations.
	lastProgress uint64
}

// ejPort is the pseudo-port index used when sampling process variation
// for the NI ejection buffers.
const ejPort = int(NumPorts)

// New builds a network from the configuration. The same PVSeed yields
// the same initial Vth values regardless of the policy, as the paper's
// methodology requires.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TotalVCs() > 64 {
		return nil, fmt.Errorf("noc: %d VCs per port exceeds the 64-bit power mask", cfg.TotalVCs())
	}
	n := &Network{cfg: cfg, met: newNetMetrics()}
	nodes := cfg.Nodes()
	n.vmap = pv.SampleNetwork(cfg.PV, cfg.PVSeed, nodes, int(NumPorts)+1, cfg.TotalVCs())

	sensorSrc := rng.New(cfg.SensorSeed)
	seeder := func() *rng.Source {
		if cfg.Sensor.NoiseSigma > 0 {
			return sensorSrc.Split()
		}
		return nil
	}

	n.routers = make([]*Router, nodes)
	n.nis = make([]*NI, nodes)
	for id := 0; id < nodes; id++ {
		n.routers[id] = newRouter(NodeID(id), CoordOf(NodeID(id), cfg.Width), &n.cfg)
		n.routers[id].net = n
		n.nis[id] = newNI(NodeID(id), &n.cfg)
		n.nis[id].net = n
	}

	for id := 0; id < nodes; id++ {
		r := n.routers[id]
		ni := n.nis[id]

		// NI → router Local input port (gated like any router port).
		ni.out = newOutputUnit(NodeID(id), Local, &n.cfg, cfg.BufferDepth, cfg.Policy)
		r.in[Local] = newInputUnit(NodeID(id), Local, &n.cfg, cfg.BufferDepth,
			n.vmap.PortVths(id, int(Local)))
		flit, cred := n.connect(ni.out, r.in[Local])
		r.flitIn[Local] = flit
		_ = cred
		ni.out.wakeDown = n.routerWaker(id)
		r.in[Local].wakeUp = n.niWaker(id)

		// Router Local output port → NI ejection buffers.
		ejPolicy := PolicyFactory(NewBaseline)
		if cfg.GateEjection && cfg.Policy != nil {
			ejPolicy = cfg.Policy
		}
		r.out[Local] = newOutputUnit(NodeID(id), Local, &n.cfg, cfg.EjectBufferDepth, ejPolicy)
		ni.ej = newInputUnit(NodeID(id), Local, &n.cfg, cfg.EjectBufferDepth,
			n.vmap.PortVths(id, ejPort))
		flit, _ = n.connect(r.out[Local], ni.ej)
		ni.ejFlitIn = flit
		r.out[Local].wakeDown = n.niWaker(id)
		ni.ej.wakeUp = n.routerWaker(id)

		// Mesh links: create the outgoing channel for each direction.
		c := r.Coord()
		for _, dir := range []Port{North, East, South, West} {
			nb, ok := n.neighbour(c, dir)
			if !ok {
				continue
			}
			down := n.routers[nb]
			inPort := dir.Opposite()
			r.out[dir] = newOutputUnit(NodeID(id), dir, &n.cfg, cfg.BufferDepth, cfg.Policy)
			down.in[inPort] = newInputUnit(nb, inPort, &n.cfg, cfg.BufferDepth,
				n.vmap.PortVths(int(nb), int(inPort)))
			flit, _ = n.connect(r.out[dir], down.in[inPort])
			down.flitIn[inPort] = flit
			r.out[dir].wakeDown = n.routerWaker(int(nb))
			down.in[inPort].wakeUp = n.routerWaker(id)
		}
	}

	// Every unit starts on the active set: the initial policy runs and
	// gating transitions must execute before a unit can prove itself
	// quiescent and drop off.
	words := (nodes + 63) / 64
	n.rtrMask = newFullMask(nodes, words)
	n.niMask = newFullMask(nodes, words)
	n.rtrSnap = make([]uint64, words)
	n.niSnap = make([]uint64, words)
	n.nextSample = 1

	// Attach sensors to every input unit (router ports and NI ejection).
	for id := 0; id < nodes; id++ {
		for p := Port(0); p < NumPorts; p++ {
			if iu := n.routers[id].in[p]; iu != nil {
				if err := iu.attachSensors(cfg.Sensor, seeder); err != nil {
					return nil, err
				}
			}
		}
		if err := n.nis[id].ej.attachSensors(cfg.Sensor, seeder); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// connect wires an upstream output unit to a downstream input unit with
// flit, credit and control channels, returning the flit and credit
// pipelines (the downstream end keeps the flit pipe, the upstream keeps
// the credit pipe).
func (n *Network) connect(ou *OutputUnit, iu *InputUnit) (*Pipeline[Flit], *Pipeline[int]) {
	// A serialized flit is fully received LinkLatency + phits - 1 cycles
	// after switch traversal begins; credits travel on dedicated narrow
	// wires at plain link latency.
	flit := NewPipeline[Flit](n.cfg.LinkLatency + n.cfg.PhitsPerFlit - 1)
	cred := NewPipeline[int](n.cfg.LinkLatency)
	power := newPowerLink()
	md := newMDLink(n.cfg.VNets)

	ou.flitOut = flit
	ou.creditIn = cred
	ou.powerOut = power
	ou.mdIn = md

	iu.creditOut = cred
	iu.powerIn = power
	iu.mdOut = md
	iu.clk = &n.cycle

	n.flitPipes = append(n.flitPipes, flit)
	n.credPipes = append(n.credPipes, cred)
	n.powerLinks = append(n.powerLinks, power)
	n.mdLinks = append(n.mdLinks, md)
	return flit, cred
}

// neighbour returns the node id in direction dir from c, if it exists.
func (n *Network) neighbour(c Coord, dir Port) (NodeID, bool) {
	nc := c
	switch dir {
	case North:
		nc.Y--
	case South:
		nc.Y++
	case East:
		nc.X++
	case West:
		nc.X--
	}
	if nc.X < 0 || nc.X >= n.cfg.Width || nc.Y < 0 || nc.Y >= n.cfg.Height {
		return 0, false
	}
	return nc.NodeOf(n.cfg.Width), true
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the current cycle count.
func (n *Network) Cycle() uint64 { return n.cycle }

// Router returns router id.
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// NI returns the network interface of node id.
func (n *Network) NI(id NodeID) *NI { return n.nis[id] }

// Nodes returns the node count.
func (n *Network) Nodes() int { return len(n.routers) }

// SetDeliveryHook registers fn to be called on every packet delivery
// (tail-flit ejection at the destination NI). Pass nil to clear. The
// hook runs synchronously inside Step; it must not call Step or Inject
// re-entrantly (queue follow-up packets and inject them next cycle).
func (n *Network) SetDeliveryHook(fn func(f Flit, cycle uint64)) {
	n.deliverHook = fn
}

// Inject enqueues a packet for injection at src. The packet is assigned
// a network-unique id and stamped with the current cycle.
func (n *Network) Inject(src, dst NodeID, vnet, length int) error {
	if int(src) < 0 || int(src) >= len(n.nis) {
		return fmt.Errorf("noc: source node %d out of range", src)
	}
	if int(dst) < 0 || int(dst) >= len(n.nis) {
		return fmt.Errorf("noc: destination node %d out of range", dst)
	}
	if src == dst {
		return fmt.Errorf("noc: self-addressed packet at node %d", src)
	}
	p := Packet{
		ID:          n.nextPacketID,
		Src:         src,
		Dst:         dst,
		VNet:        vnet,
		Len:         length,
		InjectCycle: n.cycle,
	}
	if err := n.nis[src].inject(p); err != nil {
		return err
	}
	n.wakeNI(src)
	if n.tracer != nil {
		n.trace(EvInject, src, Local, -1, Flit{
			PacketID: p.ID, Src: src, Dst: dst, VNet: vnet,
			Type: HeadFlit, Len: length, InjectCycle: n.cycle,
		})
	}
	n.nextPacketID++
	return nil
}

// Step advances the network by one cycle. Phase order emulates the
// synchronous hardware: control/credit/flit deliveries land first, then
// ST executes last cycle's switch grants, then VA/SA compute this
// cycle's allocations, then the pre-VA recovery policies publish next
// cycle's power commands, and finally the sensor banks sample at their
// due cycles (NBTI accounting itself is span-batched and flushed
// lazily). Each phase sweeps only the units on this cycle's active-set
// snapshot; see activeset.go for why skipping the rest is exact.
func (n *Network) Step() {
	n.cycle++
	cycle := n.cycle

	copy(n.rtrSnap, n.rtrMask)
	copy(n.niSnap, n.niMask)
	rtrs := decodeMask(n.activeRtr, n.rtrSnap)
	nis := decodeMask(n.activeNI, n.niSnap)
	n.activeRtr, n.activeNI = rtrs, nis

	n.met.cycles.Inc()
	n.met.routersActive.Add(uint64(len(rtrs)))
	n.met.routersSkipped.Add(uint64(len(n.routers) - len(rtrs)))
	n.met.nisActive.Add(uint64(len(nis)))
	n.met.nisSkipped.Add(uint64(len(n.nis) - len(nis)))

	for _, id := range rtrs {
		n.routers[id].tickLinks()
	}
	for _, id := range nis {
		n.nis[id].tickLinks()
	}
	for _, id := range rtrs {
		n.routers[id].creditTick()
	}
	for _, id := range nis {
		n.nis[id].out.creditTick()
	}
	for _, id := range rtrs {
		n.routers[id].deliverFlits(cycle)
	}
	for _, id := range nis {
		n.nis[id].deliverEject(cycle)
	}
	for _, id := range rtrs {
		n.routers[id].applyPower(cycle)
	}
	for _, id := range nis {
		n.nis[id].ej.applyPower(cycle)
	}
	for _, id := range rtrs {
		n.routers[id].stageST(cycle)
	}
	for _, id := range nis {
		ni := n.nis[id]
		ni.drainEject(cycle)
		ni.stageSend(cycle)
	}
	for _, id := range rtrs {
		n.routers[id].stageVA(cycle)
	}
	for _, id := range nis {
		n.nis[id].stageVA(cycle)
	}
	for _, id := range rtrs {
		n.routers[id].stageSA(cycle)
	}
	for _, id := range rtrs {
		n.routers[id].stagePolicy(cycle)
	}
	for _, id := range nis {
		n.nis[id].stagePolicy(cycle)
	}
	if cycle == n.nextSample {
		// The sampling sweep covers every unit, active or not: sensor
		// cadence is global, and a changed comparator output wakes the
		// upstream consumer.
		for _, r := range n.routers {
			r.samplePhase(cycle)
		}
		for _, ni := range n.nis {
			ni.samplePhase(cycle)
		}
		n.nextSample += n.cfg.Sensor.SamplePeriod
	}
	for _, id := range rtrs {
		if n.routers[id].quiescent() {
			n.rtrMask[id>>6] &^= 1 << uint(id&63)
		}
	}
	for _, id := range nis {
		if n.nis[id].quiescent() {
			n.niMask[id>>6] &^= 1 << uint(id&63)
		}
	}
	if nbtiDebug {
		n.debugCheckSkipped()
	}
}

// Run advances the network by cycles steps.
func (n *Network) Run(cycles uint64) {
	for i := uint64(0); i < cycles; i++ {
		n.Step()
	}
}

// noteProgress records that a flit moved this cycle.
func (n *Network) noteProgress() { n.lastProgress = n.cycle }

// StalledFor returns the number of cycles since a flit last moved.
func (n *Network) StalledFor() uint64 { return n.cycle - n.lastProgress }

// Stalled reports whether traffic is pending but nothing has moved for
// at least threshold cycles — the signature of a livelocked recovery
// policy (e.g. a round-robin rotation period shorter than the
// sleep-transistor wake-up latency).
func (n *Network) Stalled(threshold uint64) bool {
	if n.Quiescent() {
		return false
	}
	return n.StalledFor() >= threshold
}

// InFlightFlits returns the number of flits buffered or on links.
func (n *Network) InFlightFlits() int {
	total := 0
	for _, p := range n.flitPipes {
		total += p.InFlight()
	}
	for _, r := range n.routers {
		total += r.bufferedFlits()
	}
	for _, ni := range n.nis {
		total += ni.ej.bufferedFlits() + ni.pendingFlits()
	}
	return total
}

// Quiescent reports whether no packet is queued, buffered or in flight.
func (n *Network) Quiescent() bool {
	for _, ni := range n.nis {
		if ni.QueuedPackets() > 0 {
			return false
		}
	}
	return n.InFlightFlits() == 0
}

// flushNBTI closes every open accounting span in the network (router
// input and NI ejection buffers) up to the current cycle — the
// network-level read barrier before any bulk tracker access.
func (n *Network) flushNBTI() {
	for _, r := range n.routers {
		for p := Port(0); p < NumPorts; p++ {
			if iu := r.in[p]; iu != nil {
				iu.flushNBTI(n.cycle)
			}
		}
	}
	for _, ni := range n.nis {
		ni.ej.flushNBTI(n.cycle)
	}
}

// ResetNBTIStats clears all NBTI stress trackers (end of warm-up). Open
// spans are flushed first so the span origin advances to the current
// cycle; the flushed charges are then discarded with the rest.
func (n *Network) ResetNBTIStats() {
	n.flushNBTI()
	for _, r := range n.routers {
		for p := Port(0); p < NumPorts; p++ {
			if iu := r.in[p]; iu != nil {
				for vc := range iu.vcs {
					iu.vcs[vc].device.Tracker.Reset()
				}
			}
		}
	}
	for _, ni := range n.nis {
		for vc := range ni.ej.vcs {
			ni.ej.vcs[vc].device.Tracker.Reset()
		}
	}
}

// EventCounts aggregates the microarchitectural event counters used by
// the energy model.
type EventCounts struct {
	// BufferWrites/BufferReads are flit buffer accesses across all
	// router input units (NI ejection buffers excluded).
	BufferWrites, BufferReads uint64
	// CrossbarTraversals counts router ST events.
	CrossbarTraversals uint64
	// VAGrants and SAGrants count allocator operations.
	VAGrants, SAGrants uint64
	// LinkFlits counts flits launched onto links (router and NI output
	// units).
	LinkFlits uint64
	// GateEvents and WakeEvents count sleep-transistor transitions.
	GateEvents, WakeEvents uint64
	// StressCycles and RecoveryCycles aggregate powered/gated
	// buffer-cycles across all router input VCs.
	StressCycles, RecoveryCycles uint64
}

// Events returns the aggregated event counters since the last reset.
func (n *Network) Events() EventCounts {
	n.flushNBTI()
	var e EventCounts
	for _, r := range n.routers {
		e.CrossbarTraversals += r.stFlits
		e.VAGrants += r.vaGrants
		e.SAGrants += r.saGrants
		for p := Port(0); p < NumPorts; p++ {
			if iu := r.in[p]; iu != nil {
				e.BufferWrites += iu.writes
				e.BufferReads += iu.reads
				for vc := range iu.vcs {
					e.StressCycles += iu.vcs[vc].device.Tracker.StressCycles()
					e.RecoveryCycles += iu.vcs[vc].device.Tracker.RecoveryCycles()
				}
			}
			if ou := r.out[p]; ou != nil {
				e.LinkFlits += ou.flitsSent
				e.GateEvents += ou.gateEvents
				e.WakeEvents += ou.wakeEvents
			}
		}
	}
	for _, ni := range n.nis {
		e.LinkFlits += ni.out.flitsSent
		e.GateEvents += ni.out.gateEvents
		e.WakeEvents += ni.out.wakeEvents
	}
	return e
}

// ResetEventCounters clears the microarchitectural event counters.
func (n *Network) ResetEventCounters() {
	for _, r := range n.routers {
		r.stFlits, r.vaGrants, r.saGrants = 0, 0, 0
		for p := Port(0); p < NumPorts; p++ {
			if iu := r.in[p]; iu != nil {
				iu.writes, iu.reads = 0, 0
			}
			if ou := r.out[p]; ou != nil {
				ou.flitsSent, ou.gateEvents, ou.wakeEvents = 0, 0, 0
			}
		}
	}
	for _, ni := range n.nis {
		ni.out.flitsSent, ni.out.gateEvents, ni.out.wakeEvents = 0, 0, 0
		ni.ej.writes, ni.ej.reads = 0, 0
	}
}

// ResetTrafficStats clears all NI traffic statistics.
func (n *Network) ResetTrafficStats() {
	for _, ni := range n.nis {
		ni.ResetStats()
	}
}

// DutyCycle returns the NBTI-duty-cycle (percent) of a router input VC.
func (n *Network) DutyCycle(node NodeID, port Port, vc int) float64 {
	return n.routers[node].in[port].Device(vc).Tracker.DutyCycle()
}

// MostDegradedVC returns the most degraded VC (index within the vnet
// slice) of a router input port, as the port's sensor bank reports it.
// Open NBTI spans are flushed first in case the read triggers a fresh
// sample of closed-loop (Horizon > 0) sensors.
func (n *Network) MostDegradedVC(node NodeID, port Port, vnet int) int {
	iu := n.routers[node].in[port]
	iu.flushNBTI(n.cycle)
	return iu.banks[vnet].MostDegraded(n.cycle)
}

// Vth0 returns the process-variation initial threshold voltage sampled
// for a router input VC.
func (n *Network) Vth0(node NodeID, port Port, vc int) float64 {
	return n.vmap.At(int(node), int(port), vc)
}

// LatencyHistogramAll returns the merged full-latency histogram across
// all NIs.
func (n *Network) LatencyHistogramAll() LatencyHistogram {
	var h LatencyHistogram
	for _, ni := range n.nis {
		h.Merge(&ni.stats.Latency)
	}
	return h
}

// TotalEjectedPackets sums ejected packets across all NIs.
func (n *Network) TotalEjectedPackets() uint64 {
	var total uint64
	for _, ni := range n.nis {
		total += ni.stats.EjectedPackets
	}
	return total
}

// TotalInjectedPackets sums packets accepted into source queues.
func (n *Network) TotalInjectedPackets() uint64 {
	var total uint64
	for _, ni := range n.nis {
		total += ni.stats.InjectedPackets
	}
	return total
}
