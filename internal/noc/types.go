// Package noc implements a cycle-accurate 2D-mesh network-on-chip model
// in the style of Garnet (Agarwal et al., ISPASS'09): wormhole switching,
// virtual-channel flow control with credits, virtual networks, and
// 3-stage pipelined routers (BW/RC → VA/SA → ST) plus single-cycle link
// traversal.
//
// Two properties of the model are specific to this reproduction of
// Zoni & Fornaciari (DATE'13):
//
//  1. Virtual-channel allocation for a downstream input port is performed
//     by the *upstream* router (or network interface), which maintains an
//     outVCstate mirror of the downstream VCs — exactly the structure the
//     paper's pre-VA recovery policies exploit.
//  2. Every router input VC buffer can be power gated. A gated buffer is
//     in NBTI *recovery*; a powered buffer (holding flits or idle) is
//     under NBTI *stress*. The pre-VA policy of each upstream output unit
//     decides, every cycle, which idle downstream VCs stay powered.
//
// The package depends only on the aging substrates (nbti, pv, sensor,
// rng); the paper's recovery policies themselves live in internal/core.
package noc

import "fmt"

// Port identifies one of the five router ports.
type Port int

// Router port indices. Local connects to the tile's network interface.
const (
	Local Port = iota
	North
	East
	South
	West
	// NumPorts is the router radix (4 mesh directions + local).
	NumPorts
)

// String returns the conventional one-letter port name.
func (p Port) String() string {
	switch p {
	case Local:
		return "L"
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// Opposite returns the port on the neighbouring router that faces p:
// a flit leaving through East arrives on the neighbour's West input.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// VCState is the allocation state of a virtual channel as tracked both in
// the downstream input unit and in the upstream outVCstate mirror.
type VCState uint8

const (
	// VCIdle means no packet is assigned to the VC.
	VCIdle VCState = iota
	// VCActive means a packet owns the VC, from allocation (upstream
	// view) or head-flit arrival (downstream view) until the tail flit
	// has fully drained.
	VCActive
)

func (s VCState) String() string {
	switch s {
	case VCIdle:
		return "idle"
	case VCActive:
		return "active"
	default:
		return fmt.Sprintf("VCState(%d)", uint8(s))
	}
}

// NodeID identifies a tile (router + network interface) in the mesh.
type NodeID int32

// Coord is a mesh coordinate; x grows eastward, y grows southward, so
// node 0 is the upper-left tile as in the paper's figures.
type Coord struct{ X, Y int }

// NodeOf returns the node id of a coordinate in a width-w mesh.
func (c Coord) NodeOf(w int) NodeID { return NodeID(c.Y*w + c.X) }

// CoordOf returns the coordinate of node n in a width-w mesh.
func CoordOf(n NodeID, w int) Coord { return Coord{X: int(n) % w, Y: int(n) / w} }
