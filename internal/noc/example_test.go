package noc_test

import (
	"fmt"

	"nbtinoc/internal/core"
	"nbtinoc/internal/noc"
)

// A minimal end-to-end run: build a 2x2 mesh with the sensor-wise
// recovery policy, inject one packet, step until delivery, and inspect
// the NBTI accounting.
func Example() {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 2
	cfg.Policy = core.NewSensorWise

	n, err := noc.New(cfg)
	if err != nil {
		panic(err)
	}
	if err := n.Inject(0, 3, 0, 4); err != nil { // 4-flit packet, node 0 -> 3
		panic(err)
	}
	for n.TotalEjectedPackets() == 0 {
		n.Step()
	}
	fmt.Printf("delivered after %d cycles\n", n.Cycle())

	// Every VC of router 0's east input port has been either stressed
	// (powered) or recovering (gated) on every cycle.
	for vc := 0; vc < 2; vc++ {
		dev := n.Router(0).Input(noc.East).Device(vc)
		total := dev.Tracker.TotalCycles()
		fmt.Printf("VC%d: %d cycles accounted, duty %.0f%%\n",
			vc, total, dev.Tracker.DutyCycle())
		if total != n.Cycle() {
			panic("accounting hole")
		}
	}
	// Output:
	// delivered after 16 cycles
	// VC0: 16 cycles accounted, duty 6%
	// VC1: 16 cycles accounted, duty 6%
}
