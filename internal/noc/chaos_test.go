package noc

import (
	"testing"

	"nbtinoc/internal/rng"
)

// chaosPolicy makes adversarially random power decisions over idle VCs
// every cycle: any subset may be powered, including none even when
// traffic is waiting (which may stall allocation for a while but must
// never lose data or deadlock permanently, because the decision is
// re-drawn every cycle).
type chaosPolicy struct {
	src *rng.Source
}

func (p *chaosPolicy) Name() string { return "test-chaos" }
func (p *chaosPolicy) DesiredPower(in *PolicyInput, out []bool) {
	for i := 0; i < in.NumVCs; i++ {
		out[i] = p.src.Bool(0.5)
	}
}

// TestChaosPolicyNeverBreaksInvariants hammers the network with a
// random gating policy across several seeds and checks end-to-end
// conservation, the gated-buffers-are-empty invariant (sampled live),
// and the internal panics (credit protocol, packet mixing) staying
// silent.
func TestChaosPolicyNeverBreaksInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		chaosSrc := rng.New(seed * 7777)
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = 2, 2
		cfg.VCsPerVNet = 2
		cfg.Policy = func() Policy { return &chaosPolicy{src: chaosSrc.Split()} }
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(seed)
		for c := 0; c < 4000; c++ {
			for node := 0; node < 4; node++ {
				if src.Bool(0.03) {
					dst := src.Intn(3)
					if dst >= node {
						dst++
					}
					if err := n.Inject(NodeID(node), NodeID(dst), 0, 4); err != nil {
						t.Fatal(err)
					}
				}
			}
			n.Step()
			if c%97 == 0 {
				assertGatedEmpty(t, n)
			}
		}
		// Drain with the chaos policy still active: decisions are
		// re-drawn each cycle, so forward progress is probabilistic but
		// certain over a long horizon.
		for i := 0; i < 200000 && !n.Quiescent(); i++ {
			n.Step()
		}
		if !n.Quiescent() {
			t.Fatalf("seed %d: chaos policy starved the network: %d in flight, %d queued",
				seed, n.InFlightFlits(), n.TotalInjectedPackets()-n.TotalEjectedPackets())
		}
		if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
			t.Fatalf("seed %d: loss under chaos: %d vs %d",
				seed, n.TotalInjectedPackets(), n.TotalEjectedPackets())
		}
	}
}

func assertGatedEmpty(t *testing.T, n *Network) {
	t.Helper()
	for node := NodeID(0); int(node) < n.Nodes(); node++ {
		r := n.Router(node)
		for p := Port(0); p < NumPorts; p++ {
			iu := r.Input(p)
			if iu == nil {
				continue
			}
			for vc := 0; vc < iu.NumVCs(); vc++ {
				if !iu.Powered(vc) && iu.Occupancy(vc) > 0 {
					t.Fatalf("gated VC %d at node %d port %v holds flits", vc, node, p)
				}
			}
		}
	}
}

// TestChaosWithWakeupLatency repeats the chaos hammer with a
// sleep-transistor ramp, exercising the wake-countdown bookkeeping
// against arbitrary gate/wake sequences.
func TestChaosWithWakeupLatency(t *testing.T) {
	chaosSrc := rng.New(4242)
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 2
	cfg.WakeupLatency = 2
	cfg.Policy = func() Policy { return &chaosPolicy{src: chaosSrc.Split()} }
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	for c := 0; c < 3000; c++ {
		for node := 0; node < 4; node++ {
			if src.Bool(0.02) {
				dst := src.Intn(3)
				if dst >= node {
					dst++
				}
				if err := n.Inject(NodeID(node), NodeID(dst), 0, 4); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
	}
	for i := 0; i < 300000 && !n.Quiescent(); i++ {
		n.Step()
	}
	if !n.Quiescent() || n.TotalInjectedPackets() != n.TotalEjectedPackets() {
		t.Fatalf("chaos+wakeup broke delivery: %d vs %d (in flight %d)",
			n.TotalInjectedPackets(), n.TotalEjectedPackets(), n.InFlightFlits())
	}
}
