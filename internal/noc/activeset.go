package noc

// The active set makes one simulated cycle cost proportional to
// activity instead of mesh size: Step sweeps only the units whose
// per-cycle phases can have an effect. Membership is tracked in plain
// bitmasks indexed by NodeID; each Step phase iterates the snapshot's
// set bits directly (TrailingZeros64, clearing the lowest bit) in
// ascending id order, so iteration is deterministic by construction (no
// map ranges anywhere near the simulation state) and needs no decoded
// id list.
//
// The protocol has three rules:
//
//  1. A unit is woken (bit set in the live mask) by every event it must
//     observe: a flit or credit launched toward it, a power mask or
//     Down_Up feedback value that differs from what its link already
//     carries, or a packet injection. Wakes during cycle t take effect
//     at t+1 — Step iterates a snapshot taken at the top of the cycle —
//     matching the one-cycle link delays of the modelled hardware.
//  2. An active unit clears its own bit at the end of a cycle when
//     every one of its phases is provably a no-op for every future
//     cycle until an external event arrives (Router.quiescent,
//     NI.quiescent, OutputUnit.quiescent).
//  3. Anything a sleeping unit would have recomputed identically every
//     cycle is either elided because it is a no-op (control-link ticks
//     with cur == next, policy re-runs that resend the same mask) or
//     deferred and batched (NBTI span accounting, sensor sampling at
//     due cycles).

// newFullMask returns a mask of the given word count with bits
// 0..nodes-1 set.
func newFullMask(nodes, words int) []uint64 {
	m := make([]uint64, words)
	for id := 0; id < nodes; id++ {
		m[id>>6] |= 1 << uint(id&63)
	}
	return m
}

// routerWaker returns the wake hook for router id.
func (n *Network) routerWaker(id int) func() {
	word, bit := &n.rtrMask, uint64(1)<<uint(id&63)
	idx := id >> 6
	return func() { (*word)[idx] |= bit }
}

// niWaker returns the wake hook for NI id.
func (n *Network) niWaker(id int) func() {
	word, bit := &n.niMask, uint64(1)<<uint(id&63)
	idx := id >> 6
	return func() { (*word)[idx] |= bit }
}

// wakeNI puts NI id back on the active set.
func (n *Network) wakeNI(id NodeID) {
	n.niMask[int(id)>>6] |= 1 << uint(int(id)&63)
}

// maskHas reports whether bit id is set.
func maskHas(mask []uint64, id int) bool {
	return mask[id>>6]&(1<<uint(id&63)) != 0
}

// debugCheckSkipped asserts (under -tags nbtidebug) that every unit the
// just-finished Step skipped — not on the cycle's snapshot and not
// woken during the cycle — is quiescent, i.e. its skipped phases would
// all have been no-ops. A violation means a wake hook is missing.
func (n *Network) debugCheckSkipped() {
	for id := range n.routers {
		if maskHas(n.rtrSnap, id) || maskHas(n.rtrMask, id) {
			continue
		}
		if !n.routers[id].quiescent() {
			panic("noc: skipped router is not quiescent (missing wake)")
		}
	}
	for id := range n.nis {
		if maskHas(n.niSnap, id) || maskHas(n.niMask, id) {
			continue
		}
		if !n.nis[id].quiescent() {
			panic("noc: skipped NI is not quiescent (missing wake)")
		}
	}
}
