package noc

import "testing"

// TestPipelineTiming pins the cycle-by-cycle schedule of a single
// packet through the 3-stage pipeline, guarding against accidental
// changes to the router's timing model:
//
//	NI VA at cycle a      (injection-side allocation)
//	NI send at a+1        (flit on NI→router link)
//	router BW at a+2      (1-cycle link)
//	router VA+SA at a+3
//	router ST at a+4      (flit on router→router or router→NI link)
//	next-hop BW at a+5    ...
func TestPipelineTiming(t *testing.T) {
	cfg := testConfig(2, 1, 2) // 1x2 mesh: node 0 -> node 1, one hop
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(0, 1, 0, 1); err != nil { // single-flit packet
		t.Fatal(err)
	}
	// Find the cycle the head flit lands in router 0's Local input port,
	// then the cycle it lands in router 1's West input port, then
	// ejection completion.
	var bwLocal, bwWest, done uint64
	r0, r1 := n.Router(0), n.Router(1)
	for c := 0; c < 60; c++ {
		n.Step()
		if bwLocal == 0 && r0.Input(Local).bufferedFlits() > 0 {
			bwLocal = n.Cycle()
		}
		if bwWest == 0 && r1.Input(West).bufferedFlits() > 0 {
			bwWest = n.Cycle()
		}
		if done == 0 && n.TotalEjectedPackets() == 1 {
			done = n.Cycle()
		}
	}
	if bwLocal == 0 || bwWest == 0 || done == 0 {
		t.Fatalf("packet did not complete: bwLocal=%d bwWest=%d done=%d",
			bwLocal, bwWest, done)
	}
	// NI VA at cycle 1 (first Step), send at 2, BW at 3.
	if bwLocal != 3 {
		t.Errorf("local BW at cycle %d, want 3", bwLocal)
	}
	// Router 0: VA+SA at bwLocal+1, ST at bwLocal+2, link 1 cycle ->
	// BW at bwLocal+3.
	if want := bwLocal + 3; bwWest != want {
		t.Errorf("west BW at cycle %d, want %d", bwWest, want)
	}
	// Router 1 ejects via its Local output: VA+SA at bwWest+1, ST at
	// bwWest+2, link -> NI ejection BW at bwWest+3, drain at bwWest+4.
	if want := bwWest + 4; done != want {
		t.Errorf("ejection at cycle %d, want %d", done, want)
	}
}

// TestBackToBackFlits verifies full pipelining: the flits of one packet
// leave the router on consecutive cycles (1 flit/cycle per link).
func TestBackToBackFlits(t *testing.T) {
	cfg := testConfig(2, 1, 2)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(0, 1, 0, 4); err != nil {
		t.Fatal(err)
	}
	iu := n.Router(1).Input(West)
	var arrivals []uint64
	seen := 0
	for c := 0; c < 80 && seen < 4; c++ {
		before := int(iu.Writes())
		n.Step()
		if int(iu.Writes()) > before {
			for i := 0; i < int(iu.Writes())-before; i++ {
				arrivals = append(arrivals, n.Cycle())
			}
			seen = int(iu.Writes())
		}
	}
	if len(arrivals) != 4 {
		t.Fatalf("saw %d arrivals", len(arrivals))
	}
	for i := 1; i < 4; i++ {
		if arrivals[i] != arrivals[i-1]+1 {
			t.Errorf("flit %d arrived at %d, want %d (back-to-back)",
				i, arrivals[i], arrivals[i-1]+1)
		}
	}
}

// TestPhitTimingSpacing verifies that with 2 phits per flit consecutive
// flits are spaced two cycles apart on a link.
func TestPhitTimingSpacing(t *testing.T) {
	cfg := testConfig(2, 1, 2)
	cfg.PhitsPerFlit = 2
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(0, 1, 0, 3); err != nil {
		t.Fatal(err)
	}
	iu := n.Router(1).Input(West)
	var arrivals []uint64
	for c := 0; c < 100 && len(arrivals) < 3; c++ {
		before := iu.Writes()
		n.Step()
		if iu.Writes() > before {
			arrivals = append(arrivals, n.Cycle())
		}
	}
	if len(arrivals) != 3 {
		t.Fatalf("saw %d arrivals", len(arrivals))
	}
	for i := 1; i < 3; i++ {
		if got := arrivals[i] - arrivals[i-1]; got != 2 {
			t.Errorf("flit spacing = %d cycles, want 2 (serialized link)", got)
		}
	}
}

// TestSwitchFairness checks that two input ports contending for one
// output port share its bandwidth evenly under the round-robin switch
// allocator.
func TestSwitchFairness(t *testing.T) {
	// 3x1 mesh: nodes 0 and 2 both flood node 1.
	cfg := testConfig(3, 1, 2)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4000; c++ {
		// Saturating offered load from both sides every 4 cycles.
		if c%4 == 0 {
			_ = n.Inject(0, 1, 0, 4)
			_ = n.Inject(2, 1, 0, 4)
		}
		n.Step()
	}
	st := n.NI(1).Stats()
	if st.EjectedPackets == 0 {
		t.Fatal("no deliveries")
	}
	// Count per-source deliveries via the east/west input ports of
	// router 1: flits from node 0 arrive on West, node 2 on East.
	west := n.Router(1).Input(West).Writes()
	east := n.Router(1).Input(East).Writes()
	if west == 0 || east == 0 {
		t.Fatalf("one side starved: west=%d east=%d", west, east)
	}
	ratio := float64(west) / float64(east)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair sharing: west=%d east=%d (ratio %.2f)", west, east, ratio)
	}
}

// TestEjectionBackpressure: with EjectRate 1, two flows converging on
// one destination are limited by the ejection port, and no flits are
// lost while the network backs up.
func TestEjectionBackpressure(t *testing.T) {
	cfg := testConfig(3, 1, 2)
	cfg.EjectRate = 1
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	for c := 0; c < 3000; c++ {
		if c%3 == 0 && c < 2400 {
			if n.Inject(0, 1, 0, 4) == nil {
				injected++
			}
			if n.Inject(2, 1, 0, 4) == nil {
				injected++
			}
		}
		n.Step()
	}
	if !drain(n, 30000) {
		t.Fatalf("failed to drain under ejection backpressure: %d in flight",
			n.InFlightFlits())
	}
	if got := n.TotalEjectedPackets(); got != uint64(injected) {
		t.Fatalf("ejected %d, injected %d", got, injected)
	}
	// The ejection NI can drain at most 1 flit/cycle; offered load was
	// 2 packets * 4 flits / 3 cycles ≈ 2.7 flits/cycle, so queueing must
	// have been observed (latency well above the zero-load value).
	if lat := n.NI(1).Stats().AvgLatency(); lat < 30 {
		t.Errorf("no backpressure visible: avg latency %.1f", lat)
	}
}
