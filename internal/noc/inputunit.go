package noc

import (
	"fmt"

	"nbtinoc/internal/metrics"
	"nbtinoc/internal/nbti"
	"nbtinoc/internal/rng"
	"nbtinoc/internal/sensor"
)

// vcBuffer is one virtual-channel buffer of an input unit: a flit FIFO
// plus allocation state, power state and the NBTI device model of its
// critical PMOS network.
type vcBuffer struct {
	fifo  []Flit
	head  int
	size  int
	state VCState
	// outPort is the output port computed by RC for the resident packet.
	outPort Port
	// outVC is the downstream VC allocated by this router's VA for the
	// resident packet's next hop; -1 while unallocated or not needed
	// (ejection).
	outVC int
	// powered is the buffer's supply state: false = power gated
	// (NBTI recovery).
	powered bool
	// acc is the last cycle whose stress/recovery has been charged to
	// the device tracker. Accounting is span-batched: between state
	// transitions the (powered, busy) pair is constant, so the whole
	// span [acc+1, transition cycle-1] is charged in one call at the
	// moment the state changes (and on demand at read points).
	acc uint64
	// device accumulates the buffer's NBTI stress history.
	device *nbti.Device
}

// flush charges the open accounting span up to and including cycle upTo
// with the buffer's current (powered, busy) state. Callers flush with
// upTo = cycle-1 immediately before mutating powered or the
// empty/non-empty status, so every cycle is charged with its
// end-of-cycle state exactly as the per-cycle accounting did.
func (b *vcBuffer) flush(upTo uint64) {
	if upTo <= b.acc {
		return
	}
	n := upTo - b.acc
	b.acc = upTo
	if b.powered {
		busy := uint64(0)
		if b.size > 0 {
			busy = n
		}
		b.device.Tracker.Stress(n, busy)
	} else {
		b.device.Tracker.Recover(n)
	}
}

func (b *vcBuffer) len() int    { return b.size }
func (b *vcBuffer) empty() bool { return b.size == 0 }
func (b *vcBuffer) full() bool  { return b.size == len(b.fifo) }

func (b *vcBuffer) push(f Flit) {
	if b.full() {
		panic("noc: VC buffer overflow (credit protocol violated)")
	}
	b.fifo[(b.head+b.size)%len(b.fifo)] = f
	b.size++
}

func (b *vcBuffer) peek() *Flit {
	if b.empty() {
		panic("noc: peek on empty VC buffer")
	}
	return &b.fifo[b.head]
}

func (b *vcBuffer) pop() Flit {
	f := *b.peek()
	b.head = (b.head + 1) % len(b.fifo)
	b.size--
	return f
}

// InputUnit is the set of VC buffers of one input port, downstream end
// of a channel. It receives flits and the Up_Down power commands, sends
// credits back, and hosts the NBTI sensor banks that drive the Down_Up
// link.
type InputUnit struct {
	owner NodeID
	port  Port
	cfg   *Config
	vcs   []vcBuffer
	// creditOut returns freed buffer slots to the upstream output unit.
	creditOut *Pipeline[int]
	// powerIn is the Up_Down channel carrying the desired power mask.
	powerIn *powerLink
	// mdOut is the Down_Up channel publishing the most degraded VC.
	mdOut *mdLink
	// banks are the per-vnet sensor banks (nil when sensors disabled).
	banks []*sensor.Bank
	// writes and reads count buffer write/read events (flits in/out),
	// feeding the energy model.
	writes, reads uint64
	// occupied counts VCs with at least one buffered flit; vaPending
	// counts VCs holding a routed head that still needs a downstream VC
	// (state VCActive, outVC -1); activeVCs counts VCs hosting a resident
	// packet (state VCActive, which implies occupied <= activeVCs). They
	// let the router stages and the quiescence check skip whole ports
	// without sweeping every VC.
	occupied, vaPending, activeVCs int
	// pwrDirty marks that the next applyPower call can act: the Up_Down
	// mask ticked to a new value or a VC left the active state. While
	// clear, applyPower is a provable no-op and returns immediately.
	pwrDirty bool
	// clk points at the owning network's cycle counter so read accessors
	// can flush open accounting spans transparently; nil outside a
	// network (bare unit tests flush explicitly).
	clk *uint64
	// wakeUp re-activates the upstream unit on the network active-set
	// when this unit emits something the upstream must observe (a
	// credit, a changed Down_Up value); nil outside a network.
	wakeUp func()
	// mCredits mirrors credit returns into the process metrics registry;
	// nil when instrumentation is disabled.
	mCredits *metrics.Counter
}

// newInputUnit builds an input unit with the given per-VC depth and
// initial Vth values (one per flattened VC, from process variation).
func newInputUnit(owner NodeID, port Port, cfg *Config, depth int, vth0 []float64) *InputUnit {
	total := cfg.TotalVCs()
	if len(vth0) != total {
		panic(fmt.Sprintf("noc: %d Vth0 samples for %d VCs", len(vth0), total))
	}
	iu := &InputUnit{
		owner:    owner,
		port:     port,
		cfg:      cfg,
		vcs:      make([]vcBuffer, total),
		mCredits: creditsReturnedCounter(),
	}
	for i := range iu.vcs {
		iu.vcs[i] = vcBuffer{
			fifo:    make([]Flit, depth),
			outVC:   -1,
			powered: true,
			device:  nbti.NewDevice(vth0[i], cfg.NBTI),
		}
	}
	iu.pwrDirty = true
	return iu
}

// attachSensors instantiates one sensor bank per vnet over the unit's
// devices. src may be nil for noiseless sensor configs.
func (iu *InputUnit) attachSensors(cfg sensor.Config, src sensorSeeder) error {
	iu.banks = make([]*sensor.Bank, iu.cfg.VNets)
	for vn := 0; vn < iu.cfg.VNets; vn++ {
		devs := make([]*nbti.Device, iu.cfg.VCsPerVNet)
		for i := range devs {
			devs[i] = iu.vcs[iu.cfg.vcIndex(vn, i)].device
		}
		b, err := sensor.NewBank(devs, cfg, src())
		if err != nil {
			return err
		}
		iu.banks[vn] = b
	}
	return nil
}

// Port returns the input port this unit serves.
func (iu *InputUnit) Port() Port { return iu.port }

// NumVCs returns the flattened VC count.
func (iu *InputUnit) NumVCs() int { return len(iu.vcs) }

// Device returns the NBTI device of flattened VC vc, with the open
// accounting span flushed so the tracker is current.
func (iu *InputUnit) Device(vc int) *nbti.Device {
	if iu.clk != nil {
		iu.vcs[vc].flush(*iu.clk)
	}
	return iu.vcs[vc].device
}

// Powered reports the current power state of flattened VC vc.
func (iu *InputUnit) Powered(vc int) bool { return iu.vcs[vc].powered }

// VCStateOf returns the allocation state of flattened VC vc.
func (iu *InputUnit) VCStateOf(vc int) VCState { return iu.vcs[vc].state }

// Occupancy returns the number of buffered flits in flattened VC vc.
func (iu *InputUnit) Occupancy(vc int) int { return iu.vcs[vc].len() }

// bufferWrite performs the BW stage for an arriving flit. route gives
// the output port for head flits (RC); it is ignored for body/tail.
func (iu *InputUnit) bufferWrite(f Flit, cycle uint64, route Port) {
	vc := &iu.vcs[f.VC]
	if !vc.powered {
		panic(fmt.Sprintf("noc: flit arrived at gated VC %d of node %d port %v",
			f.VC, iu.owner, iu.port))
	}
	if f.Type.IsHead() {
		if vc.state != VCIdle {
			panic(fmt.Sprintf("noc: head flit into busy VC %d of node %d port %v (packet mixing)",
				f.VC, iu.owner, iu.port))
		}
		vc.state = VCActive
		vc.outPort = route
		vc.outVC = -1
		iu.vaPending++
		iu.activeVCs++
	} else if vc.state != VCActive {
		panic("noc: body/tail flit into idle VC")
	}
	if vc.size == 0 {
		// Empty -> busy transition: close the idle-stress span.
		vc.flush(cycle - 1)
		iu.occupied++
	}
	f.Arrive = cycle
	vc.push(f)
	iu.writes++
}

// popFlit removes the head flit of vc (the ST stage of the downstream
// router or the NI ejection drain), returns it, and sends a credit back
// upstream. When the tail leaves, the VC returns to idle.
func (iu *InputUnit) popFlit(vc int, cycle uint64) Flit {
	b := &iu.vcs[vc]
	if b.size == 1 {
		// Busy -> empty transition: close the busy-stress span.
		b.flush(cycle - 1)
		iu.occupied--
	}
	f := b.pop()
	iu.reads++
	if f.Type.IsTail() {
		if b.outVC == -1 {
			// Only ejection VCs retire without a VA grant; router VCs
			// left vaPending at the grant.
			iu.vaPending--
		}
		b.state = VCIdle
		b.outVC = -1
		iu.activeVCs--
		// The VC may now be gated by the current mask.
		iu.pwrDirty = true
	}
	iu.creditOut.Send(vc)
	iu.mCredits.Inc()
	if iu.wakeUp != nil {
		iu.wakeUp()
	}
	return f
}

// headReady reports whether vc has a flit at its FIFO head that finished
// its buffer-write stage before the given cycle (the one-cycle BW stage:
// a flit arriving at cycle t can be allocated/switched at t+1).
func (iu *InputUnit) headReady(vc int, cycle uint64) bool {
	b := &iu.vcs[vc]
	return !b.empty() && b.peek().Arrive < cycle
}

// applyPower enacts this cycle's Up_Down mask. The mask is authoritative
// for idle VCs; busy VCs are always powered (and the mask, being derived
// from the upstream outVCstate, always keeps them on — asserted here).
func (iu *InputUnit) applyPower(cycle uint64) {
	if !iu.pwrDirty {
		// Neither the mask nor any VC's active state changed since the
		// last application (flit arrivals cannot change a VC's supply
		// state: they require it powered already), so every on/powered
		// pair is unchanged.
		return
	}
	iu.pwrDirty = false
	mask := iu.powerIn.Current()
	for i := range iu.vcs {
		b := &iu.vcs[i]
		on := mask&(1<<uint(i)) != 0
		if !on && (b.state != VCIdle || !b.empty()) {
			panic(fmt.Sprintf("noc: power mask gates busy VC %d of node %d port %v",
				i, iu.owner, iu.port))
		}
		on = on || b.state != VCIdle
		if on != b.powered {
			// Power transition: close the span charged under the old
			// supply state.
			b.flush(cycle - 1)
			b.powered = on
		}
	}
}

// flushNBTI closes the open accounting span of every VC up to and
// including upTo — the read-side barrier used before any tracker access.
func (iu *InputUnit) flushNBTI(upTo uint64) {
	for i := range iu.vcs {
		iu.vcs[i].flush(upTo)
	}
}

// publishMostDegraded runs the sensor banks and sends the per-vnet most
// degraded VC over the Down_Up link. A change in either comparator
// output re-activates the upstream unit so it observes the new value
// after the one-cycle link delay.
func (iu *InputUnit) publishMostDegraded(cycle uint64) {
	if iu.banks == nil {
		return
	}
	for vn, bank := range iu.banks {
		md, ld := bank.MostDegraded(cycle), bank.LeastDegraded(cycle)
		if iu.wakeUp != nil && (iu.mdOut.nextMD[vn] != md || iu.mdOut.nextLD[vn] != ld) {
			iu.wakeUp()
		}
		iu.mdOut.Send(vn, md, ld)
	}
}

// Writes returns the number of buffer-write events (flits received).
func (iu *InputUnit) Writes() uint64 { return iu.writes }

// Reads returns the number of buffer-read events (flits drained).
func (iu *InputUnit) Reads() uint64 { return iu.reads }

// bufferedFlits returns the total number of flits held across all VCs.
func (iu *InputUnit) bufferedFlits() int {
	n := 0
	for i := range iu.vcs {
		n += iu.vcs[i].len()
	}
	return n
}

// sensorSeeder supplies rng sources for sensor banks; it returns nil
// when sensors are configured noiseless.
type sensorSeeder func() *rng.Source
