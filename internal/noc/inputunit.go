package noc

import (
	"fmt"
	"math/bits"

	"nbtinoc/internal/metrics"
	"nbtinoc/internal/nbti"
	"nbtinoc/internal/rng"
	"nbtinoc/internal/sensor"
)

// vcBuffer is one virtual-channel buffer of an input unit: a flit FIFO
// plus allocation state and the NBTI device model of its critical PMOS
// network. Power state lives in the owning InputUnit's poweredMask, so
// the buffer itself stays a compact, arena-friendly record.
type vcBuffer struct {
	//nbtilint:arena
	fifo []Flit
	head int32
	size int32
	// headArrive caches fifo[head].Arrive while size > 0, so the hot
	// headReady checks of the VA/SA sweeps touch only this record
	// instead of dereferencing the FIFO slot every cycle.
	headArrive uint64
	// outVC is the downstream VC allocated by this router's VA for the
	// resident packet's next hop; -1 while unallocated or not needed
	// (ejection).
	outVC int32
	state VCState
	// outPort is the output port computed by RC for the resident packet.
	outPort Port
	// acc is the last cycle whose stress/recovery has been charged to
	// the device tracker. Accounting is span-batched: between state
	// transitions the (powered, busy) pair is constant, so the whole
	// span [acc+1, transition cycle-1] is charged in one call at the
	// moment the state changes (and on demand at read points).
	acc uint64
	// device accumulates the buffer's NBTI stress history. It points
	// into the network's flat device arena (or a private slice for
	// standalone units).
	device *nbti.Device
}

func (b *vcBuffer) len() int    { return int(b.size) }
func (b *vcBuffer) empty() bool { return b.size == 0 }
func (b *vcBuffer) full() bool  { return int(b.size) == len(b.fifo) }

func (b *vcBuffer) push(f *Flit) {
	if b.full() {
		panic("noc: VC buffer overflow (credit protocol violated)")
	}
	idx := b.head + b.size
	if int(idx) >= len(b.fifo) {
		idx -= int32(len(b.fifo))
	}
	b.fifo[idx] = *f
	b.size++
}

func (b *vcBuffer) peek() *Flit {
	if b.empty() {
		panic("noc: peek on empty VC buffer")
	}
	return &b.fifo[b.head]
}

// pop returns a pointer to the departing head flit. The pointed-to slot
// stays valid until the next push wraps onto it, which cannot happen
// before the caller consumes the flit within the same cycle phase.
func (b *vcBuffer) pop() *Flit {
	f := b.peek()
	b.head++
	if int(b.head) == len(b.fifo) {
		b.head = 0
	}
	b.size--
	return f
}

// InputUnit is the set of VC buffers of one input port, downstream end
// of a channel. It receives flits and the Up_Down power commands, sends
// credits back, and hosts the NBTI sensor banks that drive the Down_Up
// link. Per-VC status is tracked in packed bitmasks (bit v = flattened
// VC v) so the router stages sweep set bits instead of scanning every
// VC.
type InputUnit struct {
	owner NodeID
	port  Port
	cfg   *Config
	//nbtilint:arena
	vcs []vcBuffer
	// flitIn is the inbound flit pipeline. The receiving end of every
	// channel is embedded in its reader so the per-cycle receive pass
	// touches only unit-resident cache lines; the upstream holds a
	// pointer (OutputUnit.flitOut).
	flitIn Pipeline[Flit]
	// power is the downstream end of the Up_Down channel carrying the
	// desired power mask; the upstream writes through powerOut.
	power powerLink
	// creditOut returns freed buffer slots to the upstream output unit
	// (points at the upstream's embedded creditIn pipeline).
	creditOut *Pipeline[int]
	// mdOut is the Down_Up channel publishing the most degraded VC
	// (points at the upstream's embedded mdIn link).
	mdOut *mdLink
	// banks are the per-vnet sensor banks (nil when sensors disabled).
	banks []*sensor.Bank
	// writes and reads count buffer write/read events (flits in/out),
	// feeding the energy model.
	writes, reads uint64
	// occMask marks VCs with at least one buffered flit; activeMask
	// marks VCs hosting a resident packet (state VCActive — a superset
	// of occMask); vaPendMask marks VCs holding a routed head that still
	// needs a downstream VC (state VCActive, outVC -1). The router
	// stages iterate the set bits, so ports contribute cost proportional
	// to their live VCs.
	occMask, activeMask, vaPendMask uint64
	// poweredMask is the buffers' supply state: a clear bit is a power
	// gated VC (NBTI recovery).
	poweredMask uint64
	// vcAll has one bit per existing VC (TotalVCs low bits).
	vcAll uint64
	// pwrDirty marks that the next applyPower call can act: the Up_Down
	// mask ticked to a new value or a VC left the active state. While
	// clear, applyPower is a provable no-op and returns immediately.
	pwrDirty bool
	// occPorts/pendPorts/actPorts point at the owning router's
	// port-summary masks (nil for NI ejection units and standalone test
	// units); portBit is this unit's bit. The unit keeps each summary
	// exact across every empty <-> non-empty transition of occMask /
	// vaPendMask / activeMask.
	occPorts, pendPorts, actPorts *uint64
	portBit                       uint64
	// ownPow points at the owning router's powPorts summary (shares
	// portBit); popFlit arms it when a tail retire leaves a pending
	// applyPower. upCred/upMD point at the UPSTREAM router's credPorts
	// and mdPorts summaries (upBit is this channel's port bit there):
	// credit and Down_Up sends arm the upstream port so its next
	// receive pass processes them. All nil when the respective consumer
	// is not a port-gated router.
	ownPow, upCred, upMD *uint64
	upBit                uint64
	// clk points at the owning network's cycle counter so read accessors
	// can flush open accounting spans transparently; nil outside a
	// network (bare unit tests flush explicitly).
	clk *uint64
	// wakeUp re-activates the upstream unit on the network active-set
	// when this unit emits something the upstream must observe (a
	// credit, a changed Down_Up value); nil outside a network.
	wakeUp func()
	// mCredits mirrors credit returns into the process metrics registry;
	// nil when instrumentation is disabled.
	mCredits *metrics.Counter
}

// initInputUnit initialises an input unit in place over caller-owned
// backing storage: vcs (TotalVCs buffers), fifo (TotalVCs*depth flits)
// and devs (TotalVCs devices), all typically subslices of the network's
// flat arenas. vth0 supplies the per-VC initial threshold voltages.
func initInputUnit(iu *InputUnit, owner NodeID, port Port, cfg *Config,
	vcs []vcBuffer, fifo []Flit, devs []nbti.Device, depth int, vth0 []float64) {
	total := cfg.TotalVCs()
	if len(vth0) != total {
		panic(fmt.Sprintf("noc: %d Vth0 samples for %d VCs", len(vth0), total))
	}
	*iu = InputUnit{
		owner:    owner,
		port:     port,
		cfg:      cfg,
		vcs:      vcs[:total:total],
		vcAll:    vcAllMask(total),
		power:    powerLink{cur: ^uint64(0), next: ^uint64(0)},
		mCredits: creditsReturnedCounter(),
	}
	iu.flitIn.slots = make([][]Flit, cfg.LinkLatency+cfg.PhitsPerFlit-1)
	for i := 0; i < total; i++ {
		devs[i].Init(vth0[i], cfg.NBTI)
		iu.vcs[i] = vcBuffer{
			fifo:   window(fifo, i, depth),
			outVC:  -1,
			device: &devs[i],
		}
	}
	iu.poweredMask = iu.vcAll
	iu.pwrDirty = true
}

// newInputUnit builds a standalone input unit (unit tests); networks
// initialise units in place over their flat arenas instead.
func newInputUnit(owner NodeID, port Port, cfg *Config, depth int, vth0 []float64) *InputUnit {
	total := cfg.TotalVCs()
	iu := &InputUnit{}
	initInputUnit(iu, owner, port, cfg,
		make([]vcBuffer, total), make([]Flit, total*depth), make([]nbti.Device, total),
		depth, vth0)
	return iu
}

// vcAllMask returns the mask with the total low bits set.
func vcAllMask(total int) uint64 {
	if total >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(total) - 1
}

// flushVC charges VC vc's open accounting span up to and including cycle
// upTo with the buffer's current (powered, busy) state. Callers flush
// with upTo = cycle-1 immediately before mutating the supply state or
// the empty/non-empty status, so every cycle is charged with its
// end-of-cycle state exactly as the per-cycle accounting did.
func (iu *InputUnit) flushVC(vc int, upTo uint64) {
	b := &iu.vcs[vc]
	if upTo <= b.acc {
		return
	}
	n := upTo - b.acc
	b.acc = upTo
	if iu.poweredMask>>uint(vc)&1 != 0 {
		busy := uint64(0)
		if b.size > 0 {
			busy = n
		}
		b.device.Tracker.Stress(n, busy)
	} else {
		b.device.Tracker.Recover(n)
	}
}

// attachSensors instantiates one sensor bank per vnet over the unit's
// devices. src may be nil for noiseless sensor configs.
func (iu *InputUnit) attachSensors(cfg sensor.Config, src sensorSeeder) error {
	iu.banks = make([]*sensor.Bank, iu.cfg.VNets)
	for vn := 0; vn < iu.cfg.VNets; vn++ {
		devs := make([]*nbti.Device, iu.cfg.VCsPerVNet)
		for i := range devs {
			devs[i] = iu.vcs[iu.cfg.vcIndex(vn, i)].device
		}
		b, err := sensor.NewBank(devs, cfg, src())
		if err != nil {
			return err
		}
		iu.banks[vn] = b
	}
	return nil
}

// Port returns the input port this unit serves.
func (iu *InputUnit) Port() Port { return iu.port }

// NumVCs returns the flattened VC count.
func (iu *InputUnit) NumVCs() int { return len(iu.vcs) }

// Device returns the NBTI device of flattened VC vc, with the open
// accounting span flushed so the tracker is current.
func (iu *InputUnit) Device(vc int) *nbti.Device {
	if iu.clk != nil {
		iu.flushVC(vc, *iu.clk)
	}
	return iu.vcs[vc].device
}

// Powered reports the current power state of flattened VC vc.
func (iu *InputUnit) Powered(vc int) bool { return iu.poweredMask>>uint(vc)&1 != 0 }

// VCStateOf returns the allocation state of flattened VC vc.
func (iu *InputUnit) VCStateOf(vc int) VCState { return iu.vcs[vc].state }

// Occupancy returns the number of buffered flits in flattened VC vc.
func (iu *InputUnit) Occupancy(vc int) int { return iu.vcs[vc].len() }

// bufferWrite performs the BW stage for an arriving flit. route gives
// the output port for head flits (RC); it is ignored for body/tail.
// The flit is read through f and copied into the buffer exactly once;
// f.Arrive is stamped in place.
func (iu *InputUnit) bufferWrite(f *Flit, cycle uint64, route Port) {
	bit := uint64(1) << uint(f.VC)
	vc := &iu.vcs[f.VC]
	if iu.poweredMask&bit == 0 {
		panic(fmt.Sprintf("noc: flit arrived at gated VC %d of node %d port %v",
			f.VC, iu.owner, iu.port))
	}
	if f.Type.IsHead() {
		if vc.state != VCIdle {
			panic(fmt.Sprintf("noc: head flit into busy VC %d of node %d port %v (packet mixing)",
				f.VC, iu.owner, iu.port))
		}
		vc.state = VCActive
		vc.outPort = route
		vc.outVC = -1
		iu.vaPendMask |= bit
		iu.activeMask |= bit
		if iu.pendPorts != nil {
			*iu.pendPorts |= iu.portBit
			*iu.actPorts |= iu.portBit
		}
	} else if vc.state != VCActive {
		panic("noc: body/tail flit into idle VC")
	}
	if vc.size == 0 {
		// Empty -> busy transition: close the idle-stress span.
		iu.flushVC(int(f.VC), cycle-1)
		iu.occMask |= bit
		if iu.occPorts != nil {
			*iu.occPorts |= iu.portBit
		}
	}
	f.Arrive = cycle
	vc.push(f)
	if vc.size == 1 {
		vc.headArrive = cycle
	}
	iu.writes++
}

// popFlit removes the head flit of vc (the ST stage of the downstream
// router or the NI ejection drain), returns it, and sends a credit back
// upstream. When the tail leaves, the VC returns to idle. The returned
// pointer aliases the FIFO slot and stays valid until the buffer is
// pushed again.
func (iu *InputUnit) popFlit(vc int, cycle uint64) *Flit {
	bit := uint64(1) << uint(vc)
	b := &iu.vcs[vc]
	if b.size == 1 {
		// Busy -> empty transition: close the busy-stress span.
		iu.flushVC(vc, cycle-1)
		iu.occMask &^= bit
		if iu.occMask == 0 && iu.occPorts != nil {
			*iu.occPorts &^= iu.portBit
		}
	}
	f := b.pop()
	if b.size > 0 {
		b.headArrive = b.fifo[b.head].Arrive
	}
	iu.reads++
	if f.Type.IsTail() {
		if b.outVC == -1 {
			// Only ejection VCs retire without a VA grant; router VCs
			// left vaPending at the grant.
			iu.vaPendMask &^= bit
			if iu.vaPendMask == 0 && iu.pendPorts != nil {
				*iu.pendPorts &^= iu.portBit
			}
		}
		b.state = VCIdle
		b.outVC = -1
		iu.activeMask &^= bit
		// The VC may now be gated by the current mask.
		iu.pwrDirty = true
		if iu.ownPow != nil {
			*iu.ownPow |= iu.portBit
			if iu.activeMask == 0 {
				*iu.actPorts &^= iu.portBit
			}
		}
	}
	iu.creditOut.Send(vc)
	if iu.upCred != nil {
		*iu.upCred |= iu.upBit
	}
	iu.mCredits.Inc()
	if iu.wakeUp != nil {
		iu.wakeUp()
	}
	return f
}

// headReady reports whether vc has a flit at its FIFO head that finished
// its buffer-write stage before the given cycle (the one-cycle BW stage:
// a flit arriving at cycle t can be allocated/switched at t+1).
func (iu *InputUnit) headReady(vc int, cycle uint64) bool {
	b := &iu.vcs[vc]
	return b.size > 0 && b.headArrive < cycle
}

// applyPower enacts this cycle's Up_Down mask. The mask is authoritative
// for idle VCs; busy VCs are always powered (and the mask, being derived
// from the upstream outVCstate, always keeps them on — asserted here).
// The whole update is three mask operations plus one span flush per
// supply transition.
func (iu *InputUnit) applyPower(cycle uint64) {
	if !iu.pwrDirty {
		// Neither the mask nor any VC's active state changed since the
		// last application (flit arrivals cannot change a VC's supply
		// state: they require it powered already), so every on/powered
		// pair is unchanged.
		return
	}
	iu.pwrDirty = false
	mask := iu.power.Current() & iu.vcAll
	busy := iu.activeMask | iu.occMask
	if bad := busy &^ mask; bad != 0 {
		panic(fmt.Sprintf("noc: power mask gates busy VC %d of node %d port %v",
			bits.TrailingZeros64(bad), iu.owner, iu.port))
	}
	on := mask | busy
	// Flush transitioning VCs (ascending, as the per-VC sweep did) under
	// their pre-transition supply state, then commit the new mask.
	for diff := on ^ iu.poweredMask; diff != 0; diff &= diff - 1 {
		iu.flushVC(bits.TrailingZeros64(diff), cycle-1)
	}
	iu.poweredMask = on
}

// flushNBTI closes the open accounting span of every VC up to and
// including upTo — the read-side barrier used before any tracker access.
func (iu *InputUnit) flushNBTI(upTo uint64) {
	for i := range iu.vcs {
		iu.flushVC(i, upTo)
	}
}

// publishMostDegraded runs the sensor banks and sends the per-vnet most
// degraded VC over the Down_Up link. A change in either comparator
// output re-activates the upstream unit so it observes the new value
// after the one-cycle link delay.
func (iu *InputUnit) publishMostDegraded(cycle uint64) {
	if iu.banks == nil {
		return
	}
	for vn, bank := range iu.banks {
		md, ld := bank.MostDegraded(cycle), bank.LeastDegraded(cycle)
		if iu.wakeUp != nil && (iu.mdOut.nextMD[vn] != md || iu.mdOut.nextLD[vn] != ld) {
			iu.wakeUp()
		}
		iu.mdOut.Send(vn, md, ld)
	}
	if iu.upMD != nil && !iu.mdOut.settled() {
		*iu.upMD |= iu.upBit
	}
}

// Writes returns the number of buffer-write events (flits received).
func (iu *InputUnit) Writes() uint64 { return iu.writes }

// Reads returns the number of buffer-read events (flits drained).
func (iu *InputUnit) Reads() uint64 { return iu.reads }

// bufferedFlits returns the total number of flits held across all VCs.
func (iu *InputUnit) bufferedFlits() int {
	n := 0
	for i := range iu.vcs {
		n += int(iu.vcs[i].size)
	}
	return n
}

// sensorSeeder supplies rng sources for sensor banks; it returns nil
// when sensors are configured noiseless.
type sensorSeeder func() *rng.Source
