//go:build !nbtidebug

package noc

// nbtiDebug gates the per-cycle active-set invariant check; the
// constant lets the compiler drop the call entirely in normal builds.
const nbtiDebug = false
