package noc

import (
	"testing"
	"testing/quick"
)

func TestPortOpposite(t *testing.T) {
	cases := map[Port]Port{North: South, South: North, East: West, West: East, Local: Local}
	for p, want := range cases {
		if got := p.Opposite(); got != want {
			t.Errorf("%v.Opposite() = %v, want %v", p, got, want)
		}
	}
}

func TestPortString(t *testing.T) {
	want := map[Port]string{Local: "L", North: "N", East: "E", South: "S", West: "W"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	const w = 4
	for n := NodeID(0); n < 16; n++ {
		c := CoordOf(n, w)
		if back := c.NodeOf(w); back != n {
			t.Errorf("node %d -> %+v -> %d", n, c, back)
		}
	}
	if c := CoordOf(5, 4); c.X != 1 || c.Y != 1 {
		t.Errorf("CoordOf(5,4) = %+v", c)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	a := NewRoundRobin(4)
	req := []bool{true, true, true, true}
	order := []int{}
	for i := 0; i < 8; i++ {
		order = append(order, a.Grant(req))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	a := NewRoundRobin(4)
	req := []bool{false, true, false, true}
	if g := a.Grant(req); g != 1 {
		t.Fatalf("first grant = %d, want 1", g)
	}
	if g := a.Grant(req); g != 3 {
		t.Fatalf("second grant = %d, want 3", g)
	}
	if g := a.Grant(req); g != 1 {
		t.Fatalf("third grant = %d, want 1", g)
	}
}

func TestRoundRobinNoRequests(t *testing.T) {
	a := NewRoundRobin(3)
	if g := a.Grant([]bool{false, false, false}); g != -1 {
		t.Fatalf("grant with no requests = %d", g)
	}
}

func TestRoundRobinPeekDoesNotAdvance(t *testing.T) {
	a := NewRoundRobin(3)
	req := []bool{true, true, true}
	if p := a.Peek(req); p != 0 {
		t.Fatalf("peek = %d", p)
	}
	if p := a.Peek(req); p != 0 {
		t.Fatalf("second peek = %d (advanced)", p)
	}
	if g := a.Grant(req); g != 0 {
		t.Fatalf("grant after peek = %d", g)
	}
}

func TestRoundRobinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	NewRoundRobin(2).Grant([]bool{true})
}

func TestQuickRoundRobinFairness(t *testing.T) {
	// Property: with all requesters always active, each is granted
	// exactly every n-th round.
	f := func(sz uint8) bool {
		n := int(sz%8) + 1
		a := NewRoundRobin(n)
		req := make([]bool, n)
		for i := range req {
			req[i] = true
		}
		counts := make([]int, n)
		for i := 0; i < 5*n; i++ {
			counts[a.Grant(req)]++
		}
		for _, c := range counts {
			if c != 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipelineLatency1(t *testing.T) {
	p := NewPipeline[int](1)
	if got := p.Receive(); len(got) != 0 {
		t.Fatalf("initial receive = %v", got)
	}
	p.Send(7)
	if got := p.Receive(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("receive after 1 cycle = %v", got)
	}
	if got := p.Receive(); len(got) != 0 {
		t.Fatalf("value delivered twice: %v", got)
	}
}

func TestPipelineLatency3(t *testing.T) {
	p := NewPipeline[int](3)
	p.Send(42)
	for i := 0; i < 2; i++ {
		if got := p.Receive(); len(got) != 0 {
			t.Fatalf("early delivery at cycle %d: %v", i+1, got)
		}
		if p.InFlight() != 1 {
			t.Fatalf("in-flight = %d at cycle %d", p.InFlight(), i+1)
		}
	}
	if got := p.Receive(); len(got) != 1 || got[0] != 42 {
		t.Fatalf("delivery at cycle 3 = %v", got)
	}
	if p.InFlight() != 0 {
		t.Fatalf("in-flight after delivery = %d", p.InFlight())
	}
}

func TestPipelineBatching(t *testing.T) {
	p := NewPipeline[int](2)
	p.Send(1)
	p.Send(2)
	p.Receive()
	p.Send(3)
	got := p.Receive()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("batch 1 = %v", got)
	}
	got = p.Receive()
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("batch 2 = %v", got)
	}
}

func TestPipelinePanicsOnZeroLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPipeline[int](0)
}

func TestPowerLinkDelay(t *testing.T) {
	l := newPowerLink()
	if l.Current() != ^uint64(0) {
		t.Fatal("power link must start all-on")
	}
	l.Send(0b1010)
	if l.Current() != ^uint64(0) {
		t.Fatal("mask applied without delay")
	}
	l.Tick()
	if l.Current() != 0b1010 {
		t.Fatalf("mask after tick = %b", l.Current())
	}
	l.Tick()
	if l.Current() != 0b1010 {
		t.Fatal("mask must hold without new Send")
	}
}

func TestMDLinkDelay(t *testing.T) {
	l := newMDLink(2)
	if l.Current(0) != 0 || l.Current(1) != 0 {
		t.Fatal("md link must start at VC 0")
	}
	l.Send(0, 3, 1)
	l.Send(1, 1, 0)
	if l.Current(0) != 0 || l.CurrentLD(0) != 0 {
		t.Fatal("md applied without delay")
	}
	l.Tick()
	if l.Current(0) != 3 || l.Current(1) != 1 {
		t.Fatalf("md after tick = %d/%d", l.Current(0), l.Current(1))
	}
	if l.CurrentLD(0) != 1 || l.CurrentLD(1) != 0 {
		t.Fatalf("ld after tick = %d/%d", l.CurrentLD(0), l.CurrentLD(1))
	}
}

func TestFlitExpansion(t *testing.T) {
	p := Packet{ID: 9, Src: 1, Dst: 2, VNet: 0, Len: 4, InjectCycle: 100}
	flits := p.Flits()
	if len(flits) != 4 {
		t.Fatalf("len = %d", len(flits))
	}
	wantTypes := []FlitType{HeadFlit, BodyFlit, BodyFlit, TailFlit}
	for i, f := range flits {
		if f.Type != wantTypes[i] {
			t.Errorf("flit %d type = %v, want %v", i, f.Type, wantTypes[i])
		}
		if int(f.Seq) != i || f.Len != 4 || f.PacketID != 9 || f.InjectCycle != 100 {
			t.Errorf("flit %d metadata wrong: %+v", i, f)
		}
	}
}

func TestSingleFlitPacket(t *testing.T) {
	flits := Packet{Len: 1}.Flits()
	if len(flits) != 1 || flits[0].Type != HeadTailFlit {
		t.Fatalf("single-flit expansion = %+v", flits)
	}
	if !flits[0].Type.IsHead() || !flits[0].Type.IsTail() {
		t.Fatal("head-tail flit must be both head and tail")
	}
}

func TestRoutingXY(t *testing.T) {
	cases := []struct {
		cur, dst Coord
		want     Port
	}{
		{Coord{0, 0}, Coord{0, 0}, Local},
		{Coord{0, 0}, Coord{2, 0}, East},
		{Coord{2, 0}, Coord{0, 0}, West},
		{Coord{0, 0}, Coord{0, 2}, South},
		{Coord{0, 2}, Coord{0, 0}, North},
		{Coord{0, 0}, Coord{2, 2}, East}, // X first
		{Coord{2, 0}, Coord{2, 2}, South},
	}
	for _, c := range cases {
		if got := RouteXY.Route(c.cur, c.dst); got != c.want {
			t.Errorf("XY %v->%v = %v, want %v", c.cur, c.dst, got, c.want)
		}
	}
}

func TestRoutingYX(t *testing.T) {
	if got := RouteYX.Route(Coord{0, 0}, Coord{2, 2}); got != South {
		t.Errorf("YX routes %v first, want South", got)
	}
	if got := RouteYX.Route(Coord{0, 2}, Coord{2, 2}); got != East {
		t.Errorf("YX same-row = %v, want East", got)
	}
}

func TestRoutingWestFirst(t *testing.T) {
	if got := RouteWestFirst.Route(Coord{2, 0}, Coord{0, 2}); got != West {
		t.Errorf("west-first must go West first, got %v", got)
	}
	if got := RouteWestFirst.Route(Coord{0, 0}, Coord{2, 2}); got != East {
		t.Errorf("west-first with no west hops = %v, want East", got)
	}
}

func TestParseRouting(t *testing.T) {
	for _, name := range []string{"xy", "yx", "west-first"} {
		a, err := ParseRouting(name)
		if err != nil {
			t.Fatalf("ParseRouting(%q): %v", name, err)
		}
		if a.String() != name {
			t.Errorf("round trip %q -> %q", name, a.String())
		}
	}
	if _, err := ParseRouting("zigzag"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// Property: every XY route converges — following Route from any source
// reaches the destination in at most X-distance + Y-distance hops.
func TestQuickXYConverges(t *testing.T) {
	f := func(sx, sy, dx, dy uint8) bool {
		const w, h = 8, 8
		cur := Coord{int(sx % w), int(sy % h)}
		dst := Coord{int(dx % w), int(dy % h)}
		budget := abs(cur.X-dst.X) + abs(cur.Y-dst.Y)
		for i := 0; i <= budget; i++ {
			p := RouteXY.Route(cur, dst)
			if p == Local {
				return cur == dst
			}
			switch p {
			case North:
				cur.Y--
			case South:
				cur.Y++
			case East:
				cur.X++
			case West:
				cur.X--
			}
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: a pipeline of any latency delivers every value exactly once,
// in FIFO order, exactly latency receives after its send.
func TestQuickPipelineDelivery(t *testing.T) {
	f := func(latRaw uint8, sends []uint8) bool {
		lat := int(latRaw%5) + 1
		p := NewPipeline[int](lat)
		type sent struct{ value, cycle int }
		var pending []sent
		var delivered []sent
		cycle := 0
		step := func(doSend bool, v int) {
			for _, got := range p.Receive() {
				delivered = append(delivered, sent{got, cycle})
			}
			if doSend {
				pending = append(pending, sent{v, cycle})
				p.Send(v)
			}
			cycle++
		}
		for i, s := range sends {
			step(s%2 == 0, i)
		}
		for i := 0; i < lat+1; i++ {
			step(false, 0)
		}
		if len(delivered) != len(pending) {
			return false
		}
		for i := range pending {
			if delivered[i].value != pending[i].value {
				return false
			}
			if delivered[i].cycle != pending[i].cycle+lat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
