package noc

import "fmt"

// VCAging is the serialisable aging record of one router input VC
// buffer.
type VCAging struct {
	Node     int     `json:"node"`
	Port     string  `json:"port"`
	VC       int     `json:"vc"`
	Vth0     float64 `json:"vth0"`
	Stress   uint64  `json:"stress_cycles"`
	Recovery uint64  `json:"recovery_cycles"`
	Busy     uint64  `json:"busy_cycles"`
}

// AgingState is a checkpoint of the whole network's buffer aging,
// enabling multi-epoch campaigns: simulate a window under one policy or
// workload, snapshot, rebuild (or re-seed) the network, restore, and
// continue accumulating — the composition rule is the time-weighted
// duty-cycle of nbti.History.
type AgingState struct {
	Cycle uint64    `json:"cycle"`
	VCs   []VCAging `json:"vcs"`
}

// portFromName inverts Port.String for snapshot restoration.
func portFromName(s string) (Port, error) {
	for p := Port(0); p < NumPorts; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("noc: unknown port name %q", s)
}

// AgingSnapshot captures the stress history and initial Vth of every
// router input VC buffer.
func (n *Network) AgingSnapshot() AgingState {
	n.flushNBTI()
	st := AgingState{Cycle: n.cycle}
	for i := range n.routers {
		r := &n.routers[i]
		for p := Port(0); p < NumPorts; p++ {
			iu := r.in[p]
			if iu == nil {
				continue
			}
			for vc := range iu.vcs {
				d := iu.vcs[vc].device
				st.VCs = append(st.VCs, VCAging{
					Node:     int(r.id),
					Port:     p.String(),
					VC:       vc,
					Vth0:     d.Vth0,
					Stress:   d.Tracker.StressCycles(),
					Recovery: d.Tracker.RecoveryCycles(),
					Busy:     d.Tracker.BusyCycles(),
				})
			}
		}
	}
	return st
}

// RestoreAging loads a snapshot into the network's devices. The
// snapshot must address existing buffers; Vth0 values are restored too,
// so a snapshot carries its silicon with it (overriding the PV draw).
func (n *Network) RestoreAging(st AgingState) error {
	n.flushNBTI()
	for _, rec := range st.VCs {
		if rec.Node < 0 || rec.Node >= len(n.routers) {
			return fmt.Errorf("noc: snapshot node %d out of range", rec.Node)
		}
		p, err := portFromName(rec.Port)
		if err != nil {
			return err
		}
		iu := n.routers[rec.Node].in[p]
		if iu == nil {
			return fmt.Errorf("noc: snapshot addresses missing port %s of node %d",
				rec.Port, rec.Node)
		}
		if rec.VC < 0 || rec.VC >= len(iu.vcs) {
			return fmt.Errorf("noc: snapshot VC %d out of range at node %d port %s",
				rec.VC, rec.Node, rec.Port)
		}
		if rec.Busy > rec.Stress {
			return fmt.Errorf("noc: snapshot busy %d > stress %d at node %d port %s vc %d",
				rec.Busy, rec.Stress, rec.Node, rec.Port, rec.VC)
		}
		d := iu.vcs[rec.VC].device
		d.Vth0 = rec.Vth0
		d.Tracker.Reset()
		d.Tracker.Stress(rec.Stress, rec.Busy)
		d.Tracker.Recover(rec.Recovery)
		iu.vcs[rec.VC].acc = n.cycle
	}
	return nil
}
