package noc

// saGrant records one switch-allocation winner, executed by the ST stage
// in the following cycle.
type saGrant struct {
	inPort  Port
	vc      int // flattened input VC
	outPort Port
	outVC   int // flattened downstream VC
}

// Router is a 3-stage pipelined virtual-channel router:
//
//	stage 1  BW/RC — arriving flits are written into their input VC;
//	               heads compute their output port
//	stage 2  VA/SA — heads obtain a downstream VC (from this router's
//	               output units, which own the downstream outVCstate);
//	               buffered flits with credits arbitrate for the crossbar
//	stage 3  ST   — winners traverse the switch onto the output links
//
// plus the pre-VA recovery stage of the paper, which runs after VA each
// cycle on every output unit.
type Router struct {
	id    NodeID
	coord Coord
	cfg   *Config
	net   *Network
	// in/out may contain nil entries for mesh-edge directions.
	in     [NumPorts]*InputUnit
	out    [NumPorts]*OutputUnit
	flitIn [NumPorts]*Pipeline[Flit]

	// vaArb arbitrates, per output port and vnet, among the flattened
	// input VCs requesting a downstream VC.
	vaArb [NumPorts][]*RoundRobin
	// saVCArb picks, per input port, which of its VCs bids for the
	// crossbar this cycle.
	saVCArb [NumPorts]*RoundRobin
	// saPortArb picks, per output port, the winning input port.
	saPortArb [NumPorts]*RoundRobin

	// grants are the SA winners executed by ST next cycle.
	grants []saGrant

	// stFlits, vaGrants and saGrants count pipeline events for the
	// energy model and reports.
	stFlits, vaGrants, saGrants uint64

	// scratch buffers (reused every cycle; never escape).
	vaCands    []vaCand
	saReq      [NumPorts][]bool
	saCand     [NumPorts]int
	saPortReq  [NumPorts][NumPorts]bool
	newTraffic [NumPorts][]bool
	// ntAny records that some newTraffic entry is set, so the per-cycle
	// clear only runs after a cycle that actually marked one.
	ntAny bool
}

// newRouter builds the router shell; input/output units are attached by
// the network wiring.
func newRouter(id NodeID, coord Coord, cfg *Config) *Router {
	r := &Router{id: id, coord: coord, cfg: cfg}
	total := cfg.TotalVCs()
	flat := int(NumPorts) * total
	for p := Port(0); p < NumPorts; p++ {
		r.vaArb[p] = make([]*RoundRobin, cfg.VNets)
		for vn := 0; vn < cfg.VNets; vn++ {
			r.vaArb[p][vn] = NewRoundRobin(flat)
		}
		r.saVCArb[p] = NewRoundRobin(total)
		r.saPortArb[p] = NewRoundRobin(int(NumPorts))
		r.saReq[p] = make([]bool, total)
		r.newTraffic[p] = make([]bool, cfg.VNets)
	}
	return r
}

// ID returns the router's node id.
func (r *Router) ID() NodeID { return r.id }

// Coord returns the router's mesh coordinate.
func (r *Router) Coord() Coord { return r.coord }

// Input returns the input unit at port p (nil on mesh edges).
func (r *Router) Input(p Port) *InputUnit { return r.in[p] }

// Output returns the output unit at port p (nil on mesh edges).
func (r *Router) Output(p Port) *OutputUnit { return r.out[p] }

// deliverFlits performs BW/RC for every flit arriving this cycle.
func (r *Router) deliverFlits(cycle uint64) {
	for p := Port(0); p < NumPorts; p++ {
		pipe := r.flitIn[p]
		if pipe == nil {
			continue
		}
		for _, f := range pipe.Receive() {
			route := Local
			if f.Type.IsHead() {
				route = r.cfg.Routing.Route(r.coord, CoordOf(f.Dst, r.cfg.Width))
			}
			r.in[p].bufferWrite(f, cycle, route)
			if r.net != nil && r.net.tracer != nil {
				r.net.trace(EvBufferWrite, r.id, p, f.VC, f)
			}
		}
	}
}

// tickLinks advances the one-cycle delay of every control link this
// router reads: the Up_Down masks of its input ports and the Down_Up
// feedback of its output ports. Each link is ticked by its reader, so a
// skipped (quiescent) reader leaves a link alone only when cur == next
// — the writer re-activates the reader whenever it sends a new value.
func (r *Router) tickLinks() {
	for p := Port(0); p < NumPorts; p++ {
		if r.in[p] != nil && r.in[p].powerIn.Tick() {
			r.in[p].pwrDirty = true
		}
		if r.out[p] != nil && r.out[p].mdIn.Tick() {
			r.out[p].polDirty = true
		}
	}
}

// creditTick advances credit processing on all output units.
func (r *Router) creditTick() {
	for p := Port(0); p < NumPorts; p++ {
		if r.out[p] != nil {
			r.out[p].creditTick()
		}
	}
}

// applyPower enacts the Up_Down masks on all input units.
func (r *Router) applyPower(cycle uint64) {
	for p := Port(0); p < NumPorts; p++ {
		if r.in[p] != nil {
			r.in[p].applyPower(cycle)
		}
	}
}

// stageST executes last cycle's switch grants: winners leave their input
// buffers, traverse the crossbar and are launched onto the output links.
func (r *Router) stageST(cycle uint64) {
	for _, g := range r.grants {
		f := r.in[g.inPort].popFlit(g.vc, cycle)
		r.out[g.outPort].sendFlit(f, g.outVC, cycle)
		r.stFlits++
		if r.net != nil {
			r.net.noteProgress()
		}
		if r.net != nil && r.net.tracer != nil {
			r.net.trace(EvSTraverse, r.id, g.outPort, g.outVC, f)
		}
	}
	r.grants = r.grants[:0]
}

// vaCand is one input VC requesting a downstream VC this cycle.
type vaCand struct {
	inP  Port
	vc   int
	outP Port
	vn   int
	flat int
}

// stageVA grants downstream VCs to packets whose head flits completed
// buffer write. One grant per (output port, vnet) per cycle; the
// candidate set is restricted to idle *powered* downstream VCs, so the
// recovery policies steer which VC a new packet lands on.
//
// Requesters are gathered in a single pass over the input VCs (almost
// always zero or one per cycle), then arbitrated per (output port, vnet)
// with the rotating-priority rule of a round-robin arbiter.
func (r *Router) stageVA(cycle uint64) {
	total := r.cfg.TotalVCs()
	r.vaCands = r.vaCands[:0]
	for inP := Port(0); inP < NumPorts; inP++ {
		iu := r.in[inP]
		if iu == nil || iu.vaPending == 0 {
			continue
		}
		for vc := range iu.vcs {
			b := &iu.vcs[vc]
			if b.state == VCActive && b.outVC == -1 && iu.headReady(vc, cycle) {
				r.vaCands = append(r.vaCands, vaCand{
					inP:  inP,
					vc:   vc,
					outP: b.outPort,
					vn:   vc / r.cfg.VCsPerVNet,
					flat: int(inP)*total + vc,
				})
			}
		}
	}
	flat := int(NumPorts) * total
	for i := 0; i < len(r.vaCands); i++ {
		c := r.vaCands[i]
		if c.flat < 0 {
			continue // already arbitrated as part of an earlier group
		}
		ou := r.out[c.outP]
		arb := r.vaArb[c.outP][c.vn]
		// Rotating-priority selection among all candidates of this
		// (output port, vnet) group; remaining group members are marked
		// consumed.
		best, bestDist := i, (c.flat-arb.next+flat)%flat
		for j := i + 1; j < len(r.vaCands); j++ {
			cj := r.vaCands[j]
			if cj.flat < 0 || cj.outP != c.outP || cj.vn != c.vn {
				continue
			}
			if d := (cj.flat - arb.next + flat) % flat; d < bestDist {
				best, bestDist = j, d
			}
		}
		for j := i; j < len(r.vaCands); j++ {
			if r.vaCands[j].flat >= 0 && r.vaCands[j].outP == c.outP && r.vaCands[j].vn == c.vn {
				if j != best {
					r.vaCands[j].flat = -1
				}
			}
		}
		w := r.vaCands[best]
		r.vaCands[best].flat = -1
		if ou == nil || !ou.hasFreeVC(w.vn) {
			continue
		}
		arb.next = (w.flat + 1) % flat
		outVC := ou.allocVC(w.vn)
		if outVC < 0 {
			panic("noc: hasFreeVC/allocVC disagree")
		}
		r.in[w.inP].vcs[w.vc].outVC = outVC
		r.in[w.inP].vaPending--
		r.vaGrants++
		if r.net != nil && r.net.tracer != nil {
			r.net.trace(EvVAGrant, r.id, w.inP, w.vc, *r.in[w.inP].vcs[w.vc].peek())
		}
	}
}

// stageSA performs separable switch allocation: each input port bids one
// ready VC; each output port grants one input port. Winners are queued
// for next cycle's ST.
func (r *Router) stageSA(cycle uint64) {
	// Input stage: pick a candidate VC per input port. Ports with no
	// buffered flit cannot bid; their stale saReq scratch is harmless
	// because the VC arbiter only reads it when the port wins, which
	// saCand = -1 rules out.
	nCand := 0
	for inP := Port(0); inP < NumPorts; inP++ {
		r.saCand[inP] = -1
		iu := r.in[inP]
		if iu == nil || iu.occupied == 0 {
			continue
		}
		req := r.saReq[inP]
		any := false
		for vc := range req {
			b := &iu.vcs[vc]
			req[vc] = b.state == VCActive && b.outVC != -1 &&
				iu.headReady(vc, cycle) && r.out[b.outPort].canSend(b.outVC, cycle+1)
			any = any || req[vc]
		}
		if any {
			r.saCand[inP] = r.saVCArb[inP].Peek(req)
			nCand++
		}
	}
	if nCand == 0 {
		return
	}
	// Output stage: grant one input port per output port. Request
	// vectors are built only for output ports that some candidate
	// targets; the grant sweep below still visits output ports in
	// ascending order, so arbitration matches the dense all-ports scan
	// exactly.
	var contested [NumPorts]bool
	for inP := Port(0); inP < NumPorts; inP++ {
		c := r.saCand[inP]
		if c < 0 {
			continue
		}
		outP := r.in[inP].vcs[c].outPort
		if !contested[outP] {
			contested[outP] = true
			for i := range r.saPortReq[outP] {
				r.saPortReq[outP][i] = false
			}
		}
		r.saPortReq[outP][inP] = true
	}
	for outP := Port(0); outP < NumPorts; outP++ {
		if !contested[outP] || r.out[outP] == nil {
			continue
		}
		winner := r.saPortArb[outP].Grant(r.saPortReq[outP][:])
		if winner < 0 {
			continue
		}
		inP := Port(winner)
		vc := r.saCand[inP]
		// Advance the winning input port's VC arbiter.
		r.saVCArb[inP].Grant(r.saReq[inP])
		r.grants = append(r.grants, saGrant{
			inPort:  inP,
			vc:      vc,
			outPort: outP,
			outVC:   r.in[inP].vcs[vc].outVC,
		})
		r.saGrants++
	}
}

// stagePolicy computes is_new_traffic per (output port, vnet) and runs
// the pre-VA recovery policy of every output unit — the paper's
// cooperative step, executed in the upstream router.
func (r *Router) stagePolicy(cycle uint64) {
	if r.ntAny {
		for p := Port(0); p < NumPorts; p++ {
			for vn := range r.newTraffic[p] {
				r.newTraffic[p][vn] = false
			}
		}
		r.ntAny = false
	}
	for inP := Port(0); inP < NumPorts; inP++ {
		iu := r.in[inP]
		if iu == nil || iu.vaPending == 0 {
			continue
		}
		for vc := range iu.vcs {
			b := &iu.vcs[vc]
			if b.state == VCActive && b.outVC == -1 {
				r.newTraffic[b.outPort][vc/r.cfg.VCsPerVNet] = true
				r.ntAny = true
			}
		}
	}
	for p := Port(0); p < NumPorts; p++ {
		if ou := r.out[p]; ou != nil && !ou.policyHolds(r.newTraffic[p]) {
			ou.runPolicy(r.newTraffic[p], cycle)
		}
	}
}

// samplePhase runs at sensor-sampling cycles: it flushes the open NBTI
// spans (so closed-loop sensors observe current duty-cycles) and lets
// every input port's sensor banks publish their comparator outputs over
// the Down_Up links. Between sampling cycles the banks hold their
// values, so the per-cycle publish of the original engine was a no-op
// and is elided entirely.
func (r *Router) samplePhase(cycle uint64) {
	for p := Port(0); p < NumPorts; p++ {
		if iu := r.in[p]; iu != nil {
			iu.flushNBTI(cycle)
			iu.publishMostDegraded(cycle)
		}
	}
}

// quiescent reports whether every per-cycle phase of this router is
// provably a no-op, so it can leave the active set: no pending switch
// grants, no flit in flight toward any input port, every input VC idle
// and empty under a settled power mask, and every output unit idle with
// a settled, steady policy.
func (r *Router) quiescent() bool {
	if len(r.grants) > 0 {
		return false
	}
	for p := Port(0); p < NumPorts; p++ {
		if iu := r.in[p]; iu != nil {
			// activeVCs == 0 implies every VC is idle and empty: a
			// buffered flit requires the active state, which only the
			// tail's departure (emptying the FIFO) clears.
			if r.flitIn[p].InFlight() > 0 || !iu.powerIn.settled() || iu.activeVCs > 0 {
				return false
			}
		}
		if ou := r.out[p]; ou != nil && !ou.quiescent() {
			return false
		}
	}
	return true
}

// CrossbarTraversals returns the number of ST events executed.
func (r *Router) CrossbarTraversals() uint64 { return r.stFlits }

// VAGrants returns the number of downstream VCs allocated by this
// router.
func (r *Router) VAGrants() uint64 { return r.vaGrants }

// SAGrants returns the number of switch allocations performed.
func (r *Router) SAGrants() uint64 { return r.saGrants }

// bufferedFlits returns the number of flits buffered in the router.
func (r *Router) bufferedFlits() int {
	n := 0
	for p := Port(0); p < NumPorts; p++ {
		if r.in[p] != nil {
			n += r.in[p].bufferedFlits()
		}
	}
	return n
}
