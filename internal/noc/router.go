package noc

import "math/bits"

// saGrant records one switch-allocation winner, executed by the ST stage
// in the following cycle.
type saGrant struct {
	inPort  Port
	vc      int // flattened input VC
	outPort Port
	outVC   int // flattened downstream VC
}

// Router is a 3-stage pipelined virtual-channel router:
//
//	stage 1  BW/RC — arriving flits are written into their input VC;
//	               heads compute their output port
//	stage 2  VA/SA — heads obtain a downstream VC (from this router's
//	               output units, which own the downstream outVCstate);
//	               buffered flits with credits arbitrate for the crossbar
//	stage 3  ST   — winners traverse the switch onto the output links
//
// plus the pre-VA recovery stage of the paper, which runs after VA each
// cycle on every output unit.
//
// The allocation stages sweep the input units' packed VC bitmasks
// (vaPendMask, activeMask, occMask) rather than scanning every VC, so
// cycle cost tracks the number of live VCs.
type Router struct {
	id    NodeID
	coord Coord
	cfg   *Config
	net   *Network
	// in/out may contain nil entries for mesh-edge directions.
	in  [NumPorts]*InputUnit
	out [NumPorts]*OutputUnit
	// coords is the network's NodeID -> Coord table, shared by every
	// router so RC is a load instead of a div/mod per head flit.
	coords []Coord
	// occPorts/pendPorts summarise the input units: bit p is set while
	// in[p] has a non-zero occMask / vaPendMask. The allocation stages
	// sweep only the set bits, so idle ports cost nothing. The input
	// units maintain the bits through their occPorts/pendPorts back
	// pointers at every empty <-> non-empty transition.
	occPorts, pendPorts uint64
	// Receive-side work summaries, one mask per cause (bit = port):
	// flits in flight (flitPorts), credits in flight (credPorts), an
	// unsettled Down_Up link (mdPorts), and an unsettled Up_Down link or
	// pending applyPower (powPorts). The writers arm the bits (upstream
	// output units through dnFlit/dnPow on flit and power sends,
	// downstream input units through upCred/upMD on credit and sensor
	// sends, local popFlit on tail retire); phaseRecv clears them once
	// the cause drains. Splitting by cause means an armed port only
	// touches the unit memory its work actually lives on — a credit in
	// flight does not drag the MD-link or power-link cache lines in.
	flitPorts, credPorts, mdPorts, powPorts uint64
	// polPorts marks output ports whose pre-VA policy run may not be
	// elidable on a quiet cycle: the last run left the unit unsettled, a
	// decision input changed since (polDirty — armed by allocVC, the
	// creditTick retire, and the Down_Up tick), or the last executed run
	// saw traffic. A cleared bit proves policyHolds(0) for that port, so
	// stagePolicy sweeps only polPorts plus the ports with traffic now.
	polPorts uint64
	// busyIn/busyOut summarise residency: bit p is set while in[p] has a
	// non-empty activeMask / out[p] a non-empty actMask, maintained by
	// the units at every empty <-> non-empty transition. Together with
	// the receive and policy summaries they make the quiescence check a
	// handful of mask reads instead of a per-port unit walk.
	busyIn, busyOut uint64
	// steadyAll caches whether every output unit's policy set declares
	// SteadyWhenIdle (a static property fixed at wiring time).
	steadyAll bool

	// vaArb arbitrates, per output port and vnet, among the flattened
	// input VCs requesting a downstream VC.
	vaArb [NumPorts][]RoundRobin
	// saVCArb picks, per input port, which of its VCs bids for the
	// crossbar this cycle.
	saVCArb [NumPorts]RoundRobin
	// saPortArb picks, per output port, the winning input port.
	saPortArb [NumPorts]RoundRobin

	// grants are the SA winners executed by ST next cycle.
	grants []saGrant

	// stFlits, vaGrants and saGrants count pipeline events for the
	// energy model and reports.
	stFlits, vaGrants, saGrants uint64

	// scratch buffers (reused every cycle; never escape).
	vaCands []vaCand
	// saReq holds, per input port, the packed mask of VCs bidding for
	// the crossbar this cycle.
	saReq  [NumPorts]uint64
	saCand [NumPorts]int
}

// initRouter initialises the router shell in place; input/output units
// are attached by the network wiring.
func initRouter(r *Router, id NodeID, coord Coord, cfg *Config) {
	*r = Router{id: id, coord: coord, cfg: cfg}
	total := cfg.TotalVCs()
	flat := int(NumPorts) * total
	for p := Port(0); p < NumPorts; p++ {
		r.vaArb[p] = make([]RoundRobin, cfg.VNets)
		for vn := 0; vn < cfg.VNets; vn++ {
			r.vaArb[p][vn] = RoundRobin{n: flat}
		}
		r.saVCArb[p] = RoundRobin{n: total}
		r.saPortArb[p] = RoundRobin{n: int(NumPorts)}
	}
}

// ID returns the router's node id.
func (r *Router) ID() NodeID { return r.id }

// Coord returns the router's mesh coordinate.
func (r *Router) Coord() Coord { return r.coord }

// Input returns the input unit at port p (nil on mesh edges).
func (r *Router) Input(p Port) *InputUnit { return r.in[p] }

// Output returns the output unit at port p (nil on mesh edges).
func (r *Router) Output(p Port) *OutputUnit { return r.out[p] }

// phaseRecv is the receive half of a cycle for this router, fused into
// one sweep per port: it ticks the control links the router reads (the
// Up_Down masks of its input ports, the Down_Up feedback of its output
// ports — each link is ticked by its reader, so a skipped quiescent
// reader leaves a link alone only when cur == next), consumes returned
// credits, performs BW/RC for arriving flits and enacts the power
// masks. The pass only receives from channels — it never sends — so the
// engine may run every unit's receive pass, in any order, before any
// unit's compute pass without reordering link traffic.
func (r *Router) phaseRecv(cycle uint64) {
	// One loop per cause, each sweeping only its armed ports, so the pass
	// touches exactly the unit memory a sender armed and same-type work
	// (all Down_Up ticks, all credit drains, ...) shares its code path and
	// cache lines. Different ports' units belong to disjoint channels, so
	// only the per-port orderings of the dense pass matter and both are
	// preserved: the Up_Down tick and the buffer writes of a port precede
	// its applyPower. The one-entry control links settle on Tick (their
	// bits clear unconditionally); the multi-cycle flit/credit pipelines
	// keep their bit until empty.
	for pm := r.mdPorts; pm != 0; pm &= pm - 1 {
		p := Port(bits.TrailingZeros64(pm))
		if ou := r.out[p]; ou != nil && ou.mdIn.Tick() {
			ou.polDirty = true
			r.polPorts |= 1 << uint(p)
		}
	}
	r.mdPorts = 0
	for pm := r.credPorts; pm != 0; pm &= pm - 1 {
		p := Port(bits.TrailingZeros64(pm))
		ou := r.out[p]
		if ou.creditIn.n != 0 {
			ou.creditTick()
		}
		if ou.creditIn.n == 0 {
			r.credPorts &^= 1 << uint(p)
		}
	}
	for pm := r.flitPorts; pm != 0; pm &= pm - 1 {
		p := Port(bits.TrailingZeros64(pm))
		iu := r.in[p]
		flits := iu.flitIn.Receive()
		for i := range flits {
			f := &flits[i]
			route := Local
			if f.Type.IsHead() {
				route = r.cfg.Routing.Route(r.coord, r.coords[f.Dst])
			}
			iu.bufferWrite(f, cycle, route)
			if r.net != nil && r.net.tracer != nil {
				r.net.trace(EvBufferWrite, r.id, p, int(f.VC), *f)
			}
		}
		if iu.flitIn.n == 0 {
			r.flitPorts &^= 1 << uint(p)
		}
	}
	for pm := r.powPorts; pm != 0; pm &= pm - 1 {
		p := Port(bits.TrailingZeros64(pm))
		iu := r.in[p]
		if iu.power.Tick() {
			iu.pwrDirty = true
		}
		iu.applyPower(cycle)
	}
	r.powPorts = 0
}

// phaseCompute is the send half of a cycle: ST executes last cycle's
// switch grants, VA/SA compute this cycle's allocations, and the pre-VA
// recovery policies publish next cycle's power commands. Everything it
// pushes into a channel is delivered by a receive pass at least one
// cycle later.
func (r *Router) phaseCompute(cycle uint64) {
	r.stageST(cycle)
	r.stageVA(cycle)
	r.stageSA(cycle)
	r.stagePolicy(cycle)
}

// stageST executes last cycle's switch grants: winners leave their input
// buffers, traverse the crossbar and are launched onto the output links.
func (r *Router) stageST(cycle uint64) {
	for _, g := range r.grants {
		f := r.in[g.inPort].popFlit(g.vc, cycle)
		r.out[g.outPort].sendFlit(f, g.outVC, cycle)
		r.stFlits++
		if r.net != nil {
			r.net.noteProgress()
		}
		if r.net != nil && r.net.tracer != nil {
			r.net.trace(EvSTraverse, r.id, g.outPort, g.outVC, *f)
		}
	}
	r.grants = r.grants[:0]
}

// vaCand is one input VC requesting a downstream VC this cycle.
type vaCand struct {
	inP  Port
	vc   int
	outP Port
	vn   int
	flat int
}

// stageVA grants downstream VCs to packets whose head flits completed
// buffer write. One grant per (output port, vnet) per cycle; the
// candidate set is restricted to idle *powered* downstream VCs, so the
// recovery policies steer which VC a new packet lands on.
//
// Requesters are gathered by sweeping each input port's vaPendMask
// (almost always zero or one bit), then arbitrated per (output port,
// vnet) with the rotating-priority rule of a round-robin arbiter.
func (r *Router) stageVA(cycle uint64) {
	if r.pendPorts == 0 {
		return
	}
	total := r.cfg.TotalVCs()
	r.vaCands = r.vaCands[:0]
	for pm := r.pendPorts; pm != 0; pm &= pm - 1 {
		inP := Port(bits.TrailingZeros64(pm))
		iu := r.in[inP]
		// A VA request needs a ready head flit, so VCs with an empty
		// buffer (head not yet arrived) cannot bid.
		for m := iu.vaPendMask & iu.occMask; m != 0; m &= m - 1 {
			vc := bits.TrailingZeros64(m)
			if !iu.headReady(vc, cycle) {
				continue
			}
			r.vaCands = append(r.vaCands, vaCand{
				inP:  inP,
				vc:   vc,
				outP: iu.vcs[vc].outPort,
				vn:   vc / r.cfg.VCsPerVNet,
				flat: flatIndex(int(inP), total, vc),
			})
		}
	}
	flat := int(NumPorts) * total
	for i := 0; i < len(r.vaCands); i++ {
		c := r.vaCands[i]
		if c.flat < 0 {
			continue // already arbitrated as part of an earlier group
		}
		ou := r.out[c.outP]
		arb := &r.vaArb[c.outP][c.vn]
		// Rotating-priority selection among all candidates of this
		// (output port, vnet) group; remaining group members are marked
		// consumed.
		best, bestDist := i, (c.flat-arb.next+flat)%flat
		for j := i + 1; j < len(r.vaCands); j++ {
			cj := r.vaCands[j]
			if cj.flat < 0 || cj.outP != c.outP || cj.vn != c.vn {
				continue
			}
			if d := (cj.flat - arb.next + flat) % flat; d < bestDist {
				best, bestDist = j, d
			}
		}
		for j := i; j < len(r.vaCands); j++ {
			if r.vaCands[j].flat >= 0 && r.vaCands[j].outP == c.outP && r.vaCands[j].vn == c.vn {
				if j != best {
					r.vaCands[j].flat = -1
				}
			}
		}
		w := r.vaCands[best]
		r.vaCands[best].flat = -1
		if ou == nil || !ou.hasFreeVC(w.vn) {
			continue
		}
		arb.next = (w.flat + 1) % flat
		outVC := ou.allocVC(w.vn)
		if outVC < 0 {
			panic("noc: hasFreeVC/allocVC disagree")
		}
		iu := r.in[w.inP]
		iu.vcs[w.vc].outVC = int32(outVC)
		iu.vaPendMask &^= 1 << uint(w.vc)
		if iu.vaPendMask == 0 && iu.pendPorts != nil {
			*iu.pendPorts &^= iu.portBit
		}
		r.vaGrants++
		if r.net != nil && r.net.tracer != nil {
			r.net.trace(EvVAGrant, r.id, w.inP, w.vc, *iu.vcs[w.vc].peek())
		}
	}
}

// stageSA performs separable switch allocation: each input port bids one
// ready VC; each output port grants one input port. Winners are queued
// for next cycle's ST.
func (r *Router) stageSA(cycle uint64) {
	// Input stage: pick a candidate VC per input port. VCs with a
	// granted downstream VC are exactly activeMask &^ vaPendMask; of
	// those, a bid needs a ready head flit and a sendable downstream VC.
	// Only ports with occupied VCs (occPorts) can field a bid.
	var candPorts uint64
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		inP := Port(bits.TrailingZeros64(pm))
		iu := r.in[inP]
		// A bid needs a buffered head flit, so restricting the sweep to
		// occupied VCs is exact and skips the common wormhole case of a
		// resident packet waiting on upstream flits.
		var req uint64
		for m := iu.activeMask &^ iu.vaPendMask & iu.occMask; m != 0; m &= m - 1 {
			vc := bits.TrailingZeros64(m)
			b := &iu.vcs[vc]
			if iu.headReady(vc, cycle) && r.out[b.outPort].canSend(int(b.outVC), cycle+1) {
				req |= 1 << uint(vc)
			}
		}
		if req != 0 {
			r.saReq[inP] = req
			r.saCand[inP] = r.saVCArb[inP].PeekMask(req)
			candPorts |= 1 << uint(inP)
		}
	}
	if candPorts == 0 {
		return
	}
	// Output stage: grant one input port per output port. Request masks
	// (bit = input port) are built only for output ports that some
	// candidate targets; the grant sweep below still visits output ports
	// in ascending order, so arbitration matches the dense all-ports
	// scan exactly. saReq/saCand entries are only read for candPorts
	// bits, so stale values from earlier cycles are never observed.
	var portReq [NumPorts]uint64
	var outPorts uint64
	for pm := candPorts; pm != 0; pm &= pm - 1 {
		inP := Port(bits.TrailingZeros64(pm))
		outP := r.in[inP].vcs[r.saCand[inP]].outPort
		portReq[outP] |= 1 << uint(inP)
		outPorts |= 1 << uint(outP)
	}
	for pm := outPorts; pm != 0; pm &= pm - 1 {
		outP := Port(bits.TrailingZeros64(pm))
		if r.out[outP] == nil {
			continue
		}
		winner := r.saPortArb[outP].GrantMask(portReq[outP])
		if winner < 0 {
			continue
		}
		inP := Port(winner)
		vc := r.saCand[inP]
		// Advance the winning input port's VC arbiter.
		r.saVCArb[inP].GrantMask(r.saReq[inP])
		r.grants = append(r.grants, saGrant{
			inPort:  inP,
			vc:      vc,
			outPort: outP,
			outVC:   int(r.in[inP].vcs[vc].outVC),
		})
		r.saGrants++
	}
}

// stagePolicy computes is_new_traffic per (output port, vnet) and runs
// the pre-VA recovery policy of every output unit — the paper's
// cooperative step, executed in the upstream router.
func (r *Router) stagePolicy(cycle uint64) {
	// nt[p] packs is_new_traffic per vnet (bit vn) for output port p;
	// ntPorts marks the ports with any traffic bit set. Only ports with
	// pending VA requests (pendPorts) contribute.
	var nt [NumPorts]uint64
	var ntPorts uint64
	for pm := r.pendPorts; pm != 0; pm &= pm - 1 {
		iu := r.in[bits.TrailingZeros64(pm)]
		for m := iu.vaPendMask; m != 0; m &= m - 1 {
			vc := bits.TrailingZeros64(m)
			p := iu.vcs[vc].outPort
			nt[p] |= 1 << uint(vc/r.cfg.VCsPerVNet)
			ntPorts |= 1 << uint(p)
		}
	}
	// A port outside both masks proves policyHolds(0): its unit is
	// settled with no input change since the last quiet run, so the
	// elided call would re-send the identical mask into an unchanged
	// link. Ports are re-armed by the polDirty writers and by traffic.
	for pm := r.polPorts | ntPorts; pm != 0; pm &= pm - 1 {
		p := Port(bits.TrailingZeros64(pm))
		bit := uint64(1) << uint(p)
		ou := r.out[p]
		if ou == nil {
			r.polPorts &^= bit
			continue
		}
		if !ou.policyHolds(nt[p]) {
			ou.runPolicy(nt[p], cycle)
		}
		if ou.settled && !ou.polDirty && ou.lastNT == 0 && (ou.pure || ou.steady) {
			r.polPorts &^= bit
		} else {
			r.polPorts |= bit
		}
	}
}

// samplePhase runs at sensor-sampling cycles: it flushes the open NBTI
// spans (so closed-loop sensors observe current duty-cycles) and lets
// every input port's sensor banks publish their comparator outputs over
// the Down_Up links. Between sampling cycles the banks hold their
// values, so the per-cycle publish of the original engine was a no-op
// and is elided entirely.
func (r *Router) samplePhase(cycle uint64) {
	for p := Port(0); p < NumPorts; p++ {
		if iu := r.in[p]; iu != nil {
			iu.flushNBTI(cycle)
			iu.publishMostDegraded(cycle)
		}
	}
}

// quiescent reports whether every per-cycle phase of this router is
// provably a no-op, so it can leave the active set: no pending switch
// grants, no flit in flight toward any input port, every input VC idle
// and empty under a settled power mask, and every output unit idle with
// a settled, steady policy. Each conjunct is read off a summary mask —
// an unarmed receive bit proves the underlying channel drained or
// settled, a cleared polPorts bit proves the unit settled after a quiet
// run, and the busy masks prove every VC idle (activeMask == 0 implies
// empty buffers: a buffered flit requires the active state, which only
// the tail's departure clears).
func (r *Router) quiescent() bool {
	return len(r.grants) == 0 && r.steadyAll &&
		r.flitPorts|r.credPorts|r.mdPorts|r.powPorts|r.polPorts == 0 &&
		r.busyIn|r.busyOut == 0
}

// CrossbarTraversals returns the number of ST events executed.
func (r *Router) CrossbarTraversals() uint64 { return r.stFlits }

// VAGrants returns the number of downstream VCs allocated by this
// router.
func (r *Router) VAGrants() uint64 { return r.vaGrants }

// SAGrants returns the number of switch allocations performed.
func (r *Router) SAGrants() uint64 { return r.saGrants }

// bufferedFlits returns the number of flits buffered in the router.
func (r *Router) bufferedFlits() int {
	n := 0
	for p := Port(0); p < NumPorts; p++ {
		if r.in[p] != nil {
			n += r.in[p].bufferedFlits()
		}
	}
	return n
}
