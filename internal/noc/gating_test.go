package noc

import (
	"encoding/json"

	"testing"

	"nbtinoc/internal/rng"
)

// onePowered is a minimal gating policy for white-box tests: it keeps
// exactly one fixed idle VC powered when traffic waits and gates all
// idle VCs otherwise.
type onePowered struct{ keep int }

func (p *onePowered) Name() string { return "test-one-powered" }
func (p *onePowered) DesiredPower(in *PolicyInput, out []bool) {
	if !in.NewTraffic {
		return
	}
	if in.Idle[p.keep] {
		out[p.keep] = true
		return
	}
	for i := 0; i < in.NumVCs; i++ {
		if in.Idle[i] {
			out[i] = true
			return
		}
	}
}

func gatedConfig(w, h, vcs int, factory PolicyFactory) Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.VCsPerVNet = vcs
	cfg.Policy = factory
	return cfg
}

func driveUniform(t *testing.T, n *Network, rate float64, pktLen, cycles int, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	nodes := n.Nodes()
	p := rate / float64(pktLen)
	for c := 0; c < cycles; c++ {
		for node := 0; node < nodes; node++ {
			if src.Bool(p) {
				dst := src.Intn(nodes - 1)
				if dst >= node {
					dst++
				}
				if err := n.Inject(NodeID(node), NodeID(dst), 0, pktLen); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.Step()
	}
}

func TestGatingDeliversUnderFixedKeep(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, func() Policy { return &onePowered{keep: 1} })
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, n, 0.15, 4, 3000, 3)
	if !drain(n, 10000) {
		t.Fatalf("failed to drain with fixed-keep gating")
	}
	if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
		t.Fatalf("loss: %d vs %d", n.TotalInjectedPackets(), n.TotalEjectedPackets())
	}
}

func TestWakeupLatencyValidated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WakeupLatency = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative wakeup latency accepted")
	}
	cfg = DefaultConfig()
	cfg.PhitsPerFlit = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero phits accepted")
	}
}

func TestWakeupLatencyStillDelivers(t *testing.T) {
	// With a stable keep VC, a 3-cycle sleep-transistor wake-up must not
	// lose packets — allocation simply waits for the ramp.
	cfg := gatedConfig(2, 2, 2, func() Policy { return &onePowered{keep: 0} })
	cfg.WakeupLatency = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, n, 0.1, 4, 3000, 5)
	if !drain(n, 20000) {
		t.Fatalf("failed to drain with wakeup latency")
	}
	if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
		t.Fatalf("loss: %d vs %d", n.TotalInjectedPackets(), n.TotalEjectedPackets())
	}
}

func TestWakeupLatencyIncreasesLatency(t *testing.T) {
	lat := func(wake int) float64 {
		cfg := gatedConfig(2, 2, 2, func() Policy { return &onePowered{keep: 0} })
		cfg.WakeupLatency = wake
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveUniform(t, n, 0.05, 4, 6000, 7)
		drain(n, 20000)
		var sum float64
		var cnt int
		for i := 0; i < n.Nodes(); i++ {
			st := n.NI(NodeID(i)).Stats()
			if st.EjectedPackets > 0 {
				sum += st.AvgLatency()
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	l0, l8 := lat(0), lat(8)
	if !(l8 > l0) {
		t.Errorf("wakeup latency did not raise packet latency: %.2f vs %.2f", l0, l8)
	}
}

func TestPhitSerializationHalvesBandwidth(t *testing.T) {
	thr := func(phits int) float64 {
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = 2, 2
		cfg.PhitsPerFlit = phits
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Saturating offered load.
		driveUniform(t, n, 0.9, 4, 8000, 9)
		var ej uint64
		for i := 0; i < n.Nodes(); i++ {
			ej += n.NI(NodeID(i)).Stats().EjectedFlits
		}
		return float64(ej) / 8000 / float64(n.Nodes())
	}
	t1, t2 := thr(1), thr(2)
	// With 2 phits per flit the accepted throughput must drop well below
	// the 1-phit value (roughly half at saturation).
	if !(t2 < 0.75*t1) {
		t.Errorf("serialization did not cut throughput: %.3f vs %.3f", t1, t2)
	}
}

func TestPhitSerializationKeepsConservation(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, nil)
	cfg.PhitsPerFlit = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, n, 0.1, 4, 4000, 11)
	if !drain(n, 30000) {
		t.Fatal("3-phit network failed to drain")
	}
	if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
		t.Fatalf("loss: %d vs %d", n.TotalInjectedPackets(), n.TotalEjectedPackets())
	}
}

func TestEventCountsConsistency(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, nil)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, n, 0.2, 4, 4000, 13)
	drain(n, 10000)
	ev := n.Events()
	if ev.BufferWrites == 0 || ev.CrossbarTraversals == 0 || ev.LinkFlits == 0 {
		t.Fatalf("counters empty: %+v", ev)
	}
	// Every flit written into a router buffer is eventually read out.
	if ev.BufferWrites != ev.BufferReads {
		t.Errorf("writes %d != reads %d after drain", ev.BufferWrites, ev.BufferReads)
	}
	// Crossbar traversals cannot exceed link flits (NI injections also
	// use links but not the router crossbar).
	if ev.CrossbarTraversals > ev.LinkFlits {
		t.Errorf("crossbar %d > link flits %d", ev.CrossbarTraversals, ev.LinkFlits)
	}
	// SA grants equal crossbar traversals one-for-one.
	if ev.SAGrants != ev.CrossbarTraversals {
		t.Errorf("SA grants %d != ST events %d", ev.SAGrants, ev.CrossbarTraversals)
	}
	// The baseline never gates.
	if ev.GateEvents != 0 || ev.WakeEvents != 0 || ev.RecoveryCycles != 0 {
		t.Errorf("baseline shows gating: %+v", ev)
	}
}

func TestEventCountsGatingTransitions(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, func() Policy { return &onePowered{keep: 0} })
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, n, 0.1, 4, 4000, 13)
	ev := n.Events()
	if ev.GateEvents == 0 || ev.WakeEvents == 0 {
		t.Fatalf("no gating transitions recorded: %+v", ev)
	}
	if ev.RecoveryCycles == 0 {
		t.Fatal("no recovery cycles recorded")
	}
}

func TestResetEventCounters(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, nil)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, n, 0.2, 4, 1000, 15)
	n.ResetEventCounters()
	n.ResetNBTIStats()
	ev := n.Events()
	if ev.BufferWrites != 0 || ev.LinkFlits != 0 || ev.StressCycles != 0 {
		t.Errorf("counters not cleared: %+v", ev)
	}
}

func TestAgingSnapshotRoundTrip(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, func() Policy { return &onePowered{keep: 0} })
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, a, 0.1, 4, 2000, 21)
	snap := a.AgingSnapshot()
	if snap.Cycle != a.Cycle() || len(snap.VCs) == 0 {
		t.Fatalf("bad snapshot: cycle %d, %d VCs", snap.Cycle, len(snap.VCs))
	}

	// Restore into a fresh network with a different PV seed: the
	// snapshot must carry both the stress history and the silicon.
	cfg2 := cfg
	cfg2.PVSeed = 999
	b, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreAging(snap); err != nil {
		t.Fatal(err)
	}
	for _, rec := range snap.VCs {
		p, err := portFromName(rec.Port)
		if err != nil {
			t.Fatal(err)
		}
		d := b.Router(NodeID(rec.Node)).Input(p).Device(rec.VC)
		if d.Vth0 != rec.Vth0 {
			t.Fatalf("Vth0 not restored at node %d port %s vc %d", rec.Node, rec.Port, rec.VC)
		}
		if d.Tracker.StressCycles() != rec.Stress ||
			d.Tracker.RecoveryCycles() != rec.Recovery ||
			d.Tracker.BusyCycles() != rec.Busy {
			t.Fatalf("tracker not restored at node %d port %s vc %d", rec.Node, rec.Port, rec.VC)
		}
	}
}

func TestAgingSnapshotJSONStable(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, nil)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	snap := n.AgingSnapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back AgingState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycle != snap.Cycle || len(back.VCs) != len(snap.VCs) {
		t.Fatal("JSON round trip lost data")
	}
	if back.VCs[0] != snap.VCs[0] {
		t.Fatalf("record changed: %+v vs %+v", back.VCs[0], snap.VCs[0])
	}
}

func TestRestoreAgingValidation(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, nil)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := []AgingState{
		{VCs: []VCAging{{Node: 99, Port: "E", VC: 0}}},
		{VCs: []VCAging{{Node: 0, Port: "Q", VC: 0}}},
		{VCs: []VCAging{{Node: 0, Port: "N", VC: 0}}}, // node 0 has no north input
		{VCs: []VCAging{{Node: 0, Port: "E", VC: 99}}},
		{VCs: []VCAging{{Node: 0, Port: "E", VC: 0, Stress: 1, Busy: 2}}},
	}
	for i, st := range bad {
		if err := n.RestoreAging(st); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
}

func TestStallWatchdog(t *testing.T) {
	// A policy that gates everything forever starves allocation: the
	// watchdog must flag the stall while traffic is pending.
	cfg := gatedConfig(2, 2, 2, func() Policy { return gateAll{} })
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Stalled(1) {
		t.Error("empty network reported stalled")
	}
	if err := n.Inject(0, 3, 0, 4); err != nil {
		t.Fatal(err)
	}
	n.Run(500)
	if !n.Stalled(400) {
		t.Errorf("gate-all livelock not detected: stalled for %d", n.StalledFor())
	}
	// A healthy network under the same load never trips the watchdog.
	ok, err := New(gatedConfig(2, 2, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Inject(0, 3, 0, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ok.Step()
		if ok.Stalled(100) {
			t.Fatalf("healthy network stalled at cycle %d", ok.Cycle())
		}
	}
}

func TestRoutingAlgorithmsDeliverUnderTraffic(t *testing.T) {
	for _, alg := range []RoutingAlgorithm{RouteXY, RouteYX, RouteWestFirst} {
		cfg := gatedConfig(3, 3, 2, nil)
		cfg.Routing = alg
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveUniform(t, n, 0.2, 4, 3000, 17)
		if !drain(n, 20000) {
			t.Fatalf("%v: failed to drain", alg)
		}
		if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
			t.Fatalf("%v: loss %d vs %d", alg,
				n.TotalInjectedPackets(), n.TotalEjectedPackets())
		}
	}
}

func TestRoutingAlgorithmsWithGating(t *testing.T) {
	for _, alg := range []RoutingAlgorithm{RouteYX, RouteWestFirst} {
		cfg := gatedConfig(3, 3, 2, func() Policy { return &onePowered{keep: 0} })
		cfg.Routing = alg
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveUniform(t, n, 0.1, 4, 3000, 19)
		if !drain(n, 20000) {
			t.Fatalf("%v+gating: failed to drain", alg)
		}
		if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
			t.Fatalf("%v+gating: loss", alg)
		}
	}
}

// vnetSelective gates everything in vnet 0 and keeps all of vnet 1
// powered, verifying the per-vnet independence of the pre-VA stage.
type vnetSelective struct{ vnetOn *int }

func (p *vnetSelective) Name() string { return "test-vnet-selective" }
func (p *vnetSelective) DesiredPower(in *PolicyInput, out []bool) {
	// The policy cannot see which vnet it serves directly; the shared
	// toggle exploits the fixed call order (each output unit runs its
	// vnet-0 policy then its vnet-1 policy every cycle), so even calls
	// are vnet 0 (gate all) and odd calls vnet 1 (keep all idle on).
	if *p.vnetOn == 1 {
		for i := 0; i < in.NumVCs; i++ {
			out[i] = in.Idle[i]
		}
	}
	*p.vnetOn ^= 1
}

func TestPerVNetPolicyIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	cfg.VNets = 2
	cfg.VCsPerVNet = 2
	state := 0
	cfg.Policy = func() Policy { return &vnetSelective{vnetOn: &state} }
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(4)
	iu := n.Router(1).Input(West)
	// vnet 0 slice (VCs 0,1) gated; vnet 1 slice (VCs 2,3) powered.
	for vc := 0; vc < 2; vc++ {
		if iu.Powered(vc) {
			t.Errorf("vnet-0 VC %d powered", vc)
		}
	}
	for vc := 2; vc < 4; vc++ {
		if !iu.Powered(vc) {
			t.Errorf("vnet-1 VC %d gated", vc)
		}
	}
	// NBTI accounting reflects the split.
	if iu.Device(0).Tracker.RecoveryCycles() == 0 {
		t.Error("vnet-0 buffers recorded no recovery")
	}
	if iu.Device(2).Tracker.RecoveryCycles() != 0 {
		t.Error("vnet-1 buffers recorded recovery")
	}
}

func TestGateEjection(t *testing.T) {
	cfg := gatedConfig(2, 2, 2, func() Policy { return &onePowered{keep: 0} })
	cfg.GateEjection = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, n, 0.1, 4, 4000, 23)
	if !drain(n, 20000) {
		t.Fatal("failed to drain with gated ejection buffers")
	}
	if n.TotalInjectedPackets() != n.TotalEjectedPackets() {
		t.Fatalf("loss: %d vs %d", n.TotalInjectedPackets(), n.TotalEjectedPackets())
	}
	// The NI ejection buffers must have recorded recovery cycles.
	var rec uint64
	for node := NodeID(0); node < 4; node++ {
		ej := n.NI(node).Ejection()
		for vc := 0; vc < ej.NumVCs(); vc++ {
			rec += ej.Device(vc).Tracker.RecoveryCycles()
		}
	}
	if rec == 0 {
		t.Fatal("GateEjection had no effect on ejection buffers")
	}
	// Without the flag, ejection buffers never recover.
	cfg2 := gatedConfig(2, 2, 2, func() Policy { return &onePowered{keep: 0} })
	n2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	driveUniform(t, n2, 0.1, 4, 2000, 23)
	for node := NodeID(0); node < 4; node++ {
		ej := n2.NI(node).Ejection()
		for vc := 0; vc < ej.NumVCs(); vc++ {
			if ej.Device(vc).Tracker.RecoveryCycles() != 0 {
				t.Fatal("ejection buffers gated without GateEjection")
			}
		}
	}
}
