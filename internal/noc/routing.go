package noc

import "fmt"

// RoutingAlgorithm selects the output port for a packet at a router.
type RoutingAlgorithm int

const (
	// RouteXY is dimension-order routing, X first (deadlock-free on a
	// mesh; the default, as in Garnet).
	RouteXY RoutingAlgorithm = iota
	// RouteYX is dimension-order routing, Y first.
	RouteYX
	// RouteWestFirst is the west-first turn-model algorithm: any west
	// hops are taken first, after which the packet may route adaptively
	// minimal among the remaining directions; this implementation
	// breaks the remaining tie deterministically (X before Y) so runs
	// stay reproducible.
	RouteWestFirst
)

func (a RoutingAlgorithm) String() string {
	switch a {
	case RouteXY:
		return "xy"
	case RouteYX:
		return "yx"
	case RouteWestFirst:
		return "west-first"
	default:
		return fmt.Sprintf("RoutingAlgorithm(%d)", int(a))
	}
}

// ParseRouting converts a name ("xy", "yx", "west-first") to an
// algorithm.
func ParseRouting(name string) (RoutingAlgorithm, error) {
	switch name {
	case "xy":
		return RouteXY, nil
	case "yx":
		return RouteYX, nil
	case "west-first":
		return RouteWestFirst, nil
	default:
		return 0, fmt.Errorf("noc: unknown routing algorithm %q", name)
	}
}

// Route returns the output port at router cur for a packet headed to
// dst, in a width-w mesh. It returns Local when cur == dst.
func (a RoutingAlgorithm) Route(cur, dst Coord) Port {
	if cur == dst {
		return Local
	}
	switch a {
	case RouteYX:
		if cur.Y != dst.Y {
			return vertical(cur, dst)
		}
		return horizontal(cur, dst)
	case RouteWestFirst:
		if dst.X < cur.X {
			return West
		}
		// No west component remains; minimal X-then-Y.
		if cur.X != dst.X {
			return East
		}
		return vertical(cur, dst)
	default: // RouteXY
		if cur.X != dst.X {
			return horizontal(cur, dst)
		}
		return vertical(cur, dst)
	}
}

func horizontal(cur, dst Coord) Port {
	if dst.X > cur.X {
		return East
	}
	return West
}

func vertical(cur, dst Coord) Port {
	if dst.Y > cur.Y {
		return South
	}
	return North
}
