//go:build nbtidebug

package noc

// nbtiDebug enables the per-cycle active-set invariant check (build
// with -tags nbtidebug).
const nbtiDebug = true
