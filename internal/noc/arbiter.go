package noc

// RoundRobin is a rotating-priority arbiter over n requesters, matching
// the matrix/rotating arbiters used in VC and switch allocators. The
// zero value is not ready; use NewRoundRobin.
type RoundRobin struct {
	n    int
	next int // requester with highest priority this round
}

// NewRoundRobin returns an arbiter over n requesters with initial
// priority at index 0.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("noc: arbiter over non-positive requester count")
	}
	return &RoundRobin{n: n}
}

// Size returns the requester count.
func (a *RoundRobin) Size() int { return a.n }

// Grant returns the granted requester among those with req[i] == true,
// starting the search at the current priority pointer, and advances the
// pointer just past the winner (so the winner has lowest priority next
// round). It returns -1 when nothing is requested.
func (a *RoundRobin) Grant(req []bool) int {
	if len(req) != a.n {
		panic("noc: request vector length mismatch")
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if req[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	return -1
}

// Peek is like Grant but does not advance the priority pointer.
func (a *RoundRobin) Peek(req []bool) int {
	if len(req) != a.n {
		panic("noc: request vector length mismatch")
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if req[idx] {
			return idx
		}
	}
	return -1
}
