package noc

import "math/bits"

// RoundRobin is a rotating-priority arbiter over n requesters, matching
// the matrix/rotating arbiters used in VC and switch allocators. The
// zero value is not ready; use NewRoundRobin.
type RoundRobin struct {
	n    int
	next int // requester with highest priority this round
}

// NewRoundRobin returns an arbiter over n requesters with initial
// priority at index 0.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("noc: arbiter over non-positive requester count")
	}
	return &RoundRobin{n: n}
}

// Size returns the requester count.
func (a *RoundRobin) Size() int { return a.n }

// Grant returns the granted requester among those with req[i] == true,
// starting the search at the current priority pointer, and advances the
// pointer just past the winner (so the winner has lowest priority next
// round). It returns -1 when nothing is requested.
func (a *RoundRobin) Grant(req []bool) int {
	if len(req) != a.n {
		panic("noc: request vector length mismatch")
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if req[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	return -1
}

// Peek is like Grant but does not advance the priority pointer.
func (a *RoundRobin) Peek(req []bool) int {
	if len(req) != a.n {
		panic("noc: request vector length mismatch")
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if req[idx] {
			return idx
		}
	}
	return -1
}

// pickMask returns the requester the rotating priority selects from a
// packed request mask (bit i = requester i, valid only for n <= 64):
// the lowest set bit at or after the priority pointer, wrapping to the
// lowest set bit overall — identical to the modular scan of Peek.
func (a *RoundRobin) pickMask(req uint64) int {
	if hi := req >> uint(a.next); hi != 0 {
		return a.next + bits.TrailingZeros64(hi)
	}
	return bits.TrailingZeros64(req)
}

// PeekMask is Peek over a packed request mask; -1 when empty.
func (a *RoundRobin) PeekMask(req uint64) int {
	if req == 0 {
		return -1
	}
	return a.pickMask(req)
}

// GrantMask is Grant over a packed request mask; -1 when empty.
func (a *RoundRobin) GrantMask(req uint64) int {
	if req == 0 {
		return -1
	}
	idx := a.pickMask(req)
	a.next = (idx + 1) % a.n
	return idx
}
