// Package pv models within-die process variation of the initial PMOS
// threshold voltage of NoC virtual-channel buffers.
//
// Following Section IV-A of the paper, each VC buffer is represented by
// its most degraded PMOS transistor: all transistors in a buffer are
// assumed to share that worst-case initial Vth, and each buffer's value
// is an independent draw from a Gaussian distribution
// (|mean| = 0.180 V at 45 nm, σ = 0.005 V [25]). Die-to-die variation is
// taken as constant within one chip and therefore not modelled.
//
// One sample set is drawn per {architecture, traffic} scenario and shared
// by every policy evaluated on that scenario, so that the most degraded
// VC is identical across policies — the paper's consistency requirement.
package pv

import (
	"errors"
	"fmt"

	"nbtinoc/internal/rng"
)

// Distribution describes the within-die initial-Vth spread.
type Distribution struct {
	// MeanVth is the absolute average initial threshold voltage.
	MeanVth float64
	// Sigma is the standard deviation of the Gaussian draw.
	Sigma float64
	// ClampSigmas truncates draws to MeanVth ± ClampSigmas·Sigma to keep
	// pathological tail samples (negative or near-Vdd Vth) out of the
	// model; 0 disables clamping. The paper draws from an untruncated
	// Gaussian; 6σ clamping is numerically indistinguishable.
	ClampSigmas float64
}

// Default45nm returns the paper's 45 nm distribution:
// N(0.180 V, 0.005 V).
func Default45nm() Distribution {
	return Distribution{MeanVth: 0.180, Sigma: 0.005, ClampSigmas: 6}
}

// Default32nm returns the paper's 32 nm corner: N(0.160 V, 0.005 V).
func Default32nm() Distribution {
	return Distribution{MeanVth: 0.160, Sigma: 0.005, ClampSigmas: 6}
}

// Validate reports whether the distribution is usable.
func (d Distribution) Validate() error {
	switch {
	case d.MeanVth <= 0:
		return errors.New("pv: MeanVth must be positive")
	case d.Sigma < 0:
		return errors.New("pv: Sigma must be non-negative")
	case d.ClampSigmas < 0:
		return errors.New("pv: ClampSigmas must be non-negative")
	case d.ClampSigmas > 0 && d.MeanVth-d.ClampSigmas*d.Sigma <= 0:
		return fmt.Errorf("pv: clamp window [%v, %v] reaches non-positive Vth",
			d.MeanVth-d.ClampSigmas*d.Sigma, d.MeanVth+d.ClampSigmas*d.Sigma)
	}
	return nil
}

// Sample draws one initial Vth value.
func (d Distribution) Sample(src *rng.Source) float64 {
	v := src.Norm(d.MeanVth, d.Sigma)
	if d.ClampSigmas > 0 {
		lo := d.MeanVth - d.ClampSigmas*d.Sigma
		hi := d.MeanVth + d.ClampSigmas*d.Sigma
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
	}
	return v
}

// SampleN draws n initial Vth values.
func (d Distribution) SampleN(src *rng.Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(src)
	}
	return out
}

// MostDegraded returns the index of the maximum value in vths — with
// pure process variation (no accumulated stress) the buffer with the
// highest initial Vth is the most degraded one. It returns -1 for an
// empty slice; ties resolve to the lowest index, matching a hardware
// priority comparator.
func MostDegraded(vths []float64) int {
	best := -1
	bestV := 0.0
	for i, v := range vths {
		if best == -1 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// VCMap holds the sampled initial Vth for every VC buffer of every router
// input port in a network, indexed as [router][port][vc].
type VCMap struct {
	Vth [][][]float64
}

// SampleNetwork draws a full network's worth of initial Vth values for
// routers×ports×vcs buffers from a single seed, in a fixed traversal
// order so results are reproducible.
func SampleNetwork(d Distribution, seed uint64, routers, ports, vcs int) *VCMap {
	if routers < 0 || ports < 0 || vcs < 0 {
		panic("pv: negative dimension")
	}
	src := rng.New(seed)
	m := &VCMap{Vth: make([][][]float64, routers)}
	for r := range m.Vth {
		m.Vth[r] = make([][]float64, ports)
		for p := range m.Vth[r] {
			m.Vth[r][p] = d.SampleN(src, vcs)
		}
	}
	return m
}

// At returns the initial Vth for a specific buffer.
func (m *VCMap) At(router, port, vc int) float64 { return m.Vth[router][port][vc] }

// PortVths returns the slice of initial Vths for one input port.
func (m *VCMap) PortVths(router, port int) []float64 { return m.Vth[router][port] }
