package pv

import (
	"math"
	"testing"
	"testing/quick"

	"nbtinoc/internal/rng"
)

func TestDefaultsValidate(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Default32nm().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []Distribution{
		{MeanVth: 0, Sigma: 0.005},
		{MeanVth: 0.18, Sigma: -1},
		{MeanVth: 0.18, Sigma: 0.005, ClampSigmas: -2},
		{MeanVth: 0.01, Sigma: 0.005, ClampSigmas: 6}, // clamp window reaches <= 0
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, d)
		}
	}
}

func TestSampleMoments(t *testing.T) {
	d := Default45nm()
	src := rng.New(1)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := d.Sample(src)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-0.180) > 1e-4 {
		t.Errorf("mean = %v, want 0.180", mean)
	}
	if math.Abs(sd-0.005) > 2e-4 {
		t.Errorf("sd = %v, want 0.005", sd)
	}
}

func TestSampleClamped(t *testing.T) {
	d := Distribution{MeanVth: 0.18, Sigma: 0.005, ClampSigmas: 1}
	src := rng.New(2)
	for i := 0; i < 10000; i++ {
		v := d.Sample(src)
		if v < 0.175-1e-12 || v > 0.185+1e-12 {
			t.Fatalf("sample %v escaped 1σ clamp", v)
		}
	}
}

func TestSampleNLength(t *testing.T) {
	d := Default45nm()
	got := d.SampleN(rng.New(3), 7)
	if len(got) != 7 {
		t.Fatalf("SampleN(7) returned %d values", len(got))
	}
}

func TestMostDegraded(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{nil, -1},
		{[]float64{0.18}, 0},
		{[]float64{0.17, 0.19, 0.18}, 1},
		{[]float64{0.19, 0.19, 0.18}, 0}, // tie -> lowest index
		{[]float64{-1, -2}, 0},
	}
	for _, c := range cases {
		if got := MostDegraded(c.in); got != c.want {
			t.Errorf("MostDegraded(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSampleNetworkShapeAndDeterminism(t *testing.T) {
	d := Default45nm()
	a := SampleNetwork(d, 77, 4, 5, 2)
	b := SampleNetwork(d, 77, 4, 5, 2)
	if len(a.Vth) != 4 || len(a.Vth[0]) != 5 || len(a.Vth[0][0]) != 2 {
		t.Fatalf("bad shape: %dx%dx%d", len(a.Vth), len(a.Vth[0]), len(a.Vth[0][0]))
	}
	for r := 0; r < 4; r++ {
		for p := 0; p < 5; p++ {
			for v := 0; v < 2; v++ {
				if a.At(r, p, v) != b.At(r, p, v) {
					t.Fatalf("same seed diverged at %d/%d/%d", r, p, v)
				}
			}
		}
	}
	c := SampleNetwork(d, 78, 4, 5, 2)
	if a.At(0, 0, 0) == c.At(0, 0, 0) && a.At(3, 4, 1) == c.At(3, 4, 1) {
		t.Error("different seeds produced identical corner samples")
	}
}

func TestSampleNetworkPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative dimension")
		}
	}()
	SampleNetwork(Default45nm(), 1, -1, 5, 2)
}

func TestPortVths(t *testing.T) {
	m := SampleNetwork(Default45nm(), 5, 2, 3, 4)
	port := m.PortVths(1, 2)
	if len(port) != 4 {
		t.Fatalf("PortVths length = %d", len(port))
	}
	for i, v := range port {
		if v != m.At(1, 2, i) {
			t.Errorf("PortVths[%d] mismatch", i)
		}
	}
}

func TestQuickSamplesWithinClamp(t *testing.T) {
	f := func(seed uint64) bool {
		d := Default45nm()
		src := rng.New(seed)
		for i := 0; i < 100; i++ {
			v := d.Sample(src)
			if v < d.MeanVth-6*d.Sigma || v > d.MeanVth+6*d.Sigma {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMostDegradedIsArgmax(t *testing.T) {
	f := func(vals []float64) bool {
		idx := MostDegraded(vals)
		if len(vals) == 0 {
			return idx == -1
		}
		for _, v := range vals {
			if !(v <= vals[idx]) && !math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
