package power

import (
	"math"
	"testing"
	"testing/quick"

	"nbtinoc/internal/noc"
)

func sampleEvents() noc.EventCounts {
	return noc.EventCounts{
		BufferWrites:       1000,
		BufferReads:        1000,
		CrossbarTraversals: 900,
		VAGrants:           200,
		SAGrants:           900,
		LinkFlits:          1100,
		GateEvents:         50,
		WakeEvents:         50,
		StressCycles:       30_000,
		RecoveryCycles:     70_000,
	}
}

func TestDefaultsValidate(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	p := Default45nm()
	p.LinkPJ = 0
	if err := p.Validate(); err == nil {
		t.Error("zero link energy accepted")
	}
	p = Default45nm()
	p.GatedLeakFraction = 1
	if err := p.Validate(); err == nil {
		t.Error("GatedLeakFraction = 1 accepted")
	}
	p = Default45nm()
	p.GatedLeakFraction = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative GatedLeakFraction accepted")
	}
	if _, err := Estimate(p, sampleEvents(), 16, 100_000); err == nil {
		t.Error("Estimate accepted bad params")
	}
	if _, err := Estimate(Default45nm(), sampleEvents(), -1, 100_000); err == nil {
		t.Error("negative sensor count accepted")
	}
}

func TestComponentsAndTotals(t *testing.T) {
	p := Default45nm()
	r, err := Estimate(p, sampleEvents(), 16, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	wantBuffer := (1000*p.BufferWritePJ + 1000*p.BufferReadPJ) / 1000
	if math.Abs(r.BufferNJ-wantBuffer) > 1e-12 {
		t.Errorf("buffer energy = %v, want %v", r.BufferNJ, wantBuffer)
	}
	dyn := r.BufferNJ + r.CrossbarNJ + r.AllocNJ + r.LinkNJ + r.GatingNJ
	if math.Abs(r.DynamicNJ-dyn) > 1e-12 {
		t.Errorf("dynamic total inconsistent")
	}
	leak := r.LeakPoweredNJ + r.LeakGatedNJ + r.SensorLeakNJ
	if math.Abs(r.LeakageNJ-leak) > 1e-12 {
		t.Errorf("leakage total inconsistent")
	}
	if math.Abs(r.TotalNJ-(r.DynamicNJ+r.LeakageNJ)) > 1e-12 {
		t.Errorf("grand total inconsistent")
	}
}

func TestLeakageSaving(t *testing.T) {
	p := Default45nm()
	ev := sampleEvents() // 30% stress, 70% recovery
	r, err := Estimate(p, ev, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Always-on leakage over 100k buffer-cycles vs 30k full + 70k at 8%:
	// saving fraction = 0.7 * (1 - 0.08) = 64.4%.
	want := 100 * 0.7 * (1 - p.GatedLeakFraction)
	if math.Abs(r.LeakSavedPct-want) > 1e-9 {
		t.Errorf("leak saved = %.3f%%, want %.3f%%", r.LeakSavedPct, want)
	}
	if r.LeakSavedNJ <= 0 {
		t.Error("no absolute saving reported")
	}
}

func TestAlwaysOnNetworkSavesNothing(t *testing.T) {
	ev := sampleEvents()
	ev.RecoveryCycles = 0
	ev.StressCycles = 100_000
	r, err := Estimate(Default45nm(), ev, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.LeakSavedPct) > 1e-9 || math.Abs(r.LeakSavedNJ) > 1e-9 {
		t.Errorf("always-on network reports saving: %v%% / %v nJ", r.LeakSavedPct, r.LeakSavedNJ)
	}
}

func TestSensorLeakScales(t *testing.T) {
	p := Default45nm()
	r0, err := Estimate(p, sampleEvents(), 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Estimate(p, sampleEvents(), 16, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r0.SensorLeakNJ != 0 {
		t.Errorf("sensor leakage with 0 sensors = %v", r0.SensorLeakNJ)
	}
	want := 16 * 100_000 * p.SensorLeakMW * 1e6 / p.ClockHz
	if math.Abs(r16.SensorLeakNJ-want) > 1e-9 {
		t.Errorf("sensor leakage = %v, want %v", r16.SensorLeakNJ, want)
	}
}

func TestGatingTransitionsCostEnergy(t *testing.T) {
	base := sampleEvents()
	busy := base
	busy.GateEvents *= 10
	busy.WakeEvents *= 10
	rb, err := Estimate(Default45nm(), base, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	rz, err := Estimate(Default45nm(), busy, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !(rz.GatingNJ > rb.GatingNJ) {
		t.Error("more transitions did not cost more energy")
	}
}

func TestEmptyWindow(t *testing.T) {
	r, err := Estimate(Default45nm(), noc.EventCounts{}, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalNJ != 0 || r.LeakSavedPct != 0 {
		t.Errorf("empty window not zero: %+v", r)
	}
}

// Property: totals are non-negative and monotone in the event counts.
func TestQuickMonotone(t *testing.T) {
	p := Default45nm()
	f := func(w, rd, x uint16) bool {
		a := noc.EventCounts{BufferWrites: uint64(w), BufferReads: uint64(rd),
			CrossbarTraversals: uint64(x), StressCycles: 100, RecoveryCycles: 100}
		b := a
		b.BufferWrites += 10
		ra, err := Estimate(p, a, 4, 200)
		if err != nil {
			return false
		}
		rb, err := Estimate(p, b, 4, 200)
		if err != nil {
			return false
		}
		return ra.TotalNJ >= 0 && rb.TotalNJ > ra.TotalNJ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestValidateErrorDeterministic guards the fix for the map-range
// validation hazard flagged by nbtilint's detmap analyzer: with several
// fields invalid at once, the reported error must name the same field —
// the first in declaration order — on every invocation, not whichever
// key a randomized map iteration visited first.
func TestValidateErrorDeterministic(t *testing.T) {
	p := Default45nm()
	p.BufferReadPJ = 0     // second field in declaration order
	p.GateTransitionPJ = 0 // sixth
	p.ClockHz = -1         // last positive-required field
	const want = "power: BufferReadPJ must be positive"
	for i := 0; i < 100; i++ {
		err := p.Validate()
		if err == nil {
			t.Fatal("Validate accepted invalid params")
		}
		if err.Error() != want {
			t.Fatalf("invocation %d: error %q, want %q", i, err, want)
		}
	}
}
