// Package power implements an ORION-2.0-style energy model for the NoC,
// extended with the power-gating effects of the paper's NBTI recovery
// mechanism: a gated VC buffer neither burns leakage (beyond the sleep
// transistor's residual) nor ages, while each gate/wake transition costs
// switching energy in the header transistor network.
//
// The paper itself reports only area (Section III-D); this package is a
// documented extension that quantifies the *side benefit* of the NBTI
// methodology — the leakage energy saved by the very gating that buys
// the duty-cycle reduction — and the cost of the extra control traffic.
// All constants are representative 45 nm values with the same
// calibration philosophy as internal/area.
package power

import (
	"errors"
	"fmt"

	"nbtinoc/internal/noc"
)

// Params holds the 45 nm energy constants. Energies are in picojoules,
// powers in milliwatts, the clock in hertz.
type Params struct {
	// BufferWritePJ and BufferReadPJ are per-flit SRAM access energies.
	BufferWritePJ, BufferReadPJ float64
	// CrossbarPJ is the per-flit switch traversal energy.
	CrossbarPJ float64
	// ArbitrationPJ is the per-grant allocator energy (VA or SA).
	ArbitrationPJ float64
	// LinkPJ is the per-flit link traversal energy (1 mm, repeatered).
	LinkPJ float64
	// GateTransitionPJ is the sleep-transistor switching energy per
	// gate or wake event.
	GateTransitionPJ float64
	// BufferLeakMW is the leakage power of one powered VC buffer.
	BufferLeakMW float64
	// GatedLeakFraction is the residual leakage of a gated buffer as a
	// fraction of BufferLeakMW (sleep transistors do not cut leakage to
	// zero).
	GatedLeakFraction float64
	// SensorLeakMW is the leakage of one NBTI sensor (always on).
	SensorLeakMW float64
	// ClockHz converts leakage power into per-cycle energy.
	ClockHz float64
}

// Default45nm returns representative constants for a 64-bit-flit router
// at 45 nm, 1 GHz, 1.2 V.
func Default45nm() Params {
	return Params{
		BufferWritePJ:     1.1,
		BufferReadPJ:      0.9,
		CrossbarPJ:        2.8,
		ArbitrationPJ:     0.15,
		LinkPJ:            3.6,
		GateTransitionPJ:  0.6,
		BufferLeakMW:      0.035,
		GatedLeakFraction: 0.08,
		SensorLeakMW:      0.002,
		ClockHz:           1e9,
	}
}

// Validate reports whether the constants are usable. The fields are
// checked in declaration order — not via a map, whose randomized
// iteration order would make the reported error depend on the run when
// several fields are invalid.
func (p Params) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"BufferWritePJ", p.BufferWritePJ},
		{"BufferReadPJ", p.BufferReadPJ},
		{"CrossbarPJ", p.CrossbarPJ},
		{"ArbitrationPJ", p.ArbitrationPJ},
		{"LinkPJ", p.LinkPJ},
		{"GateTransitionPJ", p.GateTransitionPJ},
		{"BufferLeakMW", p.BufferLeakMW},
		{"SensorLeakMW", p.SensorLeakMW},
		{"ClockHz", p.ClockHz},
	} {
		if c.v <= 0 {
			return fmt.Errorf("power: %s must be positive", c.name)
		}
	}
	if p.GatedLeakFraction < 0 || p.GatedLeakFraction >= 1 {
		return errors.New("power: GatedLeakFraction must be in [0, 1)")
	}
	return nil
}

// Report is the itemised energy estimate for one measured window.
type Report struct {
	// Dynamic energy components (nanojoules).
	BufferNJ, CrossbarNJ, AllocNJ, LinkNJ, GatingNJ float64
	// Leakage energy components (nanojoules).
	LeakPoweredNJ, LeakGatedNJ, SensorLeakNJ float64
	// Totals.
	DynamicNJ, LeakageNJ, TotalNJ float64
	// LeakSavedNJ is the leakage avoided relative to an always-on
	// network with the same stress+recovery cycle count.
	LeakSavedNJ float64
	// LeakSavedPct is that saving as a percentage of always-on buffer
	// leakage.
	LeakSavedPct float64
}

// Estimate converts event counts into an energy report for a measured
// window of the given length. sensors is the number of always-on NBTI
// sensors in the network (0 for the baseline microarchitecture).
func Estimate(p Params, ev noc.EventCounts, sensors int, cycles uint64) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	if sensors < 0 {
		return Report{}, errors.New("power: negative sensor count")
	}
	var r Report
	r.BufferNJ = (float64(ev.BufferWrites)*p.BufferWritePJ +
		float64(ev.BufferReads)*p.BufferReadPJ) / 1000
	r.CrossbarNJ = float64(ev.CrossbarTraversals) * p.CrossbarPJ / 1000
	r.AllocNJ = float64(ev.VAGrants+ev.SAGrants) * p.ArbitrationPJ / 1000
	r.LinkNJ = float64(ev.LinkFlits) * p.LinkPJ / 1000
	r.GatingNJ = float64(ev.GateEvents+ev.WakeEvents) * p.GateTransitionPJ / 1000
	r.DynamicNJ = r.BufferNJ + r.CrossbarNJ + r.AllocNJ + r.LinkNJ + r.GatingNJ

	// 1 mW sustained for one cycle at ClockHz is 1e-3/ClockHz joules,
	// i.e. 1e6/ClockHz nanojoules.
	perCycleNJ := func(mw float64) float64 { return mw * 1e6 / p.ClockHz }
	r.LeakPoweredNJ = float64(ev.StressCycles) * perCycleNJ(p.BufferLeakMW)
	r.LeakGatedNJ = float64(ev.RecoveryCycles) * perCycleNJ(p.BufferLeakMW) * p.GatedLeakFraction
	r.SensorLeakNJ = float64(sensors) * float64(cycles) * perCycleNJ(p.SensorLeakMW)
	r.LeakageNJ = r.LeakPoweredNJ + r.LeakGatedNJ + r.SensorLeakNJ
	r.TotalNJ = r.DynamicNJ + r.LeakageNJ

	alwaysOn := float64(ev.StressCycles+ev.RecoveryCycles) * perCycleNJ(p.BufferLeakMW)
	r.LeakSavedNJ = alwaysOn - (r.LeakPoweredNJ + r.LeakGatedNJ)
	if alwaysOn > 0 {
		r.LeakSavedPct = 100 * r.LeakSavedNJ / alwaysOn
	}
	return r, nil
}
