package service

import "sync"

// jobQueue is a bounded priority queue: higher-priority jobs first,
// FIFO (by submission sequence) within a priority. It is a hand-rolled
// binary heap rather than container/heap so the blocking pop and the
// closed/drain protocol live next to the ordering they guard.
type jobQueue struct {
	mu     sync.Mutex
	nonEmp *sync.Cond
	heap   []*Job
	cap    int
	closed bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.nonEmp = sync.NewCond(&q.mu)
	return q
}

// before orders the heap: higher priority wins, ties resolved by
// submission order so equal-priority jobs stay FIFO.
func (a *Job) before(b *Job) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// push enqueues a job. It fails with ErrDraining once the queue is
// closed and ErrQueueFull at capacity — the two backpressure signals
// the HTTP layer translates to 503 and 429.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.cap > 0 && len(q.heap) >= q.cap {
		return ErrQueueFull
	}
	q.heap = append(q.heap, j)
	q.up(len(q.heap) - 1)
	q.nonEmp.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed and
// empty. Close-with-backlog still hands out the queued jobs: drain
// means "finish what was accepted", not "abandon it".
func (q *jobQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 {
		if q.closed {
			return nil, false
		}
		q.nonEmp.Wait()
	}
	j := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return j, true
}

// close stops accepting pushes and wakes every blocked pop so workers
// can drain the backlog and exit.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmp.Broadcast()
}

// depth reports the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

func (q *jobQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].before(q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *jobQueue) down(i int) {
	n := len(q.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && q.heap[l].before(q.heap[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && q.heap[r].before(q.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
	}
}
