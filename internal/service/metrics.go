package service

import "nbtinoc/internal/metrics"

// Service metric names, under the registry's usual snake_case scheme.
const (
	MetricSubmissions = "service_submissions_total"
	MetricDeduped     = "service_submissions_deduped_total"
	MetricRejected    = "service_rejected_total"
	MetricJobsStarted = "service_jobs_started_total"
	MetricJobsDone    = "service_jobs_done_total"
	MetricJobsFailed  = "service_jobs_failed_total"
	MetricJobTimeouts = "service_job_timeouts_total"
	MetricQueueDepth  = "service_queue_depth"
)

// serviceMetrics holds the instruments, resolved once at construction
// against the then-current default registry (nil registry: all inert).
type serviceMetrics struct {
	submissions *metrics.Counter
	deduped     *metrics.Counter
	rejected    *metrics.CounterVec
	rejectFull  *metrics.Counter
	rejectLimit *metrics.Counter
	rejectDrain *metrics.Counter
	started     *metrics.Counter
	done        *metrics.Counter
	failed      *metrics.Counter
	timeouts    *metrics.Counter
	queueDepth  *metrics.Gauge
	http        metrics.HTTPMetrics
}

func newServiceMetrics() serviceMetrics {
	r := metrics.Default()
	rejected := r.CounterVec(MetricRejected, "Submissions rejected, by reason.", "reason")
	return serviceMetrics{
		submissions: r.Counter(MetricSubmissions, "Spec submissions accepted (including dedup hits)."),
		deduped:     r.Counter(MetricDeduped, "Submissions collapsed into an existing job."),
		rejected:    rejected,
		rejectFull:  rejected.With("queue_full"),
		rejectLimit: rejected.With("client_limit"),
		rejectDrain: rejected.With("draining"),
		started:     r.Counter(MetricJobsStarted, "Jobs picked up by a worker."),
		done:        r.Counter(MetricJobsDone, "Jobs finished successfully."),
		failed:      r.Counter(MetricJobsFailed, "Jobs finished with an error."),
		timeouts:    r.Counter(MetricJobTimeouts, "Jobs failed by the per-job timeout."),
		queueDepth:  r.Gauge(MetricQueueDepth, "Jobs currently queued."),
		http:        metrics.NewHTTPMetrics(),
	}
}

// registryView pins the registry the /metrics endpoints serve to the
// one current at construction, so a later SetDefault cannot swap the
// exposition away from the instruments the server actually increments.
type registryView struct{ r *metrics.Registry }

func currentRegistry() registryView { return registryView{r: metrics.Default()} }
