package service

import "testing"

func qjob(seq uint64, priority int) *Job {
	return &Job{id: "j", seq: seq, priority: priority}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q := newJobQueue(16)
	// Interleave priorities; within a priority, seq order must hold.
	for _, j := range []*Job{qjob(1, 0), qjob(2, 5), qjob(3, 0), qjob(4, 5), qjob(5, -1)} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{2, 4, 1, 3, 5}
	for i, w := range want {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue unexpectedly closed", i)
		}
		if j.seq != w {
			t.Fatalf("pop %d: got seq %d, want %d", i, j.seq, w)
		}
	}
}

func TestQueueFullAndClosed(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(qjob(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(3, 0)); err != ErrQueueFull {
		t.Fatalf("push beyond cap: got %v, want ErrQueueFull", err)
	}
	if d := q.depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
	q.close()
	if err := q.push(qjob(4, 0)); err != ErrDraining {
		t.Fatalf("push after close: got %v, want ErrDraining", err)
	}
	// Close with a backlog still hands out the accepted jobs before
	// reporting exhaustion: drain completes accepted work.
	for i := 0; i < 2; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d after close: backlog abandoned", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed empty queue reported a job")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newJobQueue(4)
	got := make(chan *Job, 1)
	go func() {
		j, _ := q.pop()
		got <- j
	}()
	if err := q.push(qjob(7, 0)); err != nil {
		t.Fatal(err)
	}
	if j := <-got; j.seq != 7 {
		t.Fatalf("blocked pop returned seq %d, want 7", j.seq)
	}
}
