// Package service implements the nbtisimd simulation daemon: an
// HTTP/JSON front door over the declarative sim.Spec layer, with the
// content-addressed result cache as the dedup layer.
//
// The design hinges on one identity decision: a job's id IS its spec's
// content address (sim.SpecKey). Identical submissions therefore
// collapse into one job before any simulation starts, the in-process
// single-flight in cache.Store collapses concurrent computes of the
// same key, and the cross-process lease files collapse work between a
// daemon and any CLI sharing its cache directory — three dedup layers,
// one key.
//
// Jobs flow through a bounded priority queue into a fixed sim.Pool of
// workers. Backpressure is explicit: a full queue or a client over its
// in-flight limit gets 429, a draining server 503. Drain (SIGTERM in
// cmd/nbtisimd) closes the queue, finishes every accepted job, then
// lets the process exit — accepted work is never abandoned.
//
// The package never reads the wall clock: Config.Clock and
// Config.After are injected by the binary, the same seam
// cache.LeasePolicy uses, so the simulation libraries stay
// deterministic and nbtilint-clean and tests control time completely.
package service

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/sim"
)

// Backpressure and lifecycle sentinels, translated to HTTP statuses by
// the handlers (429, 429, 503 respectively).
var (
	// ErrQueueFull reports a submission bouncing off the bounded queue.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrClientLimit reports a client exceeding its in-flight job limit.
	ErrClientLimit = errors.New("service: client in-flight job limit reached")
	// ErrDraining reports a submission arriving after drain started.
	ErrDraining = errors.New("service: server is draining")
)

// DefaultQueueCap bounds the job queue when Config.QueueCap is zero.
const DefaultQueueCap = 256

// Config assembles a Server. Store and Clock are required.
type Config struct {
	// Store is the content-addressed result cache; its mode decides
	// whether results persist across restarts (rw) or live only in the
	// job store (off).
	Store *cache.Store
	// Workers sizes the simulation pool; <=0 means GOMAXPROCS.
	Workers int
	// QueueCap bounds the job queue; <=0 means DefaultQueueCap.
	QueueCap int
	// ClientLimit caps queued+running jobs per client id; <=0 means
	// unlimited.
	ClientLimit int
	// JobTimeoutNS fails jobs still running after this long; <=0 means
	// no timeout. Requires After.
	JobTimeoutNS int64
	// Clock returns the current wall time in Unix nanoseconds. The
	// service never calls the time package itself (see package doc).
	Clock func() int64
	// After returns a channel that closes once the given number of
	// nanoseconds has elapsed. Required only when JobTimeoutNS > 0.
	After func(ns int64) <-chan struct{}
	// Debug, when non-nil, is mounted at /debug/ (prof.HTTPHandler).
	Debug http.Handler
	// Warnf, when non-nil, receives operational warnings.
	Warnf func(format string, args ...any)
}

// Server is the simulation service: job store, queue, worker pool and
// HTTP handlers. Create with New, start the workers with Start, serve
// Handler, stop with Drain.
type Server struct {
	cfg   Config
	store *jobStore
	queue *jobQueue
	met   serviceMetrics
	reg   registryView

	// runJob executes one spec; defaults to the cache-backed
	// sim.Runner. Tests substitute it to control execution timing.
	runJob func(sim.Spec) (*sim.RunSummary, bool, error)

	draining  chanFlag
	done      chan struct{}
	startOnce sync.Once
}

// chanFlag is a set-once boolean readable without a lock.
type chanFlag struct {
	once sync.Once
	c    chan struct{}
}

func (f *chanFlag) set() { f.once.Do(func() { close(f.c) }) }
func (f *chanFlag) isSet() bool {
	select {
	case <-f.c:
		return true
	default:
		return false
	}
}

// New builds a Server from the config. It does not start the workers;
// call Start (tests that only exercise submission skip it).
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		return nil, errors.New("service: Config.Clock is required (inject the wall clock; see package doc)")
	}
	if cfg.JobTimeoutNS > 0 && cfg.After == nil {
		return nil, errors.New("service: Config.After is required when JobTimeoutNS is set")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	s := &Server{
		cfg:      cfg,
		store:    newJobStore(),
		queue:    newJobQueue(cfg.QueueCap),
		met:      newServiceMetrics(),
		reg:      currentRegistry(),
		draining: chanFlag{c: make(chan struct{})},
		done:     make(chan struct{}),
	}
	runner := sim.Runner{Store: cfg.Store}
	s.runJob = runner.RunJob
	return s, nil
}

// Start launches the worker pool. Safe to call once; Handler works
// before Start (submissions queue up).
func (s *Server) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			// Each pool worker drains the queue until close-and-empty.
			// Pool.Run returns only when every worker exits, which is
			// exactly the drain barrier Drain waits on.
			_ = sim.Pool{Workers: s.cfg.Workers}.Run(s.cfg.Workers, func(int) error {
				for {
					j, ok := s.queue.pop()
					if !ok {
						return nil
					}
					s.execute(j)
				}
			})
		}()
	})
}

// Drain stops accepting submissions, lets every accepted job finish,
// and returns once the workers have exited. Idempotent.
func (s *Server) Drain() {
	s.draining.set()
	s.queue.close()
	<-s.done
}

// Draining reports whether drain has started.
func (s *Server) Draining() bool { return s.draining.isSet() }

// execute runs one job on a pool worker, racing it against the
// configured timeout when one is set.
func (s *Server) execute(j *Job) {
	s.store.start(j, s.cfg.Clock())
	s.met.started.Inc()
	if s.cfg.JobTimeoutNS <= 0 {
		sum, cached, err := s.runJob(j.spec)
		s.finish(j, sum, cached, err)
		return
	}
	type outcome struct {
		sum    *sim.RunSummary
		cached bool
		err    error
	}
	// Buffered so a timed-out computation can still deposit its result
	// and let the goroutine exit; jobStore.finish being idempotent makes
	// the late write harmless.
	ch := make(chan outcome, 1)
	go func() {
		sum, cached, err := s.runJob(j.spec)
		ch <- outcome{sum, cached, err}
	}()
	select {
	case o := <-ch:
		s.finish(j, o.sum, o.cached, o.err)
	case <-s.cfg.After(s.cfg.JobTimeoutNS):
		s.met.timeouts.Inc()
		s.finish(j, nil, false, fmt.Errorf("service: job timed out after %dns", s.cfg.JobTimeoutNS))
	}
}

func (s *Server) finish(j *Job, sum *sim.RunSummary, cached bool, err error) {
	s.store.finish(j, sum, cached, err, s.cfg.Clock())
	if err != nil {
		s.met.failed.Inc()
		s.warnf("job %s failed: %v", j.id, err)
	} else {
		s.met.done.Inc()
	}
	s.met.queueDepth.Set(int64(s.queue.depth()))
}

func (s *Server) warnf(format string, args ...any) {
	if s.cfg.Warnf != nil {
		s.cfg.Warnf(format, args...)
	}
}
