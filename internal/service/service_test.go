package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/metrics"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/sim"
)

// testSpec is a small, fast, fully declarative scenario; the seed
// parameter varies the content address so tests can mint distinct jobs.
func testSpec(seed uint64) sim.Spec {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 2
	return sim.Spec{
		Net:     cfg,
		Policy:  sim.PolicySpec{Name: "sensor-wise"},
		Gen:     sim.GenSpec{Kind: "synthetic", Pattern: "uniform", Width: 2, Height: 2, Rate: 0.1, PacketLen: 4, Seed: seed},
		Warmup:  200,
		Measure: 2_000,
		Probes:  []sim.PortProbe{{Node: 0, Port: noc.East}},
	}
}

// testClock is an injected clock ticking once per read, so timestamps
// are deterministic and strictly ordered without any wall time.
func testClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1) }
}

func newTestServer(t *testing.T, mod func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Store:   cache.Open(t.TempDir(), cache.ReadWrite),
		Workers: 2,
		Clock:   testClock(),
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postSpec(t *testing.T, client *http.Client, base string, spec sim.Spec, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, client *http.Client, url string, v any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

func pollDone(t *testing.T, client *http.Client, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var view JobView
		resp := getJSON(t, client, base+"/jobs/"+id, &view)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d", resp.StatusCode)
		}
		if view.State == StateDone || view.State == StateFailed {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobView{}
}

// TestSubmitPollResult walks the whole happy path: submit a real spec,
// poll to done, and check every result format against the shared
// renderers (the CLI-parity contract the e2e CI job re-checks over a
// real socket).
func TestSubmitPollResult(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.Start()
	t.Cleanup(srv.Drain)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	spec := testSpec(7)
	resp, data := postSpec(t, ts.Client(), ts.URL, spec, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	key, err := sim.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if view.ID != key {
		t.Errorf("job id %q is not the spec content address %q", view.ID, key)
	}
	if view.Submissions != 1 || view.State == "" {
		t.Errorf("fresh job view: %+v", view)
	}

	final := pollDone(t, ts.Client(), ts.URL, view.ID)
	if final.State != StateDone {
		t.Fatalf("job finished as %s: %s", final.State, final.Error)
	}
	if final.Cached {
		t.Error("first execution reported cached=true")
	}
	if final.StartedNS == 0 || final.FinishedNS < final.StartedNS {
		t.Errorf("timestamps not ordered: %+v", final)
	}

	want, err := spec.Compute()
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range sim.RenderFormats() {
		resp, err := ts.Client().Get(ts.URL + "/jobs/" + view.ID + "/result?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: status %d", format, resp.StatusCode)
		}
		var buf bytes.Buffer
		if err := want.Render(&buf, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Errorf("result %s differs from the shared renderer:\n--- daemon ---\n%s--- direct ---\n%s", format, got, buf.Bytes())
		}
	}
	// The summary format is the raw RunSummary for programmatic
	// clients; it must decode back to the computed summary's numbers.
	var sum sim.RunSummary
	resp2 := getJSON(t, ts.Client(), ts.URL+"/jobs/"+view.ID+"/result?format=summary", &sum)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("summary: status %d", resp2.StatusCode)
	}
	if sum.AvgLatency != want.AvgLatency || sum.Cycles != want.Cycles {
		t.Errorf("summary mismatch: got latency %v cycles %d, want %v %d",
			sum.AvgLatency, sum.Cycles, want.AvgLatency, want.Cycles)
	}

	// The listing carries the job in submission order.
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	getJSON(t, ts.Client(), ts.URL+"/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != view.ID {
		t.Errorf("listing: %+v", list)
	}
}

// TestConcurrentSubmissionsDedup is the tentpole invariant: N racing
// submissions of one spec create one job and one execution.
func TestConcurrentSubmissionsDedup(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	srv := newTestServer(t, func(cfg *Config) { cfg.Workers = 4 })
	inner := srv.runJob
	srv.runJob = func(spec sim.Spec) (*sim.RunSummary, bool, error) {
		calls.Add(1)
		<-release
		return inner(spec)
	}
	srv.Start()
	t.Cleanup(srv.Drain)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const n = 16
	spec := testSpec(3)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postSpec(t, ts.Client(), ts.URL, spec, nil)
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	created, deduped := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
			created++
		case http.StatusOK:
			deduped++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if created != 1 || deduped != n-1 {
		t.Fatalf("created %d, deduped %d; want 1 and %d", created, deduped, n-1)
	}
	close(release)
	id, err := sim.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := pollDone(t, ts.Client(), ts.URL, id)
	if final.State != StateDone {
		t.Fatalf("job finished as %s: %s", final.State, final.Error)
	}
	if final.Submissions != n {
		t.Errorf("submissions = %d, want %d", final.Submissions, n)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("runJob executed %d times, want 1", got)
	}
}

// TestWarmSubmitServesFromCache: a second server over the same cache
// directory serves the spec as a store hit — zero additional misses,
// the cross-restart half of dedup.
func TestWarmSubmitServesFromCache(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(11)
	srvA := newTestServer(t, func(cfg *Config) { cfg.Store = cache.Open(dir, cache.ReadWrite) })
	srvA.Start()
	tsA := httptest.NewServer(srvA.Handler())
	resp, data := postSpec(t, tsA.Client(), tsA.URL, spec, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %d %s", resp.StatusCode, data)
	}
	id, _ := sim.SpecKey(spec)
	if v := pollDone(t, tsA.Client(), tsA.URL, id); v.State != StateDone {
		t.Fatalf("A finished as %s: %s", v.State, v.Error)
	}
	srvA.Drain()
	tsA.Close()

	storeB := cache.Open(dir, cache.ReadWrite)
	srvB := newTestServer(t, func(cfg *Config) { cfg.Store = storeB })
	srvB.Start()
	t.Cleanup(srvB.Drain)
	tsB := httptest.NewServer(srvB.Handler())
	t.Cleanup(tsB.Close)
	if resp, data := postSpec(t, tsB.Client(), tsB.URL, spec, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %d %s", resp.StatusCode, data)
	}
	final := pollDone(t, tsB.Client(), tsB.URL, id)
	if final.State != StateDone {
		t.Fatalf("B finished as %s: %s", final.State, final.Error)
	}
	if !final.Cached {
		t.Error("restarted server recomputed a cached spec (cached=false)")
	}
	st := storeB.Stats()
	if st.Misses != 0 || st.Hits != 1 {
		t.Errorf("store stats after warm submit: %+v, want 1 hit / 0 misses", st)
	}
	var stats statsBody
	getJSON(t, tsB.Client(), tsB.URL+"/stats", &stats)
	if stats.Store.Misses != 0 {
		t.Errorf("/stats reports %d misses, want 0", stats.Store.Misses)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	bad := testSpec(1)
	bad.Measure = 0
	bad.Gen.Pattern = "no-such-pattern"
	resp, data := postSpec(t, ts.Client(), ts.URL, bad, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, body %s", resp.StatusCode, data)
	}
	var body errorBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "invalid_spec" || len(body.Fields) != 2 {
		t.Errorf("error body: %+v", body)
	}
	fields := make(map[string]bool)
	for _, f := range body.Fields {
		fields[f.Field] = true
	}
	if !fields["measure"] || !fields["gen.pattern"] {
		t.Errorf("field tags: %+v", body.Fields)
	}

	// Malformed JSON is a bad_request, not a panic or a 500.
	resp2, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp2.StatusCode)
	}

	resp3, err := ts.Client().Post(ts.URL+"/jobs?priority=high", "application/json", specReader(t, testSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("non-integer priority: status %d", resp3.StatusCode)
	}
}

func specReader(t *testing.T, spec sim.Spec) io.Reader {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

func TestJobLookupErrors(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.Start()
	t.Cleanup(srv.Drain)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var body errorBody
	resp := getJSON(t, ts.Client(), ts.URL+"/jobs/nope", &body)
	if resp.StatusCode != http.StatusNotFound || body.Code != "unknown_job" {
		t.Errorf("unknown job: %d %+v", resp.StatusCode, body)
	}
	resp = getJSON(t, ts.Client(), ts.URL+"/jobs/nope/result", &body)
	if resp.StatusCode != http.StatusNotFound || body.Code != "unknown_job" {
		t.Errorf("unknown job result: %d %+v", resp.StatusCode, body)
	}
}

func TestResultBeforeDone(t *testing.T) {
	srv := newTestServer(t, nil) // workers never started: job stays queued
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	spec := testSpec(5)
	if resp, data := postSpec(t, ts.Client(), ts.URL, spec, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	id, _ := sim.SpecKey(spec)
	var body errorBody
	resp := getJSON(t, ts.Client(), ts.URL+"/jobs/"+id+"/result", &body)
	if resp.StatusCode != http.StatusConflict || body.Code != "not_done" {
		t.Errorf("result before done: %d %+v", resp.StatusCode, body)
	}
}

func TestMetricsAndIndexEndpoints(t *testing.T) {
	// A live registry so the /metrics endpoints expose real families
	// and the HTTP middleware exercises its counting path.
	metrics.SetDefault(metrics.New())
	t.Cleanup(func() { metrics.SetDefault(nil) })
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for _, path := range []string{"/metrics", "/metrics.json", "/", "/healthz", "/stats"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(expo, []byte(MetricQueueDepth)) {
		t.Errorf("/metrics exposition lacks %s:\n%s", MetricQueueDepth, expo)
	}
	if !bytes.Contains(expo, []byte(metrics.MetricHTTPRequests)) {
		t.Errorf("/metrics exposition lacks %s", metrics.MetricHTTPRequests)
	}
}

func TestNewRejectsMissingClock(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a config without a clock")
	}
	if _, err := New(Config{Clock: func() int64 { return 0 }, JobTimeoutNS: 1}); err == nil {
		t.Error("New accepted a timeout without After")
	}
}
