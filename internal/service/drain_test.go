package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nbtinoc/internal/sim"
)

// TestDrainFinishesAcceptedWork is the SIGTERM contract: drain rejects
// new submissions with 503 while every job accepted before the drain —
// running or still queued — completes.
func TestDrainFinishesAcceptedWork(t *testing.T) {
	release := make(chan struct{})
	srv := newTestServer(t, func(cfg *Config) { cfg.Workers = 1 })
	inner := srv.runJob
	srv.runJob = func(spec sim.Spec) (*sim.RunSummary, bool, error) {
		<-release
		return inner(spec)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Two distinct specs on one worker: the first runs (blocked on
	// release), the second waits in the queue.
	specA, specB := testSpec(21), testSpec(22)
	for _, spec := range []sim.Spec{specA, specB} {
		if resp, data := postSpec(t, ts.Client(), ts.URL, spec, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, data)
		}
	}

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	waitUntil(t, srv.Draining)

	// New submissions bounce with 503 and a machine-readable body.
	resp, data := postSpec(t, ts.Client(), ts.URL, testSpec(23), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d", resp.StatusCode)
	}
	var body errorBody
	if err := json.Unmarshal(data, &body); err != nil || body.Code != "draining" {
		t.Errorf("draining body: %s (%v)", data, err)
	}
	if resp := getJSON(t, ts.Client(), ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d", resp.StatusCode)
	}

	select {
	case <-drained:
		t.Fatal("Drain returned while a job was still in flight")
	default:
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("Drain did not return after jobs were released")
	}
	for _, spec := range []sim.Spec{specA, specB} {
		id, _ := sim.SpecKey(spec)
		var view JobView
		getJSON(t, ts.Client(), ts.URL+"/jobs/"+id, &view)
		if view.State != StateDone {
			t.Errorf("accepted job %s drained as %s: %s", id[:8], view.State, view.Error)
		}
	}
}

// waitUntil polls a condition that a background goroutine flips.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueFullBackpressure: submissions beyond the queue capacity get
// 429 with the queue_full code and a Retry-After hint.
func TestQueueFullBackpressure(t *testing.T) {
	srv := newTestServer(t, func(cfg *Config) { cfg.QueueCap = 1 })
	// Workers never started: the queued job cannot drain.
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if resp, data := postSpec(t, ts.Client(), ts.URL, testSpec(31), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, data)
	}
	resp, data := postSpec(t, ts.Client(), ts.URL, testSpec(32), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: status %d, body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var body errorBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("429 body is not JSON: %s", data)
	}
	if body.Code != "queue_full" || body.Error == "" {
		t.Errorf("429 body: %+v", body)
	}
	// Resubmitting the queued spec still dedups rather than bouncing:
	// the job exists, no new queue slot is needed.
	if resp, _ := postSpec(t, ts.Client(), ts.URL, testSpec(31), nil); resp.StatusCode != http.StatusOK {
		t.Errorf("dedup against full queue: status %d", resp.StatusCode)
	}
}

// TestClientLimitBackpressure: a client over its in-flight budget gets
// 429 client_limit, while other clients are unaffected.
func TestClientLimitBackpressure(t *testing.T) {
	srv := newTestServer(t, func(cfg *Config) { cfg.ClientLimit = 1 })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	alice := map[string]string{"X-Client-ID": "alice"}
	if resp, data := postSpec(t, ts.Client(), ts.URL, testSpec(41), alice); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, data)
	}
	resp, data := postSpec(t, ts.Client(), ts.URL, testSpec(42), alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: status %d, body %s", resp.StatusCode, data)
	}
	var body errorBody
	if err := json.Unmarshal(data, &body); err != nil || body.Code != "client_limit" {
		t.Errorf("429 body: %s (%v)", data, err)
	}
	// A different client still has budget.
	if resp, data := postSpec(t, ts.Client(), ts.URL, testSpec(42), map[string]string{"X-Client-ID": "bob"}); resp.StatusCode != http.StatusAccepted {
		t.Errorf("other client: %d %s", resp.StatusCode, data)
	}
	// Alice resubmitting her own queued spec dedups, costing no slot.
	if resp, _ := postSpec(t, ts.Client(), ts.URL, testSpec(41), alice); resp.StatusCode != http.StatusOK {
		t.Errorf("dedup under client limit: status %d", resp.StatusCode)
	}
}

// TestJobTimeout: a job exceeding the injected timeout fails with a
// timeout error and releases its client slot; the orphaned computation
// finishing later must not resurrect the job.
func TestJobTimeout(t *testing.T) {
	fire := make(chan struct{})
	block := make(chan struct{})
	srv := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.ClientLimit = 1
		cfg.JobTimeoutNS = int64(time.Second) // value irrelevant: After is stubbed
		cfg.After = func(int64) <-chan struct{} { return fire }
	})
	srv.runJob = func(spec sim.Spec) (*sim.RunSummary, bool, error) {
		<-block
		return &sim.RunSummary{}, false, nil
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		// Release the orphaned computations (the execute goroutines
		// park on a buffered channel, so they exit on their own), then
		// drain the workers.
		close(block)
		srv.Drain()
	})

	alice := map[string]string{"X-Client-ID": "alice"}
	spec := testSpec(51)
	if resp, data := postSpec(t, ts.Client(), ts.URL, spec, alice); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	id, _ := sim.SpecKey(spec)
	// Let the worker pick the job up, then fire the timeout.
	waitUntil(t, func() bool {
		var view JobView
		getJSON(t, ts.Client(), ts.URL+"/jobs/"+id, &view)
		return view.State == StateRunning
	})
	close(fire)
	final := pollDone(t, ts.Client(), ts.URL, id)
	if final.State != StateFailed {
		t.Fatalf("timed-out job finished as %s", final.State)
	}
	if final.Error == "" {
		t.Error("timed-out job carries no error")
	}
	var body errorBody
	if resp := getJSON(t, ts.Client(), ts.URL+"/jobs/"+id+"/result", &body); resp.StatusCode != http.StatusConflict || body.Code != "job_failed" {
		t.Errorf("result of failed job: %d %+v", resp.StatusCode, body)
	}
	// The failure released alice's slot: a fresh spec fits her
	// one-job budget again.
	if resp, data := postSpec(t, ts.Client(), ts.URL, testSpec(52), alice); resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-timeout submit: %d %s", resp.StatusCode, data)
	}
}
