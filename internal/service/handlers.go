package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/sim"
)

// maxSpecBytes bounds a submission body. Specs are small structured
// JSON; anything near a megabyte is a mistake or an attack.
const maxSpecBytes = 1 << 20

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	// Code is a stable machine-readable discriminator: invalid_spec,
	// queue_full, client_limit, draining, unknown_job, not_done,
	// job_failed, bad_request.
	Code string `json:"code"`
	// Fields carries the per-field validation report for invalid_spec.
	Fields sim.SpecErrors `json:"fields,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// Handler builds the service's HTTP mux. Routes use the Go 1.22 method
// and wildcard patterns; every route is wrapped in the HTTP metrics
// middleware under its pattern as the label.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.met.http.Wrap(pattern, h))
	}
	route("POST /jobs", s.handleSubmit)
	route("GET /jobs", s.handleList)
	route("GET /jobs/{id}", s.handleJob)
	route("GET /jobs/{id}/result", s.handleResult)
	route("GET /healthz", s.handleHealth)
	route("GET /stats", s.handleStats)
	route("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.r.WritePrometheus(w)
	})
	route("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.r.WriteJSON(w)
	})
	if s.cfg.Debug != nil {
		mux.Handle("/debug/", s.cfg.Debug)
	}
	route("GET /{$}", s.handleIndex)
	return mux
}

// clientID identifies the submitter for in-flight accounting: the
// X-Client-ID header when present, otherwise the remote host.
func clientID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Client-ID")); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleSubmit accepts a sim.Spec body and returns the job view: 202
// for a newly created job, 200 when the submission collapsed into an
// existing one (the id in both cases is the spec's content address).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.met.rejectDrain.Inc()
		w.Header().Set("Retry-After", "60")
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; resubmit elsewhere or later")
		return
	}
	var spec sim.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decode spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		var fields sim.SpecErrors
		if se, ok := err.(sim.SpecErrors); ok {
			fields = se
		}
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error:  err.Error(),
			Code:   "invalid_spec",
			Fields: fields,
		})
		return
	}
	priority := 0
	if p := r.URL.Query().Get("priority"); p != "" {
		n, err := strconv.Atoi(p)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "priority %q is not an integer", p)
			return
		}
		priority = n
	}
	key, err := sim.SpecKey(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "derive spec key: %v", err)
		return
	}
	s.met.submissions.Inc()
	j, created, err := s.store.submit(s.queue, key, spec, priority, clientID(r), s.cfg.ClientLimit, s.cfg.Clock())
	switch {
	case err == ErrQueueFull:
		s.met.rejectFull.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue_full", "job queue is full (%d queued)", s.queue.depth())
		return
	case err == ErrClientLimit:
		s.met.rejectLimit.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "client_limit", "client has %d jobs in flight (limit %d)", s.cfg.ClientLimit, s.cfg.ClientLimit)
		return
	case err == ErrDraining:
		s.met.rejectDrain.Inc()
		w.Header().Set("Retry-After", "60")
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; resubmit elsewhere or later")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	s.met.queueDepth.Set(int64(s.queue.depth()))
	if created {
		writeJSON(w, http.StatusAccepted, s.store.view(j))
		return
	}
	s.met.deduped.Inc()
	writeJSON(w, http.StatusOK, s.store.view(j))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.store.list()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.store.view(j))
}

// handleResult serves a done job's summary: ?format=json (default),
// csv or text through the shared sim renderers — byte-identical to the
// nbtisim CLI — or ?format=summary for the raw RunSummary JSON.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	}
	sum, view := s.store.result(j)
	switch view.State {
	case StateDone:
	case StateFailed:
		writeError(w, http.StatusConflict, "job_failed", "job failed: %s", view.Error)
		return
	default:
		writeError(w, http.StatusConflict, "not_done", "job is %s; poll /jobs/%s until done", view.State, view.ID)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format == "summary" {
		writeJSON(w, http.StatusOK, sum)
		return
	}
	// Render into a buffer first so a format error can still become a
	// clean 400 instead of a half-written 200.
	var buf bytes.Buffer
	if err := sum.Render(&buf, format); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining", "draining")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// statsBody is the /stats response: queue and job-store gauges plus
// the cache store counters (the "misses" field is what the service-e2e
// CI job asserts on to prove dedup).
type statsBody struct {
	Draining   bool        `json:"draining"`
	QueueDepth int         `json:"queue_depth"`
	Queued     int         `json:"jobs_queued"`
	Running    int         `json:"jobs_running"`
	Done       int         `json:"jobs_done"`
	Failed     int         `json:"jobs_failed"`
	Store      cache.Stats `json:"store"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	counts := s.store.counts()
	writeJSON(w, http.StatusOK, statsBody{
		Draining:   s.Draining(),
		QueueDepth: s.queue.depth(),
		Queued:     counts[StateQueued],
		Running:    counts[StateRunning],
		Done:       counts[StateDone],
		Failed:     counts[StateFailed],
		Store:      s.cfg.Store.Stats(),
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `nbtisimd: NoC NBTI simulation service

POST /jobs              submit a sim.Spec (JSON body; ?priority=N); job id = spec content address
GET  /jobs              list jobs in submission order
GET  /jobs/{id}         poll one job
GET  /jobs/{id}/result  fetch a done job's report (?format=json|csv|text|summary)
GET  /healthz           liveness (503 while draining)
GET  /stats             queue, job and cache-store counters
GET  /metrics           Prometheus exposition
GET  /metrics.json      JSON exposition
`)
}
