package service

import (
	"sync"

	"nbtinoc/internal/sim"
)

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle states. Queued jobs wait for a worker, running jobs
// occupy one, and done/failed are terminal.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job is one submitted simulation. The identity fields (id, spec,
// priority, client, seq) are immutable after submit; the lifecycle
// fields are guarded by the owning jobStore's lock.
type Job struct {
	id       string
	spec     sim.Spec
	priority int
	client   string
	seq      uint64

	state       JobState
	cached      bool
	submissions int
	err         string
	submittedNS int64
	startedNS   int64
	finishedNS  int64
	sum         *sim.RunSummary
}

// JobView is the wire representation of a job: everything a polling
// client needs to decide whether to fetch the result.
type JobView struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Priority int      `json:"priority"`
	// Cached reports whether the summary was served from the result
	// cache rather than computed — the dedup evidence.
	Cached bool `json:"cached"`
	// Submissions counts how many POSTs collapsed into this job.
	Submissions int    `json:"submissions"`
	SubmittedNS int64  `json:"submitted_ns"`
	StartedNS   int64  `json:"started_ns,omitempty"`
	FinishedNS  int64  `json:"finished_ns,omitempty"`
	Error       string `json:"error,omitempty"`
}

func (j *Job) viewLocked() JobView {
	return JobView{
		ID:          j.id,
		State:       j.state,
		Priority:    j.priority,
		Cached:      j.cached,
		Submissions: j.submissions,
		SubmittedNS: j.submittedNS,
		StartedNS:   j.startedNS,
		FinishedNS:  j.finishedNS,
		Error:       j.err,
	}
}

// jobStore owns every job the server has accepted, keyed by the spec's
// content address — which is exactly what makes submission dedup work:
// two identical specs share a key, therefore a job, therefore a single
// simulation.
type jobStore struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	order   []*Job         // submission order, for stable listings
	clients map[string]int // in-flight (queued+running) jobs per client
	seq     uint64
}

func newJobStore() *jobStore {
	return &jobStore{
		jobs:    make(map[string]*Job),
		clients: make(map[string]int),
	}
}

// submit registers a submission for the given spec key, collapsing it
// into an existing job when one is already known. The dedup check, the
// per-client limit, the job creation and the queue push all happen
// under one lock so two racing identical submissions cannot both
// create a job (lock order: store.mu, then queue.mu inside push).
func (s *jobStore) submit(q *jobQueue, key string, spec sim.Spec, priority int, client string, limit int, nowNS int64) (j *Job, created bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[key]; ok {
		j.submissions++
		return j, false, nil
	}
	if limit > 0 && s.clients[client] >= limit {
		return nil, false, ErrClientLimit
	}
	s.seq++
	j = &Job{
		id:          key,
		spec:        spec,
		priority:    priority,
		client:      client,
		seq:         s.seq,
		state:       StateQueued,
		submissions: 1,
		submittedNS: nowNS,
	}
	if err := q.push(j); err != nil {
		return nil, false, err
	}
	s.jobs[key] = j
	s.order = append(s.order, j)
	s.clients[client]++
	return j, true, nil
}

// start transitions a job to running when a worker picks it up.
func (s *jobStore) start(j *Job, nowNS int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.state = StateRunning
	j.startedNS = nowNS
}

// finish records a job's outcome and releases its client slot. It is
// idempotent: a timed-out job whose orphaned computation completes
// later must not overwrite the recorded failure (or decrement the
// client count twice).
func (s *jobStore) finish(j *Job, sum *sim.RunSummary, cached bool, jerr error, nowNS int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.finishedNS = nowNS
	if jerr != nil {
		j.state = StateFailed
		j.err = jerr.Error()
	} else {
		j.state = StateDone
		j.sum = sum
		j.cached = cached
	}
	if n := s.clients[j.client] - 1; n > 0 {
		s.clients[j.client] = n
	} else {
		delete(s.clients, j.client)
	}
}

// get returns the job for a spec key (which doubles as the job id).
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// view snapshots one job.
func (s *jobStore) view(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.viewLocked()
}

// result returns a done job's summary. The boolean distinguishes
// "not finished yet" from "finished without a summary" for the caller.
func (s *jobStore) result(j *Job) (*sim.RunSummary, JobView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.sum, j.viewLocked()
}

// list snapshots every job in submission order.
func (s *jobStore) list() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, len(s.order))
	for i, j := range s.order {
		views[i] = j.viewLocked()
	}
	return views
}

// counts tallies jobs by state for the stats endpoint.
func (s *jobStore) counts() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := make(map[JobState]int, 4)
	for _, j := range s.order {
		c[j.state]++
	}
	return c
}
