package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x != %x", i, av, bv)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestReseedResetsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if v := r.Uint64(); v != first[i] {
			t.Fatalf("after Reseed, value %d = %x, want %x", i, v, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const trials = 200000
	const mean, sd = 0.180, 0.005
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := r.Norm(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / trials
	variance := sumSq/trials - m*m
	if math.Abs(m-mean) > 1e-4 {
		t.Errorf("mean = %v, want %v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 2e-4 {
		t.Errorf("stddev = %v, want %v", math.Sqrt(variance), sd)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const rate = 2.5
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if got, want := sum/trials, 1/rate; math.Abs(got-want) > 0.01 {
		t.Errorf("Exp mean = %v, want %v", got, want)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for n := 0; n < 32; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(10)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", s)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(11)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if r.Bool(-0.5) {
		t.Error("Bool(-0.5) returned true")
	}
	if !r.Bool(1.5) {
		t.Error("Bool(1.5) returned false")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(12)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(p) {
			hits++
		}
	}
	if got := float64(hits) / trials; math.Abs(got-p) > 0.01 {
		t.Errorf("Bool(%v) frequency = %v", p, got)
	}
}

// Property: Intn never escapes its bound, for arbitrary seeds and bounds.
func TestQuickIntnBound(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds give identical Float64 streams.
func TestQuickDeterministicFloats(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewStreamDeterministic(t *testing.T) {
	a := NewStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("stream (42,7) diverged at %d: %x != %x", i, av, bv)
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	// Adjacent ids and adjacent seeds must all give distinct streams.
	pairs := [][2]*Source{
		{NewStream(1, 0), NewStream(1, 1)},
		{NewStream(1, 0), NewStream(2, 0)},
		{NewStream(1, 1), NewStream(2, 0)},
		{NewStream(0, 5), NewStream(0, 6)},
	}
	for pi, pr := range pairs {
		same := 0
		for i := 0; i < 100; i++ {
			if pr[0].Uint64() == pr[1].Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Errorf("pair %d collided %d/100 times", pi, same)
		}
	}
}

func TestStreamSeedMatchesNewStream(t *testing.T) {
	want := NewStream(9, 3).Uint64()
	if got := New(StreamSeed(9, 3)).Uint64(); got != want {
		t.Fatalf("New(StreamSeed) = %x, NewStream = %x", got, want)
	}
}

func TestGeometricEdges(t *testing.T) {
	r := New(13)
	if g := r.Geometric(1); g != 1 {
		t.Errorf("Geometric(1) = %d, want 1", g)
	}
	if g := r.Geometric(1.5); g != 1 {
		t.Errorf("Geometric(1.5) = %d, want 1", g)
	}
	if g := r.Geometric(0); g != Never {
		t.Errorf("Geometric(0) = %d, want Never", g)
	}
	if g := r.Geometric(-0.2); g != Never {
		t.Errorf("Geometric(-0.2) = %d, want Never", g)
	}
}

func TestGeometricSupport(t *testing.T) {
	r := New(14)
	for i := 0; i < 100000; i++ {
		if g := r.Geometric(0.4); g < 1 {
			t.Fatalf("Geometric(0.4) = %d, below support", g)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	// E[G] = 1/p. Check at a paper-like small p and a moderate one.
	for _, p := range []float64{0.025, 0.3} {
		r := New(15)
		const trials = 200000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Geometric(p))
		}
		got := sum / trials
		want := 1 / p
		// SD of the sample mean is sqrt((1-p)/p^2 / trials); allow 4 sigma.
		tol := 4 * math.Sqrt((1-p)/(p*p)/trials)
		if math.Abs(got-want) > tol {
			t.Errorf("Geometric(%v) mean = %v, want %v +- %v", p, got, want, tol)
		}
	}
}

func TestGeometricMatchesBernoulliDistribution(t *testing.T) {
	// The gap distribution must match counting Bool(p) trials until the
	// first success: P(G = k) = (1-p)^(k-1) p. Compare bucket frequencies
	// of the two processes directly.
	const p = 0.2
	const trials = 100000
	const buckets = 12 // 1..11 and 12+ pooled
	geo := make([]int, buckets+1)
	bern := make([]int, buckets+1)
	rg := New(16)
	rb := New(17)
	for i := 0; i < trials; i++ {
		g := rg.Geometric(p)
		if g > buckets {
			g = buckets
		}
		geo[g]++
		k := uint64(1)
		for !rb.Bool(p) {
			k++
			if k >= buckets {
				break
			}
		}
		bern[k]++
	}
	for k := 1; k <= buckets; k++ {
		pg := float64(geo[k]) / trials
		pb := float64(bern[k]) / trials
		// Each bucket frequency has SD sqrt(p(1-p)/trials) <= 0.0016 here;
		// comparing two independent estimates doubles the variance.
		if math.Abs(pg-pb) > 0.01 {
			t.Errorf("bucket %d: geometric %.4f vs bernoulli %.4f", k, pg, pb)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm(0, 1)
	}
	_ = sink
}
