// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The standard library's math/rand does not guarantee a stable stream
// across Go releases once helper methods are involved, and experiments in
// this repository must be bit-reproducible from a seed so that published
// tables can be regenerated exactly. The package therefore implements
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, both of which
// are fully specified algorithms with well-known reference outputs.
//
// A Source is NOT safe for concurrent use; derive independent streams with
// Split when parallelism is needed.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** generator.
type Source struct {
	s0, s1, s2, s3 uint64
	// spare holds a cached second Gaussian deviate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// splitmix64 advances *x and returns the next splitmix64 output.
// It is used to expand a single 64-bit seed into the 256-bit xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator state from seed, discarding any cached
// Gaussian deviate.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9E3779B97F4A7C15
	}
	r.spareOK = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new, independent Source from r. The derived stream is a
// deterministic function of r's current state, and r is advanced so that
// successive Splits yield distinct children.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// StreamSeed derives the seed of the id-th member of the counter-based
// stream family keyed by seed. Unlike Split, which must advance a parent
// generator, any member of a family is reachable in O(1) — the property
// the per-node traffic streams rely on — and the double splitmix64 mix
// decorrelates both nearby seeds and nearby ids.
func StreamSeed(seed, id uint64) uint64 {
	h := seed
	base := splitmix64(&h)
	h = base ^ (id+1)*0x9E3779B97F4A7C15
	return splitmix64(&h)
}

// NewStream returns the id-th stream of the family keyed by seed: a
// splittable/indexed generator construction where every (seed, id) pair
// yields a fixed, pairwise-independent xoshiro256** stream without
// deriving ids 0..id-1 first.
func NewStream(seed, id uint64) *Source {
	return New(StreamSeed(seed, id))
}

// Never is the sentinel Geometric returns for an impossible event
// (p <= 0): no finite number of trials ever succeeds.
const Never = ^uint64(0)

// Geometric returns the number of Bernoulli(p) trials up to and
// including the first success — the Geometric(p) distribution on
// {1, 2, ...} — via inverse-CDF sampling, consuming exactly one
// uniform draw. A sequence of per-trial Bool(p) draws and a sequence
// of Geometric(p) gaps describe the same arrival process, which is
// what lets the traffic generators skip-sample quiet cycles instead
// of rolling every one. p >= 1 returns 1; p <= 0 returns Never.
// Results that would overflow (astronomically long gaps at tiny p)
// saturate to Never.
func (r *Source) Geometric(p float64) uint64 {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return Never
	}
	u := r.Float64()
	// G = floor(ln(1-u)/ln(1-p)) + 1 with 1-u in (0, 1]; log1p keeps the
	// ratio accurate for small p, where ln(1-p) underflows to -p.
	g := math.Floor(math.Log1p(-u) / math.Log1p(-p))
	if g >= float64(Never-1) {
		return Never
	}
	return uint64(g) + 1
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-then-shift rejection method: unbiased and fast.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *Source) Norm(mean, stddev float64) float64 {
	if r.spareOK {
		r.spareOK = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.spareOK = true
	return mean + stddev*u*f
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	// u is in [0,1); 1-u is in (0,1] so the log is finite.
	return -math.Log(1-u) / rate
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the given swap
// function, mirroring math/rand's contract.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
