// Package sensor models per-VC NBTI degradation sensors and the
// most-degraded comparator placed in each downstream router.
//
// The paper instruments every virtual-channel buffer with one NBTI sensor
// (a synthesizable 45 nm multi-degradation sensor, reference [20]) and a
// comparator that selects the single most degraded VC of an input port;
// that VC identifier is sent to the upstream router over the Down_Up
// link. This package reproduces the measurement path: each sensor reads
// the absolute threshold voltage of its buffer's critical PMOS —
// the process-variation Vth0 plus the stress-history-dependent ΔVth —
// subject to configurable quantisation, read noise and a sampling period.
//
// With the default configuration the ΔVth projection horizon is zero, so
// the ranking is driven purely by the process-variation Vth0 values and
// the most degraded VC of a port is constant over a run, matching the
// paper's experimental setup (Section IV-A: one Vth sample set per
// scenario; the MD VC is fixed across policies and iterations). A
// non-zero Horizon turns the sensors into a closed-loop aging monitor —
// an extension exercised by the ablation benchmarks.
package sensor

import (
	"errors"
	"math"

	"nbtinoc/internal/floats"
	"nbtinoc/internal/metrics"
	"nbtinoc/internal/nbti"
	"nbtinoc/internal/rng"
)

// MetricSamples counts actual sensor measurements (bank refreshes times
// bank size); held-value reads between sampling periods do not count.
const MetricSamples = "sensor_samples_total"

// Config describes the non-idealities of an NBTI sensor.
type Config struct {
	// SamplePeriod is the number of cycles between sensor reads; in
	// between, the last measurement is held. Must be >= 1.
	SamplePeriod uint64
	// LSB is the quantisation step of the measurement in volts.
	// 0 means an ideal (continuous) readout.
	LSB float64
	// NoiseSigma is the standard deviation of additive Gaussian read
	// noise in volts. 0 disables noise.
	NoiseSigma float64
	// Horizon is the wallclock time (seconds) at which the device's
	// current duty-cycle is projected into a ΔVth contribution. 0 ranks
	// by initial Vth alone.
	Horizon float64
}

// DefaultConfig mirrors the reference 45 nm sensor: 0.5 mV quantisation,
// 0.25 mV read noise, a measurement every 1024 cycles, static ranking.
func DefaultConfig() Config {
	return Config{SamplePeriod: 1024, LSB: 0.5e-3, NoiseSigma: 0.25e-3}
}

// IdealConfig returns a noiseless, continuous, every-cycle sensor.
func IdealConfig() Config {
	return Config{SamplePeriod: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.SamplePeriod == 0:
		return errors.New("sensor: SamplePeriod must be >= 1")
	case c.LSB < 0:
		return errors.New("sensor: LSB must be non-negative")
	case c.NoiseSigma < 0:
		return errors.New("sensor: NoiseSigma must be non-negative")
	case c.Horizon < 0:
		return errors.New("sensor: Horizon must be non-negative")
	}
	return nil
}

// Sensor measures the threshold voltage of a single device.
type Sensor struct {
	dev  *nbti.Device
	cfg  Config
	src  *rng.Source
	last float64
	// lastSample is the cycle of the most recent actual measurement;
	// primed=false until the first read.
	lastSample uint64
	primed     bool
}

// New returns a sensor attached to dev. src supplies read noise and may
// be nil when NoiseSigma is 0.
func New(dev *nbti.Device, cfg Config, src *rng.Source) (*Sensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, errors.New("sensor: nil device")
	}
	if cfg.NoiseSigma > 0 && src == nil {
		return nil, errors.New("sensor: NoiseSigma > 0 requires an rng source")
	}
	return &Sensor{dev: dev, cfg: cfg, src: src}, nil
}

// Device returns the monitored device.
func (s *Sensor) Device() *nbti.Device { return s.dev }

// trueVth returns the noiseless quantity the sensor observes.
func (s *Sensor) trueVth() float64 {
	if floats.ExactZero(s.cfg.Horizon) {
		// Horizon is a config field: 0 means "report current Vth", any
		// projection is set explicitly and never computed.
		return s.dev.Vth0
	}
	return s.dev.Vth(s.cfg.Horizon)
}

// Read returns the sensor output at the given cycle. A fresh measurement
// is taken when at least SamplePeriod cycles have elapsed since the last
// one (and always on the first call); otherwise the held value is
// returned.
func (s *Sensor) Read(cycle uint64) float64 {
	if s.primed && cycle-s.lastSample < s.cfg.SamplePeriod {
		return s.last
	}
	v := s.trueVth()
	if s.cfg.NoiseSigma > 0 {
		v += s.src.Norm(0, s.cfg.NoiseSigma)
	}
	if s.cfg.LSB > 0 {
		v = math.Round(v/s.cfg.LSB) * s.cfg.LSB
	}
	s.last = v
	s.lastSample = cycle
	s.primed = true
	return v
}

// Bank groups the sensors of one router input port together with the
// most- and least-degraded comparators.
type Bank struct {
	sensors []*Sensor
	// md and ld cache the comparator outputs between refreshes.
	md, ld     int
	lastUpdate uint64
	primed     bool
	period     uint64
	// mSamples mirrors actual measurements into the process metrics
	// registry; nil when instrumentation is disabled.
	mSamples *metrics.Counter
}

// NewBank builds a bank over the given devices, one sensor each. src is
// split per sensor so noise streams are independent but reproducible.
func NewBank(devs []*nbti.Device, cfg Config, src *rng.Source) (*Bank, error) {
	if len(devs) == 0 {
		return nil, errors.New("sensor: empty bank")
	}
	b := &Bank{
		sensors: make([]*Sensor, len(devs)),
		period:  cfg.SamplePeriod,
		mSamples: metrics.Default().Counter(MetricSamples,
			"Actual sensor measurements taken by bank refreshes."),
	}
	for i, d := range devs {
		var child *rng.Source
		if cfg.NoiseSigma > 0 {
			child = src.Split()
		}
		s, err := New(d, cfg, child)
		if err != nil {
			return nil, err
		}
		b.sensors[i] = s
	}
	return b, nil
}

// Size returns the number of sensors in the bank.
func (b *Bank) Size() int { return len(b.sensors) }

// Sensor returns the i-th sensor.
func (b *Bank) Sensor(i int) *Sensor { return b.sensors[i] }

// refresh re-evaluates the comparators when the sampling period has
// elapsed.
func (b *Bank) refresh(cycle uint64) {
	if b.primed && cycle-b.lastUpdate < b.period {
		return
	}
	maxI, maxV := 0, math.Inf(-1)
	minI, minV := 0, math.Inf(1)
	for i, s := range b.sensors {
		v := s.Read(cycle)
		if v > maxV {
			maxI, maxV = i, v
		}
		if v < minV {
			minI, minV = i, v
		}
	}
	b.md, b.ld = maxI, minI
	b.lastUpdate = cycle
	b.primed = true
	b.mSamples.Add(uint64(len(b.sensors)))
}

// MostDegraded returns the index of the VC whose sensor currently reads
// the highest threshold voltage. The comparator re-evaluates at the bank
// sampling period; ties resolve to the lowest index (hardware priority
// encoder behaviour).
func (b *Bank) MostDegraded(cycle uint64) int {
	b.refresh(cycle)
	return b.md
}

// LeastDegraded returns the index of the VC with the lowest sensor
// reading — the healthiest buffer, used by the wear-steering policy
// extension. Ties resolve to the lowest index.
func (b *Bank) LeastDegraded(cycle uint64) int {
	b.refresh(cycle)
	return b.ld
}
