package sensor

import (
	"math"
	"testing"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/rng"
)

func devices(vth0s ...float64) []*nbti.Device {
	model := nbti.Default45nm()
	out := make([]*nbti.Device, len(vth0s))
	for i, v := range vth0s {
		out[i] = nbti.NewDevice(v, model)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := IdealConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SamplePeriod: 0},
		{SamplePeriod: 1, LSB: -1},
		{SamplePeriod: 1, NoiseSigma: -1},
		{SamplePeriod: 1, Horizon: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewRejectsNilDevice(t *testing.T) {
	if _, err := New(nil, IdealConfig(), nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestNewRequiresRngForNoise(t *testing.T) {
	d := devices(0.18)[0]
	cfg := Config{SamplePeriod: 1, NoiseSigma: 1e-3}
	if _, err := New(d, cfg, nil); err == nil {
		t.Fatal("noisy sensor without rng accepted")
	}
}

func TestIdealSensorReadsVth0(t *testing.T) {
	d := devices(0.1834)[0]
	s, err := New(d, IdealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Read(0); got != 0.1834 {
		t.Fatalf("Read = %v, want 0.1834", got)
	}
}

func TestQuantisation(t *testing.T) {
	d := devices(0.18037)[0]
	cfg := Config{SamplePeriod: 1, LSB: 0.5e-3}
	s, err := New(d, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Read(0)
	want := math.Round(0.18037/0.5e-3) * 0.5e-3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("quantised read = %v, want %v", got, want)
	}
	if rem := math.Mod(got, 0.5e-3); math.Abs(rem) > 1e-12 && math.Abs(rem-0.5e-3) > 1e-12 {
		t.Fatalf("read %v not on LSB grid", got)
	}
}

func TestSamplePeriodHoldsValue(t *testing.T) {
	d := devices(0.18)[0]
	cfg := Config{SamplePeriod: 100, NoiseSigma: 2e-3}
	s, err := New(d, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	first := s.Read(0)
	for c := uint64(1); c < 100; c++ {
		if v := s.Read(c); v != first {
			t.Fatalf("held value changed at cycle %d: %v != %v", c, v, first)
		}
	}
	// At the sample period a fresh (noisy) measurement is taken; with
	// σ = 2 mV the chance of exact equality is negligible.
	if v := s.Read(100); v == first {
		t.Error("no fresh measurement at sample period")
	}
}

func TestHorizonProjectsStressHistory(t *testing.T) {
	model := nbti.Default45nm()
	d := nbti.NewDevice(0.180, model)
	d.Tracker.Stress(90, 45)
	d.Tracker.Recover(10)
	cfg := Config{SamplePeriod: 1, Horizon: 3 * nbti.SecondsPerYear}
	s, err := New(d, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Read(0)
	want := 0.180 + model.DeltaVth(0.9, 3*nbti.SecondsPerYear)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("horizon read = %v, want %v", got, want)
	}
}

func TestBankMostDegradedStatic(t *testing.T) {
	devs := devices(0.178, 0.186, 0.181, 0.179)
	b, err := NewBank(devs, IdealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.MostDegraded(0); got != 1 {
		t.Fatalf("MostDegraded = %d, want 1", got)
	}
	if b.Size() != 4 {
		t.Fatalf("Size = %d", b.Size())
	}
}

func TestBankTieResolvesToLowestIndex(t *testing.T) {
	devs := devices(0.186, 0.186, 0.181)
	b, err := NewBank(devs, IdealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.MostDegraded(0); got != 0 {
		t.Fatalf("tie resolved to %d, want 0", got)
	}
}

func TestBankEmptyRejected(t *testing.T) {
	if _, err := NewBank(nil, IdealConfig(), nil); err == nil {
		t.Fatal("empty bank accepted")
	}
}

func TestBankCachesBetweenPeriods(t *testing.T) {
	devs := devices(0.180, 0.185)
	cfg := Config{SamplePeriod: 1000, Horizon: 3 * nbti.SecondsPerYear}
	b, err := NewBank(devs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.MostDegraded(0); got != 1 {
		t.Fatalf("initial MD = %d, want 1", got)
	}
	// Pile stress onto VC0 so its projected Vth overtakes VC1.
	devs[0].Tracker.Stress(1000000, 0)
	devs[1].Tracker.Recover(1000000)
	// Within the sampling period the cached answer must hold.
	if got := b.MostDegraded(500); got != 1 {
		t.Fatalf("cached MD = %d, want 1", got)
	}
	// After the period, the comparator sees the new ranking.
	if got := b.MostDegraded(1000); got != 0 {
		t.Fatalf("refreshed MD = %d, want 0", got)
	}
}

func TestBankDynamicRankingFollowsDutyCycle(t *testing.T) {
	// With equal Vth0, the device with higher duty-cycle must become the
	// most degraded under a non-zero horizon.
	devs := devices(0.180, 0.180, 0.180)
	cfg := Config{SamplePeriod: 1, Horizon: nbti.SecondsPerYear}
	b, err := NewBank(devs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	devs[2].Tracker.Stress(900, 0)
	devs[2].Tracker.Recover(100)
	devs[0].Tracker.Stress(100, 0)
	devs[0].Tracker.Recover(900)
	devs[1].Tracker.Stress(500, 0)
	devs[1].Tracker.Recover(500)
	if got := b.MostDegraded(0); got != 2 {
		t.Fatalf("dynamic MD = %d, want 2", got)
	}
}

func TestNoiseIsReproducible(t *testing.T) {
	mk := func() *Bank {
		devs := devices(0.180, 0.181)
		b, err := NewBank(devs, DefaultConfig(), rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	for c := uint64(0); c < 5000; c += 500 {
		if a.MostDegraded(c) != b.MostDegraded(c) {
			t.Fatalf("noisy comparator diverged at cycle %d", c)
		}
	}
}

func TestBankLeastDegraded(t *testing.T) {
	devs := devices(0.182, 0.176, 0.185, 0.179)
	b, err := NewBank(devs, IdealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.LeastDegraded(0); got != 1 {
		t.Fatalf("LeastDegraded = %d, want 1", got)
	}
	if got := b.MostDegraded(0); got != 2 {
		t.Fatalf("MostDegraded = %d, want 2", got)
	}
	// Accessors.
	if b.Sensor(0).Device() != devs[0] {
		t.Error("Sensor/Device accessors wrong")
	}
}

func TestBankLDTracksStress(t *testing.T) {
	devs := devices(0.180, 0.180)
	cfg := Config{SamplePeriod: 1, Horizon: nbti.SecondsPerYear}
	b, err := NewBank(devs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	devs[0].Tracker.Stress(900, 0)
	devs[0].Tracker.Recover(100)
	devs[1].Tracker.Stress(100, 0)
	devs[1].Tracker.Recover(900)
	if got := b.LeastDegraded(0); got != 1 {
		t.Fatalf("dynamic LD = %d, want 1", got)
	}
}

func TestNewBankRejectsBadConfig(t *testing.T) {
	devs := devices(0.18)
	if _, err := NewBank(devs, Config{SamplePeriod: 0}, nil); err == nil {
		t.Fatal("bad config accepted by NewBank")
	}
}
