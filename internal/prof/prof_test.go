package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterAndStartAllProfiles(t *testing.T) {
	dir := t.TempDir()
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs, "trace")
	err := fs.Parse([]string{
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"),
		"-memprofile", filepath.Join(dir, "mem.pprof"),
		"-trace", filepath.Join(dir, "exec.trace"),
	})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little work so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "mem.pprof", "exec.trace"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestStartWithNothingRequested(t *testing.T) {
	var f Flags
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartFailsOnBadPath(t *testing.T) {
	f := Flags{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu")}
	if _, err := f.Start(); err == nil {
		t.Fatal("Start succeeded with an uncreatable CPU profile path")
	}
}
