// Package prof wires the standard runtime profilers behind the
// command-line flags shared by the simulator binaries (-cpuprofile,
// -memprofile and an execution-trace flag). It exists so cmd/tables and
// cmd/nbtisim expose identical profiling surfaces for the perf
// trajectory work without duplicating the start/stop plumbing.
package prof

import (
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// HTTPHandler returns a handler serving the standard pprof surface
// under /debug/pprof/ — the live counterpart of the -cpuprofile /
// -memprofile file flags, mounted by the metrics monitor so a stuck or
// slow run can be profiled over HTTP without restarting it. The
// handlers are registered on a private mux; importing net/http/pprof
// also touches http.DefaultServeMux, but nothing in this repository
// serves that mux.
func HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Flags holds the requested profile destinations. Empty strings mean
// the corresponding profiler stays off.
type Flags struct {
	CPU   string
	Mem   string
	Trace string
}

// Register adds the profiling flags to fs. The execution-trace flag
// name is caller-chosen because nbtisim already uses -trace for flit
// trace replay; cmd/tables passes "trace", nbtisim passes "exectrace".
func (f *Flags) Register(fs *flag.FlagSet, traceFlag string) {
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.Trace, traceFlag, "", "write a runtime execution trace to this file")
}

// Start begins the requested profilers and returns a stop function that
// finishes them and writes the heap profile. The stop function must be
// called exactly once; it is safe to call when no profiler was
// requested.
func (f *Flags) Start() (func() error, error) {
	var cpuFile, traceFile *os.File

	fail := func(err error) (func() error, error) {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			traceFile.Close()
		}
		return nil, err
	}

	if f.CPU != "" {
		var err error
		if cpuFile, err = os.Create(f.CPU); err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return fail(fmt.Errorf("starting CPU profile: %w", err))
		}
	}
	if f.Trace != "" {
		var err error
		if traceFile, err = os.Create(f.Trace); err != nil {
			return fail(err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			return fail(fmt.Errorf("starting execution trace: %w", err))
		}
	}

	stop := func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return firstErr
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(mf); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("writing heap profile: %w", err)
			}
			if err := mf.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return stop, nil
}
