package floats

import (
	"math"
	"testing"
)

//go:noinline
func runtimeSum(a, b float64) float64 { return a + b }

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		name      string
		a, b, tol float64
		want      bool
	}{
		{"identical", 1.5, 1.5, 1e-12, true},
		{"within-abs", 1e-12, 0, 1e-9, true},
		{"outside-abs", 2e-9, 0, 1e-9, false},
		{"within-rel", 1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{"outside-rel", 1e12, 1e12 * (1 + 1e-8), 1e-9, false},
		// runtimeSum forces runtime float arithmetic: the literal
		// 0.1 + 0.2 would be folded exactly (constants are arbitrary
		// precision) and compare equal to 0.3.
		{"accumulation-order", runtimeSum(0.1, 0.2), 0.3, 1e-9, true},
		{"exact-differs", runtimeSum(0.1, 0.2), 0.3, 0, false},
		{"nan-left", math.NaN(), 1, 1e-9, false},
		{"nan-right", 1, math.NaN(), 1e-9, false},
		{"nan-both", math.NaN(), math.NaN(), 1e-9, false},
		{"inf-equal", math.Inf(1), math.Inf(1), 1e-9, true},
		{"inf-opposite", math.Inf(1), math.Inf(-1), 1e-9, false},
		{"inf-vs-finite", math.Inf(1), 1e300, 1e-9, false},
		{"signed-zero", math.Copysign(0, -1), 0, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
				t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
			}
			if got := AlmostEqual(c.b, c.a, c.tol); got != c.want {
				t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v (not symmetric)", c.b, c.a, c.tol, got, c.want)
			}
		})
	}
}

func TestExactZero(t *testing.T) {
	if !ExactZero(0) {
		t.Error("ExactZero(0) = false")
	}
	if !ExactZero(math.Copysign(0, -1)) {
		t.Error("ExactZero(-0) = false")
	}
	for _, x := range []float64{1e-300, -1e-300, 1, math.Inf(1), math.NaN()} {
		if ExactZero(x) {
			t.Errorf("ExactZero(%v) = true", x)
		}
	}
}
