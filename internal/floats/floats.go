// Package floats holds the repository's float-comparison helpers.
//
// The simulator's aging, duty-cycle and energy paths accumulate float64
// values whose low bits depend on evaluation order, so exact `==`/`!=`
// on computed floats is forbidden in library code by the floatcmp
// analyzer (internal/lint). This package provides the two sanctioned
// alternatives: tolerance comparison for computed values, and an
// explicitly named exact-zero test for sentinel fields where zero means
// "unset"/"empty" by construction rather than by arithmetic.
package floats

import "math"

// DefaultTol is a forgiving tolerance for comparing table-level
// aggregates (duty-cycle percentages, energy totals) that may have been
// accumulated in different but mathematically equivalent orders.
const DefaultTol = 1e-9

// AlmostEqual reports whether a and b agree to within tol, absolutely
// for small magnitudes and relatively for large ones:
//
//	|a-b| <= tol * max(1, |a|, |b|)
//
// NaN compares unequal to everything, matching IEEE semantics; equal
// infinities compare equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	//nbtilint:allow floatcmp equal infinities (and bit-identical finites) short-circuit exactly
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// An infinity only matches itself; |a-b| would be +Inf and the
		// relative-scale test below would degenerate to Inf <= Inf.
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// ExactZero reports whether x is exactly 0 (of either sign). Use it
// only for sentinel tests where zero is assigned, never computed: an
// unset config field, an empty accumulator that no sample has touched,
// a model constant documented as "0 disables". Naming the intent keeps
// such tests out of the floatcmp analyzer's way without scattering
// waiver comments across call sites.
func ExactZero(x float64) bool {
	//nbtilint:allow floatcmp sentinel zero test is the documented purpose of this helper
	return x == 0
}
