package area

import (
	"testing"
	"testing/quick"
)

func TestDefaultsValidate(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	p := Default45nm()
	p.SensorUm2 = 0
	if err := p.Validate(); err == nil {
		t.Error("zero sensor area accepted")
	}
	s := PaperSpec()
	s.Ports = 1
	if err := s.Validate(); err == nil {
		t.Error("1-port router accepted")
	}
	if _, err := Estimate(p, PaperSpec()); err == nil {
		t.Error("Estimate accepted bad params")
	}
	if _, err := Estimate(Default45nm(), s); err == nil {
		t.Error("Estimate accepted bad spec")
	}
}

// Section III-D headline numbers: 16 sensors ≈ 3.25% of the router,
// control links ≈ 3.8% of one 64-bit data link, total < 4%.
func TestPaperOverheads(t *testing.T) {
	r, err := Estimate(Default45nm(), PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r.SensorCount != 16 {
		t.Errorf("sensor count = %d, want 16 (4 ports x 4 VCs)", r.SensorCount)
	}
	if r.SensorPctOfRouter < 3.0 || r.SensorPctOfRouter > 3.5 {
		t.Errorf("sensors = %.2f%% of router, paper reports 3.25%%", r.SensorPctOfRouter)
	}
	if r.CtrlPctOfDataLink < 3.5 || r.CtrlPctOfDataLink > 4.2 {
		t.Errorf("control links = %.2f%% of data link, paper reports 3.8%%", r.CtrlPctOfDataLink)
	}
	if r.TotalPctOfBaseline >= 4.0 {
		t.Errorf("total overhead = %.2f%%, paper reports < 4%%", r.TotalPctOfBaseline)
	}
}

func TestComponentsPositiveAndSum(t *testing.T) {
	r, err := Estimate(Default45nm(), PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"buffer": r.BufferUm2, "crossbar": r.CrossbarUm2,
		"allocator": r.AllocatorUm2, "outVCstate": r.OutVCStateUm2,
		"data link": r.DataLinkUm2, "sensors": r.SensorsUm2,
		"ctrl link": r.CtrlLinkUm2, "policy": r.PolicyLogicUm2,
	} {
		if v <= 0 {
			t.Errorf("%s area = %v", name, v)
		}
	}
	sum := r.BufferUm2 + r.CrossbarUm2 + r.AllocatorUm2 + r.OutVCStateUm2
	if diff := r.RouterUm2 - sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("router area %.3f != component sum %.3f", r.RouterUm2, sum)
	}
}

func TestOverheadShrinksWithWiderFlits(t *testing.T) {
	// Sensors are per-VC, so a wider datapath dilutes their share.
	p := Default45nm()
	narrow := PaperSpec()
	wide := PaperSpec()
	wide.FlitBits = 128
	rn, err := Estimate(p, narrow)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Estimate(p, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !(rw.SensorPctOfRouter < rn.SensorPctOfRouter) {
		t.Errorf("sensor share did not shrink: %.2f%% -> %.2f%%",
			rn.SensorPctOfRouter, rw.SensorPctOfRouter)
	}
	if !(rw.CtrlPctOfDataLink < rn.CtrlPctOfDataLink) {
		t.Errorf("ctrl-link share did not shrink: %.2f%% -> %.2f%%",
			rn.CtrlPctOfDataLink, rw.CtrlPctOfDataLink)
	}
}

func TestSensorCostGrowsWithVCs(t *testing.T) {
	p := Default45nm()
	s2 := PaperSpec()
	s2.VCsPerPort = 2
	s8 := PaperSpec()
	s8.VCsPerPort = 8
	r2, err := Estimate(p, s2)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Estimate(p, s8)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SensorCount != 8 || r8.SensorCount != 32 {
		t.Errorf("sensor counts = %d/%d, want 8/32", r2.SensorCount, r8.SensorCount)
	}
	if !(r8.SensorsUm2 > r2.SensorsUm2) {
		t.Error("sensor area did not grow with VC count")
	}
}

func TestCtrlWiresScaleLogarithmically(t *testing.T) {
	// 2 VCs: 1+1+1 = 3 wires; 4 VCs: 2+1+2 = 5; 8 VCs: 3+1+3 = 7.
	p := Default45nm()
	wires := func(vcs int) int {
		s := PaperSpec()
		s.VCsPerPort = vcs
		r, err := Estimate(p, s)
		if err != nil {
			t.Fatal(err)
		}
		w := r.CtrlLinkUm2 / (p.WirePitchUm * p.CtrlPitchFactor * p.LinkLengthUm)
		return int(w + 0.5)
	}
	if w := wires(2); w != 3 {
		t.Errorf("2 VCs -> %v ctrl wires, want 3", w)
	}
	if w := wires(4); w != 5 {
		t.Errorf("4 VCs -> %v ctrl wires, want 5", w)
	}
	if w := wires(8); w != 7 {
		t.Errorf("8 VCs -> %v ctrl wires, want 7", w)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFivePortRouter(t *testing.T) {
	// The full mesh router (with local port) must also stay under ~4%.
	s := PaperSpec()
	s.Ports = 5
	r, err := Estimate(Default45nm(), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPctOfBaseline >= 4.5 {
		t.Errorf("5-port total overhead = %.2f%%, want < 4.5%%", r.TotalPctOfBaseline)
	}
}

// Property: all areas positive and overheads bounded for arbitrary sane
// specs.
func TestQuickEstimateSane(t *testing.T) {
	p := Default45nm()
	f := func(ports, vcs, depth, bits uint8) bool {
		s := RouterSpec{
			Ports:       int(ports%6) + 2,
			VCsPerPort:  int(vcs%8) + 1,
			BufferDepth: int(depth%8) + 1,
			FlitBits:    (int(bits%4) + 1) * 32,
		}
		r, err := Estimate(p, s)
		if err != nil {
			return false
		}
		return r.RouterUm2 > 0 && r.SensorPctOfRouter > 0 &&
			r.SensorPctOfRouter < 100 && r.TotalPctOfBaseline < 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestValidateErrorDeterministic guards the fix for the map-range
// validation hazard flagged by nbtilint's detmap analyzer: with several
// fields invalid at once, the reported error must name the same field —
// the first in declaration order — on every invocation, not whichever
// key a randomized map iteration visited first.
func TestValidateErrorDeterministic(t *testing.T) {
	p := Default45nm()
	p.SRAMPeriphery = 0 // second field in declaration order
	p.GateUm2 = -1      // fourth
	p.SensorUm2 = 0     // eighth
	const want = "area: SRAMPeriphery must be positive"
	for i := 0; i < 100; i++ {
		err := p.Validate()
		if err == nil {
			t.Fatal("Validate accepted invalid params")
		}
		if err.Error() != want {
			t.Fatalf("invocation %d: error %q, want %q", i, err, want)
		}
	}
}
