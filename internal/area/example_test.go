package area_test

import (
	"fmt"

	"nbtinoc/internal/area"
)

// The Section III-D analysis: sensors ≈3.25% of the router, control
// links ≈3.8% of a data link, total under 4%.
func ExampleEstimate() {
	rep, err := area.Estimate(area.Default45nm(), area.PaperSpec())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d sensors: %.2f%% of router\n", rep.SensorCount, rep.SensorPctOfRouter)
	fmt.Printf("control links: %.2f%% of a data link\n", rep.CtrlPctOfDataLink)
	fmt.Printf("total overhead under 4%%: %v\n", rep.TotalPctOfBaseline < 4)
	// Output:
	// 16 sensors: 3.33% of router
	// control links: 3.91% of a data link
	// total overhead under 4%: true
}
