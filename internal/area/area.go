// Package area implements an ORION-2.0-style parametric area model for
// the NoC router, its links, and the NBTI-awareness additions of the
// paper (per-VC sensors, Up_Down/Down_Up control links, pre-VA policy
// logic), at a 45 nm technology node.
//
// The purpose of the model is to reproduce Section III-D of the paper:
// with 64-bit flits, 4 VCs per input port and 4-flit buffers, the 16
// NBTI sensors (4 input ports × 4 VCs) cost ≈3.25% of the router, the
// two control links cost ≈3.8% of one 64-bit data link, and the total
// overhead stays below 4% of the baseline tile (router + data links).
// Component models follow ORION's structure — SRAM-cell-based buffers,
// a wire-dominated matrix crossbar, gate-count-based allocators, and
// pitch×length link wiring — with constants representative of a 45 nm
// process.
package area

import (
	"errors"
	"fmt"
)

// Params holds the technology constants of the model. All areas are in
// µm², lengths in µm.
type Params struct {
	// SRAMCellUm2 is the 6T SRAM cell area.
	SRAMCellUm2 float64
	// SRAMPeriphery multiplies raw cell area for decoders/sense-amps.
	SRAMPeriphery float64
	// FlopUm2 is the area of one flip-flop (state registers).
	FlopUm2 float64
	// GateUm2 is the area of one NAND2-equivalent gate.
	GateUm2 float64
	// WirePitchUm is the repeatered global-wire pitch used for data
	// links and the crossbar.
	WirePitchUm float64
	// CtrlPitchFactor scales the pitch for the low-speed, unrepeated
	// sideband control wires of the Up_Down/Down_Up links.
	CtrlPitchFactor float64
	// LinkLengthUm is the tile-to-tile link length.
	LinkLengthUm float64
	// SensorUm2 is the area of one synthesizable NBTI sensor
	// (Singh et al., 45 nm multi-degradation sensor [20]).
	SensorUm2 float64
	// ArbGatesPerReq is the gate count of a round-robin arbiter per
	// requester.
	ArbGatesPerReq float64
	// PolicyGatesPerPort is the synthesized pre-VA policy + comparator
	// logic per output port (reported as negligible by the paper's
	// Encounter synthesis).
	PolicyGatesPerPort float64
}

// Default45nm returns constants representative of a 45 nm node.
func Default45nm() Params {
	return Params{
		SRAMCellUm2:        0.346,
		SRAMPeriphery:      1.3,
		FlopUm2:            3.2,
		GateUm2:            0.8,
		WirePitchUm:        0.28,
		CtrlPitchFactor:    0.5,
		LinkLengthUm:       1000,
		SensorUm2:          16,
		ArbGatesPerReq:     6,
		PolicyGatesPerPort: 12,
	}
}

// Validate reports whether the constants are usable. The fields are
// checked in declaration order — not via a map, whose randomized
// iteration order would make the reported error depend on the run when
// several fields are invalid.
func (p Params) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"SRAMCellUm2", p.SRAMCellUm2},
		{"SRAMPeriphery", p.SRAMPeriphery},
		{"FlopUm2", p.FlopUm2},
		{"GateUm2", p.GateUm2},
		{"WirePitchUm", p.WirePitchUm},
		{"CtrlPitchFactor", p.CtrlPitchFactor},
		{"LinkLengthUm", p.LinkLengthUm},
		{"SensorUm2", p.SensorUm2},
		{"ArbGatesPerReq", p.ArbGatesPerReq},
		{"PolicyGatesPerPort", p.PolicyGatesPerPort},
	} {
		if c.v <= 0 {
			return fmt.Errorf("area: %s must be positive", c.name)
		}
	}
	return nil
}

// RouterSpec describes the router microarchitecture being sized.
type RouterSpec struct {
	// Ports is the router radix. The paper's Section III-D analysis uses
	// the 4-port model of Fig. 1 (N/S/E/W).
	Ports int
	// VCsPerPort is the number of VC buffers per input port.
	VCsPerPort int
	// BufferDepth is the per-VC depth in flits.
	BufferDepth int
	// FlitBits is the flit/link width.
	FlitBits int
}

// PaperSpec returns the configuration of Section III-D: 4 ports, 4 VCs,
// 4-flit buffers, 64-bit flits.
func PaperSpec() RouterSpec {
	return RouterSpec{Ports: 4, VCsPerPort: 4, BufferDepth: 4, FlitBits: 64}
}

// Validate reports whether the spec is usable.
func (s RouterSpec) Validate() error {
	if s.Ports < 2 || s.VCsPerPort < 1 || s.BufferDepth < 1 || s.FlitBits < 1 {
		return errors.New("area: router spec fields must be positive (ports >= 2)")
	}
	return nil
}

// Report is the itemised area estimate.
type Report struct {
	// Baseline router components (µm²).
	BufferUm2     float64
	CrossbarUm2   float64
	AllocatorUm2  float64
	OutVCStateUm2 float64
	RouterUm2     float64

	// Baseline link (one direction, data + flow control wires).
	DataLinkUm2 float64

	// NBTI additions.
	SensorCount    int
	SensorsUm2     float64
	CtrlLinkUm2    float64 // Up_Down + Down_Up for one channel
	PolicyLogicUm2 float64

	// Derived overheads, matching the paper's accounting.
	SensorPctOfRouter  float64 // paper: 3.25%
	CtrlPctOfDataLink  float64 // paper: 3.8%
	TotalPctOfBaseline float64 // paper: < 4%
}

// ceilLog2 returns ⌈log2(n)⌉ with a minimum of 1 wire.
func ceilLog2(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Estimate sizes a router and its NBTI additions.
func Estimate(p Params, s RouterSpec) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	var r Report

	// Input buffers: ports × VCs × depth × width SRAM bits.
	bits := float64(s.Ports * s.VCsPerPort * s.BufferDepth * s.FlitBits)
	r.BufferUm2 = bits * p.SRAMCellUm2 * p.SRAMPeriphery

	// Matrix crossbar: (ports × width × pitch)² wiring area.
	side := float64(s.Ports*s.FlitBits) * p.WirePitchUm
	r.CrossbarUm2 = side * side

	// Allocators: VA (one arbiter per output port over ports×VCs
	// requesters) + SA (per-input VC arbiters and per-output port
	// arbiters).
	vaGates := float64(s.Ports) * float64(s.Ports*s.VCsPerPort) * p.ArbGatesPerReq
	saGates := float64(s.Ports)*float64(s.VCsPerPort)*p.ArbGatesPerReq +
		float64(s.Ports)*float64(s.Ports)*p.ArbGatesPerReq
	r.AllocatorUm2 = (vaGates + saGates) * p.GateUm2

	// outVCstate registers: per output port × VC: state (1b), tail (1b),
	// credits (⌈log2(depth+1)⌉ bits).
	stateBits := 2 + ceilLog2(s.BufferDepth+1)
	r.OutVCStateUm2 = float64(s.Ports*s.VCsPerPort*stateBits) * p.FlopUm2

	r.RouterUm2 = r.BufferUm2 + r.CrossbarUm2 + r.AllocatorUm2 + r.OutVCStateUm2

	// One data link: width wires at full pitch over the tile length.
	r.DataLinkUm2 = float64(s.FlitBits) * p.WirePitchUm * p.LinkLengthUm

	// NBTI additions. Sensors: one per VC buffer.
	r.SensorCount = s.Ports * s.VCsPerPort
	r.SensorsUm2 = float64(r.SensorCount) * p.SensorUm2

	// Control links: Up_Down carries log2(V) VC-ID wires + 1 enable;
	// Down_Up carries log2(V) wires (no enable — a most degraded VC is
	// always valid). Sideband wires run at reduced pitch.
	vidBits := ceilLog2(s.VCsPerPort)
	ctrlWires := float64(vidBits+1) + float64(vidBits)
	r.CtrlLinkUm2 = ctrlWires * p.WirePitchUm * p.CtrlPitchFactor * p.LinkLengthUm

	// Pre-VA policy + most-degraded comparator logic.
	r.PolicyLogicUm2 = float64(s.Ports) * p.PolicyGatesPerPort * p.GateUm2

	// Overheads with the paper's accounting.
	r.SensorPctOfRouter = 100 * r.SensorsUm2 / r.RouterUm2
	r.CtrlPctOfDataLink = 100 * r.CtrlLinkUm2 / r.DataLinkUm2
	// Baseline tile: router + one data link per port direction pair
	// (each inter-router link is shared by two tiles → ports/2 links).
	links := float64(s.Ports) / 2
	base := r.RouterUm2 + links*r.DataLinkUm2
	add := r.SensorsUm2 + links*r.CtrlLinkUm2 + r.PolicyLogicUm2
	r.TotalPctOfBaseline = 100 * add / base
	return r, nil
}
