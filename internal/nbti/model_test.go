package nbti

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValidate(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatalf("Default45nm invalid: %v", err)
	}
	if err := Default32nm().Validate(); err != nil {
		t.Fatalf("Default32nm invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Vdd = 0 },
		func(p *Params) { p.Vth0 = 0 },
		func(p *Params) { p.Vth0 = p.Vdd + 1 },
		func(p *Params) { p.TempK = -1 },
		func(p *Params) { p.Tclk = 0 },
		func(p *Params) { p.Tox = 0 },
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.N = 0.7 },
		func(p *Params) { p.D0 = 0 },
		func(p *Params) { p.A = -1 },
	}
	for i, mutate := range cases {
		p := Default45nm()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad params", i)
		}
	}
}

func TestCalibration50mVAt3Years(t *testing.T) {
	for _, p := range []Params{Default45nm(), Default32nm()} {
		got := p.DeltaVth(1, 3*SecondsPerYear)
		if math.Abs(got-0.050) > 1e-9 {
			t.Errorf("Vth0=%v: ΔVth(1, 3y) = %v V, want 0.050", p.Vth0, got)
		}
	}
}

func TestDeltaVthZeroCases(t *testing.T) {
	p := Default45nm()
	if v := p.DeltaVth(0, SecondsPerYear); v != 0 {
		t.Errorf("ΔVth(α=0) = %v, want 0", v)
	}
	if v := p.DeltaVth(0.5, 0); v != 0 {
		t.Errorf("ΔVth(t=0) = %v, want 0", v)
	}
	if v := p.DeltaVth(-0.3, SecondsPerYear); v != 0 {
		t.Errorf("ΔVth(α<0) = %v, want 0 (clamped)", v)
	}
}

func TestDeltaVthMonotonicInAlpha(t *testing.T) {
	p := Default45nm()
	const tEnd = 3 * SecondsPerYear
	prev := 0.0
	for alpha := 0.05; alpha <= 1.0001; alpha += 0.05 {
		v := p.DeltaVth(alpha, tEnd)
		if v <= prev {
			t.Fatalf("ΔVth not increasing at α=%v: %v <= %v", alpha, v, prev)
		}
		prev = v
	}
}

func TestDeltaVthMonotonicInTime(t *testing.T) {
	p := Default45nm()
	prev := 0.0
	for _, yrs := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		v := p.DeltaVth(0.8, yrs*SecondsPerYear)
		if v <= prev {
			t.Fatalf("ΔVth not increasing at t=%vy: %v <= %v", yrs, v, prev)
		}
		prev = v
	}
}

// The long-term model behaves as ΔVth ∝ α^n for fixed large t (the
// recovery fraction's α-dependence vanishes because C·Tclk << C·t).
func TestAlphaPowerLaw(t *testing.T) {
	p := Default45nm()
	const tEnd = 3 * SecondsPerYear
	r1 := p.DeltaVth(0.5, tEnd) / p.DeltaVth(1.0, tEnd)
	want := math.Pow(0.5, p.N)
	if math.Abs(r1-want) > 0.02 {
		t.Errorf("ΔVth(0.5)/ΔVth(1) = %v, want ≈ %v", r1, want)
	}
}

// Reproduces the headline magnitude: a most-degraded VC held near ~0.9%
// duty-cycle by sensor-wise saves ≈54% ΔVth versus an always-on baseline.
func TestSavingMatchesPaperMagnitude(t *testing.T) {
	p := Default45nm()
	s := p.Saving(0.009, 1.0, 3*SecondsPerYear)
	if s < 0.50 || s > 0.60 {
		t.Errorf("saving at α=0.9%% = %.1f%%, want ≈54%%", 100*s)
	}
}

func TestSavingEdges(t *testing.T) {
	p := Default45nm()
	if s := p.Saving(1, 1, SecondsPerYear); math.Abs(s) > 1e-12 {
		t.Errorf("Saving(1,1) = %v, want 0", s)
	}
	if s := p.Saving(0.5, 0, SecondsPerYear); s != 0 {
		t.Errorf("Saving with zero baseline = %v, want 0", s)
	}
	if s := p.Saving(0, 1, SecondsPerYear); s != 1 {
		t.Errorf("Saving(0,1) = %v, want 1", s)
	}
}

func TestBetaTRange(t *testing.T) {
	p := Default45nm()
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, tt := range []float64{0, 1, 3600, SecondsPerYear, 50 * SecondsPerYear} {
			b := p.BetaT(alpha, tt)
			if b < 0 || b >= 1 {
				t.Fatalf("BetaT(%v, %v) = %v out of [0,1)", alpha, tt, b)
			}
		}
	}
}

func TestBetaTIncreasingInTime(t *testing.T) {
	p := Default45nm()
	prev := -1.0
	for _, tt := range []float64{1, 1e3, 1e6, 1e8, 1e9} {
		b := p.BetaT(0.5, tt)
		if b <= prev {
			t.Fatalf("BetaT not increasing at t=%v: %v <= %v", tt, b, prev)
		}
		prev = b
	}
}

func TestLifetimeToBudget(t *testing.T) {
	p := Default45nm()
	// α=1 reaches 50 mV at exactly 3 years by calibration.
	lt := p.LifetimeToBudget(1, 0.050)
	if math.Abs(lt-3*SecondsPerYear) > 0.01*SecondsPerYear {
		t.Errorf("lifetime(α=1, 50mV) = %.2f y, want 3", lt/SecondsPerYear)
	}
	// Lower duty-cycle must extend lifetime.
	ltLow := p.LifetimeToBudget(0.2, 0.050)
	if !(ltLow > lt) {
		t.Errorf("lifetime(α=0.2) = %v not beyond lifetime(α=1) = %v", ltLow, lt)
	}
	// Never reached within 100 years -> +Inf.
	if v := p.LifetimeToBudget(0.001, 0.050); !math.IsInf(v, 1) {
		t.Errorf("lifetime(α=0.1%%) = %v, want +Inf", v)
	}
	// Budget of 0 is exceeded immediately.
	if v := p.LifetimeToBudget(1, 0); v != 0 {
		t.Errorf("lifetime(budget=0) = %v, want 0", v)
	}
}

func TestLifetimeRoundTrip(t *testing.T) {
	p := Default45nm()
	for _, alpha := range []float64{0.3, 0.6, 1.0} {
		lt := p.LifetimeToBudget(alpha, 0.040)
		if math.IsInf(lt, 1) || lt == 0 {
			continue
		}
		if got := p.DeltaVth(alpha, lt); math.Abs(got-0.040) > 1e-6 {
			t.Errorf("ΔVth at solved lifetime = %v, want 0.040", got)
		}
	}
}

func TestKvPositive(t *testing.T) {
	p := Default45nm()
	if kv := p.Kv(); kv <= 0 {
		t.Fatalf("Kv = %v, want > 0", kv)
	}
	// Hotter device degrades faster: Kv grows with temperature.
	hot := p
	hot.TempK = 400
	if hot.Kv() <= p.Kv() {
		t.Errorf("Kv(400K) = %v not above Kv(350K) = %v", hot.Kv(), p.Kv())
	}
}

func TestQuickDeltaVthNonNegativeAndMonotone(t *testing.T) {
	p := Default45nm()
	f := func(a1, a2, tt uint16) bool {
		alpha1 := float64(a1) / 65535
		alpha2 := float64(a2) / 65535
		if alpha1 > alpha2 {
			alpha1, alpha2 = alpha2, alpha1
		}
		tm := 1e4 + float64(tt)*1e4
		v1, v2 := p.DeltaVth(alpha1, tm), p.DeltaVth(alpha2, tm)
		return v1 >= 0 && v2 >= 0 && v1 <= v2+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDeltaVth(b *testing.B) {
	p := Default45nm()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.DeltaVth(0.5, SecondsPerYear)
	}
	_ = sink
}

func TestKvZeroOverdrive(t *testing.T) {
	p := Default45nm()
	p.Vth0 = p.Vdd // no overdrive: Kv collapses to zero
	if kv := p.Kv(); kv != 0 {
		t.Fatalf("Kv with Vth0 = Vdd is %v, want 0", kv)
	}
}

func TestBetaTNegativeTimeClamped(t *testing.T) {
	p := Default45nm()
	b := p.BetaT(0.5, -10)
	if b < 0 || b >= 1 {
		t.Fatalf("BetaT with negative t = %v", b)
	}
}

func TestDeltaVthZeroPrefactor(t *testing.T) {
	p := Default45nm()
	p.A = 0
	if v := p.DeltaVth(1, SecondsPerYear); v != 0 {
		t.Fatalf("ΔVth with A=0 is %v", v)
	}
}
