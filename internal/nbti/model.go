// Package nbti implements the analytical NBTI (Negative Bias Temperature
// Instability) threshold-voltage degradation model used by the paper.
//
// The model is the long-term closed form of the Reaction-Diffusion
// framework (Bhardwaj et al., CICC'06; Wang et al.; surveyed by Chan et
// al., DATE'11 — reference [7] of the paper), quoted in the paper as
// Equation 1:
//
//	|ΔVth| ≈ ( sqrt(Kv² · Tclk · α) / (1 − βt^(1/2n)) )^(2n)
//
// where α is the stress probability of the PMOS devices (the paper's
// NBTI-duty-cycle expressed as a fraction in [0,1]), Tclk is the clock
// period, Kv folds the supply-voltage and temperature dependence, βt is
// the recovery fraction (temperature- and time-dependent) and n is the
// time exponent, 1/6 for H2 diffusion [18].
//
// Absolute constants in the R-D literature vary by process; this package
// keeps the physical structure (field/temperature activation, diffusion
// distance) and calibrates the single pre-factor so that a device under
// permanent stress (α = 1) at default 45 nm conditions degrades by 50 mV
// after three years — the magnitude reported for sub-1.2 V devices in the
// paper's reference [2]. All comparative results (policy-vs-policy ΔVth
// savings) depend only on the α and t dependence, which is preserved
// exactly.
package nbti

import (
	"errors"
	"fmt"
	"math"

	"nbtinoc/internal/floats"
)

// Boltzmann constant in eV/K.
const BoltzmannEV = 8.617333262e-5

// SecondsPerYear is the conversion used for lifetime projections.
const SecondsPerYear = 365.25 * 24 * 3600

// Params collects the technology and environment parameters of the
// long-term NBTI model. All lengths are in centimetres, energies in eV,
// voltages in volts, times in seconds and temperatures in kelvin.
type Params struct {
	// Vdd is the supply voltage; a stressed PMOS sees Vgs = -Vdd.
	Vdd float64
	// Vth0 is the nominal initial threshold voltage magnitude.
	Vth0 float64
	// TempK is the operating temperature.
	TempK float64
	// Tclk is the clock period.
	Tclk float64
	// Tox is the effective oxide thickness in cm.
	Tox float64
	// Te is the effective hydrogen trapping depth, usually equal to Tox
	// for thin oxides.
	Te float64
	// N is the time exponent of the R-D model (1/6 for H2 diffusion).
	N float64
	// Ea is the diffusion activation energy in eV.
	Ea float64
	// E0 is the field acceleration constant in V/cm.
	E0 float64
	// D0 is the diffusion pre-factor in cm²/s.
	D0 float64
	// Xi1 and Xi2 are the R-D recovery fitting constants.
	Xi1, Xi2 float64
	// A is the voltage/temperature pre-factor of Kv. Use Calibrate to
	// derive it from a target degradation instead of setting it directly.
	A float64
}

// Default45nm returns the model parameters for the paper's 45 nm node
// (Vth0 = 0.180 V, Vdd = 1.2 V, 1 GHz clock), with the pre-factor
// calibrated so ΔVth(α=1, 3 years) = 50 mV.
func Default45nm() Params {
	p := Params{
		Vdd:   1.2,
		Vth0:  0.180,
		TempK: 350,
		Tclk:  1e-9,
		Tox:   1.3e-7,
		Te:    1.3e-7,
		N:     1.0 / 6.0,
		Ea:    0.13,
		E0:    8.0e6,
		D0:    1e-16,
		Xi1:   0.9,
		Xi2:   0.5,
	}
	p.A = calibrateA(p, 0.050, 3*SecondsPerYear)
	return p
}

// Default32nm returns parameters for the paper's 32 nm corner
// (Vth0 = 0.160 V). The thinner oxide raises the vertical field, so the
// same calibration target is reached with a smaller pre-factor.
func Default32nm() Params {
	p := Default45nm()
	p.Vth0 = 0.160
	p.Tox = 1.1e-7
	p.Te = 1.1e-7
	p.A = calibrateA(p, 0.050, 3*SecondsPerYear)
	return p
}

// Validate reports whether the parameter set is physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.Vdd <= 0:
		return errors.New("nbti: Vdd must be positive")
	case p.Vth0 <= 0 || p.Vth0 >= p.Vdd:
		return fmt.Errorf("nbti: Vth0 = %v must be in (0, Vdd)", p.Vth0)
	case p.TempK <= 0:
		return errors.New("nbti: TempK must be positive")
	case p.Tclk <= 0:
		return errors.New("nbti: Tclk must be positive")
	case p.Tox <= 0 || p.Te <= 0:
		return errors.New("nbti: oxide thicknesses must be positive")
	case p.N <= 0 || p.N >= 0.5:
		return fmt.Errorf("nbti: time exponent n = %v out of (0, 0.5)", p.N)
	case p.D0 <= 0:
		return errors.New("nbti: D0 must be positive")
	case p.A < 0:
		return errors.New("nbti: pre-factor A must be non-negative")
	}
	return nil
}

// Kv returns the voltage/temperature-dependent factor of Equation 1:
//
//	Kv = A · tox · sqrt(Cox·(Vgs − Vth)) · exp(Eox/E0) · exp(−Ea/(k·T))
//
// with Eox = (Vgs − Vth)/tox the vertical oxide field.
func (p Params) Kv() float64 {
	vov := p.Vdd - p.Vth0
	if vov <= 0 {
		return 0
	}
	const epsOx = 3.9 * 8.8541878128e-14 // F/cm
	cox := epsOx / p.Tox
	eox := vov / p.Tox
	return p.A * p.Tox * math.Sqrt(cox*vov) *
		math.Exp(eox/p.E0) * math.Exp(-p.Ea/(BoltzmannEV*p.TempK))
}

// diffusion returns the temperature-activated diffusion constant
// D = D0 · exp(−Ea/kT) in cm²/s.
func (p Params) diffusion() float64 {
	return p.D0 * math.Exp(-p.Ea/(BoltzmannEV*p.TempK))
}

// BetaT returns the recovery fraction βt of the long-term model at total
// elapsed time t (seconds) under stress probability alpha:
//
//	βt = 1 − (2·ξ1·te + sqrt(ξ2·C·(1−α)·Tclk)) / (2·tox + sqrt(C·t))
//
// The returned value is clamped to [0, 1).
func (p Params) BetaT(alpha, t float64) float64 {
	if t < 0 {
		t = 0
	}
	alpha = clamp01(alpha)
	c := p.diffusion()
	num := 2*p.Xi1*p.Te + math.Sqrt(p.Xi2*c*(1-alpha)*p.Tclk)
	den := 2*p.Tox + math.Sqrt(c*t)
	b := 1 - num/den
	if b < 0 {
		return 0
	}
	if b >= 1 {
		return math.Nextafter(1, 0)
	}
	return b
}

// DeltaVth returns the long-term threshold-voltage shift magnitude (in
// volts) after total elapsed time t (seconds) at stress probability alpha
// in [0, 1]. alpha is the NBTI-duty-cycle expressed as a fraction.
func (p Params) DeltaVth(alpha, t float64) float64 {
	alpha = clamp01(alpha)
	if floats.ExactZero(alpha) || t <= 0 || floats.ExactZero(p.A) {
		// Exact-zero sentinels: clamp01 pins non-positive alpha to 0,
		// and A == 0 is the documented "model disabled" setting.
		return 0
	}
	kv := p.Kv()
	beta := p.BetaT(alpha, t)
	den := 1 - math.Pow(beta, 1/(2*p.N))
	if den <= 0 {
		return math.Inf(1)
	}
	x := math.Sqrt(kv*kv*p.Tclk*alpha) / den
	return math.Pow(x, 2*p.N)
}

// Saving returns the fractional ΔVth reduction achieved by running a
// device at duty-cycle alphaPolicy instead of alphaBaseline for time t:
// 1 − ΔVth(alphaPolicy)/ΔVth(alphaBaseline). It returns 0 when the
// baseline shift is zero.
func (p Params) Saving(alphaPolicy, alphaBaseline, t float64) float64 {
	base := p.DeltaVth(alphaBaseline, t)
	if floats.ExactZero(base) {
		// DeltaVth returns an exact 0 only through its sentinel paths.
		return 0
	}
	return 1 - p.DeltaVth(alphaPolicy, t)/base
}

// LifetimeToBudget returns the time (seconds) at which ΔVth under the
// given alpha reaches budget volts, found by bisection over
// [1 hour, 100 years]. It returns +Inf if the budget is never reached in
// that window and 0 if it is exceeded immediately.
func (p Params) LifetimeToBudget(alpha, budget float64) float64 {
	const lo0, hi0 = 3600.0, 100 * SecondsPerYear
	if p.DeltaVth(alpha, lo0) >= budget {
		return 0
	}
	if p.DeltaVth(alpha, hi0) < budget {
		return math.Inf(1)
	}
	lo, hi := lo0, hi0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if p.DeltaVth(alpha, mid) < budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// calibrateA solves for the Kv pre-factor A such that
// DeltaVth(alpha=1, t) = target, by exploiting that ΔVth is proportional
// to Kv^(2n) and hence to A^(2n).
func calibrateA(p Params, target, t float64) float64 {
	p.A = 1
	ref := p.DeltaVth(1, t)
	if floats.ExactZero(ref) || math.IsInf(ref, 1) {
		return 0
	}
	// target = ref · A^(2n)  =>  A = (target/ref)^(1/2n)
	return math.Pow(target/ref, 1/(2*p.N))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
