package nbti_test

import (
	"fmt"

	"nbtinoc/internal/nbti"
)

// The long-term model projects the threshold shift of a buffer from its
// NBTI-duty-cycle: at full stress the default 45 nm parameters are
// calibrated to 50 mV after three years.
func ExampleParams_DeltaVth() {
	p := nbti.Default45nm()
	for _, alpha := range []float64{1.0, 0.5, 0.1} {
		dv := p.DeltaVth(alpha, 3*nbti.SecondsPerYear)
		fmt.Printf("duty %3.0f%% -> ΔVth %.1f mV\n", 100*alpha, 1000*dv)
	}
	// Output:
	// duty 100% -> ΔVth 50.0 mV
	// duty  50% -> ΔVth 44.5 mV
	// duty  10% -> ΔVth 34.1 mV
}

// A StressTracker accumulates the per-cycle stress/recovery history of
// one buffer; its duty-cycle feeds the model.
func ExampleStressTracker() {
	var t nbti.StressTracker
	t.Stress(300, 120) // 300 powered cycles, 120 of them holding flits
	t.Recover(700)     // 700 power-gated cycles
	fmt.Printf("NBTI-duty-cycle: %.0f%%\n", t.DutyCycle())
	fmt.Printf("alpha: %.2f\n", t.Alpha())
	// Output:
	// NBTI-duty-cycle: 30%
	// alpha: 0.30
}

// History composes multi-epoch operation: a year of heavy stress
// followed by a year of gated operation ages far less than two heavy
// years.
func ExampleHistory() {
	p := nbti.Default45nm()
	var heavy, mixed nbti.History
	_ = heavy.AddEpoch(1.0, 2*nbti.SecondsPerYear)
	_ = mixed.AddEpoch(1.0, 1*nbti.SecondsPerYear)
	_ = mixed.AddEpoch(0.05, 1*nbti.SecondsPerYear)
	fmt.Printf("always-on : %.1f mV\n", 1000*heavy.DeltaVth(p))
	fmt.Printf("then gated: %.1f mV\n", 1000*mixed.DeltaVth(p))
	// Output:
	// always-on : 46.9 mV
	// then gated: 42.1 mV
}
