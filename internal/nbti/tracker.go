package nbti

import "fmt"

// StressTracker accumulates per-cycle NBTI stress/recovery statistics for
// one device (in this repository: one VC buffer's critical PMOS network).
//
// Following the paper's definition, a cycle is a *stress* cycle whenever
// the buffer is powered — storing flits or idle with a (meaningless)
// input vector applied — and a *recovery* cycle when it is power gated.
// The NBTI-duty-cycle is stress/(stress+recovery)·100.
type StressTracker struct {
	stress   uint64
	recovery uint64
	// busy counts the subset of stress cycles during which the buffer
	// actually held at least one flit; it is diagnostic only and does not
	// enter the duty-cycle.
	busy uint64
	// met mirrors span flushes into the process metrics registry,
	// resolved when the tracker's Device is built; zero (all-nil
	// handles) when instrumentation is disabled.
	met trackerMetrics
}

// Stress records n powered cycles, of which busy held at least one flit.
// It panics if busy > n.
func (t *StressTracker) Stress(n, busy uint64) {
	if busy > n {
		panic(fmt.Sprintf("nbti: busy %d > stress %d", busy, n))
	}
	t.stress += n
	t.busy += busy
	t.met.stressSpans.Inc()
	t.met.spanLen.Observe(n)
}

// Recover records n power-gated cycles.
func (t *StressTracker) Recover(n uint64) {
	t.recovery += n
	t.met.recoverySpans.Inc()
	t.met.spanLen.Observe(n)
}

// StressCycles returns the accumulated stress cycle count.
func (t *StressTracker) StressCycles() uint64 { return t.stress }

// RecoveryCycles returns the accumulated recovery cycle count.
func (t *StressTracker) RecoveryCycles() uint64 { return t.recovery }

// BusyCycles returns the accumulated flit-holding cycle count.
func (t *StressTracker) BusyCycles() uint64 { return t.busy }

// TotalCycles returns stress + recovery cycles.
func (t *StressTracker) TotalCycles() uint64 { return t.stress + t.recovery }

// DutyCycle returns the NBTI-duty-cycle in percent (0..100). It returns 0
// before any cycle has been recorded.
func (t *StressTracker) DutyCycle() float64 {
	total := t.stress + t.recovery
	if total == 0 {
		return 0
	}
	return 100 * float64(t.stress) / float64(total)
}

// Alpha returns the stress probability as a fraction in [0, 1], i.e.
// DutyCycle()/100, suitable for Params.DeltaVth.
func (t *StressTracker) Alpha() float64 { return t.DutyCycle() / 100 }

// Reset clears all counters, e.g. at the end of a warm-up window. The
// registry handles survive the reset: a warm-up boundary clears the
// physics history, not the run's observability stream.
func (t *StressTracker) Reset() { t.stress, t.recovery, t.busy = 0, 0, 0 }

// Merge adds the counters of other into t.
func (t *StressTracker) Merge(other *StressTracker) {
	t.stress += other.stress
	t.recovery += other.recovery
	t.busy += other.busy
}

// Device couples a stress history with an initial threshold voltage (from
// process variation) and a model parameter set, yielding the absolute
// threshold voltage used by sensors to rank degradation.
type Device struct {
	// Vth0 is this device's own initial threshold voltage magnitude,
	// sampled from the process-variation distribution.
	Vth0 float64
	// Tracker accumulates the device's stress history.
	Tracker StressTracker
	// Model holds the technology parameters used for ΔVth extraction.
	Model Params
}

// NewDevice returns a Device with the given initial Vth and model.
func NewDevice(vth0 float64, model Params) *Device {
	d := &Device{}
	d.Init(vth0, model)
	return d
}

// Init initialises the device in place with the given initial Vth and
// model — the constructor for devices living in caller-owned arenas.
func (d *Device) Init(vth0 float64, model Params) {
	*d = Device{Vth0: vth0, Model: model}
	d.Tracker.met = newTrackerMetrics()
}

// DeltaVth returns the device's accumulated threshold shift assuming its
// observed duty-cycle has been sustained for wallclock seconds.
func (d *Device) DeltaVth(wallclock float64) float64 {
	return d.Model.DeltaVth(d.Tracker.Alpha(), wallclock)
}

// Vth returns the device's absolute threshold voltage magnitude after
// wallclock seconds: Vth0 + ΔVth.
func (d *Device) Vth(wallclock float64) float64 {
	return d.Vth0 + d.DeltaVth(wallclock)
}
