package nbti

import "nbtinoc/internal/metrics"

// Exported instrument names for the span-batched stress accounting.
const (
	// MetricStressSpans counts flushed stress spans (powered intervals
	// charged in one Tracker.Stress call).
	MetricStressSpans = "nbti_stress_spans_total"
	// MetricRecoverySpans counts flushed recovery spans (power-gated
	// intervals charged in one Tracker.Recover call).
	MetricRecoverySpans = "nbti_recovery_spans_total"
	// MetricSpanCycles is a histogram of flushed span lengths in cycles;
	// long spans are the activity-gated engine's batching win.
	MetricSpanCycles = "nbti_span_cycles"
)

// spanBuckets are the histogram bounds for MetricSpanCycles: powers of
// four from 1 to 256k cycles, resolving both per-cycle churn (spans of
// 1) and deep quiescence.
var spanBuckets = []uint64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}

// trackerMetrics are the per-tracker handles into the process registry;
// all nil when instrumentation is disabled.
type trackerMetrics struct {
	stressSpans   *metrics.Counter
	recoverySpans *metrics.Counter
	spanLen       *metrics.Histogram
}

// newTrackerMetrics resolves the span instruments from the process
// default registry.
func newTrackerMetrics() trackerMetrics {
	r := metrics.Default()
	if r == nil {
		return trackerMetrics{}
	}
	return trackerMetrics{
		stressSpans: r.Counter(MetricStressSpans,
			"Flushed stress spans (powered intervals batched into one charge)."),
		recoverySpans: r.Counter(MetricRecoverySpans,
			"Flushed recovery spans (power-gated intervals batched into one charge)."),
		spanLen: r.Histogram(MetricSpanCycles,
			"Length in cycles of flushed stress/recovery spans.", spanBuckets),
	}
}
