package nbti

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTrackerZeroValue(t *testing.T) {
	var tr StressTracker
	if tr.DutyCycle() != 0 {
		t.Errorf("zero tracker duty-cycle = %v", tr.DutyCycle())
	}
	if tr.TotalCycles() != 0 {
		t.Errorf("zero tracker total = %v", tr.TotalCycles())
	}
}

func TestTrackerDutyCycle(t *testing.T) {
	var tr StressTracker
	tr.Stress(30, 10)
	tr.Recover(70)
	if got := tr.DutyCycle(); math.Abs(got-30) > 1e-12 {
		t.Errorf("duty-cycle = %v, want 30", got)
	}
	if got := tr.Alpha(); math.Abs(got-0.30) > 1e-12 {
		t.Errorf("alpha = %v, want 0.30", got)
	}
	if tr.BusyCycles() != 10 {
		t.Errorf("busy = %d, want 10", tr.BusyCycles())
	}
	if tr.StressCycles() != 30 || tr.RecoveryCycles() != 70 {
		t.Errorf("counters = %d/%d, want 30/70", tr.StressCycles(), tr.RecoveryCycles())
	}
}

func TestTrackerAllStress(t *testing.T) {
	var tr StressTracker
	tr.Stress(100, 100)
	if got := tr.DutyCycle(); got != 100 {
		t.Errorf("always-on duty-cycle = %v, want 100", got)
	}
}

func TestTrackerPanicsOnBusyOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stress(1, 2) did not panic")
		}
	}()
	var tr StressTracker
	tr.Stress(1, 2)
}

func TestTrackerReset(t *testing.T) {
	var tr StressTracker
	tr.Stress(10, 5)
	tr.Recover(10)
	tr.Reset()
	if tr.TotalCycles() != 0 || tr.BusyCycles() != 0 {
		t.Errorf("reset left counters: %+v", tr)
	}
}

func TestTrackerMerge(t *testing.T) {
	var a, b StressTracker
	a.Stress(10, 4)
	a.Recover(5)
	b.Stress(20, 6)
	b.Recover(15)
	a.Merge(&b)
	if a.StressCycles() != 30 || a.RecoveryCycles() != 20 || a.BusyCycles() != 10 {
		t.Errorf("merge result = %+v", a)
	}
}

func TestQuickDutyCycleBounds(t *testing.T) {
	f := func(s, r uint32, busyFrac uint8) bool {
		var tr StressTracker
		busy := uint64(s) * uint64(busyFrac) / 255
		tr.Stress(uint64(s), busy)
		tr.Recover(uint64(r))
		d := tr.DutyCycle()
		return d >= 0 && d <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeviceVthAccumulates(t *testing.T) {
	p := Default45nm()
	d := NewDevice(0.185, p)
	d.Tracker.Stress(80, 40)
	d.Tracker.Recover(20)
	const wall = 3 * SecondsPerYear
	wantShift := p.DeltaVth(0.8, wall)
	if got := d.DeltaVth(wall); math.Abs(got-wantShift) > 1e-12 {
		t.Errorf("device ΔVth = %v, want %v", got, wantShift)
	}
	if got := d.Vth(wall); math.Abs(got-(0.185+wantShift)) > 1e-12 {
		t.Errorf("device Vth = %v, want %v", got, 0.185+wantShift)
	}
}

func TestDeviceRankingFollowsDutyCycle(t *testing.T) {
	// Two identical devices; the one with higher duty-cycle must show the
	// higher Vth after any positive wallclock time.
	p := Default45nm()
	lo := NewDevice(0.180, p)
	hi := NewDevice(0.180, p)
	lo.Tracker.Stress(20, 10)
	lo.Tracker.Recover(80)
	hi.Tracker.Stress(90, 10)
	hi.Tracker.Recover(10)
	if !(hi.Vth(SecondsPerYear) > lo.Vth(SecondsPerYear)) {
		t.Errorf("ranking violated: hi=%v lo=%v",
			hi.Vth(SecondsPerYear), lo.Vth(SecondsPerYear))
	}
}

func TestDeviceVth0DominatesEarly(t *testing.T) {
	// Process variation: with equal duty-cycles the higher-Vth0 device
	// stays the most degraded, as the paper's MD VC selection assumes.
	p := Default45nm()
	a := NewDevice(0.190, p)
	b := NewDevice(0.175, p)
	for _, d := range []*Device{a, b} {
		d.Tracker.Stress(50, 25)
		d.Tracker.Recover(50)
	}
	if !(a.Vth(SecondsPerYear) > b.Vth(SecondsPerYear)) {
		t.Error("higher Vth0 device is not the most degraded")
	}
}
