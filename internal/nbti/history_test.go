package nbti

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistoryValidation(t *testing.T) {
	var h History
	if err := h.AddEpoch(-0.1, 100); err == nil {
		t.Error("negative alpha accepted")
	}
	if err := h.AddEpoch(1.1, 100); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if err := h.AddEpoch(0.5, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if h.Len() != 0 {
		t.Error("rejected epochs were recorded")
	}
}

func TestEffectiveAlpha(t *testing.T) {
	var h History
	if h.EffectiveAlpha() != 0 || h.TotalSeconds() != 0 {
		t.Error("empty history not zero")
	}
	if err := h.AddEpoch(1.0, 100); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEpoch(0.0, 300); err != nil {
		t.Fatal(err)
	}
	if got := h.EffectiveAlpha(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("effective alpha = %v, want 0.25", got)
	}
	if h.TotalSeconds() != 400 || h.Len() != 2 {
		t.Errorf("totals wrong: %v s, %d epochs", h.TotalSeconds(), h.Len())
	}
}

func TestHistoryMatchesSingleEpoch(t *testing.T) {
	p := Default45nm()
	var h History
	if err := h.AddEpoch(0.6, 2*SecondsPerYear); err != nil {
		t.Fatal(err)
	}
	want := p.DeltaVth(0.6, 2*SecondsPerYear)
	if got := h.DeltaVth(p); math.Abs(got-want) > 1e-15 {
		t.Errorf("single-epoch history = %v, want %v", got, want)
	}
}

func TestHistorySplitInvariance(t *testing.T) {
	// Splitting a constant-alpha interval into epochs must not change
	// the result.
	p := Default45nm()
	var whole, split History
	_ = whole.AddEpoch(0.4, 3*SecondsPerYear)
	for i := 0; i < 6; i++ {
		_ = split.AddEpoch(0.4, 0.5*SecondsPerYear)
	}
	if a, b := whole.DeltaVth(p), split.DeltaVth(p); math.Abs(a-b) > 1e-15 {
		t.Errorf("split changed ΔVth: %v vs %v", a, b)
	}
}

func TestAddFromTracker(t *testing.T) {
	var tr StressTracker
	tr.Stress(30, 0)
	tr.Recover(70)
	var h History
	if err := h.AddFromTracker(&tr, SecondsPerYear); err != nil {
		t.Fatal(err)
	}
	if got := h.EffectiveAlpha(); math.Abs(got-0.30) > 1e-12 {
		t.Errorf("tracker epoch alpha = %v, want 0.30", got)
	}
}

func TestRemainingLifetime(t *testing.T) {
	p := Default45nm()
	var h History
	_ = h.AddEpoch(1.0, 1*SecondsPerYear) // one hard year

	// Continuing at full stress must reach the 50 mV budget in about two
	// more years (calibration: α=1 hits 50 mV at exactly 3 years).
	rem := h.RemainingLifetime(p, 1.0, 0.050)
	if math.Abs(rem-2*SecondsPerYear) > 0.02*SecondsPerYear {
		t.Errorf("remaining at α=1 = %.2f y, want ≈2", rem/SecondsPerYear)
	}
	// A gentler future extends the lifetime.
	remLow := h.RemainingLifetime(p, 0.05, 0.050)
	if !(remLow > rem) {
		t.Errorf("gentler future did not extend lifetime: %v vs %v", remLow, rem)
	}
	// Nearly-zero future duty never reaches the budget within 100 years.
	if v := h.RemainingLifetime(p, 0.0001, 0.050); !math.IsInf(v, 1) {
		t.Errorf("remaining at α≈0 = %v, want +Inf", v)
	}
	// Exhausted budget returns zero.
	var worn History
	_ = worn.AddEpoch(1.0, 10*SecondsPerYear)
	if v := worn.RemainingLifetime(p, 0.5, 0.050); v != 0 {
		t.Errorf("worn device remaining = %v, want 0", v)
	}
}

func TestEpochsCopy(t *testing.T) {
	var h History
	_ = h.AddEpoch(0.5, 100)
	es := h.Epochs()
	es[0].Alpha = 0.9
	if h.EffectiveAlpha() != 0.5 {
		t.Error("Epochs exposed internal state")
	}
}

// Property: effective alpha is always within the min/max of the epochs.
func TestQuickEffectiveAlphaBounds(t *testing.T) {
	f := func(alphas []uint8, durs []uint8) bool {
		var h History
		lo, hi := 1.0, 0.0
		n := len(alphas)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			a := float64(alphas[i]) / 255
			d := float64(durs[i]) + 1
			if h.AddEpoch(a, d) != nil {
				return false
			}
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		if h.Len() == 0 {
			return h.EffectiveAlpha() == 0
		}
		ea := h.EffectiveAlpha()
		return ea >= lo-1e-12 && ea <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
