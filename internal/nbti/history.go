package nbti

import (
	"errors"
	"fmt"
	"math"

	"nbtinoc/internal/floats"
)

// Epoch is one phase of a device's operating history: a sustained
// stress probability over a duration.
type Epoch struct {
	// Alpha is the NBTI-duty-cycle fraction in [0, 1] during the epoch.
	Alpha float64
	// Seconds is the epoch duration.
	Seconds float64
}

// History composes a device's long-term degradation from a sequence of
// operating epochs — e.g. a datacentre NoC alternating between loaded
// days and idle nights, or a policy change partway through the
// deployment.
//
// The long-term R-D model is driven by the average stress probability:
// for t >> Tclk the recovery fraction βt depends on total elapsed time
// only, and the interface-trap generation term accumulates
// proportionally to the stressed time, so a piecewise-constant α
// history is equivalent (to first order) to its time-weighted mean
// applied over the total duration. This is the standard "effective
// duty-cycle" reduction used by aging-budget tools; it is exact for the
// closed form of Eq. 1 because α enters only as a multiplicative factor
// under the outer power.
type History struct {
	epochs []Epoch
}

// AddEpoch appends a phase to the history.
func (h *History) AddEpoch(alpha, seconds float64) error {
	if alpha < 0 || alpha > 1 {
		return fmt.Errorf("nbti: epoch alpha %v outside [0, 1]", alpha)
	}
	if seconds <= 0 {
		return errors.New("nbti: epoch duration must be positive")
	}
	h.epochs = append(h.epochs, Epoch{Alpha: alpha, Seconds: seconds})
	return nil
}

// AddFromTracker appends an epoch whose duty-cycle is taken from a
// simulation window's stress statistics, scaled to represent
// `seconds` of wallclock operation.
func (h *History) AddFromTracker(t *StressTracker, seconds float64) error {
	return h.AddEpoch(t.Alpha(), seconds)
}

// Len returns the number of epochs.
func (h *History) Len() int { return len(h.epochs) }

// Epochs returns a copy of the recorded epochs.
func (h *History) Epochs() []Epoch { return append([]Epoch(nil), h.epochs...) }

// TotalSeconds returns the summed duration.
func (h *History) TotalSeconds() float64 {
	var total float64
	for _, e := range h.epochs {
		total += e.Seconds
	}
	return total
}

// EffectiveAlpha returns the time-weighted mean stress probability, or
// 0 for an empty history.
func (h *History) EffectiveAlpha() float64 {
	total := h.TotalSeconds()
	if floats.ExactZero(total) {
		// An empty history (or one of zero-length epochs) sums to an
		// exact 0; any real epoch makes the total strictly positive.
		return 0
	}
	var weighted float64
	for _, e := range h.epochs {
		weighted += e.Alpha * e.Seconds
	}
	return weighted / total
}

// DeltaVth evaluates the long-term model over the whole history.
func (h *History) DeltaVth(p Params) float64 {
	return p.DeltaVth(h.EffectiveAlpha(), h.TotalSeconds())
}

// RemainingLifetime returns how much longer the device can sustain a
// future duty-cycle alphaFuture before ΔVth reaches budget, given the
// history so far. It solves for the additional time by bisection on the
// composed history and returns +Inf if the budget is never reached
// within 100 further years, and 0 if it is already exceeded.
func (h *History) RemainingLifetime(p Params, alphaFuture, budget float64) float64 {
	if h.DeltaVth(p) >= budget {
		return 0
	}
	eval := func(extra float64) float64 {
		total := h.TotalSeconds() + extra
		weighted := h.EffectiveAlpha()*h.TotalSeconds() + clamp01(alphaFuture)*extra
		return p.DeltaVth(weighted/total, total)
	}
	const hi0 = 100 * SecondsPerYear
	if eval(hi0) < budget {
		return math.Inf(1)
	}
	lo, hi := 0.0, hi0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if eval(mid) < budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
