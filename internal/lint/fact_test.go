package lint

import (
	"bytes"
	"strings"
	"testing"
)

// TestFactSetEncodeDecodeRoundTrip drives the gob payload both ways:
// what Encode writes, DecodeFacts must reconstruct key-for-key, and the
// canonical entry order must make encoding deterministic.
func TestFactSetEncodeDecodeRoundTrip(t *testing.T) {
	registerFactTypes(All())
	s := NewFactSet()
	s.m[factKey{Pkg: "a", Obj: "Network", Typ: typeName(&HoldsNetwork{})}] = &HoldsNetwork{Root: true}
	s.m[factKey{Pkg: "a", Obj: "Result", Typ: typeName(&HoldsNetwork{})}] = &HoldsNetwork{Via: "field Net"}
	s.m[factKey{Pkg: "b", Obj: "unit.vcs", Typ: typeName(&ArenaOwned{})}] = &ArenaOwned{Field: "unit.vcs"}

	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeFacts(data)
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	if gs, ws := strings.Join(got.Strings(), "\n"), strings.Join(s.Strings(), "\n"); gs != ws {
		t.Errorf("round trip changed the set:\ngot:\n%s\nwant:\n%s", gs, ws)
	}
	var h HoldsNetwork
	k := factKey{Pkg: "a", Obj: "Result", Typ: typeName(&HoldsNetwork{})}
	f, ok := got.m[k].(*HoldsNetwork)
	if !ok || f.Via != "field Net" {
		t.Errorf("decoded fact for %v = %+v, want Via=field Net", k, got.m[k])
	}
	_ = h

	again, err := s.Encode()
	if err != nil {
		t.Fatalf("second Encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Error("Encode is not deterministic: two encodings of the same set differ")
	}
}

// TestDecodeFactsEmpty: the zero-byte placeholder written for packages
// with nothing to say decodes to an empty, usable set.
func TestDecodeFactsEmpty(t *testing.T) {
	s, err := DecodeFacts(nil)
	if err != nil {
		t.Fatalf("DecodeFacts(nil): %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("empty payload decoded to %d facts", s.Len())
	}
	s.Merge(nil) // merging nil must be a no-op, not a panic
}

// TestSuiteFingerprint pins the properties cmd/nbtilint's -V=full hash
// depends on: every analyzer name appears, fact-carrying analyzers
// contribute their schema (type and field list), and the string is
// stable across calls.
func TestSuiteFingerprint(t *testing.T) {
	fp := SuiteFingerprint()
	for _, a := range All() {
		if !strings.Contains(fp, a.Name) {
			t.Errorf("fingerprint omits analyzer %q: %s", a.Name, fp)
		}
	}
	for _, want := range []string{
		"HoldsNetwork:Root bool:Via string",
		"ArenaOwned:Field string",
	} {
		if !strings.Contains(fp, want) {
			t.Errorf("fingerprint omits fact schema %q: %s", want, fp)
		}
	}
	if fp != SuiteFingerprint() {
		t.Error("fingerprint is not stable across calls")
	}
}
