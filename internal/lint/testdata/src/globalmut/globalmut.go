// Fixture for the globalmut analyzer: package-level vars that are
// written (assignment, inc/dec, element/field stores, delete, address
// escape, pointer-receiver methods) or exported as bare aggregates are
// flagged; sentinels, compiled regexps and unwritten lookup tables are
// configuration, not state.
package globalmut

import (
	"errors"
	"regexp"
	"sync"
)

var ErrBad = errors.New("bad")

var pattern = regexp.MustCompile(`x+`)

var table = map[string]int{"a": 1}

func lookup(k string) int { return table[k] }

var Version = "1.0"

var counter int // want `package-level variable "counter" is mutable state \(incremented in`

func bump() { counter++ }

var names []string // want `package-level variable "names" is mutable state \(assigned in`

func addName(n string) { names = append(names, n) }

var index = map[string]int{} // want `package-level variable "index" is mutable state \(element written in`

func set(k string, v int) { index[k] = v }

var state struct{ n int } // want `package-level variable "state" is mutable state \(field written in`

func poke(v int) { state.n = v }

var mu sync.Mutex // want `package-level variable "mu" is mutable state \(pointer-receiver method Lock\(\) called in`

func locked() { mu.Lock(); defer mu.Unlock() }

var seen = map[string]bool{} // want `package-level variable "seen" is mutable state \(delete\(\) in`

func forget(k string) { delete(seen, k) }

var leaked int // want `package-level variable "leaked" is mutable state \(address taken in`

func addr() *int { return &leaked }

var Registry = map[string]int{} // want `exported package-level map "Registry" can be mutated in place by any importer`

var Defaults = []string{"a"} // want `exported package-level slice "Defaults" can be mutated in place by any importer`

//nbtilint:allow globalmut fixture waiver proving suppression works for this analyzer
var waived int

func bumpWaived() { waived++ }
