// Package main is a fixture for analyzer scoping: detmap and floatcmp
// guard library (engine) code and skip package main — cmd/ and
// examples/ only format results — while wallclock and rngsource apply
// everywhere, because a wall-clock read or global-source draw in a
// driver still destroys replayability of what it prints.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	m := map[string]float64{"a": 1}
	for k, v := range m { // no detmap finding: package main is display code
		if v == 1 { // no floatcmp finding: package main is display code
			fmt.Println(k)
		}
	}
	fmt.Println(time.Now())    // want `time\.Now reads the wall clock`
	fmt.Println(rand.Intn(10)) // want `math/rand\.Intn draws from the process-global random source`
}
