// Fixture dependency package for the transitive netshare test: it
// declares the network root and a result type holding one, and exports
// the HoldsNetwork facts. It contains no violations itself — the
// violations live in netshare_b, which can only learn that
// netshare_a.Result holds a network from the facts exported here.
package netshare_a

//nbtilint:network simulation state root
type Network struct {
	Cycle int
}

// Result pairs a summary with the network that produced it.
type Result struct {
	Rate float64
	Net  *Network
}
