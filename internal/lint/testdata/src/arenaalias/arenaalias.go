// Fixture for the arenaalias analyzer: a struct with an arena-marked
// subslice field, the blessed construction idioms (slice-expression
// windows, make, nil), and every forbidden shape — append growth,
// aliasing, retention, channel sends, and package-level storage.
package arenaalias

type unit struct {
	//nbtilint:arena window into the network's flat buffer arena
	vcs []int
	// scratch is unmarked and follows no arena rules.
	scratch []int
}

type misuse struct {
	//nbtilint:arena
	count int // want `//nbtilint:arena marker on non-slice field count`
}

func grow(u *unit) {
	u.vcs = append(u.vcs, 1) // want `append grows arena-owned slice unit.vcs`
}

func alias(u *unit, other []int) {
	u.vcs = other // want `arena-owned slice unit.vcs rebound to another slice value`
}

func rebindAppend(u *unit, other []int) {
	u.vcs = append(other, 1) // want `arena-owned slice unit.vcs rebound to an append result`
}

func carve(u *unit, arena []int, lo, hi int) {
	u.vcs = arena[lo:hi:hi]
	u.vcs = make([]int, 4)
	u.vcs = nil
	u.scratch = arena
}

func build(arena []int, total int) unit {
	return unit{vcs: arena[:total:total], scratch: arena}
}

func buildBad(other []int) unit {
	return unit{vcs: other} // want `arena-owned slice unit.vcs rebound to another slice value`
}

func retain(u *unit, sink [][]int) [][]int {
	return append(sink, u.vcs) // want `arena-owned slice unit.vcs stored as an element of another slice`
}

func spread(dst []int, u *unit) []int {
	return append(dst, u.vcs...) // spreading copies elements out: fine
}

func send(u *unit, ch chan []int) {
	ch <- u.vcs // want `arena-owned slice unit.vcs sent on a channel`
}

var global []int

func stash(u *unit) {
	global = u.vcs // want `arena-owned slice unit.vcs stored in package-level variable "global"`
}

func multi(u *unit, m map[string][]int) {
	var ok bool
	u.vcs, ok = m["k"] // want `arena-owned slice unit.vcs rebound from a multi-value source`
	_ = ok
}

func fresh(u *unit) {
	u.vcs, _ = carve2()
}

func carve2() ([]int, bool) { return nil, true }
