package floatcmp

// Exact comparison in tests is fine (golden-value pinning relies on it).
func exactCompareInTest(got, want float64) bool { return got == want }
