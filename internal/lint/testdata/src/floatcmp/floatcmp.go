// Package floatcmp is a fixture for the floatcmp analyzer: exact
// equality between floating-point operands is flagged unless both sides
// are compile-time constants or a directive documents a sentinel test.
package floatcmp

type celsius float64

func flagged(a, b float64) bool {
	if a == b { // want `floating-point == is rounding-sensitive`
		return true
	}
	return a != b // want `floating-point != is rounding-sensitive`
}

func flaggedAgainstLiteral(x float64) bool {
	return x == 0.5 // want `floating-point == is rounding-sensitive`
}

func flaggedFloat32(a, b float32) bool {
	return a == b // want `floating-point == is rounding-sensitive`
}

func flaggedNamedType(a, b celsius) bool {
	return a == b // want `floating-point == is rounding-sensitive`
}

func flaggedComplex(a, b complex128) bool {
	return a == b // want `floating-point == is rounding-sensitive`
}

func cleanOrderedComparisons(a, b float64) bool {
	return a < b || a >= b
}

func cleanConstants() bool {
	const half = 0.5
	return half == 0.5
}

func cleanIntegers(a, b int) bool {
	return a == b
}

func cleanAllowedSentinel(total float64) bool {
	//nbtilint:allow floatcmp total is a config field assigned 0, never computed
	return total == 0
}
