// Package wallclock is a fixture for the wallclock analyzer: any read
// of, or wait on, the host clock in non-test code must be flagged
// unless an allow directive documents a display-only use.
package wallclock

import (
	"time"
	clock "time"
)

func flagged() time.Duration {
	start := time.Now()              // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)     // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond)   // want `time\.After reads the wall clock`
	t := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	t.Stop()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func flaggedRenamedImport() clock.Time {
	// Import renaming must not defeat the check.
	return clock.Now() // want `time\.Now reads the wall clock`
}

func cleanDurationsAndConstructors() time.Duration {
	// Pure duration arithmetic and parsing never touch the clock.
	d, _ := time.ParseDuration("3s")
	u := time.Unix(0, 0)
	_ = u
	return d + 2*time.Second
}

func cleanAllowed() time.Time {
	//nbtilint:allow wallclock display-only banner timestamp, never reaches simulator state
	return time.Now()
}

func cleanAllowedSameLine() time.Duration {
	start := time.Now()      //nbtilint:allow wallclock progress display for the operator only
	return time.Since(start) //nbtilint:allow wallclock progress display for the operator only
}
