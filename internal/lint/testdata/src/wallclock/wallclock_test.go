package wallclock

import "time"

// Tests may use the wall clock freely (timeouts, benchmarks).
func wallClockInTest() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
