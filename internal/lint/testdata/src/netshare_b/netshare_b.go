// Fixture for the cross-package leg of netshare: nothing in this file
// mentions a network type or a marker. Every diagnostic below exists
// only because netshare_a exported HoldsNetwork facts for Network and
// Result — run without dependency facts, this package is silent (the
// negative control in lint_test.go relies on that).
package netshare_b

import "netshare_a"

// wrapper holds a network only transitively, through the imported
// Result type.
type wrapper struct {
	res netshare_a.Result
}

func leak(ch chan wrapper, w wrapper) {
	ch <- w // want `channel send shares a value that holds a simulation network \(type wrapper\)`
}

func spawn(r netshare_a.Result) {
	go consume(r) // want `goroutine argument carries a simulation network \(type netshare_a.Result\)`
}

func consume(netshare_a.Result) {}

var last wrapper // want `package-level variable "last" holds a simulation network`

func pure(r netshare_a.Result) float64 {
	return r.Rate
}
