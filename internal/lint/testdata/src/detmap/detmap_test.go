package detmap

// Test files are exempt: map ranges in tests cannot corrupt simulator
// output, and deep-equal helpers range freely.

func rangeInTest(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
