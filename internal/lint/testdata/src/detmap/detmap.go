// Package detmap is a fixture for the detmap analyzer: every map range
// whose order can leak must be flagged; collect-then-sort, ignored
// key/value, slice ranges and allow-annotated ranges must not.
package detmap

import (
	"sort"
)

type weights map[string]float64

func flagged(m map[string]int) int {
	for k, v := range m { // want `range over map`
		if v > 0 {
			_ = k
			return v
		}
	}
	for k := range m { // want `range over map`
		return len(k)
	}
	return 0
}

func flaggedNamedType(w weights) float64 {
	var sum float64
	// Named map types are still maps underneath.
	for _, v := range w { // want `range over map`
		sum += v
	}
	return sum
}

func flaggedValueOnlyCollect(m map[string]string) []string {
	var out []string
	// Collecting *values* is not the sorted-keys idiom: two keys can
	// share a value, and the append order is observable before sorting
	// in the general case, so this stays flagged.
	for _, v := range m { // want `range over map`
		out = append(out, v)
	}
	return out
}

func cleanCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cleanCollectThenSortSlice(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func cleanIgnoredKeyAndValue(m map[string]int) int {
	n := 0
	// Iterations are indistinguishable, so order cannot matter.
	for range m {
		n++
	}
	return n
}

func cleanSliceRange(s []string) int {
	n := 0
	for i, v := range s {
		n += i + len(v)
	}
	return n
}

// cleanActiveSetRebuild is the cycle-engine active-set idiom
// (internal/noc/activeset.go): membership lives in a map (or bitmask),
// and the per-cycle sweep iterates an ascending ordered-slice rebuild
// instead of the map itself — the accepted deterministic pattern.
func cleanActiveSetRebuild(active map[int32]bool) []int32 {
	ids := make([]int32, 0, len(active))
	for id := range active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// flaggedActiveSetDirect is the same sweep done wrong: stepping units
// straight out of the membership map leaks iteration order into the
// simulation.
func flaggedActiveSetDirect(active map[int32]bool, step func(int32)) {
	for id := range active { // want `range over map`
		step(id)
	}
}

func cleanAllowSameLine(m map[string]int) string {
	for k := range m { //nbtilint:allow detmap first match wins and all callers treat any key as equivalent
		return k
	}
	return ""
}

func cleanAllowLineAbove(m map[string]int) string {
	//nbtilint:allow detmap first match wins and all callers treat any key as equivalent
	for k := range m {
		return k
	}
	return ""
}
