// Package allowdir is a fixture for the //nbtilint:allow directive
// grammar: waivers missing an analyzer name or a reason, or naming an
// unknown analyzer, do not suppress anything and are themselves
// reported, so stale suppressions cannot accumulate.
package allowdir

import "time"

//nbtilint:allow // want `directive needs an analyzer name and a reason`
var malformedNoAnalyzer = 0

//nbtilint:allow wallclock // want `directive needs a reason`
func malformedNoReason() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

//nbtilint:allow clockwall this analyzer does not exist // want `unknown analyzer clockwall`
func malformedUnknownAnalyzer() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

//nbtilint:allow rngsource reason targets the wrong analyzer
func wrongAnalyzerDoesNotSuppress() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// A directive two lines above the offending statement is out of range:
// it must sit on the line of, or directly above, the diagnostic.
func tooFarAbove() time.Time {
	//nbtilint:allow wallclock display-only, but one line too early
	_ = 0
	return time.Now() // want `time\.Now reads the wall clock`
}

func wellFormed() time.Time {
	//nbtilint:allow wallclock display-only fixture case with a proper reason
	return time.Now()
}
