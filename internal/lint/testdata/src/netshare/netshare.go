// Fixture for the netshare analyzer: a marked network root, a wrapper
// type that transitively holds one, and every forbidden sharing shape —
// channel sends, goroutine arguments/receivers/captures, and
// package-level storage.
package netshare

//nbtilint:network simulation state root
type Network struct {
	cycle int
}

func (n *Network) step() { n.cycle++ }

// Runner holds a network through a pointer field, so it inherits the
// property.
type Runner struct {
	Net *Network
}

// clean carries no network and may travel freely.
type clean struct {
	n int
}

var shared *Network // want `package-level variable "shared" holds a simulation network \(type Network\)`

var pool []Runner // want `package-level variable "pool" holds a simulation network`

var cache = map[string]any{}

func stash(n *Network) {
	cache["n"] = n // want `assignment stores a value that holds a simulation network .* into package-level variable "cache"`
}

func sendPtr(ch chan *Network, n *Network) {
	ch <- n // want `channel send shares a value that holds a simulation network`
}

func sendWrapped(ch chan Runner, r Runner) {
	ch <- r // want `channel send shares a value that holds a simulation network \(type Runner\)`
}

func sendClean(ch chan clean, c clean) {
	ch <- c
}

func spawnArg(n *Network) {
	go consume(n) // want `goroutine argument carries a simulation network`
}

func consume(n *Network) { n.step() }

func spawnReceiver(n *Network) {
	go n.step() // want `goroutine method receiver holds a simulation network`
}

func spawnCapture(n *Network) {
	go func() {
		n.step() // want `go-spawned closure captures "n", which holds a simulation network`
	}()
}

func spawnClean(c clean) {
	go func() {
		c.n++
	}()
}

// perRun is the blessed pattern: the network is constructed, used and
// discarded inside one goroutine.
func perRun() int {
	n := &Network{}
	n.step()
	return n.cycle
}
