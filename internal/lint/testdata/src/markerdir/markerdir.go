// Fixture for marker-directive validation: an //nbtilint: comment with
// an unknown verb must be reported, never silently ignored — a typoed
// marker would otherwise disable an invariant without a trace.
package markerdir

//nbtilint:netwrok typo must not pass silently // want `unknown directive //nbtilint:netwrok \(known: allow, arena, network, packed\)`
type T struct {
	n int
}

//nbtilint:network
type Net struct {
	t T
}
