// Fixture for the packedidx analyzer: multiply-add arithmetic inside
// slice index and slice-bound positions is flagged unless it lives in a
// function marked //nbtilint:packed. Map keys, constant products and
// plain (non-index) arithmetic are out of scope.
package packedidx

const numPorts = 5

//nbtilint:packed single point of truth for the unit slot layout
func unitIndex(node, port, slots int) int {
	return node*slots + port
}

// window is the blessed carving helper.
//
//nbtilint:packed
func window(buf []int, unit, total int) []int {
	return buf[unit*total : (unit+1)*total]
}

func lookupBad(buf []int, node, port int) int {
	return buf[node*(numPorts+1)+port] // want `packed index arithmetic outside a //nbtilint:packed helper`
}

func carveBad(buf []int, unit, total int) []int {
	return buf[unit*total : (unit+1)*total] // want `packed index arithmetic` `packed index arithmetic`
}

func lookupOK(buf []int, node, port, slots int) int {
	return buf[unitIndex(node, port, slots)]
}

func carveOK(buf []int, unit, total int) []int {
	return window(buf, unit, total)
}

func mapOK(m map[int]int, a, b int) int {
	return m[a*b] // map keys are not packed layouts
}

func constOK(buf []int) int {
	return buf[2*3] // a constant product is a literal, not layout arithmetic
}

func mathOK(a, b, c float64) float64 {
	return a*b + c // not an index at all
}

func arrayBad(grid *[16]int, row, cols int) int {
	return grid[row*cols+3] // want `packed index arithmetic`
}

func offsetOK(buf []int, base, off int) int {
	return buf[base+off] // plain addition: precomputed offsets are fine
}
