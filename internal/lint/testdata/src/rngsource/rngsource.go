// Package rngsource is a fixture for the rngsource analyzer: the
// package-level convenience functions of math/rand and math/rand/v2
// draw from a process-global source and must be flagged; explicit
// generator construction and method calls on local generators are
// tolerated (internal/rng remains the house generator).
package rngsource

import (
	randv1 "math/rand"
	randv2 "math/rand/v2"
)

func flaggedV1() float64 {
	n := randv1.Intn(10)                 // want `math/rand\.Intn draws from the process-global random source`
	randv1.Seed(42)                      // want `math/rand\.Seed draws from the process-global random source`
	randv1.Shuffle(n, func(i, j int) {}) // want `math/rand\.Shuffle draws from the process-global random source`
	return randv1.Float64()              // want `math/rand\.Float64 draws from the process-global random source`
}

func flaggedV2() uint64 {
	_ = randv2.IntN(10)    // want `math/rand/v2\.IntN draws from the process-global random source`
	return randv2.Uint64() // want `math/rand/v2\.Uint64 draws from the process-global random source`
}

func cleanExplicitGenerators() float64 {
	r1 := randv1.New(randv1.NewSource(1))
	r2 := randv2.New(randv2.NewPCG(1, 2))
	// Method calls on locally seeded generators are not the global
	// stream; the rngsource analyzer leaves them to code review.
	return r1.Float64() + r2.Float64()
}

func cleanAllowed() int {
	//nbtilint:allow rngsource one-off jitter for a log message, never feeds simulator state
	return randv1.Intn(3)
}
