package rngsource

import "math/rand"

// Tests may use throwaway randomness.
func randomInTest() int { return rand.Intn(100) }
