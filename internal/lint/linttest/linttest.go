// Package linttest is an analysistest-style harness for the nbtilint
// analyzers, built only on the standard library.
//
// Fixture packages live in internal/lint/testdata/src/<name>/ and are
// plain Go files (ignored by the go tool because of the testdata
// directory). Expected diagnostics are declared inline:
//
//	for k := range m { // want `range over map`
//
// Each `// want` comment carries one or more backquoted or quoted
// regular expressions; every reported diagnostic must match a want on
// its exact line, and every want must be matched by some diagnostic.
//
// Fixtures may import the standard library (type-checked with
// go/importer's source importer against GOROOT) and each other: an
// import path that names a sibling directory under testdata/src is
// loaded recursively, its suite is run first, and the facts it exports
// are made visible to the importing fixture — the same cross-package
// fact flow cmd/nbtilint implements over .vetx files, in miniature.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nbtinoc/internal/lint"
)

// wantRE extracts the quoted expectations from a // want comment. Both
// backquoted and double-quoted forms are accepted.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package testdata/src/<pkgname> (relative to the
// internal/lint directory), runs the analyzer suite consisting of just
// a over it, and compares diagnostics against the // want comments.
// The fixture's import path is pkgname itself.
func Run(t *testing.T, a *lint.Analyzer, pkgname string) {
	t.Helper()
	RunSuite(t, []*lint.Analyzer{a}, pkgname)
}

// RunSuite is Run for several analyzers at once (their diagnostics are
// pooled before matching, which also surfaces malformed allow
// directives via the "allow" pseudo-analyzer).
func RunSuite(t *testing.T, as []*lint.Analyzer, pkgname string) {
	t.Helper()
	target := load(t, as, pkgname, true)

	wants := collectWants(t, target.fset, target.files)
	for _, d := range target.diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// Diagnostics loads a fixture and returns the raw findings without
// matching them against // want comments — for tests probing scoping
// rules or diagnostic ordering directly. Dependency fixtures are
// analyzed first and their facts flow into the target package.
func Diagnostics(t *testing.T, as []*lint.Analyzer, pkgname string) []lint.Diagnostic {
	t.Helper()
	return load(t, as, pkgname, true).diags
}

// DiagnosticsNoDepFacts is Diagnostics with the cross-package fact flow
// severed: dependency fixtures are still loaded and type-checked (so
// the target compiles) but the facts they export are withheld from the
// target's suite run. Diagnostics that exist only because a dependency
// exported a fact vanish under this mode — the negative control proving
// an invariant really crosses the package boundary via facts rather
// than via syntax the target could see locally.
func DiagnosticsNoDepFacts(t *testing.T, as []*lint.Analyzer, pkgname string) []lint.Diagnostic {
	t.Helper()
	return load(t, as, pkgname, false).diags
}

// Facts loads a fixture like Diagnostics and returns the facts its
// suite run exported, rendered with FactSet.Strings.
func Facts(t *testing.T, as []*lint.Analyzer, pkgname string) []string {
	t.Helper()
	return load(t, as, pkgname, true).facts.Strings()
}

// fixturePkg is one loaded-and-analyzed fixture package.
type fixturePkg struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	diags []lint.Diagnostic
	// facts holds everything visible after the package's suite run:
	// the facts it exported plus those inherited from dependencies —
	// the linttest equivalent of the re-exported .vetx payload.
	facts *lint.FactSet
}

// loader resolves fixture import paths recursively, analyzing each
// dependency before its importers, and accumulating exported facts.
type loader struct {
	t    *testing.T
	as   []*lint.Analyzer
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*fixturePkg
	// target and targetFacts control the negative mode: when the named
	// package is analyzed with targetFacts false, dependency facts are
	// withheld from its run.
	target      string
	targetFacts bool
}

func load(t *testing.T, as []*lint.Analyzer, pkgname string, depFacts bool) *fixturePkg {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		t:           t,
		as:          as,
		fset:        fset,
		std:         importer.ForCompiler(fset, "source", nil),
		pkgs:        map[string]*fixturePkg{},
		target:      pkgname,
		targetFacts: depFacts,
	}
	return ld.load(pkgname)
}

// Import implements types.Importer over the fixture tree: sibling
// fixture directories shadow nothing in GOROOT (fixture names are not
// stdlib paths), everything else falls through to the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join("testdata", "src", path)); err == nil {
		return ld.load(path).pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(pkgname string) *fixturePkg {
	ld.t.Helper()
	if p, ok := ld.pkgs[pkgname]; ok {
		return p
	}
	dir := filepath.Join("testdata", "src", pkgname)
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		ld.t.Fatalf("fixture %s has no Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			ld.t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}

	conf := types.Config{Importer: ld}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := conf.Check(pkgname, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("typechecking fixture %s: %v", pkgname, err)
	}

	// Typechecking pulled in (and therefore analyzed) every fixture
	// dependency through Import; gather the facts they exported.
	imported := lint.NewFactSet()
	if pkgname != ld.target || ld.targetFacts {
		for _, dep := range pkg.Imports() {
			if p, ok := ld.pkgs[dep.Path()]; ok {
				imported.Merge(p.facts)
			}
		}
	}

	res, err := lint.RunSuiteFacts(ld.as, ld.fset, files, pkg, info, pkgname, imported)
	if err != nil {
		ld.t.Fatalf("running analyzers: %v", err)
	}
	imported.Merge(res.Facts)
	p := &fixturePkg{fset: ld.fset, files: files, pkg: pkg, diags: res.Diagnostics, facts: imported}
	ld.pkgs[pkgname] = p
	return p
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text[idx+len("// want "):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed // want comment (no quoted pattern)", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	return wants
}

func matchWant(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}
