// Package linttest is an analysistest-style harness for the nbtilint
// analyzers, built only on the standard library.
//
// Fixture packages live in internal/lint/testdata/src/<name>/ and are
// plain Go files (ignored by the go tool because of the testdata
// directory). Expected diagnostics are declared inline:
//
//	for k := range m { // want `range over map`
//
// Each `// want` comment carries one or more backquoted or quoted
// regular expressions; every reported diagnostic must match a want on
// its exact line, and every want must be matched by some diagnostic.
// Fixtures may import only the standard library — they are type-checked
// with go/importer's source importer against GOROOT.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nbtinoc/internal/lint"
)

// wantRE extracts the quoted expectations from a // want comment. Both
// backquoted and double-quoted forms are accepted.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package testdata/src/<pkgname> (relative to the
// internal/lint directory), runs the analyzer suite consisting of just
// a over it, and compares diagnostics against the // want comments.
// The fixture's import path is pkgname itself.
func Run(t *testing.T, a *lint.Analyzer, pkgname string) {
	t.Helper()
	RunSuite(t, []*lint.Analyzer{a}, pkgname)
}

// RunSuite is Run for several analyzers at once (their diagnostics are
// pooled before matching, which also surfaces malformed allow
// directives via the "allow" pseudo-analyzer).
func RunSuite(t *testing.T, as []*lint.Analyzer, pkgname string) {
	t.Helper()
	fset, files, diags := analyze(t, as, pkgname)

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// Diagnostics loads a fixture and returns the raw findings without
// matching them against // want comments — for tests probing scoping
// rules or diagnostic ordering directly.
func Diagnostics(t *testing.T, as []*lint.Analyzer, pkgname string) []lint.Diagnostic {
	t.Helper()
	_, _, diags := analyze(t, as, pkgname)
	return diags
}

func analyze(t *testing.T, as []*lint.Analyzer, pkgname string) (*token.FileSet, []*ast.File, []lint.Diagnostic) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgname)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}

	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := conf.Check(pkgname, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", pkgname, err)
	}

	diags, err := lint.RunSuite(as, fset, files, pkg, info, pkgname)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return fset, files, diags
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text[idx+len("// want "):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed // want comment (no quoted pattern)", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	return wants
}

func matchWant(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}
