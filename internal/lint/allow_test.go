package lint_test

import (
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

// TestAllowDirectives runs the full suite over the directive-grammar
// fixture: malformed waivers (no analyzer, no reason, unknown analyzer)
// are reported and suppress nothing, wrong-analyzer and out-of-range
// directives suppress nothing, and a well-formed directive suppresses
// exactly its line and the next.
func TestAllowDirectives(t *testing.T) {
	linttest.RunSuite(t, lint.All(), "allowdir")
}

// TestMainScope runs the full suite over a package-main fixture:
// detmap and floatcmp stand down in display code, while wallclock and
// rngsource still fire.
func TestMainScope(t *testing.T) {
	linttest.RunSuite(t, lint.All(), "mainscope")
}

// TestKnownAnalyzersMatchesAll pins the allow-directive name table to
// the registered analyzer suite, so adding an analyzer without teaching
// the directive parser its name fails fast.
func TestKnownAnalyzersMatchesAll(t *testing.T) {
	for _, a := range lint.All() {
		if !lint.KnownAnalyzerName(a.Name) {
			t.Errorf("analyzer %q is not accepted by //nbtilint:allow directives", a.Name)
		}
	}
	for _, name := range []string{"", "allow", "clockwall", "detmapx"} {
		if lint.KnownAnalyzerName(name) {
			t.Errorf("KnownAnalyzerName(%q) = true, want false", name)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, a := range lint.All() {
		if lint.Lookup(a.Name) != a {
			t.Errorf("Lookup(%q) did not return the registered analyzer", a.Name)
		}
	}
	if lint.Lookup("nope") != nil {
		t.Error("Lookup of unknown name should return nil")
	}
}
