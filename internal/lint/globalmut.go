package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// GlobalMut flags mutable package-level state in library packages — a
// determinism hazard today (two runs in one process can observe each
// other) and a multi-tenancy hazard the moment the engine serves
// concurrent requests. A package-level var is accepted only when it is
// provably configuration, not state:
//
//   - error sentinels (`var ErrX = errors.New(...)`) and compiled
//     regexps (`var re = regexp.MustCompile(...)`) — read-only by
//     universal convention;
//   - unexported vars the package never writes after initialization
//     (lookup tables); a write is any assignment, inc/dec, index or
//     field store, delete/copy, taking the address, or calling a
//     pointer-receiver method on the var;
//   - exported vars that are never written in-package and whose type
//     is not an aliasable aggregate (map/slice/chan) — the exported
//     *Analyzer declaration idiom. Exported aggregates are flagged
//     even if unwritten, because any importer can mutate them in
//     place; hide them behind an accessor returning a copy.
//
// Everything else needs a constructor/accessor hoist or an explicit
// //nbtilint:allow globalmut <reason> waiver (the construction-time
// resolved metrics default registry is the canonical reasoned allow).
var GlobalMut = &Analyzer{
	Name: "globalmut",
	Doc: "flags mutable package-level state in library packages (written vars, " +
		"exported aggregate vars); process-global state couples runs and " +
		"tenants — hoist it behind a constructor or accessor, or justify it " +
		"with //nbtilint:allow globalmut <reason>",
	Run: runGlobalMut,
}

func runGlobalMut(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		// Scope: package main owns its process; flags and CLI state are
		// display plumbing, not engine state.
		return nil
	}
	written := collectWrites(pass)
	for _, f := range pass.NonTestFiles() {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.GenDecl)
			if !ok || decl.Tok != token.VAR {
				continue
			}
			for _, spec := range decl.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					checkGlobal(pass, written, vs, i, name)
				}
			}
		}
	}
	return nil
}

func checkGlobal(pass *Pass, written map[types.Object]string, vs *ast.ValueSpec, i int, name *ast.Ident) {
	obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
	if !ok || name.Name == "_" {
		return
	}
	var init ast.Expr
	if i < len(vs.Values) {
		init = vs.Values[i]
	}
	if isErrorSentinel(obj) || isCompiledRegexp(pass, init) {
		return
	}
	if how, wrote := written[obj]; wrote {
		pass.Reportf(name.Pos(), "package-level variable %q is mutable state (%s); process-global state couples runs and tenants — hoist it behind a constructor, or annotate //nbtilint:allow globalmut <reason>", name.Name, how)
		return
	}
	if obj.Exported() {
		switch obj.Type().Underlying().(type) {
		case *types.Map, *types.Slice, *types.Chan:
			pass.Reportf(name.Pos(), "exported package-level %s %q can be mutated in place by any importer; expose an accessor returning a copy, or annotate //nbtilint:allow globalmut <reason>", aggregateKind(obj.Type()), name.Name)
		}
	}
}

func aggregateKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	case *types.Chan:
		return "channel"
	}
	return "aggregate"
}

// isErrorSentinel accepts vars of type error: the ErrX convention.
func isErrorSentinel(obj *types.Var) bool {
	t := obj.Type()
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isCompiledRegexp accepts `regexp.MustCompile(...)` initializers.
func isCompiledRegexp(pass *Pass, init ast.Expr) bool {
	call, ok := ast.Unparen(init).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok {
		return false
	}
	return pkgName.Imported().Path() == "regexp" &&
		(sel.Sel.Name == "MustCompile" || sel.Sel.Name == "MustCompilePOSIX")
}

// collectWrites scans the package's non-test files for anything that
// writes (or could write) a package-level variable after its
// initialization, and records a human-readable description of the
// first write per object. Writes inside init functions count too:
// init-order-coupled mutation is exactly the hazard the analyzer
// exists to surface.
func collectWrites(pass *Pass) map[types.Object]string {
	written := map[types.Object]string{}
	record := func(e ast.Expr, how string) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Parent() != pass.Pkg.Scope() {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if _, dup := written[obj]; !dup {
			written[obj] = how
		}
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					switch l := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						record(l, "assigned in "+posName(pass, n.Pos()))
					case *ast.IndexExpr:
						record(l.X, "element written in "+posName(pass, n.Pos()))
					case *ast.SelectorExpr:
						record(l.X, "field written in "+posName(pass, n.Pos()))
					case *ast.StarExpr:
						record(l.X, "written through pointer in "+posName(pass, n.Pos()))
					}
				}
			case *ast.IncDecStmt:
				record(n.X, "incremented in "+posName(pass, n.Pos()))
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					record(n.X, "address taken in "+posName(pass, n.Pos()))
				}
			case *ast.RangeStmt:
				// `for i := range v` reads; no write.
			case *ast.CallExpr:
				checkCallWrites(pass, n, record)
			}
			return true
		})
	}
	return written
}

// checkCallWrites records mutations performed through calls: the
// delete and copy builtins, and pointer-receiver method calls on a
// package-level var (v.Store(...), v.Lock()).
func checkCallWrites(pass *Pass, call *ast.CallExpr, record func(ast.Expr, string)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && len(call.Args) > 0 {
			switch b.Name() {
			case "delete":
				record(call.Args[0], "delete() in "+posName(pass, call.Pos()))
			case "copy":
				record(call.Args[0], "copy() target in "+posName(pass, call.Pos()))
			case "clear":
				record(call.Args[0], "clear() in "+posName(pass, call.Pos()))
			}
		}
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[fun]
		if !ok || sel.Kind() != types.MethodVal {
			return
		}
		m, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return
		}
		if _, ptrRecv := sig.Recv().Type().(*types.Pointer); ptrRecv {
			record(fun.X, "pointer-receiver method "+m.Name()+"() called in "+posName(pass, call.Pos()))
		}
	}
}

// posName renders a short location for write descriptions.
func posName(pass *Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
