package lint_test

import (
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

func TestWallClock(t *testing.T) {
	linttest.Run(t, lint.WallClock, "wallclock")
}
