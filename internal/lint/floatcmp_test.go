package lint_test

import (
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp, "floatcmp")
}

func TestFloatCmpSkipsMainPackages(t *testing.T) {
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.FloatCmp}, "mainscope")
	if len(diags) != 0 {
		t.Errorf("floatcmp reported %d findings in package main, want 0: %v", len(diags), diags)
	}
}
