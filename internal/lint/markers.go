package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Marker directives declare structural roles that the fact-based
// analyzers export for the rest of the package graph. The grammar is
//
//	//nbtilint:network [note...]   on a type declaration:
//	    values of this type are a simulation network root; netshare
//	    propagates the property to every type that transitively holds
//	    one and forbids sharing such values across goroutines.
//	//nbtilint:arena [note...]     on a slice-typed struct field:
//	    the field holds an arena-owned subslice; arenaalias forbids
//	    growing, aliasing or retaining it.
//	//nbtilint:packed [note...]    on a function declaration:
//	    the function is a blessed packed-index helper; packedidx
//	    permits multiply-add index arithmetic only inside such
//	    helpers.
//
// Like //nbtilint:allow, a marker covers its own source line and the
// line directly below it, so it works both as an end-of-line comment
// and as a standalone comment above the declaration. Any //nbtilint:
// comment whose verb is not a known directive is reported as
// malformed — a typoed marker must not silently disable an invariant.

// directivePrefix introduces every nbtilint source directive.
const directivePrefix = "//nbtilint:"

// markerVerbs lists the marker directives (allow is parsed separately
// in allow.go).
var markerVerbs = map[string]bool{
	"network": true,
	"arena":   true,
	"packed":  true,
}

// directiveVerb splits an //nbtilint: comment into its verb and rest;
// ok is false for comments that do not carry the directive prefix as a
// whole token.
func directiveVerb(text string) (verb, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(text, directivePrefix)
	i := strings.IndexAny(body, " \t")
	if i < 0 {
		return body, "", true
	}
	return body[:i], strings.TrimSpace(body[i:]), true
}

// markedLines returns the set of source lines covered by the given
// marker verb in f: each marker covers its own line and the next one.
func markedLines(fset *token.FileSet, f *ast.File, verb string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			v, _, ok := directiveVerb(c.Text)
			if !ok || v != verb {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// markerCovers reports whether a marker of the given verb in f covers
// pos (the marker's line or the line above pos).
func markerCovers(fset *token.FileSet, marked map[int]bool, pos token.Pos) bool {
	return marked[fset.Position(pos).Line]
}

// unknownDirectiveDiagnostics reports every //nbtilint: comment whose
// verb is neither allow nor a known marker.
func unknownDirectiveDiagnostics(fset *token.FileSet, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			verb, _, ok := directiveVerb(c.Text)
			if !ok || verb == "allow" || markerVerbs[verb] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(c.Pos()),
				Analyzer: "allow",
				Message: "unknown directive //nbtilint:" + verb +
					" (known: allow, arena, network, packed)",
			})
		}
	}
	return diags
}
