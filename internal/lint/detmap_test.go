package lint_test

import (
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

func TestDetMap(t *testing.T) {
	linttest.Run(t, lint.DetMap, "detmap")
}

func TestDetMapSkipsMainPackages(t *testing.T) {
	// mainscope's map range must produce no detmap findings; the
	// fixture's wants belong to wallclock/rngsource, so running detmap
	// alone must yield an error-free, finding-free pass — checked by
	// the suite test below. Here only the scoping is probed.
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.DetMap}, "mainscope")
	if len(diags) != 0 {
		t.Errorf("detmap reported %d findings in package main, want 0: %v", len(diags), diags)
	}
}
