package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PackedIdx enforces the flat-memory engine's single-point-of-truth
// rule for packed index arithmetic: expressions of the shape
// `node*(NumPorts+1)+port` or `unit*TotalVCs+vc` — any multiply inside
// an index or slice bound of a slice or array — must live inside a
// function marked //nbtilint:packed (internal/noc's packing helpers),
// so the arena layout can evolve in exactly one place. Ad-hoc copies of
// the arithmetic are how a layout change silently reads another unit's
// state.
var PackedIdx = &Analyzer{
	Name: "packedidx",
	Doc: "flags multiply-add index arithmetic in slice/array index and slice-bound " +
		"positions outside functions marked //nbtilint:packed; packed arena " +
		"offsets must route through the named packing helpers so the layout " +
		"can change in one place",
	Run: runPackedIdx,
}

func runPackedIdx(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		// Scope: the invariant protects the engine's arena layout;
		// display code in cmd/ and examples/ never touches it.
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		marked := markedLines(pass.Fset, f, "packed")
		var packedFns []*ast.FuncDecl
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && markerCovers(pass.Fset, marked, fn.Pos()) {
				packedFns = append(packedFns, fn)
			}
		}
		inPacked := func(pos token.Pos) bool {
			for _, fn := range packedFns {
				if fn.Pos() <= pos && pos < fn.End() {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				if isSliceOrArray(pass, n.X) && !inPacked(n.Pos()) {
					checkIdxOperand(pass, n.Index)
				}
			case *ast.SliceExpr:
				if isSliceOrArray(pass, n.X) && !inPacked(n.Pos()) {
					checkIdxOperand(pass, n.Low)
					checkIdxOperand(pass, n.High)
					checkIdxOperand(pass, n.Max)
				}
			}
			return true
		})
	}
	return nil
}

// isSliceOrArray reports whether e is a value of slice, array, or
// pointer-to-array type — the index contexts where packed offsets
// occur. Maps and generic type instantiations are not index layouts.
func isSliceOrArray(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || !tv.IsValue() {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, isArr := t.Elem().Underlying().(*types.Array)
		return isArr
	}
	return false
}

// checkIdxOperand reports a diagnostic if the operand contains a
// multiplication with at least one non-constant factor. A fully
// constant product (`buf[2*3]`) is a literal, not layout arithmetic.
func checkIdxOperand(pass *Pass, e ast.Expr) {
	if e == nil {
		return
	}
	reported := false
	ast.Inspect(e, func(n ast.Node) bool {
		if reported {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.MUL {
			return true
		}
		if isConstExpr(pass, be.X) && isConstExpr(pass, be.Y) {
			return true
		}
		reported = true
		pass.Reportf(be.Pos(), "packed index arithmetic outside a //nbtilint:packed helper: route this offset through the named packing helpers so the arena layout can evolve in one place")
		return false
	})
}

// isConstExpr reports whether the type checker evaluated e to a
// constant.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
