package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand{,/v2} functions that build an
// explicit, locally-seeded generator rather than touching the shared
// global source. They are tolerated by RNGSource (the global stream is
// the hazard), though internal/rng remains the house generator because
// math/rand's helper-method streams are not stable across Go releases.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// RNGSource forbids the package-level convenience functions of
// math/rand and math/rand/v2 (rand.Intn, rand.Float64, rand.Shuffle,
// ...) outside tests. Those draw from a process-global source that is
// seeded randomly at startup (and, in math/rand/v2, cannot be reseeded
// at all), so a scenario using them can never be replayed from its
// recorded seed. All simulator randomness must flow through an
// explicitly seeded internal/rng.Source, whose xoshiro256** stream is
// bit-stable across Go releases.
var RNGSource = &Analyzer{
	Name: "rngsource",
	Doc: "forbids top-level math/rand and math/rand/v2 functions outside " +
		"tests; randomness must come from an explicitly seeded " +
		"internal/rng stream so published tables replay from their seeds",
	Run: runRNGSource,
}

func runRNGSource(pass *Pass) error {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil || randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "%s.%s draws from the process-global random source and cannot replay from a seed; use a seeded internal/rng.Source (derive per-goroutine streams with Split)", path, fn.Name())
			return true
		})
	}
	return nil
}
