package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap flags `range` over a map in non-test library code. Go
// randomizes map iteration order per run, so any map range whose body
// can observe the order — selecting which validation error to return,
// appending rows to a table, accumulating in a rounding-sensitive order
// — silently destroys the byte-identical-output guarantee the
// reproduction's tables rely on.
//
// A map range is accepted without a directive when it is provably
// order-independent in one of two narrow, syntactic senses:
//
//   - the statement captures neither key nor value (`for range m {...}`):
//     every iteration executes identical code, so permuting them cannot
//     change the outcome;
//   - the body's only statement appends the key to a slice that is later
//     passed to a sort function in the same enclosing function
//     (`for k := range m { names = append(names, k) } ... sort.Strings(names)`),
//     the canonical collect-then-sort idiom.
//
// Anything else needs either a real fix or an explicit
// //nbtilint:allow detmap <reason> waiver.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc: "flags range over a map in non-test library code unless the keys are " +
		"collected and sorted, the body ignores key and value, or an " +
		"//nbtilint:allow detmap directive justifies it; map iteration order " +
		"is randomized per run and must never feed simulator output",
	Run: runDetMap,
}

func runDetMap(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		// Scope: the invariant protects the engine and its reduction
		// paths (internal/...); cmd/ and examples/ are display code.
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		// funcStack accumulates every function node seen so far;
		// enclosingFuncBody checks positional containment, so entries
		// for already-closed functions are harmless.
		var funcStack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				return true
			case *ast.RangeStmt:
				if !isMapType(pass.TypesInfo.TypeOf(n.X)) {
					return true
				}
				if rangeIgnoresKeyAndValue(n) {
					return true
				}
				if fn := enclosingFuncBody(funcStack, n); fn != nil &&
					isCollectThenSort(pass, n, fn) {
					return true
				}
				pass.Reportf(n.Pos(), "range over map: iteration order is randomized per run and may leak into simulator output; sort the keys first or annotate //nbtilint:allow detmap <reason>")
				return true
			}
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function on the
// stack that still contains n (ast.Inspect gives no pop notification
// with positions, so containment is checked explicitly).
func enclosingFuncBody(stack []ast.Node, n ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			if fn.Body != nil && fn.Body.Pos() <= n.Pos() && n.End() <= fn.Body.End() {
				return fn.Body
			}
		case *ast.FuncLit:
			if fn.Body != nil && fn.Body.Pos() <= n.Pos() && n.End() <= fn.Body.End() {
				return fn.Body
			}
		}
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rangeIgnoresKeyAndValue reports whether the range statement binds
// neither key nor value (`for range m` or `for _ = range m`, including
// `for _, _ = range m`).
func rangeIgnoresKeyAndValue(n *ast.RangeStmt) bool {
	return isBlankOrNil(n.Key) && isBlankOrNil(n.Value)
}

func isBlankOrNil(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isCollectThenSort recognizes the collect-then-sort idiom: the loop
// body is exactly `s = append(s, k)` for the range key k, and a
// sort.* / slices.Sort* call on s appears after the loop in the same
// function body.
func isCollectThenSort(pass *Pass, n *ast.RangeStmt, fn *ast.BlockStmt) bool {
	keyObj := identObject(pass, n.Key)
	if keyObj == nil || len(n.Body.List) != 1 {
		return false
	}
	assign, ok := n.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	sliceObj := identObject(pass, assign.Lhs[0])
	if sliceObj == nil {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if identObject(pass, call.Args[0]) != sliceObj || identObject(pass, call.Args[1]) != keyObj {
		return false
	}
	// Look for a later sort call on the same slice object.
	found := false
	ast.Inspect(fn, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || call.Pos() < n.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable",
			"Sort", "SortFunc", "SortStableFunc", "Stable":
		default:
			return true
		}
		if len(call.Args) >= 1 && identObject(pass, call.Args[0]) == sliceObj {
			found = true
			return false
		}
		return true
	})
	return found
}

// identObject resolves e to the object of a plain identifier, following
// definitions as well as uses (the range key is a definition).
func identObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}
