package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags `==` and `!=` between floating-point (or complex)
// operands in non-test library code. The duty-cycle, aging and energy
// paths accumulate float64 values whose low bits depend on evaluation
// order; after the PR-1 parallel harness those accumulations must stay
// byte-identical, so exact equality on computed floats is either a
// latent bug (it silently flips when a reduction is reassociated) or a
// sentinel test that deserves an explicit waiver.
//
// Comparisons where both operands are compile-time constants are exact
// and accepted. Everything else should use the helpers in
// internal/floats (floats.AlmostEqual for tolerance comparison,
// floats.ExactZero for deliberate zero-sentinel tests) or carry an
// //nbtilint:allow floatcmp <reason> directive.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flags ==/!= between floating-point operands in non-test library " +
		"code; use internal/floats.AlmostEqual (or document a sentinel " +
		"comparison with //nbtilint:allow floatcmp)",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		// Scope: the invariant guards the engine's computed values;
		// cmd/ and examples/ only format results.
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, xok := pass.TypesInfo.Types[be.X]
			y, yok := pass.TypesInfo.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if !isFloatType(x.Type) && !isFloatType(y.Type) {
				return true
			}
			if x.Value != nil && y.Value != nil {
				// Both sides are untyped/typed constants: the comparison
				// is evaluated exactly at compile time.
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s is rounding-sensitive on computed values; use internal/floats.AlmostEqual (or floats.ExactZero for sentinels), or annotate //nbtilint:allow floatcmp <reason>", be.Op)
			return true
		})
	}
	return nil
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
