package lint

import (
	"go/ast"
	"go/types"
)

// ArenaOwned is the object fact arenaalias attaches to a struct field:
// the field holds a subslice of a flat arena owned elsewhere (the
// network's struct-of-arrays state), so its backing array is shared
// with writer back-pointers. Field records "Type.field" for
// diagnostics in dependent packages.
type ArenaOwned struct {
	Field string
}

// AFact marks ArenaOwned as a lint fact.
func (*ArenaOwned) AFact() {}

// ArenaAlias enforces the flat-memory engine's subslice discipline on
// fields marked //nbtilint:arena: an arena-owned subslice must never
// be grown with append (growth reallocates, silently detaching the
// unit from the arena every back-pointer still writes into), aliased
// from another slice variable, or retained by storing it into another
// slice, a channel, or package-level state. Construction carves
// windows with slice expressions or dedicated helpers; that is the
// only blessed way to (re)bind such a field. The marker is exported as
// an ArenaOwned fact, so the rules follow the field across package
// boundaries.
var ArenaAlias = &Analyzer{
	Name: "arenaalias",
	Doc: "flags append/aliasing/retention of struct fields marked " +
		"//nbtilint:arena (arena-owned subslices of the flat-memory engine); " +
		"growing or re-pointing such a slice orphans the arena back-pointers " +
		"and silently corrupts duty-cycle state",
	FactTypes: []Fact{(*ArenaOwned)(nil)},
	Run:       runArenaAlias,
}

func runArenaAlias(pass *Pass) error {
	c := &arenaChecker{pass: pass, owned: map[*types.Var]string{}}
	c.collectMarkers()
	for _, f := range pass.NonTestFiles() {
		c.checkFile(f)
	}
	return nil
}

type arenaChecker struct {
	pass *Pass
	// owned maps locally marked field objects to their "Type.field"
	// label; consulted by direct lookup only.
	owned map[*types.Var]string
}

// collectMarkers finds //nbtilint:arena markers on struct fields and
// exports the ArenaOwned fact for each.
func (c *arenaChecker) collectMarkers() {
	pass := c.pass
	for _, f := range pass.NonTestFiles() {
		marked := markedLines(pass.Fset, f, "arena")
		if len(marked) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !markerCovers(pass.Fset, marked, fld.Pos()) {
					continue
				}
				for _, name := range fld.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
						pass.Reportf(name.Pos(), "//nbtilint:arena marker on non-slice field %s; the arena discipline applies to subslice fields only", name.Name)
						continue
					}
					label := ts.Name.Name + "." + name.Name
					c.owned[obj] = label
					if _, addressable := objectPath(obj); addressable {
						pass.ExportObjectFact(obj, &ArenaOwned{Field: label})
					}
				}
			}
			return true
		})
	}
}

// arenaField resolves e to a marked arena field, returning its label.
// It sees local markers directly and cross-package ones via the
// ArenaOwned fact.
func (c *arenaChecker) arenaField(e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return "", false
	}
	if label, ok := c.owned[obj]; ok {
		return label, true
	}
	var f ArenaOwned
	if c.pass.ImportObjectFact(obj, &f) {
		return f.Field, true
	}
	return "", false
}

func (c *arenaChecker) checkFile(f *ast.File) {
	pass := c.pass
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkAppend(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.CompositeLit:
			c.checkComposite(n)
		case *ast.SendStmt:
			if label, ok := c.arenaField(n.Value); ok {
				pass.Reportf(n.Arrow, "arena-owned slice %s sent on a channel: the receiver would retain a view into the arena past the owner's lifetime", label)
			}
		}
		return true
	})
}

// isAppend reports whether call invokes the append builtin.
func (c *arenaChecker) isAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// checkAppend flags append growth of an arena field and retention of
// an arena field as an element of another slice. A spread append
// (append(dst, f...)) copies the elements out and is fine.
func (c *arenaChecker) checkAppend(call *ast.CallExpr) {
	if !c.isAppend(call) || len(call.Args) == 0 {
		return
	}
	pass := c.pass
	if label, ok := c.arenaField(call.Args[0]); ok {
		pass.Reportf(call.Pos(), "append grows arena-owned slice %s: growth reallocates the backing array and orphans every writer back-pointer into the arena; size the arena at construction instead", label)
	}
	if call.Ellipsis.IsValid() {
		return
	}
	for _, arg := range call.Args[1:] {
		if label, ok := c.arenaField(arg); ok {
			pass.Reportf(arg.Pos(), "arena-owned slice %s stored as an element of another slice: the retained view outlives the arena discipline", label)
		}
	}
}

// checkAssign flags rebinding an arena field to anything other than a
// carved window (slice expression), a fresh allocation (make or a
// helper call), or nil — and retention into package-level state.
func (c *arenaChecker) checkAssign(as *ast.AssignStmt) {
	pass := c.pass
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if label, ok := c.arenaField(lhs); ok {
				c.checkRebind(label, as.Rhs[i])
			}
		}
	} else if len(as.Rhs) == 1 {
		// Multi-value form: a call or map/chan read feeding several
		// targets. A call result is a fresh window by the rebind rules,
		// so only non-call sources count as aliasing.
		if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
			for _, lhs := range as.Lhs {
				if label, ok := c.arenaField(lhs); ok {
					pass.Reportf(as.Pos(), "arena-owned slice %s rebound from a multi-value source: the field must only hold windows carved from its arena", label)
				}
			}
		}
	}
	// Retention: arena field assigned into a package-level variable.
	for i, rhs := range as.Rhs {
		label, ok := c.arenaField(rhs)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		if base, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[base]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(as.Pos(), "arena-owned slice %s stored in package-level variable %q: the retained view outlives the arena discipline", label, base.Name)
			}
		}
	}
}

// checkRebind validates the right-hand side of an arena field binding.
func (c *arenaChecker) checkRebind(label string, rhs ast.Expr) {
	pass := c.pass
	switch r := ast.Unparen(rhs).(type) {
	case *ast.SliceExpr:
		return // carving a window keeps the backing array
	case *ast.Ident:
		if r.Name == "nil" {
			return // releasing the view is always safe
		}
	case *ast.CallExpr:
		if !c.isAppend(r) {
			return // make(...) or a packing helper returning a fresh window
		}
		if len(r.Args) > 0 {
			if argLabel, ok := c.arenaField(r.Args[0]); ok && argLabel == label {
				return // append growth of the field itself: checkAppend already reported it
			}
		}
		pass.Reportf(rhs.Pos(), "arena-owned slice %s rebound to an append result: the field would alias whatever backing array append chose instead of the arena", label)
		return
	}
	pass.Reportf(rhs.Pos(), "arena-owned slice %s rebound to another slice value: the field must only hold windows carved from its arena (slice expression, make, or a packing helper)", label)
}

// checkComposite applies the rebind rules to keyed struct literals
// (`T{field: v}`), the engine's construction idiom.
func (c *arenaChecker) checkComposite(lit *ast.CompositeLit) {
	pass := c.pass
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		var fieldObj *types.Var
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == key.Name {
				fieldObj = st.Field(i)
				break
			}
		}
		if fieldObj == nil {
			continue
		}
		label, ok := c.fieldLabel(fieldObj)
		if !ok {
			continue
		}
		c.checkRebind(label, kv.Value)
	}
}

// fieldLabel resolves a field object (rather than a selector
// expression) to its arena label, locally or via fact.
func (c *arenaChecker) fieldLabel(obj *types.Var) (string, bool) {
	if label, ok := c.owned[obj]; ok {
		return label, true
	}
	var f ArenaOwned
	if c.pass.ImportObjectFact(obj, &f) {
		return f.Field, true
	}
	return "", false
}
