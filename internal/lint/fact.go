package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a serializable observation about a program object (or a
// whole package) that one package's analysis exports for the benefit
// of every package that imports it — a dependency-free re-statement of
// golang.org/x/tools/go/analysis facts. Concrete fact types must be
// pointers to gob-encodable structs with at least one exported field,
// and must be declared in their producing analyzer's FactTypes so the
// driver can register them with gob and fold their schema into the
// suite fingerprint (see SuiteFingerprint).
type Fact interface {
	// AFact is a marker method tying the implementation to this
	// package's fact protocol.
	AFact()
}

// factKey addresses one fact slot: the owning package, the object path
// within it ("" for a package-level fact) and the concrete fact type.
// Keying on the concrete type namespaces analyzers implicitly — an
// import only matches facts of the exact type the caller asks for.
type factKey struct {
	Pkg string
	Obj string
	Typ string
}

// A FactSet is a collection of facts, either decoded from dependency
// .vetx files (imports) or produced while analyzing one package
// (exports). The zero value is not usable; call NewFactSet.
type FactSet struct {
	m map[factKey]Fact
}

// NewFactSet returns an empty fact collection.
func NewFactSet() *FactSet { return &FactSet{m: map[factKey]Fact{}} }

// Len reports the number of facts in the set.
func (s *FactSet) Len() int { return len(s.m) }

// Merge copies every fact of other into s (other's entries win on
// collision; colliding entries are re-derivations of the same fact, so
// the choice is immaterial).
func (s *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for _, k := range other.sortedKeys() {
		s.m[k] = other.m[k]
	}
}

// Strings renders the set sorted, one "pkg.obj: type" line per fact —
// for tests and debugging.
func (s *FactSet) Strings() []string {
	var out []string
	for _, k := range s.sortedKeys() {
		obj := k.Obj
		if obj == "" {
			obj = "(package)"
		}
		out = append(out, fmt.Sprintf("%s.%s: %s", k.Pkg, obj, k.Typ))
	}
	return out
}

// sortedKeys returns the set's keys in a stable order, so every
// iteration over a FactSet is deterministic (the suite self-hosts
// under detmap: collect, then sort).
func (s *FactSet) sortedKeys() []factKey {
	keys := make([]factKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Typ < b.Typ
	})
	return keys
}

func typeName(f Fact) string { return reflect.TypeOf(f).String() }

// gobFact is the on-disk shape of one fact inside a .vetx payload.
type gobFact struct {
	Pkg  string
	Obj  string
	Fact Fact
}

// Encode serializes the set as the gob payload cmd/nbtilint writes into
// the unitchecker .vetx file. The entry order is canonical, so two
// identical sets encode byte-identically.
func (s *FactSet) Encode() ([]byte, error) {
	keys := s.sortedKeys()
	payload := make([]gobFact, 0, len(keys))
	for _, k := range keys {
		payload = append(payload, gobFact{Pkg: k.Pkg, Obj: k.Obj, Fact: s.m[k]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("lint: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts parses a .vetx payload produced by Encode. Empty input —
// the placeholder a fact-free analyzer run writes — decodes to an empty
// set.
func DecodeFacts(data []byte) (*FactSet, error) {
	s := NewFactSet()
	if len(data) == 0 {
		return s, nil
	}
	var payload []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("lint: decoding facts: %w", err)
	}
	for _, g := range payload {
		if g.Fact == nil {
			continue
		}
		s.m[factKey{Pkg: g.Pkg, Obj: g.Obj, Typ: typeName(g.Fact)}] = g.Fact
	}
	return s, nil
}

// registerFactTypes makes every declared fact type known to gob. Safe
// to call repeatedly: re-registering an identical type is a no-op.
func registerFactTypes(as []*Analyzer) {
	for _, a := range as {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// SuiteFingerprint returns a stable description of the analyzer suite
// and its fact schemas: analyzer names plus, for each declared fact
// type, its name and exported field list. cmd/nbtilint folds it into
// the -V=full build ID, so go vet's result cache (and CI's .vetx
// cache) invalidates whenever an analyzer is added or a fact schema
// changes shape — even if the change would not alter the executable's
// behavior on a given package.
func SuiteFingerprint() string {
	var parts []string
	for _, a := range All() {
		part := a.Name
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			for t.Kind() == reflect.Pointer {
				t = t.Elem()
			}
			part += "+" + t.Name()
			for i := 0; i < t.NumField(); i++ {
				fld := t.Field(i)
				if fld.IsExported() {
					part += ":" + fld.Name + " " + fld.Type.String()
				}
			}
		}
		parts = append(parts, part)
	}
	return "nbtilint-facts/v1{" + strings.Join(parts, ";") + "}"
}

// objectPath encodes obj as a string that a dependent package can
// resolve against obj's package from export data alone. Supported
// shapes — the only ones nbtilint facts attach to:
//
//	Name             package-level object
//	Type.Field       field of a package-level named struct type
//	Type.Method      method of a package-level named type
//
// The bool result is false for objects outside those shapes (locals,
// anonymous struct fields), which cannot carry facts.
func objectPath(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if obj.Parent() == pkg.Scope() {
		return obj.Name(), true
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return name + "." + obj.Name(), true
				}
			}
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i) == obj {
				return name + "." + obj.Name(), true
			}
		}
	}
	return "", false
}

// resolveObjectPath is objectPath's inverse: it finds the object the
// path denotes inside pkg, or nil.
func resolveObjectPath(pkg *types.Package, path string) types.Object {
	name, rest, qualified := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(name)
	if obj == nil || !qualified {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == rest {
				return st.Field(i)
			}
		}
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == rest {
			return named.Method(i)
		}
	}
	return nil
}

// factEnv is the per-driver-run fact state shared by every Pass of one
// package's suite run: facts imported from dependencies plus the facts
// the current package's analyzers have exported so far.
type factEnv struct {
	imported *FactSet
	exported *FactSet
}

func newFactEnv(imported *FactSet) *factEnv {
	if imported == nil {
		imported = NewFactSet()
	}
	return &factEnv{imported: imported, exported: NewFactSet()}
}

// checkFactType panics unless the analyzer declared fact's concrete
// type in FactTypes — an undeclared fact type would silently miss gob
// registration and fingerprint coverage, so it is a programming error.
func (p *Pass) checkFactType(fact Fact) {
	want := typeName(fact)
	for _, f := range p.Analyzer.FactTypes {
		if typeName(f) == want {
			return
		}
	}
	panic(fmt.Sprintf("lint: analyzer %s exported/imported fact type %s not declared in FactTypes",
		p.Analyzer.Name, want))
}

// ExportObjectFact attaches fact to obj, which must belong to the
// package under analysis. The fact becomes visible to the remainder of
// this suite run and, through the .vetx payload, to dependents.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.checkFactType(fact)
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("lint: analyzer %s exported a fact for object %v outside its package",
			p.Analyzer.Name, obj))
	}
	path, ok := objectPath(obj)
	if !ok {
		panic(fmt.Sprintf("lint: analyzer %s exported a fact for unaddressable object %v",
			p.Analyzer.Name, obj))
	}
	p.facts.exported.m[factKey{Pkg: p.Pkg.Path(), Obj: path, Typ: typeName(fact)}] = fact
}

// ImportObjectFact copies the fact of ptr's concrete type attached to
// obj — by this package's earlier analysis or by a dependency's — into
// *ptr and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	p.checkFactType(ptr)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := objectPath(obj)
	if !ok {
		return false
	}
	return p.facts.lookup(factKey{Pkg: obj.Pkg().Path(), Obj: path, Typ: typeName(ptr)}, ptr)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.checkFactType(fact)
	p.facts.exported.m[factKey{Pkg: p.Pkg.Path(), Typ: typeName(fact)}] = fact
}

// ImportPackageFact copies pkg's fact of ptr's concrete type into *ptr
// and reports whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	p.checkFactType(ptr)
	if pkg == nil {
		return false
	}
	return p.facts.lookup(factKey{Pkg: pkg.Path(), Typ: typeName(ptr)}, ptr)
}

func (e *factEnv) lookup(k factKey, ptr Fact) bool {
	f, ok := e.exported.m[k]
	if !ok {
		f, ok = e.imported.m[k]
	}
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}
