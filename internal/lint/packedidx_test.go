package lint_test

import (
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

func TestPackedIdx(t *testing.T) {
	linttest.Run(t, lint.PackedIdx, "packedidx")
}

// TestPackedIdxSkipsMainPackages mirrors the detmap scoping test: the
// arena layout invariant guards engine code; display code in package
// main never touches packed offsets.
func TestPackedIdxSkipsMainPackages(t *testing.T) {
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.PackedIdx}, "mainscope")
	if len(diags) != 0 {
		t.Errorf("packedidx reported %d findings in package main, want 0: %v", len(diags), diags)
	}
}
