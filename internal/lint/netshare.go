package lint

import (
	"go/ast"
	"go/types"
)

// HoldsNetwork is the object fact netshare attaches to a type name:
// values of the type are, or transitively contain, a simulation
// network. Root is true for types carrying the //nbtilint:network
// marker themselves; propagated types record the field or element
// chain that links them to a root in Via (for diagnostics).
type HoldsNetwork struct {
	Root bool
	Via  string
}

// AFact marks HoldsNetwork as a lint fact.
func (*HoldsNetwork) AFact() {}

// NetShare enforces the engine's single-goroutine network discipline:
// a noc.Network — or any value of a type that transitively holds one,
// a property propagated across package boundaries via the HoldsNetwork
// fact — must never be sent on a channel, captured or passed by a
// go-spawned goroutine, or stored in package-level state. The blessed
// concurrency idiom is sim.Pool's one-network-per-job pattern: each
// pool job constructs, steps and discards its own network, and the
// pool's completion edge is the only synchronisation. Root types are
// declared with a //nbtilint:network marker on the type declaration.
var NetShare = &Analyzer{
	Name: "netshare",
	Doc: "flags channel sends, goroutine captures/arguments and package-level " +
		"storage of values whose type transitively holds a simulation network " +
		"(//nbtilint:network roots, propagated cross-package via facts); a " +
		"network aliased across goroutines silently corrupts duty-cycle " +
		"accounting — use sim.Pool's one-network-per-job pattern instead",
	FactTypes: []Fact{(*HoldsNetwork)(nil)},
	Run:       runNetShare,
}

func runNetShare(pass *Pass) error {
	c := &netChecker{pass: pass, holds: map[*types.TypeName]*HoldsNetwork{}}
	c.collectRoots()
	c.propagate()
	c.exportFacts()
	for _, f := range pass.NonTestFiles() {
		c.checkFile(f)
	}
	return nil
}

type netChecker struct {
	pass *Pass
	// roots lists the locally marked type names in file order.
	roots []*types.TypeName
	// holds records the local verdict per package-level type name;
	// only consulted by direct lookup, never ranged.
	holds map[*types.TypeName]*HoldsNetwork
}

// collectRoots finds //nbtilint:network markers on type declarations.
func (c *netChecker) collectRoots() {
	for _, f := range c.pass.NonTestFiles() {
		marked := markedLines(c.pass.Fset, f, "network")
		if len(marked) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if !markerCovers(c.pass.Fset, marked, ts.Pos()) {
				return true
			}
			if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
				c.roots = append(c.roots, tn)
				c.holds[tn] = &HoldsNetwork{Root: true}
			}
			return true
		})
	}
}

// propagate computes the holds-network property for every package-level
// named type as a fixpoint: named types cut the recursion, so mutually
// recursive types converge in at most one pass per dependency link.
func (c *netChecker) propagate() {
	scope := c.pass.Pkg.Scope()
	for changed := true; changed; {
		changed = false
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || c.holds[tn] != nil {
				continue
			}
			if via, yes := c.typeHolds(tn.Type().Underlying(), 0); yes {
				c.holds[tn] = &HoldsNetwork{Via: via}
				changed = true
			}
		}
	}
}

// typeHolds reports whether a value of type t transitively contains a
// network, with via naming the link that establishes it.
func (c *netChecker) typeHolds(t types.Type, depth int) (via string, yes bool) {
	if depth > 32 {
		return "", false
	}
	switch t := t.(type) {
	case *types.Named:
		return c.namedHolds(t.Obj())
	case *types.Alias:
		return c.typeHolds(types.Unalias(t), depth+1)
	case *types.Pointer:
		return c.typeHolds(t.Elem(), depth+1)
	case *types.Slice:
		return c.typeHolds(t.Elem(), depth+1)
	case *types.Array:
		return c.typeHolds(t.Elem(), depth+1)
	case *types.Chan:
		return c.typeHolds(t.Elem(), depth+1)
	case *types.Map:
		if via, yes := c.typeHolds(t.Key(), depth+1); yes {
			return via, yes
		}
		return c.typeHolds(t.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			fld := t.Field(i)
			if via, yes := c.typeHolds(fld.Type(), depth+1); yes {
				if via == "" {
					return "field " + fld.Name(), true
				}
				return "field " + fld.Name() + " (" + via + ")", true
			}
		}
	}
	return "", false
}

// namedHolds resolves the property for a named type: local types via
// the in-progress table, imported types via the HoldsNetwork fact their
// own package exported.
func (c *netChecker) namedHolds(tn *types.TypeName) (via string, yes bool) {
	if tn == nil || tn.Pkg() == nil {
		return "", false
	}
	if tn.Pkg() == c.pass.Pkg {
		if h := c.holds[tn]; h != nil {
			return "type " + tn.Name(), true
		}
		return "", false
	}
	var f HoldsNetwork
	if c.pass.ImportObjectFact(tn, &f) {
		return "type " + tn.Pkg().Name() + "." + tn.Name(), true
	}
	return "", false
}

// exportFacts publishes the verdicts for dependents, in scope order.
func (c *netChecker) exportFacts() {
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if h := c.holds[tn]; h != nil {
			c.pass.ExportObjectFact(tn, h)
		}
	}
}

// exprHolds reports whether the expression's type holds a network.
func (c *netChecker) exprHolds(e ast.Expr) (string, bool) {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return "", false
	}
	return c.typeHolds(t, 0)
}

func (c *netChecker) checkFile(f *ast.File) {
	pass := c.pass
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if via, yes := c.exprHolds(n.Value); yes {
				pass.Reportf(n.Arrow, "channel send shares a value that holds a simulation network (%s); a network must stay confined to one goroutine — use sim.Pool's one-network-per-job pattern", via)
			}
		case *ast.GoStmt:
			c.checkGo(n)
		case *ast.GenDecl:
			c.checkPackageVar(f, n)
		case *ast.AssignStmt:
			c.checkPackageStore(n)
		}
		return true
	})
}

// checkGo flags networks crossing into a spawned goroutine, whether as
// call arguments, as the method receiver, or captured by a closure.
func (c *netChecker) checkGo(g *ast.GoStmt) {
	pass := c.pass
	for _, arg := range g.Call.Args {
		if via, yes := c.exprHolds(arg); yes {
			pass.Reportf(arg.Pos(), "goroutine argument carries a simulation network (%s); networks must not cross goroutines — use sim.Pool's one-network-per-job pattern", via)
		}
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.SelectorExpr:
		if via, yes := c.exprHolds(fun.X); yes {
			pass.Reportf(fun.Pos(), "goroutine method receiver holds a simulation network (%s); networks must not cross goroutines", via)
		}
	case *ast.FuncLit:
		c.checkCapture(fun)
	}
}

// checkCapture flags free variables of a go-spawned closure whose type
// holds a network.
func (c *netChecker) checkCapture(lit *ast.FuncLit) {
	pass := c.pass
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// A free variable is one declared outside the literal.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		if via, yes := c.typeHolds(obj.Type(), 0); yes {
			seen[obj] = true
			pass.Reportf(id.Pos(), "go-spawned closure captures %q, which holds a simulation network (%s); networks must not cross goroutines — use sim.Pool's one-network-per-job pattern", obj.Name(), via)
		}
		return true
	})
}

// checkPackageVar flags package-level variable declarations whose type
// can hold a network.
func (c *netChecker) checkPackageVar(f *ast.File, decl *ast.GenDecl) {
	pass := c.pass
	// Only top-level var declarations matter; nested GenDecls inside
	// functions declare locals.
	isTop := false
	for _, d := range f.Decls {
		if d == ast.Decl(decl) {
			isTop = true
			break
		}
	}
	if !isTop {
		return
	}
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if via, yes := c.typeHolds(obj.Type(), 0); yes {
				pass.Reportf(name.Pos(), "package-level variable %q holds a simulation network (%s); networks are per-run state and must never live in package scope", name.Name, via)
			}
		}
	}
}

// checkPackageStore flags assignments that smuggle a network into
// package-level state through an interface-typed or aggregate global
// (`global = net`, `cache[k] = net`).
func (c *netChecker) checkPackageStore(as *ast.AssignStmt) {
	pass := c.pass
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		var base *ast.Ident
		switch l := lhs.(type) {
		case *ast.Ident:
			base = l
		case *ast.IndexExpr:
			base, _ = l.X.(*ast.Ident)
		}
		if base == nil {
			continue
		}
		obj := pass.TypesInfo.Uses[base]
		if obj == nil || obj.Pkg() != pass.Pkg || obj.Parent() != pass.Pkg.Scope() {
			continue
		}
		if _, isVar := obj.(*types.Var); !isVar {
			continue
		}
		if _, declared := c.typeHolds(obj.Type(), 0); declared {
			// The variable's declared type already holds a network, so
			// the declaration itself carries the diagnostic.
			continue
		}
		if via, yes := c.exprHolds(as.Rhs[i]); yes {
			pass.Reportf(as.Pos(), "assignment stores a value that holds a simulation network (%s) into package-level variable %q; networks are per-run state and must never live in package scope", via, base.Name)
		}
	}
}
