package lint_test

import (
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

func TestGlobalMut(t *testing.T) {
	linttest.Run(t, lint.GlobalMut, "globalmut")
}

// TestGlobalMutSkipsMainPackages: package main owns its process, so its
// flag vars and CLI state are not library state.
func TestGlobalMutSkipsMainPackages(t *testing.T) {
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.GlobalMut}, "mainscope")
	if len(diags) != 0 {
		t.Errorf("globalmut reported %d findings in package main, want 0: %v", len(diags), diags)
	}
}

// TestMarkerDirectives runs the full suite over the marker-grammar
// fixture: a typoed marker verb is reported instead of silently
// disabling an invariant.
func TestMarkerDirectives(t *testing.T) {
	linttest.RunSuite(t, lint.All(), "markerdir")
}
