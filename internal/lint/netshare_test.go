package lint_test

import (
	"strings"
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

func TestNetShare(t *testing.T) {
	linttest.Run(t, lint.NetShare, "netshare")
}

// TestNetShareTransitive checks the cross-package leg: netshare_b never
// mentions a network type, yet its sends, spawns and package vars are
// flagged because netshare_a's HoldsNetwork facts flow in through the
// harness's fact channel.
func TestNetShareTransitive(t *testing.T) {
	linttest.Run(t, lint.NetShare, "netshare_b")
}

// TestNetShareRequiresDepFacts is the negative control for the test
// above: with dependency facts withheld, netshare cannot know that
// netshare_a.Result holds a network, and netshare_b analyzes clean.
// Together the two tests prove the invariant crosses the package
// boundary via facts, not via anything visible in netshare_b's syntax.
func TestNetShareRequiresDepFacts(t *testing.T) {
	diags := linttest.DiagnosticsNoDepFacts(t, []*lint.Analyzer{lint.NetShare}, "netshare_b")
	if len(diags) != 0 {
		t.Errorf("netshare reported %d findings without dependency facts, want 0: %v", len(diags), diags)
	}
}

// TestNetShareFactsExported pins the facts netshare_a publishes: the
// marked root and the transitively-holding Result type, and nothing
// for types that hold no network.
func TestNetShareFactsExported(t *testing.T) {
	facts := linttest.Facts(t, []*lint.Analyzer{lint.NetShare}, "netshare_a")
	want := []string{
		"netshare_a.Network: *lint.HoldsNetwork",
		"netshare_a.Result: *lint.HoldsNetwork",
	}
	got := strings.Join(facts, "\n")
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("exported facts missing %q; got:\n%s", w, got)
		}
	}
	if len(facts) != len(want) {
		t.Errorf("exported %d facts, want %d:\n%s", len(facts), len(want), got)
	}
}
