package lint_test

import (
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

func TestRNGSource(t *testing.T) {
	linttest.Run(t, lint.RNGSource, "rngsource")
}
