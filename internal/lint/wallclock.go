package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level functions of "time" that read or
// wait on the host's wall clock. Timestamps and durations derived from
// them differ run to run, so any engine state or output they touch is
// nondeterministic by construction. Simulation time in this repository
// is the cycle counter threaded through noc.Network.Step; durations are
// cycle counts.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock forbids wall-clock reads outside tests. The only legitimate
// uses are display-only (e.g. cmd/tables printing how long a table took
// to regenerate); those carry an //nbtilint:allow wallclock directive
// whose reason documents that the value never reaches simulator output.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Sleep and friends outside tests; simulated " +
		"time must come from the tick counter so runs replay bit-identically. " +
		"Display-only timing needs an //nbtilint:allow wallclock directive",
	Run: runWallClock,
}

func runWallClock(pass *Pass) error {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "time.%s reads the wall clock: simulation time must come from the tick counter; for display-only timing annotate //nbtilint:allow wallclock <reason>", fn.Name())
			return true
		})
	}
	return nil
}
