package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The full syntax is
//
//	//nbtilint:allow <analyzer> <reason...>
//
// attached either at the end of the offending line or as a comment on
// the line immediately above it. The reason is mandatory.
const allowPrefix = "//nbtilint:allow"

// knownAnalyzers lists the valid directive targets as plain strings so
// directive parsing does not reference the Analyzer values themselves
// (which would create an initialization cycle through Pass.Reportf).
// TestKnownAnalyzersMatchesAll pins this set to All().
var knownAnalyzers = map[string]bool{
	"detmap":     true,
	"wallclock":  true,
	"rngsource":  true,
	"floatcmp":   true,
	"netshare":   true,
	"arenaalias": true,
	"packedidx":  true,
	"globalmut":  true,
}

// KnownAnalyzerName reports whether //nbtilint:allow accepts name as a
// directive target.
func KnownAnalyzerName(name string) bool { return knownAnalyzers[name] }

// allowSet records, per analyzer, the set of source lines covered by a
// well-formed allow directive, plus the positions of malformed ones.
type allowSet struct {
	// lines maps analyzer name -> line numbers the directive covers.
	lines map[string]map[int]bool
	// malformed lists directives missing an analyzer name or a reason.
	malformed []malformedAllow
}

type malformedAllow struct {
	pos token.Pos
	msg string
}

// parseAllows scans a file's comments for directives.
func parseAllows(fset *token.FileSet, f *ast.File) *allowSet {
	as := &allowSet{lines: map[string]map[int]bool{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			if i := strings.Index(text, "// want"); i > 0 {
				// Comments run to end of line, so a linttest fixture
				// expectation written after a directive would otherwise
				// be swallowed into the reason; cut it off.
				text = strings.TrimRight(text[:i], " \t")
			}
			rest := strings.TrimPrefix(text, allowPrefix)
			// Require the prefix to be the whole token: reject
			// "//nbtilint:allowx".
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				as.malformed = append(as.malformed, malformedAllow{
					pos: c.Pos(),
					msg: "directive needs an analyzer name and a reason: //nbtilint:allow <analyzer> <reason...>",
				})
				continue
			case len(fields) == 1:
				as.malformed = append(as.malformed, malformedAllow{
					pos: c.Pos(),
					msg: "directive needs a reason: //nbtilint:allow " + fields[0] + " <reason...>",
				})
				continue
			}
			name := fields[0]
			if !knownAnalyzers[name] {
				as.malformed = append(as.malformed, malformedAllow{
					pos: c.Pos(),
					msg: "directive names unknown analyzer " + name,
				})
				continue
			}
			if as.lines[name] == nil {
				as.lines[name] = map[int]bool{}
			}
			// The directive covers its own line and the next one, so it
			// works both as an end-of-line comment and as a standalone
			// comment above the offending statement.
			line := fset.Position(c.Pos()).Line
			as.lines[name][line] = true
			as.lines[name][line+1] = true
		}
	}
	return as
}

// suppressed reports whether an //nbtilint:allow directive for the
// current analyzer covers the diagnostic's line.
func (p *Pass) suppressed(pos token.Pos, position token.Position) bool {
	f := p.fileContaining(pos)
	if f == nil {
		return false
	}
	if p.allows == nil {
		p.allows = map[*ast.File]*allowSet{}
	}
	as, ok := p.allows[f]
	if !ok {
		as = parseAllows(p.Fset, f)
		p.allows[f] = as
	}
	return as.lines[p.Analyzer.Name][position.Line]
}

func (p *Pass) fileContaining(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// malformedDirectiveDiagnostics reports every syntactically broken
// nbtilint directive in the given files as a diagnostic of the
// pseudo-analyzer "allow": allow waivers missing their analyzer or
// reason, and //nbtilint: comments with an unknown verb. A waiver that
// cannot say what it waives, or why — or a typoed marker that would
// silently disable an invariant — must not rot in the tree.
func malformedDirectiveDiagnostics(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		for _, m := range parseAllows(fset, f).malformed {
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(m.pos),
				Analyzer: "allow",
				Message:  m.msg,
			})
		}
		diags = append(diags, unknownDirectiveDiagnostics(fset, f)...)
	}
	return diags
}
