package lint_test

import (
	"strings"
	"testing"

	"nbtinoc/internal/lint"
	"nbtinoc/internal/lint/linttest"
)

func TestArenaAlias(t *testing.T) {
	linttest.Run(t, lint.ArenaAlias, "arenaalias")
}

// TestArenaAliasFactsExported pins the ArenaOwned fact to the marked
// slice field (and only it: the unmarked scratch field and the
// mismarked non-slice field export nothing).
func TestArenaAliasFactsExported(t *testing.T) {
	facts := linttest.Facts(t, []*lint.Analyzer{lint.ArenaAlias}, "arenaalias")
	got := strings.Join(facts, "\n")
	if !strings.Contains(got, "arenaalias.unit.vcs: *lint.ArenaOwned") {
		t.Errorf("exported facts missing unit.vcs ArenaOwned; got:\n%s", got)
	}
	if len(facts) != 1 {
		t.Errorf("exported %d facts, want 1:\n%s", len(facts), got)
	}
}
