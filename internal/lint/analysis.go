// Package lint implements nbtilint, a suite of static analyzers that
// machine-check the determinism invariants the reproduction's results
// depend on (see DESIGN.md "Static analysis"): no unordered map
// iteration feeding output, no wall-clock time inside the engine, all
// randomness through seeded internal/rng streams, and no exact
// floating-point equality on computed values.
//
// The package is a deliberately small, dependency-free re-implementation
// of the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic, and since v2 also Facts) built only on the standard
// library's go/ast and go/types, because the build environment vendors
// no external modules. Analyzers are side-effect-free; the ones that
// need cross-package knowledge (netshare, arenaalias) export
// gob-serialized facts (fact.go) that cmd/nbtilint threads through the
// unitchecker .vetx files, so invariants propagate transitively across
// the package graph exactly like go vet's own fact-based checkers.
//
// Diagnostics can be suppressed at the offending line (or the line
// directly above it) with a directive comment carrying a mandatory
// justification:
//
//	//nbtilint:allow <analyzer> <reason...>
//
// A directive with no reason does not suppress anything — it is itself
// reported, so stale or lazy waivers cannot accumulate silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nbtilint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and which determinism invariant it guards.
	Doc string
	// FactTypes declares the concrete fact types (pointer values) the
	// analyzer exports or imports. Analyzers with facts run even on
	// fact-only dependency passes (unitchecker VetxOnly), so their
	// observations reach dependent packages.
	FactTypes []Fact
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, parsed with comments.
	Files []*ast.File
	// Pkg and TypesInfo carry the go/types results for Files.
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the package's import path as the build system knows
	// it (e.g. "nbtinoc/internal/noc"). Analyzers use it for scoping.
	ImportPath string

	// report receives every diagnostic that survives suppression.
	report func(Diagnostic)
	// allows caches the parsed //nbtilint:allow directives per file.
	allows map[*ast.File]*allowSet
	// facts is the suite run's shared fact state (imports + exports).
	facts *factEnv
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an //nbtilint:allow directive
// for this analyzer covers the line (or the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(pos, position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// All nbtilint analyzers exempt tests: tests may freely use wall-clock
// timeouts, throwaway randomness, and map iteration.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// NonTestFiles returns the package files that are not _test.go files.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// All returns every nbtilint analyzer, sorted by name. This is the suite
// cmd/nbtilint runs and the one the Makefile's lint target enforces.
func All() []*Analyzer {
	as := []*Analyzer{
		DetMap, WallClock, RNGSource, FloatCmp,
		NetShare, ArenaAlias, PackedIdx, GlobalMut,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	registerFactTypes(as)
	return as
}

// FactAnalyzers returns the subset of as that exports or imports facts
// — the analyzers a fact-only dependency pass must still run.
func FactAnalyzers(as []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range as {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzer type-checks nothing itself: the caller supplies parsed
// files plus types info, and RunAnalyzer drives one analyzer over them,
// returning the surviving diagnostics sorted by position. Malformed
// //nbtilint:allow directives in the package are appended as diagnostics
// of the pseudo-analyzer "allow" exactly once per driver run (they are
// produced by the first analyzer executed for the package — run through
// RunSuite to get them deduplicated across a whole suite).
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, importPath string) ([]Diagnostic, error) {
	registerFactTypes([]*Analyzer{a})
	env := newFactEnv(nil)
	diags, err := runOne(a, fset, files, pkg, info, importPath, env)
	if err != nil {
		return nil, err
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runOne drives a single analyzer over one package against the given
// fact environment, returning its unsorted diagnostics.
func runOne(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, importPath string, env *factEnv) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		ImportPath: importPath,
		report:     func(d Diagnostic) { diags = append(diags, d) },
		facts:      env,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return diags, nil
}

// A SuiteResult is the outcome of one package's full suite run: the
// surviving diagnostics plus the facts the package's analyzers
// exported for dependents.
type SuiteResult struct {
	Diagnostics []Diagnostic
	Facts       *FactSet
}

// RunSuite runs every analyzer in as over one package and returns the
// combined diagnostics (including one entry per malformed directive),
// sorted by position then analyzer name. Facts from dependencies are
// not visible and exported facts are discarded; drivers that thread
// facts across packages use RunSuiteFacts.
func RunSuite(as []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, importPath string) ([]Diagnostic, error) {
	res, err := RunSuiteFacts(as, fset, files, pkg, info, importPath, nil)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunSuiteFacts is RunSuite with cross-package facts: imported holds
// the decoded facts of the package's dependencies (nil for none), and
// the result carries the facts this package's analyzers exported.
// Within the run, every analyzer sees the imports plus all facts
// exported earlier in the same run.
func RunSuiteFacts(as []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, importPath string, imported *FactSet) (SuiteResult, error) {
	registerFactTypes(as)
	env := newFactEnv(imported)
	var diags []Diagnostic
	for _, a := range as {
		ds, err := runOne(a, fset, files, pkg, info, importPath, env)
		if err != nil {
			return SuiteResult{}, err
		}
		diags = append(diags, ds...)
	}
	diags = append(diags, malformedDirectiveDiagnostics(fset, files)...)
	sortDiagnostics(diags)
	return SuiteResult{Diagnostics: diags, Facts: env.exported}, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
