package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCompareBasic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-cache", "off", "-cores", "4", "-vcs", "2", "-rate", "0.1",
		"-warmup", "500", "-cycles", "8000", "-top", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rr-no-sensor", "sensor-wise", "summary over 12 ports",
		"wins on", "latency", "throughput", "more ports omitted"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareShowAll(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-cache", "off", "-cores", "4", "-vcs", "2", "-rate", "0.1",
		"-warmup", "500", "-cycles", "5000", "-top", "0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "omitted") {
		t.Error("-top 0 still omitted ports")
	}
}

func TestCompareBaselineVsSelf(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-cache", "off", "-a", "baseline", "-b", "baseline",
		"-cores", "4", "-vcs", "2", "-warmup", "500", "-cycles", "5000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical policies give a zero mean gap.
	if !strings.Contains(buf.String(), "mean gap 0.00 points") {
		t.Errorf("self-comparison gap not zero:\n%s", buf.String())
	}
}

func TestCompareBadPolicy(t *testing.T) {
	if err := run([]string{"-cache", "off", "-a", "bogus", "-cycles", "100"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
