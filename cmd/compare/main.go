// Command compare runs the same scenario under two recovery policies on
// identical silicon and traffic, then reports every router input port
// side by side: most-degraded-VC duty-cycle under each policy, the gap,
// and the performance deltas. It answers the practical question the
// paper's tables answer for single ports — "what does switching policy
// buy me, everywhere?" — over the whole chip.
//
// Example:
//
//	compare -a rr-no-sensor -b sensor-wise -cores 16 -vcs 4 -rate 0.2
//
// Both runs are memoized in the content-addressed result cache
// (-cache, -cache-dir; -cache=off disables), so re-comparing against
// an already-simulated policy only computes the new side.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/core"
	"nbtinoc/internal/metrics"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/prof"
	"nbtinoc/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}

type portResult struct {
	node noc.NodeID
	port noc.Port
	md   int
	a, b float64 // MD-VC duty under policy A and B
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	var metFlags metrics.CLIFlags
	metFlags.Register(fs)
	var (
		polA     = fs.String("a", "rr-no-sensor", "first policy: "+strings.Join(core.Names(), ", "))
		polB     = fs.String("b", "sensor-wise", "second policy")
		cores    = fs.Int("cores", 16, "number of cores (square mesh)")
		vcs      = fs.Int("vcs", 4, "VCs per vnet per input port")
		workload = fs.String("workload", "uniform", "workload name or 'app'")
		rate     = fs.Float64("rate", 0.2, "injection rate for synthetic workloads")
		warmup   = fs.Uint64("warmup", 10_000, "warm-up cycles")
		measure  = fs.Uint64("cycles", 100_000, "measured cycles")
		seed     = fs.Uint64("seed", 1, "traffic seed")
		pvSeed   = fs.Uint64("pv-seed", 1, "process-variation seed")
		phits    = fs.Int("phits", 1, "link serialization factor")
		worst    = fs.Int("top", 8, "show only the N ports with the largest |gap| (0 = all)")
		jobs     = fs.Int("j", 0, "parallel workers for the two runs: 0 = one per core, 1 = sequential")

		cacheMode = fs.String("cache", "rw", "result cache mode: off, ro or rw")
		cacheDir  = fs.String("cache-dir", "", "result cache directory (default: user cache dir)")
		verbose   = fs.Bool("v", false, "print result-cache statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Setup must precede openCache and the two runs: instruments are
	// resolved at construction time against the then-current default.
	finishMet, err := metFlags.Setup(false, prof.HTTPHandler(), func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "compare: "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	defer func() {
		if merr := finishMet(); merr != nil && err == nil {
			err = merr
		}
	}()

	store, err := openCache(*cacheMode, *cacheDir)
	if err != nil {
		return err
	}
	runner := sim.Runner{Store: store}

	runOne := func(policy string) (*sim.RunSummary, error) {
		scen := &sim.Scenario{
			Name:     "compare",
			Cores:    *cores,
			VCs:      *vcs,
			Policy:   policy,
			Workload: *workload,
			Rate:     *rate,
			Phits:    *phits,
			Warmup:   *warmup,
			Measure:  *measure,
			Seed:     *seed,
			PVSeed:   *pvSeed,
		}
		side, err := sim.MeshSide(*cores)
		if err != nil {
			return nil, err
		}
		spec, err := scen.Spec(sim.AllPortProbes(side, side))
		if err != nil {
			return nil, err
		}
		return runner.Run(spec)
	}
	// The two runs are independent (each owns its network), so they go
	// through the scenario pool like the table drivers.
	policies := []string{*polA, *polB}
	results := make([]*sim.RunSummary, len(policies))
	if err := (sim.Pool{Workers: *jobs}).Run(len(policies), func(i int) error {
		res, err := runOne(policies[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return err
	}
	resA, resB := results[0], results[1]

	ports, err := collect(resA, resB)
	if err != nil {
		return err
	}
	sort.Slice(ports, func(i, j int) bool {
		return abs(ports[i].a-ports[i].b) > abs(ports[j].a-ports[j].b)
	})
	shown := ports
	if *worst > 0 && len(shown) > *worst {
		shown = shown[:*worst]
	}

	fmt.Fprintf(out, "policy A = %s, policy B = %s — MD-VC NBTI-duty-cycle per port\n", *polA, *polB)
	fmt.Fprintf(out, "%-6s %-5s %-4s %10s %10s %9s\n", "node", "port", "MD", *polA, *polB, "A-B")
	for _, p := range shown {
		fmt.Fprintf(out, "%-6d %-5v %-4d %9.2f%% %9.2f%% %8.2f%%\n",
			p.node, p.port, p.md, p.a, p.b, p.a-p.b)
	}
	if len(shown) < len(ports) {
		fmt.Fprintf(out, "(%d more ports omitted; -top 0 shows all)\n", len(ports)-len(shown))
	}

	var sumA, sumB float64
	wins := 0
	for _, p := range ports {
		sumA += p.a
		sumB += p.b
		if p.b < p.a {
			wins++
		}
	}
	n := float64(len(ports))
	fmt.Fprintf(out, "\nsummary over %d ports:\n", len(ports))
	fmt.Fprintf(out, "  mean MD duty: %s %.2f%%  %s %.2f%%  (mean gap %.2f points)\n",
		*polA, sumA/n, *polB, sumB/n, (sumA-sumB)/n)
	fmt.Fprintf(out, "  %s wins on %d/%d ports\n", *polB, wins, len(ports))
	fmt.Fprintf(out, "  latency: %s %.2f cy, %s %.2f cy (Δ %+.2f)\n",
		*polA, resA.AvgLatency, *polB, resB.AvgLatency, resB.AvgLatency-resA.AvgLatency)
	fmt.Fprintf(out, "  throughput: %s %.4f, %s %.4f flits/cycle/node\n",
		*polA, resA.Throughput, *polB, resB.Throughput)
	if *verbose && store != nil {
		fmt.Fprintf(os.Stderr, "compare: cache: %s\n", store.Stats())
	}
	return nil
}

// openCache builds the result store selected by the -cache/-cache-dir
// flags; mode off yields a nil store (the always-compute pass-through).
func openCache(mode, dir string) (*cache.Store, error) {
	m, err := cache.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	if m == cache.Off {
		return nil, nil
	}
	if dir == "" {
		dir = cache.DefaultDir()
	}
	st := cache.Open(dir, m)
	// The library never reads the wall clock (nbtilint's determinism
	// rules); the CLI injects it so hits can report time saved.
	//nbtilint:allow wallclock display-only: compute durations are recorded in cache entries so later hits can report wall-clock time saved; they never feed simulator state or outputs
	st.Clock = func() int64 { return time.Now().UnixNano() }
	st.Warnf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "compare: cache: "+format+"\n", args...)
	}
	return st, nil
}

// collect pairs up the per-port MD duty-cycles of the two runs. Both
// summaries probed every input port in the same AllPortProbes order, so
// readings pair up by index.
func collect(a, b *sim.RunSummary) ([]portResult, error) {
	if len(a.Ports) != len(b.Ports) {
		return nil, fmt.Errorf("probe sets differ across runs (%d vs %d ports)",
			len(a.Ports), len(b.Ports))
	}
	var out []portResult
	for i, ra := range a.Ports {
		rb := b.Ports[i]
		md := ra.MostDegraded
		if rb.MostDegraded != md {
			return nil, fmt.Errorf("MD VC differs across runs at node %d port %v (%d vs %d) — use the same -pv-seed",
				ra.Probe.Node, ra.Probe.Port, md, rb.MostDegraded)
		}
		out = append(out, portResult{
			node: ra.Probe.Node, port: ra.Probe.Port, md: md,
			a: ra.Duty[md],
			b: rb.Duty[md],
		})
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
