package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/service"
	"nbtinoc/internal/sim"
)

func quickSpec() sim.Spec {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 2
	return sim.Spec{
		Net:     cfg,
		Policy:  sim.PolicySpec{Name: "sensor-wise"},
		Gen:     sim.GenSpec{Kind: "synthetic", Pattern: "uniform", Width: 2, Height: 2, Rate: 0.1, PacketLen: 4, Seed: 9},
		Warmup:  200,
		Measure: 2_000,
		Probes:  []sim.PortProbe{{Node: 0, Port: noc.East}},
	}
}

// startDaemon runs the daemon in-process on a free port and returns
// its base URL, a line channel with its remaining output, and the
// channel run's error arrives on after a signal.
func startDaemon(t *testing.T, extra ...string) (base string, lines <-chan string, done <-chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-cache-dir", t.TempDir(), "-j", "2"}, extra...)
	go func() {
		err := run(args, pw)
		pw.Close()
		errc <- err
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("daemon produced no startup line (run error: %v)", <-errc)
	}
	first := sc.Text()
	const marker = "listening on "
	i := strings.Index(first, marker)
	if i < 0 {
		t.Fatalf("startup line %q lacks %q", first, marker)
	}
	base = strings.TrimSpace(first[i+len(marker):])
	rest := make(chan string, 64)
	go func() {
		defer close(rest)
		for sc.Scan() {
			rest <- sc.Text()
		}
	}()
	return base, rest, errc
}

func TestDaemonEndToEnd(t *testing.T) {
	base, lines, done := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	spec := quickSpec()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%+v)", resp.StatusCode, view)
	}

	deadline := time.Now().Add(30 * time.Second)
	for view.State != service.StateDone && view.State != service.StateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if view.State != service.StateDone {
		t.Fatalf("job failed: %s", view.Error)
	}

	// The daemon's JSON report must be byte-identical to the CLI's
	// (both call the shared sim renderer on the same summary).
	r, err := http.Get(base + "/jobs/" + view.ID + "/result?format=json")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %v", r.StatusCode, err)
	}
	sum, err := spec.Compute()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sum.Render(&want, "json"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("daemon result differs from the CLI renderer:\n--- daemon ---\n%s--- cli ---\n%s", got, want.Bytes())
	}

	// A second submission of the same spec dedups at the job layer —
	// and the store's miss counter proves only one simulation ran.
	resp, err = http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d, want 200 (dedup)", resp.StatusCode)
	}
	var stats struct {
		Store struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"store"`
	}
	r, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if stats.Store.Misses != 1 {
		t.Errorf("store misses = %d after resubmit, want 1 (exactly one simulation)", stats.Store.Misses)
	}

	// SIGTERM drains: run returns nil and says goodbye.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	var tail []string
	for line := range lines {
		tail = append(tail, line)
	}
	out := strings.Join(tail, "\n")
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained, bye") {
		t.Errorf("drain output:\n%s", out)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-cache", "sideways"}, io.Discard); err == nil {
		t.Error("bad cache mode accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard); err == nil {
		t.Error("unlistenable address accepted")
	}
}
