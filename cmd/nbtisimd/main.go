// Command nbtisimd is the long-running simulation service: an
// HTTP/JSON daemon that accepts declarative sim.Spec submissions
// (author them with nbtisim -emit-spec), queues them on a bounded
// priority queue, executes them through a bounded worker pool, and
// dedups identical work through the content-addressed result cache —
// a million identical submissions cost one simulation.
//
//	nbtisimd -addr 127.0.0.1:8310 -j 4 -cache-dir /var/cache/nbtinoc
//
// SIGTERM/SIGINT drains gracefully: new submissions get 503, every
// accepted job finishes, then the process exits. See the README
// "Simulation service" section for the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/metrics"
	"nbtinoc/internal/prof"
	"nbtinoc/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nbtisimd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbtisimd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8310", "listen address (host:port; :0 picks a free port)")
		jobs        = fs.Int("j", 0, "simulation workers: 0 = one per core")
		queueCap    = fs.Int("queue", service.DefaultQueueCap, "job queue capacity (submissions beyond it get 429)")
		clientLimit = fs.Int("client-limit", 64, "max queued+running jobs per client (X-Client-ID header or remote host); 0 = unlimited")
		jobTimeout  = fs.Duration("job-timeout", 0, "fail jobs still running after this long (0 = no timeout)")
		cacheMode   = fs.String("cache", "rw", "result cache mode: off, ro or rw")
		cacheDir    = fs.String("cache-dir", "", "result cache directory (default: user cache dir)")
		verbose     = fs.Bool("v", false, "log job completions and print cache statistics on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The daemon always carries a live registry: /metrics is part of
	// the service API, not an opt-in like the CLI's -metrics-addr.
	metrics.SetDefault(metrics.New())
	defer metrics.SetDefault(nil)

	store, err := openCache("nbtisimd", *cacheMode, *cacheDir)
	if err != nil {
		return err
	}
	warnf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "nbtisimd: "+format+"\n", a...)
	}
	cfg := service.Config{
		Store:        store,
		Workers:      *jobs,
		QueueCap:     *queueCap,
		ClientLimit:  *clientLimit,
		JobTimeoutNS: int64(*jobTimeout),
		Debug:        prof.HTTPHandler(),
	}
	if *verbose {
		cfg.Warnf = warnf
	}
	// internal/service never touches the time package (determinism
	// lint); the binary owns the wall clock and hands it in, the same
	// seam the cache lease policy uses.
	//nbtilint:allow wallclock service boundary: job timestamps and timeouts are operational concerns of the daemon, injected so internal/service stays deterministic
	cfg.Clock = func() int64 { return time.Now().UnixNano() }
	cfg.After = func(ns int64) <-chan struct{} {
		c := make(chan struct{})
		//nbtilint:allow wallclock service boundary: per-job timeout timer, injected into internal/service
		time.AfterFunc(time.Duration(ns), func() { close(c) })
		return c
	}

	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is the startup handshake: tests and
	// scripts using -addr :0 parse the port from it.
	fmt.Fprintf(out, "nbtisimd: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		fmt.Fprintf(out, "nbtisimd: %v: draining (in-flight jobs finish, new submissions get 503)\n", got)
	}
	// Drain first so /healthz and /jobs report the draining state while
	// accepted jobs finish; only then stop the HTTP listener.
	srv.Drain()
	if err := hs.Shutdown(context.Background()); err != nil {
		return err
	}
	if *verbose && store != nil {
		fmt.Fprintf(os.Stderr, "nbtisimd: cache: %+v\n", store.Stats())
	}
	fmt.Fprintln(out, "nbtisimd: drained, bye")
	return nil
}

// openCache mirrors the nbtisim CLI helper: same modes, same default
// directory, so a daemon and CLI runs dedup against each other through
// the lease files when they share a cache directory.
func openCache(prog, mode, dir string) (*cache.Store, error) {
	m, err := cache.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	if m == cache.Off {
		return nil, nil
	}
	if dir == "" {
		dir = cache.DefaultDir()
	}
	st := cache.Open(dir, m)
	//nbtilint:allow wallclock display-only: compute durations are recorded in cache entries so later hits can report wall-clock time saved; they never feed simulator state or outputs
	st.Clock = func() int64 { return time.Now().UnixNano() }
	if m == cache.ReadWrite {
		//nbtilint:allow wallclock display-only: lease waiters sleep between polls; cache contents and rendered output are independent of any timing
		st.Lease = cache.DefaultLeasePolicy(func(ns int64) { time.Sleep(time.Duration(ns)) })
	}
	st.Warnf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, prog+": cache: "+format+"\n", args...)
	}
	return st, nil
}
