package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbtinoc/internal/lint"
)

func TestPrintAnalyzersListsWholeSuite(t *testing.T) {
	var buf bytes.Buffer
	printAnalyzers(&buf)
	out := buf.String()
	for _, a := range lint.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

// writeUnit creates a self-contained unit config for a dependency-free
// fixture source file and returns the cfg path and the vetx output path.
func writeUnit(t *testing.T, src string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "p.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetxPath = filepath.Join(dir, "p.vetx")
	cfg := unitConfig{
		ID:         "tmplint/p",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "tmplint/p",
		GoFiles:    []string{goFile},
		VetxOnly:   vetxOnly,
		VetxOutput: vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestRunUnitReportsDiagnostics(t *testing.T) {
	// A dependency-free package with a detmap violation: the unit run
	// must exit 2 (diagnostics found) and still write the facts file.
	cfgPath, vetxPath := writeUnit(t, `package p

func keys(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
`, false)
	if code := runUnit(cfgPath); code != 2 {
		t.Errorf("runUnit on violating package = exit %d, want 2", code)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("facts placeholder not written: %v", err)
	}
}

func TestRunUnitCleanPackage(t *testing.T) {
	cfgPath, vetxPath := writeUnit(t, `package p

func sum(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	return total
}
`, false)
	if code := runUnit(cfgPath); code != 0 {
		t.Errorf("runUnit on clean package = exit %d, want 0", code)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("facts placeholder not written: %v", err)
	}
}

func TestRunUnitVetxOnlySkipsAnalysis(t *testing.T) {
	// Fact-only dependency runs must not report diagnostics even for a
	// violating package — and must be cheap: no parse, no typecheck.
	cfgPath, vetxPath := writeUnit(t, `package p

func keys(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
`, true)
	if code := runUnit(cfgPath); code != 0 {
		t.Errorf("runUnit VetxOnly = exit %d, want 0", code)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("facts placeholder not written: %v", err)
	}
}

func TestRunUnitRespectsAllowDirective(t *testing.T) {
	cfgPath, _ := writeUnit(t, `package p

func keys(m map[string]int) string {
	//nbtilint:allow detmap any key serves equally in this fixture
	for k := range m {
		return k
	}
	return ""
}
`, false)
	if code := runUnit(cfgPath); code != 0 {
		t.Errorf("runUnit on allow-annotated package = exit %d, want 0", code)
	}
}
