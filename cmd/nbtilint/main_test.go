package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"nbtinoc/internal/lint"
)

func TestPrintAnalyzersListsWholeSuite(t *testing.T) {
	var buf bytes.Buffer
	printAnalyzers(&buf)
	out := buf.String()
	for _, a := range lint.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

func TestPrintFlagsDescribesEveryAnalyzer(t *testing.T) {
	var buf bytes.Buffer
	printFlags(&buf)
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(buf.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]bool{}
	for _, f := range flags {
		if !f.Bool {
			t.Errorf("flag %q is not boolean; cmd/go only forwards boolean vet flags correctly", f.Name)
		}
		byName[f.Name] = true
	}
	for _, a := range lint.All() {
		if !byName[a.Name] {
			t.Errorf("-flags output missing analyzer flag %q", a.Name)
		}
	}
}

func TestParseUnitFlags(t *testing.T) {
	enabled := parseUnitFlags([]string{"-detmap=false", "-netshare=true"})
	if enabled["detmap"] {
		t.Error("-detmap=false did not disable detmap")
	}
	if !enabled["netshare"] || !enabled["wallclock"] {
		t.Error("analyzers not mentioned on the command line must default to enabled")
	}
}

// writeUnit creates a self-contained unit config for a dependency-free
// fixture source file and returns the cfg path and the vetx output path.
func writeUnit(t *testing.T, src string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "p.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetxPath = filepath.Join(dir, "p.vetx")
	cfg := unitConfig{
		ID:         "tmplint/p",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "tmplint/p",
		GoFiles:    []string{goFile},
		VetxOnly:   vetxOnly,
		VetxOutput: vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestRunUnitReportsDiagnostics(t *testing.T) {
	// A dependency-free package with a detmap violation: the unit run
	// must exit 2 (diagnostics found) and still write the facts file.
	cfgPath, vetxPath := writeUnit(t, `package p

func keys(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
`, false)
	if code := runUnit(cfgPath, nil); code != 2 {
		t.Errorf("runUnit on violating package = exit %d, want 2", code)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("facts placeholder not written: %v", err)
	}
}

func TestRunUnitCleanPackage(t *testing.T) {
	cfgPath, vetxPath := writeUnit(t, `package p

func sum(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	return total
}
`, false)
	if code := runUnit(cfgPath, nil); code != 0 {
		t.Errorf("runUnit on clean package = exit %d, want 0", code)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("facts placeholder not written: %v", err)
	}
}

func TestRunUnitDisabledAnalyzer(t *testing.T) {
	// The same detmap violation as above, but with detmap switched off
	// through the per-analyzer flag: the unit must analyze clean.
	cfgPath, _ := writeUnit(t, `package p

func keys(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
`, false)
	if code := runUnit(cfgPath, parseUnitFlags([]string{"-detmap=false"})); code != 0 {
		t.Errorf("runUnit with -detmap=false = exit %d, want 0", code)
	}
}

func TestRunUnitVetxOnlyFastPath(t *testing.T) {
	// Fact-only dependency runs must not report diagnostics even for a
	// violating package — and when the unit neither inherits facts nor
	// contains an //nbtilint: directive, the fast path skips parsing
	// entirely and writes an empty facts payload.
	cfgPath, vetxPath := writeUnit(t, `package p

func keys(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
`, true)
	if code := runUnit(cfgPath, nil); code != 0 {
		t.Errorf("runUnit VetxOnly = exit %d, want 0", code)
	}
	data, err := os.ReadFile(vetxPath)
	if err != nil {
		t.Fatalf("facts placeholder not written: %v", err)
	}
	if len(data) != 0 {
		t.Errorf("fast path wrote %d bytes of facts, want empty placeholder", len(data))
	}
}

func TestRunUnitVetxOnlyExportsFacts(t *testing.T) {
	// A marked network type forces the slow VetxOnly path: the fact
	// analyzers run (still exit 0 — diagnostics are for the unit's own
	// full pass, not the fact pass) and the marker's facts land in the
	// .vetx payload.
	cfgPath, vetxPath := writeUnit(t, `package p

//nbtilint:network simulation root
type Network struct{ Cycle int }

type Result struct{ Net *Network }

var leaked *Network
`, true)
	if code := runUnit(cfgPath, nil); code != 0 {
		t.Errorf("runUnit VetxOnly = exit %d, want 0", code)
	}
	data, err := os.ReadFile(vetxPath)
	if err != nil {
		t.Fatalf("facts not written: %v", err)
	}
	lint.All() // register fact types with gob before decoding
	facts, err := lint.DecodeFacts(data)
	if err != nil {
		t.Fatalf("decoding facts: %v", err)
	}
	got := strings.Join(facts.Strings(), "\n")
	for _, want := range []string{
		"tmplint/p.Network: *lint.HoldsNetwork",
		"tmplint/p.Result: *lint.HoldsNetwork",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("vetx payload missing fact %q; got:\n%s", want, got)
		}
	}
}

// TestFactsCrossUnitBoundary drives the full two-unit protocol: package
// a declares a marked network type and exports facts through its .vetx;
// package b — which contains no marker and no mention of a network —
// imports a via compiled export data and is flagged only when a's .vetx
// is wired into PackageVetx. Without it, the same unit analyzes clean:
// the diagnostic demonstrably rides on the facts channel.
func TestFactsCrossUnitBoundary(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
		return p
	}
	aGo := write("a.go", `package a

//nbtilint:network simulation root
type Network struct{ Cycle int }

type Result struct{ Net *Network }
`)
	bGo := write("b.go", `package b

import "tmplint/a"

var last a.Result
`)

	// Compile a's export data the way the build system would.
	aLib := filepath.Join(dir, "a.a")
	cmd := exec.Command("go", "tool", "compile", "-p", "tmplint/a", "-o", aLib, aGo)
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go tool compile: %v\n%s", err, out)
	}

	writeCfg := func(name string, cfg unitConfig) string {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return write(name, string(data))
	}

	// Unit a: full analysis, facts written to a.vetx.
	aVetx := filepath.Join(dir, "a.vetx")
	aCfg := writeCfg("a.cfg", unitConfig{
		ID: "tmplint/a", Compiler: "gc", Dir: dir, ImportPath: "tmplint/a",
		GoFiles: []string{aGo}, VetxOutput: aVetx,
	})
	if code := runUnit(aCfg, nil); code != 0 {
		t.Fatalf("unit a = exit %d, want 0", code)
	}
	if data, err := os.ReadFile(aVetx); err != nil || len(data) == 0 {
		t.Fatalf("unit a exported no facts (err=%v, %d bytes)", err, len(data))
	}

	// Unit b with a's facts: the package-level var of a fact-holding
	// type must be flagged, exit 2.
	bCfg := writeCfg("b.cfg", unitConfig{
		ID: "tmplint/b", Compiler: "gc", Dir: dir, ImportPath: "tmplint/b",
		GoFiles:     []string{bGo},
		ImportMap:   map[string]string{"tmplint/a": "tmplint/a"},
		PackageFile: map[string]string{"tmplint/a": aLib},
		PackageVetx: map[string]string{"tmplint/a": aVetx},
		VetxOutput:  filepath.Join(dir, "b.vetx"),
	})
	if code := runUnit(bCfg, nil); code != 2 {
		t.Errorf("unit b with dependency facts = exit %d, want 2", code)
	}

	// b's own vetx must re-export a's facts for transitive dependents.
	lint.All()
	data, err := os.ReadFile(filepath.Join(dir, "b.vetx"))
	if err != nil {
		t.Fatalf("unit b wrote no vetx: %v", err)
	}
	facts, err := lint.DecodeFacts(data)
	if err != nil {
		t.Fatalf("decoding b's vetx: %v", err)
	}
	if got := strings.Join(facts.Strings(), "\n"); !strings.Contains(got, "tmplint/a.Result: *lint.HoldsNetwork") {
		t.Errorf("unit b did not re-export inherited facts; got:\n%s", got)
	}

	// Negative control: the identical unit without PackageVetx analyzes
	// clean — the invariant crosses the boundary via facts alone.
	bBare := writeCfg("b_bare.cfg", unitConfig{
		ID: "tmplint/b", Compiler: "gc", Dir: dir, ImportPath: "tmplint/b",
		GoFiles:     []string{bGo},
		ImportMap:   map[string]string{"tmplint/a": "tmplint/a"},
		PackageFile: map[string]string{"tmplint/a": aLib},
		VetxOutput:  filepath.Join(dir, "b_bare.vetx"),
	})
	if code := runUnit(bBare, nil); code != 0 {
		t.Errorf("unit b without dependency facts = exit %d, want 0", code)
	}
}

func TestRunUnitRespectsAllowDirective(t *testing.T) {
	cfgPath, _ := writeUnit(t, `package p

func keys(m map[string]int) string {
	//nbtilint:allow detmap any key serves equally in this fixture
	for k := range m {
		return k
	}
	return ""
}
`, false)
	if code := runUnit(cfgPath, nil); code != 0 {
		t.Errorf("runUnit on allow-annotated package = exit %d, want 0", code)
	}
}
