// Command nbtilint is the multichecker for the repository's custom
// static analyzers (internal/lint): detmap, wallclock, rngsource and
// floatcmp — the machine-checked form of the determinism invariants
// documented in DESIGN.md.
//
// It runs in two modes:
//
//   - As a vet tool, speaking the go vet unitchecker protocol
//     (-V=full, -flags, and a *.cfg unit description):
//
//     go vet -vettool=$(pwd)/bin/nbtilint ./...
//
//   - Standalone, where it re-executes itself through "go vet" so the
//     build system handles package loading and export data:
//
//     go run ./cmd/nbtilint ./...
//
// `make lint` builds the binary and runs it over ./...; the target is
// chained into `make all`, so the whole tree stays at zero diagnostics.
//
// Exit status: 0 for a clean tree, non-zero when diagnostics were
// reported (via go vet) or the tool itself failed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"nbtinoc/internal/lint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// The go command probes a vet tool for extra flags; nbtilint
		// deliberately has none — the suite always runs whole.
		fmt.Println("[]")
	case len(args) == 1 && (args[0] == "-list" || args[0] == "--list"):
		printAnalyzers(os.Stdout)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	default:
		os.Exit(standalone(args))
	}
}

// printVersion implements -V=full in the exact shape cmd/go's buildID
// parser expects ("<name> version devel buildID=<hex>"). Hashing the
// executable makes go vet's result cache invalidate whenever the
// analyzers change.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatalf("cannot locate own executable: %v", err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fatalf("cannot read own executable: %v", err)
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(exe), sum)
}

func printAnalyzers(w io.Writer) {
	fmt.Fprintln(w, "nbtilint analyzers:")
	for _, a := range lint.All() {
		fmt.Fprintf(w, "\n  %s\n      %s\n", a.Name, a.Doc)
	}
}

// standalone re-executes nbtilint through "go vet -vettool", which
// loads packages, produces export data for dependencies, and calls this
// same binary back in unitchecker mode once per package.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fatalf("cannot locate own executable: %v", err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fatalf("go vet: %v", err)
	}
	return 0
}

// unitConfig mirrors the JSON unit description cmd/go writes for vet
// tools (the x/tools unitchecker Config). Fields nbtilint does not
// consume are listed anyway so the decode is self-documenting.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit and returns the process exit code
// (0 clean, 1 tool failure, 2 diagnostics reported — the same contract
// as x/tools' unitchecker).
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading unit config: %v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing unit config %s: %v", cfgPath, err)
	}
	// nbtilint's analyzers export no facts, so the vetx output is
	// always an empty placeholder, and fact-only runs for dependencies
	// can skip analysis entirely.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatalf("writing facts placeholder: %v", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	// Dependencies are imported from the export data the build system
	// already produced, exactly as the compiler itself would see them.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect as many files as possible; Check returns the first error
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags, err := lint.RunSuite(lint.All(), fset, files, pkg, info, cfg.ImportPath)
	if err != nil {
		fatalf("%v", err)
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	return 2
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nbtilint: "+format+"\n", args...)
	os.Exit(1)
}
